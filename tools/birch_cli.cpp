// birch_cli: cluster a CSV of numeric rows from the command line.
//
//   birch_cli --input points.csv --k 10 [--output labels.csv]
//             [--memory-kb 80] [--page 1024] [--metric D2]
//             [--threshold 0] [--algorithm hc|kmeans|medoids]
//             [--refine-passes 1] [--discard-distance 0]
//             [--no-outliers] [--no-delay-split] [--seed 42]
//             [--threads 0]
//             [--checkpoint ckpt.birch --checkpoint-every 100000]
//             [--restore ckpt.birch]
//
// Prints one summary line per cluster; with --output, writes a CSV of
// per-row cluster labels (-1 = outlier). --checkpoint periodically
// saves the live Phase-1 state; --restore resumes from such a file,
// re-reading the SAME input (already-ingested rows are skipped).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <thread>

#include "birch/birch.h"
#include "birch/dataset_io.h"
#include "birch/run_report.h"
#include "eval/quality.h"
#include "obs/export.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "serving/server.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

namespace birch {
namespace {

StatusOr<DistanceMetric> ParseMetric(const std::string& name) {
  for (auto m : {DistanceMetric::kD0, DistanceMetric::kD1,
                 DistanceMetric::kD2, DistanceMetric::kD3,
                 DistanceMetric::kD4}) {
    if (name == MetricName(m)) return m;
  }
  return Status::InvalidArgument("unknown metric '" + name +
                                 "' (want D0..D4)");
}

StatusOr<CfRepresentation> ParseCfRep(const std::string& name) {
  for (auto r : {CfRepresentation::kClassic, CfRepresentation::kBetula}) {
    if (name == CfRepresentationName(r)) return r;
  }
  return Status::InvalidArgument("unknown CF representation '" + name +
                                 "' (want classic|betula)");
}

StatusOr<CfStorage> ParseCfStorage(const std::string& name) {
  for (auto s : {CfStorage::kF64, CfStorage::kF32}) {
    if (name == CfStorageName(s)) return s;
  }
  return Status::InvalidArgument("unknown CF storage '" + name +
                                 "' (want f64|f32)");
}

StatusOr<PageCodecKind> ParsePageCodec(const std::string& name) {
  PageCodecKind kind;
  if (ParsePageCodecName(name, &kind)) return kind;
  return Status::InvalidArgument("unknown page codec '" + name +
                                 "' (want none|delta-rle)");
}

StatusOr<GlobalAlgorithm> ParseAlgorithm(const std::string& name) {
  if (name == "hc") return GlobalAlgorithm::kHierarchical;
  if (name == "kmeans") return GlobalAlgorithm::kKMeans;
  if (name == "medoids") return GlobalAlgorithm::kMedoids;
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (want hc|kmeans|medoids)");
}

StatusOr<DealingMode> ParseDealing(const std::string& name) {
  for (auto d : {DealingMode::kAffinity, DealingMode::kRoundRobin}) {
    if (name == DealingModeName(d)) return d;
  }
  return Status::InvalidArgument("unknown dealing mode '" + name +
                                 "' (want affinity|round-robin)");
}

StatusOr<KernelKind> ParseKernel(const std::string& name) {
  for (auto k : {KernelKind::kScalar, KernelKind::kBatch,
                 KernelKind::kBatchFast}) {
    if (name == KernelName(k)) return k;
  }
  return Status::InvalidArgument("unknown kernel '" + name +
                                 "' (want scalar|batch|batch-fast)");
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  Status known = flags.CheckKnown(
      {"input", "output", "k", "distance-limit", "memory-kb", "disk-kb",
       "page", "page-codec", "hot-tier-kb", "metric", "cf", "cf-storage",
       "threshold", "algorithm",
       "refine-passes",
       "discard-distance", "no-outliers", "no-delay-split", "stream",
       "seed", "threads", "dealing", "splitter-seed", "kernel",
       "fault-read", "fault-write", "fault-lose",
       "fault-flip", "fault-seed", "io-attempts", "metrics", "metrics-csv",
       "trace-out", "report", "sample-every-ms", "checkpoint",
       "checkpoint-every", "restore", "publish-every", "serve-seconds",
       "serve-readers", "help"});
  if (!known.ok() || flags.Has("help") || !flags.Has("input") ||
      (!flags.Has("k") && !flags.Has("distance-limit"))) {
    if (!known.ok()) std::fprintf(stderr, "%s\n", known.ToString().c_str());
    std::fprintf(stderr,
                 "usage: birch_cli --input points.csv (--k K | "
                 "--distance-limit D) [--output labels.csv] "
                 "[--memory-kb 80] [--page 1024] [--metric D0..D4] "
                 "[--cf classic|betula] [--cf-storage f64|f32] "
                 "[--threshold T0] [--algorithm hc|kmeans|medoids] "
                 "[--refine-passes N] [--discard-distance D] "
                 "[--no-outliers] [--no-delay-split] [--stream] "
                 "[--seed S] [--threads N] [--dealing affinity|round-robin] "
                 "[--splitter-seed S] [--kernel scalar|batch|batch-fast]\n"
                 "       [--disk-kb R] [--page-codec none|delta-rle] "
                 "[--hot-tier-kb N] [--fault-read P] [--fault-write P] "
                 "[--fault-lose P] [--fault-flip P] [--fault-seed S] "
                 "[--io-attempts N]\n"
                 "  --stream clusters the file without loading it into "
                 "memory (no per-row labels).\n"
                 "  --cf betula uses the numerically stable BETULA "
                 "(N, mean, S) CF representation\n"
                 "  (use for data far from the origin); --cf-storage f32 "
                 "(betula only) halves CF\n"
                 "  memory, doubling tree fan-out.\n"
                 "  --threads N shards Phase 1 across N workers and "
                 "parallelizes Phases 3/4\n"
                 "  (0 = serial, the default; deterministic for a fixed "
                 "seed, thread count, and\n"
                 "  splitter seed). --dealing affinity (default) routes "
                 "points to shards by spatial\n"
                 "  region via a sampled splitter seeded by "
                 "--splitter-seed; round-robin deals i %% N.\n"
                 "  --kernel batch-fast opts the CF-tree descent into the "
                 "FMA/AVX-512 leg when the\n"
                 "  CPU has one (faster, last-bit different); scalar|batch "
                 "stay bitwise deterministic.\n"
                 "  --disk-kb 0 disables the outlier disk (in-tree "
                 "fallback); --page-codec delta-rle\n"
                 "  compresses outlier pages (effective disk budget = "
                 "disk-kb x ratio) with an\n"
                 "  optional --hot-tier-kb DRAM cache of decompressed "
                 "pages; --fault-* inject seeded\n"
                 "  disk faults (probabilities in [0,1]) retried up to "
                 "--io-attempts times.\n"
                 "  --metrics prints the instrumentation summary; "
                 "--metrics-csv FILE writes it as CSV;\n"
                 "  --trace-out FILE records a Chrome trace_event JSON "
                 "(chrome://tracing, ui.perfetto.dev);\n"
                 "  --report FILE writes the versioned JSON run-report "
                 "manifest (options fingerprint,\n"
                 "  phase timings, metrics with quantiles, time series) — "
                 "on failure too;\n"
                 "  --sample-every-ms N samples tree/memory/I-O "
                 "trajectories every N ms into the\n"
                 "  report and trace (0 = off, the default).\n"
                 "  --checkpoint FILE --checkpoint-every N save the live "
                 "Phase-1 state every N points\n"
                 "  (atomic replace); --restore FILE resumes from such a "
                 "checkpoint — pass the SAME\n"
                 "  input file and the already-ingested rows are skipped "
                 "(options must match the\n"
                 "  checkpointed run's dim/page/metric/threshold kind).\n"
                 "  --publish-every N publishes a serving snapshot epoch "
                 "every N points (the\n"
                 "  queryable point->cluster serving tier; see "
                 "DESIGN.md §13); --serve-seconds S\n"
                 "  with --serve-readers R (default 4) then drives R "
                 "reader threads of\n"
                 "  Assign(point) load for S seconds after the run and "
                 "prints QPS and latency\n"
                 "  quantiles (not with --stream).\n");
    return flags.Has("help") ? 0 : 2;
  }
  const bool stream = flags.GetBool("stream", false);
  if (stream && flags.Has("output")) {
    std::fprintf(stderr,
                 "--stream computes no per-row labels; drop --output\n");
    return 2;
  }

  BirchOptions o;
  o.k = static_cast<int>(flags.GetInt("k", 0));
  o.global_phase.distance_limit = flags.GetDouble("distance-limit", 0.0);
  o.resources.memory_bytes = static_cast<size_t>(flags.GetInt("memory-kb", 80)) * 1024;
  o.resources.disk_bytes = static_cast<size_t>(flags.GetInt(
                     "disk-kb",
                     static_cast<int64_t>(o.resources.memory_bytes / 5 / 1024))) *
                 1024;
  o.resources.fault.read_transient_rate = flags.GetDouble("fault-read", 0.0);
  o.resources.fault.write_transient_rate = flags.GetDouble("fault-write", 0.0);
  o.resources.fault.page_loss_rate = flags.GetDouble("fault-lose", 0.0);
  o.resources.fault.bit_flip_rate = flags.GetDouble("fault-flip", 0.0);
  o.resources.fault.seed = static_cast<uint64_t>(
      flags.GetInt("fault-seed", static_cast<int64_t>(o.resources.fault.seed)));
  o.resources.io_retry.max_attempts =
      static_cast<int>(flags.GetInt("io-attempts", o.resources.io_retry.max_attempts));
  o.resources.page_size = static_cast<size_t>(flags.GetInt("page", 1024));
  auto codec_or = ParsePageCodec(flags.GetString("page-codec", "none"));
  if (!codec_or.ok()) {
    std::fprintf(stderr, "%s\n", codec_or.status().ToString().c_str());
    return 2;
  }
  o.resources.page_codec = codec_or.value();
  o.resources.hot_tier_bytes =
      static_cast<size_t>(flags.GetInt("hot-tier-kb", 0)) * 1024;
  o.tree.initial_threshold = flags.GetDouble("threshold", 0.0);
  o.refine.passes = static_cast<int>(flags.GetInt("refine-passes", 1));
  o.refine.outlier_distance = flags.GetDouble("discard-distance", 0.0);
  o.outliers.handling = !flags.GetBool("no-outliers", false);
  o.outliers.delay_split = !flags.GetBool("no-delay-split", false);
  o.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  int64_t threads = flags.GetInt("threads", 0);
  if (threads < 0 || threads > BirchOptions::kMaxThreads) {
    std::fprintf(stderr,
                 "--threads must be in [0, %d] (0 = serial), got %lld\n",
                 BirchOptions::kMaxThreads,
                 static_cast<long long>(threads));
    return 2;
  }
  o.exec.num_threads = static_cast<int>(threads);
  auto dealing_or = ParseDealing(flags.GetString("dealing", "affinity"));
  if (!dealing_or.ok()) {
    std::fprintf(stderr, "%s\n", dealing_or.status().ToString().c_str());
    return 2;
  }
  o.exec.dealing = dealing_or.value();
  o.exec.splitter_seed = static_cast<uint64_t>(flags.GetInt(
      "splitter-seed", static_cast<int64_t>(o.exec.splitter_seed)));
  auto kernel_or = ParseKernel(flags.GetString("kernel", "batch"));
  if (!kernel_or.ok()) {
    std::fprintf(stderr, "%s\n", kernel_or.status().ToString().c_str());
    return 2;
  }
  o.exec.kernel = kernel_or.value();

  int64_t publish_every = flags.GetInt("publish-every", 0);
  double serve_seconds = flags.GetDouble("serve-seconds", 0.0);
  int64_t serve_readers = flags.GetInt("serve-readers", 4);
  if (publish_every < 0 || serve_seconds < 0.0 || serve_readers < 1) {
    std::fprintf(stderr,
                 "--publish-every/--serve-seconds must be >= 0, "
                 "--serve-readers >= 1\n");
    return 2;
  }
  o.serving.publish_every_n = static_cast<uint64_t>(publish_every);
  if (serve_seconds > 0.0 && (publish_every == 0 || stream)) {
    std::fprintf(stderr,
                 "--serve-seconds needs --publish-every N > 0 and an "
                 "in-memory input (no --stream)\n");
    return 2;
  }

  if (flags.Has("checkpoint") != flags.Has("checkpoint-every")) {
    std::fprintf(stderr,
                 "--checkpoint FILE and --checkpoint-every N go together\n");
    return 2;
  }
  if (flags.Has("checkpoint")) {
    o.resources.checkpoint_path = flags.GetString("checkpoint");
    int64_t every = flags.GetInt("checkpoint-every", 0);
    if (every <= 0) {
      std::fprintf(stderr, "--checkpoint-every must be > 0\n");
      return 2;
    }
    o.resources.checkpoint_every_n = static_cast<uint64_t>(every);
  }

  auto metric_or = ParseMetric(flags.GetString("metric", "D2"));
  if (!metric_or.ok()) {
    std::fprintf(stderr, "%s\n", metric_or.status().ToString().c_str());
    return 2;
  }
  o.tree.metric = metric_or.value();
  o.global_phase.metric = metric_or.value();
  auto cf_or = ParseCfRep(flags.GetString("cf", "classic"));
  if (!cf_or.ok()) {
    std::fprintf(stderr, "%s\n", cf_or.status().ToString().c_str());
    return 2;
  }
  o.tree.cf = cf_or.value();
  auto storage_or = ParseCfStorage(flags.GetString("cf-storage", "f64"));
  if (!storage_or.ok()) {
    std::fprintf(stderr, "%s\n", storage_or.status().ToString().c_str());
    return 2;
  }
  o.tree.cf_storage = storage_or.value();
  auto algo_or = ParseAlgorithm(flags.GetString("algorithm", "hc"));
  if (!algo_or.ok()) {
    std::fprintf(stderr, "%s\n", algo_or.status().ToString().c_str());
    return 2;
  }
  o.global_phase.algorithm = algo_or.value();

  if (flags.Has("trace-out")) obs::Tracer::Default().StartRecording();

  // Registry state before the run: the failure path has no
  // BirchResult::metrics delta, so the CLI computes its own.
  obs::MetricsSnapshot cli_baseline = obs::CaptureSnapshot();

  // The CLI owns its sampler (rather than wiring o.obs) so a failed
  // run's trajectory still exists for the report.
  std::unique_ptr<obs::StatsSampler> sampler;
  int64_t sample_ms = flags.GetInt("sample-every-ms", 0);
  if (sample_ms < 0) {
    std::fprintf(stderr, "--sample-every-ms must be >= 0\n");
    return 2;
  }
  if (sample_ms > 0) {
    obs::SamplerOptions so;
    so.sample_every_ms = static_cast<uint64_t>(sample_ms);
    sampler = std::make_unique<obs::StatsSampler>(so);
    RegisterBirchProbes(sampler.get());
    Status st = sampler->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "sampler: %s\n", st.ToString().c_str());
      return 2;
    }
  }

  Dataset data(1);
  StatusOr<BirchResult> result_or = Status::Internal("unreachable");
  // Kept alive past the run when --serve-seconds is set: the serving
  // tier lives on the clusterer, and the serve phase queries it after
  // clustering completes.
  std::unique_ptr<BirchClusterer> serving_clusterer;
  if (stream) {
    // Out-of-core: the file is scanned, never loaded.
    auto source_or = CsvPointSource::Open(flags.GetString("input"));
    if (!source_or.ok()) {
      std::fprintf(stderr, "opening input: %s\n",
                   source_or.status().ToString().c_str());
      return 1;
    }
    o.dim = source_or.value()->dim();
    if (flags.Has("restore")) {
      if (o.expected_points == 0) {
        o.expected_points = source_or.value()->SizeHint();
      }
      auto c_or = BirchClusterer::Restore(flags.GetString("restore"), o);
      if (!c_or.ok()) {
        std::fprintf(stderr, "restoring checkpoint: %s\n",
                     c_or.status().ToString().c_str());
        return 1;
      }
      result_or = c_or.value()->Cluster(source_or.value().get(), nullptr);
    } else {
      result_or = ClusterSource(source_or.value().get(), o);
    }
  } else {
    auto data_or = ReadCsvPoints(flags.GetString("input"));
    if (!data_or.ok()) {
      std::fprintf(stderr, "reading input: %s\n",
                   data_or.status().ToString().c_str());
      return 1;
    }
    data = std::move(data_or).ValueOrDie();
    o.dim = data.dim();
    if (flags.Has("restore")) {
      if (o.expected_points == 0) o.expected_points = data.size();
      auto c_or = BirchClusterer::Restore(flags.GetString("restore"), o);
      if (!c_or.ok()) {
        std::fprintf(stderr, "restoring checkpoint: %s\n",
                     c_or.status().ToString().c_str());
        return 1;
      }
      DatasetSource source(&data);
      serving_clusterer = std::move(c_or).ValueOrDie();
      result_or = serving_clusterer->Cluster(&source, &data);
    } else if (serve_seconds > 0.0) {
      auto c_or = BirchClusterer::Create(o);
      if (!c_or.ok()) {
        std::fprintf(stderr, "%s\n", c_or.status().ToString().c_str());
        return 1;
      }
      DatasetSource source(&data);
      serving_clusterer = std::move(c_or).ValueOrDie();
      result_or = serving_clusterer->Cluster(&source, &data);
    } else {
      result_or = ClusterDataset(data, o);
    }
  }
  // Flushes every requested artifact — trace, metrics, run report — on
  // the success AND failure paths: a partial run's telemetry is exactly
  // what a post-mortem needs. Returns false if any write failed.
  auto flush_artifacts = [&](const Status& run_status,
                             const BirchResult* result) -> bool {
    bool all_ok = true;
    std::vector<obs::TimeSeriesSnapshot> series;
    if (sampler != nullptr) {
      sampler->Stop();  // idempotent; takes the final sample
      series = sampler->Snapshot();
    }
    if (flags.Has("trace-out")) {
      obs::Tracer::Default().StopRecording();
      Status st = obs::Tracer::Default().WriteChromeTrace(
          flags.GetString("trace-out"));
      if (!st.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     st.ToString().c_str());
        all_ok = false;
      } else {
        std::printf("trace written to %s\n",
                    flags.GetString("trace-out").c_str());
      }
    }
    obs::MetricsSnapshot metrics =
        result != nullptr ? result->metrics
                          : obs::CaptureSnapshot().DeltaSince(cli_baseline);
    if (flags.Has("metrics")) {
      std::printf("%s", obs::SummaryTable(metrics).c_str());
    }
    if (flags.Has("metrics-csv")) {
      Status st = obs::WriteCsv(metrics, flags.GetString("metrics-csv"));
      if (!st.ok()) {
        std::fprintf(stderr, "metrics csv write failed: %s\n",
                     st.ToString().c_str());
        all_ok = false;
      } else {
        std::printf("metrics csv written to %s\n",
                    flags.GetString("metrics-csv").c_str());
      }
    }
    if (flags.Has("report")) {
      RunReportInputs in;
      in.options = &o;
      in.dataset_name = flags.GetString("input");
      in.dataset_points =
          result != nullptr ? result->phase1.points_added : 0;
      in.dataset_dim = o.dim;
      in.status = run_status;
      in.result = result;
      in.timeseries = std::move(series);
      Status st = WriteRunReport(flags.GetString("report"), in);
      if (!st.ok()) {
        std::fprintf(stderr, "report write failed: %s\n",
                     st.ToString().c_str());
        all_ok = false;
      } else {
        std::printf("run report written to %s\n",
                    flags.GetString("report").c_str());
      }
    }
    return all_ok;
  };

  if (!result_or.ok()) {
    std::fprintf(stderr, "clustering: %s\n",
                 result_or.status().ToString().c_str());
    flush_artifacts(result_or.status(), nullptr);
    return 1;
  }
  const BirchResult& r = result_or.value();
  if (!flush_artifacts(Status::OK(), &r)) return 1;

  double points_seen = static_cast<double>(r.phase1.points_added);
  std::printf("%.0f points (dim %zu) -> %zu clusters in %.3fs; "
              "weighted avg diameter %.4f; %llu rebuilds; peak memory "
              "%zu KB%s\n",
              points_seen, o.dim, r.clusters.size(), r.timings.Total(),
              WeightedAverageDiameter(r.clusters),
              static_cast<unsigned long long>(r.phase1.rebuilds),
              r.peak_memory_bytes / 1024,
              stream ? " (streamed; data never resident)" : "");
  const RobustnessStats& rb = r.robustness;
  if (o.resources.fault.enabled() || rb.degradation_events > 0 ||
      rb.outlier_disk_disabled) {
    std::printf("robustness: %llu transient errors (%llu retries), "
                "%llu checksum failures, %llu records lost, "
                "%llu degradation events%s\n",
                static_cast<unsigned long long>(rb.transient_io_errors),
                static_cast<unsigned long long>(rb.io_retries),
                static_cast<unsigned long long>(rb.checksum_failures),
                static_cast<unsigned long long>(rb.records_lost),
                static_cast<unsigned long long>(rb.degradation_events),
                rb.outlier_disk_disabled ? "; outlier disk out of service"
                                         : "");
  }
  const CfTreeStats& ts = r.tree_stats;
  std::printf("tree: %llu inserts (%llu absorbed, %llu new, %llu rejected), "
              "%llu leaf + %llu nonleaf splits, %llu merge refinements, "
              "%llu rebuilds, %llu distance comparisons, %zu nodes\n",
              static_cast<unsigned long long>(ts.inserts),
              static_cast<unsigned long long>(ts.absorbed),
              static_cast<unsigned long long>(ts.new_entries),
              static_cast<unsigned long long>(ts.rejected),
              static_cast<unsigned long long>(ts.leaf_splits),
              static_cast<unsigned long long>(ts.nonleaf_splits),
              static_cast<unsigned long long>(ts.merge_refinements),
              static_cast<unsigned long long>(ts.rebuilds),
              static_cast<unsigned long long>(ts.distance_comparisons),
              r.tree_nodes);

  TablePrinter table({"cluster", "points", "radius", "centroid"});
  for (size_t c = 0; c < r.clusters.size(); ++c) {
    std::string centroid;
    for (double v : r.centroids[c]) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%.3f", centroid.empty() ? "" : ", ",
                    v);
      centroid += buf;
    }
    table.Row()
        .Add(c)
        .Add(static_cast<int64_t>(r.clusters[c].n()))
        .Add(r.clusters[c].Radius(), 3)
        .Add("(" + centroid + ")");
  }
  table.Print();

  if (serve_seconds > 0.0 && serving_clusterer != nullptr &&
      serving_clusterer->server() != nullptr) {
    const serving::BirchServer* server = serving_clusterer->server();
    obs::MetricsSnapshot serve_baseline = obs::CaptureSnapshot();
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> queries{0}, errors{0};
    std::vector<std::thread> threads;
    for (int64_t t = 0; t < serve_readers; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937_64 rng(0x51e6 + static_cast<uint64_t>(t));
        std::uniform_int_distribution<size_t> pick(0, data.size() - 1);
        while (!stop.load(std::memory_order_relaxed)) {
          auto got = server->Assign(data.Row(pick(rng)));
          if (got.ok()) {
            queries.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    Timer serve_timer;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(serve_seconds));
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : threads) th.join();
    const double elapsed = serve_timer.Seconds();
    obs::MetricsSnapshot delta =
        obs::CaptureSnapshot().DeltaSince(serve_baseline);
    double p50 = 0.0, p99 = 0.0, p999 = 0.0;
    auto hist = delta.histograms.find("serving/assign_us");
    if (hist != delta.histograms.end()) {
      p50 = hist->second.Quantile(0.50);
      p99 = hist->second.Quantile(0.99);
      p999 = hist->second.Quantile(0.999);
    }
    const uint64_t q = queries.load();
    std::printf("serving: %llu Assign queries from %lld readers in %.2fs "
                "(%.0f QPS; p50 %.1fus, p99 %.1fus, p999 %.1fus; "
                "epoch %llu)\n",
                static_cast<unsigned long long>(q),
                static_cast<long long>(serve_readers), elapsed,
                elapsed > 0.0 ? q / elapsed : 0.0, p50, p99, p999,
                static_cast<unsigned long long>(server->epoch()));
    if (errors.load() > 0) {
      std::fprintf(stderr, "serving: %llu query errors\n",
                   static_cast<unsigned long long>(errors.load()));
      return 1;
    }
  }

  if (flags.Has("output")) {
    std::ofstream out(flags.GetString("output"));
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n",
                   flags.GetString("output").c_str());
      return 1;
    }
    out << "label\n";
    for (int l : r.labels) out << l << "\n";
    std::printf("labels written to %s\n", flags.GetString("output").c_str());
  }
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
