// bench_diff: perf-regression gate over two benchmark / run-report
// JSON files.
//
//   bench_diff --baseline BENCH_base.json --current run.json
//              [--threshold 0.25] [--abs-floor 1e-4]
//              [--scale-current F]
//
// Both files are flattened to dotted numeric leaf paths
// ("rows[0].seconds", "benchmarks[3].real_time"), and every TIME-LIKE
// leaf present in both is compared: a regression is current >
// baseline * (1 + threshold). Non-time leaves (counts, accuracies,
// dimensions) are matched for context but never gated — run-to-run
// counter noise is not a perf regression. Leaves below --abs-floor in
// both files are skipped (microsecond-scale noise). --scale-current
// multiplies the current file's time-like values in memory — the
// self-test hook that proves the gate trips on an injected slowdown.
//
// Exit codes: 0 = no regressions, 1 = regressions found (or a file
// failed to parse), 2 = usage error.
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/json.h"

namespace birch {
namespace {

/// A leaf key counts as time-like when gating: exact names used by the
/// google-benchmark and bench_util formats, or a unit suffix.
bool IsTimeKey(const std::string& key) {
  // The path component after the last '.', minus any "[i]" suffix.
  size_t dot = key.rfind('.');
  std::string leaf = dot == std::string::npos ? key : key.substr(dot + 1);
  size_t bracket = leaf.find('[');
  if (bracket != std::string::npos) leaf.resize(bracket);
  if (leaf == "seconds" || leaf == "real_time" || leaf == "cpu_time" ||
      leaf == "time") {
    return true;
  }
  for (const char* suffix : {"_seconds", "_us", "_ms", "_ns"}) {
    std::string s(suffix);
    if (leaf.size() > s.size() &&
        leaf.compare(leaf.size() - s.size(), s.size(), s) == 0) {
      return true;
    }
  }
  return false;
}

void Flatten(const JsonValue& v, const std::string& path,
             std::map<std::string, double>* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNumber:
      (*out)[path] = v.number();
      return;
    case JsonValue::Kind::kObject:
      for (const auto& [key, child] : v.members()) {
        Flatten(child, path.empty() ? key : path + "." + key, out);
      }
      return;
    case JsonValue::Kind::kArray:
      for (size_t i = 0; i < v.array().size(); ++i) {
        Flatten(v.array()[i], path + "[" + std::to_string(i) + "]", out);
      }
      return;
    default:
      return;  // strings / bools / nulls are not comparable
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff --baseline FILE --current FILE\n"
      "                  [--threshold 0.25] [--abs-floor 1e-4]\n"
      "                  [--scale-current F]\n"
      "  Compares time-like numeric leaves (seconds, real_time, "
      "cpu_time, *_us, ...)\n"
      "  of two benchmark/run-report JSON files; exits 1 when any "
      "current value\n"
      "  exceeds baseline * (1 + threshold). --scale-current "
      "multiplies the current\n"
      "  file's time-like values first (regression-injection "
      "self-test).\n");
  return 2;
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  Status known = flags.CheckKnown({"baseline", "current", "threshold",
                                   "abs-floor", "scale-current", "help"});
  if (!known.ok()) {
    std::fprintf(stderr, "%s\n", known.ToString().c_str());
    return Usage();
  }
  if (flags.Has("help") || !flags.Has("baseline") || !flags.Has("current")) {
    return Usage();
  }
  const double threshold = flags.GetDouble("threshold", 0.25);
  const double abs_floor = flags.GetDouble("abs-floor", 1e-4);
  const double scale = flags.GetDouble("scale-current", 1.0);
  if (threshold < 0.0 || abs_floor < 0.0 || scale <= 0.0) {
    std::fprintf(stderr,
                 "--threshold/--abs-floor must be >= 0, "
                 "--scale-current > 0\n");
    return Usage();
  }

  auto base_or = JsonValue::ParseFile(flags.GetString("baseline"));
  if (!base_or.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 base_or.status().ToString().c_str());
    return 1;
  }
  auto cur_or = JsonValue::ParseFile(flags.GetString("current"));
  if (!cur_or.ok()) {
    std::fprintf(stderr, "current: %s\n",
                 cur_or.status().ToString().c_str());
    return 1;
  }

  std::map<std::string, double> base, cur;
  Flatten(base_or.value(), "", &base);
  Flatten(cur_or.value(), "", &cur);

  size_t compared = 0;
  size_t regressions = 0;
  for (const auto& [key, base_v] : base) {
    if (!IsTimeKey(key)) continue;
    auto it = cur.find(key);
    if (it == cur.end()) continue;
    double cur_v = it->second * scale;
    if (base_v < abs_floor && cur_v < abs_floor) continue;  // noise floor
    ++compared;
    if (cur_v > base_v * (1.0 + threshold)) {
      ++regressions;
      std::printf("REGRESSION %s: baseline %.6g -> current %.6g (%+.1f%%, "
                  "gate %+.0f%%)\n",
                  key.c_str(), base_v, cur_v,
                  base_v > 0.0 ? (cur_v / base_v - 1.0) * 100.0 : 0.0,
                  threshold * 100.0);
    }
  }

  std::printf("bench_diff: %zu time-like leaves compared, %zu regression%s "
              "(threshold %+.0f%%)\n",
              compared, regressions, regressions == 1 ? "" : "s",
              threshold * 100.0);
  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_diff: no comparable time-like leaves — wrong file "
                 "pair?\n");
    return 1;
  }
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
