// E-numerics — classic (N, LS, SS) vs BETULA (N, mean, S) cluster
// features on ill-conditioned data.
//
// The workload is IllConditionedOptions: tight unit-radius clusters on
// a coarse grid, translated `offset` away from the origin. At offset 0
// both representations are exact. At offset 1e8 the classic CF's
// radius SS/N - ||LS/N||^2 subtracts two ~1e16 terms whose difference
// (the actual spread, ~1) is below double's resolution at that
// magnitude, so the cancellation guard clamps every radius to zero,
// the tree absorbs everything into a handful of entries, and quality
// collapses. BETULA stores the deviations directly and is unaffected.
//
// Quality is measured offset-invariantly: cluster CFs are rebuilt from
// the result labels over a *centered* copy of the data (offset
// subtracted), so "D" is comparable across offsets. The float32 leg
// runs BETULA with f32 CF storage on float32-quantized points at a
// moderate offset (classic+f32 is rejected by options validation).
//
// --smoke shrinks the point count; --json <path> appends nothing but
// rewrites the whole trajectory record (used for BENCH_numerics.json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/quality.h"
#include "util/table.h"

namespace birch {
namespace {

struct LegResult {
  std::string leg;
  double offset = 0.0;
  double seconds = 0.0;
  double d_centered = 0.0;       // result quality, offset-invariant
  double d_truth = 0.0;          // ground-truth quality, same measure
  double label_accuracy = 0.0;
  uint64_t entries = 0;
  uint64_t clamped = 0;          // cf/cancellation_clamped
};

/// Rebuilds cluster CFs from labels over an offset-subtracted copy of
/// the data so diameters are comparable across offsets.
double CenteredDiameter(const Dataset& data, std::span<const int> labels,
                        double offset) {
  Dataset centered(data.dim());
  centered.Reserve(data.size());
  std::vector<double> p(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.Row(i);
    for (size_t t = 0; t < p.size(); ++t) p[t] = row[t] - offset;
    centered.Append(p);
  }
  std::vector<CfVector> cfs = ClustersFromLabels(centered, labels);
  return WeightedAverageDiameter(cfs);
}

int Run(int argc, char** argv) {
  const bool smoke = bench::HasFlagArg(argc, argv, "--smoke");
  std::printf(
      "E-numerics: classic vs BETULA CFs on ill-conditioned data\n"
      "(tight unit clusters translated `offset` from the origin; D is\n"
      "recomputed over centered data so rows are comparable)\n\n");

  const size_t dim = 2;
  const int k = 16;
  const int points_per_cluster = smoke ? 120 : 500;
  const double offsets[] = {0.0, 1e4, 1e8};

  TablePrinter table({"leg", "offset", "time(s)", "D", "D-truth",
                      "label-acc", "entries", "clamped"});
  CsvWriter csv({"leg", "offset", "seconds", "d", "d_truth",
                 "label_accuracy", "entries", "clamped"});
  std::vector<LegResult> results;

  auto run_leg = [&](const std::string& leg, CfRepresentation rep,
                     CfStorage storage, double offset,
                     bool quantize_points) -> bool {
    GeneratorOptions g = IllConditionedOptions(dim, k, offset, /*seed=*/7);
    g.n_low = g.n_high = points_per_cluster;
    g.quantize_points_f32 = quantize_points;
    auto gen = Generate(g);
    if (!gen.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   gen.status().ToString().c_str());
      return false;
    }
    BirchOptions opts = bench::PaperDefaults(k, gen.value().data.size());
    opts.dim = dim;
    opts.tree.cf = rep;
    opts.tree.cf_storage = storage;
    auto row_or = bench::RunBirch(gen.value(), opts);
    if (!row_or.ok()) {
      std::fprintf(stderr, "run failed (%s): %s\n", leg.c_str(),
                   row_or.status().ToString().c_str());
      return false;
    }
    const auto& row = row_or.value();
    LegResult r;
    r.leg = leg;
    r.offset = offset;
    r.seconds = row.seconds_total;
    r.d_centered =
        CenteredDiameter(gen.value().data, row.result.labels, offset);
    r.d_truth = CenteredDiameter(gen.value().data, gen.value().truth, offset);
    r.label_accuracy = row.label_accuracy;
    r.entries = row.result.leaf_entries_after_phase1;
    auto it = row.result.metrics.counters.find("cf/cancellation_clamped");
    r.clamped = it == row.result.metrics.counters.end() ? 0 : it->second;
    results.push_back(r);
    table.Row()
        .Add(leg)
        .Add(offset, 0)
        .Add(r.seconds, 3)
        .Add(r.d_centered, 3)
        .Add(r.d_truth, 3)
        .Add(r.label_accuracy, 3)
        .Add(static_cast<int64_t>(r.entries))
        .Add(static_cast<int64_t>(r.clamped));
    csv.Row()
        .Add(leg)
        .Add(r.offset)
        .Add(r.seconds)
        .Add(r.d_centered)
        .Add(r.d_truth)
        .Add(r.label_accuracy)
        .Add(static_cast<int64_t>(r.entries))
        .Add(static_cast<int64_t>(r.clamped));
    return true;
  };

  for (double offset : offsets) {
    if (!run_leg("classic", CfRepresentation::kClassic, CfStorage::kF64,
                 offset, /*quantize_points=*/false)) {
      return 1;
    }
    if (!run_leg("betula", CfRepresentation::kBetula, CfStorage::kF64,
                 offset, /*quantize_points=*/false)) {
      return 1;
    }
  }
  // Float32 legs: f32-quantized points, moderate offsets (1e8 is not
  // even representable spread in float32 — that regime needs f64).
  for (double offset : {0.0, 1e4}) {
    if (!run_leg("betula-f32", CfRepresentation::kBetula, CfStorage::kF32,
                 offset, /*quantize_points=*/true)) {
      return 1;
    }
  }
  table.Print();

  // Smoke acceptance: BETULA at the worst offset must stay within 5%
  // of its own zero-offset quality; classic must measurably degrade.
  double betula_base = 0.0, betula_worst = 0.0;
  double classic_base = 0.0, classic_worst = 0.0;
  for (const auto& r : results) {
    if (r.leg == "betula" && r.offset == 0.0) betula_base = r.d_centered;
    if (r.leg == "betula" && r.offset == 1e8) betula_worst = r.d_centered;
    if (r.leg == "classic" && r.offset == 0.0) classic_base = r.d_centered;
    if (r.leg == "classic" && r.offset == 1e8) classic_worst = r.d_centered;
  }
  std::printf(
      "\nbetula D at 1e8 vs 0: %.4f vs %.4f (%+.2f%%)\n"
      "classic D at 1e8 vs 0: %.4f vs %.4f (%+.2f%%)\n",
      betula_worst, betula_base,
      100.0 * (betula_worst - betula_base) / betula_base, classic_worst,
      classic_base, 100.0 * (classic_worst - classic_base) / classic_base);
  if (betula_worst > 1.05 * betula_base) {
    std::fprintf(stderr,
                 "FAIL: betula quality degraded >5%% at offset 1e8\n");
    return 1;
  }
  if (classic_worst < 1.5 * classic_base) {
    std::fprintf(stderr,
                 "FAIL: classic did not degrade at offset 1e8 — the "
                 "workload is no longer ill-conditioned enough\n");
    return 1;
  }

  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  bench::JsonRows json("bench_numerics");
  for (const auto& r : results) {
    json.Row()
        .Add("leg", r.leg)
        .Add("offset", r.offset)
        .Add("seconds", r.seconds)
        .Add("d", r.d_centered)
        .Add("d_truth", r.d_truth)
        .Add("label_accuracy", r.label_accuracy)
        .Add("entries", r.entries)
        .Add("clamped", r.clamped);
  }
  bench::MaybeWriteJson(json, bench::JsonPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
