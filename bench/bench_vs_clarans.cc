// E3 — Table 5 and Fig. 8: BIRCH vs CLARANS on the base workload.
//
// The paper's findings: CLARANS needs the whole dataset in memory, runs
// 15-50x slower, produces worse quality (weighted diameter up to 50%
// higher), and degrades dramatically on ordered input, while BIRCH is
// stable. CLARANS's cost is quadratic-ish in N (each neighbour
// evaluation is O(N) and maxneighbor ~ 1.25% K(N-K)), so this
// comparison runs on a proportionally scaled base workload
// (K=50, n=200 -> N=10k) to finish in laptop time; the *ratios* are the
// reproduction target, not the 1996 absolute seconds.
#include <cstdio>

#include "baselines/clarans.h"
#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"
#include "util/timer.h"

namespace birch {
namespace {

constexpr int kClusters = 50;
constexpr int kPerCluster = 200;

int Run(int argc, char** argv) {
  std::printf(
      "E3 / Table 5 + Fig. 8: BIRCH vs CLARANS (scaled base workload: "
      "K=%d, N~=%d)\n(paper: BIRCH faster by >10x, better D, far less "
      "memory; CLARANS degrades on ordered input)\n\n",
      kClusters, kClusters * kPerCluster);
  TablePrinter table({"dataset", "algo", "time(s)", "D", "D-actual",
                      "matched", "centroid-disp", "mem(KB)"});
  CsvWriter csv({"dataset", "algo", "seconds", "d", "d_actual", "matched",
                 "centroid_disp", "mem_kb"});

  for (auto ds : {PaperDataset::kDS1, PaperDataset::kDS2,
                  PaperDataset::kDS3, PaperDataset::kDS1o}) {
    auto gen = GeneratePaperDataset(ds, kClusters, kPerCluster);
    if (!gen.ok()) return 1;
    const auto& g = gen.value();
    std::vector<CfVector> actual_cfs;
    for (const auto& a : g.actual) actual_cfs.push_back(a.cf);
    double d_actual = WeightedAverageDiameter(actual_cfs);

    // --- BIRCH (paper defaults, scaled memory kept at 80 KB). ---
    auto row_or = bench::RunBirch(
        g, bench::PaperDefaults(kClusters, g.data.size()));
    if (!row_or.ok()) return 1;
    const auto& row = row_or.value();
    table.Row()
        .Add(PaperDatasetName(ds))
        .Add("BIRCH")
        .Add(row.seconds_total, 2)
        .Add(row.weighted_diameter, 2)
        .Add(d_actual, 2)
        .Add(row.match.matched)
        .Add(row.match.mean_centroid_displacement, 3)
        .Add(static_cast<int64_t>(row.result.peak_memory_bytes / 1024));
    csv.Row()
        .Add(PaperDatasetName(ds))
        .Add("BIRCH")
        .Add(row.seconds_total)
        .Add(row.weighted_diameter)
        .Add(d_actual)
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(row.match.mean_centroid_displacement)
        .Add(static_cast<int64_t>(row.result.peak_memory_bytes / 1024));

    // --- CLARANS (needs all points resident: N * d * 8 bytes). ---
    ClaransOptions c;
    c.k = kClusters;
    Timer timer;
    auto clarans_or = Clarans(g.data, c);
    if (!clarans_or.ok()) return 1;
    double clarans_s = timer.Seconds();
    const auto& cl = clarans_or.value();
    double d_clarans = WeightedAverageDiameter(cl.clusters);
    MatchReport match = MatchClusters(g.actual, cl.clusters);
    size_t clarans_mem_kb = g.data.size() * g.data.dim() * 8 / 1024;
    table.Row()
        .Add(PaperDatasetName(ds))
        .Add("CLARANS")
        .Add(clarans_s, 2)
        .Add(d_clarans, 2)
        .Add(d_actual, 2)
        .Add(match.matched)
        .Add(match.mean_centroid_displacement, 3)
        .Add(static_cast<int64_t>(clarans_mem_kb));
    csv.Row()
        .Add(PaperDatasetName(ds))
        .Add("CLARANS")
        .Add(clarans_s)
        .Add(d_clarans)
        .Add(d_actual)
        .Add(static_cast<int64_t>(match.matched))
        .Add(match.mean_centroid_displacement)
        .Add(static_cast<int64_t>(clarans_mem_kb));
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
