// E14/E18 — parallel-scaling sweep for the src/exec subsystem.
//
// Runs the paper's base workload (DS1-DS3) at num_threads 0 (the
// serial pipeline), 1, 2, 4, 8 and 16, A/B-ing the Phase-1 dealing
// mode (affinity space partitioning vs round-robin), and prints per
// run: wall time, Phase-1 / Phase-3+4 split, quality D, matched
// clusters, the speedup over the serial run of the same dataset, and
// the parallel efficiency (speedup / threads). Threads = 1 exposes the
// sharding overhead (channel hops plus the merge pass) in isolation;
// the higher counts show scaling on multi-core hosts — on a
// single-core container every speedup sits near or below 1.0 by
// construction, while quality and determinism hold regardless.
//
//   --affinity on|off|both   restrict the A/B to one dealing mode
//                            (default both)
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  // --smoke: scaled-down DS1 at two thread counts, fast enough for
  // `ctest -L smoke`; verifies the parallel pipeline end to end.
  const bool smoke = bench::HasFlagArg(argc, argv, "--smoke");
  const std::string affinity =
      bench::FlagValueFromArgs(argc, argv, "--affinity", "both");
  std::vector<DealingMode> modes;
  if (affinity == "on") {
    modes = {DealingMode::kAffinity};
  } else if (affinity == "off") {
    modes = {DealingMode::kRoundRobin};
  } else if (affinity == "both") {
    modes = {DealingMode::kAffinity, DealingMode::kRoundRobin};
  } else {
    std::fprintf(stderr, "--affinity wants on|off|both, got '%s'\n",
                 affinity.c_str());
    return 2;
  }
  std::printf(
      "E14/E18: parallel scaling (sharded Phase 1 + parallel Phases "
      "3/4).\nthreads=0 is the serial pipeline; speedup is serial time "
      "over parallel time;\nefficiency is speedup / threads. Dealing "
      "A/B: affinity (space-partitioned) vs\nround-robin.\n\n");

  std::vector<PaperDataset> datasets =
      smoke ? std::vector<PaperDataset>{PaperDataset::kDS1}
            : std::vector<PaperDataset>{PaperDataset::kDS1,
                                        PaperDataset::kDS2,
                                        PaperDataset::kDS3};
  std::vector<int> thread_counts =
      smoke ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 4, 8, 16};
  const int k = smoke ? 25 : 100;

  TablePrinter table({"dataset", "dealing", "threads", "time(s)", "ph1(s)",
                      "ph3+4(s)", "D", "matched", "rebuilds", "speedup",
                      "eff"});
  CsvWriter csv({"dataset", "dealing", "threads", "seconds",
                 "phase1_seconds", "phase34_seconds", "d", "matched",
                 "rebuilds", "speedup", "efficiency"});
  bench::JsonRows json("bench_parallel_scaling");

  for (auto ds : datasets) {
    auto gen = smoke ? GeneratePaperDataset(ds, k, /*n_override=*/100)
                     : GeneratePaperDataset(ds);
    if (!gen.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    const auto& g = gen.value();
    for (DealingMode dealing : modes) {
      double serial_seconds = 0.0;
      for (int threads : thread_counts) {
        BirchOptions o = bench::PaperDefaults(k, g.data.size());
        o.exec.num_threads = threads;
        o.exec.dealing = dealing;
        auto row_or = bench::RunBirch(g, o);
        if (!row_or.ok()) {
          std::fprintf(stderr, "run failed (threads=%d): %s\n", threads,
                       row_or.status().ToString().c_str());
          return 1;
        }
        const auto& row = row_or.value();
        if (threads == 0) serial_seconds = row.seconds_total;
        double speedup = row.seconds_total > 0.0
                             ? serial_seconds / row.seconds_total
                             : 0.0;
        double efficiency = threads > 0 ? speedup / threads : 1.0;
        double ph34 =
            row.result.timings.phase3 + row.result.timings.phase4;
        const char* mode = DealingModeName(dealing);
        table.Row()
            .Add(PaperDatasetName(ds))
            .Add(mode)
            .Add(threads)
            .Add(row.seconds_total, 3)
            .Add(row.result.timings.phase1, 3)
            .Add(ph34, 3)
            .Add(row.weighted_diameter, 2)
            .Add(row.match.matched)
            .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
            .Add(speedup, 2)
            .Add(efficiency, 2);
        csv.Row()
            .Add(PaperDatasetName(ds))
            .Add(mode)
            .Add(static_cast<int64_t>(threads))
            .Add(row.seconds_total)
            .Add(row.result.timings.phase1)
            .Add(ph34)
            .Add(row.weighted_diameter)
            .Add(static_cast<int64_t>(row.match.matched))
            .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
            .Add(speedup)
            .Add(efficiency);
        json.Row()
            .Add("dataset", PaperDatasetName(ds))
            .Add("dealing", mode)
            .Add("threads", static_cast<int64_t>(threads))
            .Add("seconds", row.seconds_total)
            .Add("phase1_seconds", row.result.timings.phase1)
            .Add("phase34_seconds", ph34)
            .Add("d", row.weighted_diameter)
            .Add("matched", static_cast<int64_t>(row.match.matched))
            .Add("rebuilds",
                 static_cast<int64_t>(row.result.phase1.rebuilds))
            .Add("speedup", speedup)
            .Add("efficiency", efficiency);
        if (smoke && row.match.matched < k / 2) {
          std::fprintf(stderr,
                       "smoke: threads=%d matched only %d of %d "
                       "clusters\n",
                       threads, row.match.matched, k);
          return 1;
        }
      }
    }
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  bench::MaybeWriteJson(json, bench::JsonPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
