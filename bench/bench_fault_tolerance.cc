// E13 (robustness extension of Sec. 5.1.4): BIRCH on a misbehaving
// outlier disk. The paper assumes the disk partition R is perfect; this
// bench injects seeded faults — transient IOErrors (absorbed by the
// retry policy), silent page loss and bit rot (caught by per-page
// CRC32C and skipped by the loss-aware drain) — plus the no-disk
// configuration, and shows clustering quality degrading gracefully
// instead of the run failing.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

struct Scenario {
  std::string name;
  FaultOptions fault;
  size_t disk_bytes = 16 * 1024;
};

int Run(int argc, char** argv) {
  std::printf(
      "E13 / robustness: fault-injected outlier disk on a noisy DS1 "
      "variant\n(transient errors retried, corruption caught by CRC32C, "
      "loss degrades to the\nin-tree fallback; quality should move "
      "little while the run always completes)\n\n");

  std::vector<std::string> headers = {"scenario", "time(s)", "D",
                                      "matched", "spilled"};
  bench::AppendRobustnessHeaders(&headers);
  TablePrinter table(headers);
  std::vector<std::string> csv_headers = {"scenario", "seconds", "d",
                                          "matched", "spilled"};
  bench::AppendRobustnessHeaders(&csv_headers);
  CsvWriter csv(csv_headers);
  bench::JsonRows json("bench_fault_tolerance");

  GeneratorOptions go = PaperDatasetOptions(PaperDataset::kDS1, 0, 0,
                                            /*noise_fraction=*/0.05);
  go.grid_spacing = 8.0;
  auto gen = Generate(go);
  if (!gen.ok()) return 1;
  const auto& g = gen.value();

  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault-free", {}, 16 * 1024});
  for (double rate : {0.01, 0.05, 0.10}) {
    FaultOptions f;
    f.read_transient_rate = rate;
    f.write_transient_rate = rate;
    char name[32];
    std::snprintf(name, sizeof(name), "transient %.0f%%", rate * 100.0);
    scenarios.push_back({name, f, 16 * 1024});
  }
  {
    FaultOptions f;
    f.bit_flip_rate = 0.10;
    scenarios.push_back({"bit rot 10%", f, 16 * 1024});
  }
  {
    FaultOptions f;
    f.page_loss_rate = 0.50;
    scenarios.push_back({"page loss 50%", f, 16 * 1024});
  }
  {
    FaultOptions f;
    f.page_loss_rate = 1.0;
    scenarios.push_back({"disk dead", f, 16 * 1024});
  }
  scenarios.push_back({"no disk (R=0)", {}, 0});

  for (const Scenario& sc : scenarios) {
    BirchOptions o = bench::PaperDefaults(100, g.data.size());
    // Small memory budget so rebuilds spill outliers and the disk
    // actually gets exercised.
    o.resources.memory_bytes = 32 * 1024;
    o.resources.disk_bytes = sc.disk_bytes;
    o.resources.fault = sc.fault;
    auto row_or = bench::RunBirch(g, o);
    if (!row_or.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", sc.name.c_str(),
                   row_or.status().ToString().c_str());
      return 1;
    }
    const auto& row = row_or.value();
    const RobustnessStats& r = row.result.robustness;
    table.Row()
        .Add(sc.name)
        .Add(row.seconds_total, 2)
        .Add(row.weighted_diameter, 2)
        .Add(row.match.matched)
        .Add(static_cast<int64_t>(row.result.phase1.outlier_entries_spilled));
    bench::AddRobustnessCells(&table, r);
    csv.Row()
        .Add(sc.name)
        .Add(row.seconds_total)
        .Add(row.weighted_diameter)
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(static_cast<int64_t>(row.result.phase1.outlier_entries_spilled));
    bench::AddRobustnessCells(&csv, r);
    json.Row()
        .Add("scenario", sc.name)
        .Add("seconds", row.seconds_total)
        .Add("d", row.weighted_diameter)
        .Add("matched", static_cast<int64_t>(row.match.matched))
        .Add("spilled",
             static_cast<int64_t>(row.result.phase1.outlier_entries_spilled))
        .Add("retries", static_cast<int64_t>(r.io_retries))
        .Add("checksum_failures", static_cast<int64_t>(r.checksum_failures))
        .Add("records_lost", static_cast<int64_t>(r.records_lost))
        .Add("degradation_events",
             static_cast<int64_t>(r.degradation_events))
        .Add("fallback_dropped", static_cast<int64_t>(r.fallback_dropped));
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  bench::MaybeWriteJson(json, bench::JsonPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
