// E7 — Sec. 6.5, page size P (64..4096).
//
// Smaller pages -> smaller B/L -> finer subclusters but more, deeper
// nodes; the paper observes that the pre-Phase-4 quality varies with P
// while Phase 4 compensates, landing all settings on similar final
// quality. This bench reports quality both before (Phase-3 clusters)
// and after Phase 4.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E7 / Sec. 6.5: page size sensitivity on DS1\n"
      "(paper: P affects pre-Phase-4 granularity; Phase 4 compensates)\n\n");
  TablePrinter table({"P(bytes)", "B", "L", "time(s)", "entries",
                      "D-prePh4", "D-final", "matched", "accuracy"});
  CsvWriter csv({"page", "b", "l", "seconds", "entries", "d_pre", "d_final",
                 "matched", "accuracy"});

  auto gen = GeneratePaperDataset(PaperDataset::kDS1);
  if (!gen.ok()) return 1;
  const auto& g = gen.value();

  const size_t kPages[] = {256, 512, 1024, 2048, 4096};
  for (size_t p : kPages) {
    // Pre-Phase-4 quality: run with refinement disabled.
    BirchOptions pre = bench::PaperDefaults(100, g.data.size());
    pre.resources.page_size = p;
    pre.refine.passes = 0;
    auto pre_or = bench::RunBirch(g, pre);
    if (!pre_or.ok()) return 1;

    BirchOptions full = bench::PaperDefaults(100, g.data.size());
    full.resources.page_size = p;
    auto full_or = bench::RunBirch(g, full);
    if (!full_or.ok()) return 1;
    const auto& row = full_or.value();

    CfLayout layout{p, 2};
    table.Row()
        .Add(p)
        .Add(layout.B())
        .Add(layout.L())
        .Add(row.seconds_total, 2)
        .Add(row.result.leaf_entries_after_phase1)
        .Add(pre_or.value().weighted_diameter, 2)
        .Add(row.weighted_diameter, 2)
        .Add(row.match.matched)
        .Add(row.label_accuracy, 3);
    csv.Row()
        .Add(static_cast<int64_t>(p))
        .Add(static_cast<int64_t>(layout.B()))
        .Add(static_cast<int64_t>(layout.L()))
        .Add(row.seconds_total)
        .Add(static_cast<int64_t>(row.result.leaf_entries_after_phase1))
        .Add(pre_or.value().weighted_diameter)
        .Add(row.weighted_diameter)
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(row.label_accuracy);
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
