// E6 — Sec. 6.5, initial threshold T0.
//
// The paper: T0 = 0 always works; a knowledgeable T0 closer to the
// final threshold saves rebuilds and time; an excessive T0 builds a
// coarser-than-necessary tree and costs quality. This bench sweeps T0
// on DS1 and reports time, rebuild count and quality D.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E6 / Sec. 6.5: initial threshold sensitivity on DS1\n"
      "(paper: T0=0 robust; good guesses are rewarded with less time; "
      "too-high T0 hurts quality)\n\n");
  TablePrinter table({"T0", "time(s)", "rebuilds", "final-T", "entries",
                      "D", "matched", "accuracy"});
  CsvWriter csv({"t0", "seconds", "rebuilds", "final_t", "entries", "d",
                 "matched", "accuracy"});

  auto gen = GeneratePaperDataset(PaperDataset::kDS1);
  if (!gen.ok()) return 1;
  const auto& g = gen.value();

  const double kT0s[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  for (double t0 : kT0s) {
    BirchOptions o = bench::PaperDefaults(100, g.data.size());
    o.tree.initial_threshold = t0;
    auto row_or = bench::RunBirch(g, o);
    if (!row_or.ok()) {
      std::fprintf(stderr, "T0=%.2f failed: %s\n", t0,
                   row_or.status().ToString().c_str());
      return 1;
    }
    const auto& row = row_or.value();
    table.Row()
        .Add(t0, 2)
        .Add(row.seconds_total, 2)
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
        .Add(row.result.final_threshold, 3)
        .Add(row.result.leaf_entries_after_phase1)
        .Add(row.weighted_diameter, 2)
        .Add(row.match.matched)
        .Add(row.label_accuracy, 3);
    csv.Row()
        .Add(t0)
        .Add(row.seconds_total)
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
        .Add(row.result.final_threshold)
        .Add(static_cast<int64_t>(row.result.leaf_entries_after_phase1))
        .Add(row.weighted_diameter)
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(row.label_accuracy);
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
