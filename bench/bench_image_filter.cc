// E10 — Sec. 6.8, Figs. 9-10: the two-pass NIR/VIS image filter.
//
// The paper clusters the (NIR, VIS) tuples of two co-registered
// 512x1024 images of trees: pass 1 (5 clusters, 284s in 1996) isolates
// sky, clouds and sunlit leaves but leaves branches and shadows
// together; pass 2 (71s) re-clusters the dark part at finer granularity
// and pulls them apart. The original NASA images are unavailable; the
// scene generator synthesizes a statistically equivalent image
// (substitution documented in DESIGN.md). This bench prints each
// cluster's centroid, size and majority ground-truth region, per pass.
#include <array>
#include <cstdio>
#include <map>

#include "image/filter.h"
#include "image/scene.h"
#include "util/csv.h"
#include "util/table.h"

namespace birch {
namespace {

std::map<int, std::array<int, kNumRegions>> VotesByLabel(
    const Scene& scene, const std::vector<int>& labels) {
  std::map<int, std::array<int, kNumRegions>> votes;
  for (size_t i = 0; i < scene.size(); ++i) {
    if (labels[i] < 0) continue;
    ++votes[labels[i]][static_cast<size_t>(scene.region[i])];
  }
  return votes;
}

int Run(int argc, char** argv) {
  std::printf(
      "E10 / Sec. 6.8: two-pass NIR/VIS filtering of a 512x1024 scene\n"
      "(paper: pass 1 separates sky/clouds/leaves, branches+shadows "
      "merge;\n pass 2 on the dark part separates branches from "
      "shadows)\n\n");
  SceneOptions so;  // full 1024x512, paper-sized
  Scene scene = GenerateScene(so);

  FilterOptions fo;
  auto result = TwoPassFilter(scene, fo);
  if (!result.ok()) {
    std::fprintf(stderr, "filter failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.value();

  std::printf("pass 1: %.2fs over %zu pixels; pass 2: %.2fs over %zu "
              "pixels\n\n",
              r.seconds_pass1, scene.size(), r.seconds_pass2,
              r.pass2_rows.size());

  TablePrinter table({"pass", "cluster", "NIR", "VIS", "pixels",
                      "majority-region", "purity"});
  CsvWriter csv({"pass", "cluster", "nir", "vis", "pixels", "region",
                 "purity"});
  auto emit = [&](const char* pass, const std::vector<int>& labels) {
    auto votes = VotesByLabel(scene, labels);
    for (auto& [label, v] : votes) {
      CfVector cf(2);
      for (size_t i = 0; i < scene.size(); ++i) {
        if (labels[i] == label) cf.AddPoint(scene.pixels.Row(i));
      }
      int best = 0, total = 0;
      for (int reg = 0; reg < kNumRegions; ++reg) {
        total += v[static_cast<size_t>(reg)];
        if (v[static_cast<size_t>(reg)] > v[static_cast<size_t>(best)]) {
          best = reg;
        }
      }
      auto c = cf.Centroid();
      double purity =
          static_cast<double>(v[static_cast<size_t>(best)]) / total;
      table.Row()
          .Add(pass)
          .Add(static_cast<int64_t>(label))
          .Add(c[0], 1)
          .Add(c[1], 1)
          .Add(static_cast<int64_t>(total))
          .Add(RegionName(static_cast<Region>(best)))
          .Add(purity, 3);
      csv.Row()
          .Add(pass)
          .Add(static_cast<int64_t>(label))
          .Add(c[0])
          .Add(c[1])
          .Add(static_cast<int64_t>(total))
          .Add(RegionName(static_cast<Region>(best)))
          .Add(purity);
    }
  };
  emit("pass1", r.pass1.labels);
  emit("final", r.final_labels);
  table.Print();

  // Overall purity of the final labelling.
  auto votes = VotesByLabel(scene, r.final_labels);
  std::map<int, int> majority;
  for (auto& [label, v] : votes) {
    int best = 0;
    for (int reg = 1; reg < kNumRegions; ++reg) {
      if (v[static_cast<size_t>(reg)] > v[static_cast<size_t>(best)]) {
        best = reg;
      }
    }
    majority[label] = best;
  }
  size_t agree = 0, considered = 0;
  for (size_t i = 0; i < scene.size(); ++i) {
    if (r.final_labels[i] < 0) continue;
    ++considered;
    agree += majority.at(r.final_labels[i]) == scene.region[i];
  }
  std::printf("\nfinal labelling purity: %.3f over %zu pixels\n",
              static_cast<double>(agree) / considered, considered);
  {
    std::string path;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--csv") path = argv[i + 1];
    }
    if (!path.empty()) {
      Status st = csv.WriteFile(path);
      if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
