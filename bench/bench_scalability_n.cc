// E4 — Fig. 4: scalability with N, growing the points per cluster.
//
// K stays at 100; n grows 250 -> 2000 (N = 25k..200k). The paper plots
// running time vs N for Phases 1-3 and Phases 1-4 on DS1/DS2/DS3 and
// finds both nearly linear. The "us/point" column makes the linearity
// visible: it should stay roughly flat down each dataset's series.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E4 / Fig. 4: time vs N (growing points per cluster, K=100)\n"
      "(paper: phases 1-3 and 1-4 scale ~linearly in N)\n\n");
  TablePrinter table({"dataset", "n/cluster", "N", "ph1-3(s)", "ph1-4(s)",
                      "us/pt(1-3)", "us/pt(1-4)", "D", "matched"});
  CsvWriter csv({"dataset", "n_per_cluster", "n_total", "seconds_123",
                 "seconds_1234", "d", "matched"});

  const int kSizes[] = {250, 500, 1000, 2000};
  for (auto ds :
       {PaperDataset::kDS1, PaperDataset::kDS2, PaperDataset::kDS3}) {
    for (int n : kSizes) {
      auto gen = GeneratePaperDataset(ds, /*k=*/100, /*n=*/n);
      if (!gen.ok()) return 1;
      const auto& g = gen.value();
      auto row_or =
          bench::RunBirch(g, bench::PaperDefaults(100, g.data.size()));
      if (!row_or.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     row_or.status().ToString().c_str());
        return 1;
      }
      const auto& row = row_or.value();
      double s123 = row.result.timings.Phases123();
      double s1234 = row.result.timings.Total();
      double np = static_cast<double>(g.data.size());
      table.Row()
          .Add(PaperDatasetName(ds))
          .Add(n)
          .Add(g.data.size())
          .Add(s123, 3)
          .Add(s1234, 3)
          .Add(1e6 * s123 / np, 2)
          .Add(1e6 * s1234 / np, 2)
          .Add(row.weighted_diameter, 2)
          .Add(row.match.matched);
      csv.Row()
          .Add(PaperDatasetName(ds))
          .Add(static_cast<int64_t>(n))
          .Add(static_cast<int64_t>(g.data.size()))
          .Add(s123)
          .Add(s1234)
          .Add(row.weighted_diameter)
          .Add(static_cast<int64_t>(row.match.matched));
    }
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
