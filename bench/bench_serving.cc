// Serving-tier benchmark: closed-loop mixed read/write load against a
// live BirchServer (DESIGN.md §13). An ingest thread keeps streaming
// DS1 points (serial Phase 1, publishing an epoch every
// serving.publish_every_n of them; a second scenario drives the
// sharded pipeline's quiesce-and-publish hook), while N reader threads
// hammer Assign() — with an occasional KNearestCentroids() — on the
// current epoch. Reports aggregate QPS and the p50/p99/p999 assign
// latency taken from the "serving/assign_us" obs histogram delta, so
// the bench measures exactly what production telemetry would.
//
//   bench_serving [--smoke] [--readers N] [--seconds S] [--qps Q]
//                 [--scalar-kernel] [--min-qps Q]
//                 [--csv out.csv] [--json out.json] [--report out.json]
//
// --qps Q paces the readers to an aggregate target (0 = unpaced closed
// loop); --min-qps Q makes the serial scenario's aggregate QPS a hard
// gate (exit 1 below it; default 0 = report only, since wall-clock
// throughput is hardware-dependent). The determinism checks (bitwise
// repeatable queries on a pinned epoch, scalar == batch kernel) always
// gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "birch/run_report.h"
#include "datagen/paper_datasets.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "util/table.h"

namespace birch {
namespace {

/// Cycles a dataset's rows until Stop() — gives the sharded Cluster()
/// call a stream that outlasts the measurement window.
class CyclingSource : public PointSource {
 public:
  explicit CyclingSource(const Dataset* data) : data_(data) {}
  size_t dim() const override { return data_->dim(); }
  bool Next(std::span<double> out, double* weight) override {
    if (stop_.load(std::memory_order_relaxed)) return false;
    auto row = data_->Row(next_);
    std::copy(row.begin(), row.end(), out.begin());
    *weight = 1.0;
    next_ = (next_ + 1) % data_->size();
    return true;
  }
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  const Dataset* data_;
  size_t next_ = 0;
  std::atomic<bool> stop_{false};
};

struct LoadResult {
  uint64_t assign_queries = 0;
  uint64_t knn_queries = 0;
  uint64_t errors = 0;
  double seconds = 0.0;
};

/// Runs `readers` closed-loop reader threads against `server` for
/// `seconds` (or until the server's clusterer stops publishing — the
/// readers only depend on the server). `target_qps` > 0 paces the
/// aggregate rate across readers.
LoadResult DriveReaders(const serving::BirchServer* server,
                        const Dataset& data, int readers, double seconds,
                        double target_qps) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> assigns{0}, knns{0}, errors{0};
  std::vector<std::thread> threads;
  threads.reserve(readers);
  Timer timer;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(0x5e41 + static_cast<uint64_t>(r));
      std::uniform_int_distribution<size_t> pick(0, data.size() - 1);
      // Per-reader pacing interval for the aggregate target.
      const double interval_s =
          target_qps > 0.0 ? readers / target_qps : 0.0;
      auto next_due = std::chrono::steady_clock::now();
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (interval_s > 0.0) {
          std::this_thread::sleep_until(next_due);
          next_due += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval_s));
        }
        auto row = data.Row(pick(rng));
        if (++n % 16 == 0) {
          auto knn = server->KNearestCentroids(row, 5);
          if (knn.ok()) {
            knns.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          auto got = server->Assign(row);
          if (got.ok() && got.value().cluster_id >= 0) {
            assigns.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  LoadResult out;
  out.seconds = timer.Seconds();
  out.assign_queries = assigns.load();
  out.knn_queries = knns.load();
  out.errors = errors.load();
  return out;
}

/// The acceptance-criteria determinism gates: a pinned epoch answers
/// bitwise-identically on repeat, and the scalar and batch descent
/// kernels agree bitwise. Returns false (after printing why) on any
/// violation.
bool CheckDeterminism(const serving::BirchServer* server,
                      const Dataset& data) {
  auto epoch = server->Acquire();
  if (epoch == nullptr) {
    std::fprintf(stderr, "determinism: no epoch to check\n");
    return false;
  }
  kernel::Workspace ws;
  for (size_t i = 0; i < data.size(); i += 7) {
    auto row = data.Row(i);
    serving::AssignResult a = epoch->Assign(row, &ws);
    serving::AssignResult b = epoch->Assign(row, &ws);
    serving::AssignResult s =
        epoch->AssignWith(row, KernelKind::kScalar, &ws);
    if (std::memcmp(&a.distance, &b.distance, sizeof(double)) != 0 ||
        a.leaf_entry != b.leaf_entry || a.cluster_id != b.cluster_id) {
      std::fprintf(stderr, "determinism: repeat query diverged (row %zu)\n",
                   i);
      return false;
    }
    if (std::memcmp(&a.distance, &s.distance, sizeof(double)) != 0 ||
        a.leaf_entry != s.leaf_entry || a.cluster_id != s.cluster_id) {
      std::fprintf(stderr,
                   "determinism: scalar/batch kernels diverged (row %zu)\n",
                   i);
      return false;
    }
  }
  return true;
}

double HistQuantile(const obs::MetricsSnapshot& m, const std::string& name,
                    double q) {
  auto it = m.histograms.find(name);
  return it == m.histograms.end() ? 0.0 : it->second.Quantile(q);
}

int Run(int argc, char** argv) {
  const bool smoke = bench::HasFlagArg(argc, argv, "--smoke");
  const KernelKind kernel = bench::KernelFromArgs(argc, argv);
  int readers = smoke ? 2 : 8;
  double seconds = smoke ? 0.3 : 2.0;
  double target_qps = 0.0;
  double min_qps = 0.0;
  std::string report_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--readers") == 0) readers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--seconds") == 0) seconds = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--qps") == 0) target_qps = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--min-qps") == 0) min_qps = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--report") == 0) report_path = argv[i + 1];
  }
  if (readers < 1) readers = 1;

  std::printf(
      "serving tier: %d reader threads vs live ingest on DS1 "
      "(%s kernel%s)\n"
      "latency quantiles come from the serving/assign_us obs histogram "
      "delta.\n\n",
      readers, kernel == KernelKind::kScalar ? "scalar" : "batch",
      smoke ? ", smoke" : "");

  const int k = smoke ? 25 : 100;
  auto gen = smoke ? GeneratePaperDataset(PaperDataset::kDS1, k,
                                          /*n_override=*/100)
                   : GeneratePaperDataset(PaperDataset::kDS1);
  if (!gen.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 gen.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = gen.value().data;
  const uint64_t publish_every = smoke ? 50 : 2000;

  TablePrinter table({"scenario", "readers", "time(s)", "assign qps",
                      "knn qps", "p50(us)", "p99(us)", "p999(us)", "epochs",
                      "age(ms)"});
  CsvWriter csv({"scenario", "readers", "seconds", "assign_qps", "knn_qps",
                 "assign_p50_us", "assign_p99_us", "assign_p999_us",
                 "epochs", "snapshot_age_ms"});
  bench::JsonRows json("bench_serving");
  std::map<std::string, double> report_serving;

  struct Scenario {
    const char* name;
    int threads;  // BirchOptions::num_threads for the ingest side
  };
  const std::vector<Scenario> scenarios = {{"serial-ingest", 0},
                                           {"sharded-ingest", 2}};
  BirchOptions report_options;
  int exit_code = 0;

  for (const Scenario& sc : scenarios) {
    BirchOptions o = bench::PaperDefaults(k, data.size());
    o.exec.num_threads = sc.threads;
    o.serving.publish_every_n = publish_every;
    o.exec.kernel = kernel;
    if (sc.threads == 0) report_options = o;
    auto c_or = BirchClusterer::Create(o);
    if (!c_or.ok()) {
      std::fprintf(stderr, "%s: %s\n", sc.name,
                   c_or.status().ToString().c_str());
      return 1;
    }
    BirchClusterer* c = c_or.value().get();

    obs::MetricsSnapshot before = obs::CaptureSnapshot();
    std::atomic<bool> stop_ingest{false};
    Status ingest_status;
    CyclingSource cycling(&data);
    std::thread ingest;
    if (sc.threads == 0) {
      // Prime one pass so the first epoch exists before readers start,
      // then keep cycling the stream on a dedicated thread.
      Status st = c->AddDataset(data);
      if (st.ok() && c->server()->epoch() == 0) st = c->PublishSnapshot();
      if (!st.ok()) {
        std::fprintf(stderr, "%s: %s\n", sc.name, st.ToString().c_str());
        return 1;
      }
      ingest = std::thread([&] {
        size_t i = 0;
        while (!stop_ingest.load(std::memory_order_relaxed)) {
          ingest_status = c->Add(data.Row(i));
          if (!ingest_status.ok()) return;
          i = (i + 1) % data.size();
        }
      });
    } else {
      // Sharded: Cluster() owns the whole pipeline; epochs appear via
      // the dealer's quiesce-and-publish hook. Wait for the first one.
      ingest = std::thread(
          [&] { ingest_status = c->Cluster(&cycling, nullptr).status(); });
      // Bounded wait: if the run dies before its first publish, the
      // readers will report the FailedPrecondition as query errors.
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (c->server()->epoch() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }

    LoadResult load =
        DriveReaders(c->server(), data, readers, seconds, target_qps);
    const bool deterministic = CheckDeterminism(c->server(), data);
    const double age_ms = c->server()->SnapshotAgeMs();
    const uint64_t epochs = c->server()->publishes();
    stop_ingest.store(true, std::memory_order_relaxed);
    cycling.Stop();
    ingest.join();
    if (!ingest_status.ok()) {
      std::fprintf(stderr, "%s ingest: %s\n", sc.name,
                   ingest_status.ToString().c_str());
      return 1;
    }
    if (!deterministic) return 1;

    obs::MetricsSnapshot delta = obs::CaptureSnapshot().DeltaSince(before);
    const double assign_qps =
        load.seconds > 0.0 ? load.assign_queries / load.seconds : 0.0;
    const double knn_qps =
        load.seconds > 0.0 ? load.knn_queries / load.seconds : 0.0;
    const double p50 = HistQuantile(delta, "serving/assign_us", 0.50);
    const double p99 = HistQuantile(delta, "serving/assign_us", 0.99);
    const double p999 = HistQuantile(delta, "serving/assign_us", 0.999);

    table.Row()
        .Add(sc.name)
        .Add(readers)
        .Add(load.seconds, 2)
        .Add(assign_qps, 0)
        .Add(knn_qps, 0)
        .Add(p50, 1)
        .Add(p99, 1)
        .Add(p999, 1)
        .Add(static_cast<int64_t>(epochs))
        .Add(age_ms, 1);
    csv.Row()
        .Add(sc.name)
        .Add(static_cast<int64_t>(readers))
        .Add(load.seconds)
        .Add(assign_qps)
        .Add(knn_qps)
        .Add(p50)
        .Add(p99)
        .Add(p999)
        .Add(static_cast<int64_t>(epochs))
        .Add(age_ms);
    json.Row()
        .Add("scenario", sc.name)
        .Add("readers", static_cast<int64_t>(readers))
        .Add("seconds", load.seconds)
        .Add("assign_qps", assign_qps)
        .Add("knn_qps", knn_qps)
        .Add("assign_p50_us", p50)
        .Add("assign_p99_us", p99)
        .Add("assign_p999_us", p999)
        .Add("epochs", static_cast<int64_t>(epochs))
        .Add("snapshot_age_ms", age_ms);

    if (load.errors > 0) {
      std::fprintf(stderr, "%s: %llu query errors\n", sc.name,
                   static_cast<unsigned long long>(load.errors));
      return 1;
    }
    if (smoke && epochs == 0) {
      std::fprintf(stderr, "%s: no epochs published\n", sc.name);
      return 1;
    }
    if (sc.threads == 0) {
      report_serving = {{"assign_qps", assign_qps},
                        {"knn_qps", knn_qps},
                        {"assign_p50_us", p50},
                        {"assign_p99_us", p99},
                        {"assign_p999_us", p999},
                        {"epochs", static_cast<double>(epochs)},
                        {"snapshot_age_ms", age_ms},
                        {"readers", static_cast<double>(readers)}};
      if (min_qps > 0.0 && assign_qps < min_qps) {
        std::fprintf(stderr, "serial-ingest: %.0f assign QPS < --min-qps %.0f\n",
                     assign_qps, min_qps);
        exit_code = 1;
      }
    }
  }

  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  bench::MaybeWriteJson(json, bench::JsonPathFromArgs(argc, argv));
  if (!report_path.empty()) {
    RunReportInputs in;
    in.options = &report_options;
    in.dataset_name = "DS1";
    in.dataset_points = data.size();
    in.dataset_dim = data.dim();
    in.status = Status::OK();
    in.serving = report_serving;
    Status st = WriteRunReport(report_path, in);
    if (!st.ok()) {
      std::fprintf(stderr, "report write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("(run report written to %s)\n", report_path.c_str());
  }
  return exit_code;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
