// E5 — Fig. 5: scalability with N, growing the number of clusters.
//
// n stays fixed at 500 per cluster; K grows 25 -> 200 (N = 12.5k ..
// 100k). The paper finds running time again ~linear in N (with the
// caveat that Phase 3's global clustering grows with K).
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E5 / Fig. 5: time vs N (growing K, n=500 per cluster)\n"
      "(paper: phases 1-3 and 1-4 scale ~linearly in N = K*n)\n\n");
  TablePrinter table({"dataset", "K", "N", "ph1-3(s)", "ph1-4(s)",
                      "us/pt(1-3)", "us/pt(1-4)", "D", "matched"});
  CsvWriter csv({"dataset", "k", "n_total", "seconds_123", "seconds_1234",
                 "d", "matched"});

  const int kKs[] = {25, 50, 100, 200};
  for (auto ds :
       {PaperDataset::kDS1, PaperDataset::kDS2, PaperDataset::kDS3}) {
    for (int k : kKs) {
      auto gen = GeneratePaperDataset(ds, k, /*n=*/500);
      if (!gen.ok()) return 1;
      const auto& g = gen.value();
      auto row_or =
          bench::RunBirch(g, bench::PaperDefaults(k, g.data.size()));
      if (!row_or.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     row_or.status().ToString().c_str());
        return 1;
      }
      const auto& row = row_or.value();
      double s123 = row.result.timings.Phases123();
      double s1234 = row.result.timings.Total();
      double np = static_cast<double>(g.data.size());
      table.Row()
          .Add(PaperDatasetName(ds))
          .Add(k)
          .Add(g.data.size())
          .Add(s123, 3)
          .Add(s1234, 3)
          .Add(1e6 * s123 / np, 2)
          .Add(1e6 * s1234 / np, 2)
          .Add(row.weighted_diameter, 2)
          .Add(row.match.matched);
      csv.Row()
          .Add(PaperDatasetName(ds))
          .Add(static_cast<int64_t>(k))
          .Add(static_cast<int64_t>(g.data.size()))
          .Add(s123)
          .Add(s1234)
          .Add(row.weighted_diameter)
          .Add(static_cast<int64_t>(row.match.matched));
    }
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
