// E8 — Sec. 6.5, memory budget M.
//
// More memory -> finer final threshold -> more leaf entries survive
// Phase 1 -> better (or equal) quality at more time; BIRCH trades
// memory for time/quality gracefully. Disk stays at 20% of M.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E8 / Sec. 6.5: memory budget sensitivity on DS2\n"
      "(paper: more memory -> finer subclusters -> better quality, "
      "more time)\n\n");
  TablePrinter table({"M(KB)", "time(s)", "rebuilds", "final-T", "entries",
                      "D", "matched", "accuracy", "peak-mem(KB)"});
  CsvWriter csv({"m_kb", "seconds", "rebuilds", "final_t", "entries", "d",
                 "matched", "accuracy"});

  auto gen = GeneratePaperDataset(PaperDataset::kDS2);
  if (!gen.ok()) return 1;
  const auto& g = gen.value();

  const size_t kBudgetsKb[] = {20, 40, 80, 160, 320};
  for (size_t m : kBudgetsKb) {
    BirchOptions o = bench::PaperDefaults(100, g.data.size());
    o.resources.memory_bytes = m * 1024;
    o.resources.disk_bytes = o.resources.memory_bytes / 5;
    auto row_or = bench::RunBirch(g, o);
    if (!row_or.ok()) {
      std::fprintf(stderr, "M=%zuKB failed: %s\n", m,
                   row_or.status().ToString().c_str());
      return 1;
    }
    const auto& row = row_or.value();
    table.Row()
        .Add(m)
        .Add(row.seconds_total, 2)
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
        .Add(row.result.final_threshold, 3)
        .Add(row.result.leaf_entries_after_phase1)
        .Add(row.weighted_diameter, 2)
        .Add(row.match.matched)
        .Add(row.label_accuracy, 3)
        .Add(static_cast<int64_t>(row.result.peak_memory_bytes / 1024));
    csv.Row()
        .Add(static_cast<int64_t>(m))
        .Add(row.seconds_total)
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
        .Add(row.result.final_threshold)
        .Add(static_cast<int64_t>(row.result.leaf_entries_after_phase1))
        .Add(row.weighted_diameter)
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(row.label_accuracy);
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
