// Shared helpers for the benchmark binaries: paper-default BIRCH
// options, a standard "run BIRCH and collect the row" wrapper, and
// optional CSV / JSON dumping (pass --csv <path> / --json <path> to
// any bench binary; the JSON shape is what tools/bench_diff gates).
#ifndef BIRCH_BENCH_BENCH_UTIL_H_
#define BIRCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "birch/birch.h"
#include "datagen/generator.h"
#include "eval/matching.h"
#include "eval/quality.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/table.h"
#include "util/timer.h"

namespace birch {
namespace bench {

/// The paper's Table-2 default configuration.
inline BirchOptions PaperDefaults(int k, uint64_t expected_points = 0) {
  BirchOptions o;
  o.dim = 2;
  o.k = k;
  o.resources.memory_bytes = 80 * 1024;
  o.resources.disk_bytes = 16 * 1024;  // R = 20% of M
  o.resources.page_size = 1024;
  o.tree.initial_threshold = 0.0;
  o.tree.metric = DistanceMetric::kD2;
  o.tree.threshold_kind = ThresholdKind::kDiameter;
  o.outliers.handling = true;
  o.outliers.delay_split = true;
  o.refine.passes = 1;
  o.expected_points = expected_points;
  return o;
}

/// One benchmark row: timings plus quality/accuracy measures.
struct RunRow {
  BirchResult result;
  double seconds_total = 0.0;
  double weighted_diameter = 0.0;   // the paper's quality "D"
  double weighted_radius = 0.0;
  double actual_diameter = 0.0;     // same measure on the ground truth
  MatchReport match;
  double label_accuracy = 0.0;
};

/// Runs BIRCH on generated data and fills the standard row.
inline StatusOr<RunRow> RunBirch(const GeneratedData& gen,
                                 const BirchOptions& options) {
  RunRow row;
  Timer timer;
  auto result = ClusterDataset(gen.data, options);
  if (!result.ok()) return result.status();
  row.seconds_total = timer.Seconds();
  row.result = std::move(result).ValueOrDie();
  row.weighted_diameter = WeightedAverageDiameter(row.result.clusters);
  row.weighted_radius = WeightedAverageRadius(row.result.clusters);
  std::vector<CfVector> actual_cfs;
  for (const auto& a : gen.actual) actual_cfs.push_back(a.cf);
  row.actual_diameter = WeightedAverageDiameter(actual_cfs);
  row.match = MatchClusters(gen.actual, row.result.clusters);
  row.label_accuracy = LabelAccuracy(gen.truth, row.result.labels, row.match);
  return row;
}

/// Shared RobustnessStats columns: append the headers to a table/CSV
/// header list, then AddRobustnessCells on each row, so every bench
/// that reports fault tolerance uses the same schema.
inline void AppendRobustnessHeaders(std::vector<std::string>* headers) {
  for (const char* h :
       {"retries", "crc-fail", "lost-recs", "degraded", "fb-drop"}) {
    headers->emplace_back(h);
  }
}

inline void AddRobustnessCells(TablePrinter* table,
                               const RobustnessStats& r) {
  table->Add(static_cast<int64_t>(r.io_retries))
      .Add(static_cast<int64_t>(r.checksum_failures))
      .Add(static_cast<int64_t>(r.records_lost))
      .Add(static_cast<int64_t>(r.degradation_events))
      .Add(static_cast<int64_t>(r.fallback_dropped));
}

inline void AddRobustnessCells(CsvWriter* csv, const RobustnessStats& r) {
  csv->Add(static_cast<int64_t>(r.io_retries))
      .Add(static_cast<int64_t>(r.checksum_failures))
      .Add(static_cast<int64_t>(r.records_lost))
      .Add(static_cast<int64_t>(r.degradation_events))
      .Add(static_cast<int64_t>(r.fallback_dropped));
}

/// --csv <path> support.
inline std::string CsvPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return argv[i + 1];
  }
  return "";
}

/// Bare-flag lookup (e.g. --smoke) for bench binaries.
inline bool HasFlagArg(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == name) return true;
  }
  return false;
}

/// Valued-flag lookup (e.g. --affinity on); `fallback` when absent.
inline std::string FlagValueFromArgs(int argc, char** argv,
                                     const std::string& name,
                                     const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == name) return argv[i + 1];
  }
  return fallback;
}

/// --scalar-kernel: run the per-entry scalar distance oracle instead of
/// the batched SoA kernels. Results are bitwise identical; the flag
/// exists so A/B timing runs need no rebuild.
inline KernelKind KernelFromArgs(int argc, char** argv) {
  return HasFlagArg(argc, argv, "--scalar-kernel") ? KernelKind::kScalar
                                                   : KernelKind::kBatch;
}

/// Shared instrumentation dump: prints the summary table and optionally
/// writes the metrics CSV and the Chrome trace (stops recording first
/// so every open "B" has its "E"). Returns false if a write failed.
inline bool DumpMetrics(const obs::MetricsSnapshot& snapshot,
                        const std::string& csv_path = "",
                        const std::string& trace_path = "") {
  std::printf("%s", obs::SummaryTable(snapshot).c_str());
  bool ok = true;
  if (!csv_path.empty()) {
    Status st = obs::WriteCsv(snapshot, csv_path);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics csv write failed: %s\n",
                   st.ToString().c_str());
      ok = false;
    } else {
      std::printf("(metrics csv written to %s)\n", csv_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    obs::Tracer::Default().StopRecording();
    Status st = obs::Tracer::Default().WriteChromeTrace(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   st.ToString().c_str());
      ok = false;
    } else {
      std::printf("(trace written to %s)\n", trace_path.c_str());
    }
  }
  return ok;
}

inline void MaybeWriteCsv(const CsvWriter& csv, const std::string& path) {
  if (path.empty()) return;
  Status st = csv.WriteFile(path);
  if (!st.ok()) {
    std::fprintf(stderr, "csv write failed: %s\n", st.ToString().c_str());
  } else {
    std::printf("(csv written to %s)\n", path.c_str());
  }
}

/// --json <path> support (the bench_diff input format).
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

/// Typed row accumulator rendered as {"bench": name, "rows": [...]}:
/// one object per row, keys in insertion order. This is the committed
/// BENCH_*.json shape that tools/bench_diff compares run to run.
class JsonRows {
 public:
  explicit JsonRows(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonRows& Row() {
    writer_ = nullptr;
    rows_.emplace_back();
    writer_ = &rows_.back();
    writer_->BeginObject();
    return *this;
  }
  JsonRows& Add(std::string_view key, std::string_view v) {
    writer_->KV(key, v);
    return *this;
  }
  JsonRows& Add(std::string_view key, const char* v) {
    writer_->KV(key, std::string_view(v));
    return *this;
  }
  JsonRows& Add(std::string_view key, double v) {
    writer_->KV(key, v);
    return *this;
  }
  JsonRows& Add(std::string_view key, int64_t v) {
    writer_->KV(key, v);
    return *this;
  }
  JsonRows& Add(std::string_view key, uint64_t v) {
    writer_->KV(key, v);
    return *this;
  }
  JsonRows& Add(std::string_view key, bool v) {
    writer_->KV(key, v);
    return *this;
  }

  std::string ToString() const {
    JsonWriter w;
    w.BeginObject();
    w.KV("bench", bench_name_);
    w.Key("rows").BeginArray();
    std::string out = w.str();
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ',';
      out += rows_[i].str();
      out += '}';  // each row's writer holds an open object
    }
    out += "]}";
    return out;
  }

 private:
  std::string bench_name_;
  std::vector<JsonWriter> rows_;
  JsonWriter* writer_ = nullptr;
};

inline void MaybeWriteJson(const JsonRows& rows, const std::string& path) {
  if (path.empty()) return;
  Status st = WriteFileAtomic(path, rows.ToString());
  if (!st.ok()) {
    std::fprintf(stderr, "json write failed: %s\n", st.ToString().c_str());
  } else {
    std::printf("(json written to %s)\n", path.c_str());
  }
}

}  // namespace bench
}  // namespace birch

#endif  // BIRCH_BENCH_BENCH_UTIL_H_
