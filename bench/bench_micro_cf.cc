// Microbenchmarks (google-benchmark) for the hot primitives: CF point
// accumulation, the D0-D4 distances, CF-tree point insertion across
// page sizes and metrics, and tree rebuilding. These back the design
// decisions called out in DESIGN.md (entry layout, descent metric).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <string>

#include "birch/cf_tree.h"
#include "birch/cf_vector.h"
#include "birch/kernel/kernel.h"
#include "birch/metrics.h"
#include "birch/phase1.h"
#include "obs/metrics.h"
#include "pagestore/memory_tracker.h"
#include "util/random.h"

namespace birch {
namespace {

void BM_CfAddPoint(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto rep = static_cast<CfRepresentation>(state.range(1));
  Rng rng(1);
  std::vector<double> p(dim);
  for (auto& v : p) v = rng.NextDouble();
  CfVector cf(dim, rep);
  for (auto _ : state) {
    cf.AddPoint(p);
    benchmark::DoNotOptimize(cf);
  }
  state.SetLabel(CfRepresentationName(rep));
}
BENCHMARK(BM_CfAddPoint)->ArgsProduct({{2, 8, 32}, {0, 1}});

void BM_CfMerge(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto rep = static_cast<CfRepresentation>(state.range(1));
  Rng rng(2);
  CfVector a(dim, rep), b(dim, rep);
  std::vector<double> p(dim);
  for (int i = 0; i < 100; ++i) {
    for (auto& v : p) v = rng.NextDouble();
    a.AddPoint(p);
    for (auto& v : p) v = rng.NextDouble();
    b.AddPoint(p);
  }
  for (auto _ : state) {
    CfVector m = CfVector::Merged(a, b);
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel(CfRepresentationName(rep));
}
BENCHMARK(BM_CfMerge)->ArgsProduct({{2, 32}, {0, 1}});

void BM_Distance(benchmark::State& state) {
  const auto metric = static_cast<DistanceMetric>(state.range(0));
  Rng rng(3);
  CfVector a(8), b(8);
  std::vector<double> p(8);
  for (int i = 0; i < 50; ++i) {
    for (auto& v : p) v = rng.NextDouble();
    a.AddPoint(p);
    for (auto& v : p) v = rng.NextDouble() + 2.0;
    b.AddPoint(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Distance(metric, a, b));
  }
  state.SetLabel(MetricName(metric));
}
BENCHMARK(BM_Distance)->DenseRange(0, 4);

void BM_TreeInsert(benchmark::State& state) {
  const size_t page = static_cast<size_t>(state.range(0));
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = page;
  o.threshold = 0.5;
  Rng rng(4);
  MemoryTracker mem;
  CfTree tree(o, &mem);
  std::vector<double> p(2);
  for (auto _ : state) {
    p[0] = rng.Uniform(0, 100);
    p[1] = rng.Uniform(0, 100);
    benchmark::DoNotOptimize(tree.InsertPoint(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeInsert)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TreeInsertMetric(benchmark::State& state) {
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 1024;
  o.threshold = 0.5;
  o.metric = static_cast<DistanceMetric>(state.range(0));
  Rng rng(5);
  MemoryTracker mem;
  CfTree tree(o, &mem);
  std::vector<double> p(2);
  for (auto _ : state) {
    p[0] = rng.Uniform(0, 100);
    p[1] = rng.Uniform(0, 100);
    benchmark::DoNotOptimize(tree.InsertPoint(p));
  }
  state.SetLabel(MetricName(o.metric));
}
BENCHMARK(BM_TreeInsertMetric)->DenseRange(0, 4);

// The tentpole A/B: identical insert workload through the scalar
// per-entry oracle vs the batched SoA kernel scans. Steady-state
// (warmed tree, fixed point set, pure absorb/descend traffic) so the
// measured delta is the descent cost itself. The page size scales
// with dim so node fan-out stays in the paper's regime (~dozens of
// entries per node) instead of collapsing to B≈7 at dim=64, where
// there is no scan left to batch.
void BM_TreeInsertKernel(benchmark::State& state) {
  const auto kernel = static_cast<KernelKind>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  CfTreeOptions o;
  o.dim = dim;
  o.page_size = std::max<size_t>(4096, dim * 512);
  o.threshold = 0.5 * std::sqrt(static_cast<double>(dim));
  o.kernel = kernel;
  Rng rng(4);
  MemoryTracker mem;
  CfTree tree(o, &mem);
  constexpr size_t kPoints = 4096;
  std::vector<std::vector<double>> pts(kPoints, std::vector<double>(dim));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.Uniform(0, 100);
  }
  for (const auto& p : pts) tree.InsertPoint(p);  // warm to steady state
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.InsertPoint(pts[i]));
    i = (i + 1) % kPoints;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(KernelName(kernel)) + "/dim=" +
                 std::to_string(dim) +
                 (kernel == KernelKind::kBatch && kernel::Avx2Active()
                      ? "/avx2"
                      : ""));
}
BENCHMARK(BM_TreeInsertKernel)
    ->ArgsProduct({{0, 1}, {2, 16, 64}});

// Instrumentation overhead on the insert path, obs enabled vs
// disabled. The tree is warmed to steady state on a fixed point set
// first (repeat inserts are pure absorptions), so per-insert cost does
// not depend on the iteration count and the two columns are directly
// comparable. The obs-off column is the baseline; the delta documents
// the <3% insert-path overhead budget (DESIGN.md "Observability").
void BM_TreeInsertObs(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  const bool prev = obs::Enabled();
  obs::SetEnabled(obs_on);
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 1024;
  o.threshold = 0.5;
  Rng rng(4);
  MemoryTracker mem;
  CfTree tree(o, &mem);
  constexpr size_t kPoints = 4096;
  std::vector<std::array<double, 2>> pts(kPoints);
  for (auto& p : pts) {
    p[0] = rng.Uniform(0, 100);
    p[1] = rng.Uniform(0, 100);
  }
  for (const auto& p : pts) tree.InsertPoint(p);  // warm to steady state
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.InsertPoint(pts[i]));
    i = (i + 1) % kPoints;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(obs_on ? "obs-on" : "obs-off");
  obs::SetEnabled(prev);
}
BENCHMARK(BM_TreeInsertObs)->Arg(0)->Arg(1);

// Representation A/B on the insert path: classic (N, LS, SS) vs
// BETULA (N, mean, S) f64 vs BETULA f32 storage, steady-state absorb
// traffic (same harness as BM_TreeInsertKernel).
void BM_TreeInsertCf(benchmark::State& state) {
  const auto rep = static_cast<CfRepresentation>(state.range(0));
  const auto storage = static_cast<CfStorage>(state.range(1));
  const size_t dim = static_cast<size_t>(state.range(2));
  CfTreeOptions o;
  o.dim = dim;
  o.page_size = std::max<size_t>(4096, dim * 512);
  o.threshold = 0.5 * std::sqrt(static_cast<double>(dim));
  o.cf = rep;
  o.cf_storage = storage;
  Rng rng(4);
  MemoryTracker mem;
  CfTree tree(o, &mem);
  constexpr size_t kPoints = 4096;
  std::vector<std::vector<double>> pts(kPoints, std::vector<double>(dim));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.Uniform(0, 100);
  }
  for (const auto& p : pts) tree.InsertPoint(p);  // warm to steady state
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.InsertPoint(pts[i]));
    i = (i + 1) % kPoints;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(CfRepresentationName(rep)) + "/" +
                 CfStorageName(storage) + "/dim=" + std::to_string(dim));
}
BENCHMARK(BM_TreeInsertCf)
    ->Args({0, 0, 2})
    ->Args({1, 0, 2})
    ->Args({1, 1, 2})
    ->Args({0, 0, 16})
    ->Args({1, 0, 16})
    ->Args({1, 1, 16});

// Batch-first ingest A/B: the same steady-state stream through the
// per-point Add() loop vs one AddBatch() call over the whole block.
// The batch path validates once, keeps the CfPoint scratch and kernel
// workspace hot across points, and never re-enters the per-call
// precondition checks — the measured ratio is the batch-ingest
// speedup the AddBatch surface buys on the serial path.
void BM_AddBatch(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const size_t dim = static_cast<size_t>(state.range(1));
  Phase1Options o;
  o.tree.dim = dim;
  o.tree.page_size = std::max<size_t>(4096, dim * 512);
  o.tree.threshold = 0.5 * std::sqrt(static_cast<double>(dim));
  o.memory_budget_bytes = 0;  // unbounded: no rebuilds mid-measurement
  o.disk_budget_bytes = 0;
  o.outlier_handling = false;
  o.delay_split = false;
  Phase1Builder builder(o);
  constexpr size_t kPoints = 4096;
  Rng rng(4);
  std::vector<double> xs(kPoints * dim);
  for (auto& v : xs) v = rng.Uniform(0, 100);
  // Warm to steady state: repeat ingest is pure absorb traffic.
  if (!builder.AddBatch(xs, kPoints).ok()) {
    state.SkipWithError("warmup AddBatch failed");
    return;
  }
  std::span<const double> all(xs);
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(builder.AddBatch(all, kPoints));
    } else {
      for (size_t i = 0; i < kPoints; ++i) {
        benchmark::DoNotOptimize(builder.Add(all.subspan(i * dim, dim)));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kPoints));
  state.SetLabel(std::string(batched ? "add-batch" : "add-loop") +
                 "/dim=" + std::to_string(dim));
}
BENCHMARK(BM_AddBatch)->ArgsProduct({{0, 1}, {2, 16, 64}});

void BM_TreeRebuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    CfTreeOptions o;
    o.dim = 2;
    o.page_size = 1024;
    o.threshold = 0.1;
    MemoryTracker mem;
    CfTree tree(o, &mem);
    Rng rng(6);
    std::vector<double> p(2);
    for (int i = 0; i < n; ++i) {
      p[0] = rng.Uniform(0, 50);
      p[1] = rng.Uniform(0, 50);
      tree.InsertPoint(p);
    }
    state.ResumeTiming();
    tree.Rebuild(0.5);
    benchmark::DoNotOptimize(tree.leaf_entry_count());
  }
}
BENCHMARK(BM_TreeRebuild)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace birch

BENCHMARK_MAIN();
