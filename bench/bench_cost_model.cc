// E11 — Sec. 6.1: the CPU cost model.
//
// The paper's Phase-1 CPU analysis: inserting N points costs
// O(d * N * B * (1 + log_B(M/P))) distance comparisons, plus
// re-insertion work per rebuild, and the number of rebuilds is
// logarithmically bounded. This bench measures the tree's actual
// distance-comparison counters across N and page sizes and prints them
// next to the model's prediction; the comparisons-per-point column
// should track B * (1 + height) and stay flat in N.
#include <cmath>
#include <cstdio>

#include "birch/phase1.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int, char**) {
  std::printf(
      "E11 / Sec. 6.1: measured insert cost vs the paper's model\n"
      "(cmp/pt should track B*(1+height) and stay ~flat as N grows)\n\n");
  TablePrinter table({"P(bytes)", "N", "B", "height", "rebuilds",
                      "cmp/pt", "model B*(1+h)", "nodes", "entries"});

  for (size_t page : {512u, 1024u, 2048u}) {
    for (int n_per : {250, 500, 1000, 2000}) {
      auto gen = GeneratePaperDataset(PaperDataset::kDS1, 100, n_per);
      if (!gen.ok()) return 1;
      const auto& g = gen.value();

      Phase1Options o;
      o.tree.dim = 2;
      o.tree.page_size = page;
      o.memory_budget_bytes = 80 * 1024;
      o.disk_budget_bytes = 16 * 1024;
      o.expected_points = g.data.size();
      Phase1Builder builder(o);
      if (!builder.AddDataset(g.data).ok()) return 1;
      if (!builder.Finish().ok()) return 1;

      const CfTree& tree = builder.tree();
      double cmp_per_pt =
          static_cast<double>(tree.stats().distance_comparisons) /
          static_cast<double>(g.data.size());
      double model = static_cast<double>(tree.layout().B()) *
                     (1.0 + static_cast<double>(tree.height()));
      table.Row()
          .Add(page)
          .Add(g.data.size())
          .Add(tree.layout().B())
          .Add(tree.height())
          .Add(static_cast<int64_t>(builder.stats().rebuilds))
          .Add(cmp_per_pt, 1)
          .Add(model, 1)
          .Add(tree.node_count())
          .Add(tree.leaf_entry_count());
    }
  }
  table.Print();
  std::printf(
      "\nNote: cmp/pt includes split/refinement and rebuild "
      "re-insertions, so it sits above the pure-descent model, but its "
      "flatness in N is the linear-scaling claim.\n");
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
