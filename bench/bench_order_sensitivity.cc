// E2 — Table 4, ordered rows (DS1o/DS2o/DS3o): input-order
// sensitivity. The paper's claim: feeding the points cluster-by-cluster
// (the pathological order for an incremental algorithm) changes BIRCH's
// time and quality only marginally.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E2 / Table 4 (ordered): input-order sensitivity\n"
      "(paper: ordered variants match randomized time and quality)\n\n");
  TablePrinter table({"dataset", "order", "time(s)", "D", "D-actual",
                      "matched", "accuracy"});
  CsvWriter csv({"dataset", "order", "seconds", "d", "d_actual", "matched",
                 "accuracy"});

  struct Pair {
    PaperDataset randomized;
    PaperDataset ordered;
  };
  const Pair pairs[] = {
      {PaperDataset::kDS1, PaperDataset::kDS1o},
      {PaperDataset::kDS2, PaperDataset::kDS2o},
      {PaperDataset::kDS3, PaperDataset::kDS3o},
  };
  for (const auto& pair : pairs) {
    for (auto ds : {pair.randomized, pair.ordered}) {
      auto gen = GeneratePaperDataset(ds);
      if (!gen.ok()) return 1;
      const auto& g = gen.value();
      auto row_or =
          bench::RunBirch(g, bench::PaperDefaults(100, g.data.size()));
      if (!row_or.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", PaperDatasetName(ds),
                     row_or.status().ToString().c_str());
        return 1;
      }
      const auto& row = row_or.value();
      const char* order =
          (ds == pair.ordered) ? "ordered" : "randomized";
      table.Row()
          .Add(PaperDatasetName(ds))
          .Add(order)
          .Add(row.seconds_total, 2)
          .Add(row.weighted_diameter, 2)
          .Add(row.actual_diameter, 2)
          .Add(row.match.matched)
          .Add(row.label_accuracy, 3);
      csv.Row()
          .Add(PaperDatasetName(ds))
          .Add(order)
          .Add(row.seconds_total)
          .Add(row.weighted_diameter)
          .Add(row.actual_diameter)
          .Add(static_cast<int64_t>(row.match.matched))
          .Add(row.label_accuracy);
    }
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
