// E9 — Sec. 6.5, outlier handling and delay-split options.
//
// On a noisy base workload (rn = 10% uniform background noise), the
// paper reports that the outlier options let BIRCH discard noise
// instead of letting it bloat the tree. This bench runs the 2x2 grid of
// {outlier handling, delay-split} on DS1 + 10% noise, plus a final row
// with the Phase-4 outlier-discard option; "noise-acc" counts noise
// points as correct when they end labelled -1.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E9 / Sec. 6.5: outlier / delay-split options on DS1 + 10%% noise\n"
      "(paper: outlier handling sheds noise, preserving cluster "
      "quality)\n\n");
  TablePrinter table({"outliers", "delay-split", "ph4-discard", "time(s)",
                      "D", "outlier-pts", "matched", "accuracy",
                      "noise-acc", "rebuilds"});
  CsvWriter csv({"outliers", "delay_split", "ph4_discard", "seconds", "d",
                 "outlier_pts", "matched", "accuracy", "noise_acc",
                 "rebuilds"});

  // DS1-like workload with grid spacing widened 4 -> 8 so the uniform
  // background noise is geometrically separable from the clusters (on
  // the paper's spacing-4 grid every noise point lies within ~2.9 of a
  // cluster center, and no method can tell it from cluster fringe).
  GeneratorOptions go = PaperDatasetOptions(PaperDataset::kDS1, 0, 0,
                                            /*noise_fraction=*/0.10);
  go.grid_spacing = 8.0;
  auto gen = Generate(go);
  if (!gen.ok()) return 1;
  const auto& g = gen.value();

  struct Config {
    bool outliers;
    bool delay;
    double refine_discard;  // Phase-4 outlier-discard distance (0 = off)
  };
  const Config configs[] = {
      {false, false, 0.0}, {false, true, 0.0}, {true, false, 0.0},
      {true, true, 0.0},   {true, true, 3.0},
  };
  for (const Config& cfg : configs) {
    BirchOptions o = bench::PaperDefaults(100, g.data.size());
    o.outliers.handling = cfg.outliers;
    o.outliers.delay_split = cfg.delay;
    o.refine.outlier_distance = cfg.refine_discard;
    auto row_or = bench::RunBirch(g, o);
    if (!row_or.ok()) {
      std::fprintf(stderr, "config failed: %s\n",
                   row_or.status().ToString().c_str());
      return 1;
    }
    const auto& row = row_or.value();
    double noise_acc = LabelAccuracy(g.truth, row.result.labels, row.match,
                                     /*noise_as_outlier=*/true);
    table.Row()
        .Add(cfg.outliers ? "on" : "off")
        .Add(cfg.delay ? "on" : "off")
        .Add(cfg.refine_discard, 1)
        .Add(row.seconds_total, 2)
        .Add(row.weighted_diameter, 2)
        .Add(static_cast<int64_t>(row.result.outlier_points))
        .Add(row.match.matched)
        .Add(row.label_accuracy, 3)
        .Add(noise_acc, 3)
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds));
    csv.Row()
        .Add(cfg.outliers ? "on" : "off")
        .Add(cfg.delay ? "on" : "off")
        .Add(cfg.refine_discard)
        .Add(row.seconds_total)
        .Add(row.weighted_diameter)
        .Add(static_cast<int64_t>(row.result.outlier_points))
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(row.label_accuracy)
        .Add(noise_acc)
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds));
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
