// E1 — Table 4 (base workload) and the numeric stand-in for Figs. 6-7.
//
// Runs BIRCH with the paper's default parameters on DS1, DS2 and DS3
// (100 clusters, ~100k points each) and prints, per dataset: running
// time, the quality measure D (weighted average cluster diameter), the
// number of leaf entries after Phase 1, rebuild count, and peak memory.
// The paper's visual claim (Figs. 6-7: BIRCH clusters ~= actual
// clusters) is reported as centroid displacement / count deviation /
// radius deviation from greedy cluster matching, plus an ASCII render
// of the DS1 clustering.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "eval/visualize.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  // --smoke: scaled-down DS1 with metrics + trace export, fast enough
  // for `ctest -L smoke`. Exercises the full bench + obs pipeline.
  const bool smoke = bench::HasFlagArg(argc, argv, "--smoke");
  // --scalar-kernel: A/B the batched kernels against the scalar oracle
  // (identical output; Phase-1 wall time is the number to compare).
  const KernelKind kernel = bench::KernelFromArgs(argc, argv);
  if (smoke) obs::Tracer::Default().StartRecording();
  std::printf(
      "E1 / Table 4: base workload (paper: BIRCH ~= 50s per dataset on "
      "1996 hardware,\nD within a few %% of the actual clusters, all 100 "
      "clusters recovered)\n\n");
  TablePrinter table({"dataset", "N", "time(s)", "ph1(s)", "ph4(s)", "D",
                      "D-actual", "entries", "rebuilds", "peak-mem(KB)",
                      "matched", "centroid-disp"});
  CsvWriter csv({"dataset", "n", "seconds", "d", "d_actual", "entries",
                 "rebuilds", "matched", "centroid_disp"});
  bench::JsonRows json("bench_base_workload");

  std::vector<PaperDataset> datasets =
      smoke ? std::vector<PaperDataset>{PaperDataset::kDS1}
            : std::vector<PaperDataset>{PaperDataset::kDS1,
                                        PaperDataset::kDS2,
                                        PaperDataset::kDS3};
  const int k = smoke ? 25 : 100;
  obs::MetricsSnapshot smoke_metrics;
  for (auto ds : datasets) {
    auto gen = smoke ? GeneratePaperDataset(ds, k, /*n_override=*/100)
                     : GeneratePaperDataset(ds);
    if (!gen.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    const auto& g = gen.value();
    BirchOptions opts = bench::PaperDefaults(k, g.data.size());
    opts.exec.kernel = kernel;
    auto row_or = bench::RunBirch(g, opts);
    if (!row_or.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   row_or.status().ToString().c_str());
      return 1;
    }
    const auto& row = row_or.value();
    if (smoke) smoke_metrics = row.result.metrics;
    table.Row()
        .Add(PaperDatasetName(ds))
        .Add(g.data.size())
        .Add(row.seconds_total, 2)
        .Add(row.result.timings.phase1, 3)
        .Add(row.result.timings.phase4, 2)
        .Add(row.weighted_diameter, 2)
        .Add(row.actual_diameter, 2)
        .Add(row.result.leaf_entries_after_phase1)
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
        .Add(static_cast<int64_t>(row.result.peak_memory_bytes / 1024))
        .Add(row.match.matched)
        .Add(row.match.mean_centroid_displacement, 3);
    csv.Row()
        .Add(PaperDatasetName(ds))
        .Add(static_cast<int64_t>(g.data.size()))
        .Add(row.seconds_total)
        .Add(row.weighted_diameter)
        .Add(row.actual_diameter)
        .Add(static_cast<int64_t>(row.result.leaf_entries_after_phase1))
        .Add(static_cast<int64_t>(row.result.phase1.rebuilds))
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(row.match.mean_centroid_displacement);
    json.Row()
        .Add("dataset", PaperDatasetName(ds))
        .Add("n", static_cast<int64_t>(g.data.size()))
        .Add("seconds", row.seconds_total)
        .Add("d", row.weighted_diameter)
        .Add("d_actual", row.actual_diameter)
        .Add("entries",
             static_cast<int64_t>(row.result.leaf_entries_after_phase1))
        .Add("rebuilds", static_cast<int64_t>(row.result.phase1.rebuilds))
        .Add("matched", static_cast<int64_t>(row.match.matched))
        .Add("centroid_disp", row.match.mean_centroid_displacement);

    if (ds == PaperDataset::kDS1 && !smoke) {
      // Figs. 6-7 stand-in: actual vs BIRCH clusters for DS1.
      std::vector<CfVector> actual_cfs;
      for (const auto& a : g.actual) actual_cfs.push_back(a.cf);
      std::printf("DS1 actual clusters (Fig. 6 stand-in):\n%s\n",
                  RenderClusters(actual_cfs).c_str());
      std::printf("DS1 BIRCH clusters (Fig. 7 stand-in):\n%s\n",
                  RenderClusters(row.result.clusters).c_str());
    }
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  bench::MaybeWriteJson(json, bench::JsonPathFromArgs(argc, argv));
  if (smoke) {
    // The smoke run must prove the export pipeline end to end: a
    // metrics table with real counts, a CSV, and a loadable trace.
    if (smoke_metrics.empty()) {
      std::fprintf(stderr, "smoke: metrics snapshot is empty\n");
      return 1;
    }
    if (!bench::DumpMetrics(smoke_metrics, "smoke_metrics.csv",
                            "smoke_trace.json")) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
