// Ablations for the design choices flagged in DESIGN.md:
//   A1  merging refinement on/off — split pathology vs extra distance
//       comparisons (paper Sec. 4.3 motivates the refinement).
//   A2  tree descent / closeness metric D0-D4 — the paper defaults to
//       D2; this sweeps all five on the same workload.
//   A3  threshold condition: diameter vs radius (Sec. 4.2 allows both;
//       a radius threshold admits ~2x looser merges at equal T).
// Run on DS1 at base-workload scale.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1);
  if (!gen.ok()) return 1;
  const auto& g = gen.value();
  CsvWriter csv({"ablation", "variant", "seconds", "d", "matched",
                 "entries", "refinements", "comparisons_per_point"});
  const std::string csv_path = bench::CsvPathFromArgs(argc, argv);

  auto run = [&](const char* ablation, const char* variant,
                 const BirchOptions& o, TablePrinter* table) -> int {
    auto row_or = bench::RunBirch(g, o);
    if (!row_or.ok()) {
      std::fprintf(stderr, "%s/%s failed: %s\n", ablation, variant,
                   row_or.status().ToString().c_str());
      return 1;
    }
    const auto& row = row_or.value();
    double cmp_per_pt =
        static_cast<double>(row.result.tree_stats.distance_comparisons) /
        static_cast<double>(g.data.size());
    table->Row()
        .Add(variant)
        .Add(row.seconds_total, 2)
        .Add(row.weighted_diameter, 2)
        .Add(row.match.matched)
        .Add(row.result.leaf_entries_after_phase1)
        .Add(static_cast<int64_t>(row.result.tree_stats.merge_refinements))
        .Add(cmp_per_pt, 1);
    csv.Row()
        .Add(ablation)
        .Add(variant)
        .Add(row.seconds_total)
        .Add(row.weighted_diameter)
        .Add(static_cast<int64_t>(row.match.matched))
        .Add(static_cast<int64_t>(row.result.leaf_entries_after_phase1))
        .Add(static_cast<int64_t>(row.result.tree_stats.merge_refinements))
        .Add(cmp_per_pt);
    return 0;
  };

  std::printf("A1: merging refinement (paper Sec. 4.3) on DS1\n\n");
  {
    TablePrinter t({"variant", "time(s)", "D", "matched", "entries",
                    "refinements", "cmp/pt"});
    BirchOptions on = bench::PaperDefaults(100, g.data.size());
    BirchOptions off = on;
    off.tree.merging_refinement = false;
    if (run("merging_refinement", "on", on, &t)) return 1;
    if (run("merging_refinement", "off", off, &t)) return 1;
    t.Print();
  }

  std::printf("\nA2: descent/closeness metric (paper default D2)\n\n");
  {
    TablePrinter t({"variant", "time(s)", "D", "matched", "entries",
                    "refinements", "cmp/pt"});
    for (auto m : {DistanceMetric::kD0, DistanceMetric::kD1,
                   DistanceMetric::kD2, DistanceMetric::kD3,
                   DistanceMetric::kD4}) {
      BirchOptions o = bench::PaperDefaults(100, g.data.size());
      o.tree.metric = m;
      if (run("metric", MetricName(m), o, &t)) return 1;
    }
    t.Print();
  }

  std::printf("\nA3: threshold condition (diameter vs radius)\n\n");
  {
    TablePrinter t({"variant", "time(s)", "D", "matched", "entries",
                    "refinements", "cmp/pt"});
    BirchOptions diam = bench::PaperDefaults(100, g.data.size());
    BirchOptions rad = diam;
    rad.tree.threshold_kind = ThresholdKind::kRadius;
    if (run("threshold_kind", "diameter", diam, &t)) return 1;
    if (run("threshold_kind", "radius", rad, &t)) return 1;
    t.Print();
  }

  std::printf("\nA4: Phase-3 global algorithm (paper default: "
              "hierarchical)\n\n");
  {
    TablePrinter t({"variant", "time(s)", "D", "matched", "entries",
                    "refinements", "cmp/pt"});
    struct Named {
      const char* name;
      GlobalAlgorithm algo;
    };
    for (auto [name, algo] :
         {Named{"hierarchical", GlobalAlgorithm::kHierarchical},
          Named{"kmeans", GlobalAlgorithm::kKMeans},
          Named{"medoids", GlobalAlgorithm::kMedoids}}) {
      BirchOptions o = bench::PaperDefaults(100, g.data.size());
      o.global_phase.algorithm = algo;
      if (run("global_algorithm", name, o, &t)) return 1;
    }
    t.Print();
  }

  bench::MaybeWriteCsv(csv, csv_path);
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
