// E12 (extension of Sec. 5.1.4): behaviour of the outlier disk budget
// R. The paper fixes R = 20% of M and describes the control flow when
// the disk fills (re-absorb cycles, Fig. 2's "out of disk space"
// branch). This bench sweeps R on a noisy workload and reports the
// spill/re-absorb/forced-insert counters and the resulting quality —
// showing BIRCH degrades gracefully as the disk shrinks to zero.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/paper_datasets.h"
#include "util/table.h"

namespace birch {
namespace {

int Run(int argc, char** argv) {
  std::printf(
      "E12 / Sec. 5.1.4 extension: outlier-disk budget sweep on a "
      "noisy DS1 variant\n(graceful degradation as R shrinks; paper "
      "default R = 20%% of M)\n\n");
  TablePrinter table({"R(KB)", "time(s)", "D", "spilled", "reabsorbed",
                      "reabsorb-cycles", "forced-inserts",
                      "delay-spilled", "matched"});
  CsvWriter csv({"r_kb", "seconds", "d", "spilled", "reabsorbed",
                 "cycles", "forced", "delay_spilled", "matched"});

  GeneratorOptions go = PaperDatasetOptions(PaperDataset::kDS1, 0, 0,
                                            /*noise_fraction=*/0.05);
  go.grid_spacing = 8.0;
  auto gen = Generate(go);
  if (!gen.ok()) return 1;
  const auto& g = gen.value();

  for (size_t r_kb : {0u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    BirchOptions o = bench::PaperDefaults(100, g.data.size());
    o.resources.disk_bytes = r_kb * 1024;
    if (o.resources.disk_bytes == 0) {
      // No disk at all: the outlier/delay options have nowhere to
      // spill; exercise the forced-insert fallbacks.
      o.resources.disk_bytes = o.resources.page_size;  // minimum one page
    }
    auto row_or = bench::RunBirch(g, o);
    if (!row_or.ok()) {
      std::fprintf(stderr, "R=%zuKB failed: %s\n", r_kb,
                   row_or.status().ToString().c_str());
      return 1;
    }
    const auto& row = row_or.value();
    const Phase1Stats& s = row.result.phase1;
    table.Row()
        .Add(r_kb)
        .Add(row.seconds_total, 2)
        .Add(row.weighted_diameter, 2)
        .Add(static_cast<int64_t>(s.outlier_entries_spilled))
        .Add(static_cast<int64_t>(s.outlier_entries_reabsorbed))
        .Add(static_cast<int64_t>(s.reabsorb_cycles))
        .Add(static_cast<int64_t>(s.forced_inserts))
        .Add(static_cast<int64_t>(s.points_delay_spilled))
        .Add(row.match.matched);
    csv.Row()
        .Add(static_cast<int64_t>(r_kb))
        .Add(row.seconds_total)
        .Add(row.weighted_diameter)
        .Add(static_cast<int64_t>(s.outlier_entries_spilled))
        .Add(static_cast<int64_t>(s.outlier_entries_reabsorbed))
        .Add(static_cast<int64_t>(s.reabsorb_cycles))
        .Add(static_cast<int64_t>(s.forced_inserts))
        .Add(static_cast<int64_t>(s.points_delay_spilled))
        .Add(static_cast<int64_t>(row.match.matched));
  }
  table.Print();
  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
