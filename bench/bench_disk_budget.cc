// E12 (extension of Sec. 5.1.4): behaviour of the outlier disk budget
// R. The paper fixes R = 20% of M and describes the control flow when
// the disk fills (re-absorb cycles, Fig. 2's "out of disk space"
// branch). This bench sweeps R on a noisy workload — with the page
// codec off and on, since compressed envelopes are charged at stored
// size and so stretch the same R further — and reports the
// spill/re-absorb/forced-insert counters, the resulting quality, the
// compression ratio, and the hot-tier hit rate.
//
// E19 (ROADMAP item 2, "memory wall"): a CF tree whose raw page bytes
// are >= 4x the DRAM hot-tier budget, served through the compressed
// tiered store under a hot-set read skew, against an uncompressed
// unlimited baseline. The committed --json output feeds the
// tools/bench_diff perf gates; in addition the bench itself exits
// nonzero (full mode) if the Phase-1 codec-on slowdown at the paper
// default R exceeds 20% — the ROADMAP success metric.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "birch/tree_io.h"
#include "datagen/paper_datasets.h"
#include "pagestore/page_store.h"
#include "util/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace birch {
namespace {

double Ratio(uint64_t raw, uint64_t stored) {
  return stored > 0 ? static_cast<double>(raw) / static_cast<double>(stored)
                    : 1.0;
}

double HitRate(uint64_t hits, uint64_t misses) {
  uint64_t total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

// --- Leg 1: R sweep x {raw, delta-rle} on noisy DS1. ---

int RunSweep(const GeneratedData& g, bool smoke, bench::JsonRows* json,
             CsvWriter* csv, double* phase1_raw_s, double* phase1_codec_s) {
  std::printf(
      "E12 / Sec. 5.1.4 extension: outlier-disk budget sweep on a "
      "noisy DS1 variant\n(graceful degradation as R shrinks; paper "
      "default R = 20%% of M; each R run\nraw and with the delta-rle "
      "page codec + 4KB hot tier)\n\n");
  TablePrinter table({"R(KB)", "codec", "time(s)", "p1(s)", "D", "spilled",
                      "reabsorbed", "cycles", "forced", "delay-spilled",
                      "matched", "ratio", "hot-hit%"});

  std::vector<size_t> r_kbs = smoke ? std::vector<size_t>{4, 16}
                                    : std::vector<size_t>{0, 2, 4, 8, 16,
                                                          32, 64};
  for (size_t r_kb : r_kbs) {
    for (PageCodecKind codec :
         {PageCodecKind::kNone, PageCodecKind::kDeltaRle}) {
      BirchOptions o = bench::PaperDefaults(smoke ? 25 : 100, g.data.size());
      o.resources.disk_bytes = r_kb * 1024;
      if (o.resources.disk_bytes == 0) {
        // No disk at all: the outlier/delay options have nowhere to
        // spill; exercise the forced-insert fallbacks.
        o.resources.disk_bytes = o.resources.page_size;  // minimum one page
      }
      o.resources.page_codec = codec;
      if (codec != PageCodecKind::kNone) {
        o.resources.hot_tier_bytes = 4 * 1024;
      }
      auto row_or = bench::RunBirch(g, o);
      if (!row_or.ok()) {
        std::fprintf(stderr, "R=%zuKB codec=%s failed: %s\n", r_kb,
                     PageCodecName(codec), row_or.status().ToString().c_str());
        return 1;
      }
      const bench::RunRow& row = row_or.value();
      const BirchResult& res = row.result;
      const Phase1Stats& s = res.phase1;
      const double ratio = Ratio(res.disk_raw_bytes, res.disk_stored_bytes);
      const double hit_rate = HitRate(res.disk_hot_hits, res.disk_hot_misses);
      if (r_kb == 16) {
        (codec == PageCodecKind::kNone ? *phase1_raw_s : *phase1_codec_s) =
            res.timings.phase1;
      }
      table.Row()
          .Add(r_kb)
          .Add(PageCodecName(codec))
          .Add(row.seconds_total, 2)
          .Add(res.timings.phase1, 2)
          .Add(row.weighted_diameter, 2)
          .Add(static_cast<int64_t>(s.outlier_entries_spilled))
          .Add(static_cast<int64_t>(s.outlier_entries_reabsorbed))
          .Add(static_cast<int64_t>(s.reabsorb_cycles))
          .Add(static_cast<int64_t>(s.forced_inserts))
          .Add(static_cast<int64_t>(s.points_delay_spilled))
          .Add(row.match.matched)
          .Add(ratio, 2)
          .Add(hit_rate * 100.0, 1);
      csv->Row()
          .Add(static_cast<int64_t>(r_kb))
          .Add(PageCodecName(codec))
          .Add(row.seconds_total)
          .Add(res.timings.phase1)
          .Add(row.weighted_diameter)
          .Add(static_cast<int64_t>(s.outlier_entries_spilled))
          .Add(static_cast<int64_t>(s.outlier_entries_reabsorbed))
          .Add(static_cast<int64_t>(s.reabsorb_cycles))
          .Add(static_cast<int64_t>(s.forced_inserts))
          .Add(static_cast<int64_t>(s.points_delay_spilled))
          .Add(static_cast<int64_t>(row.match.matched))
          .Add(ratio)
          .Add(hit_rate);
      json->Row()
          .Add("scenario", "r-sweep")
          .Add("r_kb", static_cast<uint64_t>(r_kb))
          .Add("codec", PageCodecName(codec))
          .Add("seconds", row.seconds_total)
          .Add("phase1_seconds", res.timings.phase1)
          .Add("d", row.weighted_diameter)
          .Add("spilled", s.outlier_entries_spilled)
          .Add("reabsorbed", s.outlier_entries_reabsorbed)
          .Add("matched", static_cast<int64_t>(row.match.matched))
          .Add("compression_ratio", ratio)
          .Add("hot_hit_rate", hit_rate)
          .Add("raw_bytes", res.disk_raw_bytes)
          .Add("stored_bytes", res.disk_stored_bytes);
    }
  }
  table.Print();
  return 0;
}

// --- Leg 2: the memory wall (ROADMAP item 2 / E19). ---

// Serves `passes` hot-set-skewed sweeps over every page of `store`
// (80% of reads hit the first fifth of the pages). Returns seconds.
StatusOr<double> SkewedReads(PageStore* store, size_t num_pages,
                             int passes) {
  Rng rng(7);
  std::vector<uint8_t> buf;
  Timer timer;
  for (int p = 0; p < passes; ++p) {
    for (size_t i = 0; i < num_pages; ++i) {
      PageId id = (rng.Next() % 10 < 8)
                      ? rng.Next() % (num_pages / 5 + 1)
                      : rng.Next() % num_pages;
      BIRCH_RETURN_IF_ERROR(store->Read(id, &buf));
    }
  }
  return timer.Seconds();
}

int RunMemoryWall(bool smoke, bench::JsonRows* json, CsvWriter* csv) {
  std::printf(
      "\nE19 / ROADMAP item 2: CF tree >= 4x the DRAM hot budget, served "
      "from the\ncompressed tiered store (80/20 hot-set reads) vs an "
      "unlimited raw store\n\n");

  // Build one CF tree, then persist it into both stores.
  MemoryTracker mem;
  CfTreeOptions to;
  to.dim = 2;
  to.page_size = 1024;
  to.threshold = 0.4;
  CfTree tree(to, &mem);
  Rng rng(42);
  const int n = smoke ? 4000 : 30000;
  for (int i = 0; i < n; ++i) {
    std::vector<double> p = {rng.Uniform(0, 200), rng.Uniform(0, 200)};
    tree.InsertPoint(p);
  }
  const uint64_t raw_bytes =
      static_cast<uint64_t>(tree.node_count()) * to.page_size;
  // The wall: physical DRAM for decompressed pages is a quarter of the
  // tree — the "tree >= 4x physical M" configuration.
  const size_t hot_budget = static_cast<size_t>(raw_bytes / 4);
  const int passes = smoke ? 5 : 40;

  TablePrinter table({"variant", "read(s)", "raw(KB)", "stored(KB)", "ratio",
                      "hot-hit%", "demotions", "tree/M"});
  struct Variant {
    const char* name;
    PageCodecKind codec;
    size_t hot;
  };
  double baseline_s = 0.0;
  for (const Variant& v :
       {Variant{"raw-unlimited", PageCodecKind::kNone, 0},
        Variant{"delta-rle+tier", PageCodecKind::kDeltaRle, hot_budget}}) {
    PageStoreOptions so;
    so.page_size = to.page_size;
    so.codec = v.codec;
    so.hot_tier_bytes = v.hot;
    PageStore store(so);
    auto image = TreeIO::Write(tree, &store);
    if (!image.ok()) {
      std::fprintf(stderr, "memory-wall write (%s) failed: %s\n", v.name,
                   image.status().ToString().c_str());
      return 1;
    }
    auto seconds = SkewedReads(&store, store.num_pages(), passes);
    if (!seconds.ok()) {
      std::fprintf(stderr, "memory-wall reads (%s) failed: %s\n", v.name,
                   seconds.status().ToString().c_str());
      return 1;
    }
    if (v.codec == PageCodecKind::kNone) baseline_s = seconds.value();
    const IoStats& io = store.io_stats();
    const double ratio = Ratio(io.raw_bytes_written, io.stored_bytes_written);
    const double hit_rate = HitRate(io.hot_hits, io.hot_misses);
    const double multiple =
        static_cast<double>(raw_bytes) /
        static_cast<double>(v.hot > 0 ? v.hot : raw_bytes);
    table.Row()
        .Add(v.name)
        .Add(seconds.value(), 3)
        .Add(raw_bytes / 1024)
        .Add(static_cast<uint64_t>(store.used_bytes()) / 1024)
        .Add(ratio, 2)
        .Add(hit_rate * 100.0, 1)
        .Add(static_cast<int64_t>(io.hot_demotions))
        .Add(multiple, 1);
    csv->Row()
        .Add(int64_t{-1})
        .Add(v.name)
        .Add(seconds.value())
        .Add(0.0)
        .Add(0.0)
        .Add(int64_t{0})
        .Add(int64_t{0})
        .Add(int64_t{0})
        .Add(int64_t{0})
        .Add(int64_t{0})
        .Add(int64_t{0})
        .Add(ratio)
        .Add(hit_rate);
    json->Row()
        .Add("scenario", "memory-wall")
        .Add("variant", v.name)
        .Add("seconds", seconds.value())
        .Add("raw_bytes", raw_bytes)
        .Add("stored_bytes", static_cast<uint64_t>(store.used_bytes()))
        .Add("compression_ratio", ratio)
        .Add("hot_hit_rate", hit_rate)
        .Add("hot_demotions", io.hot_demotions)
        .Add("tree_over_budget", multiple);
  }
  table.Print();
  if (baseline_s > 0.0) {
    std::printf("(4x-M wall served; raw tree %.0f KB over a %.0f KB hot "
                "budget)\n",
                raw_bytes / 1024.0, hot_budget / 1024.0);
  }
  return 0;
}

int Run(int argc, char** argv) {
  const bool smoke = bench::HasFlagArg(argc, argv, "--smoke");
  bench::JsonRows json("bench_disk_budget");
  CsvWriter csv({"r_kb", "codec", "seconds", "phase1_seconds", "d", "spilled",
                 "reabsorbed", "cycles", "forced", "delay_spilled", "matched",
                 "compression_ratio", "hot_hit_rate"});

  GeneratorOptions go =
      smoke ? PaperDatasetOptions(PaperDataset::kDS1, 25, 5000, 0.05)
            : PaperDatasetOptions(PaperDataset::kDS1, 0, 0,
                                  /*noise_fraction=*/0.05);
  go.grid_spacing = 8.0;
  auto gen = Generate(go);
  if (!gen.ok()) return 1;

  double phase1_raw_s = 0.0;
  double phase1_codec_s = 0.0;
  int rc = RunSweep(gen.value(), smoke, &json, &csv, &phase1_raw_s,
                    &phase1_codec_s);
  if (rc != 0) return rc;
  rc = RunMemoryWall(smoke, &json, &csv);
  if (rc != 0) return rc;

  bench::MaybeWriteCsv(csv, bench::CsvPathFromArgs(argc, argv));
  bench::MaybeWriteJson(json, bench::JsonPathFromArgs(argc, argv));

  // ROADMAP item 2 success metric, self-gated: Phase-1 with the codec
  // on must stay within 20% of codec-off at the paper default R. Smoke
  // runs are too short to time meaningfully, so they only report.
  if (phase1_raw_s > 0.0 && phase1_codec_s > 0.0) {
    const double slowdown = phase1_codec_s / phase1_raw_s - 1.0;
    const bool timeable = !smoke && phase1_raw_s >= 0.05;
    std::printf("\nPhase-1 codec overhead at R=16KB: %.3fs -> %.3fs "
                "(%+.1f%%, gate +20%%)%s\n",
                phase1_raw_s, phase1_codec_s, slowdown * 100.0,
                timeable ? "" : " [informational]");
    if (timeable && slowdown > 0.20) {
      std::fprintf(stderr,
                   "FAIL: Phase-1 slowdown with page codec exceeds 20%%\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace birch

int main(int argc, char** argv) { return birch::Run(argc, argv); }
