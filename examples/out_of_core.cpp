// Out-of-core clustering: 2,000,000 points (31 MB of raw data) are
// streamed through BIRCH from a generator source and clustered inside
// an 80 KB memory budget — the dataset is never materialized. This is
// the paper's "very large databases" setting: the data could equally
// come from a CSV file (CsvPointSource) or any cursor.
//
//   build/examples/out_of_core
#include <cstdio>

#include "birch/birch.h"
#include "datagen/streaming_generator.h"
#include "eval/quality.h"
#include "util/timer.h"

int main() {
  using namespace birch;

  GeneratorOptions gen;
  gen.k = 100;
  gen.n_low = gen.n_high = 20000;  // 100 x 20k = 2M points
  gen.r_low = gen.r_high = std::sqrt(2.0);
  gen.grid_spacing = 6.0;
  gen.seed = 99;
  auto source_or = StreamingGenerator::Create(gen);
  if (!source_or.ok()) return 1;
  auto& source = source_or.value();

  BirchOptions options;
  options.dim = 2;
  options.k = 100;
  options.resources.memory_bytes = 80 * 1024;
  options.refine.passes = 2;  // streamed re-scans of the source

  Timer timer;
  auto result = ClusterSource(source.get(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const BirchResult& r = result.value();

  double raw_mb = static_cast<double>(source->total_points()) * 2 * 8 /
                  (1024.0 * 1024.0);
  std::printf(
      "streamed %llu points (%.0f MB of raw data) in %.2fs\n"
      "  clusters found:    %zu\n"
      "  quality D:         %.3f (weighted avg diameter)\n"
      "  peak memory:       %zu KB (budget: %zu KB)\n"
      "  tree rebuilds:     %llu\n"
      "  data resident:     never (single scan + %d refinement scans)\n",
      static_cast<unsigned long long>(source->total_points()), raw_mb,
      timer.Seconds(), r.clusters.size(),
      WeightedAverageDiameter(r.clusters), r.peak_memory_bytes / 1024,
      options.resources.memory_bytes / 1024,
      static_cast<unsigned long long>(r.phase1.rebuilds),
      options.refine.passes);

  double total = 0.0;
  for (const auto& c : r.clusters) total += c.n();
  std::printf("  points in clusters: %.0f (%.2f%% of stream)\n", total,
              100.0 * total / static_cast<double>(source->total_points()));
  return 0;
}
