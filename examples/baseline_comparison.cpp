// Head-to-head on one dataset: BIRCH vs CLARANS vs k-means vs plain
// agglomerative clustering — time, quality D, and memory footprint.
// A compact version of the paper's Sec. 6.7 comparison.
//
//   build/examples/baseline_comparison
#include <cstdio>

#include "baselines/clara.h"
#include "baselines/clarans.h"
#include "baselines/hierarchical.h"
#include "baselines/kmeans.h"
#include "birch/birch.h"
#include "datagen/generator.h"
#include "eval/matching.h"
#include "eval/quality.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace birch;

  GeneratorOptions gen;
  gen.k = 20;
  gen.n_low = gen.n_high = 250;  // 5k points: HC baseline is O(N^2)
  gen.r_low = gen.r_high = 1.0;
  gen.grid_spacing = 8.0;
  gen.seed = 11;
  auto data_or = Generate(gen);
  if (!data_or.ok()) return 1;
  const GeneratedData& g = data_or.value();

  TablePrinter table(
      {"algorithm", "time(s)", "D", "matched/20", "approx-mem(KB)"});

  auto add_row = [&](const char* name, double seconds,
                     const std::vector<CfVector>& clusters, size_t mem_kb) {
    MatchReport match = MatchClusters(g.actual, clusters);
    table.Row()
        .Add(name)
        .Add(seconds, 3)
        .Add(WeightedAverageDiameter(clusters), 3)
        .Add(match.matched)
        .Add(mem_kb);
  };

  size_t resident_kb = g.data.size() * g.data.dim() * 8 / 1024;

  {
    BirchOptions o;
    o.dim = 2;
    o.k = 20;
    Timer t;
    auto r = ClusterDataset(g.data, o);
    if (!r.ok()) return 1;
    add_row("BIRCH", t.Seconds(), r.value().clusters,
            r.value().peak_memory_bytes / 1024);
  }
  {
    ClaransOptions o;
    o.k = 20;
    Timer t;
    auto r = Clarans(g.data, o);
    if (!r.ok()) return 1;
    add_row("CLARANS", t.Seconds(), r.value().clusters, resident_kb);
  }
  {
    ClaraOptions o;
    o.k = 20;
    Timer t;
    auto r = Clara(g.data, o);
    if (!r.ok()) return 1;
    add_row("CLARA", t.Seconds(), r.value().clusters, resident_kb);
  }
  {
    KMeansOptions o;
    o.k = 20;
    Timer t;
    auto r = KMeans(g.data, o);
    if (!r.ok()) return 1;
    add_row("k-means++", t.Seconds(), r.value().clusters, resident_kb);
  }
  {
    Timer t;
    auto r = HierarchicalCluster(g.data, 20);
    if (!r.ok()) return 1;
    // Distance state is O(N^2)-ish in time but O(N) memory here.
    add_row("agglomerative", t.Seconds(), r.value().clusters, resident_kb);
  }
  table.Print();
  std::printf("\nBIRCH reads the data once under a fixed memory budget; "
              "the baselines keep all %zu points resident.\n",
              g.data.size());
  return 0;
}
