// Vector quantization / data compression with BIRCH — the use the
// paper's summary points at ("exploring BIRCH for data compression,
// vector quantization"). A codebook is the set of cluster centroids;
// each point is encoded as its nearest codeword index. This example
// sweeps codebook sizes on a correlated 2-d signal and reports the
// rate/distortion trade-off.
//
//   build/examples/vector_quantization
#include <cmath>
#include <cstdio>

#include "birch/birch.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace birch;

  // A correlated source: noisy samples along a Lissajous curve —
  // strongly non-uniform density, the regime where VQ beats uniform
  // quantization.
  Rng rng(17);
  Dataset data(2);
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double t = rng.Uniform(0, 2 * M_PI);
    std::vector<double> p = {std::sin(3 * t) + rng.Gaussian(0, 0.05),
                             std::cos(2 * t) + rng.Gaussian(0, 0.05)};
    data.Append(p);
  }

  TablePrinter table({"codebook", "bits/pt", "distortion(MSE)",
                      "build(s)", "codebook-bytes"});
  for (int k : {4, 16, 64, 256}) {
    BirchOptions o;
    o.dim = 2;
    o.k = k;
    o.resources.memory_bytes = 80 * 1024;
    // Phase-3 k-means minimizes exactly the VQ distortion objective.
    o.global_phase.algorithm = GlobalAlgorithm::kKMeans;
    auto result = ClusterDataset(data, o);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const BirchResult& r = result.value();

    // Distortion: mean squared error to the assigned codeword.
    double sse = 0.0;
    for (const auto& c : r.clusters) sse += c.SumSquaredDeviation();
    double mse = sse / kN;
    double bits = std::log2(static_cast<double>(r.clusters.size()));
    table.Row()
        .Add(static_cast<int64_t>(r.clusters.size()))
        .Add(bits, 1)
        .Add(mse, 5)
        .Add(r.timings.Total(), 2)
        .Add(static_cast<int64_t>(r.clusters.size() * 2 * 8));
  }
  table.Print();
  std::printf(
      "\nDistortion falls ~4x per extra 2 bits, the textbook VQ "
      "rate-distortion slope for a 2-d source;\nthe codebook is built "
      "from a single scan of the %d samples.\n",
      kN);
  return 0;
}
