// Streaming / incremental clustering — the paper's "incremental"
// property as an API. Points arrive in batches (here: a drifting
// mixture); after each batch we take a Snapshot of the current
// clustering without stopping the stream, then Finish() at the end.
//
//   build/examples/streaming
#include <cstdio>

#include "birch/birch.h"
#include "util/random.h"

int main() {
  using namespace birch;

  BirchOptions options;
  options.dim = 2;
  options.k = 4;
  options.resources.memory_bytes = 64 * 1024;
  auto clusterer_or = BirchClusterer::Create(options);
  if (!clusterer_or.ok()) {
    std::fprintf(stderr, "%s\n",
                 clusterer_or.status().ToString().c_str());
    return 1;
  }
  auto& clusterer = clusterer_or.value();

  // Four sources; the fourth only switches on halfway through.
  const double centers[4][2] = {{0, 0}, {30, 0}, {0, 30}, {30, 30}};
  Rng rng(7);
  Dataset all(2);

  const int kBatches = 10;
  const int kPerBatch = 5000;
  for (int batch = 0; batch < kBatches; ++batch) {
    int active_sources = batch < kBatches / 2 ? 3 : 4;
    for (int i = 0; i < kPerBatch; ++i) {
      int src = static_cast<int>(rng.UniformInt(
          static_cast<uint64_t>(active_sources)));
      std::vector<double> p = {rng.Gaussian(centers[src][0], 1.5),
                               rng.Gaussian(centers[src][1], 1.5)};
      if (!clusterer->Add(p).ok()) return 1;
      all.Append(p);
    }

    // Non-disruptive snapshot of the stream so far.
    auto snap = clusterer->Snapshot(4);
    if (!snap.ok()) return 1;
    std::printf("after batch %2d (%6d pts): tree has %5zu entries; "
                "4-cluster snapshot sizes:",
                batch + 1, (batch + 1) * kPerBatch,
                clusterer->tree().leaf_entry_count());
    for (const auto& c : snap.value().clusters) {
      std::printf(" %6.0f", c.n());
    }
    std::printf("\n");
  }

  // Final answer, refined over everything seen.
  auto result = clusterer->Finish(&all);
  if (!result.ok()) return 1;
  std::printf("\nfinal clusters:\n");
  for (const auto& c : result.value().clusters) {
    auto ctr = c.Centroid();
    std::printf("  %7.0f points at (%6.2f, %6.2f), radius %.2f\n", c.n(),
                ctr[0], ctr[1], c.Radius());
  }
  std::printf("(the fourth source, active only in the second half, is "
              "picked up incrementally)\n");
  return 0;
}
