// The paper's image application (Sec. 6.8) as an example: generate the
// synthetic NIR/VIS tree scene, run the two-pass BIRCH filter, and
// print a downsampled character rendering of the final segmentation
// next to the ground truth.
//
//   build/examples/image_filtering
#include <cstdio>
#include <map>
#include <string>

#include "image/filter.h"
#include "image/scene.h"

namespace {

using birch::kNumRegions;
using birch::Region;
using birch::Scene;

/// Downsamples per-pixel labels to a w x h character grid by majority.
std::string Render(const Scene& scene, const std::vector<int>& labels,
                   const char* glyphs, int out_w, int out_h) {
  std::string art;
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      std::map<int, int> votes;
      int y0 = oy * scene.height / out_h, y1 = (oy + 1) * scene.height / out_h;
      int x0 = ox * scene.width / out_w, x1 = (ox + 1) * scene.width / out_w;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          ++votes[labels[static_cast<size_t>(y) *
                             static_cast<size_t>(scene.width) +
                         static_cast<size_t>(x)]];
        }
      }
      int best = -1, best_n = -1;
      for (auto& [l, n] : votes) {
        if (n > best_n) {
          best_n = n;
          best = l;
        }
      }
      art += best < 0 ? '?' : glyphs[best % 10];
    }
    art += '\n';
  }
  return art;
}

}  // namespace

int main() {
  using namespace birch;

  SceneOptions so;
  so.width = 512;
  so.height = 256;
  Scene scene = GenerateScene(so);

  FilterOptions fo;
  auto result = TwoPassFilter(scene, fo);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.value();

  std::printf("ground truth (S=sky C=cloud L=sunlit-leaves B=branch "
              "H=shadow):\n%s\n",
              Render(scene, scene.region, "SCLBH", 96, 24).c_str());
  std::printf("two-pass BIRCH segmentation (digit = cluster id; pass-2 "
              "clusters start at %d):\n%s\n",
              fo.pass1_k,
              Render(scene, r.final_labels, "0123456789", 96, 24).c_str());
  std::printf("pass 1: %.2fs over %zu px; pass 2: %.2fs over %zu px\n",
              r.seconds_pass1, scene.size(), r.seconds_pass2,
              r.pass2_rows.size());
  return 0;
}
