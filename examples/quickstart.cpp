// Quickstart: cluster a synthetic 2-d dataset with BIRCH in ~20 lines.
//
//   build/examples/quickstart
//
// Generates 10 Gaussian blobs (~20k points), clusters them with the
// paper-default configuration, and prints each found cluster next to
// the ground truth.
#include <cstdio>

#include "birch/birch.h"
#include "datagen/generator.h"
#include "eval/matching.h"
#include "eval/quality.h"
#include "util/table.h"

int main() {
  using namespace birch;

  // 1. Some data: 10 clusters of 2000 points on a grid.
  GeneratorOptions gen;
  gen.k = 10;
  gen.n_low = gen.n_high = 2000;
  gen.r_low = gen.r_high = 1.0;
  gen.grid_spacing = 10.0;
  gen.seed = 2026;
  auto data_or = Generate(gen);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const GeneratedData& g = data_or.value();

  // 2. Cluster it. BirchOptions defaults follow the paper (80 KB
  //    memory, 1 KB pages, D2 metric, outlier handling on).
  BirchOptions options;
  options.dim = 2;
  options.k = 10;
  auto result_or = ClusterDataset(g.data, options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const BirchResult& r = result_or.value();

  // 3. Inspect the result.
  std::printf("clustered %zu points into %zu clusters in %.3fs "
              "(%llu tree rebuilds, %zu KB peak memory)\n\n",
              g.data.size(), r.clusters.size(), r.timings.Total(),
              static_cast<unsigned long long>(r.phase1.rebuilds),
              r.peak_memory_bytes / 1024);

  TablePrinter table({"cluster", "points", "centroid-x", "centroid-y",
                      "radius"});
  for (size_t c = 0; c < r.clusters.size(); ++c) {
    auto centroid = r.clusters[c].Centroid();
    table.Row()
        .Add(c)
        .Add(static_cast<int64_t>(r.clusters[c].n()))
        .Add(centroid[0], 2)
        .Add(centroid[1], 2)
        .Add(r.clusters[c].Radius(), 2);
  }
  table.Print();

  MatchReport match = MatchClusters(g.actual, r.clusters);
  std::printf("\nvs ground truth: %d/10 clusters recovered, "
              "mean centroid displacement %.3f, label accuracy %.1f%%\n",
              match.matched, match.mean_centroid_displacement,
              100.0 * LabelAccuracy(g.truth, r.labels, match));
  return 0;
}
