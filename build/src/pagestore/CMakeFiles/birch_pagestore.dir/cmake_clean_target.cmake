file(REMOVE_RECURSE
  "libbirch_pagestore.a"
)
