# Empty dependencies file for birch_pagestore.
# This may be replaced when dependencies are built.
