file(REMOVE_RECURSE
  "CMakeFiles/birch_pagestore.dir/page_store.cc.o"
  "CMakeFiles/birch_pagestore.dir/page_store.cc.o.d"
  "CMakeFiles/birch_pagestore.dir/spill_file.cc.o"
  "CMakeFiles/birch_pagestore.dir/spill_file.cc.o.d"
  "libbirch_pagestore.a"
  "libbirch_pagestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_pagestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
