
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pagestore/page_store.cc" "src/pagestore/CMakeFiles/birch_pagestore.dir/page_store.cc.o" "gcc" "src/pagestore/CMakeFiles/birch_pagestore.dir/page_store.cc.o.d"
  "/root/repo/src/pagestore/spill_file.cc" "src/pagestore/CMakeFiles/birch_pagestore.dir/spill_file.cc.o" "gcc" "src/pagestore/CMakeFiles/birch_pagestore.dir/spill_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/birch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
