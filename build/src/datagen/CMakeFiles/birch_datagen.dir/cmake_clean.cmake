file(REMOVE_RECURSE
  "CMakeFiles/birch_datagen.dir/generator.cc.o"
  "CMakeFiles/birch_datagen.dir/generator.cc.o.d"
  "CMakeFiles/birch_datagen.dir/paper_datasets.cc.o"
  "CMakeFiles/birch_datagen.dir/paper_datasets.cc.o.d"
  "CMakeFiles/birch_datagen.dir/streaming_generator.cc.o"
  "CMakeFiles/birch_datagen.dir/streaming_generator.cc.o.d"
  "libbirch_datagen.a"
  "libbirch_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
