# Empty dependencies file for birch_datagen.
# This may be replaced when dependencies are built.
