file(REMOVE_RECURSE
  "libbirch_datagen.a"
)
