file(REMOVE_RECURSE
  "CMakeFiles/birch_eval.dir/matching.cc.o"
  "CMakeFiles/birch_eval.dir/matching.cc.o.d"
  "CMakeFiles/birch_eval.dir/quality.cc.o"
  "CMakeFiles/birch_eval.dir/quality.cc.o.d"
  "CMakeFiles/birch_eval.dir/visualize.cc.o"
  "CMakeFiles/birch_eval.dir/visualize.cc.o.d"
  "libbirch_eval.a"
  "libbirch_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
