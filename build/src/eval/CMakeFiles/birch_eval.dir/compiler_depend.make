# Empty compiler generated dependencies file for birch_eval.
# This may be replaced when dependencies are built.
