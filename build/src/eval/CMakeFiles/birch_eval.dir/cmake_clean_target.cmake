file(REMOVE_RECURSE
  "libbirch_eval.a"
)
