file(REMOVE_RECURSE
  "CMakeFiles/birch_baselines.dir/clara.cc.o"
  "CMakeFiles/birch_baselines.dir/clara.cc.o.d"
  "CMakeFiles/birch_baselines.dir/clarans.cc.o"
  "CMakeFiles/birch_baselines.dir/clarans.cc.o.d"
  "CMakeFiles/birch_baselines.dir/hierarchical.cc.o"
  "CMakeFiles/birch_baselines.dir/hierarchical.cc.o.d"
  "CMakeFiles/birch_baselines.dir/kmeans.cc.o"
  "CMakeFiles/birch_baselines.dir/kmeans.cc.o.d"
  "libbirch_baselines.a"
  "libbirch_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
