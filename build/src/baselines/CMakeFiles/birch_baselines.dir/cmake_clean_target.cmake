file(REMOVE_RECURSE
  "libbirch_baselines.a"
)
