# Empty dependencies file for birch_baselines.
# This may be replaced when dependencies are built.
