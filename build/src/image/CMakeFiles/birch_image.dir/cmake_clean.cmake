file(REMOVE_RECURSE
  "CMakeFiles/birch_image.dir/filter.cc.o"
  "CMakeFiles/birch_image.dir/filter.cc.o.d"
  "CMakeFiles/birch_image.dir/scene.cc.o"
  "CMakeFiles/birch_image.dir/scene.cc.o.d"
  "libbirch_image.a"
  "libbirch_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
