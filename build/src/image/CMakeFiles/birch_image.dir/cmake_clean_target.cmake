file(REMOVE_RECURSE
  "libbirch_image.a"
)
