# Empty dependencies file for birch_image.
# This may be replaced when dependencies are built.
