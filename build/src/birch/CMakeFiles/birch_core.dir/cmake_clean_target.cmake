file(REMOVE_RECURSE
  "libbirch_core.a"
)
