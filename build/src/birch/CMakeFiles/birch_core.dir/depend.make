# Empty dependencies file for birch_core.
# This may be replaced when dependencies are built.
