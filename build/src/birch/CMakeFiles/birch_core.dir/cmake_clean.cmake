file(REMOVE_RECURSE
  "CMakeFiles/birch_core.dir/birch.cc.o"
  "CMakeFiles/birch_core.dir/birch.cc.o.d"
  "CMakeFiles/birch_core.dir/cf_tree.cc.o"
  "CMakeFiles/birch_core.dir/cf_tree.cc.o.d"
  "CMakeFiles/birch_core.dir/cf_vector.cc.o"
  "CMakeFiles/birch_core.dir/cf_vector.cc.o.d"
  "CMakeFiles/birch_core.dir/dataset_io.cc.o"
  "CMakeFiles/birch_core.dir/dataset_io.cc.o.d"
  "CMakeFiles/birch_core.dir/global_cluster.cc.o"
  "CMakeFiles/birch_core.dir/global_cluster.cc.o.d"
  "CMakeFiles/birch_core.dir/metrics.cc.o"
  "CMakeFiles/birch_core.dir/metrics.cc.o.d"
  "CMakeFiles/birch_core.dir/phase1.cc.o"
  "CMakeFiles/birch_core.dir/phase1.cc.o.d"
  "CMakeFiles/birch_core.dir/phase2.cc.o"
  "CMakeFiles/birch_core.dir/phase2.cc.o.d"
  "CMakeFiles/birch_core.dir/refine.cc.o"
  "CMakeFiles/birch_core.dir/refine.cc.o.d"
  "CMakeFiles/birch_core.dir/threshold.cc.o"
  "CMakeFiles/birch_core.dir/threshold.cc.o.d"
  "CMakeFiles/birch_core.dir/tree_io.cc.o"
  "CMakeFiles/birch_core.dir/tree_io.cc.o.d"
  "libbirch_core.a"
  "libbirch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
