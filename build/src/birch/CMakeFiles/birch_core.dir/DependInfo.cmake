
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/birch/birch.cc" "src/birch/CMakeFiles/birch_core.dir/birch.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/birch.cc.o.d"
  "/root/repo/src/birch/cf_tree.cc" "src/birch/CMakeFiles/birch_core.dir/cf_tree.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/cf_tree.cc.o.d"
  "/root/repo/src/birch/cf_vector.cc" "src/birch/CMakeFiles/birch_core.dir/cf_vector.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/cf_vector.cc.o.d"
  "/root/repo/src/birch/dataset_io.cc" "src/birch/CMakeFiles/birch_core.dir/dataset_io.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/dataset_io.cc.o.d"
  "/root/repo/src/birch/global_cluster.cc" "src/birch/CMakeFiles/birch_core.dir/global_cluster.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/global_cluster.cc.o.d"
  "/root/repo/src/birch/metrics.cc" "src/birch/CMakeFiles/birch_core.dir/metrics.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/metrics.cc.o.d"
  "/root/repo/src/birch/phase1.cc" "src/birch/CMakeFiles/birch_core.dir/phase1.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/phase1.cc.o.d"
  "/root/repo/src/birch/phase2.cc" "src/birch/CMakeFiles/birch_core.dir/phase2.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/phase2.cc.o.d"
  "/root/repo/src/birch/refine.cc" "src/birch/CMakeFiles/birch_core.dir/refine.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/refine.cc.o.d"
  "/root/repo/src/birch/threshold.cc" "src/birch/CMakeFiles/birch_core.dir/threshold.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/threshold.cc.o.d"
  "/root/repo/src/birch/tree_io.cc" "src/birch/CMakeFiles/birch_core.dir/tree_io.cc.o" "gcc" "src/birch/CMakeFiles/birch_core.dir/tree_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/birch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pagestore/CMakeFiles/birch_pagestore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
