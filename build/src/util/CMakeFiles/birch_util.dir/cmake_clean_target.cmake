file(REMOVE_RECURSE
  "libbirch_util.a"
)
