file(REMOVE_RECURSE
  "CMakeFiles/birch_util.dir/csv.cc.o"
  "CMakeFiles/birch_util.dir/csv.cc.o.d"
  "CMakeFiles/birch_util.dir/table.cc.o"
  "CMakeFiles/birch_util.dir/table.cc.o.d"
  "libbirch_util.a"
  "libbirch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
