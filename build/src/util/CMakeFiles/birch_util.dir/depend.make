# Empty dependencies file for birch_util.
# This may be replaced when dependencies are built.
