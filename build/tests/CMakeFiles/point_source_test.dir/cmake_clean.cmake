file(REMOVE_RECURSE
  "CMakeFiles/point_source_test.dir/point_source_test.cc.o"
  "CMakeFiles/point_source_test.dir/point_source_test.cc.o.d"
  "point_source_test"
  "point_source_test.pdb"
  "point_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
