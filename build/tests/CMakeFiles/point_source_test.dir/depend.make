# Empty dependencies file for point_source_test.
# This may be replaced when dependencies are built.
