
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cf_vector_test.cc" "tests/CMakeFiles/cf_vector_test.dir/cf_vector_test.cc.o" "gcc" "tests/CMakeFiles/cf_vector_test.dir/cf_vector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/birch/CMakeFiles/birch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pagestore/CMakeFiles/birch_pagestore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/birch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
