file(REMOVE_RECURSE
  "CMakeFiles/cf_vector_test.dir/cf_vector_test.cc.o"
  "CMakeFiles/cf_vector_test.dir/cf_vector_test.cc.o.d"
  "cf_vector_test"
  "cf_vector_test.pdb"
  "cf_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
