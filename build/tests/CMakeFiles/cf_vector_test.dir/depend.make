# Empty dependencies file for cf_vector_test.
# This may be replaced when dependencies are built.
