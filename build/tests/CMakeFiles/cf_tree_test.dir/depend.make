# Empty dependencies file for cf_tree_test.
# This may be replaced when dependencies are built.
