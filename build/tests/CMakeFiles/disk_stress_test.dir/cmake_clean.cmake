file(REMOVE_RECURSE
  "CMakeFiles/disk_stress_test.dir/disk_stress_test.cc.o"
  "CMakeFiles/disk_stress_test.dir/disk_stress_test.cc.o.d"
  "disk_stress_test"
  "disk_stress_test.pdb"
  "disk_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
