file(REMOVE_RECURSE
  "CMakeFiles/phase1_test.dir/phase1_test.cc.o"
  "CMakeFiles/phase1_test.dir/phase1_test.cc.o.d"
  "phase1_test"
  "phase1_test.pdb"
  "phase1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
