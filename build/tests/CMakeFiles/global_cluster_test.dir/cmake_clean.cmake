file(REMOVE_RECURSE
  "CMakeFiles/global_cluster_test.dir/global_cluster_test.cc.o"
  "CMakeFiles/global_cluster_test.dir/global_cluster_test.cc.o.d"
  "global_cluster_test"
  "global_cluster_test.pdb"
  "global_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
