# Empty dependencies file for global_cluster_test.
# This may be replaced when dependencies are built.
