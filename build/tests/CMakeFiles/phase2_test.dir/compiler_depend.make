# Empty compiler generated dependencies file for phase2_test.
# This may be replaced when dependencies are built.
