# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/cf_vector_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/cf_tree_test[1]_include.cmake")
include("/root/repo/build/tests/pagestore_test[1]_include.cmake")
include("/root/repo/build/tests/threshold_test[1]_include.cmake")
include("/root/repo/build/tests/phase1_test[1]_include.cmake")
include("/root/repo/build/tests/phase2_test[1]_include.cmake")
include("/root/repo/build/tests/global_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/birch_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/tree_io_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_io_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/point_source_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/cf_tree_edge_test[1]_include.cmake")
include("/root/repo/build/tests/disk_stress_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
