# Empty dependencies file for vector_quantization.
# This may be replaced when dependencies are built.
