file(REMOVE_RECURSE
  "CMakeFiles/vector_quantization.dir/vector_quantization.cpp.o"
  "CMakeFiles/vector_quantization.dir/vector_quantization.cpp.o.d"
  "vector_quantization"
  "vector_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
