# Empty compiler generated dependencies file for bench_micro_cf.
# This may be replaced when dependencies are built.
