file(REMOVE_RECURSE
  "../bench/bench_micro_cf"
  "../bench/bench_micro_cf.pdb"
  "CMakeFiles/bench_micro_cf.dir/bench_micro_cf.cc.o"
  "CMakeFiles/bench_micro_cf.dir/bench_micro_cf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
