# Empty dependencies file for bench_base_workload.
# This may be replaced when dependencies are built.
