file(REMOVE_RECURSE
  "../bench/bench_base_workload"
  "../bench/bench_base_workload.pdb"
  "CMakeFiles/bench_base_workload.dir/bench_base_workload.cc.o"
  "CMakeFiles/bench_base_workload.dir/bench_base_workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_base_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
