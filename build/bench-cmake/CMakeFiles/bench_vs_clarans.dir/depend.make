# Empty dependencies file for bench_vs_clarans.
# This may be replaced when dependencies are built.
