file(REMOVE_RECURSE
  "../bench/bench_vs_clarans"
  "../bench/bench_vs_clarans.pdb"
  "CMakeFiles/bench_vs_clarans.dir/bench_vs_clarans.cc.o"
  "CMakeFiles/bench_vs_clarans.dir/bench_vs_clarans.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_clarans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
