# Empty dependencies file for bench_sensitivity_page.
# This may be replaced when dependencies are built.
