file(REMOVE_RECURSE
  "../bench/bench_sensitivity_page"
  "../bench/bench_sensitivity_page.pdb"
  "CMakeFiles/bench_sensitivity_page.dir/bench_sensitivity_page.cc.o"
  "CMakeFiles/bench_sensitivity_page.dir/bench_sensitivity_page.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
