file(REMOVE_RECURSE
  "../bench/bench_order_sensitivity"
  "../bench/bench_order_sensitivity.pdb"
  "CMakeFiles/bench_order_sensitivity.dir/bench_order_sensitivity.cc.o"
  "CMakeFiles/bench_order_sensitivity.dir/bench_order_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
