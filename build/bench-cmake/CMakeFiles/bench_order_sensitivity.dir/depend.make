# Empty dependencies file for bench_order_sensitivity.
# This may be replaced when dependencies are built.
