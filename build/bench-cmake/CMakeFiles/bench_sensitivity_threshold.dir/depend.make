# Empty dependencies file for bench_sensitivity_threshold.
# This may be replaced when dependencies are built.
