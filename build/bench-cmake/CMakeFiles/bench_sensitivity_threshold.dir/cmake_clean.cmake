file(REMOVE_RECURSE
  "../bench/bench_sensitivity_threshold"
  "../bench/bench_sensitivity_threshold.pdb"
  "CMakeFiles/bench_sensitivity_threshold.dir/bench_sensitivity_threshold.cc.o"
  "CMakeFiles/bench_sensitivity_threshold.dir/bench_sensitivity_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
