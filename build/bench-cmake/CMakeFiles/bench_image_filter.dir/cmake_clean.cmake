file(REMOVE_RECURSE
  "../bench/bench_image_filter"
  "../bench/bench_image_filter.pdb"
  "CMakeFiles/bench_image_filter.dir/bench_image_filter.cc.o"
  "CMakeFiles/bench_image_filter.dir/bench_image_filter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_image_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
