# Empty dependencies file for bench_image_filter.
# This may be replaced when dependencies are built.
