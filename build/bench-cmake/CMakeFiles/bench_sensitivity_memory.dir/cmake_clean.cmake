file(REMOVE_RECURSE
  "../bench/bench_sensitivity_memory"
  "../bench/bench_sensitivity_memory.pdb"
  "CMakeFiles/bench_sensitivity_memory.dir/bench_sensitivity_memory.cc.o"
  "CMakeFiles/bench_sensitivity_memory.dir/bench_sensitivity_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
