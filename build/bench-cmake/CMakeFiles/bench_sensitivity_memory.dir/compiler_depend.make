# Empty compiler generated dependencies file for bench_sensitivity_memory.
# This may be replaced when dependencies are built.
