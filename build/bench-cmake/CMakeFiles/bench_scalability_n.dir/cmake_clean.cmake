file(REMOVE_RECURSE
  "../bench/bench_scalability_n"
  "../bench/bench_scalability_n.pdb"
  "CMakeFiles/bench_scalability_n.dir/bench_scalability_n.cc.o"
  "CMakeFiles/bench_scalability_n.dir/bench_scalability_n.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
