# Empty compiler generated dependencies file for bench_scalability_n.
# This may be replaced when dependencies are built.
