# Empty compiler generated dependencies file for bench_scalability_k.
# This may be replaced when dependencies are built.
