file(REMOVE_RECURSE
  "../bench/bench_scalability_k"
  "../bench/bench_scalability_k.pdb"
  "CMakeFiles/bench_scalability_k.dir/bench_scalability_k.cc.o"
  "CMakeFiles/bench_scalability_k.dir/bench_scalability_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
