# Empty compiler generated dependencies file for bench_outlier_options.
# This may be replaced when dependencies are built.
