file(REMOVE_RECURSE
  "../bench/bench_outlier_options"
  "../bench/bench_outlier_options.pdb"
  "CMakeFiles/bench_outlier_options.dir/bench_outlier_options.cc.o"
  "CMakeFiles/bench_outlier_options.dir/bench_outlier_options.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outlier_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
