file(REMOVE_RECURSE
  "../bench/bench_disk_budget"
  "../bench/bench_disk_budget.pdb"
  "CMakeFiles/bench_disk_budget.dir/bench_disk_budget.cc.o"
  "CMakeFiles/bench_disk_budget.dir/bench_disk_budget.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
