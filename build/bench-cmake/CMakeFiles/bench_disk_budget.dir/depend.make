# Empty dependencies file for bench_disk_budget.
# This may be replaced when dependencies are built.
