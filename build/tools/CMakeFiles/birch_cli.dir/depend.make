# Empty dependencies file for birch_cli.
# This may be replaced when dependencies are built.
