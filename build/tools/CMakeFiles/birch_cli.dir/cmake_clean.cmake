file(REMOVE_RECURSE
  "CMakeFiles/birch_cli.dir/birch_cli.cpp.o"
  "CMakeFiles/birch_cli.dir/birch_cli.cpp.o.d"
  "birch_cli"
  "birch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
