// Serving-tier properties (DESIGN.md §13): a pinned epoch is immutable
// and bitwise-repeatable while ingest keeps publishing newer epochs
// underneath; Assign's greedy descent agrees bitwise between the
// scalar and batch kernels and lands where the live tree's own
// insertion walk would; KNearestCentroids matches a brute-force oracle
// over the publish-time centroid table; and retired epochs actually
// free — the "serving/snapshots_live" gauge returns to its baseline
// when the last reference drains.
#include "serving/server.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "birch/birch.h"
#include "datagen/generator.h"
#include "obs/export.h"
#include "serving/snapshot.h"

namespace birch {
namespace {

Dataset MakeData(int k, int per_cluster, uint64_t seed) {
  GeneratorOptions g;
  g.k = k;
  g.n_low = g.n_high = per_cluster;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 8.0;
  g.seed = seed;
  auto gen = Generate(g);
  EXPECT_TRUE(gen.ok());
  return std::move(gen.value().data);
}

BirchOptions ServingOpts(size_t dim, int k, uint64_t publish_every) {
  BirchOptions o;
  o.dim = dim;
  o.k = k;
  o.resources.memory_bytes = 48 * 1024;
  o.serving.publish_every_n = publish_every;
  return o;
}

double LiveGauge() {
  auto snap = obs::CaptureSnapshot();
  auto it = snap.gauges.find("serving/snapshots_live");
  return it == snap.gauges.end() ? 0.0 : it->second;
}

TEST(ServingTest, QueriesBeforeFirstEpochFail) {
  BirchOptions o = ServingOpts(3, 4, 1000);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  ASSERT_NE(c.value()->server(), nullptr);
  std::vector<double> p(3, 0.0);
  Status assign = c.value()->server()->Assign(p).status();
  EXPECT_EQ(assign.code(), StatusCode::kFailedPrecondition);
  // The refusal names the remedy, not just the failure.
  EXPECT_NE(assign.message().find("publish_every_n"), std::string::npos)
      << assign.message();
  Status knn = c.value()->server()->KNearestCentroids(p, 3).status();
  EXPECT_EQ(knn.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(knn.message().find("publish_every_n"), std::string::npos)
      << knn.message();
  EXPECT_EQ(c.value()->server()->epoch(), 0u);
}

TEST(ServingTest, ServingDisabledMeansNoServer) {
  BirchOptions o = ServingOpts(3, 4, 0);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->server(), nullptr);
  EXPECT_EQ(c.value()->PublishSnapshot().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServingTest, DimensionMismatchIsInvalidArgument) {
  Dataset data = MakeData(4, 40, 31);
  BirchOptions o = ServingOpts(data.dim(), 4, 50);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->AddDataset(data).ok());
  std::vector<double> wrong(data.dim() + 1, 0.0);
  Status st = c.value()->server()->Assign(wrong).status();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The message names both dimensions and the remedy.
  EXPECT_NE(st.message().find(std::to_string(data.dim() + 1)),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("pass exactly dim coordinates"),
            std::string::npos)
      << st.message();
  Status knn =
      c.value()->server()->KNearestCentroids(wrong, 2).status();
  EXPECT_EQ(knn.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(knn.message().find("pass exactly dim coordinates"),
            std::string::npos)
      << knn.message();
}

// The publish cadence stamps monotonically increasing epochs, and a
// query result carries the epoch it was answered from.
TEST(ServingTest, PublishCadenceAdvancesEpochs) {
  Dataset data = MakeData(4, 50, 32);  // 200 points
  BirchOptions o = ServingOpts(data.dim(), 4, 50);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->AddDataset(data).ok());
  const serving::BirchServer* server = c.value()->server();
  EXPECT_EQ(server->epoch(), 4u);  // 200 points / publish_every_n 50
  EXPECT_EQ(server->publishes(), 4u);
  auto got = server->Assign(data.Row(0));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().epoch, 4u);
  EXPECT_GE(got.value().cluster_id, 0);
  EXPECT_GE(server->SnapshotAgeMs(), 0.0);
}

// Acceptance criterion: a reader holding a fixed epoch gets
// bitwise-identical answers no matter how much ingest happens
// underneath — snapshots are immutable, not merely "usually stable".
TEST(ServingTest, PinnedEpochIsImmutableUnderConcurrentIngest) {
  Dataset data = MakeData(6, 60, 33);  // 360 points
  BirchOptions o = ServingOpts(data.dim(), 6, 40);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  // Prime far enough for a first epoch, then pin it.
  for (size_t i = 0; i < 80; ++i) {
    ASSERT_TRUE(c.value()->Add(data.Row(i)).ok());
  }
  auto pinned = c.value()->server()->Acquire();
  ASSERT_NE(pinned, nullptr);
  const uint64_t pinned_epoch = pinned->epoch();

  // Reference answers on the pinned epoch before ingest resumes.
  kernel::Workspace ws;
  std::vector<serving::AssignResult> want;
  for (size_t i = 0; i < data.size(); i += 11) {
    want.push_back(pinned->Assign(data.Row(i), &ws));
  }

  // Ingest the rest on another thread while this thread re-queries the
  // pinned epoch; every answer must match the reference bitwise.
  std::atomic<bool> done{false};
  Status ingest_status;
  std::thread ingest([&] {
    for (size_t i = 80; i < data.size(); ++i) {
      ingest_status = c.value()->Add(data.Row(i));
      if (!ingest_status.ok()) break;
    }
    done.store(true, std::memory_order_release);
  });
  size_t rounds = 0;
  do {
    size_t w = 0;
    for (size_t i = 0; i < data.size(); i += 11, ++w) {
      serving::AssignResult got = pinned->Assign(data.Row(i), &ws);
      ASSERT_EQ(got.leaf_entry, want[w].leaf_entry);
      ASSERT_EQ(got.cluster_id, want[w].cluster_id);
      ASSERT_EQ(std::memcmp(&got.distance, &want[w].distance,
                            sizeof(double)),
                0);
      ASSERT_EQ(std::memcmp(&got.radius, &want[w].radius, sizeof(double)),
                0);
    }
    ++rounds;
  } while (!done.load(std::memory_order_acquire));
  ingest.join();
  ASSERT_TRUE(ingest_status.ok()) << ingest_status.ToString();
  EXPECT_GE(rounds, 1u);
  // Ingest moved the server past the pinned epoch.
  EXPECT_GT(c.value()->server()->epoch(), pinned_epoch);
  // The pinned epoch still answers with its own stamp.
  EXPECT_EQ(pinned->Assign(data.Row(0), &ws).epoch, pinned_epoch);
}

// Assign's descent must agree bitwise between the scalar oracle and
// the batched SoA kernel, and the landing leaf entry must be the same
// entry the live tree's own insertion walk (the Phase-1 code path)
// would choose for that point on the frozen tree.
TEST(ServingTest, AssignKernelsAgreeBitwiseOnFrozenTree) {
  Dataset data = MakeData(8, 40, 34);
  BirchOptions o = ServingOpts(data.dim(), 8, 0);
  o.serving.publish_every_n = 10000;  // manual publish only
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->AddDataset(data).ok());
  ASSERT_TRUE(c.value()->PublishSnapshot().ok());
  auto epoch = c.value()->server()->Acquire();
  ASSERT_NE(epoch, nullptr);
  kernel::Workspace ws;
  for (size_t i = 0; i < data.size(); ++i) {
    serving::AssignResult batch =
        epoch->AssignWith(data.Row(i), KernelKind::kBatch, &ws);
    serving::AssignResult scalar =
        epoch->AssignWith(data.Row(i), KernelKind::kScalar, &ws);
    ASSERT_EQ(batch.leaf_entry, scalar.leaf_entry) << "row " << i;
    ASSERT_EQ(batch.cluster_id, scalar.cluster_id) << "row " << i;
    ASSERT_EQ(
        std::memcmp(&batch.distance, &scalar.distance, sizeof(double)), 0)
        << "row " << i;
  }
}

// KNearestCentroids against a brute-force oracle over the publish-time
// centroid table: same ids, ascending distances, ties by cluster id.
TEST(ServingTest, KNearestCentroidsMatchesBruteForce) {
  Dataset data = MakeData(6, 40, 35);
  BirchOptions o = ServingOpts(data.dim(), 6, 60);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->AddDataset(data).ok());
  auto epoch = c.value()->server()->Acquire();
  ASSERT_NE(epoch, nullptr);
  const auto& centroids = epoch->cluster_centroids();
  ASSERT_FALSE(centroids.empty());
  for (size_t i = 0; i < data.size(); i += 5) {
    auto row = data.Row(i);
    auto got = epoch->KNearestCentroids(row, 3);
    ASSERT_EQ(got.size(), std::min<size_t>(3, centroids.size()));
    // Brute-force best: smallest squared distance, ties by index.
    int best = -1;
    double best_sq = 0.0;
    for (size_t cid = 0; cid < centroids.size(); ++cid) {
      double sq = 0.0;
      for (size_t d = 0; d < row.size(); ++d) {
        double diff = row[d] - centroids[cid][d];
        sq += diff * diff;
      }
      if (best < 0 || sq < best_sq) {
        best = static_cast<int>(cid);
        best_sq = sq;
      }
    }
    EXPECT_EQ(got[0].cluster_id, best) << "row " << i;
    for (size_t j = 1; j < got.size(); ++j) {
      EXPECT_LE(got[j - 1].distance, got[j].distance);
    }
  }
}

// A mid-stream epoch carries the exact leaf CFs: re-clustering them at
// any k through Snapshot() works and reports the epoch's stream
// position, not the live tree's.
TEST(ServingTest, EpochLeafEntriesRecluster) {
  Dataset data = MakeData(5, 40, 36);  // 200 points
  BirchOptions o = ServingOpts(data.dim(), 5, 50);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->AddDataset(data).ok());
  auto epoch = c.value()->server()->Acquire();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->points_ingested(), 200u);
  std::vector<CfVector> entries = epoch->LeafEntries();
  EXPECT_EQ(entries.size(), epoch->leaf_entry_count());
  double total = 0.0;
  for (const auto& e : entries) total += e.n();
  EXPECT_DOUBLE_EQ(total, 200.0);
}

// Gauge-balance acceptance criterion: every published epoch retires
// once its last reference drains — "serving/snapshots_live" returns to
// the pre-run baseline after the clusterer and all pinned epochs die.
TEST(ServingTest, EpochRetirementBalancesLiveGauge) {
  const double baseline = LiveGauge();
  Dataset data = MakeData(4, 50, 37);
  std::shared_ptr<const serving::ServingSnapshot> pinned;
  {
    BirchOptions o = ServingOpts(data.dim(), 4, 40);
    auto c = BirchClusterer::Create(o);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->AddDataset(data).ok());
    EXPECT_GT(c.value()->server()->publishes(), 1u);
    // Retired epochs have already freed: only the current one is live.
    EXPECT_DOUBLE_EQ(LiveGauge(), baseline + 1.0);
    pinned = c.value()->server()->Acquire();
  }
  // Clusterer gone; the pinned epoch alone keeps one snapshot alive.
  EXPECT_DOUBLE_EQ(LiveGauge(), baseline + 1.0);
  pinned.reset();
  EXPECT_DOUBLE_EQ(LiveGauge(), baseline);
}

// The serving epoch also backs Snapshot(k) on the sharded path
// mid-run; after Cluster() completes the merged tree takes over. Both
// views must cluster successfully at an arbitrary k.
TEST(ServingTest, ShardedFinalEpochServesAfterCluster) {
  Dataset data = MakeData(4, 60, 38);
  BirchOptions o = ServingOpts(data.dim(), 4, 100);
  o.exec.num_threads = 2;
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  DatasetSource src(&data);
  auto result = c.value()->Cluster(&src, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The final pre-phase-2 epoch covers the whole stream.
  auto epoch = c.value()->server()->Acquire();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->points_ingested(), data.size());
  auto got = c.value()->server()->Assign(data.Row(0));
  ASSERT_TRUE(got.ok());
  EXPECT_GE(got.value().cluster_id, 0);
  auto snap = c.value()->Snapshot(7);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap.value().clusters.empty());
}

}  // namespace
}  // namespace birch
