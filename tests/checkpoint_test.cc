// Checkpoint/restore properties: a serial kill-and-resume run is
// bitwise identical to the uninterrupted one (labels, centroids,
// threshold), resume works both by re-feeding the tail and by handing
// Cluster() the full stream, the options fingerprint is enforced, the
// sharded auto-checkpoint round-trips, and every injected file
// corruption (torn header, truncation, bit flip) is detected as
// kCorruption — never silently decoded into a different clustering.
#include "birch/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "birch/birch.h"
#include "datagen/generator.h"
#include "pagestore/crc32c.h"
#include "serving/server.h"

namespace birch {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Dataset MakeData(int k, int per_cluster, uint64_t seed) {
  GeneratorOptions g;
  g.k = k;
  g.n_low = g.n_high = per_cluster;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 8.0;
  g.seed = seed;
  auto gen = Generate(g);
  EXPECT_TRUE(gen.ok());
  return std::move(gen.value().data);
}

// Tight budgets so the stream actually exercises rebuilds, the outlier
// disk, and delay-split spills — the state a checkpoint must capture.
BirchOptions SmallOpts(size_t dim, int k) {
  BirchOptions o;
  o.dim = dim;
  o.k = k;
  o.resources.memory_bytes = 24 * 1024;
  o.resources.disk_bytes = 5 * 1024;
  o.resources.page_size = 512;
  return o;
}

StatusOr<BirchResult> RunUninterrupted(const Dataset& data,
                                       const BirchOptions& o) {
  auto c_or = BirchClusterer::Create(o);
  if (!c_or.ok()) return c_or.status();
  BIRCH_RETURN_IF_ERROR(c_or.value()->AddDataset(data));
  return c_or.value()->Finish(&data);
}

StatusOr<BirchResult> RunInterrupted(const Dataset& data,
                                     const BirchOptions& o, size_t cut,
                                     const std::string& path) {
  {
    auto c_or = BirchClusterer::Create(o);
    if (!c_or.ok()) return c_or.status();
    for (size_t i = 0; i < cut; ++i) {
      BIRCH_RETURN_IF_ERROR(c_or.value()->Add(data.Row(i), data.Weight(i)));
    }
    BIRCH_RETURN_IF_ERROR(c_or.value()->SaveCheckpoint(path));
    // The clusterer dies here: everything past this line sees only the
    // file.
  }
  auto c_or = BirchClusterer::Restore(path, o);
  if (!c_or.ok()) return c_or.status();
  for (size_t i = cut; i < data.size(); ++i) {
    BIRCH_RETURN_IF_ERROR(c_or.value()->Add(data.Row(i), data.Weight(i)));
  }
  return c_or.value()->Finish(&data);
}

void ExpectBitwiseEqual(const BirchResult& a, const BirchResult& b) {
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.final_threshold, b.final_threshold);
  EXPECT_EQ(a.outlier_points, b.outlier_points);
  EXPECT_EQ(a.phase1.points_added, b.phase1.points_added);
  EXPECT_EQ(a.phase1.rebuilds, b.phase1.rebuilds);
}

TEST(CheckpointTest, SerialKillAndResumeIsBitwiseIdentical) {
  Dataset data = MakeData(9, 300, 701);
  BirchOptions o = SmallOpts(data.dim(), 9);
  auto want = RunUninterrupted(data, o);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  std::string path = TempPath("ckpt_serial.birch");
  auto got = RunInterrupted(data, o, data.size() / 2, path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitwiseEqual(want.value(), got.value());
  std::remove(path.c_str());
}

// Property test: the bitwise-resume guarantee holds across seeds,
// dimensionalities, and cut positions (including a cut before any
// rebuild and one deep into the stream).
TEST(CheckpointTest, ResumeIsBitwiseIdenticalAcrossSeedsAndCuts) {
  struct Case {
    uint64_t seed;
    int k;
    int per_cluster;
    double cut_fraction;
  };
  const Case cases[] = {
      {702, 4, 150, 0.1}, {703, 6, 200, 0.5}, {704, 9, 120, 0.9},
  };
  for (const Case& c : cases) {
    Dataset data = MakeData(c.k, c.per_cluster, c.seed);
    BirchOptions o = SmallOpts(data.dim(), c.k);
    auto want = RunUninterrupted(data, o);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    std::string path = TempPath("ckpt_prop.birch");
    size_t cut = static_cast<size_t>(data.size() * c.cut_fraction);
    auto got = RunInterrupted(data, o, cut, path);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitwiseEqual(want.value(), got.value());
    std::remove(path.c_str());
  }
}

// Resume by handing Cluster() the SAME full stream: the restored
// clusterer skips the already-ingested prefix automatically.
TEST(CheckpointTest, ClusterAfterRestoreSkipsIngestedPrefix) {
  Dataset data = MakeData(6, 250, 705);
  BirchOptions o = SmallOpts(data.dim(), 6);

  auto want_c = BirchClusterer::Create(o);
  ASSERT_TRUE(want_c.ok());
  DatasetSource want_src(&data);
  auto want = want_c.value()->Cluster(&want_src, &data);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  std::string path = TempPath("ckpt_cluster_resume.birch");
  {
    auto c_or = BirchClusterer::Create(o);
    ASSERT_TRUE(c_or.ok());
    for (size_t i = 0; i < data.size() / 3; ++i) {
      ASSERT_TRUE(c_or.value()->Add(data.Row(i)).ok());
    }
    ASSERT_TRUE(c_or.value()->SaveCheckpoint(path).ok());
  }
  auto c_or = BirchClusterer::Restore(path, o);
  ASSERT_TRUE(c_or.ok()) << c_or.status().ToString();
  DatasetSource src(&data);
  auto got = c_or.value()->Cluster(&src, &data);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitwiseEqual(want.value(), got.value());

  // A stream shorter than the checkpoint's ingest count cannot be the
  // original stream.
  auto c2 = BirchClusterer::Restore(path, o);
  ASSERT_TRUE(c2.ok());
  Dataset tiny(data.dim());
  std::vector<double> row(data.dim(), 0.0);
  tiny.Append(row);
  DatasetSource tiny_src(&tiny);
  auto bad = c2.value()->Cluster(&tiny_src, nullptr);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, AutoCheckpointWritesAtConfiguredCadence) {
  Dataset data = MakeData(4, 100, 706);
  ASSERT_GE(data.size(), 120u);
  std::string path = TempPath("ckpt_auto.birch");
  BirchOptions o = SmallOpts(data.dim(), 4);
  o.resources.checkpoint_every_n = 50;
  o.resources.checkpoint_path = path;

  auto c_or = BirchClusterer::Create(o);
  ASSERT_TRUE(c_or.ok());
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(c_or.value()->Add(data.Row(i)).ok());
  }
  // Saves fired at points 50 and 100; the file on disk is the latest.
  auto img = ReadCheckpointFile(path);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ(img.value().points_ingested, 100u);
  EXPECT_EQ(img.value().shard_count, 0u);
  EXPECT_EQ(img.value().freezes.size(), 1u);
  std::remove(path.c_str());
}

// Cadences count points, not batches: however the stream is sliced
// into AddBatch calls, auto-checkpoint and auto-publish fire at the
// same absolute point counts a per-point Add loop produces — and the
// checkpoint on disk is byte-identical to the point-loop one.
TEST(CheckpointTest, AddBatchKeepsAbsolutePointCadences) {
  Dataset data = MakeData(4, 100, 708);
  ASSERT_GE(data.size(), 130u);
  const size_t dim = data.dim();
  std::string path = TempPath("ckpt_batch_cadence.birch");
  BirchOptions o = SmallOpts(dim, 4);
  o.resources.checkpoint_every_n = 50;
  o.resources.checkpoint_path = path;
  o.serving.publish_every_n = 60;

  auto read_file = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };

  auto bc = BirchClusterer::Create(o);
  ASSERT_TRUE(bc.ok());
  const size_t batches[] = {37, 9, 54, 30};  // 130 points, none at 50/60
  size_t off = 0;
  for (size_t b : batches) {
    ASSERT_TRUE(
        bc.value()->AddBatch(data.Values().subspan(off * dim, b * dim), b)
            .ok());
    off += b;
  }
  // 130 points: checkpoints fired at 50 and 100 (file holds the
  // latest), publishes at 60 and 120.
  auto img = ReadCheckpointFile(path);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ(img.value().points_ingested, 100u);
  EXPECT_EQ(bc.value()->server()->epoch(), 2u);
  std::string batch_bytes = read_file(path);

  auto pc = BirchClusterer::Create(o);
  ASSERT_TRUE(pc.ok());
  for (size_t i = 0; i < 130; ++i) {
    ASSERT_TRUE(pc.value()->Add(data.Row(i)).ok());
  }
  auto pimg = ReadCheckpointFile(path);
  ASSERT_TRUE(pimg.ok());
  EXPECT_EQ(pimg.value().points_ingested, 100u);
  EXPECT_EQ(pc.value()->server()->epoch(), 2u);
  EXPECT_EQ(read_file(path), batch_bytes);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShardedAutoCheckpointRoundTrips) {
  Dataset data = MakeData(6, 200, 707);
  std::string path = TempPath("ckpt_sharded.birch");
  BirchOptions o = SmallOpts(data.dim(), 6);
  o.exec.num_threads = 2;
  o.resources.checkpoint_every_n = 400;
  o.resources.checkpoint_path = path;

  // Uninterrupted sharded run (writing checkpoints along the way).
  auto want_c = BirchClusterer::Create(o);
  ASSERT_TRUE(want_c.ok());
  DatasetSource want_src(&data);
  auto want = want_c.value()->Cluster(&want_src, &data);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  auto img = ReadCheckpointFile(path);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ(img.value().shard_count, 2u);
  EXPECT_EQ(img.value().freezes.size(), 2u);
  EXPECT_EQ(img.value().points_ingested % 400, 0u);

  // Resume from the mid-stream image with the SAME full stream: the
  // dealer skips the ingested prefix and continues the round-robin at
  // the same index, so the result matches the uninterrupted run.
  auto c_or = BirchClusterer::Restore(path, o);
  ASSERT_TRUE(c_or.ok()) << c_or.status().ToString();
  DatasetSource src(&data);
  auto got = c_or.value()->Cluster(&src, &data);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitwiseEqual(want.value(), got.value());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RestoredShardedClusererPinsStreamingApis) {
  Dataset data = MakeData(6, 200, 708);
  std::string path = TempPath("ckpt_sharded_pin.birch");
  BirchOptions o = SmallOpts(data.dim(), 6);
  o.exec.num_threads = 2;
  o.resources.checkpoint_every_n = 400;
  o.resources.checkpoint_path = path;
  {
    auto c = BirchClusterer::Create(o);
    ASSERT_TRUE(c.ok());
    DatasetSource src(&data);
    ASSERT_TRUE(c.value()->Cluster(&src, nullptr).ok());
  }
  auto c_or = BirchClusterer::Restore(path, o);
  ASSERT_TRUE(c_or.ok()) << c_or.status().ToString();
  // Per-shard freezes only materialize inside Cluster(): the streaming
  // entry points cannot feed them and must say so.
  std::vector<double> row(data.dim(), 0.0);
  EXPECT_EQ(c_or.value()->Add(row).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(c_or.value()->AddDataset(data).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(c_or.value()->SaveCheckpoint(path).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, SnapshotBehaviorSerialVsShardedMidStream) {
  Dataset data = MakeData(4, 150, 709);
  // Serial: mid-stream snapshots are the incremental API and must work.
  BirchOptions serial = SmallOpts(data.dim(), 4);
  auto sc = BirchClusterer::Create(serial);
  ASSERT_TRUE(sc.ok());
  ASSERT_TRUE(sc.value()->AddDataset(data).ok());
  auto snap = sc.value()->Snapshot(4);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();

  // Sharded without serving: the per-shard trees merge only at
  // Cluster()'s end and there is no published epoch to answer from, so
  // a mid-stream snapshot must refuse instead of reading a stale view.
  BirchOptions sharded = SmallOpts(data.dim(), 4);
  sharded.exec.num_threads = 2;
  auto pc = BirchClusterer::Create(sharded);
  ASSERT_TRUE(pc.ok());
  auto refused = pc.value()->Snapshot(4);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // After Cluster() the merged tree exists and Snapshot works again.
  DatasetSource src(&data);
  ASSERT_TRUE(pc.value()->Cluster(&src, nullptr).ok());
  auto after = pc.value()->Snapshot(4);
  EXPECT_TRUE(after.ok()) << after.status().ToString();

  // Sharded WITH serving: mid-stream snapshots answer from the last
  // published epoch, so serial and sharded behave identically once an
  // epoch exists. Cluster() runs on a second thread; this thread waits
  // for the first publish, then snapshots concurrently with ingest.
  BirchOptions served = SmallOpts(data.dim(), 4);
  served.exec.num_threads = 2;
  served.serving.publish_every_n = 50;
  auto qc = BirchClusterer::Create(served);
  ASSERT_TRUE(qc.ok());
  // Before any epoch the refusal stands (same code, new remedy).
  auto early = qc.value()->Snapshot(4);
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);
  DatasetSource served_src(&data);
  Status cluster_status;
  std::thread runner([&] {
    cluster_status = qc.value()->Cluster(&served_src, nullptr).status();
  });
  while (qc.value()->server()->epoch() == 0) {
    std::this_thread::yield();
  }
  auto mid = qc.value()->Snapshot(4);
  EXPECT_TRUE(mid.ok()) << mid.status().ToString();
  if (mid.ok()) {
    EXPECT_GT(mid.value().phase1.points_added, 0u);
    EXPECT_LE(mid.value().phase1.points_added, 150u);
    EXPECT_FALSE(mid.value().clusters.empty());
  }
  runner.join();
  ASSERT_TRUE(cluster_status.ok()) << cluster_status.ToString();
}

TEST(CheckpointTest, FingerprintMismatchIsInvalidArgument) {
  Dataset data = MakeData(4, 150, 710);
  BirchOptions o = SmallOpts(data.dim(), 4);
  std::string path = TempPath("ckpt_fingerprint.birch");
  {
    auto c = BirchClusterer::Create(o);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->AddDataset(data).ok());
    ASSERT_TRUE(c.value()->SaveCheckpoint(path).ok());
  }
  auto expect_invalid = [&](const BirchOptions& bad) {
    auto c = BirchClusterer::Restore(path, bad);
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  };
  BirchOptions wrong_dim = o;
  wrong_dim.dim = o.dim + 1;
  expect_invalid(wrong_dim);
  BirchOptions wrong_page = o;
  wrong_page.resources.page_size = 1024;
  expect_invalid(wrong_page);
  BirchOptions wrong_metric = o;
  wrong_metric.tree.metric = DistanceMetric::kD0;
  expect_invalid(wrong_metric);
  BirchOptions wrong_kind = o;
  wrong_kind.tree.threshold_kind = ThresholdKind::kRadius;
  expect_invalid(wrong_kind);
  BirchOptions wrong_threads = o;
  wrong_threads.exec.num_threads = 2;  // serial image needs num_threads == 0
  expect_invalid(wrong_threads);
  std::remove(path.c_str());
}

TEST(CheckpointTest, BetulaKillAndResumeIsBitwiseIdentical) {
  // The CF-representation policy must survive the checkpoint boundary:
  // kill/resume under BETULA (f64 and f32 storage) reproduces the
  // uninterrupted run exactly.
  Dataset data = MakeData(9, 300, 701);
  for (CfStorage storage : {CfStorage::kF64, CfStorage::kF32}) {
    BirchOptions o = SmallOpts(data.dim(), 9);
    o.tree.cf = CfRepresentation::kBetula;
    o.tree.cf_storage = storage;
    auto want = RunUninterrupted(data, o);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    std::string path = TempPath("ckpt_betula.birch");
    auto got = RunInterrupted(data, o, data.size() / 2, path);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitwiseEqual(want.value(), got.value());
    std::remove(path.c_str());
  }
}

TEST(CheckpointTest, RestoreUnderOtherCfRepresentationIsInvalidArgument) {
  // A checkpoint written under one CF representation (or scalar width)
  // must refuse to restore under the other — the pages would be
  // silently misread as the wrong statistics otherwise.
  Dataset data = MakeData(4, 150, 713);
  BirchOptions betula = SmallOpts(data.dim(), 4);
  betula.tree.cf = CfRepresentation::kBetula;
  std::string path = TempPath("ckpt_cf_rep.birch");
  {
    auto c = BirchClusterer::Create(betula);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->AddDataset(data).ok());
    ASSERT_TRUE(c.value()->SaveCheckpoint(path).ok());
  }
  BirchOptions classic = SmallOpts(data.dim(), 4);
  auto c = BirchClusterer::Restore(path, classic);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);

  BirchOptions wrong_width = betula;
  wrong_width.tree.cf_storage = CfStorage::kF32;
  auto w = BirchClusterer::Restore(path, wrong_width);
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kInvalidArgument);

  // The matching options still restore.
  EXPECT_TRUE(BirchClusterer::Restore(path, betula).ok());
  std::remove(path.c_str());
}

// --- Fault injection on the checkpoint FILE: torn header, truncation,
// and bit rot must all surface as kCorruption. Runs in `ctest -L
// smoke` as the checkpoint leg of the fault-injection story. ---

std::string WriteSampleCheckpoint(const std::string& name) {
  Dataset data = MakeData(6, 200, 711);
  BirchOptions o = SmallOpts(data.dim(), 6);
  std::string path = TempPath(name);
  auto c = BirchClusterer::Create(o);
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.value()->AddDataset(data).ok());
  EXPECT_TRUE(c.value()->SaveCheckpoint(path).ok());
  return path;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointTest, ImpossibleCfFingerprintIsCorruption) {
  // A header whose CF fingerprint encodes values no writer produces
  // (representation > 1, width not 32/64) is Corruption, not a decode.
  std::string base = WriteSampleCheckpoint("ckpt_cf_fp.birch");
  auto img_or = ReadCheckpointFile(base);
  ASSERT_TRUE(img_or.ok());
  std::string path = TempPath("ckpt_cf_fp_bad.birch");

  CheckpointImage bad_rep = img_or.value();
  bad_rep.cf_representation = 7;
  ASSERT_TRUE(WriteCheckpointFile(path, bad_rep).ok());
  EXPECT_EQ(ReadCheckpointFile(path).status().code(),
            StatusCode::kCorruption);

  CheckpointImage bad_width = img_or.value();
  bad_width.scalar_width = 16;
  ASSERT_TRUE(WriteCheckpointFile(path, bad_width).ok());
  EXPECT_EQ(ReadCheckpointFile(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
  std::remove(base.c_str());
}

TEST(CheckpointTest, OldVersionIsInvalidArgumentNotCorruption) {
  // A well-formed v1 file (pre-CF-fingerprint layout) must be refused
  // as InvalidArgument BEFORE the rest of the header is decoded — the
  // v1 header simply has fewer fields, so decoding it as v2 would
  // misinterpret the stream.
  std::string base = WriteSampleCheckpoint("ckpt_v1.birch");
  auto img_or = ReadCheckpointFile(base);
  ASSERT_TRUE(img_or.ok());
  std::string path = TempPath("ckpt_v1_bad.birch");
  CheckpointImage old = img_or.value();
  old.version = 1;
  ASSERT_TRUE(WriteCheckpointFile(path, old).ok());
  EXPECT_EQ(ReadCheckpointFile(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  std::remove(base.c_str());
}

TEST(CheckpointTest, TornHeaderIsCorruption) {
  std::string path = WriteSampleCheckpoint("ckpt_torn.birch");
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 4u);
  WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + 4));
  auto img = ReadCheckpointFile(path);
  EXPECT_EQ(img.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedTailIsCorruption) {
  std::string path = WriteSampleCheckpoint("ckpt_trunc.birch");
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 64u);
  // Chop at several depths: inside the footer, inside a freeze
  // section, and right after the header.
  for (size_t keep : {bytes.size() - 3, bytes.size() / 2, size_t{32}}) {
    WriteAll(path, std::vector<char>(bytes.begin(),
                                     bytes.begin() + static_cast<long>(keep)));
    auto img = ReadCheckpointFile(path);
    EXPECT_EQ(img.status().code(), StatusCode::kCorruption)
        << "keep=" << keep;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, BitFlipAnywhereIsDetected) {
  std::string path = WriteSampleCheckpoint("ckpt_flip.birch");
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 256u);
  // Flip one bit at several offsets spanning magic, header, freeze
  // payload, and footer. Every flip must be detected (Corruption), or
  // at minimum never produce a successfully-decoded different image.
  for (size_t off : {size_t{2}, size_t{14}, bytes.size() / 2,
                     bytes.size() - 6}) {
    std::vector<char> mutated = bytes;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x10);
    WriteAll(path, mutated);
    auto img = ReadCheckpointFile(path);
    ASSERT_FALSE(img.ok()) << "bit flip at byte " << off << " undetected";
    EXPECT_EQ(img.status().code(), StatusCode::kCorruption)
        << "offset=" << off;
  }
  // The pristine bytes still parse: the detector rejects the flips, not
  // the file.
  WriteAll(path, bytes);
  EXPECT_TRUE(ReadCheckpointFile(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotCorruption) {
  auto img = ReadCheckpointFile(TempPath("ckpt_does_not_exist.birch"));
  EXPECT_FALSE(img.ok());
  EXPECT_EQ(img.status().code(), StatusCode::kIOError);
}

// --- Compressed checkpoints (resources.page_codec != none) ---

TEST(CheckpointTest, CompressedKillAndResumeIsBitwiseIdentical) {
  // The compressed checkpoint must capture exactly the same state as
  // the raw one: kill/resume with delta-rle freeze sections (and a
  // compressed, hot-tiered outlier disk) reproduces the uninterrupted
  // run bitwise.
  Dataset data = MakeData(9, 300, 701);
  BirchOptions o = SmallOpts(data.dim(), 9);
  o.resources.page_codec = PageCodecKind::kDeltaRle;
  o.resources.hot_tier_bytes = 4 * 1024;
  auto want = RunUninterrupted(data, o);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  std::string path = TempPath("ckpt_codec.birch");
  auto got = RunInterrupted(data, o, data.size() / 2, path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitwiseEqual(want.value(), got.value());
  std::remove(path.c_str());
}

TEST(CheckpointTest, CompressedCheckpointIsSmallerOnCfState) {
  // Freeze sections hold tree pages and spill records — CF-shaped
  // data — so the enveloped file should beat the raw one.
  Dataset data = MakeData(6, 200, 715);
  BirchOptions raw_opts = SmallOpts(data.dim(), 6);
  BirchOptions codec_opts = raw_opts;
  codec_opts.resources.page_codec = PageCodecKind::kDeltaRle;
  std::string raw_path = TempPath("ckpt_raw_size.birch");
  std::string codec_path = TempPath("ckpt_codec_size.birch");
  auto save = [&data](const BirchOptions& o, const std::string& path) {
    auto c = BirchClusterer::Create(o);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->AddDataset(data).ok());
    ASSERT_TRUE(c.value()->SaveCheckpoint(path).ok());
  };
  save(raw_opts, raw_path);
  save(codec_opts, codec_path);
  EXPECT_LT(ReadAll(codec_path).size(), ReadAll(raw_path).size());
  std::remove(raw_path.c_str());
  std::remove(codec_path.c_str());
}

TEST(CheckpointTest, CrossCodecRestoreIsInvalidArgument) {
  // A checkpoint's codec is part of the options fingerprint: restoring
  // under a different resources.page_codec must be refused with a
  // remedy, in both directions.
  Dataset data = MakeData(4, 150, 716);
  BirchOptions raw_opts = SmallOpts(data.dim(), 4);
  BirchOptions codec_opts = raw_opts;
  codec_opts.resources.page_codec = PageCodecKind::kDeltaRle;
  std::string path = TempPath("ckpt_cross_codec.birch");

  {
    auto c = BirchClusterer::Create(codec_opts);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->AddDataset(data).ok());
    ASSERT_TRUE(c.value()->SaveCheckpoint(path).ok());
  }
  auto mismatch = BirchClusterer::Restore(path, raw_opts);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.status().message().find("page_codec"),
            std::string::npos);
  EXPECT_TRUE(BirchClusterer::Restore(path, codec_opts).ok());

  {
    auto c = BirchClusterer::Create(raw_opts);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->AddDataset(data).ok());
    ASSERT_TRUE(c.value()->SaveCheckpoint(path).ok());
  }
  auto mismatch2 = BirchClusterer::Restore(path, codec_opts);
  ASSERT_FALSE(mismatch2.ok());
  EXPECT_EQ(mismatch2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(BirchClusterer::Restore(path, raw_opts).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LegacyHeaderWithoutCodecFieldStillLoads) {
  // Files written before page compression end their header right after
  // points_ingested — no trailing codec u32. Surgically rebuild such a
  // header (shorten the payload, fix the frame length and CRC) and
  // require the reader to decode it as codec 0 and load normally.
  std::string path = WriteSampleCheckpoint("ckpt_legacy.birch");
  std::vector<char> bytes = ReadAll(path);
  // Layout: magic(8) | tag(4) size(8) payload(size) crc(4) | ...
  const size_t kHdrOff = 8;
  uint64_t size = 0;
  std::memcpy(&size, bytes.data() + kHdrOff + 4, 8);
  ASSERT_EQ(size, 52u);  // v2 header payload with the codec field
  const size_t payload_off = kHdrOff + 4 + 8;
  std::vector<char> legacy(bytes.begin(), bytes.begin() + payload_off);
  // Shortened payload: everything but the trailing u32 codec field.
  legacy.insert(legacy.end(), bytes.begin() + payload_off,
                bytes.begin() + payload_off + 48);
  uint64_t new_size = 48;
  std::memcpy(legacy.data() + kHdrOff + 4, &new_size, 8);
  uint32_t crc = Crc32c(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(legacy.data()) + payload_off, 48));
  for (int i = 0; i < 4; ++i) {
    legacy.push_back(static_cast<char>(crc >> (8 * i)));
  }
  // Everything after the original header section rides along unchanged.
  legacy.insert(legacy.end(),
                bytes.begin() + static_cast<long>(payload_off + 52 + 4),
                bytes.end());
  WriteAll(path, legacy);

  auto img = ReadCheckpointFile(path);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ(img.value().page_codec, 0u);
  // And the full Restore path accepts it under codec-none options.
  Dataset data = MakeData(6, 200, 711);
  BirchOptions o = SmallOpts(data.dim(), 6);
  EXPECT_TRUE(BirchClusterer::Restore(path, o).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, CompressedSectionBitFlipIsDetected) {
  // Bit rot inside a compressed freeze section: the section CRC covers
  // the compressed image, so the flip is Corruption before the
  // envelope decoder ever runs.
  Dataset data = MakeData(6, 200, 717);
  BirchOptions o = SmallOpts(data.dim(), 6);
  o.resources.page_codec = PageCodecKind::kDeltaRle;
  std::string path = TempPath("ckpt_codec_flip.birch");
  {
    auto c = BirchClusterer::Create(o);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.value()->AddDataset(data).ok());
    ASSERT_TRUE(c.value()->SaveCheckpoint(path).ok());
  }
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 256u);
  for (size_t off : {size_t{100}, bytes.size() / 2, bytes.size() - 32}) {
    std::vector<char> mutated = bytes;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x04);
    WriteAll(path, mutated);
    auto img = ReadCheckpointFile(path);
    ASSERT_FALSE(img.ok()) << "flip at byte " << off << " undetected";
    EXPECT_EQ(img.status().code(), StatusCode::kCorruption)
        << "offset=" << off;
  }
  WriteAll(path, bytes);
  EXPECT_TRUE(ReadCheckpointFile(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveAfterFinishIsFailedPrecondition) {
  Dataset data = MakeData(4, 100, 712);
  BirchOptions o = SmallOpts(data.dim(), 4);
  auto c = BirchClusterer::Create(o);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.value()->AddDataset(data).ok());
  ASSERT_TRUE(c.value()->Finish(&data).ok());
  EXPECT_EQ(c.value()->SaveCheckpoint(TempPath("ckpt_late.birch")).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace birch
