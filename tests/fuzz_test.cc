// Randomized differential tests ("fuzz"): long random operation
// sequences against the CF tree — inserts of points, weighted points
// and subcluster CFs under every insert mode, interleaved with
// rebuilds at growing thresholds — checked after every phase against a
// flat reference accumulator and the full structural invariant suite.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "birch/cf_tree.h"
#include "pagestore/memory_tracker.h"
#include "util/random.h"

namespace birch {
namespace {

struct FuzzParam {
  uint64_t seed;
  size_t dim;
  size_t page_size;
  DistanceMetric metric;
};

class CfTreeFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(CfTreeFuzzTest, RandomOpsAgainstReference) {
  const FuzzParam& param = GetParam();
  Rng rng(param.seed);

  CfTreeOptions o;
  o.dim = param.dim;
  o.page_size = param.page_size;
  o.threshold = 0.0;
  o.metric = param.metric;
  MemoryTracker mem;
  CfTree tree(o, &mem);

  CfVector reference(param.dim);  // exact sum of accepted inserts
  double threshold = 0.0;
  std::vector<double> p(param.dim);

  const int kOps = 6000;
  for (int op = 0; op < kOps; ++op) {
    double roll = rng.NextDouble();
    if (roll < 0.80) {
      // Plain point insert (sometimes weighted).
      for (auto& v : p) v = rng.Gaussian(0, 10);
      double w = rng.NextDouble() < 0.1
                     ? 1.0 + static_cast<double>(rng.UniformInt(int64_t{0},
                                                                int64_t{4}))
                     : 1.0;
      tree.InsertPoint(p, w);
      CfVector cf = CfVector::FromPoint(p, w);
      reference.Add(cf);
    } else if (roll < 0.90) {
      // Subcluster CF insert.
      CfVector cf(param.dim);
      int pts = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
      for (int i = 0; i < pts; ++i) {
        for (auto& v : p) v = rng.Gaussian(5, 3);
        cf.AddPoint(p);
      }
      tree.InsertEntry(cf);
      reference.Add(cf);
    } else if (roll < 0.97) {
      // Restricted-mode insert: accepted only sometimes.
      for (auto& v : p) v = rng.Gaussian(-5, 10);
      InsertMode mode = roll < 0.935 ? InsertMode::kNoSplit
                                     : InsertMode::kAbsorbOnly;
      InsertOutcome out = tree.InsertPoint(p, 1.0, mode);
      if (out != InsertOutcome::kRejected) {
        reference.Add(CfVector::FromPoint(p));
      }
    } else {
      // Rebuild with a strictly larger threshold.
      threshold = threshold > 0 ? threshold * 1.5 : 0.05;
      size_t entries_before = tree.leaf_entry_count();
      tree.Rebuild(threshold);
      EXPECT_LE(tree.leaf_entry_count(), entries_before);
    }

    if (op % 1000 == 999) {
      std::string why;
      ASSERT_TRUE(tree.CheckInvariants(&why)) << "op " << op << ": " << why;
      CfVector summary = tree.TreeSummary();
      ASSERT_NEAR(summary.n(), reference.n(), 1e-6 * (1 + reference.n()));
      ASSERT_NEAR(summary.ss(), reference.ss(),
                  1e-6 * (1 + reference.ss()));
      for (size_t t = 0; t < param.dim; ++t) {
        ASSERT_NEAR(summary.ls()[t], reference.ls()[t],
                    1e-6 * (1 + std::fabs(reference.ls()[t])));
      }
    }
  }

  // Final: the leaf chain carries exactly the tree contents.
  std::vector<CfVector> entries;
  tree.CollectLeafEntries(&entries);
  CfVector chain_sum(param.dim);
  for (const auto& e : entries) chain_sum.Add(e);
  EXPECT_NEAR(chain_sum.n(), reference.n(), 1e-6 * (1 + reference.n()));
  EXPECT_EQ(entries.size(), tree.leaf_entry_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CfTreeFuzzTest,
    ::testing::Values(FuzzParam{1, 2, 256, DistanceMetric::kD2},
                      FuzzParam{2, 2, 128, DistanceMetric::kD0},
                      FuzzParam{3, 5, 512, DistanceMetric::kD2},
                      FuzzParam{4, 3, 256, DistanceMetric::kD4},
                      FuzzParam{5, 1, 256, DistanceMetric::kD1},
                      FuzzParam{6, 8, 1024, DistanceMetric::kD3},
                      FuzzParam{7, 2, 4096, DistanceMetric::kD2},
                      FuzzParam{8, 16, 2048, DistanceMetric::kD2}));

}  // namespace
}  // namespace birch
