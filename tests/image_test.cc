// Image-application tests: the synthetic scene must have the paper's
// separability structure, and the two-pass filter must (1) isolate
// sky / clouds / sunlit leaves in pass 1 while leaving branches and
// shadows together, and (2) pull branches and shadows apart in pass 2.
#include <array>
#include <map>

#include <gtest/gtest.h>

#include "image/filter.h"
#include "image/scene.h"

namespace birch {
namespace {

SceneOptions SmallScene() {
  SceneOptions o;
  o.width = 256;
  o.height = 128;
  o.seed = 7;
  return o;
}

TEST(SceneTest, AllRegionsPresentAndLabeled) {
  Scene scene = GenerateScene(SmallScene());
  ASSERT_EQ(scene.size(), 256u * 128u);
  ASSERT_EQ(scene.region.size(), scene.size());
  std::array<int, kNumRegions> counts{};
  for (int r : scene.region) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, kNumRegions);
    ++counts[static_cast<size_t>(r)];
  }
  for (int r = 0; r < kNumRegions; ++r) {
    EXPECT_GT(counts[static_cast<size_t>(r)], 0)
        << RegionName(static_cast<Region>(r));
  }
  // Sunlit leaves dominate the tree area.
  EXPECT_GT(counts[static_cast<size_t>(Region::kSunlitLeaves)],
            counts[static_cast<size_t>(Region::kBranch)]);
}

TEST(SceneTest, RegionStatisticsMatchSpec) {
  Scene scene = GenerateScene(SmallScene());
  std::map<int, CfVector> per_region;
  for (int r = 0; r < kNumRegions; ++r) per_region.emplace(r, CfVector(2));
  for (size_t i = 0; i < scene.size(); ++i) {
    per_region.at(scene.region[i]).AddPoint(scene.pixels.Row(i));
  }
  for (int r = 0; r < kNumRegions; ++r) {
    double nir, vis;
    RegionBrightness(static_cast<Region>(r), &nir, &vis);
    auto c = per_region.at(r).Centroid();
    // Sky carries a bright-band gradient (its pass-1 bimodality in the
    // paper), so its mean sits above the base spec.
    double tol = static_cast<Region>(r) == Region::kSky ? 25.0 : 3.0;
    EXPECT_NEAR(c[0], nir, tol) << RegionName(static_cast<Region>(r));
    EXPECT_NEAR(c[1], vis, tol) << RegionName(static_cast<Region>(r));
  }
}

TEST(SceneTest, PixelsClampedToByteRange) {
  Scene scene = GenerateScene(SmallScene());
  for (size_t i = 0; i < scene.size(); ++i) {
    auto p = scene.pixels.Row(i);
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 255.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 255.0);
  }
}

TEST(SceneTest, DeterministicForSeed) {
  Scene a = GenerateScene(SmallScene());
  Scene b = GenerateScene(SmallScene());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.pixels.Row(i)[0], b.pixels.Row(i)[0]);
  }
}

/// Majority ground-truth region per final cluster label.
std::map<int, Region> ClusterRegionMajority(const Scene& scene,
                                            const std::vector<int>& labels) {
  std::map<int, std::array<int, kNumRegions>> votes;
  for (size_t i = 0; i < scene.size(); ++i) {
    if (labels[i] < 0) continue;
    ++votes[labels[i]][static_cast<size_t>(scene.region[i])];
  }
  std::map<int, Region> majority;
  for (auto& [label, v] : votes) {
    int best = 0;
    for (int r = 1; r < kNumRegions; ++r) {
      if (v[static_cast<size_t>(r)] > v[static_cast<size_t>(best)]) best = r;
    }
    majority[label] = static_cast<Region>(best);
  }
  return majority;
}

TEST(FilterTest, TwoPassSeparatesAllFiveRegions) {
  Scene scene = GenerateScene(SmallScene());
  FilterOptions o;
  auto result = TwoPassFilter(scene, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& r = result.value();

  // Pass 1 found 5 clusters and flagged some as dark.
  EXPECT_EQ(r.pass1.clusters.size(), 5u);
  EXPECT_FALSE(r.dark_clusters.empty());
  EXPECT_FALSE(r.pass2_rows.empty());

  // The dark part is mostly branches + shadows.
  size_t dark_bs = 0;
  for (size_t row : r.pass2_rows) {
    Region t = static_cast<Region>(scene.region[row]);
    dark_bs += (t == Region::kBranch || t == Region::kShadow);
  }
  EXPECT_GT(static_cast<double>(dark_bs) /
                static_cast<double>(r.pass2_rows.size()),
            0.9);

  // Final labels cover all five regions as majority owners.
  auto majority = ClusterRegionMajority(scene, r.final_labels);
  std::array<bool, kNumRegions> covered{};
  for (auto& [label, region] : majority) {
    covered[static_cast<size_t>(region)] = true;
  }
  for (int reg = 0; reg < kNumRegions; ++reg) {
    EXPECT_TRUE(covered[static_cast<size_t>(reg)])
        << "no cluster is majority-" << RegionName(static_cast<Region>(reg));
  }

  // Overall purity: most pixels sit in a cluster whose majority region
  // matches their ground truth.
  size_t agree = 0, considered = 0;
  for (size_t i = 0; i < scene.size(); ++i) {
    int l = r.final_labels[i];
    if (l < 0) continue;
    ++considered;
    agree += majority.at(l) == static_cast<Region>(scene.region[i]);
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(considered),
            0.80);
}

TEST(FilterTest, PassOneAloneLeavesBranchShadowMixed) {
  Scene scene = GenerateScene(SmallScene());
  FilterOptions o;
  auto result = TwoPassFilter(scene, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  // Within pass-1 labels, branches and shadows share a majority owner
  // (that is why pass 2 exists).
  auto majority = ClusterRegionMajority(scene, r.pass1.labels);
  std::array<bool, kNumRegions> covered{};
  for (auto& [label, region] : majority) {
    covered[static_cast<size_t>(region)] = true;
  }
  bool branch_and_shadow_separate =
      covered[static_cast<size_t>(Region::kBranch)] &&
      covered[static_cast<size_t>(Region::kShadow)];
  EXPECT_FALSE(branch_and_shadow_separate)
      << "pass 1 already separates branch/shadow; scene too easy";
}

TEST(FilterTest, EmptySceneRejected) {
  Scene empty;
  FilterOptions o;
  EXPECT_FALSE(TwoPassFilter(empty, o).ok());
}

}  // namespace
}  // namespace birch
