// Adversarial input tests for the full pipeline: pathological input
// orders and degenerate geometries that historically break incremental
// clustering — sorted scans, all-duplicate streams, mixed scales,
// collinear data, and clusters arriving one at a time under a tiny
// memory budget. Each case must terminate, conserve points, and (where
// ground truth exists) still recover the clusters.
#include <cmath>

#include <gtest/gtest.h>

#include "birch/birch.h"
#include "datagen/generator.h"
#include "eval/matching.h"
#include "eval/quality.h"
#include "util/random.h"

namespace birch {
namespace {

BirchOptions TinyOptions(int k, size_t dim = 2) {
  BirchOptions o;
  o.dim = dim;
  o.k = k;
  o.resources.memory_bytes = 16 * 1024;
  o.resources.disk_bytes = 4 * 1024;
  o.resources.page_size = 512;
  return o;
}

double TotalClusterPoints(const BirchResult& r) {
  double s = 0.0;
  for (const auto& c : r.clusters) s += c.n();
  return s;
}

TEST(AdversarialTest, SortedByXThenY) {
  // Lexicographically sorted input maximizes locality skew.
  GeneratorOptions g;
  g.k = 9;
  g.n_low = g.n_high = 400;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 10.0;
  g.seed = 301;
  auto gen = Generate(g);
  ASSERT_TRUE(gen.ok());
  Dataset& data = gen.value().data;
  // Sort rows by (x, y).
  std::vector<size_t> idx(data.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    auto ra = data.Row(a), rb = data.Row(b);
    return ra[0] != rb[0] ? ra[0] < rb[0] : ra[1] < rb[1];
  });
  Dataset sorted(2);
  for (size_t i : idx) sorted.Append(data.Row(i));

  auto result = ClusterDataset(sorted, TinyOptions(9));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  MatchReport match = MatchClusters(gen.value().actual,
                                    result.value().clusters);
  EXPECT_EQ(match.matched, 9);
  EXPECT_LT(match.mean_centroid_displacement, 1.5);
}

TEST(AdversarialTest, AllDuplicatePoints) {
  // 50k copies of one point: must collapse to one entry, never split.
  Dataset data(2);
  std::vector<double> p = {3.0, -7.0};
  for (int i = 0; i < 50000; ++i) data.Append(p);
  auto result = ClusterDataset(data, TinyOptions(1));
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_NEAR(r.clusters[0].n(), 50000.0, 1e-6);
  EXPECT_NEAR(r.clusters[0].Radius(), 0.0, 1e-9);
  EXPECT_EQ(r.phase1.rebuilds, 0u);  // one entry: never out of memory
}

TEST(AdversarialTest, FewDistinctValuesManyCopies) {
  Dataset data(2);
  Rng rng(302);
  // 20 distinct locations, 2000 copies each, shuffled.
  std::vector<std::vector<double>> locs;
  for (int i = 0; i < 20; ++i) {
    locs.push_back({static_cast<double>(i % 5) * 10.0,
                    static_cast<double>(i / 5) * 10.0});
  }
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 2000; ++j) order.push_back(i);
  }
  rng.Shuffle(&order);
  for (int i : order) data.Append(locs[static_cast<size_t>(i)]);

  auto result = ClusterDataset(data, TinyOptions(20));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().clusters.size(), 20u);
  for (const auto& c : result.value().clusters) {
    EXPECT_NEAR(c.n(), 2000.0, 1e-6);
    EXPECT_NEAR(c.Radius(), 0.0, 1e-9);
  }
}

TEST(AdversarialTest, MixedScales) {
  // Two tight clusters at origin-scale plus two at 1e6-scale: the
  // threshold heuristic must bridge six orders of magnitude.
  Dataset data(2);
  Rng rng(303);
  const double centers[4][2] = {
      {0, 0}, {5, 0}, {1e6, 1e6}, {1e6 + 5e4, 1e6}};
  const double sigma[4] = {0.5, 0.5, 5e3, 5e3};
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 3000; ++i) {
      std::vector<double> p = {rng.Gaussian(centers[c][0], sigma[c]),
                               rng.Gaussian(centers[c][1], sigma[c])};
      data.Append(p);
    }
  }
  auto result = ClusterDataset(data, TinyOptions(4));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().clusters.size(), 4u);
  EXPECT_NEAR(TotalClusterPoints(result.value()), 12000.0, 1.0);
}

TEST(AdversarialTest, CollinearData) {
  // All points on a line (zero variance in y).
  Dataset data(2);
  Rng rng(304);
  for (int c = 0; c < 6; ++c) {
    for (int i = 0; i < 2000; ++i) {
      std::vector<double> p = {c * 20.0 + rng.Gaussian(0, 1.0), 0.0};
      data.Append(p);
    }
  }
  auto result = ClusterDataset(data, TinyOptions(6));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().clusters.size(), 6u);
  EXPECT_NEAR(TotalClusterPoints(result.value()), 12000.0, 1e-6);
}

TEST(AdversarialTest, OneClusterAtATimeTinyMemory) {
  // Fully ordered arrival under an 8 KB budget: the worst case for an
  // incremental summarizer.
  GeneratorOptions g;
  g.k = 16;
  g.n_low = g.n_high = 1500;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 12.0;
  g.order = InputOrder::kOrdered;
  g.seed = 305;
  auto gen = Generate(g);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = TinyOptions(16);
  o.resources.memory_bytes = 8 * 1024;
  o.resources.disk_bytes = 2 * 1024;
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  MatchReport match = MatchClusters(gen.value().actual,
                                    result.value().clusters);
  EXPECT_EQ(match.matched, 16);
  EXPECT_LT(match.mean_centroid_displacement, 2.0);
}

TEST(AdversarialTest, AlternatingFarPairs) {
  // Points alternate between two distant regions every sample,
  // defeating any locality assumption in the insert path.
  Dataset data(2);
  Rng rng(306);
  for (int i = 0; i < 20000; ++i) {
    double cx = (i % 2 == 0) ? 0.0 : 1000.0;
    std::vector<double> p = {rng.Gaussian(cx, 2.0), rng.Gaussian(0, 2.0)};
    data.Append(p);
  }
  auto result = ClusterDataset(data, TinyOptions(2));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().clusters.size(), 2u);
  EXPECT_NEAR(result.value().clusters[0].n(), 10000.0, 100.0);
  EXPECT_NEAR(result.value().clusters[1].n(), 10000.0, 100.0);
}

TEST(AdversarialTest, HeavyTailedClusterSizes) {
  // One cluster holds 90% of the data; nine share the rest. The big
  // one must not swallow the small ones' identity.
  Dataset data(2);
  Rng rng(307);
  std::vector<int> sizes = {45000};
  for (int i = 0; i < 9; ++i) sizes.push_back(550);
  std::vector<ActualCluster> actual;
  for (size_t c = 0; c < sizes.size(); ++c) {
    ActualCluster a;
    a.center = {static_cast<double>(c % 4) * 15.0,
                static_cast<double>(c / 4) * 15.0};
    a.points = sizes[c];
    a.cf = CfVector(2);
    for (int i = 0; i < sizes[c]; ++i) {
      std::vector<double> p = {rng.Gaussian(a.center[0], 1.0),
                               rng.Gaussian(a.center[1], 1.0)};
      data.Append(p);
      a.cf.AddPoint(p);
    }
    actual.push_back(std::move(a));
  }
  auto result = ClusterDataset(data, TinyOptions(10));
  ASSERT_TRUE(result.ok());
  MatchReport match = MatchClusters(actual, result.value().clusters);
  EXPECT_GE(match.matched, 10);
  EXPECT_LT(match.mean_centroid_displacement, 2.0);
}

}  // namespace
}  // namespace birch
