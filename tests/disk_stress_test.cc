// Stress tests for the outlier-disk machinery (Sec. 5.1.4): tiny or
// zero-headroom disks must never lose points, must terminate, and must
// exercise the re-absorb and forced-insert fallbacks.
#include <gtest/gtest.h>

#include "birch/birch.h"
#include "birch/phase1.h"
#include "datagen/generator.h"
#include "util/random.h"

namespace birch {
namespace {

GeneratedData NoisyBlobs(uint64_t seed) {
  GeneratorOptions g;
  g.k = 12;
  g.n_low = g.n_high = 600;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 10.0;
  g.noise_fraction = 0.08;
  g.seed = seed;
  auto gen = Generate(g);
  EXPECT_TRUE(gen.ok());
  return std::move(gen).ValueOrDie();
}

double TotalPoints(const Phase1Builder& b) {
  double total = b.tree().TreeSummary().n();
  for (const auto& e : b.final_outliers()) total += e.n();
  return total;
}

TEST(DiskStressTest, OnePageDiskConservesPoints) {
  auto g = NoisyBlobs(701);
  Phase1Options o;
  o.tree.dim = 2;
  o.tree.page_size = 512;
  o.memory_budget_bytes = 10 * 1024;
  o.disk_budget_bytes = 512;  // exactly one page
  Phase1Builder b(o);
  ASSERT_TRUE(b.AddDataset(g.data).ok());
  ASSERT_TRUE(b.Finish().ok());
  EXPECT_NEAR(TotalPoints(b), static_cast<double>(g.data.size()), 1e-6);
  // The fallbacks fired.
  EXPECT_GT(b.stats().forced_inserts + b.stats().reabsorb_cycles, 0u);
}

TEST(DiskStressTest, TinyDiskWithDelaySplit) {
  auto g = NoisyBlobs(702);
  Phase1Options o;
  o.tree.dim = 2;
  o.tree.page_size = 512;
  o.memory_budget_bytes = 8 * 1024;
  o.disk_budget_bytes = 1024;
  o.delay_split = true;
  Phase1Builder b(o);
  ASSERT_TRUE(b.AddDataset(g.data).ok());
  ASSERT_TRUE(b.Finish().ok());
  EXPECT_NEAR(TotalPoints(b), static_cast<double>(g.data.size()), 1e-6);
  std::string why;
  EXPECT_TRUE(b.tree().CheckInvariants(&why)) << why;
}

TEST(DiskStressTest, EndToEndQualitySurvivesTinyDisk) {
  auto g = NoisyBlobs(703);
  BirchOptions o;
  o.dim = 2;
  o.k = 12;
  o.resources.memory_bytes = 16 * 1024;
  o.resources.disk_bytes = 1024;
  o.resources.page_size = 512;
  auto result = ClusterDataset(g.data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().clusters.size(), 12u);
}

TEST(DiskStressTest, ReabsorbCountersConsistent) {
  auto g = NoisyBlobs(704);
  Phase1Options o;
  o.tree.dim = 2;
  o.tree.page_size = 512;
  o.memory_budget_bytes = 10 * 1024;
  o.disk_budget_bytes = 2 * 1024;
  Phase1Builder b(o);
  ASSERT_TRUE(b.AddDataset(g.data).ok());
  ASSERT_TRUE(b.Finish().ok());
  const Phase1Stats& s = b.stats();
  // Everything spilled was either re-absorbed, force-inserted, or is a
  // final outlier.
  EXPECT_LE(b.final_outliers().size() + s.outlier_entries_reabsorbed,
            s.outlier_entries_spilled + s.forced_inserts +
                s.outlier_entries_reabsorbed);
  EXPECT_EQ(s.points_added, g.data.size());
}

}  // namespace
}  // namespace birch
