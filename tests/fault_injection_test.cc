// End-to-end fault-tolerance tests: BIRCH on a misbehaving outlier
// disk. Transient error rates up to 10% must be absorbed by the retry
// policy with no quality impact beyond noise; permanent page loss and
// bit rot must degrade the run gracefully (in-tree fallback) with exact
// loss accounting in RobustnessStats — never a failed run, never
// silently-corrupt records.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "birch/birch.h"
#include "birch/phase1.h"
#include "datagen/generator.h"
#include "eval/quality.h"

namespace birch {
namespace {

/// DS1-style workload (grid-placed Gaussian clusters, Table 1) with
/// background noise so rebuilds produce genuine outlier spills.
GeneratedData Ds1Style(uint64_t seed) {
  GeneratorOptions g;
  g.dim = 2;
  g.k = 20;
  g.n_low = g.n_high = 500;
  g.r_low = g.r_high = 1.0;
  g.pattern = PlacementPattern::kGrid;
  g.grid_spacing = 10.0;
  g.noise_fraction = 0.10;
  g.seed = seed;
  auto gen = Generate(g);
  EXPECT_TRUE(gen.ok());
  return std::move(gen).ValueOrDie();
}

/// Small budgets so Phase 1 rebuilds, spills, and re-absorbs — the
/// faulty disk must actually be on the hot path.
BirchOptions StressedOptions(size_t n) {
  BirchOptions o;
  o.dim = 2;
  o.k = 20;
  o.resources.memory_bytes = 24 * 1024;
  o.resources.disk_bytes = 4 * 1024;
  o.resources.page_size = 512;
  o.expected_points = n;
  return o;
}

TEST(FaultInjectionTest, TransientFaultsUpTo10PercentPreserveQuality) {
  auto g = Ds1Style(801);
  BirchOptions base = StressedOptions(g.data.size());
  auto clean_or = ClusterDataset(g.data, base);
  ASSERT_TRUE(clean_or.ok()) << clean_or.status().ToString();
  const BirchResult& clean = clean_or.value();
  double clean_d = WeightedAverageDiameter(clean.clusters);
  ASSERT_GT(clean_d, 0.0);
  // The workload must actually exercise the disk for this test to mean
  // anything.
  ASSERT_GT(clean.phase1.outlier_entries_spilled, 0u);

  for (double rate : {0.02, 0.05, 0.10}) {
    BirchOptions o = StressedOptions(g.data.size());
    o.resources.fault.read_transient_rate = rate;
    o.resources.fault.write_transient_rate = rate;
    o.resources.fault.seed = 4242;
    auto faulty_or = ClusterDataset(g.data, o);
    ASSERT_TRUE(faulty_or.ok())
        << "rate " << rate << ": " << faulty_or.status().ToString();
    const BirchResult& faulty = faulty_or.value();
    EXPECT_EQ(faulty.clusters.size(), clean.clusters.size())
        << "rate " << rate;
    double faulty_d = WeightedAverageDiameter(faulty.clusters);
    EXPECT_NEAR(faulty_d, clean_d, 0.05 * clean_d) << "rate " << rate;
    // The injector fired and the retry policy absorbed it.
    EXPECT_GT(faulty.robustness.transient_io_errors, 0u) << "rate " << rate;
    EXPECT_GT(faulty.robustness.io_retries, 0u) << "rate " << rate;
    EXPECT_EQ(faulty.robustness.checksum_failures, 0u) << "rate " << rate;
  }
}

TEST(FaultInjectionTest, FaultRunsAreDeterministicallyReplayable) {
  auto g = Ds1Style(802);
  BirchOptions o = StressedOptions(g.data.size());
  o.resources.fault.read_transient_rate = 0.10;
  o.resources.fault.write_transient_rate = 0.10;
  o.resources.fault.page_loss_rate = 0.02;
  o.resources.fault.seed = 77;
  auto a_or = ClusterDataset(g.data, o);
  auto b_or = ClusterDataset(g.data, o);
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  const RobustnessStats& a = a_or.value().robustness;
  const RobustnessStats& b = b_or.value().robustness;
  EXPECT_EQ(a.transient_io_errors, b.transient_io_errors);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.records_lost, b.records_lost);
  EXPECT_EQ(a.degradation_events, b.degradation_events);
  EXPECT_EQ(a_or.value().clusters.size(), b_or.value().clusters.size());
}

TEST(FaultInjectionTest, BitRotIsCaughtByChecksumsNeverDecoded) {
  auto g = Ds1Style(803);
  BirchOptions o = StressedOptions(g.data.size());
  o.resources.fault.bit_flip_rate = 0.25;
  o.resources.fault.seed = 9;
  auto result_or = ClusterDataset(g.data, o);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  const RobustnessStats& r = result_or.value().robustness;
  // Corruption happened, was caught by CRC32C on read, and the affected
  // records were dropped with exact accounting — not decoded as data.
  EXPECT_GT(r.checksum_failures, 0u);
  EXPECT_GT(r.records_lost, 0u);
  EXPECT_GT(r.degradation_events, 0u);
  EXPECT_EQ(result_or.value().clusters.size(), 20u);
}

TEST(FaultInjectionTest, PermanentDiskLossDegradesGracefully) {
  auto g = Ds1Style(804);
  BirchOptions base = StressedOptions(g.data.size());
  auto clean_or = ClusterDataset(g.data, base);
  ASSERT_TRUE(clean_or.ok());

  BirchOptions o = StressedOptions(g.data.size());
  o.resources.fault.page_loss_rate = 1.0;  // the disk silently eats every write
  auto result_or = ClusterDataset(g.data, o);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  const BirchResult& result = result_or.value();
  const RobustnessStats& r = result.robustness;
  EXPECT_GT(r.degradation_events, 0u);
  EXPECT_TRUE(r.outlier_disk_disabled);
  EXPECT_GT(r.records_lost, 0u);
  // Exact loss accounting: with every write lost, the records lost are
  // exactly the records that reached a flushed page — every page the
  // drains visited was lost, none decoded.
  EXPECT_EQ(r.records_lost,
            r.pages_lost * (o.resources.page_size / (4 * sizeof(double))));
  EXPECT_EQ(result.clusters.size(), clean_or.value().clusters.size());
}

TEST(FaultInjectionTest, ZeroDiskBytesRunsInTreeFallback) {
  auto g = Ds1Style(805);
  BirchOptions o = StressedOptions(g.data.size());
  o.resources.disk_bytes = 0;  // no outlier disk at all
  ASSERT_TRUE(o.Validate().ok());
  auto result_or = ClusterDataset(g.data, o);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  const BirchResult& result = result_or.value();
  EXPECT_TRUE(result.robustness.outlier_disk_disabled);
  EXPECT_EQ(result.disk_pages_written, 0u);
  // Outliers still got handled — through the in-tree fallback.
  EXPECT_GT(result.robustness.fallback_absorbed +
                result.robustness.fallback_dropped,
            0u);
  EXPECT_EQ(result.clusters.size(), 20u);
}

TEST(FaultInjectionTest, ZeroDiskPhase1ConservesEveryPoint) {
  auto g = Ds1Style(806);
  Phase1Options o;
  o.tree.dim = 2;
  o.tree.page_size = 512;
  o.memory_budget_bytes = 16 * 1024;
  o.disk_budget_bytes = 0;
  Phase1Builder b(o);
  ASSERT_TRUE(b.AddDataset(g.data).ok());
  ASSERT_TRUE(b.Finish().ok());
  double total = b.tree().TreeSummary().n();
  for (const auto& e : b.final_outliers()) total += e.n();
  EXPECT_NEAR(total, static_cast<double>(g.data.size()), 1e-6);
  EXPECT_TRUE(b.robustness().outlier_disk_disabled);
  EXPECT_EQ(b.disk().io_stats().pages_written, 0u);
}

TEST(FaultInjectionTest, OptionsValidateFaultAndDiskInteraction) {
  BirchOptions o;
  o.k = 5;
  ASSERT_TRUE(o.Validate().ok());
  o.resources.disk_bytes = 0;  // documented: no disk, in-tree fallback
  EXPECT_TRUE(o.Validate().ok());
  o.resources.disk_bytes = o.resources.page_size - 1;  // cannot hold a single page
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.resources.disk_bytes = o.resources.page_size;
  EXPECT_TRUE(o.Validate().ok());
  o.resources.fault.page_loss_rate = 1.5;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.resources.fault.page_loss_rate = 0.5;
  EXPECT_TRUE(o.Validate().ok());
  o.resources.fault.read_transient_rate = -0.1;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.resources.fault.read_transient_rate = 0.0;
  o.resources.io_retry.max_attempts = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace birch
