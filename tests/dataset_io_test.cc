// CSV point-loading tests: separators, headers, comments, errors.
#include "birch/dataset_io.h"

#include <fstream>

#include <gtest/gtest.h>

namespace birch {
namespace {

TEST(DatasetIoTest, ParsesCommaSeparated) {
  auto d = ParseCsvPoints("1.5,2.5\n-3,4\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().size(), 2u);
  EXPECT_EQ(d.value().dim(), 2u);
  EXPECT_DOUBLE_EQ(d.value().Row(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(d.value().Row(1)[1], 4.0);
}

TEST(DatasetIoTest, ParsesWhitespaceSeparated) {
  auto d = ParseCsvPoints("1 2 3\n4\t5\t6\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().dim(), 3u);
  EXPECT_DOUBLE_EQ(d.value().Row(1)[2], 6.0);
}

TEST(DatasetIoTest, SkipsHeaderCommentsBlanks) {
  auto d = ParseCsvPoints("x,y\n# a comment\n\n1,2\n3,4 # trailing\n");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().size(), 2u);
}

TEST(DatasetIoTest, ScientificNotationAndNegatives) {
  auto d = ParseCsvPoints("1e3,-2.5e-2\n-0.0,3\n");
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value().Row(0)[0], 1000.0);
  EXPECT_DOUBLE_EQ(d.value().Row(0)[1], -0.025);
}

TEST(DatasetIoTest, ArityMismatchRejected) {
  auto d = ParseCsvPoints("1,2\n3,4,5\n");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, GarbageAfterDataRejected) {
  auto d = ParseCsvPoints("1,2\nfoo,bar\n");
  EXPECT_FALSE(d.ok());
}

TEST(DatasetIoTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsvPoints("").ok());
  EXPECT_FALSE(ParseCsvPoints("# only comments\n\n").ok());
  EXPECT_FALSE(ParseCsvPoints("header,only\n").ok());
}

TEST(DatasetIoTest, ReadsFromFile) {
  std::string path = ::testing::TempDir() + "/birch_points.csv";
  {
    std::ofstream f(path);
    f << "a,b\n1,2\n3,4\n";
  }
  auto d = ReadCsvPoints(path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().size(), 2u);
  EXPECT_FALSE(ReadCsvPoints("/nonexistent/file.csv").ok());
}

}  // namespace
}  // namespace birch
