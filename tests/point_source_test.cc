// Streaming-source tests: DatasetSource, CsvPointSource and
// StreamingGenerator must all deliver the right points, rewind
// correctly, and drive the out-of-core ClusterSource pipeline to the
// same answer as the in-memory path.
#include <fstream>

#include <gtest/gtest.h>

#include "birch/birch.h"
#include "birch/dataset_io.h"
#include "birch/point_source.h"
#include "datagen/streaming_generator.h"
#include "eval/quality.h"

namespace birch {
namespace {

TEST(DatasetSourceTest, StreamsAllRowsAndRewinds) {
  Dataset data(2);
  std::vector<double> a = {1, 2}, b = {3, 4};
  data.Append(a);
  data.AppendWeighted(b, 2.5);
  DatasetSource source(&data);
  EXPECT_EQ(source.dim(), 2u);
  EXPECT_EQ(source.SizeHint(), 2u);

  std::vector<double> p(2);
  double w = 0;
  ASSERT_TRUE(source.Next(p, &w));
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(w, 1.0);
  ASSERT_TRUE(source.Next(p, &w));
  EXPECT_EQ(p[1], 4.0);
  EXPECT_EQ(w, 2.5);
  EXPECT_FALSE(source.Next(p, &w));

  ASSERT_TRUE(source.Rewind().ok());
  ASSERT_TRUE(source.Next(p, &w));
  EXPECT_EQ(p[0], 1.0);
}

TEST(CsvPointSourceTest, StreamsFileWithHeader) {
  std::string path = ::testing::TempDir() + "/birch_stream.csv";
  {
    std::ofstream f(path);
    f << "x,y\n# comment\n1,2\n\n3,4\n5,6\n";
  }
  auto source_or = CsvPointSource::Open(path);
  ASSERT_TRUE(source_or.ok()) << source_or.status().ToString();
  auto& source = source_or.value();
  EXPECT_EQ(source->dim(), 2u);

  std::vector<double> p(2);
  double w = 0;
  int count = 0;
  double sum = 0;
  while (source->Next(p, &w)) {
    ++count;
    sum += p[0] + p[1];
  }
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sum, 21.0);

  ASSERT_TRUE(source->Rewind().ok());
  count = 0;
  while (source->Next(p, &w)) ++count;
  EXPECT_EQ(count, 3);
}

TEST(CsvPointSourceTest, OpenFailsOnMissingOrEmpty) {
  EXPECT_FALSE(CsvPointSource::Open("/no/such/file.csv").ok());
  std::string path = ::testing::TempDir() + "/birch_empty.csv";
  {
    std::ofstream f(path);
    f << "# nothing here\n";
  }
  EXPECT_FALSE(CsvPointSource::Open(path).ok());
}

TEST(StreamingGeneratorTest, MatchesRequestedCounts) {
  GeneratorOptions o;
  o.k = 10;
  o.n_low = o.n_high = 500;
  o.noise_fraction = 0.10;
  o.seed = 41;
  auto gen_or = StreamingGenerator::Create(o);
  ASSERT_TRUE(gen_or.ok());
  auto& gen = gen_or.value();

  std::vector<double> p(2);
  double w = 0;
  std::vector<int> counts(10, 0);
  int noise = 0;
  uint64_t total = 0;
  while (gen->Next(p, &w)) {
    ++total;
    if (gen->last_truth() < 0) {
      ++noise;
    } else {
      ++counts[static_cast<size_t>(gen->last_truth())];
    }
  }
  EXPECT_EQ(total, gen->total_points());
  for (int c : counts) EXPECT_EQ(c, 500);
  EXPECT_NEAR(static_cast<double>(noise) / static_cast<double>(total),
              0.10, 0.01);
}

TEST(StreamingGeneratorTest, RandomizedInterleavesClusters) {
  GeneratorOptions o;
  o.k = 5;
  o.n_low = o.n_high = 200;
  o.seed = 42;
  auto gen = StreamingGenerator::Create(o);
  ASSERT_TRUE(gen.ok());
  std::vector<double> p(2);
  double w;
  int changes = 0, prev = -2, total = 0;
  while (gen.value()->Next(p, &w)) {
    ++total;
    if (gen.value()->last_truth() != prev) ++changes;
    prev = gen.value()->last_truth();
  }
  EXPECT_GT(changes, total / 3);
}

TEST(StreamingGeneratorTest, OrderedEmitsContiguously) {
  GeneratorOptions o;
  o.k = 5;
  o.n_low = o.n_high = 100;
  o.order = InputOrder::kOrdered;
  o.seed = 43;
  auto gen = StreamingGenerator::Create(o);
  ASSERT_TRUE(gen.ok());
  std::vector<double> p(2);
  double w;
  int prev = 0;
  while (gen.value()->Next(p, &w)) {
    int t = gen.value()->last_truth();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(StreamingGeneratorTest, RewindReproducesStream) {
  GeneratorOptions o;
  o.k = 3;
  o.n_low = o.n_high = 100;
  o.seed = 44;
  auto gen = StreamingGenerator::Create(o);
  ASSERT_TRUE(gen.ok());
  std::vector<double> p(2);
  double w;
  std::vector<double> first;
  while (gen.value()->Next(p, &w)) first.insert(first.end(), p.begin(),
                                                p.end());
  ASSERT_TRUE(gen.value()->Rewind().ok());
  std::vector<double> second;
  while (gen.value()->Next(p, &w)) second.insert(second.end(), p.begin(),
                                                 p.end());
  EXPECT_EQ(first, second);
}

TEST(ClusterSourceTest, OutOfCoreMatchesInMemoryQuality) {
  GeneratorOptions o;
  o.k = 16;
  o.n_low = o.n_high = 1000;
  o.r_low = o.r_high = 1.0;
  o.grid_spacing = 10.0;
  o.seed = 45;

  // In-memory path.
  auto gen = Generate(o);
  ASSERT_TRUE(gen.ok());
  BirchOptions b;
  b.dim = 2;
  b.k = 16;
  b.resources.memory_bytes = 24 * 1024;
  auto mem_result = ClusterDataset(gen.value().data, b);
  ASSERT_TRUE(mem_result.ok());

  // Streaming path (same distribution, independent draw).
  auto source = StreamingGenerator::Create(o);
  ASSERT_TRUE(source.ok());
  auto stream_result = ClusterSource(source.value().get(), b);
  ASSERT_TRUE(stream_result.ok()) << stream_result.status().ToString();

  EXPECT_EQ(stream_result.value().clusters.size(), 16u);
  double d_mem = WeightedAverageDiameter(mem_result.value().clusters);
  double d_stream = WeightedAverageDiameter(stream_result.value().clusters);
  EXPECT_NEAR(d_mem, d_stream, 0.15 * std::max(d_mem, d_stream));
  // All points land in clusters.
  double total = 0;
  for (const auto& c : stream_result.value().clusters) total += c.n();
  EXPECT_NEAR(total, static_cast<double>(source.value()->total_points()),
              1e-6);
  // Labels are intentionally absent in the out-of-core path.
  EXPECT_TRUE(stream_result.value().labels.empty());
}

TEST(ClusterSourceTest, NonRewindableSkipsRefinement) {
  /// A one-shot source: Rewind unsupported.
  class OneShot : public PointSource {
   public:
    size_t dim() const override { return 1; }
    bool Next(std::span<double> out, double* w) override {
      if (i_ >= 100) return false;
      out[0] = (i_ % 2 == 0) ? 0.0 : 10.0;
      out[0] += 0.001 * static_cast<double>(i_);
      *w = 1.0;
      ++i_;
      return true;
    }

   private:
    int i_ = 0;
  };
  OneShot source;
  BirchOptions b;
  b.dim = 1;
  b.k = 2;
  b.refine.passes = 3;
  auto result = ClusterSource(&source, b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().clusters.size(), 2u);
  // No refinement scan happened (the timing is just the skipped-branch
  // epsilon, far below any real pass over 100 points).
  EXPECT_LT(result.value().timings.phase4, 1e-4);
}

}  // namespace
}  // namespace birch
