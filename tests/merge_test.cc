// CF-tree merging (AbsorbTree): the paper's parallelism sketch —
// partition the stream, build independent trees, merge the summaries —
// must conserve mass, keep invariants, and deliver clustering quality
// equivalent to a single-tree build over the union.
#include <gtest/gtest.h>

#include "birch/birch.h"
#include "birch/cf_tree.h"
#include "datagen/generator.h"
#include "eval/matching.h"
#include "eval/quality.h"
#include "pagestore/memory_tracker.h"

namespace birch {
namespace {

CfTreeOptions TreeOpts(double threshold = 0.6) {
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 512;
  o.threshold = threshold;
  return o;
}

TEST(MergeTest, MassConserved) {
  MemoryTracker m1, m2;
  CfTree a(TreeOpts(), &m1), b(TreeOpts(), &m2);
  Rng rng(501);
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> p = {rng.Uniform(0, 30), rng.Uniform(0, 30)};
    (i % 2 == 0 ? a : b).InsertPoint(p);
  }
  double na = a.TreeSummary().n(), nb = b.TreeSummary().n();
  a.AbsorbTree(b);
  EXPECT_NEAR(a.TreeSummary().n(), na + nb, 1e-6);
  EXPECT_NEAR(b.TreeSummary().n(), nb, 1e-6);  // source untouched
  std::string why;
  EXPECT_TRUE(a.CheckInvariants(&why)) << why;
  EXPECT_TRUE(b.CheckInvariants(&why)) << why;
}

TEST(MergeTest, PartitionedBuildMatchesSingleBuild) {
  GeneratorOptions g;
  g.k = 12;
  g.n_low = g.n_high = 800;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 10.0;
  g.seed = 502;
  auto gen = Generate(g);
  ASSERT_TRUE(gen.ok());
  const auto& data = gen.value().data;

  // Single tree over everything.
  MemoryTracker ms;
  CfTree single(TreeOpts(), &ms);
  for (size_t i = 0; i < data.size(); ++i) single.InsertPoint(data.Row(i));

  // Four independent shards, merged into the first.
  std::vector<std::unique_ptr<MemoryTracker>> mems;
  std::vector<std::unique_ptr<CfTree>> shards;
  for (int s = 0; s < 4; ++s) {
    mems.push_back(std::make_unique<MemoryTracker>());
    shards.push_back(std::make_unique<CfTree>(TreeOpts(), mems.back().get()));
  }
  for (size_t i = 0; i < data.size(); ++i) {
    shards[i % 4]->InsertPoint(data.Row(i));
  }
  for (int s = 1; s < 4; ++s) shards[0]->AbsorbTree(*shards[s]);
  EXPECT_NEAR(shards[0]->TreeSummary().n(),
              static_cast<double>(data.size()), 1e-6);

  // Both summaries cluster to the same answer.
  auto cluster_of = [&](const CfTree& tree) {
    std::vector<CfVector> entries;
    tree.CollectLeafEntries(&entries);
    GlobalClusterOptions o;
    o.k = 12;
    auto r = GlobalCluster(entries, o);
    EXPECT_TRUE(r.ok());
    return std::move(r).ValueOrDie().clusters;
  };
  auto single_clusters = cluster_of(single);
  auto merged_clusters = cluster_of(*shards[0]);

  MatchReport rs = MatchClusters(gen.value().actual, single_clusters);
  MatchReport rm = MatchClusters(gen.value().actual, merged_clusters);
  EXPECT_EQ(rs.matched, 12);
  EXPECT_EQ(rm.matched, 12);
  double ds = WeightedAverageDiameter(single_clusters);
  double dm = WeightedAverageDiameter(merged_clusters);
  EXPECT_NEAR(ds, dm, 0.10 * std::max(ds, dm));
}

TEST(MergeTest, MergeIntoEmptyTree) {
  MemoryTracker m1, m2;
  CfTree empty(TreeOpts(), &m1), full(TreeOpts(), &m2);
  Rng rng(503);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = {rng.Gaussian(0, 2), rng.Gaussian(0, 2)};
    full.InsertPoint(p);
  }
  empty.AbsorbTree(full);
  // Same contents up to floating-point summation order (entries merge
  // along a different history in the destination tree).
  CfVector got = empty.TreeSummary(), want = full.TreeSummary();
  EXPECT_NEAR(got.n(), want.n(), 1e-9);
  EXPECT_NEAR(got.ss(), want.ss(), 1e-6 * (1 + want.ss()));
  for (size_t t = 0; t < 2; ++t) {
    EXPECT_NEAR(got.ls()[t], want.ls()[t],
                1e-8 * (1 + std::fabs(want.ls()[t])));
  }
  // And merging an empty tree is an exact no-op.
  CfVector before = full.TreeSummary();
  MemoryTracker m3;
  CfTree empty2(TreeOpts(), &m3);
  full.AbsorbTree(empty2);
  EXPECT_EQ(full.TreeSummary(), before);
}

}  // namespace
}  // namespace birch
