// Unit and property tests for the CF vector algebra (paper Sec. 4.1):
// the Additivity Theorem, and exactness of centroid/radius/diameter
// against brute-force computation over the raw points.
#include "birch/cf_vector.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/math.h"
#include "util/random.h"

namespace birch {
namespace {

std::vector<std::vector<double>> RandomPoints(Rng* rng, size_t n,
                                              size_t dim) {
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
  for (auto& p : pts) {
    for (auto& v : p) v = rng->Uniform(-10, 10);
  }
  return pts;
}

CfVector CfOf(const std::vector<std::vector<double>>& pts) {
  CfVector cf(pts.empty() ? 0 : pts[0].size());
  for (const auto& p : pts) cf.AddPoint(p);
  return cf;
}

TEST(CfVectorTest, EmptyCf) {
  CfVector cf(3);
  EXPECT_TRUE(cf.empty());
  EXPECT_EQ(cf.dim(), 3u);
  EXPECT_EQ(cf.n(), 0.0);
  EXPECT_EQ(cf.Radius(), 0.0);
  EXPECT_EQ(cf.Diameter(), 0.0);
}

TEST(CfVectorTest, SinglePoint) {
  std::vector<double> x = {1.0, -2.0, 3.0};
  CfVector cf = CfVector::FromPoint(x);
  EXPECT_DOUBLE_EQ(cf.n(), 1.0);
  EXPECT_DOUBLE_EQ(cf.ss(), 1.0 + 4.0 + 9.0);
  EXPECT_EQ(cf.Centroid(), x);
  EXPECT_NEAR(cf.Radius(), 0.0, 1e-12);
  EXPECT_NEAR(cf.Diameter(), 0.0, 1e-12);
}

TEST(CfVectorTest, WeightedPoint) {
  std::vector<double> x = {2.0, 4.0};
  CfVector cf = CfVector::FromPoint(x, 5.0);
  EXPECT_DOUBLE_EQ(cf.n(), 5.0);
  EXPECT_DOUBLE_EQ(cf.ls()[0], 10.0);
  EXPECT_DOUBLE_EQ(cf.ls()[1], 20.0);
  EXPECT_DOUBLE_EQ(cf.ss(), 5.0 * 20.0);
  EXPECT_EQ(cf.Centroid(), x);
}

TEST(CfVectorTest, CentroidOfTwoPoints) {
  CfVector cf(2);
  cf.AddPoint(std::vector<double>{0.0, 0.0});
  cf.AddPoint(std::vector<double>{2.0, 4.0});
  auto c = cf.Centroid();
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  // Two points distance 2*sqrt(5) apart: diameter is that distance,
  // radius is half of it.
  EXPECT_NEAR(cf.Diameter(), 2.0 * std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(cf.Radius(), std::sqrt(5.0), 1e-12);
}

// --- Property tests: CF-derived statistics must match brute force. ---

class CfVectorPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(CfVectorPropertyTest, RadiusMatchesBruteForce) {
  auto [n, dim] = GetParam();
  Rng rng(1000 + n * 31 + dim);
  auto pts = RandomPoints(&rng, n, dim);
  CfVector cf = CfOf(pts);

  std::vector<double> c = cf.Centroid();
  double sum_sq = 0.0;
  for (const auto& p : pts) sum_sq += SquaredDistance(p, c);
  double brute_radius = std::sqrt(sum_sq / static_cast<double>(n));
  EXPECT_NEAR(cf.Radius(), brute_radius, 1e-8 * (1.0 + brute_radius));
}

TEST_P(CfVectorPropertyTest, DiameterMatchesBruteForce) {
  auto [n, dim] = GetParam();
  if (n < 2) GTEST_SKIP();
  Rng rng(2000 + n * 31 + dim);
  auto pts = RandomPoints(&rng, n, dim);
  CfVector cf = CfOf(pts);

  double sum_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) sum_sq += SquaredDistance(pts[i], pts[j]);
    }
  }
  double brute_diam =
      std::sqrt(sum_sq / (static_cast<double>(n) * (n - 1.0)));
  EXPECT_NEAR(cf.Diameter(), brute_diam, 1e-8 * (1.0 + brute_diam));
}

TEST_P(CfVectorPropertyTest, AdditivityTheorem) {
  auto [n, dim] = GetParam();
  Rng rng(3000 + n * 31 + dim);
  auto pts1 = RandomPoints(&rng, n, dim);
  auto pts2 = RandomPoints(&rng, n + 3, dim);
  CfVector cf1 = CfOf(pts1);
  CfVector cf2 = CfOf(pts2);

  // CF of union computed directly...
  auto all = pts1;
  all.insert(all.end(), pts2.begin(), pts2.end());
  CfVector direct = CfOf(all);
  // ...must equal CF1 + CF2 (Additivity Theorem).
  CfVector merged = CfVector::Merged(cf1, cf2);
  EXPECT_NEAR(merged.n(), direct.n(), 1e-9);
  EXPECT_NEAR(merged.ss(), direct.ss(), 1e-6 * (1.0 + direct.ss()));
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(merged.ls()[i], direct.ls()[i],
                1e-9 * (1.0 + std::fabs(direct.ls()[i])));
  }
}

TEST_P(CfVectorPropertyTest, SubtractInvertsAdd) {
  auto [n, dim] = GetParam();
  Rng rng(4000 + n * 31 + dim);
  auto pts1 = RandomPoints(&rng, n, dim);
  auto pts2 = RandomPoints(&rng, 5, dim);
  CfVector cf1 = CfOf(pts1);
  CfVector cf2 = CfOf(pts2);
  CfVector merged = CfVector::Merged(cf1, cf2);
  merged.Subtract(cf2);
  EXPECT_NEAR(merged.n(), cf1.n(), 1e-9);
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(merged.ls()[i], cf1.ls()[i],
                1e-8 * (1.0 + std::fabs(cf1.ls()[i])));
  }
}

TEST_P(CfVectorPropertyTest, SerializeRoundTrip) {
  auto [n, dim] = GetParam();
  Rng rng(5000 + n * 31 + dim);
  CfVector cf = CfOf(RandomPoints(&rng, n, dim));
  std::vector<double> buf;
  cf.SerializeTo(&buf);
  ASSERT_EQ(buf.size(), CfVector::SerializedDoubles(dim));
  CfVector back = CfVector::Deserialize(buf, dim);
  EXPECT_EQ(back, cf);
}

TEST_P(CfVectorPropertyTest, SumSquaredDeviationMatchesBruteForce) {
  auto [n, dim] = GetParam();
  Rng rng(6000 + n * 31 + dim);
  auto pts = RandomPoints(&rng, n, dim);
  CfVector cf = CfOf(pts);
  auto c = cf.Centroid();
  double sse = 0.0;
  for (const auto& p : pts) sse += SquaredDistance(p, c);
  EXPECT_NEAR(cf.SumSquaredDeviation(), sse, 1e-7 * (1.0 + sse));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CfVectorPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 7, 40, 200),
                       ::testing::Values<size_t>(1, 2, 3, 8, 16)));

TEST(CfVectorTest, WeightedEquivalentToRepeated) {
  // A point added with weight w behaves like w copies of the point.
  std::vector<double> x = {3.0, -1.0, 0.5};
  CfVector weighted = CfVector::FromPoint(x, 4.0);
  CfVector repeated(3);
  for (int i = 0; i < 4; ++i) repeated.AddPoint(x);
  EXPECT_NEAR(weighted.n(), repeated.n(), 1e-12);
  EXPECT_NEAR(weighted.ss(), repeated.ss(), 1e-9);
}

TEST(CfVectorTest, RadiusNeverNegativeUnderCancellation) {
  // Points far from the origin stress the SS - ||LS||^2/N cancellation.
  CfVector cf(2);
  for (int i = 0; i < 100; ++i) {
    cf.AddPoint(std::vector<double>{1e8 + i * 1e-6, -1e8});
  }
  EXPECT_GE(cf.SquaredRadius(), 0.0);
  EXPECT_GE(cf.SquaredDiameter(), 0.0);
}

TEST(CfVectorTest, FarFromOriginGuardClampsCancellationNoise) {
  // BETULA-style guard regression: a cluster of IDENTICAL points far
  // from the origin has radius and diameter exactly 0, but the raw
  // SS/N - ||LS/N||^2 cancellation yields noise of either sign — the
  // positive-garbage case used to survive the old max(x, 0) clamp and
  // propagate through sqrt as a plausible-looking nonzero radius.
  for (double c : {1e6, 1e7, 1e8, -1e8}) {
    CfVector cf(3);
    for (int i = 0; i < 1000; ++i) {
      cf.AddPoint(std::vector<double>{c, c * 0.5, -c});
    }
    EXPECT_EQ(cf.SquaredRadius(), 0.0) << "center " << c;
    EXPECT_EQ(cf.Radius(), 0.0) << "center " << c;
    EXPECT_EQ(cf.SquaredDiameter(), 0.0) << "center " << c;
    EXPECT_EQ(cf.Diameter(), 0.0) << "center " << c;
    EXPECT_EQ(cf.SumSquaredDeviation(), 0.0) << "center " << c;
    EXPECT_FALSE(std::isnan(cf.Radius()));
  }
}

// --- Representation property tests: classic (N, LS, SS) vs BETULA
// (N, mean, S) across conditioning regimes. Offsets 0 / 1e4 / 1e8
// sweep well-conditioned, transition, and catastrophic territory.

class CfRepresentationPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {
 protected:
  /// Gaussian cloud (unit sigma per dimension) centered `offset` from
  /// the origin on every axis.
  std::vector<std::vector<double>> Cloud(Rng* rng, size_t n, size_t dim,
                                         double offset) {
    std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
    for (auto& p : pts) {
      for (auto& v : p) v = rng->Gaussian(offset, 1.0);
    }
    return pts;
  }

  CfVector CfOfRep(const std::vector<std::vector<double>>& pts,
                   CfRepresentation rep) {
    CfVector cf(pts[0].size(), rep);
    for (const auto& p : pts) cf.AddPoint(p);
    return cf;
  }
};

TEST_P(CfRepresentationPropertyTest, BetulaMergeIsAssociative) {
  auto [offset, dim] = GetParam();
  Rng rng(7000 + dim);
  auto a = CfOfRep(Cloud(&rng, 50, dim, offset), CfRepresentation::kBetula);
  auto b = CfOfRep(Cloud(&rng, 31, dim, offset), CfRepresentation::kBetula);
  auto c = CfOfRep(Cloud(&rng, 77, dim, offset), CfRepresentation::kBetula);
  CfVector left = CfVector::Merged(CfVector::Merged(a, b), c);
  CfVector right = CfVector::Merged(a, CfVector::Merged(b, c));
  EXPECT_DOUBLE_EQ(left.n(), right.n());
  for (size_t t = 0; t < dim; ++t) {
    EXPECT_NEAR(left.mean()[t], right.mean()[t],
                1e-9 * (1.0 + std::fabs(right.mean()[t])));
  }
  EXPECT_NEAR(left.SumSquaredDeviation(), right.SumSquaredDeviation(),
              1e-9 * (1.0 + right.SumSquaredDeviation()));
}

TEST_P(CfRepresentationPropertyTest, BetulaRadiusPositiveWithoutClamping) {
  // The BETULA radius is S/N with S accumulated from non-negative
  // Welford increments: it needs no cancellation guard and must stay
  // strictly positive (and accurate) for spread-out data at ANY
  // offset — including 1e8, where the classic form clamps to zero.
  auto [offset, dim] = GetParam();
  Rng rng(7100 + dim);
  const size_t n = 2000;
  auto pts = Cloud(&rng, n, dim, offset);
  CfVector cf = CfOfRep(pts, CfRepresentation::kBetula);
  // Unit sigma per dimension: RMS distance to the centroid ~ sqrt(dim).
  double expected = std::sqrt(static_cast<double>(dim));
  EXPECT_GT(cf.SquaredRadius(), 0.0);
  EXPECT_NEAR(cf.Radius(), expected, 0.2 * expected);
  EXPECT_GT(cf.SquaredDiameter(), 0.0);
  // And it matches brute force over the raw points.
  auto c = cf.Centroid();
  double sse = 0.0;
  for (const auto& p : pts) sse += SquaredDistance(p, c);
  EXPECT_NEAR(cf.SumSquaredDeviation(), sse, 1e-6 * (1.0 + sse));
}

TEST_P(CfRepresentationPropertyTest, ClassicBetulaDivergenceBound) {
  // The two representations compute the same statistic; their
  // divergence is bounded by cancellation noise, which scales with the
  // squared magnitude of the data. At offset 0 / 1e4 the bound forces
  // near-agreement; at 1e8 it documents how the classic form drifts
  // (BETULA is the reference — its error does not grow with offset).
  auto [offset, dim] = GetParam();
  Rng rng(7200 + dim);
  auto pts = Cloud(&rng, 500, dim, offset);
  CfVector classic = CfOfRep(pts, CfRepresentation::kClassic);
  CfVector betula = CfOfRep(pts, CfRepresentation::kBetula);
  EXPECT_DOUBLE_EQ(classic.n(), betula.n());
  for (size_t t = 0; t < dim; ++t) {
    EXPECT_NEAR(classic.Centroid()[t], betula.Centroid()[t],
                1e-9 * (1.0 + std::fabs(offset)));
  }
  // Noise bound: ~1e3 ulps of the squared data magnitude.
  double magnitude = (1.0 + offset * offset) * static_cast<double>(dim);
  double bound = 1e-13 * magnitude + 1e-9;
  EXPECT_NEAR(classic.SquaredRadius(), betula.SquaredRadius(), bound);
  EXPECT_NEAR(classic.SquaredDiameter(), betula.SquaredDiameter(),
              2.5 * bound);
}

TEST_P(CfRepresentationPropertyTest, BetulaSubtractInvertsAdd) {
  auto [offset, dim] = GetParam();
  Rng rng(7300 + dim);
  auto a = CfOfRep(Cloud(&rng, 60, dim, offset), CfRepresentation::kBetula);
  auto b = CfOfRep(Cloud(&rng, 9, dim, offset), CfRepresentation::kBetula);
  CfVector merged = CfVector::Merged(a, b);
  merged.Subtract(b);
  EXPECT_NEAR(merged.n(), a.n(), 1e-9);
  for (size_t t = 0; t < dim; ++t) {
    EXPECT_NEAR(merged.mean()[t], a.mean()[t],
                1e-9 * (1.0 + std::fabs(a.mean()[t])));
  }
  EXPECT_NEAR(merged.SumSquaredDeviation(), a.SumSquaredDeviation(),
              1e-7 * (1.0 + a.SumSquaredDeviation()));
}

TEST_P(CfRepresentationPropertyTest, BetulaSerializeRoundTrip) {
  auto [offset, dim] = GetParam();
  Rng rng(7400 + dim);
  for (CfStorage storage : {CfStorage::kF64, CfStorage::kF32}) {
    CfVector cf(dim, CfRepresentation::kBetula, storage);
    for (const auto& p : Cloud(&rng, 40, dim, offset)) cf.AddPoint(p);
    std::vector<double> buf;
    cf.SerializeTo(&buf);
    CfVector back = CfVector::Deserialize(buf, dim,
                                          CfRepresentation::kBetula, storage);
    EXPECT_EQ(back, cf) << CfStorageName(storage);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConditioningSweep, CfRepresentationPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 1e4, 1e8),
                       ::testing::Values<size_t>(1, 64)));

TEST(CfVectorTest, CancellationClampCounterTicksOnVisibleLoss) {
  // Satellite observability contract: when the guard zeroes a value
  // that is ABOVE the visible tolerance (real structure, not few-ulp
  // dust), cf/cancellation_clamped must tick. A cluster with spread
  // ~200 centered at 3e7 lands inside the guard window (1e-12 of
  // ~1.8e15) but above the visible floor (1e-14 of it).
  auto& clamped =
      obs::Registry::Default().GetCounter("cf/cancellation_clamped");
  Rng rng(321);
  CfVector lossy(2, CfRepresentation::kClassic);
  for (int i = 0; i < 500; ++i) {
    lossy.AddPoint(std::vector<double>{rng.Gaussian(3e7, 10.0),
                                       rng.Gaussian(3e7, 10.0)});
  }
  uint64_t before = clamped.Value();
  EXPECT_EQ(lossy.SquaredRadius(), 0.0);  // guard destroyed the spread
  EXPECT_GT(clamped.Value(), before);

  // Benign clamp: identical points at 1e8 have TRUE spread 0 — the
  // guard fires on the ulp dust, but the loss is invisible-by-design
  // and must not tick the visible counter.
  CfVector benign(2, CfRepresentation::kClassic);
  for (int i = 0; i < 500; ++i) {
    benign.AddPoint(std::vector<double>{1e8, -1e8});
  }
  before = clamped.Value();
  EXPECT_EQ(benign.SquaredRadius(), 0.0);
  EXPECT_EQ(clamped.Value(), before);
}

TEST(CfVectorTest, GuardPreservesResolvableSpread) {
  // The guard must clamp only sub-noise-floor values: a genuine spread
  // well above the cancellation noise must come through accurately.
  Rng rng(123);
  CfVector cf(2);
  double c = 1e3;  // far enough to be interesting, near enough to resolve
  for (int i = 0; i < 2000; ++i) {
    cf.AddPoint(std::vector<double>{rng.Gaussian(c, 1.0),
                                    rng.Gaussian(-c, 1.0)});
  }
  // True RMS distance to the centroid is ~sqrt(2) for unit sigma in 2-d.
  EXPECT_NEAR(cf.Radius(), std::sqrt(2.0), 0.1);
  EXPECT_GT(cf.SquaredDiameter(), 0.0);
}

}  // namespace
}  // namespace birch
