// Targeted CF-tree edge cases: lopsided split rebalancing, the merging
// refinement resplit path, leaf-chain surgery, threshold-kind
// semantics, and degenerate geometries.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "birch/cf_tree.h"
#include "pagestore/memory_tracker.h"
#include "util/random.h"

namespace birch {
namespace {

std::vector<double> P(double x, double y) { return {x, y}; }

TEST(CfTreeEdgeTest, LopsidedSplitRespectsCapacity) {
  // L points in one tight clump plus one far point: farthest-pair
  // seeding attracts everything to one seed; the rebalance step must
  // still leave both sides within capacity.
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 256;
  o.threshold = 0.0;
  CfTree tree(o, &mem);
  size_t l = tree.layout().L();
  for (size_t i = 0; i < l; ++i) {
    tree.InsertPoint(P(1e-4 * static_cast<double>(i), 0.0));  // clump
  }
  tree.InsertPoint(P(1000.0, 0.0));  // triggers the lopsided split
  std::string why;
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
  EXPECT_EQ(tree.leaf_entry_count(), l + 1);
}

TEST(CfTreeEdgeTest, RadiusVsDiameterThresholdSemantics) {
  // Two points distance 1 apart: merged diameter = 1, radius = 0.5.
  // A threshold of 0.7 merges them under the radius condition only.
  for (auto kind : {ThresholdKind::kDiameter, ThresholdKind::kRadius}) {
    MemoryTracker mem;
    CfTreeOptions o;
    o.dim = 2;
    o.page_size = 256;
    o.threshold = 0.7;
    o.threshold_kind = kind;
    CfTree tree(o, &mem);
    tree.InsertPoint(P(0, 0));
    InsertOutcome out = tree.InsertPoint(P(1, 0));
    if (kind == ThresholdKind::kRadius) {
      EXPECT_EQ(out, InsertOutcome::kAbsorbed);
    } else {
      EXPECT_EQ(out, InsertOutcome::kNewEntry);
    }
  }
}

TEST(CfTreeEdgeTest, MergingRefinementResplitPath) {
  // Force the resplit branch: many inserts with tiny pages produce
  // frequent splits whose closest-pair merge would overflow.
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 192;  // L = 5: closest-pair merges overflow quickly
  o.threshold = 0.0;
  CfTree tree(o, &mem);
  Rng rng(601);
  for (int i = 0; i < 4000; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 10), rng.Uniform(0, 10)));
  }
  // The workload must actually have exercised the resplit branch.
  EXPECT_GT(tree.stats().resplits, 0u);
  std::string why;
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
  EXPECT_NEAR(tree.TreeSummary().n(), 4000.0, 1e-6);
}

TEST(CfTreeEdgeTest, DeepTreeManyLevels) {
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 128;  // tiny fanout -> deep tree
  o.threshold = 0.0;
  CfTree tree(o, &mem);
  Rng rng(602);
  for (int i = 0; i < 5000; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
  }
  EXPECT_GE(tree.height(), 4u);
  std::string why;
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(CfTreeEdgeTest, OneDimensionalData) {
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 1;
  o.page_size = 256;
  o.threshold = 0.5;
  CfTree tree(o, &mem);
  Rng rng(603);
  for (int i = 0; i < 3000; ++i) {
    std::vector<double> p = {rng.Gaussian(i % 3 * 10.0, 0.5)};
    tree.InsertPoint(p);
  }
  std::string why;
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
  EXPECT_NEAR(tree.TreeSummary().n(), 3000.0, 1e-6);
}

TEST(CfTreeEdgeTest, HighDimensionalTinyFanout) {
  // dim 32 with a 512-byte page: L/B pinned at the floor of 2.
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 32;
  o.page_size = 512;
  o.threshold = 1.0;
  CfTree tree(o, &mem);
  EXPECT_EQ(tree.layout().L(), 2u);
  Rng rng(604);
  std::vector<double> p(32);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : p) v = rng.Gaussian(0, 5);
    tree.InsertPoint(p);
  }
  std::string why;
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(CfTreeEdgeTest, WeightedEntriesThroughSplits) {
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 256;
  o.threshold = 0.2;
  CfTree tree(o, &mem);
  Rng rng(605);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double w = 1.0 + static_cast<double>(rng.UniformInt(uint64_t{9}));
    tree.InsertPoint(P(rng.Uniform(0, 50), rng.Uniform(0, 50)), w);
    total += w;
  }
  EXPECT_NEAR(tree.TreeSummary().n(), total, 1e-6);
}

TEST(CfTreeEdgeTest, RebuildToSameThresholdIsSafe) {
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 256;
  o.threshold = 0.5;
  CfTree tree(o, &mem);
  Rng rng(606);
  for (int i = 0; i < 1000; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 20), rng.Uniform(0, 20)));
  }
  size_t entries = tree.leaf_entry_count();
  tree.Rebuild(tree.threshold());  // not larger: must not grow
  EXPECT_LE(tree.leaf_entry_count(), entries);
  EXPECT_NEAR(tree.TreeSummary().n(), 1000.0, 1e-6);
  std::string why;
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(CfTreeEdgeTest, StatsCountersConsistent) {
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 256;
  o.threshold = 0.3;
  CfTree tree(o, &mem);
  Rng rng(607);
  for (int i = 0; i < 2000; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 40), rng.Uniform(0, 40)));
  }
  const CfTreeStats& s = tree.stats();
  EXPECT_EQ(s.inserts, 2000u);
  EXPECT_EQ(s.absorbed + s.new_entries, 2000u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_GT(s.leaf_splits, 0u);
  EXPECT_GT(s.distance_comparisons, 2000u);
}

}  // namespace
}  // namespace birch
