// Golden cross-variant tests for the CF representation policy
// (ctest -L numerics): classic (N, LS, SS) and BETULA (N, mean, S)
// must agree on well-conditioned data; on the ill-conditioned workload
// BETULA must hold its zero-offset quality while classic measurably
// degrades; and the float32 storage mode is BETULA-only.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "birch/birch.h"
#include "datagen/generator.h"
#include "datagen/paper_datasets.h"
#include "eval/quality.h"

namespace birch {
namespace {

BirchOptions BaseOpts(size_t dim, int k, CfRepresentation rep,
                      CfStorage storage = CfStorage::kF64) {
  BirchOptions o;
  o.dim = dim;
  o.k = k;
  o.resources.memory_bytes = 80 * 1024;
  o.resources.disk_bytes = 16 * 1024;
  o.resources.page_size = 1024;
  o.tree.cf = rep;
  o.tree.cf_storage = storage;
  return o;
}

/// Weighted average diameter recomputed from result labels over an
/// offset-subtracted copy of the data — comparable across offsets.
double CenteredQuality(const Dataset& data, std::span<const int> labels,
                       double offset) {
  Dataset centered(data.dim());
  centered.Reserve(data.size());
  std::vector<double> p(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.Row(i);
    for (size_t t = 0; t < p.size(); ++t) p[t] = row[t] - offset;
    centered.Append(p);
  }
  return WeightedAverageDiameter(ClustersFromLabels(centered, labels));
}

TEST(NumericsGoldenTest, ClassicAndBetulaMatchOnWellConditionedData) {
  // On the paper's DS1/DS2 (scaled down), the two representations
  // compute the same statistics up to rounding, so end-to-end cluster
  // quality must agree closely. (Bitwise scalar-vs-AVX2 equivalence
  // per variant is pinned separately in kernel_test.)
  for (PaperDataset ds : {PaperDataset::kDS1, PaperDataset::kDS2}) {
    auto gen = GeneratePaperDataset(ds, /*k=*/25, /*n_override=*/100);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    const auto& g = gen.value();

    double d[2] = {0.0, 0.0};
    for (CfRepresentation rep :
         {CfRepresentation::kClassic, CfRepresentation::kBetula}) {
      auto r = ClusterDataset(g.data, BaseOpts(g.data.dim(), 25, rep));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      d[rep == CfRepresentation::kBetula] =
          CenteredQuality(g.data, r.value().labels, 0.0);
    }
    EXPECT_GT(d[0], 0.0);
    // Tree-construction decisions can differ by a rounding hair, so
    // demand agreement in quality, not bitwise-equal clusterings.
    EXPECT_NEAR(d[0], d[1], 0.05 * d[0]) << PaperDatasetName(ds);
  }
}

TEST(NumericsGoldenTest, BetulaHoldsWhereClassicCollapses) {
  // The acceptance claim: at offset 1e8, BETULA stays within 5% of its
  // zero-offset quality; classic measurably degrades (its guarded
  // radius clamps to zero, so the tree absorbs everything).
  const size_t dim = 2;
  const int k = 16;
  auto quality = [&](CfRepresentation rep, double offset) {
    GeneratorOptions g = IllConditionedOptions(dim, k, offset, /*seed=*/7);
    g.n_low = g.n_high = 120;
    auto gen = Generate(g);
    EXPECT_TRUE(gen.ok());
    auto r = ClusterDataset(gen.value().data, BaseOpts(dim, k, rep));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return CenteredQuality(gen.value().data, r.value().labels, offset);
  };

  double betula_base = quality(CfRepresentation::kBetula, 0.0);
  double betula_far = quality(CfRepresentation::kBetula, 1e8);
  double classic_base = quality(CfRepresentation::kClassic, 0.0);
  double classic_far = quality(CfRepresentation::kClassic, 1e8);

  EXPECT_GT(betula_base, 0.0);
  EXPECT_LE(betula_far, 1.05 * betula_base)
      << "BETULA quality degraded at offset 1e8";
  EXPECT_GT(classic_far, 1.5 * classic_base)
      << "classic did not degrade — workload no longer ill-conditioned";
}

TEST(NumericsGoldenTest, BetulaF32MatchesF64OnFloatData) {
  // Float32-quantized input at a moderate offset: f32 CF storage must
  // deliver the same cluster quality as f64 (the data itself has no
  // sub-float structure to lose).
  const size_t dim = 2;
  const int k = 16;
  GeneratorOptions g = IllConditionedOptions(dim, k, 1e4, /*seed=*/11);
  g.n_low = g.n_high = 120;
  g.quantize_points_f32 = true;
  auto gen = Generate(g);
  ASSERT_TRUE(gen.ok());

  double d[2] = {0.0, 0.0};
  for (CfStorage storage : {CfStorage::kF64, CfStorage::kF32}) {
    auto r = ClusterDataset(
        gen.value().data,
        BaseOpts(dim, k, CfRepresentation::kBetula, storage));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    d[storage == CfStorage::kF32] =
        CenteredQuality(gen.value().data, r.value().labels, 1e4);
  }
  EXPECT_GT(d[0], 0.0);
  EXPECT_NEAR(d[0], d[1], 0.05 * d[0]);
}

TEST(NumericsGoldenTest, Float32StorageRequiresBetula) {
  // Classic (N, LS, SS) in float32 loses the radius to cancellation at
  // any interesting magnitude; the combination is rejected up front.
  BirchOptions bad = BaseOpts(2, 4, CfRepresentation::kClassic,
                              CfStorage::kF32);
  auto c = BirchClusterer::Create(bad);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);

  auto built = BirchOptions::Builder()
                   .Dim(2)
                   .K(4)
                   .CfStorage(CfStorage::kF32)
                   .Build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);

  auto good = BirchOptions::Builder()
                  .Dim(2)
                  .K(4)
                  .Cf(CfRepresentation::kBetula)
                  .CfStorage(CfStorage::kF32)
                  .Build();
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

}  // namespace
}  // namespace birch
