// Portable-path golden tests: this binary recompiles the kernel
// WITHOUT BIRCH_KERNEL_AVX2, so on any machine — including one whose
// CPU has AVX2, where the regular binaries always dispatch to the SIMD
// lane — these assertions pin the portable column primitives to the
// scalar oracle. Kernel-level subset of kernel_test.cc (no tree /
// Phase-3 / Phase-4 here: only the kernel TU and the CF algebra are
// compiled in).
#include "birch/kernel/kernel.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "birch/metrics.h"
#include "util/math.h"
#include "util/random.h"

namespace birch {
namespace kernel {
namespace {

constexpr DistanceMetric kAllMetrics[] = {
    DistanceMetric::kD0, DistanceMetric::kD1, DistanceMetric::kD2,
    DistanceMetric::kD3, DistanceMetric::kD4};

CfVector RandomCf(Rng* rng, size_t dim, int points, double spread,
                  CfRepresentation rep = CfRepresentation::kClassic,
                  CfStorage storage = CfStorage::kF64) {
  CfVector cf(dim, rep, storage);
  std::vector<double> x(dim);
  for (int p = 0; p < points; ++p) {
    for (auto& v : x) v = rng->Uniform(-spread, spread);
    cf.AddPoint(x, /*weight=*/1.0 + rng->NextDouble());
  }
  return cf;
}

TEST(PortableKernelTest, Avx2LaneIsCompiledOut) {
  EXPECT_FALSE(Avx2Active());
}

TEST(PortableKernelTest, FillDistancesBitwiseEqualsScalarOracle) {
  Rng rng(7);
  for (size_t dim : {size_t{1}, size_t{2}, size_t{16}, size_t{64}}) {
    std::vector<CfVector> cfs;
    for (size_t i = 0; i < 33; ++i) {
      int points =
          (i % 3 == 0) ? 1 : static_cast<int>(1 + rng.UniformInt(20));
      cfs.push_back(RandomCf(&rng, dim, points, i % 2 == 0 ? 1.0 : 50.0));
    }
    CfVector query = RandomCf(&rng, dim, 5, 10.0);
    for (DistanceMetric metric : kAllMetrics) {
      CfBatch batch;
      batch.Init(dim, cfs.size(), CfBatch::Needs::For(metric));
      batch.Assign(cfs);
      Workspace ws;
      CfQuery q;
      q.Prepare(query, metric, &ws.query_centroid);
      FillDistances(batch, q, metric, &ws);
      for (size_t j = 0; j < cfs.size(); ++j) {
        EXPECT_EQ(ws.dist[j], Distance(metric, query, cfs[j]))
            << MetricName(metric) << " dim=" << dim << " j=" << j;
      }
    }
  }
}

TEST(PortableKernelTest, NearestEntryAndMergedStatsMatchOracle) {
  Rng rng(11);
  const size_t dim = 8;
  std::vector<CfVector> cfs;
  for (size_t i = 0; i < 40; ++i) {
    cfs.push_back(RandomCf(&rng, dim, 1 + static_cast<int>(i % 6), 10.0));
  }
  CfVector query = RandomCf(&rng, dim, 3, 10.0);
  for (DistanceMetric metric : kAllMetrics) {
    CfBatch batch;
    batch.Init(dim, cfs.size(), CfBatch::Needs::For(metric));
    batch.Assign(cfs);
    Workspace ws;
    CfQuery q;
    q.Prepare(query, metric, &ws.query_centroid);
    ScanResult r = NearestEntry(batch, q, metric, &ws);

    size_t best = static_cast<size_t>(-1);
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < cfs.size(); ++j) {
      double d = Distance(metric, query, cfs[j]);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    EXPECT_EQ(r.index, best) << MetricName(metric);
    EXPECT_EQ(r.distance, best_d) << MetricName(metric);
  }

  for (size_t i = 1; i < cfs.size(); ++i) {
    CfVector merged = CfVector::Merged(cfs[i - 1], cfs[i]);
    EXPECT_EQ(MergedDiameter(cfs[i - 1], cfs[i]), merged.Diameter());
    EXPECT_EQ(MergedRadius(cfs[i - 1], cfs[i]), merged.Radius());
  }
}

TEST(PortableKernelTest, BetulaFillDistancesBitwiseEqualsScalarOracle) {
  // BETULA portable leg: the same bitwise contract for the
  // mean/deviation representation, f64 and f32 storage.
  Rng rng(7);
  for (CfStorage storage : {CfStorage::kF64, CfStorage::kF32}) {
    for (size_t dim : {size_t{1}, size_t{2}, size_t{16}, size_t{64}}) {
      std::vector<CfVector> cfs;
      for (size_t i = 0; i < 33; ++i) {
        int points =
            (i % 3 == 0) ? 1 : static_cast<int>(1 + rng.UniformInt(20));
        cfs.push_back(RandomCf(&rng, dim, points, i % 2 == 0 ? 1.0 : 50.0,
                               CfRepresentation::kBetula, storage));
      }
      CfVector query = RandomCf(&rng, dim, 5, 10.0,
                                CfRepresentation::kBetula, storage);
      for (DistanceMetric metric : kAllMetrics) {
        CfBatch batch;
        batch.Init(dim, cfs.size(),
                   CfBatch::Needs::For(metric, CfRepresentation::kBetula));
        batch.Assign(cfs);
        Workspace ws;
        CfQuery q;
        q.Prepare(query, metric, &ws.query_centroid);
        FillDistances(batch, q, metric, &ws);
        for (size_t j = 0; j < cfs.size(); ++j) {
          EXPECT_EQ(ws.dist[j], Distance(metric, query, cfs[j]))
              << MetricName(metric) << " dim=" << dim << " j=" << j
              << " storage=" << CfStorageName(storage);
        }
      }
    }
  }
}

TEST(PortableKernelTest, BetulaMergedStatsMatchOracle) {
  Rng rng(17);
  const size_t dim = 8;
  for (CfStorage storage : {CfStorage::kF64, CfStorage::kF32}) {
    std::vector<CfVector> cfs;
    for (size_t i = 0; i < 20; ++i) {
      cfs.push_back(RandomCf(&rng, dim, 1 + static_cast<int>(i % 6), 10.0,
                             CfRepresentation::kBetula, storage));
    }
    for (size_t i = 1; i < cfs.size(); ++i) {
      CfVector merged = CfVector::Merged(cfs[i - 1], cfs[i]);
      EXPECT_EQ(MergedDiameter(cfs[i - 1], cfs[i]), merged.Diameter());
      EXPECT_EQ(MergedRadius(cfs[i - 1], cfs[i]), merged.Radius());
    }
  }
}

TEST(PortableKernelTest, CenterBatchMatchesScalarLoop) {
  Rng rng(29);
  const size_t dim = 5;
  std::vector<std::vector<double>> centers(7);
  for (auto& c : centers) {
    c.resize(dim);
    for (auto& v : c) v = rng.Uniform(-10.0, 10.0);
  }
  CenterBatch batch;
  batch.Assign(centers);
  Workspace ws;
  std::vector<double> p(dim);
  for (int trial = 0; trial < 50; ++trial) {
    for (auto& v : p) v = rng.Uniform(-12.0, 12.0);
    ScanResult r = batch.NearestSq(p, &ws);
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers.size(); ++c) {
      double d = SquaredDistance(p, centers[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    EXPECT_EQ(r.index, best) << "trial " << trial;
    EXPECT_EQ(r.distance, best_d) << "trial " << trial;
  }
}

}  // namespace
}  // namespace kernel
}  // namespace birch
