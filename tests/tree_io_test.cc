// CF-tree persistence tests: write/read round trips must reproduce the
// exact tree (summaries, leaf entries, structure), charge memory
// correctly, surface store failures, and Release must return every
// page.
#include "birch/tree_io.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "util/random.h"

namespace birch {
namespace {

std::unique_ptr<CfTree> BuildTree(MemoryTracker* mem, int n, uint64_t seed,
                                  size_t page = 512,
                                  CfRepresentation rep = CfRepresentation::kClassic,
                                  CfStorage storage = CfStorage::kF64) {
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = page;
  o.threshold = 0.4;
  o.cf = rep;
  o.cf_storage = storage;
  auto tree = std::make_unique<CfTree>(o, mem);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> p = {rng.Uniform(0, 40), rng.Uniform(0, 40)};
    tree->InsertPoint(p);
  }
  return tree;
}

TEST(TreeIoTest, RoundTripPreservesEverything) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 3000, 201);
  std::vector<CfVector> entries_before;
  tree->CollectLeafEntries(&entries_before);

  PageStore store(512);
  auto image_or = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image_or.ok()) << image_or.status().ToString();
  const TreeImage& image = image_or.value();
  EXPECT_EQ(image.node_count, tree->node_count());
  EXPECT_EQ(store.num_pages(), tree->node_count());

  MemoryTracker mem2;
  CfTreeOptions opts;  // runtime knobs; geometry comes from the image
  auto back_or = TreeIO::Read(image, &store, opts, &mem2);
  ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
  auto& back = back_or.value();

  EXPECT_EQ(back->node_count(), tree->node_count());
  EXPECT_EQ(back->leaf_entry_count(), tree->leaf_entry_count());
  EXPECT_EQ(back->height(), tree->height());
  EXPECT_DOUBLE_EQ(back->threshold(), tree->threshold());
  EXPECT_EQ(back->TreeSummary(), tree->TreeSummary());
  EXPECT_EQ(mem2.used(), back->node_count() * image.page_size);

  // The image records the leaf chain, so a reopened tree iterates its
  // leaf entries in exactly the original order — not just the same
  // multiset. (Splits append siblings at the end of the parent but link
  // them adjacently in the chain, so traversal order and chain order
  // genuinely diverge on a tree this size; checkpoint resume depends on
  // the chain order, it is Phase-3 input order.)
  std::vector<CfVector> entries_after;
  back->CollectLeafEntries(&entries_after);
  EXPECT_EQ(entries_after, entries_before);
  std::string why;
  EXPECT_TRUE(back->CheckInvariants(&why)) << why;
}

TEST(TreeIoTest, BetulaRoundTripPreservesEverything) {
  // The page format depends on the CF policies (f32 packs the vector
  // and scalar as floats); round trips must be exact for both storage
  // widths because f32 CFs are quantized after every mutation.
  for (CfStorage storage : {CfStorage::kF64, CfStorage::kF32}) {
    MemoryTracker mem;
    auto tree = BuildTree(&mem, 3000, 201, 512, CfRepresentation::kBetula,
                          storage);
    std::vector<CfVector> entries_before;
    tree->CollectLeafEntries(&entries_before);

    PageStore store(512);
    auto image_or = TreeIO::Write(*tree, &store);
    ASSERT_TRUE(image_or.ok()) << image_or.status().ToString();
    EXPECT_EQ(image_or.value().cf, CfRepresentation::kBetula);
    EXPECT_EQ(image_or.value().cf_storage, storage);

    MemoryTracker mem2;
    CfTreeOptions opts;
    opts.cf = CfRepresentation::kBetula;
    opts.cf_storage = storage;
    auto back_or = TreeIO::Read(image_or.value(), &store, opts, &mem2);
    ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
    std::vector<CfVector> entries_after;
    back_or.value()->CollectLeafEntries(&entries_after);
    EXPECT_EQ(entries_after, entries_before)
        << CfStorageName(storage);
    EXPECT_EQ(back_or.value()->TreeSummary(), tree->TreeSummary());
    std::string why;
    EXPECT_TRUE(back_or.value()->CheckInvariants(&why)) << why;
  }
}

TEST(TreeIoTest, RoundTripOverCompressedTieredStore) {
  // TreeIO never sees envelopes: a codec + hot-tier store underneath is
  // fully transparent, and the CF-page content should compress well —
  // the device holds the tree in far fewer stored bytes than raw.
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 3000, 201);
  std::vector<CfVector> entries_before;
  tree->CollectLeafEntries(&entries_before);

  PageStoreOptions opt;
  opt.page_size = 512;
  opt.codec = PageCodecKind::kDeltaRle;
  opt.hot_tier_bytes = 8 * 512;
  PageStore store(opt);
  auto image_or = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image_or.ok()) << image_or.status().ToString();
  EXPECT_LT(store.used_bytes(), store.num_pages() * opt.page_size)
      << "CF pages failed to compress at all";

  MemoryTracker mem2;
  CfTreeOptions opts;
  auto back_or = TreeIO::Read(image_or.value(), &store, opts, &mem2);
  ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
  std::vector<CfVector> entries_after;
  back_or.value()->CollectLeafEntries(&entries_after);
  EXPECT_EQ(entries_after, entries_before);
  EXPECT_EQ(back_or.value()->TreeSummary(), tree->TreeSummary());
  std::string why;
  EXPECT_TRUE(back_or.value()->CheckInvariants(&why)) << why;
  EXPECT_GT(store.io_stats().compressed_writes, 0u);
}

TEST(TreeIoTest, CfPolicyMismatchOnReadIsInvalidArgument) {
  // An image written under one CF representation/storage must refuse
  // to open under another: the pages would be silently misread as the
  // wrong statistics (classic SS vs BETULA S, doubles vs packed
  // floats).
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 500, 207, 512, CfRepresentation::kBetula,
                        CfStorage::kF32);
  PageStore store(512);
  auto image = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image.ok());

  MemoryTracker mem2;
  CfTreeOptions wrong_rep;
  wrong_rep.cf = CfRepresentation::kClassic;
  wrong_rep.cf_storage = CfStorage::kF32;
  auto r1 = TreeIO::Read(image.value(), &store, wrong_rep, &mem2);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  CfTreeOptions wrong_storage;
  wrong_storage.cf = CfRepresentation::kBetula;
  wrong_storage.cf_storage = CfStorage::kF64;
  auto r2 = TreeIO::Read(image.value(), &store, wrong_storage, &mem2);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  CfTreeOptions right;
  right.cf = CfRepresentation::kBetula;
  right.cf_storage = CfStorage::kF32;
  EXPECT_TRUE(TreeIO::Read(image.value(), &store, right, &mem2).ok());
}

TEST(TreeIoTest, ReopenedTreeAcceptsInserts) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 1000, 202);
  PageStore store(512);
  auto image = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image.ok());

  MemoryTracker mem2;
  auto back = TreeIO::Read(image.value(), &store, CfTreeOptions{}, &mem2);
  ASSERT_TRUE(back.ok());
  double n0 = back.value()->TreeSummary().n();
  Rng rng(203);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = {rng.Uniform(0, 40), rng.Uniform(0, 40)};
    back.value()->InsertPoint(p);
  }
  EXPECT_NEAR(back.value()->TreeSummary().n(), n0 + 500, 1e-6);
  std::string why;
  EXPECT_TRUE(back.value()->CheckInvariants(&why)) << why;
}

TEST(TreeIoTest, ReleaseFreesAllPages) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 2000, 204);
  PageStore store(512);
  auto image = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image.ok());
  EXPECT_GT(store.num_pages(), 0u);
  ASSERT_TRUE(TreeIO::Release(image.value(), &store).ok());
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(TreeIoTest, StoreCapacitySurfacesAsError) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 2000, 205);
  ASSERT_GT(tree->node_count(), 4u);
  PageStore tiny(512, 4 * 512);  // fewer pages than nodes
  auto image = TreeIO::Write(*tree, &tiny);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kOutOfDisk);
  // A failed Write must return every page it allocated: the partial
  // image is unreachable, so leaked pages would be lost capacity for
  // the life of the store.
  EXPECT_EQ(tiny.num_pages(), 0u);
}

TEST(TreeIoTest, SmallerStorePageRejected) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 100, 206, /*page=*/1024);
  PageStore store(512);  // smaller than the tree's page
  auto image = TreeIO::Write(*tree, &store);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kInvalidArgument);
}

TEST(TreeIoTest, CorruptRootRejected) {
  PageStore store(512);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> junk(512, 0x5a);
  ASSERT_TRUE(store.Write(id.value(), junk).ok());
  TreeImage image;
  image.root = id.value();
  image.dim = 2;
  image.page_size = 512;
  MemoryTracker mem;
  auto back = TreeIO::Read(image, &store, CfTreeOptions{}, &mem);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

// --- Crafted-page hardening: every structurally invalid page must
// surface as kCorruption, never as undefined behavior. ---

constexpr double kMagic = 5214.1996;  // TreeIO::kNodeMagic

PageId PutRawPage(PageStore* store, const std::vector<double>& buf) {
  auto id = store->Allocate();
  EXPECT_TRUE(id.ok());
  std::vector<uint8_t> page(buf.size() * sizeof(double));
  std::memcpy(page.data(), buf.data(), page.size());
  EXPECT_TRUE(store->Write(id.value(), page).ok());
  return id.value();
}

Status ReadCrafted(PageStore* store, PageId root) {
  TreeImage image;
  image.root = root;
  image.dim = 2;
  image.page_size = 512;
  MemoryTracker mem;
  auto back = TreeIO::Read(image, store, CfTreeOptions{}, &mem);
  return back.ok() ? Status::OK() : back.status();
}

TEST(TreeIoTest, ImpossibleEntryCountIsCorruption) {
  // Counts that are too large for the page, negative, non-integral, or
  // non-finite must all be rejected before any size_t cast.
  for (double count : {1e18, -3.0, 1.5,
                       std::numeric_limits<double>::quiet_NaN(),
                       std::numeric_limits<double>::infinity()}) {
    PageStore store(512);
    PageId root = PutRawPage(&store, {kMagic, 1.0, count, 1.0, 1.0, 2.0, 5.0});
    Status st = ReadCrafted(&store, root);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "count=" << count;
  }
}

TEST(TreeIoTest, OutOfRangeChildPageIdIsCorruption) {
  // Nonleaf entry layout: N, LS[0..2), SS, child. A child id outside
  // the exact-double range (2^53), negative, or fractional cannot name
  // a real page.
  for (double child : {9007199254740994.0 /* 2^53 + 2 */, -1.0, 0.5}) {
    PageStore store(512);
    PageId root =
        PutRawPage(&store, {kMagic, 0.0, 1.0, 1.0, 1.0, 2.0, 5.0, child});
    Status st = ReadCrafted(&store, root);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "child=" << child;
  }
}

TEST(TreeIoTest, CyclicChildReferenceIsCorruption) {
  PageStore store(512);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  // Nonleaf root whose only child is itself.
  std::vector<double> buf = {kMagic, 0.0, 1.0, 1.0, 1.0, 2.0, 5.0,
                             static_cast<double>(id.value())};
  std::vector<uint8_t> page(buf.size() * sizeof(double));
  std::memcpy(page.data(), buf.data(), page.size());
  ASSERT_TRUE(store.Write(id.value(), page).ok());
  Status st = ReadCrafted(&store, id.value());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(TreeIoTest, LeafChainMismatchIsCorruption) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 500, 207);
  PageStore store(512);
  auto image_or = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image_or.ok());
  TreeImage image = image_or.value();
  ASSERT_GE(image.leaf_chain.size(), 2u);
  // A chain that names the same leaf twice (dropping another) cannot
  // be the original iteration order.
  image.leaf_chain[1] = image.leaf_chain[0];
  MemoryTracker mem2;
  auto back = TreeIO::Read(image, &store, CfTreeOptions{}, &mem2);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(TreeIoTest, SingleLeafTree) {
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 3;
  o.page_size = 512;
  o.threshold = 1.0;
  CfTree tree(o, &mem);
  std::vector<double> p = {1, 2, 3};
  tree.InsertPoint(p);
  PageStore store(512);
  auto image = TreeIO::Write(tree, &store);
  ASSERT_TRUE(image.ok());
  MemoryTracker mem2;
  auto back = TreeIO::Read(image.value(), &store, CfTreeOptions{}, &mem2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->leaf_entry_count(), 1u);
  EXPECT_EQ(back.value()->TreeSummary(), tree.TreeSummary());
}

}  // namespace
}  // namespace birch
