// CF-tree persistence tests: write/read round trips must reproduce the
// exact tree (summaries, leaf entries, structure), charge memory
// correctly, surface store failures, and Release must return every
// page.
#include "birch/tree_io.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/random.h"

namespace birch {
namespace {

std::unique_ptr<CfTree> BuildTree(MemoryTracker* mem, int n, uint64_t seed,
                                  size_t page = 512) {
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = page;
  o.threshold = 0.4;
  auto tree = std::make_unique<CfTree>(o, mem);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> p = {rng.Uniform(0, 40), rng.Uniform(0, 40)};
    tree->InsertPoint(p);
  }
  return tree;
}

TEST(TreeIoTest, RoundTripPreservesEverything) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 3000, 201);
  std::vector<CfVector> entries_before;
  tree->CollectLeafEntries(&entries_before);

  PageStore store(512);
  auto image_or = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image_or.ok()) << image_or.status().ToString();
  const TreeImage& image = image_or.value();
  EXPECT_EQ(image.node_count, tree->node_count());
  EXPECT_EQ(store.num_pages(), tree->node_count());

  MemoryTracker mem2;
  CfTreeOptions opts;  // runtime knobs; geometry comes from the image
  auto back_or = TreeIO::Read(image, &store, opts, &mem2);
  ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
  auto& back = back_or.value();

  EXPECT_EQ(back->node_count(), tree->node_count());
  EXPECT_EQ(back->leaf_entry_count(), tree->leaf_entry_count());
  EXPECT_EQ(back->height(), tree->height());
  EXPECT_DOUBLE_EQ(back->threshold(), tree->threshold());
  EXPECT_EQ(back->TreeSummary(), tree->TreeSummary());
  EXPECT_EQ(mem2.used(), back->node_count() * image.page_size);

  // The leaf chain is regenerated in tree-traversal order, which need
  // not match the mutation-history order of the original chain: compare
  // the entry multisets, not the sequences.
  std::vector<CfVector> entries_after;
  back->CollectLeafEntries(&entries_after);
  ASSERT_EQ(entries_after.size(), entries_before.size());
  auto key = [](const CfVector& cf) {
    std::vector<double> k;
    cf.SerializeTo(&k);
    return k;
  };
  std::vector<std::vector<double>> before_keys, after_keys;
  for (const auto& e : entries_before) before_keys.push_back(key(e));
  for (const auto& e : entries_after) after_keys.push_back(key(e));
  std::sort(before_keys.begin(), before_keys.end());
  std::sort(after_keys.begin(), after_keys.end());
  EXPECT_EQ(before_keys, after_keys);
  std::string why;
  EXPECT_TRUE(back->CheckInvariants(&why)) << why;
}

TEST(TreeIoTest, ReopenedTreeAcceptsInserts) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 1000, 202);
  PageStore store(512);
  auto image = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image.ok());

  MemoryTracker mem2;
  auto back = TreeIO::Read(image.value(), &store, CfTreeOptions{}, &mem2);
  ASSERT_TRUE(back.ok());
  double n0 = back.value()->TreeSummary().n();
  Rng rng(203);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = {rng.Uniform(0, 40), rng.Uniform(0, 40)};
    back.value()->InsertPoint(p);
  }
  EXPECT_NEAR(back.value()->TreeSummary().n(), n0 + 500, 1e-6);
  std::string why;
  EXPECT_TRUE(back.value()->CheckInvariants(&why)) << why;
}

TEST(TreeIoTest, ReleaseFreesAllPages) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 2000, 204);
  PageStore store(512);
  auto image = TreeIO::Write(*tree, &store);
  ASSERT_TRUE(image.ok());
  EXPECT_GT(store.num_pages(), 0u);
  ASSERT_TRUE(TreeIO::Release(image.value(), &store).ok());
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(TreeIoTest, StoreCapacitySurfacesAsError) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 2000, 205);
  ASSERT_GT(tree->node_count(), 4u);
  PageStore tiny(512, 4 * 512);  // fewer pages than nodes
  auto image = TreeIO::Write(*tree, &tiny);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kOutOfDisk);
}

TEST(TreeIoTest, SmallerStorePageRejected) {
  MemoryTracker mem;
  auto tree = BuildTree(&mem, 100, 206, /*page=*/1024);
  PageStore store(512);  // smaller than the tree's page
  auto image = TreeIO::Write(*tree, &store);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kInvalidArgument);
}

TEST(TreeIoTest, CorruptRootRejected) {
  PageStore store(512);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> junk(512, 0x5a);
  ASSERT_TRUE(store.Write(id.value(), junk).ok());
  TreeImage image;
  image.root = id.value();
  image.dim = 2;
  image.page_size = 512;
  MemoryTracker mem;
  auto back = TreeIO::Read(image, &store, CfTreeOptions{}, &mem);
  EXPECT_FALSE(back.ok());
}

TEST(TreeIoTest, SingleLeafTree) {
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 3;
  o.page_size = 512;
  o.threshold = 1.0;
  CfTree tree(o, &mem);
  std::vector<double> p = {1, 2, 3};
  tree.InsertPoint(p);
  PageStore store(512);
  auto image = TreeIO::Write(tree, &store);
  ASSERT_TRUE(image.ok());
  MemoryTracker mem2;
  auto back = TreeIO::Read(image.value(), &store, CfTreeOptions{}, &mem2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->leaf_entry_count(), 1u);
  EXPECT_EQ(back.value()->TreeSummary(), tree.TreeSummary());
}

}  // namespace
}  // namespace birch
