// CF tree tests: insertion semantics (absorb / new entry / split /
// reject), structural invariants under random workloads, memory
// accounting, the leaf chain, merging refinement, and the Reducibility
// Theorem (rebuilding with a larger threshold never grows the tree).
#include "birch/cf_tree.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/memory_tracker.h"
#include "util/random.h"

namespace birch {
namespace {

CfTreeOptions SmallTreeOptions(double threshold = 0.5) {
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 256;  // small pages -> small B/L -> deep trees quickly
  o.threshold = threshold;
  return o;
}

std::vector<double> P(double x, double y) { return {x, y}; }

TEST(CfLayoutTest, CapacitiesDeriveFromPageSize) {
  CfLayout l{1024, 2};
  // CF = 4 doubles = 32 bytes; nonleaf entry = 40, leaf entry = 32.
  EXPECT_EQ(l.CfBytes(), 32u);
  EXPECT_EQ(l.NonleafEntryBytes(), 40u);
  size_t usable = 1024 - CfLayout::kNodeHeaderBytes;
  EXPECT_EQ(l.B(), usable / 40);
  EXPECT_EQ(l.L(), usable / 32);
}

TEST(CfLayoutTest, CapacityGrowsWithPageAndShrinksWithDim) {
  CfLayout small{256, 2}, big{4096, 2};
  EXPECT_GT(big.B(), small.B());
  CfLayout lowd{1024, 2}, highd{1024, 32};
  EXPECT_GT(lowd.L(), highd.L());
  // Always at least 2 so splits are possible.
  CfLayout tiny{64, 64};
  EXPECT_GE(tiny.B(), 2u);
  EXPECT_GE(tiny.L(), 2u);
}

TEST(CfTreeTest, FirstInsertCreatesEntry) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(), &mem);
  EXPECT_EQ(tree.InsertPoint(P(0, 0)), InsertOutcome::kNewEntry);
  EXPECT_EQ(tree.leaf_entry_count(), 1u);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(CfTreeTest, ClosePointAbsorbed) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(/*threshold=*/1.0), &mem);
  tree.InsertPoint(P(0, 0));
  EXPECT_EQ(tree.InsertPoint(P(0.1, 0.1)), InsertOutcome::kAbsorbed);
  EXPECT_EQ(tree.leaf_entry_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.TreeSummary().n(), 2.0);
}

TEST(CfTreeTest, FarPointCreatesNewEntry) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(/*threshold=*/1.0), &mem);
  tree.InsertPoint(P(0, 0));
  EXPECT_EQ(tree.InsertPoint(P(100, 100)), InsertOutcome::kNewEntry);
  EXPECT_EQ(tree.leaf_entry_count(), 2u);
}

TEST(CfTreeTest, ZeroThresholdMergesOnlyDuplicates) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(/*threshold=*/0.0), &mem);
  tree.InsertPoint(P(1, 1));
  EXPECT_EQ(tree.InsertPoint(P(1, 1)), InsertOutcome::kAbsorbed);
  EXPECT_EQ(tree.InsertPoint(P(1, 1.0001)), InsertOutcome::kNewEntry);
}

TEST(CfTreeTest, SplitGrowsTree) {
  MemoryTracker mem;
  CfTreeOptions o = SmallTreeOptions(0.0);
  CfTree tree(o, &mem);
  size_t l = tree.layout().L();
  // Distinct far-apart points: first L fit in the root leaf, the next
  // forces a split and a new root.
  for (size_t i = 0; i <= l; ++i) {
    tree.InsertPoint(P(10.0 * static_cast<double>(i), 0.0));
  }
  EXPECT_GE(tree.height(), 2u);
  EXPECT_EQ(tree.leaf_entry_count(), l + 1);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(CfTreeTest, RejectWithoutSplitLeavesTreeUntouched) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(0.0), &mem);
  size_t l = tree.layout().L();
  for (size_t i = 0; i < l; ++i) {
    tree.InsertPoint(P(10.0 * static_cast<double>(i), 0.0));
  }
  CfVector before = tree.TreeSummary();
  EXPECT_EQ(tree.InsertPoint(P(1e6, 1e6), 1.0, InsertMode::kNoSplit),
            InsertOutcome::kRejected);
  EXPECT_EQ(tree.leaf_entry_count(), l);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.TreeSummary(), before);
}

TEST(CfTreeTest, TreeSummaryCountsAllPoints) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(0.2), &mem);
  Rng rng(7);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 50), rng.Uniform(0, 50)));
  }
  EXPECT_NEAR(tree.TreeSummary().n(), n, 1e-6);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(CfTreeTest, LeafChainCoversAllEntries) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(0.1), &mem);
  Rng rng(8);
  for (int i = 0; i < 1500; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 30), rng.Uniform(0, 30)));
  }
  std::vector<CfVector> entries;
  tree.CollectLeafEntries(&entries);
  EXPECT_EQ(entries.size(), tree.leaf_entry_count());
  double total = 0.0;
  for (const auto& e : entries) total += e.n();
  EXPECT_NEAR(total, 1500.0, 1e-6);
}

TEST(CfTreeTest, MemoryAccountingTracksNodes) {
  MemoryTracker mem;
  CfTreeOptions o = SmallTreeOptions(0.0);
  {
    CfTree tree(o, &mem);
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
      tree.InsertPoint(P(rng.Uniform(0, 100), rng.Uniform(0, 100)));
    }
    EXPECT_EQ(mem.used(), tree.node_count() * o.page_size);
  }
  // Destructor releases everything.
  EXPECT_EQ(mem.used(), 0u);
}

TEST(CfTreeTest, OverBudgetDetected) {
  MemoryTracker mem(4 * 256);  // room for 4 pages
  CfTree tree(SmallTreeOptions(0.0), &mem);
  Rng rng(10);
  int i = 0;
  while (!tree.over_budget() && i < 100000) {
    tree.InsertPoint(P(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
    ++i;
  }
  EXPECT_TRUE(tree.over_budget());
  EXPECT_LT(i, 100000);
}

TEST(CfTreeTest, RebuildReducesLeafEntries) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(0.0), &mem);
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 20), rng.Uniform(0, 20)));
  }
  size_t before_entries = tree.leaf_entry_count();
  size_t before_nodes = tree.node_count();
  double n_before = tree.TreeSummary().n();

  tree.Rebuild(/*new_threshold=*/2.0);

  // Reducibility: larger threshold, no more entries/nodes than before,
  // same points summarized.
  EXPECT_LE(tree.leaf_entry_count(), before_entries);
  EXPECT_LE(tree.node_count(), before_nodes);
  EXPECT_NEAR(tree.TreeSummary().n(), n_before, 1e-6);
  EXPECT_DOUBLE_EQ(tree.threshold(), 2.0);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(CfTreeTest, RebuildExtractsLowWeightOutliers) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(0.5), &mem);
  // A dense blob of 500 duplicate-ish points plus 5 lone points.
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    tree.InsertPoint(P(rng.Gaussian(0, 0.05), rng.Gaussian(0, 0.05)));
  }
  for (int i = 0; i < 5; ++i) {
    tree.InsertPoint(P(1000.0 + 50.0 * i, -1000.0));
  }
  std::vector<CfVector> outliers;
  tree.Rebuild(/*new_threshold=*/1.0, /*outlier_n_threshold=*/2.0,
               &outliers);
  // The lone points (weight 1) fall below the threshold of 2 points.
  EXPECT_GE(outliers.size(), 5u);
  double outlier_points = 0.0;
  for (const auto& e : outliers) outlier_points += e.n();
  EXPECT_NEAR(tree.TreeSummary().n() + outlier_points, 505.0, 1e-6);
}

TEST(CfTreeTest, MergingRefinementCanBeDisabled) {
  MemoryTracker mem1, mem2;
  CfTreeOptions with = SmallTreeOptions(0.0);
  CfTreeOptions without = SmallTreeOptions(0.0);
  without.merging_refinement = false;
  CfTree t1(with, &mem1), t2(without, &mem2);
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    double x = rng.Uniform(0, 10), y = rng.Uniform(0, 10);
    t1.InsertPoint(P(x, y));
    t2.InsertPoint(P(x, y));
  }
  EXPECT_EQ(t2.stats().merge_refinements, 0u);
  std::string why;
  EXPECT_TRUE(t1.CheckInvariants(&why)) << why;
  EXPECT_TRUE(t2.CheckInvariants(&why)) << why;
  // Same data either way.
  EXPECT_NEAR(t1.TreeSummary().n(), t2.TreeSummary().n(), 1e-6);
}

TEST(CfTreeTest, MostCrowdedLeafMinMergePositive) {
  MemoryTracker mem;
  CfTree tree(SmallTreeOptions(0.0), &mem);
  Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    tree.InsertPoint(P(rng.Uniform(0, 5), rng.Uniform(0, 5)));
  }
  double dmin = tree.MostCrowdedLeafMinMerge();
  EXPECT_GT(dmin, 0.0);
  // Rebuilding with exactly dmin merges at least one pair.
  size_t before = tree.leaf_entry_count();
  tree.Rebuild(dmin);
  EXPECT_LT(tree.leaf_entry_count(), before);
}

// Parameterized structural stress: random workloads across page sizes,
// metrics and threshold kinds must always satisfy every invariant.
struct StressParam {
  size_t page_size;
  DistanceMetric metric;
  ThresholdKind kind;
  double threshold;
};

class CfTreeStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(CfTreeStressTest, InvariantsHoldUnderRandomInserts) {
  const StressParam& p = GetParam();
  MemoryTracker mem;
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = p.page_size;
  o.metric = p.metric;
  o.threshold_kind = p.kind;
  o.threshold = p.threshold;
  CfTree tree(o, &mem);
  Rng rng(100 + p.page_size);
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    tree.InsertPoint(P(rng.Gaussian(0, 5), rng.Gaussian(0, 5)));
  }
  std::string why;
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
  EXPECT_NEAR(tree.TreeSummary().n(), n, 1e-6);

  // Rebuild twice with growing thresholds; invariants must survive.
  double t1 = std::max(2.0 * p.threshold, 0.5);
  tree.Rebuild(t1);
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
  size_t entries_t1 = tree.leaf_entry_count();
  tree.Rebuild(2.0 * t1);
  ASSERT_TRUE(tree.CheckInvariants(&why)) << why;
  EXPECT_LE(tree.leaf_entry_count(), entries_t1);
  EXPECT_NEAR(tree.TreeSummary().n(), n, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CfTreeStressTest,
    ::testing::Values(
        StressParam{128, DistanceMetric::kD0, ThresholdKind::kDiameter, 0.0},
        StressParam{256, DistanceMetric::kD0, ThresholdKind::kDiameter, 0.3},
        StressParam{256, DistanceMetric::kD1, ThresholdKind::kDiameter, 0.3},
        StressParam{256, DistanceMetric::kD2, ThresholdKind::kDiameter, 0.3},
        StressParam{256, DistanceMetric::kD2, ThresholdKind::kRadius, 0.15},
        StressParam{256, DistanceMetric::kD3, ThresholdKind::kDiameter, 0.5},
        StressParam{256, DistanceMetric::kD4, ThresholdKind::kDiameter, 0.3},
        StressParam{1024, DistanceMetric::kD2, ThresholdKind::kDiameter, 0.3},
        StressParam{4096, DistanceMetric::kD2, ThresholdKind::kDiameter,
                    0.3}));

}  // namespace
}  // namespace birch
