// Golden-equivalence tests for the batched SoA distance kernels: the
// batch path must agree BITWISE with the scalar oracle (metrics.cc /
// cf_vector.cc) — same distances, same winners — across metrics D0-D4,
// both threshold kinds, a sweep of dimensionalities, and adversarial
// near-ties. End-to-end, a kBatch pipeline must reproduce a kScalar
// pipeline exactly (tree shape, stats, Phase-3/4 outputs).
#include "birch/kernel/kernel.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "birch/cf_tree.h"
#include "birch/global_cluster.h"
#include "birch/metrics.h"
#include "birch/refine.h"
#include "pagestore/memory_tracker.h"
#include "util/math.h"
#include "util/random.h"

namespace birch {
namespace kernel {
namespace {

constexpr DistanceMetric kAllMetrics[] = {
    DistanceMetric::kD0, DistanceMetric::kD1, DistanceMetric::kD2,
    DistanceMetric::kD3, DistanceMetric::kD4};

constexpr size_t kDims[] = {1, 2, 16, 64};

/// A CF of `points` random points in [-spread, spread]^dim. One-point
/// CFs (n == 1) exercise the zero-diameter / zero-SSD special cases.
CfVector RandomCf(Rng* rng, size_t dim, int points, double spread,
                  CfRepresentation rep = CfRepresentation::kClassic,
                  CfStorage storage = CfStorage::kF64) {
  CfVector cf(dim, rep, storage);
  std::vector<double> x(dim);
  for (int p = 0; p < points; ++p) {
    for (auto& v : x) v = rng->Uniform(-spread, spread);
    cf.AddPoint(x, /*weight=*/1.0 + rng->NextDouble());
  }
  return cf;
}

std::vector<CfVector> RandomCfs(Rng* rng, size_t dim, size_t count,
                                CfRepresentation rep = CfRepresentation::kClassic,
                                CfStorage storage = CfStorage::kF64) {
  std::vector<CfVector> cfs;
  cfs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Mix of single-point and multi-point CFs at different scales.
    int points = (i % 3 == 0) ? 1 : static_cast<int>(1 + rng->UniformInt(20));
    cfs.push_back(
        RandomCf(rng, dim, points, i % 2 == 0 ? 1.0 : 50.0, rep, storage));
  }
  return cfs;
}

constexpr CfStorage kBetulaStorages[] = {CfStorage::kF64, CfStorage::kF32};

TEST(CfBatchTest, FillDistancesBitwiseEqualsScalarOracle) {
  Rng rng(7);
  for (size_t dim : kDims) {
    auto cfs = RandomCfs(&rng, dim, 33);
    CfVector query = RandomCf(&rng, dim, 5, 10.0);
    for (DistanceMetric metric : kAllMetrics) {
      CfBatch batch;
      batch.Init(dim, cfs.size(), CfBatch::Needs::For(metric));
      batch.Assign(cfs);
      Workspace ws;
      CfQuery q;
      q.Prepare(query, metric, &ws.query_centroid);
      FillDistances(batch, q, metric, &ws);
      ASSERT_EQ(ws.dist.size(), cfs.size());
      for (size_t j = 0; j < cfs.size(); ++j) {
        double oracle = Distance(metric, query, cfs[j]);
        EXPECT_EQ(ws.dist[j], oracle)
            << MetricName(metric) << " dim=" << dim << " j=" << j;
      }
    }
  }
}

TEST(CfBatchTest, BetulaFillDistancesBitwiseEqualsScalarOracle) {
  // Same contract as the classic test, under the BETULA representation
  // (f64 and f32 storage): the batch kernel must agree BITWISE with
  // the scalar oracle for every metric.
  Rng rng(7);
  for (CfStorage storage : kBetulaStorages) {
    for (size_t dim : kDims) {
      auto cfs =
          RandomCfs(&rng, dim, 33, CfRepresentation::kBetula, storage);
      CfVector query =
          RandomCf(&rng, dim, 5, 10.0, CfRepresentation::kBetula, storage);
      for (DistanceMetric metric : kAllMetrics) {
        CfBatch batch;
        batch.Init(dim, cfs.size(),
                   CfBatch::Needs::For(metric, CfRepresentation::kBetula));
        batch.Assign(cfs);
        Workspace ws;
        CfQuery q;
        q.Prepare(query, metric, &ws.query_centroid);
        FillDistances(batch, q, metric, &ws);
        ASSERT_EQ(ws.dist.size(), cfs.size());
        for (size_t j = 0; j < cfs.size(); ++j) {
          double oracle = Distance(metric, query, cfs[j]);
          EXPECT_EQ(ws.dist[j], oracle)
              << MetricName(metric) << " dim=" << dim << " j=" << j
              << " storage=" << CfStorageName(storage);
        }
      }
    }
  }
}

TEST(CfBatchTest, BetulaNearestEntryMatchesScalarArgmin) {
  Rng rng(11);
  for (CfStorage storage : kBetulaStorages) {
    for (size_t dim : {size_t{2}, size_t{16}}) {
      auto cfs =
          RandomCfs(&rng, dim, 40, CfRepresentation::kBetula, storage);
      CfVector query =
          RandomCf(&rng, dim, 3, 10.0, CfRepresentation::kBetula, storage);
      std::vector<uint8_t> active(cfs.size(), 1);
      active[3] = active[17] = 0;
      const size_t exclude = 8;
      for (DistanceMetric metric : kAllMetrics) {
        CfBatch batch;
        batch.Init(dim, cfs.size(),
                   CfBatch::Needs::For(metric, CfRepresentation::kBetula));
        batch.Assign(cfs);
        Workspace ws;
        CfQuery q;
        q.Prepare(query, metric, &ws.query_centroid);
        ScanResult r =
            NearestEntry(batch, q, metric, &ws, active.data(), exclude);

        size_t best = static_cast<size_t>(-1);
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t j = 0; j < cfs.size(); ++j) {
          if (j == exclude || !active[j]) continue;
          double d = Distance(metric, query, cfs[j]);
          if (d < best_d) {
            best_d = d;
            best = j;
          }
        }
        EXPECT_EQ(r.index, best) << MetricName(metric) << " dim=" << dim;
        EXPECT_EQ(r.distance, best_d)
            << MetricName(metric) << " dim=" << dim
            << " storage=" << CfStorageName(storage);
      }
    }
  }
}

TEST(CfBatchTest, NearestEntryMatchesScalarArgmin) {
  Rng rng(11);
  for (size_t dim : {size_t{2}, size_t{16}}) {
    auto cfs = RandomCfs(&rng, dim, 40);
    CfVector query = RandomCf(&rng, dim, 3, 10.0);
    std::vector<uint8_t> active(cfs.size(), 1);
    active[3] = active[17] = 0;
    const size_t exclude = 8;
    for (DistanceMetric metric : kAllMetrics) {
      CfBatch batch;
      batch.Init(dim, cfs.size(), CfBatch::Needs::For(metric));
      batch.Assign(cfs);
      Workspace ws;
      CfQuery q;
      q.Prepare(query, metric, &ws.query_centroid);
      ScanResult r =
          NearestEntry(batch, q, metric, &ws, active.data(), exclude);

      size_t best = static_cast<size_t>(-1);
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < cfs.size(); ++j) {
        if (j == exclude || !active[j]) continue;
        double d = Distance(metric, query, cfs[j]);
        if (d < best_d) {
          best_d = d;
          best = j;
        }
      }
      EXPECT_EQ(r.index, best) << MetricName(metric) << " dim=" << dim;
      EXPECT_EQ(r.distance, best_d) << MetricName(metric) << " dim=" << dim;
    }
  }
}

TEST(CfBatchTest, ExactTiesAreFirstWins) {
  // Several bitwise-identical candidates: the scalar loop's strict `<`
  // keeps the first, so the batch scan must return the lowest index.
  Rng rng(13);
  CfVector proto = RandomCf(&rng, 4, 6, 5.0);
  std::vector<CfVector> cfs = {proto, proto, proto, proto};
  CfVector query = RandomCf(&rng, 4, 2, 5.0);
  for (DistanceMetric metric : kAllMetrics) {
    CfBatch batch;
    batch.Init(4, cfs.size(), CfBatch::Needs::For(metric));
    batch.Assign(cfs);
    Workspace ws;
    CfQuery q;
    q.Prepare(query, metric, &ws.query_centroid);
    ScanResult r = NearestEntry(batch, q, metric, &ws);
    EXPECT_EQ(r.index, 0u) << MetricName(metric);

    // With index 0 masked out, the next identical candidate wins.
    std::vector<uint8_t> active(cfs.size(), 1);
    active[0] = 0;
    ScanResult r2 = NearestEntry(batch, q, metric, &ws, active.data());
    EXPECT_EQ(r2.index, 1u) << MetricName(metric);
    EXPECT_EQ(r2.distance, r.distance) << MetricName(metric);
  }
}

TEST(CfBatchTest, NearTiesResolveLikeScalar) {
  // Two candidates whose distances differ only in the last few ulps:
  // whatever the scalar oracle ranks, the batch scan must rank the
  // same way (this is where an FMA or a reordered sum would diverge).
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    CfVector a = RandomCf(&rng, 8, 7, 3.0);
    CfVector b = a;
    // Nudge one accumulated point by one representable step.
    std::vector<double> eps(8, 0.0);
    eps[trial % 8] = 1e-15;
    b.AddPoint(eps, 1e-12);
    std::vector<CfVector> cfs = {a, b};
    CfVector query = RandomCf(&rng, 8, 4, 3.0);
    for (DistanceMetric metric : kAllMetrics) {
      CfBatch batch;
      batch.Init(8, cfs.size(), CfBatch::Needs::For(metric));
      batch.Assign(cfs);
      Workspace ws;
      CfQuery q;
      q.Prepare(query, metric, &ws.query_centroid);
      ScanResult r = NearestEntry(batch, q, metric, &ws);
      double d0 = Distance(metric, query, a);
      double d1 = Distance(metric, query, b);
      size_t want = d1 < d0 ? 1u : 0u;  // strict <: ties keep index 0
      EXPECT_EQ(r.index, want) << MetricName(metric) << " trial=" << trial;
    }
  }
}

TEST(CfBatchTest, AppendAndUpdateMatchFreshAssign) {
  Rng rng(19);
  const size_t dim = 6;
  auto cfs = RandomCfs(&rng, dim, 10);
  CfVector query = RandomCf(&rng, dim, 3, 5.0);
  for (DistanceMetric metric : kAllMetrics) {
    CfBatch incremental;
    incremental.Init(dim, 16, CfBatch::Needs::For(metric));
    incremental.Assign(cfs);

    // Mutate a row in place (the absorb path) and append a new entry.
    cfs[4].Add(RandomCf(&rng, dim, 3, 5.0));
    incremental.Update(4, cfs[4]);
    cfs.push_back(RandomCf(&rng, dim, 2, 5.0));
    incremental.Append(cfs.back());
    ASSERT_EQ(incremental.size(), cfs.size());

    CfBatch fresh;
    fresh.Init(dim, 16, CfBatch::Needs::For(metric));
    fresh.Assign(cfs);

    Workspace wsi, wsf;
    CfQuery q;
    q.Prepare(query, metric, &wsi.query_centroid);
    CfQuery qf;
    qf.Prepare(query, metric, &wsf.query_centroid);
    FillDistances(incremental, q, metric, &wsi);
    FillDistances(fresh, qf, metric, &wsf);
    for (size_t j = 0; j < cfs.size(); ++j) {
      EXPECT_EQ(wsi.dist[j], wsf.dist[j])
          << MetricName(metric) << " j=" << j;
    }
  }
}

TEST(MergedStatTest, MergedDiameterAndRadiusMatchMergedCf) {
  Rng rng(23);
  for (size_t dim : kDims) {
    for (int trial = 0; trial < 25; ++trial) {
      CfVector a = RandomCf(&rng, dim, 1 + static_cast<int>(trial % 4), 8.0);
      CfVector b = RandomCf(&rng, dim, 1 + static_cast<int>(trial % 7), 8.0);
      CfVector merged = CfVector::Merged(a, b);
      EXPECT_EQ(MergedDiameter(a, b), merged.Diameter())
          << "dim=" << dim << " trial=" << trial;
      EXPECT_EQ(MergedRadius(a, b), merged.Radius())
          << "dim=" << dim << " trial=" << trial;
    }
  }
}

TEST(MergedStatTest, BetulaMergedStatsMatchMergedCf) {
  Rng rng(23);
  for (CfStorage storage : kBetulaStorages) {
    for (size_t dim : kDims) {
      for (int trial = 0; trial < 25; ++trial) {
        CfVector a = RandomCf(&rng, dim, 1 + static_cast<int>(trial % 4),
                              8.0, CfRepresentation::kBetula, storage);
        CfVector b = RandomCf(&rng, dim, 1 + static_cast<int>(trial % 7),
                              8.0, CfRepresentation::kBetula, storage);
        CfVector merged = CfVector::Merged(a, b);
        EXPECT_EQ(MergedDiameter(a, b), merged.Diameter())
            << "dim=" << dim << " trial=" << trial
            << " storage=" << CfStorageName(storage);
        EXPECT_EQ(MergedRadius(a, b), merged.Radius())
            << "dim=" << dim << " trial=" << trial
            << " storage=" << CfStorageName(storage);
      }
    }
  }
}

TEST(CenterBatchTest, NearestSqMatchesScalarLoop) {
  Rng rng(29);
  for (size_t dim : kDims) {
    std::vector<std::vector<double>> centers(9);
    for (auto& c : centers) {
      c.resize(dim);
      for (auto& v : c) v = rng.Uniform(-10.0, 10.0);
    }
    CenterBatch batch;
    batch.Assign(centers);
    Workspace ws;
    std::vector<double> p(dim);
    for (int trial = 0; trial < 40; ++trial) {
      for (auto& v : p) v = rng.Uniform(-12.0, 12.0);
      ScanResult r = batch.NearestSq(p, &ws);

      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centers.size(); ++c) {
        double d = SquaredDistance(p, centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      EXPECT_EQ(r.index, best) << "dim=" << dim << " trial=" << trial;
      EXPECT_EQ(r.distance, best_d) << "dim=" << dim << " trial=" << trial;
    }
  }
}

/// Inserts the same random stream into a kScalar tree and a kBatch
/// tree; every outcome, stat, and leaf CF must match exactly.
void TreeEquivalenceCase(DistanceMetric metric, ThresholdKind kind,
                         CfRepresentation rep = CfRepresentation::kClassic,
                         CfStorage storage = CfStorage::kF64) {
  CfTreeOptions base;
  base.dim = 2;
  base.page_size = 256;  // small fanout: plenty of splits + refinements
  base.threshold = 0.4;
  base.metric = metric;
  base.threshold_kind = kind;
  base.cf = rep;
  base.cf_storage = storage;

  CfTreeOptions scalar = base;
  scalar.kernel = KernelKind::kScalar;
  CfTreeOptions batch = base;
  batch.kernel = KernelKind::kBatch;

  MemoryTracker mem_s, mem_b;
  CfTree tree_s(scalar, &mem_s);
  CfTree tree_b(batch, &mem_b);

  Rng rng(31);
  std::vector<double> p(2);
  for (int i = 0; i < 600; ++i) {
    // Clustered with occasional far-flung singletons.
    double cx = static_cast<double>(rng.UniformInt(5)) * 4.0;
    p[0] = cx + rng.Uniform(-0.5, 0.5);
    p[1] = rng.Uniform(-0.5, 0.5);
    if (i % 97 == 0) p[0] += 100.0;
    InsertOutcome a = tree_s.InsertPoint(p);
    InsertOutcome b = tree_b.InsertPoint(p);
    ASSERT_EQ(a, b) << MetricName(metric) << " i=" << i;
  }

  EXPECT_EQ(tree_s.leaf_entry_count(), tree_b.leaf_entry_count());
  EXPECT_EQ(tree_s.node_count(), tree_b.node_count());
  EXPECT_EQ(tree_s.height(), tree_b.height());
  const CfTreeStats& ss = tree_s.stats();
  const CfTreeStats& sb = tree_b.stats();
  EXPECT_EQ(ss.absorbed, sb.absorbed);
  EXPECT_EQ(ss.new_entries, sb.new_entries);
  EXPECT_EQ(ss.leaf_splits, sb.leaf_splits);
  EXPECT_EQ(ss.nonleaf_splits, sb.nonleaf_splits);
  EXPECT_EQ(ss.merge_refinements, sb.merge_refinements);
  EXPECT_EQ(ss.distance_comparisons, sb.distance_comparisons);

  std::vector<CfVector> leaves_s, leaves_b;
  tree_s.CollectLeafEntries(&leaves_s);
  tree_b.CollectLeafEntries(&leaves_b);
  ASSERT_EQ(leaves_s.size(), leaves_b.size());
  for (size_t i = 0; i < leaves_s.size(); ++i) {
    EXPECT_EQ(leaves_s[i], leaves_b[i]) << "leaf " << i;
  }
}

TEST(TreeKernelEquivalenceTest, AllMetricsDiameterThreshold) {
  for (DistanceMetric metric : kAllMetrics) {
    TreeEquivalenceCase(metric, ThresholdKind::kDiameter);
  }
}

TEST(TreeKernelEquivalenceTest, AllMetricsRadiusThreshold) {
  for (DistanceMetric metric : kAllMetrics) {
    TreeEquivalenceCase(metric, ThresholdKind::kRadius);
  }
}

TEST(TreeKernelEquivalenceTest, BetulaAllMetricsDiameterThreshold) {
  for (DistanceMetric metric : kAllMetrics) {
    TreeEquivalenceCase(metric, ThresholdKind::kDiameter,
                        CfRepresentation::kBetula);
  }
}

TEST(TreeKernelEquivalenceTest, BetulaAllMetricsRadiusThreshold) {
  for (DistanceMetric metric : kAllMetrics) {
    TreeEquivalenceCase(metric, ThresholdKind::kRadius,
                        CfRepresentation::kBetula);
  }
}

TEST(TreeKernelEquivalenceTest, BetulaF32AllMetricsDiameterThreshold) {
  // The f32 storage mode quantizes after every CF mutation; scalar and
  // batch must still agree bitwise on the quantized values.
  for (DistanceMetric metric : kAllMetrics) {
    TreeEquivalenceCase(metric, ThresholdKind::kDiameter,
                        CfRepresentation::kBetula, CfStorage::kF32);
  }
}

GlobalClusterOptions GlobalOpts(GlobalAlgorithm algorithm,
                                KernelKind kernel) {
  GlobalClusterOptions g;
  g.k = 5;
  g.algorithm = algorithm;
  g.seed = 99;
  g.kernel = kernel;
  return g;
}

TEST(GlobalKernelEquivalenceTest, HierarchicalScalarVsBatch) {
  Rng rng(37);
  auto cfs = RandomCfs(&rng, 3, 80);
  for (DistanceMetric metric : kAllMetrics) {
    auto s = GlobalOpts(GlobalAlgorithm::kHierarchical, KernelKind::kScalar);
    auto b = GlobalOpts(GlobalAlgorithm::kHierarchical, KernelKind::kBatch);
    s.metric = b.metric = metric;
    auto rs = GlobalCluster(cfs, s);
    auto rb = GlobalCluster(cfs, b);
    ASSERT_TRUE(rs.ok() && rb.ok()) << MetricName(metric);
    EXPECT_EQ(rs.value().assignment, rb.value().assignment)
        << MetricName(metric);
    ASSERT_EQ(rs.value().clusters.size(), rb.value().clusters.size());
    for (size_t c = 0; c < rs.value().clusters.size(); ++c) {
      EXPECT_EQ(rs.value().clusters[c], rb.value().clusters[c])
          << MetricName(metric) << " cluster " << c;
    }
  }
}

TEST(GlobalKernelEquivalenceTest, KMeansScalarVsBatch) {
  Rng rng(41);
  auto cfs = RandomCfs(&rng, 3, 120);
  auto rs = GlobalCluster(
      cfs, GlobalOpts(GlobalAlgorithm::kKMeans, KernelKind::kScalar));
  auto rb = GlobalCluster(
      cfs, GlobalOpts(GlobalAlgorithm::kKMeans, KernelKind::kBatch));
  ASSERT_TRUE(rs.ok() && rb.ok());
  EXPECT_EQ(rs.value().assignment, rb.value().assignment);
  ASSERT_EQ(rs.value().clusters.size(), rb.value().clusters.size());
  for (size_t c = 0; c < rs.value().clusters.size(); ++c) {
    EXPECT_EQ(rs.value().clusters[c], rb.value().clusters[c]);
  }
}

TEST(GlobalKernelEquivalenceTest, BetulaHierarchicalScalarVsBatch) {
  Rng rng(37);
  auto cfs = RandomCfs(&rng, 3, 80, CfRepresentation::kBetula);
  for (DistanceMetric metric : kAllMetrics) {
    auto s = GlobalOpts(GlobalAlgorithm::kHierarchical, KernelKind::kScalar);
    auto b = GlobalOpts(GlobalAlgorithm::kHierarchical, KernelKind::kBatch);
    s.metric = b.metric = metric;
    auto rs = GlobalCluster(cfs, s);
    auto rb = GlobalCluster(cfs, b);
    ASSERT_TRUE(rs.ok() && rb.ok()) << MetricName(metric);
    EXPECT_EQ(rs.value().assignment, rb.value().assignment)
        << MetricName(metric);
    ASSERT_EQ(rs.value().clusters.size(), rb.value().clusters.size());
    for (size_t c = 0; c < rs.value().clusters.size(); ++c) {
      EXPECT_EQ(rs.value().clusters[c], rb.value().clusters[c])
          << MetricName(metric) << " cluster " << c;
    }
  }
}

TEST(GlobalKernelEquivalenceTest, BetulaKMeansScalarVsBatch) {
  Rng rng(41);
  auto cfs = RandomCfs(&rng, 3, 120, CfRepresentation::kBetula);
  auto rs = GlobalCluster(
      cfs, GlobalOpts(GlobalAlgorithm::kKMeans, KernelKind::kScalar));
  auto rb = GlobalCluster(
      cfs, GlobalOpts(GlobalAlgorithm::kKMeans, KernelKind::kBatch));
  ASSERT_TRUE(rs.ok() && rb.ok());
  EXPECT_EQ(rs.value().assignment, rb.value().assignment);
  ASSERT_EQ(rs.value().clusters.size(), rb.value().clusters.size());
  for (size_t c = 0; c < rs.value().clusters.size(); ++c) {
    EXPECT_EQ(rs.value().clusters[c], rb.value().clusters[c]);
  }
}

TEST(RefineKernelEquivalenceTest, BetulaScalarVsBatch) {
  Rng rng(43);
  Dataset data(2);
  std::vector<double> p(2);
  for (int i = 0; i < 400; ++i) {
    double cx = static_cast<double>(rng.UniformInt(3)) * 10.0;
    p[0] = cx + rng.Gaussian(0.0, 1.0);
    p[1] = rng.Gaussian(0.0, 1.0);
    data.Append(p);
  }
  std::vector<CfVector> seeds;
  for (double cx : {0.5, 9.0, 21.0}) {
    std::vector<double> s = {cx, 0.3};
    seeds.push_back(CfVector::FromPoint(s, 1.0, CfRepresentation::kBetula));
  }
  RefineOptions s;
  s.passes = 4;
  s.outlier_distance = 8.0;
  s.kernel = KernelKind::kScalar;
  RefineOptions b = s;
  b.kernel = KernelKind::kBatch;
  auto rs = RefineClusters(data, seeds, s);
  auto rb = RefineClusters(data, seeds, b);
  ASSERT_TRUE(rs.ok() && rb.ok());
  EXPECT_EQ(rs.value().labels, rb.value().labels);
  ASSERT_EQ(rs.value().clusters.size(), rb.value().clusters.size());
  for (size_t c = 0; c < rs.value().clusters.size(); ++c) {
    EXPECT_EQ(rs.value().clusters[c], rb.value().clusters[c]);
    EXPECT_EQ(rs.value().clusters[c].rep(), CfRepresentation::kBetula);
  }
}

TEST(RefineKernelEquivalenceTest, ScalarVsBatch) {
  Rng rng(43);
  Dataset data(2);
  std::vector<double> p(2);
  for (int i = 0; i < 400; ++i) {
    double cx = static_cast<double>(rng.UniformInt(3)) * 10.0;
    p[0] = cx + rng.Gaussian(0.0, 1.0);
    p[1] = rng.Gaussian(0.0, 1.0);
    data.Append(p);
  }
  std::vector<CfVector> seeds;
  for (double cx : {0.5, 9.0, 21.0}) {
    std::vector<double> s = {cx, 0.3};
    seeds.push_back(CfVector::FromPoint(s));
  }
  RefineOptions s;
  s.passes = 4;
  s.outlier_distance = 8.0;
  s.kernel = KernelKind::kScalar;
  RefineOptions b = s;
  b.kernel = KernelKind::kBatch;
  auto rs = RefineClusters(data, seeds, s);
  auto rb = RefineClusters(data, seeds, b);
  ASSERT_TRUE(rs.ok() && rb.ok());
  EXPECT_EQ(rs.value().labels, rb.value().labels);
  EXPECT_EQ(rs.value().passes_run, rb.value().passes_run);
  EXPECT_EQ(rs.value().points_discarded, rb.value().points_discarded);
  ASSERT_EQ(rs.value().clusters.size(), rb.value().clusters.size());
  for (size_t c = 0; c < rs.value().clusters.size(); ++c) {
    EXPECT_EQ(rs.value().clusters[c], rb.value().clusters[c]);
  }
}

TEST(KernelInfoTest, NamesAndDispatchAreSane) {
  EXPECT_STREQ(KernelName(KernelKind::kScalar), "scalar");
  EXPECT_STREQ(KernelName(KernelKind::kBatch), "batch");
  EXPECT_STREQ(KernelName(KernelKind::kBatchFast), "batch-fast");
  EXPECT_FALSE(IsBatchKernel(KernelKind::kScalar));
  EXPECT_TRUE(IsBatchKernel(KernelKind::kBatch));
  EXPECT_TRUE(IsBatchKernel(KernelKind::kBatchFast));
  // Whichever implementation the runtime dispatch picked, it must have
  // produced oracle-identical results above; just record the lanes.
  (void)Avx2Active();
  (void)FmaActive();
}

// kBatchFast routes only the CF-tree descent scans through the
// FMA/AVX-512 leg, so near-tie descent choices may differ from the
// correctly-rounded kBatch oracle. The A/B contract is therefore mass
// conservation, tree invariants, and identical absorb decisions'
// arithmetic — not bitwise tree equality. When no FMA leg is active
// (unsupported CPU or build), kBatchFast must decay to kBatch exactly.
TEST(TreeKernelEquivalenceTest, BatchFastConservesMassVsBatch) {
  CfTreeOptions base;
  base.dim = 2;
  base.page_size = 256;
  base.threshold = 0.4;

  CfTreeOptions batch = base;
  batch.kernel = KernelKind::kBatch;
  CfTreeOptions fast = base;
  fast.kernel = KernelKind::kBatchFast;

  MemoryTracker mem_b, mem_f;
  CfTree tree_b(batch, &mem_b);
  CfTree tree_f(fast, &mem_f);

  Rng rng(47);
  std::vector<double> p(2);
  for (int i = 0; i < 600; ++i) {
    double cx = static_cast<double>(rng.UniformInt(5)) * 4.0;
    p[0] = cx + rng.Uniform(-0.5, 0.5);
    p[1] = rng.Uniform(-0.5, 0.5);
    if (i % 97 == 0) p[0] += 100.0;
    (void)tree_b.InsertPoint(p);
    (void)tree_f.InsertPoint(p);
  }

  CfVector sum_b = tree_b.TreeSummary();
  CfVector sum_f = tree_f.TreeSummary();
  // Every point lands exactly once regardless of descent choices.
  EXPECT_EQ(sum_f.n(), sum_b.n());
  for (size_t t = 0; t < 2; ++t) {
    EXPECT_NEAR(sum_f.ls()[t], sum_b.ls()[t],
                1e-9 * (1.0 + std::fabs(sum_b.ls()[t])));
  }
  EXPECT_NEAR(sum_f.ss(), sum_b.ss(), 1e-9 * (1.0 + sum_b.ss()));
  std::string why;
  EXPECT_TRUE(tree_f.CheckInvariants(&why)) << why;

  if (!FmaActive()) {
    // No FMA leg: the fast dispatch is the same Ops table, so the
    // trees must be bitwise identical.
    EXPECT_EQ(tree_b.leaf_entry_count(), tree_f.leaf_entry_count());
    EXPECT_EQ(tree_b.node_count(), tree_f.node_count());
    std::vector<CfVector> leaves_b, leaves_f;
    tree_b.CollectLeafEntries(&leaves_b);
    tree_f.CollectLeafEntries(&leaves_f);
    ASSERT_EQ(leaves_b.size(), leaves_f.size());
    for (size_t i = 0; i < leaves_b.size(); ++i) {
      EXPECT_EQ(leaves_b[i], leaves_f[i]) << "leaf " << i;
    }
  }
}

}  // namespace
}  // namespace kernel
}  // namespace birch
