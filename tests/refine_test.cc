// Phase-4 tests: redistribution must assign points to the nearest
// seed, move centroids toward the true centers, discard far outliers
// when asked, and converge (stop when stable).
#include "birch/refine.h"

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace birch {
namespace {

Dataset TwoBlobs(uint64_t seed, int n_per, double cx0, double cx1) {
  Dataset data(2);
  Rng rng(seed);
  for (int i = 0; i < n_per; ++i) {
    std::vector<double> p = {rng.Gaussian(cx0, 1.0), rng.Gaussian(0, 1.0)};
    data.Append(p);
  }
  for (int i = 0; i < n_per; ++i) {
    std::vector<double> p = {rng.Gaussian(cx1, 1.0), rng.Gaussian(0, 1.0)};
    data.Append(p);
  }
  return data;
}

std::vector<CfVector> SeedsAt(std::vector<std::vector<double>> centers) {
  std::vector<CfVector> seeds;
  for (auto& c : centers) seeds.push_back(CfVector::FromPoint(c));
  return seeds;
}

TEST(RefineTest, AssignsToNearestSeed) {
  Dataset data = TwoBlobs(51, 200, 0.0, 20.0);
  auto seeds = SeedsAt({{0.0, 0.0}, {20.0, 0.0}});
  RefineOptions o;
  auto result = RefineClusters(data, seeds, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  for (int i = 0; i < 200; ++i) EXPECT_EQ(r.labels[static_cast<size_t>(i)], 0);
  for (int i = 200; i < 400; ++i) {
    EXPECT_EQ(r.labels[static_cast<size_t>(i)], 1);
  }
  EXPECT_NEAR(r.clusters[0].n(), 200.0, 1e-9);
  EXPECT_NEAR(r.clusters[1].n(), 200.0, 1e-9);
}

TEST(RefineTest, CentroidsMoveTowardTruthAcrossPasses) {
  Dataset data = TwoBlobs(52, 500, 0.0, 12.0);
  // Seeds deliberately offset from the true centers.
  auto seeds = SeedsAt({{3.0, 2.0}, {9.0, -2.0}});
  RefineOptions o;
  o.passes = 10;
  auto result = RefineClusters(data, seeds, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  // After refinement the centroids sit near (0,0) and (12,0).
  auto c0 = r.clusters[0].Centroid();
  auto c1 = r.clusters[1].Centroid();
  if (c0[0] > c1[0]) std::swap(c0, c1);
  EXPECT_NEAR(c0[0], 0.0, 0.3);
  EXPECT_NEAR(c1[0], 12.0, 0.3);
  EXPECT_LT(r.passes_run, 10);  // converged early
}

TEST(RefineTest, OutlierDiscard) {
  Dataset data(2);
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p = {rng.Gaussian(0, 0.5), rng.Gaussian(0, 0.5)};
    data.Append(p);
  }
  std::vector<double> far = {500.0, 500.0};
  data.Append(far);
  auto seeds = SeedsAt({{0.0, 0.0}});
  RefineOptions o;
  o.outlier_distance = 10.0;
  auto result = RefineClusters(data, seeds, o);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().labels.back(), -1);
  EXPECT_EQ(result.value().points_discarded, 1u);
  EXPECT_NEAR(result.value().clusters[0].n(), 100.0, 1e-9);
}

TEST(RefineTest, LabelPointsDoesNotMoveSeeds) {
  Dataset data = TwoBlobs(54, 50, 0.0, 10.0);
  auto seeds = SeedsAt({{0.0, 0.0}, {10.0, 0.0}});
  auto result = LabelPoints(data, seeds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().passes_run, 1);
  EXPECT_EQ(result.value().labels.size(), data.size());
}

TEST(RefineTest, WeightedPointsCountWithWeight) {
  Dataset data(1);
  std::vector<double> a = {0.0}, b = {10.0};
  data.AppendWeighted(a, 7.0);
  data.AppendWeighted(b, 3.0);
  auto seeds = SeedsAt({{0.0}, {10.0}});
  auto result = LabelPoints(data, seeds);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().clusters[0].n(), 7.0, 1e-9);
  EXPECT_NEAR(result.value().clusters[1].n(), 3.0, 1e-9);
}

TEST(RefineTest, InvalidInputsRejected) {
  Dataset data = TwoBlobs(55, 10, 0.0, 5.0);
  RefineOptions o;
  EXPECT_EQ(RefineClusters(data, {}, o).status().code(),
            StatusCode::kInvalidArgument);
  auto seeds = SeedsAt({{0.0, 0.0}});
  o.passes = 0;
  EXPECT_EQ(RefineClusters(data, seeds, o).status().code(),
            StatusCode::kInvalidArgument);
  // Dimension mismatch.
  std::vector<CfVector> bad = {CfVector::FromPoint(std::vector<double>{1.0})};
  RefineOptions o2;
  EXPECT_EQ(RefineClusters(data, bad, o2).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace birch
