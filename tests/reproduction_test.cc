// Reproduction-claim regression tests: the paper's qualitative results,
// pinned at test scale so a future change that silently breaks the
// reproduction fails CI. Each test names the claim it guards.
#include <gtest/gtest.h>

#include "birch/birch.h"
#include "datagen/paper_datasets.h"
#include "eval/matching.h"
#include "eval/quality.h"

namespace birch {
namespace {

BirchOptions Opts(int k, double t0 = 0.0) {
  BirchOptions o;
  o.dim = 2;
  o.k = k;
  o.resources.memory_bytes = 24 * 1024;
  o.resources.disk_bytes = 5 * 1024;
  o.resources.page_size = 512;
  o.tree.initial_threshold = t0;
  return o;
}

// Claim (Sec. 6.5): "as long as the initial threshold is not
// excessively high wrt. the dataset, an initial guess ... costs no
// quality" — and an excessive one does.
TEST(ReproductionTest, ExcessiveInitialThresholdCostsQuality) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 300);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  auto good = ClusterDataset(g.data, Opts(25, 0.0));
  auto mild = ClusterDataset(g.data, Opts(25, 1.0));
  auto excessive = ClusterDataset(g.data, Opts(25, 8.0));
  ASSERT_TRUE(good.ok() && mild.ok() && excessive.ok());

  MatchReport m_good = MatchClusters(g.actual, good.value().clusters);
  MatchReport m_mild = MatchClusters(g.actual, mild.value().clusters);
  MatchReport m_exc = MatchClusters(g.actual, excessive.value().clusters);
  EXPECT_EQ(m_good.matched, 25);
  EXPECT_EQ(m_mild.matched, 25);
  EXPECT_LT(m_exc.matched, 20);  // clusters merged irreversibly

  // A sane guess also saves rebuilds.
  EXPECT_LE(mild.value().phase1.rebuilds, good.value().phase1.rebuilds);
}

// Claim (Sec. 6.5): Phase 4 compensates for the coarser granularity of
// small pages / coarse trees — final quality is page-size independent.
TEST(ReproductionTest, Phase4CompensatesForPageSize) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 300);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  double d_small = 0, d_large = 0;
  for (size_t page : {256u, 2048u}) {
    BirchOptions o = Opts(25);
    o.resources.page_size = page;
    auto r = ClusterDataset(g.data, o);
    ASSERT_TRUE(r.ok());
    (page == 256u ? d_small : d_large) =
        WeightedAverageDiameter(r.value().clusters);
  }
  EXPECT_NEAR(d_small, d_large, 0.08 * std::max(d_small, d_large));
}

// Claim (Sec. 6.4/Table 4): quality D is within a few percent of the
// actual clusters' D on the base workload patterns.
TEST(ReproductionTest, QualityTracksActualAcrossPatterns) {
  for (auto ds :
       {PaperDataset::kDS1, PaperDataset::kDS2, PaperDataset::kDS3}) {
    auto gen = GeneratePaperDataset(ds, 25, 300);
    ASSERT_TRUE(gen.ok());
    const auto& g = gen.value();
    auto r = ClusterDataset(g.data, Opts(25));
    ASSERT_TRUE(r.ok());
    std::vector<CfVector> actual_cfs;
    for (const auto& a : g.actual) actual_cfs.push_back(a.cf);
    double d_actual = WeightedAverageDiameter(actual_cfs);
    double d_birch = WeightedAverageDiameter(r.value().clusters);
    EXPECT_LT(d_birch, 1.30 * d_actual) << PaperDatasetName(ds);
    EXPECT_GT(d_birch, 0.55 * d_actual) << PaperDatasetName(ds);
  }
}

// Claim (Sec. 6.1/Fig. 4): per-point cost does not grow with N.
TEST(ReproductionTest, PerPointWorkFlatInN) {
  uint64_t cmp_small = 0, cmp_large = 0;
  size_t n_small = 0, n_large = 0;
  for (int n_per : {200, 800}) {
    auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, n_per);
    ASSERT_TRUE(gen.ok());
    auto r = ClusterDataset(gen.value().data, Opts(25));
    ASSERT_TRUE(r.ok());
    if (n_per == 200) {
      cmp_small = r.value().tree_stats.distance_comparisons;
      n_small = gen.value().data.size();
    } else {
      cmp_large = r.value().tree_stats.distance_comparisons;
      n_large = gen.value().data.size();
    }
  }
  double per_small = static_cast<double>(cmp_small) / n_small;
  double per_large = static_cast<double>(cmp_large) / n_large;
  // 4x the data must not super-linearly inflate per-point work.
  EXPECT_LT(per_large, 2.0 * per_small);
}

// Claim (Sec. 6.2/Table 2 defaults): the whole pipeline holds the
// memory budget (up to the documented transient overdraft).
TEST(ReproductionTest, MemoryBudgetHeldWithinOverdraft) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS2, 25, 400);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = Opts(25);
  auto r = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().peak_memory_bytes,
            static_cast<size_t>(1.5 * o.resources.memory_bytes));
  EXPECT_LE(r.value().tree_nodes * o.resources.page_size, o.resources.memory_bytes);
}

}  // namespace
}  // namespace birch
