// Tests for the simulated disk substrate: page store capacity/IO
// accounting, per-page checksum verification, fault injection, spill
// file round trips with retry/loss handling, and the memory tracker.
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/crc32c.h"
#include "pagestore/fault_injector.h"
#include "pagestore/memory_tracker.h"
#include "pagestore/page_store.h"
#include "pagestore/spill_file.h"
#include "util/random.h"

namespace birch {
namespace {

TEST(MemoryTrackerTest, BudgetEnforced) {
  MemoryTracker mem(1000);
  EXPECT_TRUE(mem.Allocate(600));
  EXPECT_FALSE(mem.Allocate(500));
  EXPECT_EQ(mem.used(), 600u);
  EXPECT_TRUE(mem.Allocate(400));
  EXPECT_EQ(mem.available(), 0u);
  mem.Free(1000);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(MemoryTrackerTest, UnlimitedWhenZeroBudget) {
  MemoryTracker mem;
  EXPECT_TRUE(mem.Allocate(1u << 30));
  EXPECT_FALSE(mem.over_budget());
}

TEST(MemoryTrackerTest, ForceAllocateOverdraft) {
  MemoryTracker mem(100);
  mem.ForceAllocate(150);
  EXPECT_TRUE(mem.over_budget());
  EXPECT_EQ(mem.peak(), 150u);
  mem.Free(100);
  EXPECT_FALSE(mem.over_budget());
}

// Regression: the budget check and the reservation must be one atomic
// step. With a read-check-add implementation, 8 threads racing on the
// last slots of the budget would jointly overshoot it; the CAS-loop
// Allocate() makes that impossible. (Run under TSan as
// pagestore_test.tsan.)
TEST(MemoryTrackerTest, ConcurrentAllocateNeverOvershootsBudget) {
  constexpr size_t kBudget = 8000;
  constexpr size_t kChunk = 10;
  constexpr int kThreads = 8;
  MemoryTracker mem(kBudget);
  std::vector<size_t> granted(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mem, &granted, t] {
      // Everyone hammers until the budget is exhausted.
      while (mem.Allocate(kChunk)) granted[static_cast<size_t>(t)] += kChunk;
    });
  }
  for (auto& th : threads) th.join();
  size_t total = 0;
  for (size_t g : granted) total += g;
  EXPECT_EQ(total, kBudget);  // fully handed out...
  EXPECT_EQ(mem.used(), kBudget);
  EXPECT_LE(mem.peak(), kBudget);  // ...and never jointly exceeded
  EXPECT_FALSE(mem.over_budget());
  EXPECT_FALSE(mem.Allocate(1));
  mem.Free(kBudget);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(MemoryTrackerTest, ConcurrentForceAllocateTracksPeakExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  MemoryTracker mem(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mem] {
      for (int i = 0; i < kPerThread; ++i) {
        mem.ForceAllocate(3);
        mem.Free(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mem.used(), size_t(kThreads) * kPerThread * 2);
  EXPECT_GE(mem.peak(), mem.used());
  EXPECT_EQ(mem.allocations(), uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(mem.frees(), uint64_t(kThreads) * kPerThread);
}

TEST(PageStoreTest, AllocateWriteReadFree) {
  PageStore store(64, /*capacity=*/256);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(store.Read(id.value(), &back).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.io_stats().pages_written, 1u);
  EXPECT_EQ(store.io_stats().pages_read, 1u);
  ASSERT_TRUE(store.Free(id.value()).ok());
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(PageStoreTest, CapacityEnforced) {
  PageStore store(64, 128);  // two pages max
  ASSERT_TRUE(store.Allocate().ok());
  ASSERT_TRUE(store.Allocate().ok());
  auto third = store.Allocate();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfDisk);
}

TEST(PageStoreTest, MissingPageIsNotFound) {
  PageStore store(64);
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(42, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Free(42).code(), StatusCode::kNotFound);
}

TEST(PageStoreTest, OversizeWriteRejected) {
  PageStore store(16);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> big(17);
  EXPECT_EQ(store.Write(id.value(), big).code(),
            StatusCode::kInvalidArgument);
}

TEST(SpillFileTest, AppendDrainRoundTrip) {
  PageStore store(1024);
  SpillFile spill(&store, /*record_doubles=*/4);
  Rng rng(5);
  std::vector<double> expect;
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> rec = {rng.NextDouble(), rng.NextDouble(),
                               rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(spill.Append(rec).ok());
    expect.insert(expect.end(), rec.begin(), rec.end());
  }
  EXPECT_EQ(spill.size(), 1000u);
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(spill.empty());
  // All pages returned to the store.
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(SpillFileTest, ArityMismatchRejected) {
  PageStore store(1024);
  SpillFile spill(&store, 4);
  std::vector<double> rec3 = {1, 2, 3};
  EXPECT_EQ(spill.Append(rec3).code(), StatusCode::kInvalidArgument);
}

TEST(SpillFileTest, OutOfDiskSurfaces) {
  PageStore store(64, /*capacity=*/64);  // exactly one page
  SpillFile spill(&store, 4);            // 2 records per page
  std::vector<double> rec = {1, 2, 3, 4};
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Third record forces a flush of the staging page -> allocates page 1.
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Fifth record needs a second page: out of disk.
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kOutOfDisk);
  // Draining recovers everything that was accepted.
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got.size(), 16u);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: CRC32C("123456789") = 0xE3069283.
  const char* digits = "123456789";
  std::vector<uint8_t> data(digits, digits + 9);
  EXPECT_EQ(Crc32c(data), 0xe3069283u);
  EXPECT_EQ(Crc32c(std::span<const uint8_t>{}), 0u);
}

TEST(PageStoreTest, ChecksumCatchesEverySingleBitCorruption) {
  // CRC32C must detect 100% of single-bit errors: flip each of the
  // page's bits in turn and require DataLoss on every read.
  const size_t kPageSize = 64;
  PageStore store(kPageSize);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(kPageSize);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 37 + 11);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> out;
  for (size_t bit = 0; bit < kPageSize * 8; ++bit) {
    ASSERT_TRUE(store.CorruptBitForTesting(id.value(), bit).ok());
    EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss)
        << "bit " << bit << " slipped through";
    // Un-flip: the page must verify again (the corruption, not the
    // checksum state, caused the failure).
    ASSERT_TRUE(store.CorruptBitForTesting(id.value(), bit).ok());
    EXPECT_TRUE(store.Read(id.value(), &out).ok());
  }
  EXPECT_EQ(store.io_stats().checksum_failures, kPageSize * 8);
}

TEST(PageStoreTest, InjectedBitRotSurfacesAsDataLoss) {
  FaultOptions f;
  f.bit_flip_rate = 1.0;
  f.seed = 99;
  PageStore store(64, 0, f);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 0xab);
  ASSERT_TRUE(store.Write(id.value(), data).ok());  // write "succeeds"
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.fault_stats().bits_flipped, 1u);
  EXPECT_EQ(store.io_stats().checksum_failures, 1u);
}

TEST(PageStoreTest, InjectedPageLossSurvivesRewriteAndFree) {
  FaultOptions f;
  f.page_loss_rate = 1.0;
  PageStore store(64, 0, f);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 1);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.io_stats().lost_page_reads, 1u);
  // Freeing a lost page still reclaims the capacity.
  EXPECT_TRUE(store.Free(id.value()).ok());
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(PageStoreTest, TransientFaultsAreRetryableAndLeavePageIntact) {
  FaultOptions f;
  f.read_transient_rate = 0.5;
  f.write_transient_rate = 0.5;
  f.seed = 7;
  PageStore store(64, 0, f);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 0x5c);
  // Deterministically seeded: some ops fail with IOError, and a plain
  // retry loop always gets through eventually.
  int write_failures = 0;
  Status st;
  do {
    st = store.Write(id.value(), data);
    if (!st.ok()) {
      ASSERT_EQ(st.code(), StatusCode::kIOError);
      ++write_failures;
      ASSERT_LT(write_failures, 64) << "transient faults never clear";
    }
  } while (!st.ok());
  std::vector<uint8_t> out;
  do {
    st = store.Read(id.value(), &out);
    if (!st.ok()) {
      ASSERT_EQ(st.code(), StatusCode::kIOError);
    }
  } while (!st.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.io_stats().transient_write_errors,
            store.fault_stats().transient_writes);
}

TEST(SpillFileTest, RetriesAbsorbTransientFaults) {
  FaultOptions f;
  f.read_transient_rate = 0.3;
  f.write_transient_rate = 0.3;
  f.seed = 11;
  PageStore store(256, 0, f);
  RetryPolicy retry;
  retry.max_attempts = 16;  // 0.3^16 ~ 4e-9: retries always win
  SpillFile spill(&store, 4, retry);
  std::vector<double> expect;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> rec = {double(i), double(i) + 0.5, 0.0, 1.0};
    ASSERT_TRUE(spill.Append(rec).ok());
    expect.insert(expect.end(), rec.begin(), rec.end());
  }
  std::vector<double> got;
  DrainReport rep;
  ASSERT_TRUE(spill.DrainAll(&got, &rep).ok());
  EXPECT_EQ(got, expect);
  EXPECT_EQ(rep.records_lost, 0u);
  EXPECT_GT(spill.stats().io_retries, 0u);
  EXPECT_GT(spill.stats().backoff_us, 0u);
}

TEST(SpillFileTest, FailedFlushLeavesStagingIntactAndLeaksNoPage) {
  // Append staging-buffer semantics on OutOfDisk: a failed flush must
  // keep every previously-accepted record drainable exactly once.
  PageStore store(64, /*capacity=*/64);  // one page; 2 records per page
  SpillFile spill(&store, 4);
  std::vector<double> rec = {1, 2, 3, 4};
  for (int i = 0; i < 4; ++i) {
    rec[0] = i;
    ASSERT_TRUE(spill.Append(rec).ok());  // fills page 0 + staging
  }
  size_t pages_before = store.num_pages();
  rec[0] = 99;
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kOutOfDisk);
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kOutOfDisk);  // again
  EXPECT_EQ(store.num_pages(), pages_before);  // no page leaked
  EXPECT_EQ(spill.size(), 4u);  // the rejected record was not counted
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  ASSERT_EQ(got.size(), 16u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[size_t(i) * 4], double(i));  // exactly once, in order
  }
  EXPECT_TRUE(spill.empty());
}

TEST(SpillFileTest, FailedFlushWriteFreesAllocatedPage) {
  FaultOptions f;
  f.write_transient_rate = 1.0;  // every write fails, even with retries
  PageStore store(64, /*capacity=*/128, f);
  RetryPolicy retry;
  retry.max_attempts = 3;
  SpillFile spill(&store, 4, retry);
  std::vector<double> rec = {5, 6, 7, 8};
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Third append needs a flush; the write fails past the retry budget
  // and the allocated page must be given back.
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kIOError);
  EXPECT_EQ(store.num_pages(), 0u);
  EXPECT_EQ(spill.stats().io_retries, 2u);
  // The two accepted records are still in staging and drain cleanly.
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got.size(), 8u);
}

TEST(SpillFileTest, DrainSkipsLostPagesAndReportsExactLoss) {
  FaultOptions f;
  f.page_loss_rate = 1.0;  // every flushed page is silently lost
  PageStore store(64, 0, f);
  SpillFile spill(&store, 4);  // 2 records per page
  std::vector<double> rec = {1, 1, 1, 1};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  // 2 full pages flushed (4 records) + 1 record staged.
  std::vector<double> got;
  DrainReport rep;
  ASSERT_TRUE(spill.DrainAll(&got, &rep).ok());
  EXPECT_EQ(rep.records_lost, 4u);
  EXPECT_EQ(rep.pages_lost, 2u);
  EXPECT_EQ(rep.pages_total, 2u);
  EXPECT_EQ(rep.records_returned, 1u);  // the staged record survives
  EXPECT_EQ(got.size(), 4u);
  EXPECT_EQ(spill.stats().records_lost, 4u);
  EXPECT_EQ(store.num_pages(), 0u);  // lost pages still freed
}

TEST(SpillFileTest, DrainWithoutReportNeverLosesDataSilently) {
  FaultOptions f;
  f.bit_flip_rate = 1.0;  // every flushed page is corrupt
  PageStore store(64, 0, f);
  SpillFile spill(&store, 4);
  std::vector<double> rec = {2, 2, 2, 2};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  std::vector<double> got;
  Status st = spill.DrainAll(&got);
  // No report passed: the loss must surface as a DataLoss status, and
  // the corrupt page must not be decoded into records — only the two
  // staged (never-flushed) records come back.
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(got.size(), 8u);
}

TEST(SpillFileTest, DrainEmpty) {
  PageStore store(256);
  SpillFile spill(&store, 3);
  std::vector<double> got = {9, 9};
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace birch
