// Tests for the simulated disk substrate: page store capacity/IO
// accounting, per-page checksum verification, fault injection, spill
// file round trips with retry/loss handling, and the memory tracker.
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/crc32c.h"
#include "pagestore/fault_injector.h"
#include "pagestore/memory_tracker.h"
#include "pagestore/page_store.h"
#include "pagestore/spill_file.h"
#include "util/random.h"

namespace birch {
namespace {

TEST(MemoryTrackerTest, BudgetEnforced) {
  MemoryTracker mem(1000);
  EXPECT_TRUE(mem.Allocate(600));
  EXPECT_FALSE(mem.Allocate(500));
  EXPECT_EQ(mem.used(), 600u);
  EXPECT_TRUE(mem.Allocate(400));
  EXPECT_EQ(mem.available(), 0u);
  mem.Free(1000);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(MemoryTrackerTest, UnlimitedWhenZeroBudget) {
  MemoryTracker mem;
  EXPECT_TRUE(mem.Allocate(1u << 30));
  EXPECT_FALSE(mem.over_budget());
}

TEST(MemoryTrackerTest, ForceAllocateOverdraft) {
  MemoryTracker mem(100);
  mem.ForceAllocate(150);
  EXPECT_TRUE(mem.over_budget());
  EXPECT_EQ(mem.peak(), 150u);
  mem.Free(100);
  EXPECT_FALSE(mem.over_budget());
}

// Regression: the budget check and the reservation must be one atomic
// step. With a read-check-add implementation, 8 threads racing on the
// last slots of the budget would jointly overshoot it; the CAS-loop
// Allocate() makes that impossible. (Run under TSan as
// pagestore_test.tsan.)
TEST(MemoryTrackerTest, ConcurrentAllocateNeverOvershootsBudget) {
  constexpr size_t kBudget = 8000;
  constexpr size_t kChunk = 10;
  constexpr int kThreads = 8;
  MemoryTracker mem(kBudget);
  std::vector<size_t> granted(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mem, &granted, t] {
      // Everyone hammers until the budget is exhausted.
      while (mem.Allocate(kChunk)) granted[static_cast<size_t>(t)] += kChunk;
    });
  }
  for (auto& th : threads) th.join();
  size_t total = 0;
  for (size_t g : granted) total += g;
  EXPECT_EQ(total, kBudget);  // fully handed out...
  EXPECT_EQ(mem.used(), kBudget);
  EXPECT_LE(mem.peak(), kBudget);  // ...and never jointly exceeded
  EXPECT_FALSE(mem.over_budget());
  EXPECT_FALSE(mem.Allocate(1));
  mem.Free(kBudget);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(MemoryTrackerTest, ConcurrentForceAllocateTracksPeakExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  MemoryTracker mem(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mem] {
      for (int i = 0; i < kPerThread; ++i) {
        mem.ForceAllocate(3);
        mem.Free(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mem.used(), size_t(kThreads) * kPerThread * 2);
  EXPECT_GE(mem.peak(), mem.used());
  EXPECT_EQ(mem.allocations(), uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(mem.frees(), uint64_t(kThreads) * kPerThread);
}

TEST(PageStoreTest, AllocateWriteReadFree) {
  PageStore store(64, /*capacity=*/256);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(store.Read(id.value(), &back).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.io_stats().pages_written, 1u);
  EXPECT_EQ(store.io_stats().pages_read, 1u);
  ASSERT_TRUE(store.Free(id.value()).ok());
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(PageStoreTest, CapacityEnforced) {
  PageStore store(64, 128);  // two pages max
  ASSERT_TRUE(store.Allocate().ok());
  ASSERT_TRUE(store.Allocate().ok());
  auto third = store.Allocate();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfDisk);
}

TEST(PageStoreTest, MissingPageIsNotFound) {
  PageStore store(64);
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(42, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Free(42).code(), StatusCode::kNotFound);
}

TEST(PageStoreTest, OversizeWriteRejected) {
  PageStore store(16);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> big(17);
  EXPECT_EQ(store.Write(id.value(), big).code(),
            StatusCode::kInvalidArgument);
}

TEST(SpillFileTest, AppendDrainRoundTrip) {
  PageStore store(1024);
  SpillFile spill(&store, /*record_doubles=*/4);
  Rng rng(5);
  std::vector<double> expect;
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> rec = {rng.NextDouble(), rng.NextDouble(),
                               rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(spill.Append(rec).ok());
    expect.insert(expect.end(), rec.begin(), rec.end());
  }
  EXPECT_EQ(spill.size(), 1000u);
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(spill.empty());
  // All pages returned to the store.
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(SpillFileTest, ArityMismatchRejected) {
  PageStore store(1024);
  SpillFile spill(&store, 4);
  std::vector<double> rec3 = {1, 2, 3};
  EXPECT_EQ(spill.Append(rec3).code(), StatusCode::kInvalidArgument);
}

TEST(SpillFileTest, OutOfDiskSurfaces) {
  PageStore store(64, /*capacity=*/64);  // exactly one page
  SpillFile spill(&store, 4);            // 2 records per page
  std::vector<double> rec = {1, 2, 3, 4};
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Third record forces a flush of the staging page -> allocates page 1.
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Fifth record needs a second page: out of disk.
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kOutOfDisk);
  // Draining recovers everything that was accepted.
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got.size(), 16u);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: CRC32C("123456789") = 0xE3069283.
  const char* digits = "123456789";
  std::vector<uint8_t> data(digits, digits + 9);
  EXPECT_EQ(Crc32c(data), 0xe3069283u);
  EXPECT_EQ(Crc32c(std::span<const uint8_t>{}), 0u);
}

TEST(PageStoreTest, ChecksumCatchesEverySingleBitCorruption) {
  // CRC32C must detect 100% of single-bit errors: flip each of the
  // page's bits in turn and require DataLoss on every read.
  const size_t kPageSize = 64;
  PageStore store(kPageSize);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(kPageSize);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 37 + 11);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> out;
  for (size_t bit = 0; bit < kPageSize * 8; ++bit) {
    ASSERT_TRUE(store.CorruptBitForTesting(id.value(), bit).ok());
    EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss)
        << "bit " << bit << " slipped through";
    // Un-flip: the page must verify again (the corruption, not the
    // checksum state, caused the failure).
    ASSERT_TRUE(store.CorruptBitForTesting(id.value(), bit).ok());
    EXPECT_TRUE(store.Read(id.value(), &out).ok());
  }
  EXPECT_EQ(store.io_stats().checksum_failures, kPageSize * 8);
}

TEST(PageStoreTest, InjectedBitRotSurfacesAsDataLoss) {
  FaultOptions f;
  f.bit_flip_rate = 1.0;
  f.seed = 99;
  PageStore store(64, 0, f);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 0xab);
  ASSERT_TRUE(store.Write(id.value(), data).ok());  // write "succeeds"
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.fault_stats().bits_flipped, 1u);
  EXPECT_EQ(store.io_stats().checksum_failures, 1u);
}

TEST(PageStoreTest, InjectedPageLossSurvivesRewriteAndFree) {
  FaultOptions f;
  f.page_loss_rate = 1.0;
  PageStore store(64, 0, f);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 1);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.io_stats().lost_page_reads, 1u);
  // Freeing a lost page still reclaims the capacity.
  EXPECT_TRUE(store.Free(id.value()).ok());
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(PageStoreTest, TransientFaultsAreRetryableAndLeavePageIntact) {
  FaultOptions f;
  f.read_transient_rate = 0.5;
  f.write_transient_rate = 0.5;
  f.seed = 7;
  PageStore store(64, 0, f);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 0x5c);
  // Deterministically seeded: some ops fail with IOError, and a plain
  // retry loop always gets through eventually.
  int write_failures = 0;
  Status st;
  do {
    st = store.Write(id.value(), data);
    if (!st.ok()) {
      ASSERT_EQ(st.code(), StatusCode::kIOError);
      ++write_failures;
      ASSERT_LT(write_failures, 64) << "transient faults never clear";
    }
  } while (!st.ok());
  std::vector<uint8_t> out;
  do {
    st = store.Read(id.value(), &out);
    if (!st.ok()) {
      ASSERT_EQ(st.code(), StatusCode::kIOError);
    }
  } while (!st.ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.io_stats().transient_write_errors,
            store.fault_stats().transient_writes);
}

TEST(SpillFileTest, RetriesAbsorbTransientFaults) {
  FaultOptions f;
  f.read_transient_rate = 0.3;
  f.write_transient_rate = 0.3;
  f.seed = 11;
  PageStore store(256, 0, f);
  RetryPolicy retry;
  retry.max_attempts = 16;  // 0.3^16 ~ 4e-9: retries always win
  SpillFile spill(&store, 4, retry);
  std::vector<double> expect;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> rec = {double(i), double(i) + 0.5, 0.0, 1.0};
    ASSERT_TRUE(spill.Append(rec).ok());
    expect.insert(expect.end(), rec.begin(), rec.end());
  }
  std::vector<double> got;
  DrainReport rep;
  ASSERT_TRUE(spill.DrainAll(&got, &rep).ok());
  EXPECT_EQ(got, expect);
  EXPECT_EQ(rep.records_lost, 0u);
  EXPECT_GT(spill.stats().io_retries, 0u);
  EXPECT_GT(spill.stats().backoff_us, 0u);
}

TEST(SpillFileTest, FailedFlushLeavesStagingIntactAndLeaksNoPage) {
  // Append staging-buffer semantics on OutOfDisk: a failed flush must
  // keep every previously-accepted record drainable exactly once.
  PageStore store(64, /*capacity=*/64);  // one page; 2 records per page
  SpillFile spill(&store, 4);
  std::vector<double> rec = {1, 2, 3, 4};
  for (int i = 0; i < 4; ++i) {
    rec[0] = i;
    ASSERT_TRUE(spill.Append(rec).ok());  // fills page 0 + staging
  }
  size_t pages_before = store.num_pages();
  rec[0] = 99;
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kOutOfDisk);
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kOutOfDisk);  // again
  EXPECT_EQ(store.num_pages(), pages_before);  // no page leaked
  EXPECT_EQ(spill.size(), 4u);  // the rejected record was not counted
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  ASSERT_EQ(got.size(), 16u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[size_t(i) * 4], double(i));  // exactly once, in order
  }
  EXPECT_TRUE(spill.empty());
}

TEST(SpillFileTest, FailedFlushWriteFreesAllocatedPage) {
  FaultOptions f;
  f.write_transient_rate = 1.0;  // every write fails, even with retries
  PageStore store(64, /*capacity=*/128, f);
  RetryPolicy retry;
  retry.max_attempts = 3;
  SpillFile spill(&store, 4, retry);
  std::vector<double> rec = {5, 6, 7, 8};
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Third append needs a flush; the write fails past the retry budget
  // and the allocated page must be given back.
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kIOError);
  EXPECT_EQ(store.num_pages(), 0u);
  EXPECT_EQ(spill.stats().io_retries, 2u);
  // The two accepted records are still in staging and drain cleanly.
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got.size(), 8u);
}

TEST(SpillFileTest, DrainSkipsLostPagesAndReportsExactLoss) {
  FaultOptions f;
  f.page_loss_rate = 1.0;  // every flushed page is silently lost
  PageStore store(64, 0, f);
  SpillFile spill(&store, 4);  // 2 records per page
  std::vector<double> rec = {1, 1, 1, 1};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  // 2 full pages flushed (4 records) + 1 record staged.
  std::vector<double> got;
  DrainReport rep;
  ASSERT_TRUE(spill.DrainAll(&got, &rep).ok());
  EXPECT_EQ(rep.records_lost, 4u);
  EXPECT_EQ(rep.pages_lost, 2u);
  EXPECT_EQ(rep.pages_total, 2u);
  EXPECT_EQ(rep.records_returned, 1u);  // the staged record survives
  EXPECT_EQ(got.size(), 4u);
  EXPECT_EQ(spill.stats().records_lost, 4u);
  EXPECT_EQ(store.num_pages(), 0u);  // lost pages still freed
}

TEST(SpillFileTest, DrainWithoutReportNeverLosesDataSilently) {
  FaultOptions f;
  f.bit_flip_rate = 1.0;  // every flushed page is corrupt
  PageStore store(64, 0, f);
  SpillFile spill(&store, 4);
  std::vector<double> rec = {2, 2, 2, 2};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  std::vector<double> got;
  Status st = spill.DrainAll(&got);
  // No report passed: the loss must surface as a DataLoss status, and
  // the corrupt page must not be decoded into records — only the two
  // staged (never-flushed) records come back.
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(got.size(), 8u);
}

TEST(SpillFileTest, DrainEmpty) {
  PageStore store(256);
  SpillFile spill(&store, 3);
  std::vector<double> got = {9, 9};
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_TRUE(got.empty());
}

// Regression (short-write stale tail): Write used to copy only
// data.size() bytes over the previous contents, so a short write after
// a full write left the old tail bytes visible. The page past the
// written prefix must read back as zeroes.
TEST(PageStoreTest, ShortWriteZeroesTheTail) {
  PageStore store(64);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> full(64, 0xff);
  ASSERT_TRUE(store.Write(id.value(), full).ok());
  std::vector<uint8_t> shorter(10, 0xaa);
  ASSERT_TRUE(store.Write(id.value(), shorter).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(id.value(), &out).ok());
  ASSERT_EQ(out.size(), 64u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], 0xaa) << "byte " << i;
  for (size_t i = 10; i < 64; ++i) {
    EXPECT_EQ(out[i], 0x00) << "stale tail byte " << i;
  }
}

TEST(PageStoreTest, ShortWriteZeroesTheTailUnderCodec) {
  PageStoreOptions opt;
  opt.page_size = 64;
  opt.codec = PageCodecKind::kDeltaRle;
  PageStore store(opt);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> full(64, 0xff);
  ASSERT_TRUE(store.Write(id.value(), full).ok());
  std::vector<uint8_t> shorter(10, 0xaa);
  ASSERT_TRUE(store.Write(id.value(), shorter).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(id.value(), &out).ok());
  ASSERT_EQ(out.size(), 64u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], 0xaa) << "byte " << i;
  for (size_t i = 10; i < 64; ++i) {
    EXPECT_EQ(out[i], 0x00) << "stale tail byte " << i;
  }
}

// Regression (DrainAll early return left stale state): a page that
// vanished from the store mid-drain used to early-return NotFound
// without trimming pages_/count_, so a retried drain re-read freed
// pages and double-counted records. Now a vanished page is accounted
// as lost and the drain stays state-consistent: a second drain returns
// only what is actually left.
TEST(SpillFileTest, DrainSurvivesExternallyFreedPageWithoutDoubleCount) {
  PageStore store(64);  // ids are sequential from 0
  SpillFile spill(&store, 4);  // 2 records per page
  std::vector<double> rec = {3, 3, 3, 3};
  // 6 appends: pages 0 and 1 flushed (2 records each), 2 staged.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_EQ(store.num_pages(), 2u);
  // Yank a page out from under the spill file.
  ASSERT_TRUE(store.Free(0).ok());
  std::vector<double> got;
  DrainReport rep;
  ASSERT_TRUE(spill.DrainAll(&got, &rep).ok());
  EXPECT_EQ(rep.pages_lost, 1u);
  EXPECT_EQ(rep.records_lost, 2u);
  // Page 1's two records + the two staged records, exactly once.
  EXPECT_EQ(got.size(), 16u);
  EXPECT_TRUE(spill.empty());
  EXPECT_EQ(store.num_pages(), 0u);
  // A retried drain finds nothing — no double count, no NotFound spray.
  std::vector<double> again;
  ASSERT_TRUE(spill.DrainAll(&again).ok());
  EXPECT_TRUE(again.empty());
}

TEST(SpillFileTest, DrainUnderInjectedFaultsIsRetryConsistent) {
  // Fault-injected drain: every flushed page is corrupt, so the drain
  // reports total loss — and a second drain must see a fully trimmed
  // spill file, not re-account the same pages.
  FaultOptions f;
  f.bit_flip_rate = 1.0;
  PageStore store(64, 0, f);
  SpillFile spill(&store, 4);
  std::vector<double> rec = {4, 4, 4, 4};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  std::vector<double> got;
  DrainReport rep;
  ASSERT_TRUE(spill.DrainAll(&got, &rep).ok());
  EXPECT_EQ(rep.pages_lost, 2u);
  EXPECT_EQ(rep.records_lost, 4u);
  EXPECT_EQ(got.size(), 4u);  // the staged record
  EXPECT_EQ(store.num_pages(), 0u);  // lost pages still freed
  EXPECT_TRUE(spill.empty());
  std::vector<double> again = {7};
  DrainReport rep2;
  ASSERT_TRUE(spill.DrainAll(&again, &rep2).ok());
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(rep2.pages_lost, 0u);
  EXPECT_EQ(spill.stats().records_lost, 4u);  // not double-counted
}

// Regression (PeekAll mutated SpillStats): a read-only peek used to
// funnel through the same retry helper as DrainAll and bump
// io_retries/transient_errors, so peeking changed the robustness
// accounting a later drain reports. Stats must be byte-identical
// across a peek, under retries and under loss.
TEST(SpillFileTest, PeekIsStatsNeutral) {
  FaultOptions f;
  f.read_transient_rate = 0.4;
  f.seed = 17;
  PageStore store(64, 0, f);
  RetryPolicy retry;
  retry.max_attempts = 16;
  SpillFile spill(&store, 4, retry);
  std::vector<double> rec = {6, 6, 6, 6};
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  const SpillStats before = spill.stats();
  std::vector<double> peeked;
  DrainReport rep;
  ASSERT_TRUE(spill.PeekAll(&peeked, &rep).ok());
  EXPECT_EQ(peeked.size(), 24u);
  const SpillStats& after = spill.stats();
  EXPECT_EQ(after.io_retries, before.io_retries);
  EXPECT_EQ(after.transient_errors, before.transient_errors);
  EXPECT_EQ(after.backoff_us, before.backoff_us);
  EXPECT_EQ(after.pages_lost, before.pages_lost);
  EXPECT_EQ(after.records_lost, before.records_lost);
  // The spill file is untouched: everything still drains.
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got.size(), 24u);
}

TEST(SpillFileTest, PeekSkipsLostPagesWithoutTouchingLossAccounting) {
  FaultOptions f;
  f.page_loss_rate = 1.0;
  PageStore store(64, 0, f);
  SpillFile spill(&store, 4);
  std::vector<double> rec = {8, 8, 8, 8};
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(spill.Append(rec).ok());
  std::vector<double> peeked;
  DrainReport rep;
  ASSERT_TRUE(spill.PeekAll(&peeked, &rep).ok());
  EXPECT_EQ(rep.pages_lost, 1u);
  EXPECT_EQ(peeked.size(), 4u);  // only the staged record
  // Loss accounting belongs to DrainAll: the peek recorded nothing.
  EXPECT_EQ(spill.stats().pages_lost, 0u);
  EXPECT_EQ(spill.stats().records_lost, 0u);
  // The lost page is still allocated — the drain owns the Free.
  EXPECT_EQ(store.num_pages(), 1u);
}

// --- Compressed, tiered store (ROADMAP item 2) ---

TEST(CompressedPageStoreTest, RoundTripIsTransparent) {
  PageStoreOptions opt;
  opt.page_size = 256;
  opt.codec = PageCodecKind::kDeltaRle;
  PageStore store(opt);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  // CF-like content: similar doubles + implicit zero tail.
  std::vector<double> vals(16);
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] = 500.0 + static_cast<double>(i) * 0.125;
  }
  std::vector<uint8_t> data(vals.size() * sizeof(double));
  std::memcpy(data.data(), vals.data(), data.size());
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  EXPECT_LT(store.stored_bytes(id.value()), opt.page_size);
  EXPECT_EQ(store.io_stats().compressed_writes, 1u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(id.value(), &out).ok());
  ASSERT_EQ(out.size(), opt.page_size);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  for (size_t i = data.size(); i < out.size(); ++i) EXPECT_EQ(out[i], 0);
  EXPECT_GT(store.io_stats().raw_bytes_written,
            store.io_stats().stored_bytes_written);
}

TEST(CompressedPageStoreTest, CapacityChargesCompressedSizes) {
  // A 2-page raw budget holds many more compressible pages when each
  // is charged at its envelope size — the M x ratio effect.
  PageStoreOptions opt;
  opt.page_size = 256;
  opt.capacity_bytes = 512;
  opt.codec = PageCodecKind::kDeltaRle;
  PageStore store(opt);
  std::vector<PageId> ids;
  // Zeroed pages compress to a few bytes each: far more than 2 fit.
  for (int i = 0; i < 8; ++i) {
    auto id = store.Allocate();
    ASSERT_TRUE(id.ok()) << "allocation " << i;
    ids.push_back(id.value());
  }
  EXPECT_GT(store.num_pages() * opt.page_size, opt.capacity_bytes);
  EXPECT_LE(store.used_bytes(), opt.capacity_bytes);
}

TEST(CompressedPageStoreTest, ExactCapacityBoundaryUnderCompression) {
  // Pin the boundary arithmetic: capacity exactly equal to the used
  // bytes plus one more zeroed-page envelope admits that page; one
  // byte less refuses it.
  PageStoreOptions probe_opt;
  probe_opt.page_size = 256;
  probe_opt.codec = PageCodecKind::kDeltaRle;
  PageStore probe(probe_opt);
  auto p = probe.Allocate();
  ASSERT_TRUE(p.ok());
  const size_t env = probe.stored_bytes(p.value());
  ASSERT_GT(env, 0u);

  PageStoreOptions opt = probe_opt;
  opt.capacity_bytes = env * 2;
  PageStore store(opt);
  ASSERT_TRUE(store.Allocate().ok());
  ASSERT_TRUE(store.Allocate().ok());  // lands exactly on capacity
  EXPECT_EQ(store.used_bytes(), opt.capacity_bytes);
  auto third = store.Allocate();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfDisk);

  PageStoreOptions tight = probe_opt;
  tight.capacity_bytes = env * 2 - 1;
  PageStore small(tight);
  ASSERT_TRUE(small.Allocate().ok());
  EXPECT_EQ(small.Allocate().status().code(), StatusCode::kOutOfDisk);
}

TEST(CompressedPageStoreTest, RewriteThatStopsCompressingCanHitCapacity) {
  PageStoreOptions opt;
  opt.page_size = 256;
  opt.codec = PageCodecKind::kDeltaRle;
  PageStore probe(opt);
  auto p = probe.Allocate();
  ASSERT_TRUE(p.ok());
  const size_t env = probe.stored_bytes(p.value());

  opt.capacity_bytes = env + 64;  // room for one zeroed page, not noise
  PageStore store(opt);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  // Rewrite with incompressible noise: the raw-fallback envelope is
  // page_size + header, which no longer fits — OutOfDisk, page intact.
  Rng rng(41);
  std::vector<uint8_t> noise(opt.page_size);
  for (auto& b : noise) b = static_cast<uint8_t>(rng.Next() & 0xffu);
  Status st = store.Write(id.value(), noise);
  EXPECT_EQ(st.code(), StatusCode::kOutOfDisk);
  // The page still reads as its pre-write (zeroed) image.
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(id.value(), &out).ok());
  for (uint8_t b : out) ASSERT_EQ(b, 0);
}

TEST(CompressedPageStoreTest, ChecksumCatchesEveryBitOfTheEnvelope) {
  // The CRC covers the compressed image: flip every stored bit in turn
  // and require DataLoss — bit rot never reaches the decoder silently.
  PageStoreOptions opt;
  opt.page_size = 128;
  opt.codec = PageCodecKind::kDeltaRle;
  PageStore store(opt);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<double> vals = {1.0, 1.5, 2.0, 2.5};
  std::vector<uint8_t> data(vals.size() * sizeof(double));
  std::memcpy(data.data(), vals.data(), data.size());
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  const size_t stored_bits = store.stored_bytes(id.value()) * 8;
  ASSERT_GT(stored_bits, 0u);
  std::vector<uint8_t> out;
  for (size_t bit = 0; bit < stored_bits; ++bit) {
    ASSERT_TRUE(store.CorruptBitForTesting(id.value(), bit).ok());
    EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss)
        << "bit " << bit << " slipped through";
    ASSERT_TRUE(store.CorruptBitForTesting(id.value(), bit).ok());
    EXPECT_TRUE(store.Read(id.value(), &out).ok());
  }
  EXPECT_EQ(store.io_stats().checksum_failures, stored_bits);
  EXPECT_EQ(store.io_stats().envelope_decode_failures, 0u);
}

TEST(CompressedPageStoreTest, InjectedBitRotOnEnvelopeIsDataLoss) {
  FaultOptions f;
  f.bit_flip_rate = 1.0;
  f.seed = 3;
  PageStoreOptions opt;
  opt.page_size = 128;
  opt.faults = f;
  opt.codec = PageCodecKind::kDeltaRle;
  PageStore store(opt);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 0x3c);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(id.value(), &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(store.io_stats().checksum_failures, 1u);
}

TEST(CompressedPageStoreTest, HotTierServesRepeatReadsAndEvictsLru) {
  PageStoreOptions opt;
  opt.page_size = 256;
  opt.codec = PageCodecKind::kDeltaRle;
  opt.hot_tier_bytes = 512;  // room for exactly two decompressed pages
  PageStore store(opt);
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = store.Allocate();
    ASSERT_TRUE(id.ok());
    std::vector<uint8_t> data(32, static_cast<uint8_t>(0x10 + i));
    ASSERT_TRUE(store.Write(id.value(), data).ok());
    ids.push_back(id.value());
  }
  std::vector<uint8_t> out;
  // First read of each page: a miss that fills the tier.
  ASSERT_TRUE(store.Read(ids[0], &out).ok());
  ASSERT_TRUE(store.Read(ids[1], &out).ok());
  EXPECT_EQ(store.io_stats().hot_misses, 2u);
  EXPECT_EQ(store.io_stats().hot_hits, 0u);
  EXPECT_EQ(store.hot_bytes(), 512u);
  // Repeat reads are hits.
  ASSERT_TRUE(store.Read(ids[0], &out).ok());
  ASSERT_TRUE(store.Read(ids[1], &out).ok());
  EXPECT_EQ(store.io_stats().hot_hits, 2u);
  // Third page forces an LRU demotion (page 0 is the colder of the
  // two after the reads above... page 0 was read second-to-last, so
  // the victim is ids[0]).
  ASSERT_TRUE(store.Read(ids[2], &out).ok());
  EXPECT_EQ(store.io_stats().hot_demotions, 1u);
  EXPECT_EQ(store.hot_bytes(), 512u);
  // The demoted page re-reads fine from the cold envelope (a miss).
  const uint64_t misses = store.io_stats().hot_misses;
  ASSERT_TRUE(store.Read(ids[0], &out).ok());
  EXPECT_EQ(store.io_stats().hot_misses, misses + 1);
  ASSERT_EQ(out.size(), opt.page_size);
  EXPECT_EQ(out[0], 0x10);
}

TEST(CompressedPageStoreTest, WriteInvalidatesHotCopy) {
  PageStoreOptions opt;
  opt.page_size = 128;
  opt.codec = PageCodecKind::kDeltaRle;
  opt.hot_tier_bytes = 1024;
  PageStore store(opt);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> v1(16, 0x01);
  ASSERT_TRUE(store.Write(id.value(), v1).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(id.value(), &out).ok());  // fills hot tier
  EXPECT_EQ(out[0], 0x01);
  std::vector<uint8_t> v2(16, 0x02);
  ASSERT_TRUE(store.Write(id.value(), v2).ok());
  ASSERT_TRUE(store.Read(id.value(), &out).ok());
  EXPECT_EQ(out[0], 0x02) << "stale hot copy served after rewrite";
  ASSERT_TRUE(store.Free(id.value()).ok());
  EXPECT_EQ(store.hot_bytes(), 0u);
}

TEST(CompressedPageStoreTest, HotTierIgnoredWithoutCodec) {
  PageStoreOptions opt;
  opt.page_size = 64;
  opt.hot_tier_bytes = 4096;  // meaningless without a codec
  PageStore store(opt);
  EXPECT_EQ(store.hot_tier_bytes(), 0u);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64, 0x11);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(id.value(), &out).ok());
  ASSERT_TRUE(store.Read(id.value(), &out).ok());
  EXPECT_EQ(store.io_stats().hot_hits, 0u);
  EXPECT_EQ(store.hot_bytes(), 0u);
}

TEST(CompressedPageStoreTest, SpillFileWorksUnchangedOverCodecStore) {
  // The spill layer never sees envelopes: a compressed store behind it
  // is fully transparent, losses included.
  PageStoreOptions opt;
  opt.page_size = 1024;
  opt.codec = PageCodecKind::kDeltaRle;
  opt.hot_tier_bytes = 2048;
  PageStore store(opt);
  SpillFile spill(&store, 4);
  Rng rng(13);
  std::vector<double> expect;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> rec = {rng.NextDouble(), rng.NextDouble(),
                               rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(spill.Append(rec).ok());
    expect.insert(expect.end(), rec.begin(), rec.end());
  }
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got, expect);
  EXPECT_EQ(store.num_pages(), 0u);
  EXPECT_GT(store.io_stats().compressed_writes, 0u);
}

}  // namespace
}  // namespace birch
