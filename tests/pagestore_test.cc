// Tests for the simulated disk substrate: page store capacity/IO
// accounting, spill file round trips, and the memory tracker.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/memory_tracker.h"
#include "pagestore/page_store.h"
#include "pagestore/spill_file.h"
#include "util/random.h"

namespace birch {
namespace {

TEST(MemoryTrackerTest, BudgetEnforced) {
  MemoryTracker mem(1000);
  EXPECT_TRUE(mem.Allocate(600));
  EXPECT_FALSE(mem.Allocate(500));
  EXPECT_EQ(mem.used(), 600u);
  EXPECT_TRUE(mem.Allocate(400));
  EXPECT_EQ(mem.available(), 0u);
  mem.Free(1000);
  EXPECT_EQ(mem.used(), 0u);
}

TEST(MemoryTrackerTest, UnlimitedWhenZeroBudget) {
  MemoryTracker mem;
  EXPECT_TRUE(mem.Allocate(1u << 30));
  EXPECT_FALSE(mem.over_budget());
}

TEST(MemoryTrackerTest, ForceAllocateOverdraft) {
  MemoryTracker mem(100);
  mem.ForceAllocate(150);
  EXPECT_TRUE(mem.over_budget());
  EXPECT_EQ(mem.peak(), 150u);
  mem.Free(100);
  EXPECT_FALSE(mem.over_budget());
}

TEST(PageStoreTest, AllocateWriteReadFree) {
  PageStore store(64, /*capacity=*/256);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i);
  ASSERT_TRUE(store.Write(id.value(), data).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(store.Read(id.value(), &back).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.io_stats().pages_written, 1u);
  EXPECT_EQ(store.io_stats().pages_read, 1u);
  ASSERT_TRUE(store.Free(id.value()).ok());
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(PageStoreTest, CapacityEnforced) {
  PageStore store(64, 128);  // two pages max
  ASSERT_TRUE(store.Allocate().ok());
  ASSERT_TRUE(store.Allocate().ok());
  auto third = store.Allocate();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOutOfDisk);
}

TEST(PageStoreTest, MissingPageIsNotFound) {
  PageStore store(64);
  std::vector<uint8_t> out;
  EXPECT_EQ(store.Read(42, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Free(42).code(), StatusCode::kNotFound);
}

TEST(PageStoreTest, OversizeWriteRejected) {
  PageStore store(16);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> big(17);
  EXPECT_EQ(store.Write(id.value(), big).code(),
            StatusCode::kInvalidArgument);
}

TEST(SpillFileTest, AppendDrainRoundTrip) {
  PageStore store(1024);
  SpillFile spill(&store, /*record_doubles=*/4);
  Rng rng(5);
  std::vector<double> expect;
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> rec = {rng.NextDouble(), rng.NextDouble(),
                               rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(spill.Append(rec).ok());
    expect.insert(expect.end(), rec.begin(), rec.end());
  }
  EXPECT_EQ(spill.size(), 1000u);
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(spill.empty());
  // All pages returned to the store.
  EXPECT_EQ(store.num_pages(), 0u);
}

TEST(SpillFileTest, ArityMismatchRejected) {
  PageStore store(1024);
  SpillFile spill(&store, 4);
  std::vector<double> rec3 = {1, 2, 3};
  EXPECT_EQ(spill.Append(rec3).code(), StatusCode::kInvalidArgument);
}

TEST(SpillFileTest, OutOfDiskSurfaces) {
  PageStore store(64, /*capacity=*/64);  // exactly one page
  SpillFile spill(&store, 4);            // 2 records per page
  std::vector<double> rec = {1, 2, 3, 4};
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Third record forces a flush of the staging page -> allocates page 1.
  ASSERT_TRUE(spill.Append(rec).ok());
  ASSERT_TRUE(spill.Append(rec).ok());
  // Fifth record needs a second page: out of disk.
  EXPECT_EQ(spill.Append(rec).code(), StatusCode::kOutOfDisk);
  // Draining recovers everything that was accepted.
  std::vector<double> got;
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_EQ(got.size(), 16u);
}

TEST(SpillFileTest, DrainEmpty) {
  PageStore store(256);
  SpillFile spill(&store, 3);
  std::vector<double> got = {9, 9};
  ASSERT_TRUE(spill.DrainAll(&got).ok());
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace birch
