// Util substrate tests: Status/StatusOr, deterministic RNG statistics,
// table and CSV formatting, math helpers, dataset container.
#include <cmath>

#include <gtest/gtest.h>

#include "birch/dataset.h"
#include "util/csv.h"
#include "util/math.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"

namespace birch {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::OutOfMemory("budget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.ToString(), "OutOfMemory: budget");
}

TEST(StatusTest, StatusOrHoldsValueOrStatus) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status::NotFound("x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(RandomTest, DeterministicForSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformBounds) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    int64_t v = rng.UniformInt(int64_t{-3}, int64_t{4});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RandomTest, GaussianMoments) {
  Rng rng(7);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RandomTest, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RandomTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(MathTest, Distances) {
  std::vector<double> a = {0, 0}, b = {3, 4};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(Dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(b), 25.0);
  EXPECT_EQ(ClampNonNegative(-1e-18), 0.0);
  EXPECT_EQ(ClampNonNegative(2.0), 2.0);
}

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.Row().Add("x").Add(3.14159, 2);
  t.Row().Add("long-name").Add(int64_t{42});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| x         | 3.14  |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 42    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Cell(0, 1), "3.14");
}

TEST(CsvTest, EscapesSpecials) {
  CsvWriter w({"a", "b"});
  w.Row().Add("plain").Add(std::string("with,comma"));
  w.Row().Add(std::string("quote\"inside")).Add(int64_t{1});
  std::string s = w.ToString();
  EXPECT_NE(s.find("a,b\n"), std::string::npos);
  EXPECT_NE(s.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\",1\n"), std::string::npos);
}

TEST(CsvTest, WritesFile) {
  CsvWriter w({"x"});
  w.Row().Add(1.5);
  std::string path = ::testing::TempDir() + "/birch_csv_test.csv";
  ASSERT_TRUE(w.WriteFile(path).ok());
  EXPECT_FALSE(w.WriteFile("/nonexistent-dir/f.csv").ok());
}

TEST(DatasetTest, RowsAndWeights) {
  Dataset d(3);
  std::vector<double> r0 = {1, 2, 3}, r1 = {4, 5, 6};
  d.Append(r0);
  EXPECT_FALSE(d.has_weights());
  d.AppendWeighted(r1, 2.5);
  EXPECT_TRUE(d.has_weights());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Weight(0), 1.0);
  EXPECT_EQ(d.Weight(1), 2.5);
  EXPECT_DOUBLE_EQ(d.TotalWeight(), 3.5);
  auto row = d.Row(1);
  EXPECT_EQ(row[2], 6.0);
}

}  // namespace
}  // namespace birch
