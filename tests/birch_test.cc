// End-to-end BIRCH tests: the full pipeline must recover the generated
// clusters on the paper's workloads (scaled down for test speed), be
// robust to input order, produce labels consistent with clusters,
// support the streaming Snapshot API, and validate options.
#include "birch/birch.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/paper_datasets.h"
#include "eval/matching.h"
#include "eval/quality.h"

namespace birch {
namespace {

BirchOptions SmallOptions(int k) {
  BirchOptions o;
  o.dim = 2;
  o.k = k;
  o.resources.memory_bytes = 24 * 1024;
  o.resources.disk_bytes = 5 * 1024;
  o.resources.page_size = 512;
  return o;
}

TEST(BirchTest, RecoversGridClusters) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, /*k=*/25, /*n=*/200);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  auto result = ClusterDataset(g.data, SmallOptions(25));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& r = result.value();
  ASSERT_EQ(r.clusters.size(), 25u);
  ASSERT_EQ(r.labels.size(), g.data.size());

  MatchReport match = MatchClusters(g.actual, r.clusters);
  EXPECT_EQ(match.matched, 25);
  // Grid spacing 4, radius sqrt(2): found centroids within a radius.
  EXPECT_LT(match.mean_centroid_displacement, 1.0);
  // Grid spacing 4 with radius sqrt(2) means adjacent clusters overlap
  // in their Gaussian tails, so even the Bayes-optimal assignment
  // mislabels a few percent.
  double acc = LabelAccuracy(g.truth, r.labels, match);
  EXPECT_GT(acc, 0.88);
}

TEST(BirchTest, QualityCloseToActualClusters) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 200);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  auto result = ClusterDataset(g.data, SmallOptions(25));
  ASSERT_TRUE(result.ok());

  std::vector<CfVector> actual_cfs;
  for (const auto& a : g.actual) actual_cfs.push_back(a.cf);
  double d_actual = WeightedAverageDiameter(actual_cfs);
  double d_birch = WeightedAverageDiameter(result.value().clusters);
  // Paper: BIRCH quality within a few percent of the actual clusters.
  EXPECT_LT(d_birch, 1.25 * d_actual);
  EXPECT_GT(d_birch, 0.60 * d_actual);
}

TEST(BirchTest, OrderInsensitivity) {
  // Randomized vs ordered input must land on near-identical quality.
  auto rnd = GeneratePaperDataset(PaperDataset::kDS1, 16, 250);
  auto ord = GeneratePaperDataset(PaperDataset::kDS1o, 16, 250);
  ASSERT_TRUE(rnd.ok() && ord.ok());
  auto r1 = ClusterDataset(rnd.value().data, SmallOptions(16));
  auto r2 = ClusterDataset(ord.value().data, SmallOptions(16));
  ASSERT_TRUE(r1.ok() && r2.ok());
  double d1 = WeightedAverageDiameter(r1.value().clusters);
  double d2 = WeightedAverageDiameter(r2.value().clusters);
  EXPECT_NEAR(d1, d2, 0.35 * std::max(d1, d2));
}

TEST(BirchTest, LabelsConsistentWithClusters) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS2, 9, 150);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  auto result = ClusterDataset(g.data, SmallOptions(9));
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  // Rebuilding cluster CFs from labels reproduces result.clusters.
  auto rebuilt = ClustersFromLabels(g.data, r.labels,
                                    static_cast<int>(r.clusters.size()));
  ASSERT_EQ(rebuilt.size(), r.clusters.size());
  for (size_t c = 0; c < rebuilt.size(); ++c) {
    EXPECT_NEAR(rebuilt[c].n(), r.clusters[c].n(), 1e-6);
  }
}

TEST(BirchTest, KMeansGlobalAlgorithm) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 16, 150);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = SmallOptions(16);
  o.global_phase.algorithm = GlobalAlgorithm::kKMeans;
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok());
  MatchReport match = MatchClusters(gen.value().actual,
                                    result.value().clusters);
  EXPECT_GE(match.matched, 14);  // k-means may merge a pair occasionally
}

TEST(BirchTest, NoisyDataStillRecoversClusters) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 16, 200,
                                  /*noise=*/0.10);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = SmallOptions(16);
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok());
  MatchReport match = MatchClusters(gen.value().actual,
                                    result.value().clusters);
  EXPECT_EQ(match.matched, 16);
  EXPECT_LT(match.mean_centroid_displacement, 1.5);
}

TEST(BirchTest, StreamingSnapshot) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 9, 150);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  auto clusterer_or = BirchClusterer::Create(SmallOptions(9));
  ASSERT_TRUE(clusterer_or.ok());
  auto& clusterer = clusterer_or.value();

  // Feed half, snapshot, feed the rest, finish.
  size_t half = g.data.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(clusterer->Add(g.data.Row(i)).ok());
  }
  auto snap = clusterer->Snapshot(9);
  ASSERT_TRUE(snap.ok());
  double snap_points = 0.0;
  for (const auto& c : snap.value().clusters) snap_points += c.n();
  // The snapshot sees the tree contents only: points parked on the
  // outlier/delay-split disk are excluded until Finish(), so allow a
  // sizable shortfall but no excess.
  EXPECT_LE(snap_points, static_cast<double>(half) + 1e-9);
  EXPECT_GT(snap_points, 0.70 * static_cast<double>(half));

  for (size_t i = half; i < g.data.size(); ++i) {
    ASSERT_TRUE(clusterer->Add(g.data.Row(i)).ok());
  }
  auto result = clusterer->Finish(&g.data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().clusters.size(), 9u);
  // Finished twice is an error.
  EXPECT_EQ(clusterer->Finish(&g.data).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BirchTest, ResultBookkeepingPopulated) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 16, 200);
  ASSERT_TRUE(gen.ok());
  auto result = ClusterDataset(gen.value().data, SmallOptions(16));
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  EXPECT_GT(r.phase1.points_added, 0u);
  EXPECT_GT(r.leaf_entries_after_phase1, 0u);
  EXPECT_GT(r.peak_memory_bytes, 0u);
  EXPECT_GT(r.tree_stats.inserts, 0u);
  EXPECT_EQ(r.centroids.size(), r.clusters.size());
  EXPECT_GE(r.timings.Total(), 0.0);
}

TEST(BirchTest, Phase2CondensesForPhase3) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS3, 25, 300);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = SmallOptions(25);
  o.resources.memory_bytes = 64 * 1024;  // roomy: many leaf entries survive
  o.global_phase.phase2_target_entries = 120;
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().leaf_entries_after_phase2, 120u);
}

TEST(BirchTest, RefinementImprovesOrMatchesQuality) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS2, 16, 200);
  ASSERT_TRUE(gen.ok());
  BirchOptions no_refine = SmallOptions(16);
  no_refine.refine.passes = 0;
  BirchOptions with_refine = SmallOptions(16);
  with_refine.refine.passes = 3;
  auto r0 = ClusterDataset(gen.value().data, no_refine);
  auto r1 = ClusterDataset(gen.value().data, with_refine);
  ASSERT_TRUE(r0.ok() && r1.ok());
  // Labels exist either way.
  EXPECT_EQ(r0.value().labels.size(), gen.value().data.size());
  double d0 = WeightedAverageDiameter(r0.value().clusters);
  double d1 = WeightedAverageDiameter(r1.value().clusters);
  EXPECT_LE(d1, d0 * 1.05);
}

TEST(BirchTest, OptionValidation) {
  BirchOptions o;  // k unset
  o.dim = 2;
  EXPECT_EQ(BirchClusterer::Create(o).status().code(),
            StatusCode::kInvalidArgument);
  o.k = 5;
  o.dim = 0;
  EXPECT_EQ(BirchClusterer::Create(o).status().code(),
            StatusCode::kInvalidArgument);
  o.dim = 2;
  o.resources.memory_bytes = 100;  // < 4 pages
  EXPECT_EQ(BirchClusterer::Create(o).status().code(),
            StatusCode::kInvalidArgument);
  o.resources.memory_bytes = 80 * 1024;
  o.resources.page_size = 16;  // too small for dim
  EXPECT_EQ(BirchClusterer::Create(o).status().code(),
            StatusCode::kInvalidArgument);
  o.resources.page_size = 1024;
  // A hot tier without a codec is meaningless (uncompressed pages are
  // their own hot copy) — the message must name the remedy.
  o.resources.hot_tier_bytes = 64 * 1024;
  auto no_codec = BirchClusterer::Create(o);
  ASSERT_FALSE(no_codec.ok());
  EXPECT_EQ(no_codec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_codec.status().message().find("page_codec"),
            std::string::npos);
  o.resources.page_codec = PageCodecKind::kDeltaRle;
  EXPECT_TRUE(BirchClusterer::Create(o).ok());
}

TEST(BirchTest, CompressedOutlierDiskIsTransparent) {
  // The codec sits entirely below the outlier disk: the same stream
  // with compression on and off must produce the identical clustering
  // (labels, clusters, threshold), while the compressed run stores
  // fewer bytes than it was presented.
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 200);
  ASSERT_TRUE(gen.ok());
  BirchOptions plain = SmallOptions(25);
  BirchOptions packed = plain;
  packed.resources.page_codec = PageCodecKind::kDeltaRle;
  packed.resources.hot_tier_bytes = 2 * 1024;
  auto rp = ClusterDataset(gen.value().data, plain);
  auto rc = ClusterDataset(gen.value().data, packed);
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  EXPECT_EQ(rp.value().labels, rc.value().labels);
  ASSERT_EQ(rp.value().clusters.size(), rc.value().clusters.size());
  for (size_t c = 0; c < rp.value().clusters.size(); ++c) {
    EXPECT_EQ(rp.value().clusters[c], rc.value().clusters[c]);
  }
  EXPECT_EQ(rp.value().final_threshold, rc.value().final_threshold);
  // The plain run reports no compression traffic; the packed one beats
  // raw whenever the disk actually saw pages.
  EXPECT_EQ(rp.value().disk_stored_bytes, 0u);
  if (rc.value().disk_pages_written > 0) {
    EXPECT_GT(rc.value().disk_raw_bytes, 0u);
    EXPECT_LT(rc.value().disk_stored_bytes, rc.value().disk_raw_bytes);
  }
}

TEST(BirchTest, BuilderConfiguresPageCodec) {
  auto built_or = BirchOptions::Builder()
                      .Dim(2)
                      .K(4)
                      .PageCodec(PageCodecKind::kDeltaRle)
                      .HotTierBytes(8 * 1024)
                      .Build();
  ASSERT_TRUE(built_or.ok()) << built_or.status().ToString();
  EXPECT_EQ(built_or.value().resources.page_codec,
            PageCodecKind::kDeltaRle);
  EXPECT_EQ(built_or.value().resources.hot_tier_bytes, 8u * 1024u);
  // Builder-level misconfiguration fails like field-level.
  EXPECT_EQ(BirchOptions::Builder()
                .Dim(2)
                .K(4)
                .HotTierBytes(8 * 1024)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BirchTest, BuilderMatchesFieldConfiguration) {
  // Direct nested-field writes and the Builder must describe the same
  // configuration — and produce the identical clustering.
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 150);
  ASSERT_TRUE(gen.ok());

  BirchOptions flat;
  flat.dim = 2;
  flat.k = 25;
  flat.resources.memory_bytes = 24 * 1024;
  flat.resources.disk_bytes = 5 * 1024;
  flat.resources.page_size = 512;
  flat.tree.metric = DistanceMetric::kD4;
  flat.tree.threshold_kind = ThresholdKind::kRadius;
  flat.refine.passes = 2;
  flat.exec.kernel = KernelKind::kBatch;

  auto built_or = BirchOptions::Builder()
                      .Dim(2)
                      .K(25)
                      .MemoryBytes(24 * 1024)
                      .DiskBytes(5 * 1024)
                      .PageSize(512)
                      .Metric(DistanceMetric::kD4)
                      .ThresholdKind(ThresholdKind::kRadius)
                      .RefinementPasses(2)
                      .Kernel(KernelKind::kBatch)
                      .Build();
  ASSERT_TRUE(built_or.ok()) << built_or.status().ToString();
  const BirchOptions& built = built_or.value();

  // The Builder produced the same nested values.
  EXPECT_EQ(built.resources.memory_bytes, flat.resources.memory_bytes);
  EXPECT_EQ(built.tree.threshold_kind, flat.tree.threshold_kind);
  EXPECT_EQ(built.exec.kernel, flat.exec.kernel);

  auto rf = ClusterDataset(gen.value().data, flat);
  auto rb = ClusterDataset(gen.value().data, built);
  ASSERT_TRUE(rf.ok() && rb.ok());
  EXPECT_EQ(rf.value().labels, rb.value().labels);
  ASSERT_EQ(rf.value().clusters.size(), rb.value().clusters.size());
  for (size_t c = 0; c < rf.value().clusters.size(); ++c) {
    EXPECT_EQ(rf.value().clusters[c], rb.value().clusters[c]);
  }
}

TEST(BirchTest, BuilderRejectsInvalidConfiguration) {
  EXPECT_EQ(BirchOptions::Builder().Dim(0).K(3).Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BirchOptions::Builder().Dim(2).K(-1).Build().status().code(),
            StatusCode::kInvalidArgument);
  // Copies are independent values.
  BirchOptions a;
  a.resources.memory_bytes = 123 * 1024;
  BirchOptions b = a;
  b.resources.memory_bytes = 77 * 1024;
  EXPECT_EQ(a.resources.memory_bytes, 123u * 1024u);
  EXPECT_EQ(b.resources.memory_bytes, 77u * 1024u);
}

TEST(BirchTest, AccessorsStayValidAfterFinish) {
  // Regression: Finish() used to half-consume the clusterer. The
  // stream accessors must keep answering afterwards, and ingest must
  // fail cleanly instead of corrupting the finished tree.
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 9, 80);
  ASSERT_TRUE(gen.ok());
  auto clusterer_or = BirchClusterer::Create(SmallOptions(9));
  ASSERT_TRUE(clusterer_or.ok());
  auto& clusterer = clusterer_or.value();
  ASSERT_TRUE(clusterer->AddDataset(gen.value().data).ok());
  size_t leaves_before = clusterer->tree().leaf_entry_count();
  ASSERT_TRUE(clusterer->Finish(nullptr).ok());

  EXPECT_GE(clusterer->tree().leaf_entry_count(), 1u);
  EXPECT_GT(clusterer->phase1_stats().points_added, 0u);
  (void)leaves_before;

  std::vector<double> p = {0.0, 0.0};
  EXPECT_EQ(clusterer->Add(p).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(clusterer->AddDataset(gen.value().data).code(),
            StatusCode::kFailedPrecondition);
  DatasetSource src(&gen.value().data);
  EXPECT_EQ(clusterer->AddSource(&src).code(),
            StatusCode::kFailedPrecondition);
}

// Snapshot(k) on an empty clusterer refuses with the remedy named.
TEST(BirchTest, SnapshotBeforeIngestNamesTheRemedy) {
  auto c = BirchClusterer::Create(SmallOptions(3));
  ASSERT_TRUE(c.ok());
  auto snap = c.value()->Snapshot(3);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(snap.status().message().find("ingest at least one point"),
            std::string::npos)
      << snap.status().message();
}

// The FMA fast-dispatch leg is opt-in and quality-gated: a kBatchFast
// run must clear the same bars as the correctly-rounded kBatch oracle,
// and with no FMA leg active it must match the oracle bitwise.
TEST(BirchTest, BatchFastKernelMeetsQualityBars) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, /*k=*/25, /*n=*/200);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  BirchOptions fast = SmallOptions(25);
  fast.exec.kernel = KernelKind::kBatchFast;
  auto rf = ClusterDataset(g.data, fast);
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();

  MatchReport match = MatchClusters(g.actual, rf.value().clusters);
  EXPECT_EQ(match.matched, 25);
  std::vector<CfVector> actual_cfs;
  for (const auto& a : g.actual) actual_cfs.push_back(a.cf);
  double d_actual = WeightedAverageDiameter(actual_cfs);
  double d_fast = WeightedAverageDiameter(rf.value().clusters);
  EXPECT_LT(d_fast, 1.30 * d_actual);

  if (!kernel::FmaActive()) {
    BirchOptions oracle = SmallOptions(25);
    oracle.exec.kernel = KernelKind::kBatch;
    auto rb = ClusterDataset(g.data, oracle);
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(rf.value().labels, rb.value().labels);
    EXPECT_EQ(rf.value().final_threshold, rb.value().final_threshold);
  }
}

// AddBatch is the primary ingest surface and Add/AddDataset are sugar
// over it, so the serial path must be bitwise-identical however the
// same stream is sliced into batches: per-point Add, one whole-dataset
// AddBatch, and ragged batch sizes that straddle any internal chunking
// all land the identical tree and clustering.
TEST(BirchTest, AddBatchMatchesPointLoopBitwise) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS2, 9, 150);
  ASSERT_TRUE(gen.ok());
  const auto& data = gen.value().data;
  const size_t dim = data.dim();

  auto run = [&](auto&& feed) {
    auto c_or = BirchClusterer::Create(SmallOptions(9));
    EXPECT_TRUE(c_or.ok());
    feed(*c_or.value());
    auto r = c_or.value()->Finish(&data);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  };

  BirchResult by_point = run([&](BirchClusterer& c) {
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(c.Add(data.Row(i)).ok());
    }
  });
  BirchResult whole = run([&](BirchClusterer& c) {
    ASSERT_TRUE(c.AddBatch(data.Values(), data.size()).ok());
  });
  // Ragged slicing: prime-sized batches never align with anything.
  BirchResult ragged = run([&](BirchClusterer& c) {
    const size_t steps[] = {7, 13, 1, 31};
    size_t off = 0, si = 0;
    while (off < data.size()) {
      size_t take = std::min(steps[si++ % 4], data.size() - off);
      ASSERT_TRUE(
          c.AddBatch(data.Values().subspan(off * dim, take * dim), take)
              .ok());
      off += take;
    }
  });

  for (const BirchResult* other : {&whole, &ragged}) {
    EXPECT_EQ(by_point.labels, other->labels);
    ASSERT_EQ(by_point.clusters.size(), other->clusters.size());
    for (size_t c = 0; c < by_point.clusters.size(); ++c) {
      EXPECT_EQ(by_point.clusters[c], other->clusters[c]);
    }
    EXPECT_EQ(by_point.final_threshold, other->final_threshold);
    EXPECT_EQ(by_point.phase1.points_added, other->phase1.points_added);
  }
}

// Weighted AddBatch must match the per-point weighted Add loop too.
TEST(BirchTest, WeightedAddBatchMatchesWeightedAddLoop) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 9, 100);
  ASSERT_TRUE(gen.ok());
  const auto& data = gen.value().data;
  std::vector<double> w(data.size());
  for (size_t i = 0; i < w.size(); ++i) w[i] = 1.0 + 0.5 * (i % 4);

  auto a_or = BirchClusterer::Create(SmallOptions(9));
  auto b_or = BirchClusterer::Create(SmallOptions(9));
  ASSERT_TRUE(a_or.ok() && b_or.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(a_or.value()->Add(data.Row(i), w[i]).ok());
  }
  ASSERT_TRUE(b_or.value()->AddBatch(data.Values(), data.size(), w).ok());
  auto ra = a_or.value()->Finish();
  auto rb = b_or.value()->Finish();
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra.value().clusters.size(), rb.value().clusters.size());
  for (size_t c = 0; c < ra.value().clusters.size(); ++c) {
    EXPECT_EQ(ra.value().clusters[c], rb.value().clusters[c]);
  }
}

// AddBatch preconditions name the remedy, not just the failure.
TEST(BirchTest, AddBatchValidationMessagesNameTheRemedy) {
  auto c_or = BirchClusterer::Create(SmallOptions(3));
  ASSERT_TRUE(c_or.ok());
  auto& c = c_or.value();

  std::vector<double> three = {1.0, 2.0, 3.0};
  Status wrong_len = c->AddBatch(three, 2);
  EXPECT_EQ(wrong_len.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong_len.message().find("n * dim"), std::string::npos)
      << wrong_len.message();

  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> one_weight = {1.0};
  Status wrong_w = c->AddBatch(xs, 2, one_weight);
  EXPECT_EQ(wrong_w.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong_w.message().find("one weight per point"),
            std::string::npos)
      << wrong_w.message();

  ASSERT_TRUE(c->AddBatch(xs, 2).ok());
  ASSERT_TRUE(c->Finish().ok());
  Status after = c->AddBatch(xs, 2);
  EXPECT_EQ(after.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(after.message().find("new"), std::string::npos)
      << after.message();
}

TEST(BirchTest, EmptyInputFails) {
  Dataset empty(2);
  auto result = ClusterDataset(empty, SmallOptions(3));
  EXPECT_FALSE(result.ok());
}

TEST(BirchTest, HigherDimensionalData) {
  GeneratorOptions g;
  g.dim = 8;
  g.k = 8;
  g.n_low = g.n_high = 150;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 12.0;
  g.seed = 61;
  auto gen = Generate(g);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = SmallOptions(8);
  o.dim = 8;
  o.resources.memory_bytes = 48 * 1024;
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  MatchReport match = MatchClusters(gen.value().actual,
                                    result.value().clusters);
  EXPECT_EQ(match.matched, 8);
  EXPECT_LT(match.mean_centroid_displacement, 2.0);
}

}  // namespace
}  // namespace birch
