// Parallel pipeline properties: the sharded Phase-1 build conserves CF
// mass exactly against the serial build for every shard count, the
// end-to-end parallel run matches the reproduction-test quality bars,
// results are deterministic for a fixed (seed, num_threads), and
// num_threads is validated. Runs under TSan as parallel_birch_test.tsan
// — the whole pipeline is the race-hunt surface.
#include <gtest/gtest.h>

#include <cmath>

#include "birch/birch.h"
#include "birch/phase1_parallel.h"
#include "datagen/generator.h"
#include "datagen/paper_datasets.h"
#include "eval/matching.h"
#include "eval/quality.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace birch {
namespace {

Phase1Options UnboundedPhase1(size_t dim, double threshold) {
  Phase1Options p;
  p.tree.dim = dim;
  p.tree.page_size = 512;
  p.tree.threshold = threshold;
  p.memory_budget_bytes = 0;  // unlimited: no rebuilds, exact totals
  p.disk_budget_bytes = 0;
  p.outlier_handling = false;
  p.delay_split = false;
  return p;
}

// CF additivity (paper Sec. 4.1): for any shard count, the merged tree
// plus its final outliers carries exactly the mass of the serial build.
TEST(ParallelBirchTest, ShardMergeConservesCfTotals) {
  GeneratorOptions g;
  g.k = 9;
  g.n_low = g.n_high = 400;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 8.0;
  g.seed = 601;
  auto gen = Generate(g);
  ASSERT_TRUE(gen.ok());
  const auto& data = gen.value().data;

  Phase1Builder serial(UnboundedPhase1(data.dim(), 0.7));
  ASSERT_TRUE(serial.AddDataset(data).ok());
  ASSERT_TRUE(serial.Finish().ok());
  CfVector want = serial.tree().TreeSummary();
  ASSERT_EQ(want.n(), static_cast<double>(data.size()));

  exec::ThreadPool pool(16);
  for (DealingMode dealing :
       {DealingMode::kAffinity, DealingMode::kRoundRobin}) {
    for (int shards : {1, 2, 4, 8, 16}) {
      ShardedPhase1Options opts;
      opts.phase1 = UnboundedPhase1(data.dim(), 0.7);
      opts.num_shards = shards;
      opts.dealing = dealing;
      DatasetSource source(&data);
      auto result_or = RunShardedPhase1(&source, opts, &pool);
      ASSERT_TRUE(result_or.ok()) << result_or.status().message();
      const auto& r = result_or.value();

      CfVector got = r.tree->TreeSummary();
      for (const auto& e : r.final_outliers) got.Add(e);
      const char* mode = DealingModeName(dealing);
      // N is a sum of unit weights: exact in either insertion order.
      EXPECT_EQ(got.n(), want.n()) << mode << " shards=" << shards;
      // LS/SS differ only by float summation order across shards.
      for (size_t t = 0; t < data.dim(); ++t) {
        EXPECT_NEAR(got.ls()[t], want.ls()[t],
                    1e-9 * (1.0 + std::fabs(want.ls()[t])))
            << mode << " shards=" << shards;
      }
      EXPECT_NEAR(got.ss(), want.ss(), 1e-9 * (1.0 + want.ss()))
          << mode << " shards=" << shards;
      EXPECT_EQ(r.stats.points_added, data.size());
      std::string why;
      EXPECT_TRUE(r.tree->CheckInvariants(&why)) << why;
    }
  }
}

BirchOptions PaperOpts(int k, int num_threads) {
  BirchOptions o;
  o.dim = 2;
  o.k = k;
  o.resources.memory_bytes = 24 * 1024;
  o.resources.disk_bytes = 5 * 1024;
  o.resources.page_size = 512;
  o.exec.num_threads = num_threads;
  return o;
}

// The parallel pipeline must clear the same quality bars the serial
// reproduction tests pin (matched clusters and weighted diameter).
TEST(ParallelBirchTest, ParallelRunMeetsReproductionQualityBars) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 300);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  auto r = ClusterDataset(g.data, PaperOpts(25, 4));
  ASSERT_TRUE(r.ok()) << r.status().message();

  MatchReport m = MatchClusters(g.actual, r.value().clusters);
  EXPECT_EQ(m.matched, 25);
  std::vector<CfVector> actual_cfs;
  for (const auto& a : g.actual) actual_cfs.push_back(a.cf);
  double d_actual = WeightedAverageDiameter(actual_cfs);
  double d_birch = WeightedAverageDiameter(r.value().clusters);
  EXPECT_LT(d_birch, 1.30 * d_actual);
  EXPECT_GT(d_birch, 0.55 * d_actual);
  EXPECT_EQ(r.value().labels.size(), g.data.size());
}

// Affinity dealing must clear the same quality bars as round-robin at
// every shard count: space partitioning changes which shard ingests a
// point, never the mass that reaches the merged tree, and the final
// clustering quality must hold regardless of how Phase 1 was dealt.
TEST(ParallelBirchTest, QualityBarsHoldForBothDealingsAcrossThreadCounts) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 200);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  std::vector<CfVector> actual_cfs;
  for (const auto& a : g.actual) actual_cfs.push_back(a.cf);
  const double d_actual = WeightedAverageDiameter(actual_cfs);

  for (DealingMode dealing :
       {DealingMode::kAffinity, DealingMode::kRoundRobin}) {
    for (int threads : {1, 2, 4, 8, 16}) {
      BirchOptions o = PaperOpts(25, threads);
      o.exec.dealing = dealing;
      auto r = ClusterDataset(g.data, o);
      ASSERT_TRUE(r.ok()) << DealingModeName(dealing) << " threads="
                          << threads << ": " << r.status().message();
      MatchReport m = MatchClusters(g.actual, r.value().clusters);
      EXPECT_EQ(m.matched, 25)
          << DealingModeName(dealing) << " threads=" << threads;
      double d_birch = WeightedAverageDiameter(r.value().clusters);
      EXPECT_LT(d_birch, 1.30 * d_actual)
          << DealingModeName(dealing) << " threads=" << threads;
      EXPECT_EQ(r.value().labels.size(), g.data.size());
    }
  }
}

// Fixed (seed, num_threads) must reproduce bitwise: round-robin
// sharding, fixed fold pairing, and chunk-ordered reductions leave no
// timing dependence in the output.
TEST(ParallelBirchTest, DeterministicForFixedThreadCount) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS2, 25, 200);
  ASSERT_TRUE(gen.ok());
  const auto& data = gen.value().data;
  for (int threads : {0, 4}) {
    auto a = ClusterDataset(data, PaperOpts(25, threads));
    auto b = ClusterDataset(data, PaperOpts(25, threads));
    ASSERT_TRUE(a.ok() && b.ok()) << "threads=" << threads;
    EXPECT_EQ(a.value().labels, b.value().labels) << "threads=" << threads;
    ASSERT_EQ(a.value().centroids.size(), b.value().centroids.size());
    for (size_t c = 0; c < a.value().centroids.size(); ++c) {
      EXPECT_EQ(a.value().centroids[c], b.value().centroids[c])
          << "threads=" << threads << " cluster=" << c;
    }
    EXPECT_EQ(a.value().final_threshold, b.value().final_threshold);
  }
}

// The splitter seed is the third leg of the determinism contract: a
// fixed (seed, num_threads, splitter_seed) triple reproduces bitwise,
// and changing only the splitter seed re-deals the stream into a
// different (but still valid) shard partition.
TEST(ParallelBirchTest, SplitterSeedIsPartOfDeterminismContract) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS2, 25, 150);
  ASSERT_TRUE(gen.ok());
  const auto& data = gen.value().data;
  BirchOptions o = PaperOpts(25, 4);
  o.exec.splitter_seed = 7;
  auto a = ClusterDataset(data, o);
  auto b = ClusterDataset(data, o);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().labels, b.value().labels);
  ASSERT_EQ(a.value().centroids.size(), b.value().centroids.size());
  for (size_t c = 0; c < a.value().centroids.size(); ++c) {
    EXPECT_EQ(a.value().centroids[c], b.value().centroids[c]);
  }

  o.exec.splitter_seed = 8;
  auto c = ClusterDataset(data, o);
  ASSERT_TRUE(c.ok()) << c.status().message();
  EXPECT_EQ(c.value().labels.size(), data.size());
}

// The streaming one-call API takes the same parallel path.
TEST(ParallelBirchTest, ClusterSourceParallelMatchesItself) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS3, 25, 200);
  ASSERT_TRUE(gen.ok());
  const auto& data = gen.value().data;
  DatasetSource s1(&data), s2(&data);
  auto a = ClusterSource(&s1, PaperOpts(25, 2));
  auto b = ClusterSource(&s2, PaperOpts(25, 2));
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().centroids.size(), b.value().centroids.size());
  for (size_t c = 0; c < a.value().centroids.size(); ++c) {
    EXPECT_EQ(a.value().centroids[c], b.value().centroids[c]);
  }
  EXPECT_GT(a.value().centroids.size(), 0u);
}

TEST(ParallelBirchTest, NumThreadsValidated) {
  BirchOptions o = PaperOpts(5, -1);
  EXPECT_FALSE(o.Validate().ok());
  o.exec.num_threads = BirchOptions::kMaxThreads + 1;
  EXPECT_FALSE(o.Validate().ok());
  o.exec.num_threads = BirchOptions::kMaxThreads;
  EXPECT_TRUE(o.Validate().ok());

  Dataset tiny(2);
  std::vector<double> p0 = {0.0, 0.0}, p1 = {1.0, 1.0};
  tiny.Append(p0);
  tiny.Append(p1);
  auto r = ClusterDataset(tiny, PaperOpts(2, -3));
  EXPECT_FALSE(r.ok());
}

// Sharded runs surface the exec instrumentation in the result's
// metrics snapshot: task counts and the shard gauge.
TEST(ParallelBirchTest, ParallelRunExportsExecMetrics) {
  if (!obs::Enabled()) GTEST_SKIP() << "obs disabled";
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 100);
  ASSERT_TRUE(gen.ok());
  auto r = ClusterDataset(gen.value().data, PaperOpts(25, 2));
  ASSERT_TRUE(r.ok());
  const auto& m = r.value().metrics;
  auto tasks = m.counters.find("exec/tasks");
  ASSERT_NE(tasks, m.counters.end());
  EXPECT_GT(tasks->second, 0u);
  auto shards = m.gauges.find("exec/shards");
  ASSERT_NE(shards, m.gauges.end());
  EXPECT_EQ(shards->second, 2.0);
  EXPECT_NE(m.gauges.find("exec/shard0/points"), m.gauges.end());
  EXPECT_NE(m.gauges.find("exec/shard1/points"), m.gauges.end());
}

}  // namespace
}  // namespace birch
