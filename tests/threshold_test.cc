// Tests for the threshold-growth heuristic (Sec. 5.1.3): the suggested
// sequence must be strictly increasing, respect the guaranteed-merge
// distance, and the regression helper must fit exactly on exact data.
#include "birch/threshold.h"

#include <gtest/gtest.h>

#include "pagestore/memory_tracker.h"
#include "util/random.h"

namespace birch {
namespace {

TEST(LeastSquaresFitTest, ExactLine) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {3, 5, 7, 9};  // y = 1 + 2x
  double a = 0, b = 0;
  ASSERT_TRUE(LeastSquaresFit(xs, ys, &a, &b));
  EXPECT_NEAR(a, 1.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(LeastSquaresFitTest, UnderdeterminedFails) {
  double a, b;
  EXPECT_FALSE(LeastSquaresFit({1.0}, {2.0}, &a, &b));
  EXPECT_FALSE(LeastSquaresFit({}, {}, &a, &b));
  // Constant x is singular.
  EXPECT_FALSE(LeastSquaresFit({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}, &a, &b));
}

TEST(LeastSquaresFitTest, NoisyLineRecovered) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(0, 10);
    xs.push_back(x);
    ys.push_back(4.0 - 0.5 * x + rng.Gaussian(0, 0.01));
  }
  double a, b;
  ASSERT_TRUE(LeastSquaresFit(xs, ys, &a, &b));
  EXPECT_NEAR(a, 4.0, 0.05);
  EXPECT_NEAR(b, -0.5, 0.05);
}

class ThresholdHeuristicTest : public ::testing::Test {
 protected:
  CfTreeOptions Opts(double t) {
    CfTreeOptions o;
    o.dim = 2;
    o.page_size = 256;
    o.threshold = t;
    return o;
  }
};

TEST_F(ThresholdHeuristicTest, StrictlyIncreasingFromZero) {
  MemoryTracker mem;
  CfTree tree(Opts(0.0), &mem);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    tree.InsertPoint(p);
  }
  ThresholdHeuristic h(2);
  double t1 = h.SuggestNext(tree, 500);
  EXPECT_GT(t1, 0.0);
  tree.Rebuild(t1);
  double t2 = h.SuggestNext(tree, 1000);
  EXPECT_GT(t2, t1);
  tree.Rebuild(t2);
  double t3 = h.SuggestNext(tree, 2000);
  EXPECT_GT(t3, t2);
}

TEST_F(ThresholdHeuristicTest, AtLeastGuaranteedMergeDistance) {
  MemoryTracker mem;
  CfTree tree(Opts(0.0), &mem);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> p = {rng.Uniform(0, 4), rng.Uniform(0, 4)};
    tree.InsertPoint(p);
  }
  ThresholdHeuristic h(2);
  double t1 = h.SuggestNext(tree, 300);
  EXPECT_GE(t1, tree.MostCrowdedLeafMinMerge() - 1e-12);
  // Rebuilding with the suggestion must actually shrink the tree.
  size_t before = tree.leaf_entry_count();
  tree.Rebuild(t1);
  EXPECT_LT(tree.leaf_entry_count(), before);
}

TEST_F(ThresholdHeuristicTest, KnownTotalCapsExtrapolation) {
  MemoryTracker mem;
  CfTree tree(Opts(1.0), &mem);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> p = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    tree.InsertPoint(p);
  }
  // When nearly all data has been seen, the volume signal stays modest.
  ThresholdHeuristic with_total(2, /*total_points=*/1001);
  ThresholdHeuristic without_total(2, 0);
  double t_with = with_total.SuggestNext(tree, 1000);
  double t_without = without_total.SuggestNext(tree, 1000);
  EXPECT_LE(t_with, t_without + 1e-12);
  EXPECT_GT(t_with, tree.threshold());
}

TEST_F(ThresholdHeuristicTest, DegenerateSingleEntryTreeStillGrows) {
  MemoryTracker mem;
  CfTree tree(Opts(0.0), &mem);
  std::vector<double> p = {1.0, 1.0};
  tree.InsertPoint(p);
  ThresholdHeuristic h(2);
  // One entry, zero radius everywhere: must still return something > 0.
  EXPECT_GT(h.SuggestNext(tree, 1), 0.0);
}

}  // namespace
}  // namespace birch
