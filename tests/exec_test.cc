// src/exec primitives: ThreadPool, ParallelFor chunking, bounded
// Channel. These are the foundation of the sharded Phase-1 / parallel
// Phase-3/4 paths, so the tests pin down exactly the properties those
// paths rely on: every submitted task runs, chunks tile [0, n) with
// deterministic boundaries, the serial (nullptr pool) path is one
// inline call, and the channel delivers everything in order with
// backpressure. The same file runs under TSan (exec_test.tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/channel.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"

namespace birch {
namespace exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  // Give the single worker a chance; the destructor drains anyway.
}

TEST(ThreadPoolTest, TasksFromManySubmittersAllRun) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&pool, &ran] {
        for (int i = 0; i < 50; ++i) {
          pool.Submit(
              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (auto& s : submitters) s.join();
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ParallelForTest, NullPoolIsOneInlineChunk) {
  EXPECT_EQ(ParallelForNumChunks(nullptr, 1000, 1), 1u);
  size_t calls = 0;
  ParallelFor(nullptr, 17, [&](size_t begin, size_t end, size_t chunk) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 17u);
    EXPECT_EQ(chunk, 0u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForTest, ChunkCountRespectsMinPerChunk) {
  ThreadPool pool(8);
  // 100 items at >= 64 per chunk: 2 chunks, not 8.
  EXPECT_EQ(ParallelForNumChunks(&pool, 100, 64), 2u);
  // Plenty of items: one chunk per worker.
  EXPECT_EQ(ParallelForNumChunks(&pool, 10000, 64), 8u);
  // Fewer items than workers: never more chunks than items.
  EXPECT_EQ(ParallelForNumChunks(&pool, 3, 1), 3u);
  EXPECT_EQ(ParallelForNumChunks(&pool, 0, 1), 1u);
}

TEST(ParallelForTest, ChunksTileTheRangeExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10001;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(
      &pool, n,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*min_per_chunk=*/16);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunkBoundariesAreDeterministic) {
  ThreadPool pool(4);
  const size_t n = 1003;
  const size_t nc = ParallelForNumChunks(&pool, n, 1);
  ASSERT_EQ(nc, 4u);
  std::vector<std::pair<size_t, size_t>> a(nc), b(nc);
  auto record = [](std::vector<std::pair<size_t, size_t>>* out) {
    return [out](size_t begin, size_t end, size_t chunk) {
      (*out)[chunk] = {begin, end};
    };
  };
  ParallelFor(&pool, n, record(&a), 1);
  ParallelFor(&pool, n, record(&b), 1);
  EXPECT_EQ(a, b);
  // Chunks are contiguous, ordered, and cover [0, n).
  EXPECT_EQ(a.front().first, 0u);
  EXPECT_EQ(a.back().second, n);
  for (size_t c = 1; c < nc; ++c) EXPECT_EQ(a[c - 1].second, a[c].first);
}

TEST(ParallelForTest, PerChunkPartialsFoldDeterministically) {
  ThreadPool pool(4);
  const size_t n = 5000;
  std::vector<double> xs(n);
  std::iota(xs.begin(), xs.end(), 1.0);
  auto chunked_sum = [&] {
    const size_t nc = ParallelForNumChunks(&pool, n, 16);
    std::vector<double> partial(nc, 0.0);
    ParallelFor(
        &pool, n,
        [&](size_t begin, size_t end, size_t chunk) {
          for (size_t i = begin; i < end; ++i) partial[chunk] += xs[i];
        },
        16);
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  double first = chunked_sum();
  for (int rep = 0; rep < 5; ++rep) {
    ASSERT_EQ(chunked_sum(), first);  // bitwise: same chunking, same fold
  }
}

TEST(ChannelTest, DeliversInOrderAcrossThreads) {
  Channel<int> ch(4);  // capacity << item count: exercises backpressure
  std::vector<int> got;
  std::thread consumer([&] {
    int v = 0;
    while (ch.Pop(&v)) got.push_back(v);
  });
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(ch.Push(i));
  ch.Close();
  consumer.join();
  ASSERT_EQ(got.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(got[i], i);
}

TEST(ChannelTest, CloseDeliversQueuedItemsThenStops) {
  Channel<int> ch(8);
  ASSERT_TRUE(ch.Push(1));
  ASSERT_TRUE(ch.Push(2));
  ch.Close();
  ch.Close();  // idempotent
  EXPECT_FALSE(ch.Push(3));  // dropped
  int v = 0;
  EXPECT_TRUE(ch.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ch.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ch.Pop(&v));  // drained
}

TEST(ChannelTest, CloseUnblocksAWaitingConsumer) {
  Channel<int> ch(2);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(ch.Pop(&v));  // blocks until Close, then false
  });
  ch.Close();
  consumer.join();
}

TEST(ChannelTest, CapacityClampedToOne) {
  Channel<int> ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
}

}  // namespace
}  // namespace exec
}  // namespace birch
