// Phase-1 driver tests: the scan must finish inside the memory budget
// (modulo the documented overdraft slack), conserve points between tree
// and outliers, trigger rebuilds, write/re-absorb outliers through the
// simulated disk, and honor the delay-split option.
#include "birch/phase1.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "util/random.h"

namespace birch {
namespace {

Phase1Options TightOptions(size_t memory = 16 * 1024) {
  Phase1Options o;
  o.tree.dim = 2;
  o.tree.page_size = 512;
  o.memory_budget_bytes = memory;
  o.disk_budget_bytes = memory / 5;
  return o;
}

GeneratedData ClusteredData(int k, int n_per, uint64_t seed,
                            double noise = 0.0) {
  GeneratorOptions g;
  g.k = k;
  g.n_low = g.n_high = n_per;
  g.r_low = g.r_high = 1.0;
  g.grid_spacing = 10.0;
  g.noise_fraction = noise;
  g.seed = seed;
  auto data = Generate(g);
  EXPECT_TRUE(data.ok());
  return std::move(data).ValueOrDie();
}

double TotalPoints(const Phase1Builder& b) {
  double total = b.tree().TreeSummary().n();
  for (const auto& e : b.final_outliers()) total += e.n();
  return total;
}

TEST(Phase1Test, AllPointsAccountedFor) {
  auto gen = ClusteredData(16, 500, 21);
  Phase1Builder builder(TightOptions());
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_NEAR(TotalPoints(builder), static_cast<double>(gen.data.size()),
              1e-6);
}

TEST(Phase1Test, MemoryBudgetRespectedAtFinish) {
  auto gen = ClusteredData(16, 500, 22);
  Phase1Options o = TightOptions(12 * 1024);
  Phase1Builder builder(o);
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_LE(builder.memory().used(),
            o.memory_budget_bytes + 2 * o.tree.page_size);
  EXPECT_GT(builder.stats().rebuilds, 0u);
  EXPECT_GT(builder.stats().final_threshold, 0.0);
}

TEST(Phase1Test, NoRebuildWhenMemoryAmple) {
  auto gen = ClusteredData(4, 100, 23);
  Phase1Options o = TightOptions(/*memory=*/0);  // unlimited
  o.tree.threshold = 0.5;
  Phase1Builder builder(o);
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.stats().rebuilds, 0u);
  EXPECT_TRUE(builder.final_outliers().empty());
}

TEST(Phase1Test, LeafEntriesBoundedByMemory) {
  auto gen = ClusteredData(16, 1000, 24);
  Phase1Options o = TightOptions(10 * 1024);
  Phase1Builder builder(o);
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  size_t max_nodes = o.memory_budget_bytes / o.tree.page_size + 2;
  EXPECT_LE(builder.tree().node_count(), max_nodes);
}

TEST(Phase1Test, NoisyDataYieldsOutliers) {
  auto gen = ClusteredData(8, 800, 25, /*noise=*/0.10);
  Phase1Options o = TightOptions(12 * 1024);
  Phase1Builder builder(o);
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_GT(builder.stats().outlier_entries_spilled, 0u);
  EXPECT_NEAR(TotalPoints(builder), static_cast<double>(gen.data.size()),
              1e-6);
}

TEST(Phase1Test, OutlierHandlingOffKeepsEverythingInTree) {
  auto gen = ClusteredData(8, 400, 26, /*noise=*/0.05);
  Phase1Options o = TightOptions(16 * 1024);
  o.outlier_handling = false;
  o.delay_split = false;
  Phase1Builder builder(o);
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.stats().outlier_entries_spilled, 0u);
  EXPECT_TRUE(builder.final_outliers().empty());
  EXPECT_NEAR(builder.tree().TreeSummary().n(),
              static_cast<double>(gen.data.size()), 1e-6);
}

TEST(Phase1Test, DelaySplitSpillsPoints) {
  auto gen = ClusteredData(16, 800, 27);
  Phase1Options with = TightOptions(10 * 1024);
  with.delay_split = true;
  Phase1Builder b1(with);
  ASSERT_TRUE(b1.AddDataset(gen.data).ok());
  ASSERT_TRUE(b1.Finish().ok());
  EXPECT_GT(b1.stats().points_delay_spilled, 0u);
  EXPECT_NEAR(TotalPoints(b1), static_cast<double>(gen.data.size()), 1e-6);

  Phase1Options without = TightOptions(10 * 1024);
  without.delay_split = false;
  Phase1Builder b2(without);
  ASSERT_TRUE(b2.AddDataset(gen.data).ok());
  ASSERT_TRUE(b2.Finish().ok());
  EXPECT_EQ(b2.stats().points_delay_spilled, 0u);
}

TEST(Phase1Test, WeightedPointsPreserveTotalWeight) {
  Phase1Builder builder(TightOptions());
  Rng rng(28);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> p = {rng.Uniform(0, 40), rng.Uniform(0, 40)};
    double w = 1.0 + rng.UniformInt(uint64_t{5});
    ASSERT_TRUE(builder.Add(p, w).ok());
    total += w;
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_NEAR(TotalPoints(builder), total, 1e-6);
}

TEST(Phase1Test, ApiMisuseRejected) {
  Phase1Builder builder(TightOptions());
  std::vector<double> p3 = {1, 2, 3};
  EXPECT_EQ(builder.Add(p3).code(), StatusCode::kInvalidArgument);
  std::vector<double> p2 = {1, 2};
  EXPECT_EQ(builder.Add(p2, 0.0).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(builder.Add(p2).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.Finish().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(builder.Add(p2).code(), StatusCode::kFailedPrecondition);
}

TEST(Phase1Test, TreeInvariantsAfterHeavyChurn) {
  auto gen = ClusteredData(25, 600, 29, /*noise=*/0.05);
  Phase1Options o = TightOptions(10 * 1024);
  Phase1Builder builder(o);
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  std::string why;
  EXPECT_TRUE(builder.tree().CheckInvariants(&why)) << why;
}

TEST(Phase1Test, ThresholdSequenceRecordedInStats) {
  auto gen = ClusteredData(16, 800, 30);
  Phase1Builder builder(TightOptions(8 * 1024));
  ASSERT_TRUE(builder.AddDataset(gen.data).ok());
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_GT(builder.stats().rebuilds, 0u);
  EXPECT_DOUBLE_EQ(builder.stats().final_threshold,
                   builder.tree().threshold());
  EXPECT_EQ(builder.stats().points_added, gen.data.size());
}

}  // namespace
}  // namespace birch
