// Tests for the D0-D4 inter-cluster distances (paper Sec. 3): each
// CF-computed metric must agree with its brute-force definition over
// the raw points, and metric axioms that hold must hold.
#include "birch/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace birch {
namespace {

std::vector<std::vector<double>> Cloud(Rng* rng, size_t n, size_t dim,
                                       double center) {
  std::vector<std::vector<double>> pts(n, std::vector<double>(dim));
  for (auto& p : pts) {
    for (auto& v : p) v = rng->Gaussian(center, 1.0);
  }
  return pts;
}

CfVector CfOf(const std::vector<std::vector<double>>& pts) {
  CfVector cf(pts[0].size());
  for (const auto& p : pts) cf.AddPoint(p);
  return cf;
}

TEST(MetricsTest, D0IsCentroidEuclidean) {
  CfVector a = CfVector::FromPoint(std::vector<double>{0.0, 0.0});
  CfVector b = CfVector::FromPoint(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(CentroidEuclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(DistanceMetric::kD0, a, b), 5.0);
}

TEST(MetricsTest, D1IsCentroidManhattan) {
  CfVector a = CfVector::FromPoint(std::vector<double>{0.0, 0.0});
  CfVector b = CfVector::FromPoint(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(CentroidManhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(Distance(DistanceMetric::kD1, a, b), 7.0);
}

TEST(MetricsTest, SingletonD2EqualsPointDistance) {
  // For singleton clusters, the average inter-cluster distance is just
  // the distance between the two points.
  CfVector a = CfVector::FromPoint(std::vector<double>{1.0, 2.0});
  CfVector b = CfVector::FromPoint(std::vector<double>{4.0, 6.0});
  EXPECT_NEAR(AverageInterCluster(a, b), 5.0, 1e-12);
}

TEST(MetricsTest, D4OfSingletonsIsScaledDistance) {
  // Merging two singletons increases total squared deviation by
  // d^2 * (1*1)/(1+1) = d^2/2.
  CfVector a = CfVector::FromPoint(std::vector<double>{0.0});
  CfVector b = CfVector::FromPoint(std::vector<double>{2.0});
  EXPECT_NEAR(VarianceIncrease(a, b), std::sqrt(2.0), 1e-12);
}

TEST(MetricsTest, MetricNames) {
  EXPECT_STREQ(MetricName(DistanceMetric::kD0), "D0");
  EXPECT_STREQ(MetricName(DistanceMetric::kD4), "D4");
}

class MetricsPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MetricsPropertyTest, D2MatchesBruteForce) {
  size_t dim = GetParam();
  Rng rng(100 + dim);
  auto pa = Cloud(&rng, 17, dim, 0.0);
  auto pb = Cloud(&rng, 23, dim, 4.0);
  CfVector a = CfOf(pa), b = CfOf(pb);

  double sum_sq = 0.0;
  for (const auto& x : pa) {
    for (const auto& y : pb) sum_sq += SquaredDistance(x, y);
  }
  double brute = std::sqrt(sum_sq / (17.0 * 23.0));
  EXPECT_NEAR(AverageInterCluster(a, b), brute, 1e-8 * (1.0 + brute));
}

TEST_P(MetricsPropertyTest, D3IsMergedDiameter) {
  size_t dim = GetParam();
  Rng rng(200 + dim);
  auto pa = Cloud(&rng, 11, dim, 0.0);
  auto pb = Cloud(&rng, 13, dim, 3.0);
  CfVector a = CfOf(pa), b = CfOf(pb);

  auto all = pa;
  all.insert(all.end(), pb.begin(), pb.end());
  double sum_sq = 0.0;
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = 0; j < all.size(); ++j) {
      if (i != j) sum_sq += SquaredDistance(all[i], all[j]);
    }
  }
  double n = static_cast<double>(all.size());
  double brute = std::sqrt(sum_sq / (n * (n - 1.0)));
  EXPECT_NEAR(AverageIntraCluster(a, b), brute, 1e-8 * (1.0 + brute));
}

TEST_P(MetricsPropertyTest, D4MatchesSseIncrease) {
  size_t dim = GetParam();
  Rng rng(300 + dim);
  auto pa = Cloud(&rng, 9, dim, -2.0);
  auto pb = Cloud(&rng, 21, dim, 2.0);
  CfVector a = CfOf(pa), b = CfOf(pb);

  auto sse = [](const std::vector<std::vector<double>>& pts) {
    CfVector cf = CfOf(pts);
    auto c = cf.Centroid();
    double s = 0.0;
    for (const auto& p : pts) s += SquaredDistance(p, c);
    return s;
  };
  auto all = pa;
  all.insert(all.end(), pb.begin(), pb.end());
  double inc = sse(all) - sse(pa) - sse(pb);
  EXPECT_NEAR(VarianceIncrease(a, b), std::sqrt(inc),
              1e-7 * (1.0 + std::sqrt(inc)));
}

TEST_P(MetricsPropertyTest, D4WardFormula)  {
  // D4^2 == N1*N2/(N1+N2) * ||c1-c2||^2 (Ward's method identity).
  size_t dim = GetParam();
  Rng rng(400 + dim);
  auto pa = Cloud(&rng, 15, dim, 0.0);
  auto pb = Cloud(&rng, 6, dim, 5.0);
  CfVector a = CfOf(pa), b = CfOf(pb);
  double d0 = CentroidEuclidean(a, b);
  double ward = std::sqrt(a.n() * b.n() / (a.n() + b.n())) * d0;
  EXPECT_NEAR(VarianceIncrease(a, b), ward, 1e-8 * (1.0 + ward));
}

TEST_P(MetricsPropertyTest, AllMetricsSymmetricAndNonNegative) {
  size_t dim = GetParam();
  Rng rng(500 + dim);
  CfVector a = CfOf(Cloud(&rng, 8, dim, 1.0));
  CfVector b = CfOf(Cloud(&rng, 12, dim, -1.0));
  for (auto m : {DistanceMetric::kD0, DistanceMetric::kD1,
                 DistanceMetric::kD2, DistanceMetric::kD3,
                 DistanceMetric::kD4}) {
    double ab = Distance(m, a, b);
    double ba = Distance(m, b, a);
    EXPECT_GE(ab, 0.0) << MetricName(m);
    EXPECT_NEAR(ab, ba, 1e-10 * (1.0 + ab)) << MetricName(m);
  }
}

TEST_P(MetricsPropertyTest, D0TriangleInequality) {
  size_t dim = GetParam();
  Rng rng(600 + dim);
  CfVector a = CfOf(Cloud(&rng, 5, dim, 0.0));
  CfVector b = CfOf(Cloud(&rng, 5, dim, 2.0));
  CfVector c = CfOf(Cloud(&rng, 5, dim, 4.0));
  EXPECT_LE(CentroidEuclidean(a, c),
            CentroidEuclidean(a, b) + CentroidEuclidean(b, c) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, MetricsPropertyTest,
                         ::testing::Values<size_t>(1, 2, 3, 5, 10));

}  // namespace
}  // namespace birch
