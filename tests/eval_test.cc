// Eval-library tests: quality metrics, cluster matching and label
// accuracy, and the ASCII visualizer.
#include <cmath>

#include <gtest/gtest.h>

#include "eval/matching.h"
#include "eval/quality.h"
#include "eval/visualize.h"
#include "util/random.h"

namespace birch {
namespace {

CfVector BlobCf(double cx, double cy, double sigma, int n, uint64_t seed) {
  Rng rng(seed);
  CfVector cf(2);
  for (int i = 0; i < n; ++i) {
    std::vector<double> p = {rng.Gaussian(cx, sigma),
                             rng.Gaussian(cy, sigma)};
    cf.AddPoint(p);
  }
  return cf;
}

TEST(QualityTest, WeightedAverageDiameterWeighsByCount) {
  // Tight big cluster + loose small cluster.
  CfVector tight = BlobCf(0, 0, 0.1, 900, 71);
  CfVector loose = BlobCf(50, 0, 5.0, 100, 72);
  std::vector<CfVector> clusters = {tight, loose};
  double wd = WeightedAverageDiameter(clusters);
  // Dominated by the tight cluster: well below the plain average.
  double plain = (tight.Diameter() + loose.Diameter()) / 2.0;
  EXPECT_LT(wd, plain);
  EXPECT_NEAR(wd,
              (900.0 * tight.Diameter() + 100.0 * loose.Diameter()) / 1000.0,
              1e-12);
}

TEST(QualityTest, EmptyClustersIgnored) {
  std::vector<CfVector> clusters = {CfVector(2), BlobCf(0, 0, 1.0, 50, 73)};
  EXPECT_GT(WeightedAverageRadius(clusters), 0.0);
  EXPECT_GT(WeightedAverageDiameter(clusters), 0.0);
  std::vector<CfVector> none;
  EXPECT_EQ(WeightedAverageDiameter(none), 0.0);
}

TEST(QualityTest, ClustersFromLabelsSkipsOutliers) {
  Dataset data(2);
  std::vector<double> a = {0, 0}, b = {1, 1}, c = {9, 9};
  data.Append(a);
  data.Append(b);
  data.Append(c);
  std::vector<int> labels = {0, 0, -1};
  auto clusters = ClustersFromLabels(data, labels);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_NEAR(clusters[0].n(), 2.0, 1e-12);
}

TEST(QualityTest, TotalSseSumsDeviations) {
  CfVector c1 = BlobCf(0, 0, 1.0, 100, 74);
  CfVector c2 = BlobCf(10, 0, 2.0, 100, 75);
  std::vector<CfVector> clusters = {c1, c2};
  EXPECT_NEAR(TotalSse(clusters),
              c1.SumSquaredDeviation() + c2.SumSquaredDeviation(), 1e-9);
}

std::vector<ActualCluster> MakeActual(
    const std::vector<std::vector<double>>& centers, int n, double sigma) {
  std::vector<ActualCluster> actual;
  uint64_t seed = 80;
  for (const auto& c : centers) {
    ActualCluster a;
    a.center = c;
    a.points = n;
    a.cf = BlobCf(c[0], c[1], sigma, n, seed++);
    actual.push_back(a);
  }
  return actual;
}

TEST(MatchingTest, PerfectMatch) {
  auto actual = MakeActual({{0, 0}, {20, 0}, {0, 20}}, 100, 1.0);
  std::vector<CfVector> found = {actual[1].cf, actual[2].cf, actual[0].cf};
  MatchReport report = MatchClusters(actual, found);
  EXPECT_EQ(report.matched, 3);
  EXPECT_EQ(report.match[0], 2);
  EXPECT_EQ(report.match[1], 0);
  EXPECT_EQ(report.match[2], 1);
  EXPECT_LT(report.mean_centroid_displacement, 0.5);
  EXPECT_LT(report.mean_count_deviation, 0.01);
  EXPECT_LT(report.mean_radius_deviation, 0.01);
}

TEST(MatchingTest, FewerFoundThanActual) {
  auto actual = MakeActual({{0, 0}, {20, 0}, {0, 20}}, 50, 1.0);
  std::vector<CfVector> found = {actual[0].cf};
  MatchReport report = MatchClusters(actual, found);
  EXPECT_EQ(report.matched, 1);
  int unmatched = 0;
  for (int m : report.match) unmatched += (m == -1);
  EXPECT_EQ(unmatched, 2);
}

TEST(MatchingTest, LabelAccuracyCountsAgreement) {
  auto actual = MakeActual({{0, 0}, {20, 0}}, 2, 0.5);
  std::vector<CfVector> found = {actual[0].cf, actual[1].cf};
  MatchReport report = MatchClusters(actual, found);
  // truth:   0 0 1 1, noise -1
  // labels:  0 1 1 1, outlier -1
  std::vector<int> truth = {0, 0, 1, 1, -1};
  std::vector<int> labels = {0, 1, 1, 1, -1};
  double acc = LabelAccuracy(truth, labels, report);
  EXPECT_NEAR(acc, 3.0 / 4.0, 1e-12);  // noise skipped
  double acc_noise = LabelAccuracy(truth, labels, report,
                                   /*noise_as_outlier=*/true);
  EXPECT_NEAR(acc_noise, 4.0 / 5.0, 1e-12);
}

TEST(VisualizeTest, RendersCirclesForClusters) {
  std::vector<CfVector> clusters = {BlobCf(0, 0, 1.0, 100, 90),
                                    BlobCf(30, 10, 2.0, 100, 91)};
  std::string art = RenderClusters(clusters);
  EXPECT_FALSE(art.empty());
  // Both glyphs and center marks appear.
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);
  EXPECT_NE(art.find('+'), std::string::npos);
  // 40 rows by default.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 40);
}

TEST(VisualizeTest, NonTwoDReturnsEmpty) {
  std::vector<CfVector> clusters = {
      CfVector::FromPoint(std::vector<double>{1.0, 2.0, 3.0})};
  EXPECT_TRUE(RenderClusters(clusters).empty());
  EXPECT_TRUE(RenderClusters({}).empty());
}

}  // namespace
}  // namespace birch
