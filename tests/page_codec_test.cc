// Tests for the page compression layer: codec round trips on random
// and adversarial inputs, the ratio >= 1 raw-fallback guarantee, and
// fully bounds-checked envelope decoding — corrupt or hostile bytes
// yield kDataLoss, never UB (this suite also runs under ASan/UBSan as
// page_codec_test.san).
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/page_codec.h"
#include "util/random.h"

namespace birch {
namespace {

std::vector<uint8_t> RandomBytes(Rng* rng, size_t n) {
  std::vector<uint8_t> out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng->Next() & 0xffu);
  return out;
}

// A CF-page-shaped payload: runs of similar-magnitude doubles followed
// by a zero tail — the case the delta + shuffle + RLE pipeline exists
// for. Must compress well below raw.
std::vector<uint8_t> CfLikePage(Rng* rng, size_t n_doubles, size_t page) {
  std::vector<double> vals(n_doubles);
  double base = 1000.0 + rng->NextDouble();
  for (auto& v : vals) v = base + rng->NextDouble() * 0.01;
  std::vector<uint8_t> out(page, 0);
  size_t n = std::min(page, n_doubles * sizeof(double));
  if (n > 0) std::memcpy(out.data(), vals.data(), n);
  return out;
}

TEST(PageCodecTest, NamesRoundTrip) {
  for (auto k : {PageCodecKind::kNone, PageCodecKind::kDeltaRle}) {
    PageCodecKind back;
    ASSERT_TRUE(ParsePageCodecName(PageCodecName(k), &back));
    EXPECT_EQ(back, k);
  }
  PageCodecKind out;
  EXPECT_FALSE(ParsePageCodecName("zstd", &out));
  EXPECT_FALSE(ParsePageCodecName("", &out));
}

TEST(PageCodecTest, RegistryKnowsEveryKind) {
  EXPECT_EQ(GetPageCodec(PageCodecKind::kNone), nullptr);
  const PageCodec* c = GetPageCodec(PageCodecKind::kDeltaRle);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind(), PageCodecKind::kDeltaRle);
}

// Property: Decode(Encode(x)) == x for every input the codec accepts,
// across sizes that exercise the word/tail split (0, 1, 7, 8, 9 bytes,
// non-multiples of 8, typical page sizes).
TEST(PageCodecTest, EnvelopeRoundTripsAllSizesAndShapes) {
  Rng rng(31);
  const size_t sizes[] = {0, 1, 7, 8, 9, 15, 63, 64, 100, 1000, 1024, 4096};
  for (size_t n : sizes) {
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<uint8_t> raw;
      switch (variant) {
        case 0:  // incompressible noise -> exercises raw fallback
          raw = RandomBytes(&rng, n);
          break;
        case 1:  // all zeros -> maximal compression
          raw.assign(n, 0);
          break;
        default:  // CF-like doubles + zero tail
          raw = CfLikePage(&rng, n / 16, n);
      }
      std::vector<uint8_t> stored =
          EncodePageEnvelope(PageCodecKind::kDeltaRle, raw);
      // Ratio >= 1 unconditionally: the envelope never exceeds raw
      // plus its fixed header.
      EXPECT_LE(stored.size(), raw.size() + kPageEnvelopeHeaderBytes)
          << "size " << n << " variant " << variant;
      std::vector<uint8_t> back;
      ASSERT_TRUE(DecodePageEnvelope(stored, &back).ok())
          << "size " << n << " variant " << variant;
      EXPECT_EQ(back, raw) << "size " << n << " variant " << variant;
    }
  }
}

TEST(PageCodecTest, CfLikePagesCompressWell) {
  Rng rng(77);
  std::vector<uint8_t> raw = CfLikePage(&rng, 32, 1024);
  std::vector<uint8_t> stored =
      EncodePageEnvelope(PageCodecKind::kDeltaRle, raw);
  EXPECT_FALSE(PageEnvelopeIsRawFallback(stored));
  // The zero tail alone guarantees a big win on this shape.
  EXPECT_LT(stored.size(), raw.size() / 2);
}

TEST(PageCodecTest, IncompressibleInputFallsBackRatioAtLeastOne) {
  Rng rng(123);
  std::vector<uint8_t> raw = RandomBytes(&rng, 1024);
  std::vector<uint8_t> stored =
      EncodePageEnvelope(PageCodecKind::kDeltaRle, raw);
  EXPECT_TRUE(PageEnvelopeIsRawFallback(stored));
  EXPECT_EQ(stored.size(), raw.size() + kPageEnvelopeHeaderBytes);
  std::vector<uint8_t> back;
  ASSERT_TRUE(DecodePageEnvelope(stored, &back).ok());
  EXPECT_EQ(back, raw);
}

// Random round trips across many seeds: the fuzz-shaped property pass.
TEST(PageCodecTest, RandomRoundTripProperty) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    size_t n = 1 + static_cast<size_t>(rng.Next() % 2048);
    std::vector<uint8_t> raw = RandomBytes(&rng, n);
    // Sprinkle zero runs so both the literal and run paths fire.
    for (size_t i = 0; i + 16 < raw.size(); i += 64) {
      std::memset(raw.data() + i, 0, 16);
    }
    std::vector<uint8_t> stored =
        EncodePageEnvelope(PageCodecKind::kDeltaRle, raw);
    std::vector<uint8_t> back;
    ASSERT_TRUE(DecodePageEnvelope(stored, &back).ok()) << "seed " << seed;
    EXPECT_EQ(back, raw) << "seed " << seed;
  }
}

TEST(PageCodecTest, HeaderValidationRejectsDamage) {
  Rng rng(9);
  std::vector<uint8_t> raw = CfLikePage(&rng, 16, 256);
  std::vector<uint8_t> good =
      EncodePageEnvelope(PageCodecKind::kDeltaRle, raw);
  std::vector<uint8_t> back;

  // Shorter than the header.
  std::vector<uint8_t> tiny(good.begin(),
                            good.begin() + kPageEnvelopeHeaderBytes - 1);
  EXPECT_EQ(DecodePageEnvelope(tiny, &back).code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodePageEnvelope({}, &back).code(), StatusCode::kDataLoss);

  // Bad magic.
  std::vector<uint8_t> bad = good;
  bad[0] ^= 0xff;
  EXPECT_EQ(DecodePageEnvelope(bad, &back).code(), StatusCode::kDataLoss);

  // Unsupported version.
  bad = good;
  bad[1] = 0x7e;
  EXPECT_EQ(DecodePageEnvelope(bad, &back).code(), StatusCode::kDataLoss);

  // Unknown codec id.
  bad = good;
  bad[2] = 0x44;
  EXPECT_EQ(DecodePageEnvelope(bad, &back).code(), StatusCode::kDataLoss);

  // Payload-length field inconsistent with the buffer.
  bad = good;
  bad[8] ^= 0x01;
  EXPECT_EQ(DecodePageEnvelope(bad, &back).code(), StatusCode::kDataLoss);

  // Truncated payload.
  bad = good;
  bad.pop_back();
  EXPECT_EQ(DecodePageEnvelope(bad, &back).code(), StatusCode::kDataLoss);

  // Raw-fallback flag set but comp_len != raw_len.
  bad = good;
  bad[3] |= 0x01;
  EXPECT_EQ(DecodePageEnvelope(bad, &back).code(), StatusCode::kDataLoss);
}

// Every single-bit flip of a compressed envelope must decode to either
// OK (the flip hit a spot the format tolerates, e.g. inside a literal
// byte — the PageStore CRC catches those before decode in production)
// or kDataLoss. Never a crash, never out-of-bounds — the .san variant
// of this test is the actual assertion of that.
TEST(PageCodecTest, BitFlippedEnvelopesNeverMisbehave) {
  Rng rng(55);
  std::vector<uint8_t> raw = CfLikePage(&rng, 24, 512);
  std::vector<uint8_t> good =
      EncodePageEnvelope(PageCodecKind::kDeltaRle, raw);
  ASSERT_FALSE(PageEnvelopeIsRawFallback(good));
  std::vector<uint8_t> back;
  for (size_t bit = 0; bit < good.size() * 8; ++bit) {
    std::vector<uint8_t> mut = good;
    mut[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    Status st = DecodePageEnvelope(mut, &back);
    if (st.ok()) {
      // A tolerated flip must still reconstruct exactly raw_len bytes.
      EXPECT_EQ(back.size(), raw.size()) << "bit " << bit;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kDataLoss) << "bit " << bit;
    }
  }
}

// Adversarial RLE payloads: hand-built compressed streams that lie
// about lengths in every way the decoder checks for.
TEST(PageCodecTest, AdversarialRlePayloadsAreDataLoss) {
  const PageCodec* codec = GetPageCodec(PageCodecKind::kDeltaRle);
  ASSERT_NE(codec, nullptr);
  std::vector<uint8_t> out;

  // Truncated zero run: a 0x00 marker with no run length after it.
  std::vector<uint8_t> p = {0x01, 0x02, 0x00};
  EXPECT_EQ(codec->Decode(p, 16, &out).code(), StatusCode::kDataLoss);

  // Zero-length run.
  p = {0x00, 0x00};
  EXPECT_EQ(codec->Decode(p, 16, &out).code(), StatusCode::kDataLoss);

  // Run overruns the declared output size.
  p = {0x00, 0xff};
  EXPECT_EQ(codec->Decode(p, 16, &out).code(), StatusCode::kDataLoss);

  // Literals overrun the output.
  p.assign(32, 0x5a);
  EXPECT_EQ(codec->Decode(p, 16, &out).code(), StatusCode::kDataLoss);

  // Payload underruns the output (too few decoded bytes).
  p = {0x01};
  EXPECT_EQ(codec->Decode(p, 16, &out).code(), StatusCode::kDataLoss);

  // Empty payload for a nonzero expectation.
  p.clear();
  EXPECT_EQ(codec->Decode(p, 16, &out).code(), StatusCode::kDataLoss);
}

// A crafted header whose u32 raw_len is maxed must be rejected before
// any allocation: zero-RLE expands at most 255x per payload byte, so a
// tiny payload can never legitimately decode to gigabytes. (This is
// the memory-exhaustion guard — without it a 12-byte envelope demands
// a 4 GB zeroed buffer.)
TEST(PageCodecTest, ImplausibleRawLengthIsRejectedWithoutAllocating) {
  std::vector<uint8_t> junk(kPageEnvelopeHeaderBytes + 4, 0x01);
  junk[0] = kPageEnvelopeMagic;
  junk[1] = kPageEnvelopeVersion;
  junk[2] = static_cast<uint8_t>(PageCodecKind::kDeltaRle);
  junk[3] = 0;
  uint32_t raw_len = 0xffffffffu;
  uint32_t comp_len = 4;
  std::memcpy(junk.data() + 4, &raw_len, 4);
  std::memcpy(junk.data() + 8, &comp_len, 4);
  std::vector<uint8_t> back;
  EXPECT_EQ(DecodePageEnvelope(junk, &back).code(), StatusCode::kDataLoss);
}

// Fuzz-shaped decode sweep: random garbage through the envelope path.
// Anything may be rejected; nothing may crash or read out of bounds.
TEST(PageCodecTest, RandomGarbageEnvelopesNeverCrash) {
  Rng rng(2026);
  std::vector<uint8_t> back;
  for (int i = 0; i < 500; ++i) {
    size_t n = static_cast<size_t>(rng.Next() % 300);
    std::vector<uint8_t> junk = RandomBytes(&rng, n);
    // Half the time, make the header plausible so the payload decoder
    // actually runs instead of the magic check rejecting everything.
    if (n >= kPageEnvelopeHeaderBytes && (i % 2) == 0) {
      junk[0] = kPageEnvelopeMagic;
      junk[1] = kPageEnvelopeVersion;
      junk[2] = static_cast<uint8_t>(PageCodecKind::kDeltaRle);
      junk[3] &= 0x01;
      uint32_t comp =
          static_cast<uint32_t>(n - kPageEnvelopeHeaderBytes);
      std::memcpy(junk.data() + 8, &comp, 4);
    }
    Status st = DecodePageEnvelope(junk, &back);
    if (!st.ok()) EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  }
}

}  // namespace
}  // namespace birch
