// Baseline-algorithm tests: k-means and CLARANS must both recover
// well-separated clusters; CLARANS must descend (cost decreases vs the
// initial random medoids) and respect its parameters; the hierarchical
// wrapper must match Phase-3 behaviour on raw points.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/clara.h"
#include "baselines/clarans.h"
#include "baselines/hierarchical.h"
#include "baselines/kmeans.h"
#include "datagen/generator.h"
#include "eval/matching.h"

namespace birch {
namespace {

GeneratedData Blobs(int k, int n_per, uint64_t seed) {
  GeneratorOptions o;
  o.k = k;
  o.n_low = o.n_high = n_per;
  o.r_low = o.r_high = 1.0;
  o.grid_spacing = 20.0;
  o.seed = seed;
  auto gen = Generate(o);
  EXPECT_TRUE(gen.ok());
  return std::move(gen).ValueOrDie();
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  auto g = Blobs(4, 200, 101);
  KMeansOptions o;
  o.k = 4;
  auto result = KMeans(g.data, o);
  ASSERT_TRUE(result.ok());
  MatchReport report = MatchClusters(g.actual, result.value().clusters);
  EXPECT_EQ(report.matched, 4);
  EXPECT_LT(report.mean_centroid_displacement, 0.5);
  EXPECT_GT(LabelAccuracy(g.truth, result.value().labels, report), 0.99);
}

TEST(KMeansTest, SseDecreasesWithMoreClusters) {
  auto g = Blobs(6, 100, 102);
  KMeansOptions o2, o6;
  o2.k = 2;
  o6.k = 6;
  auto r2 = KMeans(g.data, o2);
  auto r6 = KMeans(g.data, o6);
  ASSERT_TRUE(r2.ok() && r6.ok());
  EXPECT_LT(r6.value().sse, r2.value().sse);
}

TEST(KMeansTest, InvalidParamsRejected) {
  auto g = Blobs(2, 10, 103);
  KMeansOptions o;
  o.k = 0;
  EXPECT_FALSE(KMeans(g.data, o).ok());
  o.k = 100;  // > N
  EXPECT_FALSE(KMeans(g.data, o).ok());
}

TEST(KMeansTest, DeterministicForSeed) {
  auto g = Blobs(3, 100, 104);
  KMeansOptions o;
  o.k = 3;
  o.seed = 7;
  auto r1 = KMeans(g.data, o);
  auto r2 = KMeans(g.data, o);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().labels, r2.value().labels);
  EXPECT_EQ(r1.value().sse, r2.value().sse);
}

TEST(ClaransTest, RecoversSeparatedBlobs) {
  auto g = Blobs(4, 150, 105);
  ClaransOptions o;
  o.k = 4;
  auto result = Clarans(g.data, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.medoids.size(), 4u);
  MatchReport report = MatchClusters(g.actual, r.clusters);
  EXPECT_EQ(report.matched, 4);
  EXPECT_LT(report.mean_centroid_displacement, 1.0);
}

TEST(ClaransTest, CostBeatsRandomMedoids) {
  auto g = Blobs(5, 100, 106);
  // One start, zero search (maxneighbor=1 effectively random-ish) vs a
  // real search: the searched cost must be no worse.
  ClaransOptions weak;
  weak.k = 5;
  weak.numlocal = 1;
  weak.maxneighbor = 1;
  weak.seed = 9;
  ClaransOptions strong = weak;
  strong.numlocal = 2;
  strong.maxneighbor = 0;  // auto
  auto rw = Clarans(g.data, weak);
  auto rs = Clarans(g.data, strong);
  ASSERT_TRUE(rw.ok() && rs.ok());
  EXPECT_LE(rs.value().cost, rw.value().cost + 1e-9);
  EXPECT_GT(rs.value().swaps_accepted, 0u);
}

TEST(ClaransTest, MedoidsAreDataPointsAndLabelsConsistent) {
  auto g = Blobs(3, 80, 107);
  ClaransOptions o;
  o.k = 3;
  auto result = Clarans(g.data, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  std::set<size_t> unique(r.medoids.begin(), r.medoids.end());
  EXPECT_EQ(unique.size(), 3u);
  for (size_t m : r.medoids) EXPECT_LT(m, g.data.size());
  // Each medoid is labelled with its own cluster.
  for (size_t s = 0; s < r.medoids.size(); ++s) {
    EXPECT_EQ(r.labels[r.medoids[s]], static_cast<int>(s));
  }
  double total = 0.0;
  for (const auto& c : r.clusters) total += c.n();
  EXPECT_NEAR(total, static_cast<double>(g.data.size()), 1e-9);
}

TEST(ClaransTest, InvalidParamsRejected) {
  auto g = Blobs(2, 20, 108);
  ClaransOptions o;
  o.k = 0;
  EXPECT_FALSE(Clarans(g.data, o).ok());
  o.k = static_cast<int>(g.data.size());
  EXPECT_FALSE(Clarans(g.data, o).ok());
  o.k = 2;
  o.numlocal = 0;
  EXPECT_FALSE(Clarans(g.data, o).ok());
}

TEST(ClaraTest, RecoversSeparatedBlobs) {
  auto g = Blobs(4, 150, 110);
  ClaraOptions o;
  o.k = 4;
  auto result = Clara(g.data, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.medoids.size(), 4u);
  MatchReport report = MatchClusters(g.actual, r.clusters);
  EXPECT_EQ(report.matched, 4);
  EXPECT_LT(report.mean_centroid_displacement, 1.0);
  EXPECT_GE(r.best_sample, 0);
}

TEST(ClaraTest, MoreSamplesNeverWorse) {
  auto g = Blobs(6, 120, 111);
  ClaraOptions one;
  one.k = 6;
  one.samples = 1;
  one.seed = 5;
  ClaraOptions five = one;
  five.samples = 5;
  auto r1 = Clara(g.data, one);
  auto r5 = Clara(g.data, five);
  ASSERT_TRUE(r1.ok() && r5.ok());
  // Sample 0 is shared (same seed stream prefix), so the 5-sample run
  // can only improve on it.
  EXPECT_LE(r5.value().cost, r1.value().cost + 1e-9);
}

TEST(ClaraTest, MedoidsAreDistinctDataRows) {
  auto g = Blobs(3, 100, 112);
  ClaraOptions o;
  o.k = 3;
  auto result = Clara(g.data, o);
  ASSERT_TRUE(result.ok());
  std::set<size_t> unique(result.value().medoids.begin(),
                          result.value().medoids.end());
  EXPECT_EQ(unique.size(), 3u);
  for (size_t m : result.value().medoids) EXPECT_LT(m, g.data.size());
  double total = 0.0;
  for (const auto& c : result.value().clusters) total += c.n();
  EXPECT_NEAR(total, static_cast<double>(g.data.size()), 1e-9);
}

TEST(ClaraTest, InvalidParamsRejected) {
  auto g = Blobs(2, 20, 113);
  ClaraOptions o;
  o.k = 0;
  EXPECT_FALSE(Clara(g.data, o).ok());
  o.k = static_cast<int>(g.data.size());
  EXPECT_FALSE(Clara(g.data, o).ok());
  o.k = 2;
  o.samples = 0;
  EXPECT_FALSE(Clara(g.data, o).ok());
}

TEST(HierarchicalBaselineTest, MatchesBlobs) {
  auto g = Blobs(3, 60, 109);
  auto result = HierarchicalCluster(g.data, 3);
  ASSERT_TRUE(result.ok());
  MatchReport report = MatchClusters(g.actual, result.value().clusters);
  EXPECT_EQ(report.matched, 3);
  EXPECT_LT(report.mean_centroid_displacement, 0.5);
}

TEST(HierarchicalBaselineTest, WeightedPoints) {
  Dataset data(1);
  std::vector<double> a = {0.0}, b = {0.5}, c = {10.0};
  data.AppendWeighted(a, 10.0);
  data.AppendWeighted(b, 1.0);
  data.AppendWeighted(c, 1.0);
  auto result = HierarchicalCluster(data, 2, DistanceMetric::kD0);
  ASSERT_TRUE(result.ok());
  // a+b merge; total weight 11 vs 1.
  std::vector<double> ns;
  for (const auto& cl : result.value().clusters) ns.push_back(cl.n());
  std::sort(ns.begin(), ns.end());
  EXPECT_NEAR(ns[0], 1.0, 1e-9);
  EXPECT_NEAR(ns[1], 11.0, 1e-9);
}

}  // namespace
}  // namespace birch
