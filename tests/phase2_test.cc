// Phase-2 condensation tests: the tree must shrink to the target entry
// count, conserve points (minus shed outliers), and keep invariants.
#include "birch/phase2.h"

#include <gtest/gtest.h>

#include "pagestore/memory_tracker.h"
#include "util/random.h"

namespace birch {
namespace {

void Fill(CfTree* tree, int n, double range, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> p = {rng.Uniform(0, range), rng.Uniform(0, range)};
    tree->InsertPoint(p);
  }
}

CfTreeOptions Opts(double t = 0.05) {
  CfTreeOptions o;
  o.dim = 2;
  o.page_size = 512;
  o.threshold = t;
  return o;
}

TEST(Phase2Test, CondensesToTarget) {
  MemoryTracker mem;
  CfTree tree(Opts(), &mem);
  Fill(&tree, 5000, 100.0, 31);
  ASSERT_GT(tree.leaf_entry_count(), 200u);
  double n_before = tree.TreeSummary().n();

  Phase2Options o;
  o.target_leaf_entries = 100;
  Phase2Stats stats;
  ASSERT_TRUE(CondenseTree(&tree, o, nullptr, &stats).ok());
  EXPECT_LE(tree.leaf_entry_count(), 100u);
  EXPECT_GT(stats.rounds, 0);
  EXPECT_EQ(stats.final_leaf_entries, tree.leaf_entry_count());
  EXPECT_NEAR(tree.TreeSummary().n(), n_before, 1e-6);
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
}

TEST(Phase2Test, NoopWhenAlreadySmall) {
  MemoryTracker mem;
  CfTree tree(Opts(1.0), &mem);
  Fill(&tree, 100, 5.0, 32);
  size_t entries = tree.leaf_entry_count();
  ASSERT_LE(entries, 1000u);
  Phase2Options o;
  o.target_leaf_entries = 1000;
  Phase2Stats stats;
  ASSERT_TRUE(CondenseTree(&tree, o, nullptr, &stats).ok());
  EXPECT_EQ(stats.rounds, 0);
  EXPECT_EQ(tree.leaf_entry_count(), entries);
}

TEST(Phase2Test, ShedsOutliersWhenEnabled) {
  MemoryTracker mem;
  CfTree tree(Opts(0.2), &mem);
  // Dense cluster + isolated singles.
  Rng rng(33);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> p = {rng.Gaussian(0, 1), rng.Gaussian(0, 1)};
    tree.InsertPoint(p);
  }
  for (int i = 0; i < 20; ++i) {
    std::vector<double> p = {500.0 + 40.0 * i, -300.0};
    tree.InsertPoint(p);
  }
  Phase2Options o;
  o.target_leaf_entries = 30;
  o.outlier_weight_threshold = 3.0;
  std::vector<CfVector> outliers;
  Phase2Stats stats;
  ASSERT_TRUE(CondenseTree(&tree, o, &outliers, &stats).ok());
  EXPECT_GT(outliers.size(), 0u);
  EXPECT_EQ(stats.outliers_shed, outliers.size());
  double shed = 0.0;
  for (const auto& e : outliers) shed += e.n();
  EXPECT_NEAR(tree.TreeSummary().n() + shed, 2020.0, 1e-6);
}

TEST(Phase2Test, ZeroTargetRejected) {
  MemoryTracker mem;
  CfTree tree(Opts(), &mem);
  Phase2Options o;
  o.target_leaf_entries = 0;
  EXPECT_EQ(CondenseTree(&tree, o, nullptr, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(Phase2Test, AggressiveTargetStillTerminates) {
  MemoryTracker mem;
  CfTree tree(Opts(0.0), &mem);
  Fill(&tree, 3000, 1000.0, 34);
  Phase2Options o;
  o.target_leaf_entries = 2;  // brutal
  Phase2Stats stats;
  ASSERT_TRUE(CondenseTree(&tree, o, nullptr, &stats).ok());
  EXPECT_LE(tree.leaf_entry_count(), 2u);
  EXPECT_NEAR(tree.TreeSummary().n(), 3000.0, 1e-6);
}

}  // namespace
}  // namespace birch
