// Phase-3 tests: both global algorithms must recover well-separated
// clusters exactly from subcluster CFs, respect input weights, handle
// edge cases (k >= m, k == 1, distance-limited stopping) and reject
// invalid configurations.
#include "birch/global_cluster.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace birch {
namespace {

/// Builds `per_group` subcluster CFs around each of `centers`.
std::vector<CfVector> GroupedCfs(
    const std::vector<std::vector<double>>& centers, int per_group,
    double spread, uint64_t seed) {
  Rng rng(seed);
  std::vector<CfVector> cfs;
  for (const auto& c : centers) {
    for (int i = 0; i < per_group; ++i) {
      CfVector cf(c.size());
      // Each subcluster: 20 points around a jittered center.
      std::vector<double> sub(c.size());
      for (size_t t = 0; t < c.size(); ++t) {
        sub[t] = c[t] + rng.Gaussian(0, spread);
      }
      for (int p = 0; p < 20; ++p) {
        std::vector<double> x(c.size());
        for (size_t t = 0; t < c.size(); ++t) {
          x[t] = sub[t] + rng.Gaussian(0, spread / 4);
        }
        cf.AddPoint(x);
      }
      cfs.push_back(cf);
    }
  }
  return cfs;
}

class GlobalClusterAlgorithms
    : public ::testing::TestWithParam<GlobalAlgorithm> {};

TEST_P(GlobalClusterAlgorithms, RecoversSeparatedGroups) {
  std::vector<std::vector<double>> centers = {
      {0, 0}, {100, 0}, {0, 100}, {100, 100}};
  auto cfs = GroupedCfs(centers, 8, 1.0, 41);
  GlobalClusterOptions o;
  o.k = 4;
  o.algorithm = GetParam();
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.clusters.size(), 4u);
  // All 8 subclusters of a group share one label, groups differ.
  std::set<int> labels_seen;
  for (int g = 0; g < 4; ++g) {
    int first = r.assignment[static_cast<size_t>(g * 8)];
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(r.assignment[static_cast<size_t>(g * 8 + i)], first);
    }
    labels_seen.insert(first);
  }
  EXPECT_EQ(labels_seen.size(), 4u);
  // Cluster CFs are exact: 8 * 20 points each.
  for (const auto& c : r.clusters) EXPECT_NEAR(c.n(), 160.0, 1e-9);
}

TEST_P(GlobalClusterAlgorithms, KEqualsInputsYieldsSingletons) {
  auto cfs = GroupedCfs({{0, 0}, {50, 50}}, 3, 1.0, 42);
  GlobalClusterOptions o;
  o.k = static_cast<int>(cfs.size());
  o.algorithm = GetParam();
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().clusters.size(), cfs.size());
}

TEST_P(GlobalClusterAlgorithms, KOneMergesEverything) {
  auto cfs = GroupedCfs({{0, 0}, {9, 9}}, 4, 1.0, 43);
  GlobalClusterOptions o;
  o.k = 1;
  o.algorithm = GetParam();
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().clusters.size(), 1u);
  EXPECT_NEAR(result.value().clusters[0].n(), 8 * 20.0, 1e-9);
}

TEST_P(GlobalClusterAlgorithms, KLargerThanInputsClamped) {
  auto cfs = GroupedCfs({{0, 0}}, 3, 1.0, 44);
  GlobalClusterOptions o;
  o.k = 10;
  o.algorithm = GetParam();
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().clusters.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, GlobalClusterAlgorithms,
                         ::testing::Values(GlobalAlgorithm::kHierarchical,
                                           GlobalAlgorithm::kKMeans,
                                           GlobalAlgorithm::kMedoids));

TEST(GlobalClusterTest, MedoidsRespectWeights) {
  // Two candidate positions; the heavy entries should own the medoids.
  std::vector<CfVector> cfs;
  std::vector<double> a = {0.0}, b = {1.0}, c = {10.0}, d = {11.0};
  cfs.push_back(CfVector::FromPoint(a, 100.0));
  cfs.push_back(CfVector::FromPoint(b, 1.0));
  cfs.push_back(CfVector::FromPoint(c, 100.0));
  cfs.push_back(CfVector::FromPoint(d, 1.0));
  GlobalClusterOptions o;
  o.k = 2;
  o.algorithm = GlobalAlgorithm::kMedoids;
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.clusters.size(), 2u);
  // One cluster holds {0,1}, the other {10,11}.
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[2], r.assignment[3]);
  EXPECT_NE(r.assignment[0], r.assignment[2]);
}

TEST(GlobalClusterTest, WeightPullsCentroid) {
  // One massive CF and one light CF in each of two groups: the cluster
  // centroid must sit near the heavy member.
  CfVector heavy(1), light(1);
  std::vector<double> a = {0.0}, b = {1.0};
  heavy.AddPoint(a, 1000.0);
  light.AddPoint(b, 1.0);
  std::vector<CfVector> cfs = {heavy, light};
  GlobalClusterOptions o;
  o.k = 1;
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().clusters[0].Centroid()[0], 1.0 / 1001.0,
              1e-9);
}

TEST(GlobalClusterTest, DistanceLimitStopsMerging) {
  // Two tight pairs far apart; a limit between pair-diameter and
  // pair-gap must leave exactly 2 clusters.
  std::vector<CfVector> cfs = {
      CfVector::FromPoint(std::vector<double>{0.0}),
      CfVector::FromPoint(std::vector<double>{1.0}),
      CfVector::FromPoint(std::vector<double>{100.0}),
      CfVector::FromPoint(std::vector<double>{101.0})};
  GlobalClusterOptions o;
  o.k = 0;
  o.distance_limit = 10.0;
  o.metric = DistanceMetric::kD0;
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().clusters.size(), 2u);
}

TEST(GlobalClusterTest, HierarchicalMetricSweep) {
  std::vector<std::vector<double>> centers = {{0, 0}, {60, 0}, {0, 60}};
  auto cfs = GroupedCfs(centers, 6, 1.0, 45);
  for (auto m : {DistanceMetric::kD0, DistanceMetric::kD1,
                 DistanceMetric::kD2, DistanceMetric::kD3,
                 DistanceMetric::kD4}) {
    GlobalClusterOptions o;
    o.k = 3;
    o.metric = m;
    auto result = GlobalCluster(cfs, o);
    ASSERT_TRUE(result.ok()) << MetricName(m);
    EXPECT_EQ(result.value().clusters.size(), 3u) << MetricName(m);
  }
}

TEST(GlobalClusterTest, InvalidConfigsRejected) {
  auto cfs = GroupedCfs({{0, 0}}, 2, 1.0, 46);
  GlobalClusterOptions o;
  // Empty input.
  EXPECT_EQ(GlobalCluster({}, o).status().code(),
            StatusCode::kInvalidArgument);
  // k == 0 without a distance limit.
  o.k = 0;
  EXPECT_EQ(GlobalCluster(cfs, o).status().code(),
            StatusCode::kInvalidArgument);
  // k == 0 with k-means.
  o.distance_limit = 1.0;
  o.algorithm = GlobalAlgorithm::kKMeans;
  EXPECT_EQ(GlobalCluster(cfs, o).status().code(),
            StatusCode::kInvalidArgument);
  // Oversized hierarchical input.
  GlobalClusterOptions o2;
  o2.k = 2;
  o2.max_hierarchical_inputs = 1;
  EXPECT_EQ(GlobalCluster(cfs, o2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GlobalClusterTest, AssignmentCoversAllInputs) {
  auto cfs = GroupedCfs({{0, 0}, {30, 30}, {60, 0}}, 7, 1.5, 47);
  GlobalClusterOptions o;
  o.k = 3;
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.assignment.size(), cfs.size());
  double total = 0.0;
  for (const auto& c : r.clusters) total += c.n();
  EXPECT_NEAR(total, 21 * 20.0, 1e-9);
  for (int a : r.assignment) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, static_cast<int>(r.clusters.size()));
  }
}

TEST(GlobalClusterTest, CentroidsAccessor) {
  auto cfs = GroupedCfs({{5, 5}}, 3, 0.5, 48);
  GlobalClusterOptions o;
  o.k = 1;
  auto result = GlobalCluster(cfs, o);
  ASSERT_TRUE(result.ok());
  auto centroids = result.value().Centroids();
  ASSERT_EQ(centroids.size(), 1u);
  EXPECT_NEAR(centroids[0][0], 5.0, 1.0);
  EXPECT_NEAR(centroids[0][1], 5.0, 1.0);
}

}  // namespace
}  // namespace birch
