// Cross-module integration tests:
//  - checkpoint/resume: persist a Phase-1 tree with TreeIO, reopen it,
//    keep inserting, and finish the pipeline on the reopened tree;
//  - full-pipeline parameterized sweep over (dim, metric, global
//    algorithm) on generated workloads;
//  - distance-limited clustering (k = 0) end to end;
//  - determinism of the whole pipeline for a fixed seed.
#include <gtest/gtest.h>

#include "birch/birch.h"
#include "birch/tree_io.h"
#include "datagen/generator.h"
#include "eval/matching.h"
#include "eval/quality.h"

namespace birch {
namespace {

GeneratedData Blobs(size_t dim, int k, int n_per, uint64_t seed) {
  GeneratorOptions o;
  o.dim = dim;
  o.k = k;
  o.n_low = o.n_high = n_per;
  o.r_low = o.r_high = 1.0;
  o.grid_spacing = 12.0;
  o.seed = seed;
  auto gen = Generate(o);
  EXPECT_TRUE(gen.ok());
  return std::move(gen).ValueOrDie();
}

TEST(IntegrationTest, CheckpointResumeAcrossTreeIo) {
  auto g = Blobs(2, 9, 600, 401);

  // Phase 1 over the first half.
  CfTreeOptions topt;
  topt.dim = 2;
  topt.page_size = 512;
  topt.threshold = 0.8;
  MemoryTracker mem1;
  CfTree tree(topt, &mem1);
  size_t half = g.data.size() / 2;
  for (size_t i = 0; i < half; ++i) tree.InsertPoint(g.data.Row(i));

  // Checkpoint to the simulated disk...
  PageStore store(512);
  auto image = TreeIO::Write(tree, &store);
  ASSERT_TRUE(image.ok());

  // ...reopen elsewhere, stream the second half.
  MemoryTracker mem2;
  auto reopened = TreeIO::Read(image.value(), &store, topt, &mem2);
  ASSERT_TRUE(reopened.ok());
  CfTree& resumed = *reopened.value();
  for (size_t i = half; i < g.data.size(); ++i) {
    resumed.InsertPoint(g.data.Row(i));
  }
  EXPECT_NEAR(resumed.TreeSummary().n(),
              static_cast<double>(g.data.size()), 1e-6);

  // Global clustering over the resumed tree's entries.
  std::vector<CfVector> entries;
  resumed.CollectLeafEntries(&entries);
  GlobalClusterOptions gopt;
  gopt.k = 9;
  auto clustering = GlobalCluster(entries, gopt);
  ASSERT_TRUE(clustering.ok());
  MatchReport match =
      MatchClusters(g.actual, clustering.value().clusters);
  EXPECT_EQ(match.matched, 9);
  EXPECT_LT(match.mean_centroid_displacement, 1.0);
}

struct SweepParam {
  size_t dim;
  DistanceMetric metric;
  GlobalAlgorithm algorithm;
};

class PipelineSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweepTest, RecoversClusters) {
  const SweepParam& p = GetParam();
  auto g = Blobs(p.dim, 8, 300, 402 + p.dim);
  BirchOptions o;
  o.dim = p.dim;
  o.k = 8;
  o.resources.memory_bytes = 48 * 1024;
  o.tree.metric = p.metric;
  o.global_phase.algorithm = p.algorithm;
  auto result = ClusterDataset(g.data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  MatchReport match = MatchClusters(g.actual, result.value().clusters);
  // Well-separated blobs (spacing 12, radius 1): every configuration
  // must recover essentially all clusters.
  EXPECT_GE(match.matched, 7)
      << "dim=" << p.dim << " metric=" << MetricName(p.metric);
  EXPECT_LT(match.mean_centroid_displacement, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweepTest,
    ::testing::Values(
        SweepParam{2, DistanceMetric::kD0, GlobalAlgorithm::kHierarchical},
        SweepParam{2, DistanceMetric::kD1, GlobalAlgorithm::kHierarchical},
        SweepParam{2, DistanceMetric::kD2, GlobalAlgorithm::kHierarchical},
        SweepParam{2, DistanceMetric::kD4, GlobalAlgorithm::kHierarchical},
        SweepParam{2, DistanceMetric::kD2, GlobalAlgorithm::kKMeans},
        SweepParam{2, DistanceMetric::kD2, GlobalAlgorithm::kMedoids},
        SweepParam{3, DistanceMetric::kD2, GlobalAlgorithm::kHierarchical},
        SweepParam{5, DistanceMetric::kD2, GlobalAlgorithm::kHierarchical},
        SweepParam{10, DistanceMetric::kD2, GlobalAlgorithm::kHierarchical},
        SweepParam{10, DistanceMetric::kD4, GlobalAlgorithm::kKMeans}));

TEST(IntegrationTest, DistanceLimitedClusteringFindsK) {
  // k = 0 with a distance limit between intra- and inter-cluster
  // scales must discover the right number of clusters on its own.
  auto g = Blobs(2, 6, 500, 403);
  BirchOptions o;
  o.dim = 2;
  o.k = 0;
  o.global_phase.distance_limit = 5.0;  // blobs: diameter ~2.7, spacing 12
  auto result = ClusterDataset(g.data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().clusters.size(), 6u);
  MatchReport match = MatchClusters(g.actual, result.value().clusters);
  EXPECT_EQ(match.matched, 6);
}

TEST(IntegrationTest, DistanceLimitValidation) {
  BirchOptions o;
  o.dim = 2;
  o.k = 0;  // no limit either
  EXPECT_FALSE(BirchClusterer::Create(o).ok());
  o.global_phase.distance_limit = 1.0;
  o.global_phase.algorithm = GlobalAlgorithm::kKMeans;
  EXPECT_FALSE(BirchClusterer::Create(o).ok());
  o.global_phase.algorithm = GlobalAlgorithm::kHierarchical;
  EXPECT_TRUE(BirchClusterer::Create(o).ok());
}

TEST(IntegrationTest, PipelineDeterministicForSeed) {
  auto g = Blobs(2, 5, 400, 404);
  BirchOptions o;
  o.dim = 2;
  o.k = 5;
  o.resources.memory_bytes = 24 * 1024;
  o.seed = 1234;
  auto r1 = ClusterDataset(g.data, o);
  auto r2 = ClusterDataset(g.data, o);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().labels, r2.value().labels);
  ASSERT_EQ(r1.value().clusters.size(), r2.value().clusters.size());
  for (size_t c = 0; c < r1.value().clusters.size(); ++c) {
    EXPECT_EQ(r1.value().clusters[c], r2.value().clusters[c]);
  }
  EXPECT_EQ(r1.value().phase1.rebuilds, r2.value().phase1.rebuilds);
}

TEST(IntegrationTest, WeightedStreamEquivalentToExpanded) {
  // Clustering w-weighted points must equal clustering w copies.
  Dataset weighted(2), expanded(2);
  Rng rng(405);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = {rng.Gaussian(i % 2 ? 0.0 : 20.0, 1.0),
                             rng.Gaussian(0, 1.0)};
    double w = 1.0 + static_cast<double>(rng.UniformInt(uint64_t{3}));
    weighted.AppendWeighted(p, w);
    for (int r = 0; r < static_cast<int>(w); ++r) expanded.Append(p);
  }
  BirchOptions o;
  o.dim = 2;
  o.k = 2;
  o.refine.passes = 0;  // labels map 1:1 only per-dataset
  auto rw = ClusterDataset(weighted, o);
  auto re = ClusterDataset(expanded, o);
  ASSERT_TRUE(rw.ok() && re.ok());
  ASSERT_EQ(rw.value().clusters.size(), 2u);
  ASSERT_EQ(re.value().clusters.size(), 2u);
  // Same total mass and near-identical centroids.
  auto order = [](const BirchResult& r) {
    return r.centroids[0][0] < r.centroids[1][0]
               ? std::pair<size_t, size_t>{0, 1}
               : std::pair<size_t, size_t>{1, 0};
  };
  auto [w0, w1] = order(rw.value());
  auto [e0, e1] = order(re.value());
  EXPECT_NEAR(rw.value().clusters[w0].n(), re.value().clusters[e0].n(),
              1e-6);
  EXPECT_NEAR(rw.value().centroids[w0][0], re.value().centroids[e0][0],
              0.05);
  EXPECT_NEAR(rw.value().centroids[w1][0], re.value().centroids[e1][0],
              0.05);
}

TEST(IntegrationTest, PhaseTimingsAndMetricsPopulated) {
  // Every phase that ran must report non-zero wall time (phase1 covers
  // the Add() stream, not just the Finish() tail), and the run's
  // metrics snapshot must carry the core counters and phase spans.
  auto g = Blobs(2, 8, 400, 404);
  BirchOptions o;
  o.dim = 2;
  o.k = 8;
  o.resources.memory_bytes = 24 * 1024;  // tight: forces rebuild activity
  o.refine.passes = 1;
  auto result = ClusterDataset(g.data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BirchResult& r = result.value();

  const PhaseTimings& t = r.timings;
  EXPECT_GT(t.phase1, 0.0);
  EXPECT_GT(t.phase3, 0.0);
  EXPECT_GT(t.phase4, 0.0);  // refinement ran (passes = 1)
  // Phase 1 streamed 3200 points; its wall time must dominate the
  // Finish() tail alone by covering the insert stream.
  EXPECT_GE(t.phase1, t.Total() * 0.01);

  if (obs::Enabled()) {
    ASSERT_FALSE(r.metrics.empty());
    EXPECT_EQ(r.metrics.counters.at("phase1/points"), 3200u);
    EXPECT_GT(r.metrics.counters.at("tree/inserts"), 0u);
    EXPECT_GT(r.metrics.counters.at("tree/distance_comps"), 0u);
    EXPECT_GT(r.metrics.spans.at("birch/phase1").total_us, 0.0);
    EXPECT_EQ(r.metrics.spans.at("birch/phase3").count, 1u);
    EXPECT_EQ(r.metrics.spans.at("birch/phase4").count, 1u);
  }
}

}  // namespace
}  // namespace birch
