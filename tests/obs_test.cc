// Unit tests for the instrumentation subsystem (src/obs): counter /
// gauge / histogram semantics, the log-scale bucket boundaries, span
// nesting and aggregation, snapshot deltas, the enabled switch, and
// the Chrome trace_event exporter (valid JSON, every "B" matched by an
// "E").
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/status.h"

namespace birch {
namespace obs {
namespace {

// The registry and tracer are process-wide; tests use unique metric
// names and restore the enabled flag so they compose in one binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetEnabled(true); }
  void TearDown() override { SetEnabled(true); }
};

TEST_F(ObsTest, CounterIncrementsAndResets) {
  Counter& c = Registry::Default().GetCounter("test/counter_basic");
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(ObsTest, CounterIgnoredWhenDisabled) {
  Counter& c = Registry::Default().GetCounter("test/counter_disabled");
  SetEnabled(false);
  c.Increment(100);
  EXPECT_EQ(c.Value(), 0u);
  SetEnabled(true);
  c.Increment(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  Counter& a = Registry::Default().GetCounter("test/handle_stability");
  Counter& b = Registry::Default().GetCounter("test/handle_stability");
  EXPECT_EQ(&a, &b);
  a.Increment();
  Registry::Default().ResetValues();
  // Values are zeroed but the handle object survives.
  EXPECT_EQ(b.Value(), 0u);
  b.Increment();
  EXPECT_EQ(a.Value(), 1u);
}

TEST_F(ObsTest, GaugeSetAddAndLastValueWins) {
  Gauge& g = Registry::Default().GetGauge("test/gauge_basic");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Add(-5.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST_F(ObsTest, CounterIsThreadSafe) {
  Counter& c = Registry::Default().GetCounter("test/counter_threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(ObsTest, HistogramBucketEdges) {
  // Bucket 0 is [0, 1); bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 1u);
  EXPECT_EQ(Histogram::BucketIndex(1.999), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3.999), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 11u);
  // Negatives and NaN land in bucket 0; huge values in the top bucket.
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  // Bounds are consistent with the index mapping.
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i);
    double below_upper = Histogram::BucketUpperBound(i) * (1 - 1e-9);
    if (below_upper >= Histogram::BucketLowerBound(i)) {
      EXPECT_EQ(Histogram::BucketIndex(below_upper), i) << "bucket " << i;
    }
  }
}

TEST_F(ObsTest, HistogramRecordsCountSumMinMax) {
  Histogram& h = Registry::Default().GetHistogram("test/hist_basic");
  for (double v : {3.0, 0.5, 100.0, 7.0}) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 110.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 110.5 / 4);
  EXPECT_EQ(s.buckets[Histogram::BucketIndex(0.5)], 1u);
  EXPECT_EQ(s.buckets[Histogram::BucketIndex(3.0)], 1u);
  EXPECT_EQ(s.buckets[Histogram::BucketIndex(100.0)], 1u);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.Snapshot().min, 0.0);
}

TEST_F(ObsTest, MacrosRecordThroughRegistry) {
  OBS_COUNTER_INC("test/macro_counter");
  OBS_COUNTER_ADD("test/macro_counter", 4);
  OBS_GAUGE_SET("test/macro_gauge", 3.25);
  OBS_HISTOGRAM_RECORD("test/macro_hist", 6.0);
  EXPECT_EQ(Registry::Default().GetCounter("test/macro_counter").Value(),
            5u);
  EXPECT_DOUBLE_EQ(Registry::Default().GetGauge("test/macro_gauge").Value(),
                   3.25);
  EXPECT_EQ(
      Registry::Default().GetHistogram("test/macro_hist").Snapshot().count,
      1u);
}

TEST_F(ObsTest, SnapshotDeltaSubtractsRun) {
  Counter& c = Registry::Default().GetCounter("test/delta_counter");
  Histogram& h = Registry::Default().GetHistogram("test/delta_hist");
  c.Increment(10);
  h.Record(1.0);
  MetricsSnapshot base = Registry::Default().Snapshot();
  c.Increment(32);
  h.Record(2.0);
  h.Record(4.0);
  MetricsSnapshot delta =
      Registry::Default().Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counters.at("test/delta_counter"), 32u);
  EXPECT_EQ(delta.histograms.at("test/delta_hist").count, 2u);
}

TEST_F(ObsTest, SpanNestingTracksThreadDepth) {
  EXPECT_EQ(Tracer::ThreadDepth(), 0);
  {
    TRACE_SPAN("test/outer");
    EXPECT_EQ(Tracer::ThreadDepth(), 1);
    {
      TRACE_SPAN("test/inner");
      EXPECT_EQ(Tracer::ThreadDepth(), 2);
    }
    EXPECT_EQ(Tracer::ThreadDepth(), 1);
  }
  EXPECT_EQ(Tracer::ThreadDepth(), 0);
  std::map<std::string, SpanSnapshot> agg =
      Tracer::Default().span_aggregates();
  EXPECT_GE(agg.at("test/outer").count, 1u);
  EXPECT_GE(agg.at("test/inner").count, 1u);
  // The outer span encloses the inner one.
  EXPECT_GE(agg.at("test/outer").total_us, agg.at("test/inner").total_us);
}

TEST_F(ObsTest, SpanEndIsIdempotent) {
  SpanScope scope("test/explicit_end");
  scope.End();
  scope.End();  // no double-count
  EXPECT_EQ(Tracer::Default().span_aggregates().at("test/explicit_end").count,
            1u);
  Tracer::Default().Reset();
}

TEST_F(ObsTest, SpanAggregationOffWhenDisabled) {
  Tracer::Default().Reset();
  SetEnabled(false);
  { TRACE_SPAN("test/disabled_span"); }
  SetEnabled(true);
  auto agg = Tracer::Default().span_aggregates();
  EXPECT_EQ(agg.count("test/disabled_span"), 0u);
}

// Minimal JSON scanner: validates object/array bracket balance and
// extracts string values for a key. Enough to verify the exporter
// without a JSON dependency.
size_t CountKey(const std::string& json, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

TEST_F(ObsTest, ChromeTraceHasMatchedBeginEndPairs) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  tracer.StartRecording();
  {
    TRACE_SPAN("test/trace_outer");
    { TRACE_SPAN("test/trace_inner"); }
    TRACE_INSTANT("test/trace_instant");
    TRACE_COUNTER("test/trace_counter", 42.0);
  }
  tracer.StopRecording();

  std::vector<TraceEvent> events = tracer.events();
  int depth = 0;
  size_t begins = 0, ends = 0;
  for (const TraceEvent& e : events) {
    if (e.phase == TraceEvent::Phase::kBegin) {
      ++begins;
      ++depth;
    } else if (e.phase == TraceEvent::Phase::kEnd) {
      ++ends;
      --depth;
      ASSERT_GE(depth, 0) << "E before its B";
    }
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(depth, 0);

  std::string json = tracer.ChromeTraceJson();
  // Structure: balanced brackets, the trace_event envelope, and one
  // "ph" entry per event.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(CountKey(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(CountKey(json, "\"ph\":\"E\""), 2u);
  EXPECT_EQ(CountKey(json, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(CountKey(json, "\"ph\":\"C\""), 1u);
  tracer.Reset();
}

TEST_F(ObsTest, RecordingStopMidSpanStillEmitsEnd) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  tracer.StartRecording();
  {
    TRACE_SPAN("test/stop_mid_span");
    tracer.StopRecording();  // recording ends while the span is open
  }
  std::vector<TraceEvent> events = tracer.events();
  size_t begins = 0, ends = 0;
  for (const TraceEvent& e : events) {
    if (e.phase == TraceEvent::Phase::kBegin) ++begins;
    if (e.phase == TraceEvent::Phase::kEnd) ++ends;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  tracer.Reset();
}

TEST_F(ObsTest, ChromeTraceGoldenShape) {
  // Golden-file-style check on a deterministic single-event trace:
  // everything except the timestamp is fixed.
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  tracer.StartRecording();
  tracer.Instant("golden/event");
  tracer.StopRecording();
  std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"golden/event\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos) << json;
  tracer.Reset();
}

TEST_F(ObsTest, SummaryTableAndCsvListEveryMetric) {
  OBS_COUNTER_ADD("test/export_counter", 3);
  OBS_GAUGE_SET("test/export_gauge", 1.5);
  OBS_HISTOGRAM_RECORD("test/export_hist", 10.0);
  MetricsSnapshot snap = CaptureSnapshot();
  std::string table = SummaryTable(snap);
  for (const char* name :
       {"test/export_counter", "test/export_gauge", "test/export_hist"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  std::string csv = ToCsv(snap);
  EXPECT_NE(csv.find("metric,kind,value,count,sum,min,max,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("test/export_counter,counter,3"), std::string::npos);
  // The histogram row carries its quantile estimates (a single sample:
  // every quantile equals the value).
  EXPECT_NE(csv.find("test/export_hist,histogram,"), std::string::npos);
  std::string table_detail = SummaryTable(snap);
  EXPECT_NE(table_detail.find("p50="), std::string::npos);
  EXPECT_NE(table_detail.find("p99="), std::string::npos);
}

TEST_F(ObsTest, HistogramQuantilesEmptyAndSingle) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram& h = Registry::Default().GetHistogram("test/quantile_single");
  h.Record(5.0);
  HistogramSnapshot s = h.Snapshot();
  // One sample: every quantile collapses to it.
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 5.0);
}

TEST_F(ObsTest, HistogramQuantilesMonotoneAndBounded) {
  Histogram& h = Registry::Default().GetHistogram("test/quantile_mono");
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  HistogramSnapshot s = h.Snapshot();
  double p50 = s.Quantile(0.50);
  double p90 = s.Quantile(0.90);
  double p99 = s.Quantile(0.99);
  double p999 = s.Quantile(0.999);
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p999, s.max);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
  // Accuracy is bounded by the log-scale bucket width: p50 of uniform
  // 1..1000 is 500, inside bucket [256, 512) — interpolation must land
  // in that bucket.
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 512.0);
  // p999 -> 999, inside [512, 1000] after the max clamp.
  EXPECT_GE(p999, 512.0);
  EXPECT_LE(p999, 1000.0);
  // Out-of-range q clamps to the observed extremes.
  EXPECT_DOUBLE_EQ(s.Quantile(-1.0), s.min);
  EXPECT_DOUBLE_EQ(s.Quantile(2.0), s.max);
}

TEST_F(ObsTest, TimeSeriesRingDropsOldest) {
  TimeSeries ts("test/ring", /*capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) {
    ts.Append(/*t_us=*/i * 10, static_cast<double>(i));
  }
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.dropped(), 2u);
  TimeSeriesSnapshot snap = ts.Snapshot();
  EXPECT_EQ(snap.name, "test/ring");
  EXPECT_EQ(snap.dropped, 2u);
  ASSERT_EQ(snap.points.size(), 4u);
  // Oldest-first: points 2..5 survive.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.points[i].t_us, (i + 2) * 10);
    EXPECT_DOUBLE_EQ(snap.points[i].value, static_cast<double>(i + 2));
  }
}

TEST_F(ObsTest, SamplerStartStopIdempotent) {
  Gauge& g = Registry::Default().GetGauge("test/sampler_gauge");
  g.Set(7.0);
  SamplerOptions so;
  so.sample_every_ms = 1000;  // cadence never fires in this test
  StatsSampler sampler(so);
  sampler.AddGaugeProbe("test/sampler_gauge");
  ASSERT_TRUE(sampler.Start().ok());
  ASSERT_TRUE(sampler.Start().ok());  // second Start is a no-op
  EXPECT_TRUE(sampler.running());
  sampler.Stop();
  sampler.Stop();  // second Stop is a no-op
  EXPECT_FALSE(sampler.running());
  // One sample in Start, one in the first Stop, none from the cadence.
  EXPECT_EQ(sampler.samples_taken(), 2u);
  std::vector<TimeSeriesSnapshot> series = sampler.Snapshot();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].points[0].value, 7.0);
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 7.0);
}

TEST_F(ObsTest, SamplerRejectsZeroCadence) {
  SamplerOptions so;
  so.sample_every_ms = 0;
  StatsSampler sampler(so);
  Status st = sampler.Start();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(sampler.running());
}

TEST_F(ObsTest, SamplerRecordsNothingWhenDisabled) {
  Gauge& g = Registry::Default().GetGauge("test/sampler_disabled");
  g.Set(1.0);
  SamplerOptions so;
  so.sample_every_ms = 1;
  StatsSampler sampler(so);
  sampler.AddGaugeProbe("test/sampler_disabled");
  SetEnabled(false);
  ASSERT_TRUE(sampler.Start().ok());
  sampler.SampleOnce();
  sampler.Stop();
  SetEnabled(true);
  EXPECT_EQ(sampler.samples_taken(), 0u);
  std::vector<TimeSeriesSnapshot> series = sampler.Snapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_TRUE(series[0].empty());
}

TEST_F(ObsTest, SamplerProbesFrozenWhileRunning) {
  SamplerOptions so;
  so.sample_every_ms = 1000;
  StatsSampler sampler(so);
  sampler.AddProbe("test/frozen_a", [] { return 1.0; });
  ASSERT_TRUE(sampler.Start().ok());
  sampler.AddProbe("test/frozen_b", [] { return 2.0; });  // ignored
  sampler.Stop();
  EXPECT_EQ(sampler.Snapshot().size(), 1u);
}

TEST_F(ObsTest, SamplerEmitsTraceCounterEvents) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  Gauge& g = Registry::Default().GetGauge("test/sampler_trace");
  g.Set(3.5);
  StatsSampler sampler;
  sampler.AddGaugeProbe("test/sampler_trace");
  tracer.StartRecording();
  sampler.SampleOnce();
  tracer.StopRecording();
  std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("test/sampler_trace"), std::string::npos) << json;
  tracer.Reset();
}

}  // namespace
}  // namespace obs
}  // namespace birch
