// Flag-parser tests.
#include "util/flags.h"

#include <gtest/gtest.h>

namespace birch {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(const_cast<char*>(s.c_str()));
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, SpaceAndEqualsForms) {
  Flags f = ParseArgs({"--k", "10", "--metric=D3", "--verbose"});
  EXPECT_EQ(f.GetInt("k", 0), 10);
  EXPECT_EQ(f.GetString("metric"), "D3");
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.Has("absent"));
  EXPECT_EQ(f.GetInt("absent", 7), 7);
}

TEST(FlagsTest, TypedGetters) {
  Flags f = ParseArgs({"--x=2.5", "--flag=false", "--n=-3"});
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0), 2.5);
  EXPECT_FALSE(f.GetBool("flag", true));
  EXPECT_EQ(f.GetInt("n", 0), -3);
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = ParseArgs({"input.csv", "--k", "3", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, BoolFlagFollowedByFlag) {
  Flags f = ParseArgs({"--verbose", "--k", "5"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_EQ(f.GetInt("k", 0), 5);
}

TEST(FlagsTest, CheckKnownCatchesTypos) {
  Flags f = ParseArgs({"--kk=3"});
  EXPECT_FALSE(f.CheckKnown({"k"}).ok());
  EXPECT_TRUE(f.CheckKnown({"kk"}).ok());
}

}  // namespace
}  // namespace birch
