// Continuous-telemetry tests: the options-wired StatsSampler capturing
// real trajectories during clustering (serial and sharded), the gauge
// balance that makes those trajectories truthful, the run-report
// manifest round trip with its schema-version gate, and the JSON
// writer/parser pair underneath it all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "birch/birch.h"
#include "birch/run_report.h"
#include "datagen/paper_datasets.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "util/json.h"
#include "util/status.h"

namespace birch {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

BirchOptions SmallOptions(int k) {
  BirchOptions o;
  o.dim = 2;
  o.k = k;
  o.resources.memory_bytes = 24 * 1024;
  o.resources.disk_bytes = 5 * 1024;
  o.resources.page_size = 512;
  return o;
}

std::set<std::string> SeriesNames(
    const std::vector<obs::TimeSeriesSnapshot>& series) {
  std::set<std::string> names;
  for (const auto& s : series) names.insert(s.name);
  return names;
}

const obs::TimeSeriesSnapshot* FindSeries(
    const std::vector<obs::TimeSeriesSnapshot>& series,
    const std::string& name) {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetEnabled(true); }
  void TearDown() override { obs::SetEnabled(true); }
};

TEST_F(TelemetryTest, OptionsWiredSamplerCapturesTrajectories) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, /*k=*/25, /*n=*/200);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = SmallOptions(25);
  o.obs.sample_every_ms = 5;
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BirchResult& r = result.value();

  // Start() and Stop() each take a sample, so every registered probe
  // has a non-empty series even if the run beat the cadence.
  ASSERT_FALSE(r.timeseries.empty());
  std::set<std::string> names = SeriesNames(r.timeseries);
  for (const char* expected :
       {"tree/nodes", "tree/leaf_entries", "tree/threshold",
        "mem/used_bytes", "phase1/points"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  for (const auto& s : r.timeseries) {
    EXPECT_FALSE(s.empty()) << s.name;
    // Timestamps are non-decreasing within a series.
    for (size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_LE(s.points[i - 1].t_us, s.points[i].t_us) << s.name;
    }
  }
  // The final sample happens after clustering: the ingest counter's
  // trajectory must end at the full point count.
  const obs::TimeSeriesSnapshot* points =
      FindSeries(r.timeseries, "phase1/points");
  ASSERT_NE(points, nullptr);
  EXPECT_DOUBLE_EQ(points->points.back().value,
                   static_cast<double>(gen.value().data.size()));
}

TEST_F(TelemetryTest, SamplingOffByDefault) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 9, 60);
  ASSERT_TRUE(gen.ok());
  auto result = ClusterDataset(gen.value().data, SmallOptions(9));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().timeseries.empty());
}

TEST_F(TelemetryTest, ShardedRunSamplesConcurrently) {
  // The sampler thread reads registry atomics while four Phase-1 shards
  // write them — the telemetry_test.tsan variant proves it race-free.
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, /*k=*/25, /*n=*/200);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = SmallOptions(25);
  o.obs.sample_every_ms = 1;
  o.exec.num_threads = 4;
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().timeseries.empty());
  const obs::TimeSeriesSnapshot* mem =
      FindSeries(result.value().timeseries, "mem/used_bytes");
  ASSERT_NE(mem, nullptr);
  EXPECT_FALSE(mem->empty());
}

TEST_F(TelemetryTest, LeafEntryGaugeBalancesToZero) {
  // Every increment (insert, split, tree-load) must have a matching
  // decrement (rebuild reset, destructor), or trajectories drift
  // run over run. Ensure a clean slate, run, and check the balance.
  obs::Gauge& g = obs::Registry::Default().GetGauge("tree/leaf_entries");
  g.Set(0.0);
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 200);
  ASSERT_TRUE(gen.ok());
  auto result = ClusterDataset(gen.value().data, SmallOptions(25));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  obs::Gauge& mem = obs::Registry::Default().GetGauge("mem/used_bytes");
  mem.Set(0.0);
  auto again = ClusterDataset(gen.value().data, SmallOptions(25));
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(mem.Value(), 0.0);
}

TEST_F(TelemetryTest, RunReportRoundTrip) {
  auto gen = GeneratePaperDataset(PaperDataset::kDS1, 25, 200);
  ASSERT_TRUE(gen.ok());
  BirchOptions o = SmallOptions(25);
  o.obs.sample_every_ms = 5;
  auto result = ClusterDataset(gen.value().data, o);
  ASSERT_TRUE(result.ok());

  RunReportInputs in;
  in.options = &o;
  in.dataset_name = "DS1-small";
  in.dataset_points = gen.value().data.size();
  in.dataset_dim = 2;
  in.status = Status::OK();
  in.result = &result.value();
  in.quality["label_accuracy"] = 0.93;

  const std::string path = TempPath("run_report.json");
  ASSERT_TRUE(WriteRunReport(path, in).ok());
  auto doc_or = ReadRunReport(path);
  ASSERT_TRUE(doc_or.ok()) << doc_or.status().ToString();
  const JsonValue& doc = doc_or.value();

  const JsonValue* schema = doc.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value(), kRunReportSchema);
  const JsonValue* version = doc.Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(static_cast<int64_t>(version->number()),
            kRunReportSchemaVersion);

  const JsonValue* dataset = doc.Find("dataset");
  ASSERT_NE(dataset, nullptr);
  EXPECT_EQ(dataset->Find("name")->string_value(), "DS1-small");
  EXPECT_EQ(static_cast<uint64_t>(dataset->Find("points")->number()),
            gen.value().data.size());

  const JsonValue* status = doc.Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_TRUE(status->Find("ok")->boolean());

  const JsonValue* timings = doc.Find("timings");
  ASSERT_NE(timings, nullptr);
  EXPECT_NE(timings->Find("total_seconds"), nullptr);

  const JsonValue* options = doc.Find("options");
  ASSERT_NE(options, nullptr);
  ASSERT_NE(options->Find("fingerprint"), nullptr);

  const JsonValue* quality = doc.Find("quality");
  ASSERT_NE(quality, nullptr);
  EXPECT_DOUBLE_EQ(quality->Find("label_accuracy")->number(), 0.93);

  // The sampled trajectories survive the round trip.
  const JsonValue* series = doc.Find("timeseries");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->kind(), JsonValue::Kind::kArray);
  EXPECT_GE(series->array().size(), 3u);
  size_t nonempty = 0;
  for (const auto& s : series->array()) {
    const JsonValue* pts = s.Find("points");
    ASSERT_NE(pts, nullptr);
    if (!pts->array().empty()) ++nonempty;
  }
  EXPECT_GE(nonempty, 3u);

  // Histogram quantiles are part of the metrics section (whether this
  // small run recorded any histograms depends on rebuild/spill
  // activity; HistogramQuantilesInReport pins the key set).
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* hists = metrics->Find("histograms");
  ASSERT_NE(hists, nullptr);
  for (const auto& [name, h] : hists->members()) {
    EXPECT_NE(h.Find("p50"), nullptr) << name;
    EXPECT_NE(h.Find("p99"), nullptr) << name;
  }
}

TEST_F(TelemetryTest, HistogramQuantilesInReport) {
  // Synthetic result with one known histogram: the report must carry
  // count/sum/min/max/mean plus the four quantile estimates.
  BirchOptions o = SmallOptions(4);
  BirchResult r;
  obs::HistogramSnapshot h;
  for (double v : {2.0, 4.0, 8.0, 100.0}) {
    h.buckets.resize(obs::Histogram::kNumBuckets, 0);
    ++h.buckets[obs::Histogram::BucketIndex(v)];
    ++h.count;
    h.sum += v;
    h.min = h.count == 1 ? v : std::min(h.min, v);
    h.max = std::max(h.max, v);
  }
  r.metrics.histograms["synthetic/us"] = h;

  RunReportInputs in;
  in.options = &o;
  in.dataset_name = "synthetic";
  in.result = &r;
  const std::string path = TempPath("run_report_hist.json");
  ASSERT_TRUE(WriteRunReport(path, in).ok());
  auto doc_or = ReadRunReport(path);
  ASSERT_TRUE(doc_or.ok());
  const JsonValue* hist =
      doc_or.value().Find("metrics")->Find("histograms")->Find(
          "synthetic/us");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number(), 4.0);
  EXPECT_DOUBLE_EQ(hist->Find("min")->number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->Find("max")->number(), 100.0);
  for (const char* q : {"p50", "p90", "p99", "p999"}) {
    const JsonValue* v = hist->Find(q);
    ASSERT_NE(v, nullptr) << q;
    EXPECT_GE(v->number(), 2.0) << q;
    EXPECT_LE(v->number(), 100.0) << q;
  }
}

TEST_F(TelemetryTest, RunReportWrittenOnFailure) {
  // A failed run still gets a report: null result, non-OK status, and
  // whatever series the (caller-owned) sampler collected.
  BirchOptions o = SmallOptions(4);
  RunReportInputs in;
  in.options = &o;
  in.dataset_name = "doomed";
  in.status = Status::InvalidArgument("synthetic failure");
  obs::TimeSeriesSnapshot s;
  s.name = "tree/threshold";
  s.points.push_back({10, 1.5});
  in.timeseries.push_back(s);

  const std::string path = TempPath("run_report_failed.json");
  ASSERT_TRUE(WriteRunReport(path, in).ok());
  auto doc_or = ReadRunReport(path);
  ASSERT_TRUE(doc_or.ok());
  const JsonValue& doc = doc_or.value();
  EXPECT_FALSE(doc.Find("status")->Find("ok")->boolean());
  EXPECT_EQ(doc.Find("timings"), nullptr);  // no result, no timings
  const JsonValue* series = doc.Find("timeseries");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array().size(), 1u);
  EXPECT_EQ(series->array()[0].Find("name")->string_value(),
            "tree/threshold");
}

TEST_F(TelemetryTest, RunReportRequiresOptions) {
  RunReportInputs in;  // options left null
  Status st = WriteRunReport(TempPath("run_report_null.json"), in);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(TelemetryTest, ReadRejectsWrongSchemaAndVersion) {
  const std::string wrong_schema = TempPath("report_wrong_schema.json");
  ASSERT_TRUE(WriteFileAtomic(wrong_schema,
                              R"({"schema": "not_a_run_report", )"
                              R"("schema_version": 1})")
                  .ok());
  EXPECT_EQ(ReadRunReport(wrong_schema).status().code(),
            StatusCode::kInvalidArgument);

  const std::string wrong_version = TempPath("report_wrong_version.json");
  ASSERT_TRUE(WriteFileAtomic(wrong_version,
                              R"({"schema": "birch_run_report", )"
                              R"("schema_version": 99})")
                  .ok());
  EXPECT_EQ(ReadRunReport(wrong_version).status().code(),
            StatusCode::kInvalidArgument);

  const std::string garbage = TempPath("report_garbage.json");
  ASSERT_TRUE(WriteFileAtomic(garbage, "{\"schema\": \"birch_").ok());
  EXPECT_EQ(ReadRunReport(garbage).status().code(),
            StatusCode::kCorruption);

  EXPECT_FALSE(ReadRunReport(TempPath("no_such_report.json")).ok());
}

TEST_F(TelemetryTest, OptionsFingerprintTracksBehaviorNotTelemetry) {
  BirchOptions a = SmallOptions(8);
  BirchOptions b = SmallOptions(8);
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  // Telemetry knobs never change the fingerprint...
  b.obs.sample_every_ms = 50;
  b.obs.series_capacity = 16;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  // ...behavioral knobs always do.
  b.k = 9;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
  b = SmallOptions(8);
  b.tree.initial_threshold = 0.5;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
  b = SmallOptions(8);
  b.resources.memory_bytes += 1024;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
}

TEST_F(TelemetryTest, ValidateRejectsZeroSeriesCapacity) {
  BirchOptions o = SmallOptions(8);
  o.obs.sample_every_ms = 10;
  o.obs.series_capacity = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.obs.series_capacity = 4;
  EXPECT_TRUE(o.Validate().ok());
}

TEST_F(TelemetryTest, JsonWriterParserRoundTrip) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "sp\"ec\\ial\n");
  w.KV("int", static_cast<int64_t>(-42));
  w.KV("big", static_cast<uint64_t>(1) << 53);
  w.KV("pi", 3.141592653589793);
  w.KV("flag", true);
  w.Key("null_key").Null();
  w.Key("nested").BeginArray();
  w.BeginObject();
  w.KV("x", 1.5);
  w.EndObject();
  w.Value(static_cast<int64_t>(7));
  w.EndArray();
  w.EndObject();

  auto doc_or = JsonValue::Parse(w.str());
  ASSERT_TRUE(doc_or.ok()) << doc_or.status().ToString();
  const JsonValue& doc = doc_or.value();
  EXPECT_EQ(doc.Find("name")->string_value(), "sp\"ec\\ial\n");
  EXPECT_DOUBLE_EQ(doc.Find("int")->number(), -42.0);
  EXPECT_DOUBLE_EQ(doc.Find("big")->number(), 9007199254740992.0);
  EXPECT_DOUBLE_EQ(doc.Find("pi")->number(), 3.141592653589793);
  EXPECT_TRUE(doc.Find("flag")->boolean());
  EXPECT_EQ(doc.Find("null_key")->kind(), JsonValue::Kind::kNull);
  const JsonValue* nested = doc.Find("nested");
  ASSERT_EQ(nested->array().size(), 2u);
  EXPECT_DOUBLE_EQ(nested->array()[0].Find("x")->number(), 1.5);
  EXPECT_DOUBLE_EQ(nested->array()[1].number(), 7.0);
}

TEST_F(TelemetryTest, JsonParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,2", "{\"a\": }", "{\"a\": 1,}", "[1 2]",
        "\"unterminated", "{\"a\": 1} trailing", "nul", "01",
        "{\"a\"}", "1e", "-"}) {
    EXPECT_EQ(JsonValue::Parse(bad).status().code(),
              StatusCode::kCorruption)
        << "input: " << bad;
  }
  // Depth bomb: past the parser's recursion limit.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_EQ(JsonValue::Parse(deep).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace birch
