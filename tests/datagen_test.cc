// Generator tests: placement patterns, point-count/radius statistics,
// noise, orderings and the canned paper datasets of Table 3.
#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/paper_datasets.h"
#include "util/math.h"

namespace birch {
namespace {

TEST(GeneratorTest, GridCentersOnLattice) {
  GeneratorOptions o;
  o.k = 9;
  o.pattern = PlacementPattern::kGrid;
  o.grid_spacing = 5.0;
  Rng rng(1);
  auto centers = PlaceCenters(o, &rng);
  ASSERT_EQ(centers.size(), 9u);
  for (const auto& c : centers) {
    EXPECT_NEAR(std::fmod(c[0], 5.0), 0.0, 1e-9);
    EXPECT_NEAR(std::fmod(c[1], 5.0), 0.0, 1e-9);
  }
  // All distinct.
  for (size_t i = 0; i < centers.size(); ++i) {
    for (size_t j = i + 1; j < centers.size(); ++j) {
      EXPECT_GT(SquaredDistance(centers[i], centers[j]), 1.0);
    }
  }
}

TEST(GeneratorTest, SineCentersFollowCurve) {
  GeneratorOptions o;
  o.k = 100;
  o.pattern = PlacementPattern::kSine;
  o.sine_cycles = 4;
  Rng rng(2);
  auto centers = PlaceCenters(o, &rng);
  ASSERT_EQ(centers.size(), 100u);
  // x marches monotonically; y oscillates (takes both signs).
  double min_y = 1e9, max_y = -1e9;
  for (size_t i = 1; i < centers.size(); ++i) {
    EXPECT_GT(centers[i][0], centers[i - 1][0]);
    min_y = std::min(min_y, centers[i][1]);
    max_y = std::max(max_y, centers[i][1]);
  }
  EXPECT_LT(min_y, 0.0);
  EXPECT_GT(max_y, 0.0);
}

TEST(GeneratorTest, RandomCentersInRange) {
  GeneratorOptions o;
  o.k = 50;
  o.pattern = PlacementPattern::kRandom;
  o.random_range = 77.0;
  Rng rng(3);
  auto centers = PlaceCenters(o, &rng);
  for (const auto& c : centers) {
    EXPECT_GE(c[0], 0.0);
    EXPECT_LT(c[0], 77.0);
    EXPECT_GE(c[1], 0.0);
    EXPECT_LT(c[1], 77.0);
  }
}

TEST(GeneratorTest, ClusterRadiusMatchesParameter) {
  GeneratorOptions o;
  o.k = 4;
  o.n_low = o.n_high = 4000;
  o.r_low = o.r_high = 2.0;
  o.grid_spacing = 50.0;
  o.seed = 4;
  auto gen = Generate(o);
  ASSERT_TRUE(gen.ok());
  for (const auto& a : gen.value().actual) {
    // CF radius (RMS distance to centroid) ~ r by construction.
    EXPECT_NEAR(a.cf.Radius(), 2.0, 0.1);
    EXPECT_EQ(a.cf.n(), a.points);
  }
}

TEST(GeneratorTest, PointCountsInRangeAndTruthConsistent) {
  GeneratorOptions o;
  o.k = 20;
  o.n_low = 10;
  o.n_high = 200;
  o.seed = 5;
  auto gen = Generate(o);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  ASSERT_EQ(g.truth.size(), g.data.size());
  std::vector<int> counts(20, 0);
  for (int t : g.truth) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 20);
    ++counts[static_cast<size_t>(t)];
  }
  for (int c = 0; c < 20; ++c) {
    EXPECT_GE(counts[static_cast<size_t>(c)], 10);
    EXPECT_LE(counts[static_cast<size_t>(c)], 200);
    EXPECT_EQ(counts[static_cast<size_t>(c)],
              g.actual[static_cast<size_t>(c)].points);
  }
}

TEST(GeneratorTest, NoiseFractionHonored) {
  GeneratorOptions o;
  o.k = 10;
  o.n_low = o.n_high = 500;
  o.noise_fraction = 0.10;
  o.seed = 6;
  auto gen = Generate(o);
  ASSERT_TRUE(gen.ok());
  size_t noise = 0;
  for (int t : gen.value().truth) noise += (t == -1);
  double frac = static_cast<double>(noise) /
                static_cast<double>(gen.value().truth.size());
  EXPECT_NEAR(frac, 0.10, 0.01);
}

TEST(GeneratorTest, OrderedEmitsClustersContiguously) {
  GeneratorOptions o;
  o.k = 5;
  o.n_low = o.n_high = 100;
  o.order = InputOrder::kOrdered;
  o.seed = 7;
  auto gen = Generate(o);
  ASSERT_TRUE(gen.ok());
  const auto& truth = gen.value().truth;
  // Labels must be non-decreasing (noise -1 at the end).
  int last = 0;
  for (int t : truth) {
    if (t == -1) break;
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(GeneratorTest, RandomizedShufflesOrder) {
  GeneratorOptions o;
  o.k = 5;
  o.n_low = o.n_high = 100;
  o.order = InputOrder::kRandomized;
  o.seed = 8;
  auto gen = Generate(o);
  ASSERT_TRUE(gen.ok());
  const auto& truth = gen.value().truth;
  // A shuffled sequence has many adjacent label changes.
  int changes = 0;
  for (size_t i = 1; i < truth.size(); ++i) changes += truth[i] != truth[i - 1];
  EXPECT_GT(changes, static_cast<int>(truth.size()) / 3);
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions o;
  o.k = 4;
  o.n_low = o.n_high = 50;
  o.seed = 9;
  auto g1 = Generate(o);
  auto g2 = Generate(o);
  ASSERT_TRUE(g1.ok() && g2.ok());
  ASSERT_EQ(g1.value().data.size(), g2.value().data.size());
  for (size_t i = 0; i < g1.value().data.size(); ++i) {
    auto r1 = g1.value().data.Row(i), r2 = g2.value().data.Row(i);
    EXPECT_EQ(std::vector<double>(r1.begin(), r1.end()),
              std::vector<double>(r2.begin(), r2.end()));
  }
}

TEST(GeneratorTest, MaxDistanceBoundsOutsiders) {
  GeneratorOptions o;
  o.k = 3;
  o.n_low = o.n_high = 2000;
  o.r_low = o.r_high = 1.0;
  o.grid_spacing = 100.0;
  o.max_distance_radii = 2.0;
  o.seed = 10;
  auto gen = Generate(o);
  ASSERT_TRUE(gen.ok());
  const auto& g = gen.value();
  for (size_t i = 0; i < g.data.size(); ++i) {
    const auto& a = g.actual[static_cast<size_t>(g.truth[i])];
    EXPECT_LE(Distance(g.data.Row(i), a.center), 2.0 + 1e-9);
  }
}

TEST(GeneratorTest, InvalidParamsRejected) {
  GeneratorOptions o;
  o.k = 0;
  EXPECT_FALSE(Generate(o).ok());
  o.k = 3;
  o.n_low = 10;
  o.n_high = 5;
  EXPECT_FALSE(Generate(o).ok());
  o.n_high = 20;
  o.r_low = 2.0;
  o.r_high = 1.0;
  EXPECT_FALSE(Generate(o).ok());
  o.r_high = 3.0;
  o.noise_fraction = 1.0;
  EXPECT_FALSE(Generate(o).ok());
}

TEST(PaperDatasetsTest, Table3Shapes) {
  // DS1: 100 clusters x 1000 points, no noise, randomized.
  auto ds1 = GeneratePaperDataset(PaperDataset::kDS1);
  ASSERT_TRUE(ds1.ok());
  EXPECT_EQ(ds1.value().data.size(), 100000u);
  EXPECT_EQ(ds1.value().actual.size(), 100u);

  // DS3: n uniform in [0, 2000] => ~100k total.
  auto ds3 = GeneratePaperDataset(PaperDataset::kDS3);
  ASSERT_TRUE(ds3.ok());
  EXPECT_NEAR(static_cast<double>(ds3.value().data.size()), 100000.0,
              25000.0);
}

TEST(PaperDatasetsTest, OverridesScaleDatasets) {
  auto small = GeneratePaperDataset(PaperDataset::kDS1, /*k=*/4, /*n=*/50);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value().data.size(), 200u);
  EXPECT_EQ(small.value().actual.size(), 4u);
}

TEST(PaperDatasetsTest, NamesAndOrderedVariants) {
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kDS2), "DS2");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kDS3o), "DS3o");
  EXPECT_EQ(PaperDatasetOptions(PaperDataset::kDS1o).order,
            InputOrder::kOrdered);
  EXPECT_EQ(PaperDatasetOptions(PaperDataset::kDS1).order,
            InputOrder::kRandomized);
}

}  // namespace
}  // namespace birch
