// The CF tree (Sec. 4.2-4.3): a height-balanced tree of CF entries with
// branching factor B, leaf capacity L and absorption threshold T, built
// incrementally in a single scan under a byte-accounted memory budget.
//
// Insertion descends to the closest leaf entry by the configured metric,
// absorbs the new point into it if the merged cluster stays within the
// threshold condition (diameter or radius <= T), otherwise adds a new
// entry, splitting nodes upward with farthest-pair seeding when they
// overflow, followed by the paper's merging refinement. Rebuilding
// (Sec. 5.1) reinserts leaf entries under a larger threshold while
// freeing old pages before allocating new ones, so it runs inside the
// same memory budget (the Reducibility Theorem's "h extra pages").
#ifndef BIRCH_BIRCH_CF_TREE_H_
#define BIRCH_BIRCH_CF_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "birch/cf_node.h"
#include "birch/cf_vector.h"
#include "birch/metrics.h"
#include "pagestore/memory_tracker.h"

namespace birch {

/// Which cluster statistic the absorption threshold T bounds.
enum class ThresholdKind { kDiameter = 0, kRadius };

/// Static configuration of a CF tree.
struct CfTreeOptions {
  size_t dim = 2;
  size_t page_size = 1024;
  double threshold = 0.0;
  DistanceMetric metric = DistanceMetric::kD2;
  ThresholdKind threshold_kind = ThresholdKind::kDiameter;
  bool merging_refinement = true;
  /// CF algebra for every entry in the tree (see cf_vector.h). All CFs
  /// inserted via InsertEntry/AbsorbTree must carry the same policy.
  CfRepresentation cf = CfRepresentation::kClassic;
  /// Stored precision of CF components. kF32 (BETULA only) doubles the
  /// per-page entry capacities B and L.
  CfStorage cf_storage = CfStorage::kF64;
  /// Distance-scan implementation for descent and absorption tests.
  /// kBatch scans each node's SoA scratch block; kScalar is the
  /// per-entry oracle; the two are bitwise identical. kBatchFast
  /// additionally routes the descent scans through the FMA/AVX-512
  /// column primitives when the CPU has them — faster, same structure,
  /// but last-ulp distances may differ from the oracle (absorption
  /// tests still use the exact merged statistics).
  KernelKind kernel = KernelKind::kBatch;
};

/// Operation counters (cost-model benchmarks read these).
struct CfTreeStats {
  uint64_t inserts = 0;
  uint64_t absorbed = 0;
  uint64_t new_entries = 0;
  uint64_t rejected = 0;
  uint64_t leaf_splits = 0;
  uint64_t nonleaf_splits = 0;
  uint64_t merge_refinements = 0;
  uint64_t resplits = 0;
  uint64_t rebuilds = 0;
  uint64_t distance_comparisons = 0;
};

/// What happened to an inserted entry.
enum class InsertOutcome {
  kAbsorbed,   // merged into an existing leaf entry
  kNewEntry,   // added as a fresh leaf entry, no split
  kSplit,      // added, one or more nodes split
  kRejected,   // the insert needed more than the mode allows
};

/// How much the tree may change to accommodate an insert.
enum class InsertMode {
  kNormal,      // absorb, add, or split as needed
  kNoSplit,     // absorb or add, but reject if a split is required
                // (delay-split option)
  kAbsorbOnly,  // only merge into an existing entry (outlier
                // re-absorption: a true outlier must not re-enter the
                // tree as a fresh entry)
};

/// The CF tree. Not copyable; owns its nodes and charges `mem` one page
/// per node (ForceAllocate — the caller polls over_budget() and
/// rebuilds, mirroring the paper's Phase 1 control flow).
class CfTree {
 public:
  CfTree(const CfTreeOptions& options, MemoryTracker* mem);
  ~CfTree();

  CfTree(const CfTree&) = delete;
  CfTree& operator=(const CfTree&) = delete;

  /// Inserts a single (optionally weighted) data point.
  InsertOutcome InsertPoint(std::span<const double> x, double weight = 1.0,
                            InsertMode mode = InsertMode::kNormal);

  /// Inserts a subcluster CF ("Ent" in the paper). Under kNoSplit /
  /// kAbsorbOnly the tree is left untouched when the insert would need
  /// more than the mode allows (kRejected).
  InsertOutcome InsertEntry(const CfVector& entry,
                            InsertMode mode = InsertMode::kNormal);

  /// Absorbs every leaf entry of `other` into this tree (CF additivity
  /// makes the merge exact at subcluster granularity). `other` is left
  /// unchanged. This realizes the paper's parallelism sketch: partition
  /// the data, build independent CF trees, merge the summaries.
  void AbsorbTree(const CfTree& other);

  /// Rebuilds the tree in place with threshold `new_threshold`
  /// (Sec. 5.1): leaf entries are reinserted in chain order; old pages
  /// are freed before new ones are allocated. Entries with fewer than
  /// `outlier_n_threshold` points are appended to `*outliers` instead
  /// of being reinserted (pass 0 / nullptr to disable).
  void Rebuild(double new_threshold, double outlier_n_threshold = 0.0,
               std::vector<CfVector>* outliers = nullptr);

  // --- Introspection ---

  double threshold() const { return threshold_; }
  const CfLayout& layout() const { return layout_; }
  const CfTreeOptions& options() const { return options_; }
  const CfTreeStats& stats() const { return stats_; }
  MemoryTracker* memory() const { return mem_; }
  bool over_budget() const { return mem_->over_budget(); }

  size_t node_count() const { return node_count_; }
  size_t leaf_entry_count() const { return leaf_entries_; }
  size_t height() const { return height_; }
  const CfNode* root() const { return root_; }
  const CfNode* first_leaf() const { return first_leaf_; }

  /// CF of the entire tree contents.
  CfVector TreeSummary() const { return root_->Summary(); }

  /// Appends every leaf entry (chain order) to `out`.
  void CollectLeafEntries(std::vector<CfVector>* out) const;

  /// Calls `fn` for each leaf node in chain order.
  void ForEachLeaf(const std::function<void(const CfNode&)>& fn) const;

  /// The threshold statistic (diameter or radius per options) the merge
  /// of `a` and `b` would have. Rebuilding with a threshold >= this
  /// value allows the pair to merge.
  double MergedThresholdValue(const CfVector& a, const CfVector& b) const;

  /// d_min of Sec. 5.1.3: the smallest merged threshold value among
  /// entry pairs of the most crowded leaf. Returns 0 if no leaf has two
  /// entries.
  double MostCrowdedLeafMinMerge() const;

  /// Average radius over leaf entries (threshold heuristic input).
  double AverageLeafEntryRadius() const;

  /// Validates structural invariants (capacities, summaries match
  /// children, chain consistency, uniform leaf depth). Test support;
  /// returns false and fills `*why` on violation.
  bool CheckInvariants(std::string* why) const;

  /// Publishes per-level occupancy gauges ("tree/l<depth>/nodes",
  /// "tree/l<depth>/entries") plus height/leaf-entry/occupancy gauges
  /// to the default obs registry. Cold path — call at phase
  /// boundaries, not per insert. No-op when obs is disabled.
  void ExportOccupancy() const;

 private:
  friend class TreeIO;  // persistence needs the raw node structure

  struct PathStep {
    CfNode* node;
    size_t child;
  };

  CfNode* AllocNode(bool leaf);
  void FreeNode(CfNode* node);
  void FreeNonleafSkeleton(CfNode* node);

  size_t Capacity(const CfNode& node) const {
    return node.is_leaf ? layout_.L() : layout_.B();
  }

  /// Index of the entry of `node` closest to `cf` (metric distance).
  /// Returns SIZE_MAX if the node is empty. `query` (batch kernels
  /// only) carries the query-side precomputations, prepared once per
  /// insert and reused down the whole descent; nullptr prepares a
  /// fresh one for this node.
  size_t ClosestIndex(const CfNode& node, const CfVector& cf,
                      const kernel::CfQuery* query = nullptr) const;

  bool CanAbsorb(const CfVector& existing, const CfVector& incoming) const;

  /// Rebuilds `node.scratch` from its entries if stale (kBatch only).
  void EnsureScratch(const CfNode& node) const;

  /// Splits an over-full node with farthest-pair seeding; returns the
  /// new right sibling and maintains the leaf chain.
  CfNode* SplitNode(CfNode* node);

  /// Paper's merging refinement at `parent` after a split stopped
  /// there; `split_a`/`split_b` are the entry indices produced by the
  /// split.
  void MergingRefinement(CfNode* parent, size_t split_a, size_t split_b);

  void UnlinkLeaf(CfNode* leaf);

  CfTreeOptions options_;
  CfLayout layout_;
  double threshold_;
  MemoryTracker* mem_;
  /// Non-null only under kBatchFast: the FMA/AVX-512 column-primitive
  /// table the descent scans use (resolved once at construction;
  /// nullptr means NearestEntry uses the correctly-rounded dispatch).
  const kernel::detail::Ops* descent_ops_ = nullptr;

  CfNode* root_ = nullptr;
  CfNode* first_leaf_ = nullptr;
  size_t node_count_ = 0;
  size_t leaf_entries_ = 0;
  size_t height_ = 1;
  mutable CfTreeStats stats_;  // mutable: const lookups count comparisons
  /// Reusable batch-scan workspace (distance array, query centroid).
  /// The tree is externally synchronized (one writer), so sharing one
  /// workspace across const lookups is safe, like stats_.
  mutable kernel::Workspace ws_;
  /// Reused per-insert buffers (InsertEntry is not reentrant): the
  /// point's CF and the root-to-leaf descent path. Both would otherwise
  /// cost a malloc/free pair on every insert.
  CfVector point_cf_;
  std::vector<PathStep> path_;
};

}  // namespace birch

#endif  // BIRCH_BIRCH_CF_TREE_H_
