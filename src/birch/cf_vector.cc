#include "birch/cf_vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "util/math.h"

namespace birch {

namespace {

// GuardedNonNegative plus trip counters: each time the guard clamps a
// nonzero raw difference to 0 (catastrophic cancellation, tiny
// negative, or NaN) the "cf/cancellation_guard" counter ticks, so a
// run can report how often the numerical floor was actually hit. When
// the destroyed value was RELATIVELY LARGE (above kClampVisibleTol of
// the operands' magnitude) the clamp is not hiding harmless dust but
// an actually-degraded statistic — "cf/cancellation_clamped" ticks so
// the degradation is visible in --metrics instead of silent. The
// tolerance sits between the few-ulp dust a well-conditioned
// computation leaves (~1e-15 of magnitude) and the guard's own 1e-12
// window, so it fires exactly when real structure is being swallowed.
constexpr double kClampVisibleTol = 1e-14;  // ~45 double ulps

double GuardedStat(double x, double magnitude) {
  double g = GuardedNonNegative(x, magnitude);
  if (g == 0.0 && x != 0.0) {
    OBS_COUNTER_INC("cf/cancellation_guard");
    if (std::fabs(x) > kClampVisibleTol * magnitude) {
      OBS_COUNTER_INC("cf/cancellation_clamped");
    }
  }
  return g;
}

}  // namespace

const char* CfRepresentationName(CfRepresentation rep) {
  switch (rep) {
    case CfRepresentation::kClassic: return "classic";
    case CfRepresentation::kBetula: return "betula";
  }
  return "?";
}

const char* CfStorageName(CfStorage storage) {
  switch (storage) {
    case CfStorage::kF64: return "f64";
    case CfStorage::kF32: return "f32";
  }
  return "?";
}

CfVector CfVector::FromPoint(std::span<const double> x, double weight,
                             CfRepresentation rep, CfStorage storage) {
  CfVector cf(x.size(), rep, storage);
  cf.AddPoint(x, weight);
  return cf;
}

void CfVector::AssignPoint(std::span<const double> x, double weight) {
  vec_.assign(x.size(), 0.0);  // no realloc once sized
  n_ = 0.0;
  scalar_ = 0.0;
  AddPoint(x, weight);
}

void CfVector::Add(const CfVector& other) {
  if (vec_.empty()) vec_.assign(other.dim(), 0.0);
  assert(dim() == other.dim());
  if (n_ <= 0.0) {
    // An empty accumulator adopts the incoming policies; with matching
    // policies the general paths below then reduce to an exact copy.
    rep_ = other.rep_;
    storage_ = other.storage_;
  }
  assert(rep_ == other.rep_);
  if (rep_ == CfRepresentation::kClassic) {
    n_ += other.n_;
    for (size_t i = 0; i < vec_.size(); ++i) vec_[i] += other.vec_[i];
    scalar_ += other.scalar_;
  } else if (other.n_ > 0.0) {
    // Chan-style merge. With na = n_, nb = other.n_:
    //   mean' = mean + (nb/nm) * (mean_b - mean)
    //   S'    = S_a + S_b + (na*nb/nm) * ||mean_b - mean_a||^2
    // Every term is non-negative where it matters: no cancellation.
    // The operation ORDER here is a contract — the kernel's
    // MergedDiameter/MergedRadius and D3/D4 scans replicate it
    // exactly for bitwise scalar/batch equivalence.
    const double nm = n_ + other.n_;
    const double f = other.n_ / nm;
    const double coef = n_ * f;  // na*nb/nm
    double dsq = 0.0;
    for (size_t i = 0; i < vec_.size(); ++i) {
      const double d = other.vec_[i] - vec_[i];
      vec_[i] += f * d;
      dsq += d * d;
    }
    scalar_ += other.scalar_ + coef * dsq;
    n_ = nm;
  }
  QuantizeStorage();
}

void CfVector::Subtract(const CfVector& other) {
  assert(dim() == other.dim());
  assert(rep_ == other.rep_);
  if (rep_ == CfRepresentation::kClassic) {
    n_ -= other.n_;
    for (size_t i = 0; i < vec_.size(); ++i) vec_[i] -= other.vec_[i];
    scalar_ -= other.scalar_;
    if (n_ < 0) n_ = 0;
    if (scalar_ < 0) scalar_ = 0;
  } else {
    // Inverse of the Chan merge: recover (na, mean_a, S_a) from the
    // merged CF and the removed part b.
    const double nm = n_;
    const double na = nm - other.n_;
    if (na <= 0.0) {
      std::fill(vec_.begin(), vec_.end(), 0.0);
      n_ = 0.0;
      scalar_ = 0.0;
      return;
    }
    const double f = other.n_ / na;
    double dsq = 0.0;
    for (size_t i = 0; i < vec_.size(); ++i) {
      const double d = vec_[i] - other.vec_[i];
      vec_[i] += f * d;  // mean_a = mean_m + (nb/na)*(mean_m - mean_b)
      const double da = vec_[i] - other.vec_[i];
      dsq += da * da;
    }
    const double coef = na * (other.n_ / nm);  // na*nb/nm
    scalar_ -= other.scalar_ + coef * dsq;
    if (scalar_ < 0) scalar_ = 0;
    n_ = na;
  }
  QuantizeStorage();
}

void CfVector::AddPoint(std::span<const double> x, double weight) {
  if (vec_.empty()) vec_.assign(x.size(), 0.0);
  assert(dim() == x.size());
  if (rep_ == CfRepresentation::kClassic) {
    n_ += weight;
    double sq = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      vec_[i] += weight * x[i];
      sq += x[i] * x[i];
    }
    scalar_ += weight * sq;
  } else {
    // Weighted Welford update: delta against the old mean, deviation
    // product against the new one. Exact for the empty case (mean
    // becomes x, S stays 0).
    const double np = n_ + weight;
    const double f = weight / np;
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - vec_[i];
      vec_[i] += f * d;
      s += d * (x[i] - vec_[i]);
    }
    scalar_ += weight * s;
    n_ = np;
  }
  QuantizeStorage();
}

CfVector CfVector::Merged(const CfVector& a, const CfVector& b) {
  CfVector out = a;
  out.Add(b);
  return out;
}

std::vector<double> CfVector::Centroid() const {
  std::vector<double> c;
  CentroidInto(&c);
  return c;
}

void CfVector::CentroidInto(std::vector<double>* out) const {
  out->assign(vec_.size(), 0.0);
  if (n_ <= 0.0) return;
  if (rep_ == CfRepresentation::kBetula) {
    std::copy(vec_.begin(), vec_.end(), out->begin());
    return;
  }
  for (size_t i = 0; i < vec_.size(); ++i) (*out)[i] = vec_[i] / n_;
}

double CfVector::SquaredRadius() const {
  if (n_ <= 0.0) return 0.0;
  if (rep_ == CfRepresentation::kBetula) {
    // S/N, a quotient of non-negatives: no cancellation to guard.
    return ClampNonNegative(scalar_ / n_);
  }
  // Far from the origin SS/N and ||LS/N||^2 are huge and nearly equal;
  // the guard zeroes results below the cancellation noise floor so a
  // tight distant cluster reports radius 0 instead of sqrt(garbage).
  return GuardedStat(scalar_ / n_ - SquaredNorm(vec_) / (n_ * n_),
                     scalar_ / n_);
}

double CfVector::Radius() const { return std::sqrt(SquaredRadius()); }

double CfVector::SquaredDiameter() const {
  if (n_ <= 1.0) return 0.0;
  if (rep_ == CfRepresentation::kBetula) {
    return ClampNonNegative(2.0 * scalar_ / (n_ - 1.0));
  }
  double num = 2.0 * (n_ * scalar_ - SquaredNorm(vec_));
  return GuardedStat(num / (n_ * (n_ - 1.0)), 2.0 * scalar_ / (n_ - 1.0));
}

double CfVector::Diameter() const { return std::sqrt(SquaredDiameter()); }

double CfVector::SumSquaredDeviation() const {
  if (n_ <= 0.0) return 0.0;
  if (rep_ == CfRepresentation::kBetula) return scalar_;
  return GuardedStat(scalar_ - SquaredNorm(vec_) / n_, scalar_);
}

void CfVector::SerializeTo(std::vector<double>* out) const {
  out->push_back(n_);
  out->insert(out->end(), vec_.begin(), vec_.end());
  out->push_back(scalar_);
}

CfVector CfVector::Deserialize(std::span<const double> in, size_t dim,
                               CfRepresentation rep, CfStorage storage) {
  assert(in.size() >= dim + 2);
  CfVector cf(dim, rep, storage);
  cf.n_ = in[0];
  for (size_t i = 0; i < dim; ++i) cf.vec_[i] = in[1 + i];
  cf.scalar_ = in[dim + 1];
  return cf;
}

}  // namespace birch
