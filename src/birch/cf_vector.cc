#include "birch/cf_vector.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "util/math.h"

namespace birch {

namespace {

// GuardedNonNegative plus a trip counter: each time the guard clamps a
// nonzero raw difference to 0 (catastrophic cancellation, tiny
// negative, or NaN) the "cf/cancellation_guard" counter ticks, so a
// run can report how often the numerical floor was actually hit.
double GuardedStat(double x, double magnitude) {
  double g = GuardedNonNegative(x, magnitude);
  if (g == 0.0 && x != 0.0) OBS_COUNTER_INC("cf/cancellation_guard");
  return g;
}

}  // namespace

CfVector CfVector::FromPoint(std::span<const double> x, double weight) {
  CfVector cf(x.size());
  cf.AddPoint(x, weight);
  return cf;
}

void CfVector::AssignPoint(std::span<const double> x, double weight) {
  ls_.assign(x.size(), 0.0);  // no realloc once sized
  n_ = 0.0;
  ss_ = 0.0;
  AddPoint(x, weight);
}

void CfVector::Add(const CfVector& other) {
  if (ls_.empty()) ls_.assign(other.dim(), 0.0);
  assert(dim() == other.dim());
  n_ += other.n_;
  for (size_t i = 0; i < ls_.size(); ++i) ls_[i] += other.ls_[i];
  ss_ += other.ss_;
}

void CfVector::Subtract(const CfVector& other) {
  assert(dim() == other.dim());
  n_ -= other.n_;
  for (size_t i = 0; i < ls_.size(); ++i) ls_[i] -= other.ls_[i];
  ss_ -= other.ss_;
  if (n_ < 0) n_ = 0;
  if (ss_ < 0) ss_ = 0;
}

void CfVector::AddPoint(std::span<const double> x, double weight) {
  if (ls_.empty()) ls_.assign(x.size(), 0.0);
  assert(dim() == x.size());
  n_ += weight;
  double sq = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    ls_[i] += weight * x[i];
    sq += x[i] * x[i];
  }
  ss_ += weight * sq;
}

CfVector CfVector::Merged(const CfVector& a, const CfVector& b) {
  CfVector out = a;
  out.Add(b);
  return out;
}

std::vector<double> CfVector::Centroid() const {
  std::vector<double> c;
  CentroidInto(&c);
  return c;
}

void CfVector::CentroidInto(std::vector<double>* out) const {
  out->assign(ls_.size(), 0.0);
  if (n_ <= 0.0) return;
  for (size_t i = 0; i < ls_.size(); ++i) (*out)[i] = ls_[i] / n_;
}

double CfVector::SquaredRadius() const {
  if (n_ <= 0.0) return 0.0;
  // Far from the origin SS/N and ||LS/N||^2 are huge and nearly equal;
  // the guard zeroes results below the cancellation noise floor so a
  // tight distant cluster reports radius 0 instead of sqrt(garbage).
  return GuardedStat(ss_ / n_ - SquaredNorm(ls_) / (n_ * n_), ss_ / n_);
}

double CfVector::Radius() const { return std::sqrt(SquaredRadius()); }

double CfVector::SquaredDiameter() const {
  if (n_ <= 1.0) return 0.0;
  double num = 2.0 * (n_ * ss_ - SquaredNorm(ls_));
  return GuardedStat(num / (n_ * (n_ - 1.0)), 2.0 * ss_ / (n_ - 1.0));
}

double CfVector::Diameter() const { return std::sqrt(SquaredDiameter()); }

double CfVector::SumSquaredDeviation() const {
  if (n_ <= 0.0) return 0.0;
  return GuardedStat(ss_ - SquaredNorm(ls_) / n_, ss_);
}

void CfVector::SerializeTo(std::vector<double>* out) const {
  out->push_back(n_);
  out->insert(out->end(), ls_.begin(), ls_.end());
  out->push_back(ss_);
}

CfVector CfVector::Deserialize(std::span<const double> in, size_t dim) {
  assert(in.size() >= dim + 2);
  CfVector cf(dim);
  cf.n_ = in[0];
  for (size_t i = 0; i < dim; ++i) cf.ls_[i] = in[1 + i];
  cf.ss_ = in[dim + 1];
  return cf;
}

}  // namespace birch
