#include "birch/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pagestore/crc32c.h"
#include "pagestore/page_codec.h"
#include "util/timer.h"

namespace birch {

namespace {

constexpr char kMagic[8] = {'B', 'I', 'R', 'C', 'H', 'C', 'P', '1'};

// Section tags.
constexpr uint32_t kHeaderTag = 1;
constexpr uint32_t kFreezeTag = 2;
constexpr uint32_t kFooterTag = 3;

/// Little-endian append-only encoder.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bytes(const uint8_t* p, size_t n) { buf_.insert(buf_.end(), p, p + n); }
  void Doubles(const std::vector<double>& v) {
    for (double d : v) F64(d);
  }
  const std::vector<uint8_t>& data() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian decoder. Every getter returns false on
/// underflow; the caller turns that into kCorruption.
class ByteReader {
 public:
  ByteReader(const uint8_t* p, size_t n) : p_(p), end_(p + n) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

  bool U8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = *p_++;
    return true;
  }
  bool U32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t(*p_++) << (8 * i);
    return true;
  }
  bool U64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t(*p_++) << (8 * i);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  /// Reads `n` doubles; refuses counts larger than what is left.
  bool Doubles(uint64_t n, std::vector<double>* out) {
    if (remaining() / 8 < n) return false;
    out->resize(static_cast<size_t>(n));
    for (auto& d : *out) {
      if (!F64(&d)) return false;
    }
    return true;
  }
  bool Bytes(uint64_t n, std::vector<uint8_t>* out) {
    if (remaining() < n) return false;
    out->assign(p_, p_ + n);
    p_ += n;
    return true;
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

void EncodeFreeze(const Phase1Freeze& f, ByteWriter* w) {
  // Tree image + pages.
  w->U64(f.image.root);
  w->U64(f.image.dim);
  w->U64(f.image.page_size);
  w->F64(f.image.threshold);
  w->U64(f.image.node_count);
  w->U64(f.image.leaf_entries);
  w->U64(f.image.height);
  w->U32(static_cast<uint32_t>(f.image.cf));
  w->U32(f.image.cf_storage == CfStorage::kF32 ? 32 : 64);
  w->U64(f.image.leaf_chain.size());
  for (PageId id : f.image.leaf_chain) w->U64(id);
  w->U64(f.tree_pages.size());
  for (const auto& page : f.tree_pages) {
    w->U64(page.size());
    w->Bytes(page.data(), page.size());
  }
  // Pending spill records.
  w->U64(f.outlier_records.size());
  w->Doubles(f.outlier_records);
  w->U64(f.delayed_records.size());
  w->Doubles(f.delayed_records);
  // Threshold history.
  w->U64(f.threshold_history.size());
  for (const auto& obs : f.threshold_history) {
    w->F64(obs.log_points);
    w->F64(obs.log_radius);
  }
  // Final outliers (dim+2 doubles each, CfVector wire form).
  w->U64(f.final_outliers.size());
  std::vector<double> cf_buf;
  for (const auto& e : f.final_outliers) {
    cf_buf.clear();
    e.SerializeTo(&cf_buf);
    w->Doubles(cf_buf);
  }
  // Counters.
  w->U64(f.stats.points_added);
  w->U64(f.stats.rebuilds);
  w->U64(f.stats.outlier_entries_spilled);
  w->U64(f.stats.outlier_entries_reabsorbed);
  w->U64(f.stats.points_delay_spilled);
  w->U64(f.stats.reabsorb_cycles);
  w->U64(f.stats.forced_inserts);
  w->F64(f.stats.final_threshold);
  w->U64(f.robustness.transient_io_errors);
  w->U64(f.robustness.io_retries);
  w->U64(f.robustness.simulated_backoff_us);
  w->U64(f.robustness.checksum_failures);
  w->U64(f.robustness.pages_lost);
  w->U64(f.robustness.records_lost);
  w->U64(f.robustness.degradation_events);
  w->U64(f.robustness.fallback_absorbed);
  w->U64(f.robustness.fallback_dropped);
  w->U8(f.robustness.outlier_disk_disabled ? 1 : 0);
  // Modes + fault stream.
  w->U8(f.delay_mode ? 1 : 0);
  w->U8(f.disk_enabled ? 1 : 0);
  for (uint64_t s : f.fault_rng.s) w->U64(s);
  w->U8(f.fault_rng.has_gauss ? 1 : 0);
  w->F64(f.fault_rng.cached_gauss);
  w->U64(f.fault_stats.transient_reads);
  w->U64(f.fault_stats.transient_writes);
  w->U64(f.fault_stats.pages_lost);
  w->U64(f.fault_stats.bits_flipped);
}

bool DecodeFreeze(ByteReader* r, Phase1Freeze* f) {
  uint64_t u = 0;
  uint8_t b = 0;
  if (!r->U64(&f->image.root)) return false;
  if (!r->U64(&u)) return false;
  f->image.dim = static_cast<size_t>(u);
  if (!r->U64(&u)) return false;
  f->image.page_size = static_cast<size_t>(u);
  if (!r->F64(&f->image.threshold)) return false;
  if (!r->U64(&u)) return false;
  f->image.node_count = static_cast<size_t>(u);
  if (!r->U64(&u)) return false;
  f->image.leaf_entries = static_cast<size_t>(u);
  if (!r->U64(&u)) return false;
  f->image.height = static_cast<size_t>(u);
  uint32_t rep = 0, width = 0;
  if (!r->U32(&rep) || rep > 1) return false;
  f->image.cf = static_cast<CfRepresentation>(rep);
  if (!r->U32(&width) || (width != 32 && width != 64)) return false;
  f->image.cf_storage = width == 32 ? CfStorage::kF32 : CfStorage::kF64;
  uint64_t count = 0;
  if (!r->U64(&count) || r->remaining() / 8 < count) return false;
  f->image.leaf_chain.resize(static_cast<size_t>(count));
  for (auto& id : f->image.leaf_chain) {
    if (!r->U64(&id)) return false;
  }
  if (!r->U64(&count)) return false;
  // A page costs at least its 8-byte length field; anything claiming
  // more pages than the payload could frame is corrupt.
  if (r->remaining() / 8 < count) return false;
  f->tree_pages.resize(static_cast<size_t>(count));
  for (auto& page : f->tree_pages) {
    uint64_t bytes = 0;
    if (!r->U64(&bytes) || !r->Bytes(bytes, &page)) return false;
  }
  if (!r->U64(&count) || !r->Doubles(count, &f->outlier_records)) return false;
  if (!r->U64(&count) || !r->Doubles(count, &f->delayed_records)) return false;
  if (!r->U64(&count) || r->remaining() / 16 < count) return false;
  f->threshold_history.resize(static_cast<size_t>(count));
  for (auto& obs : f->threshold_history) {
    if (!r->F64(&obs.log_points) || !r->F64(&obs.log_radius)) return false;
  }
  if (!r->U64(&count)) return false;
  const size_t cf_doubles = CfVector::SerializedDoubles(f->image.dim);
  if (r->remaining() / 8 / cf_doubles < count) return false;
  f->final_outliers.clear();
  f->final_outliers.reserve(static_cast<size_t>(count));
  std::vector<double> cf_buf;
  for (uint64_t i = 0; i < count; ++i) {
    if (!r->Doubles(cf_doubles, &cf_buf)) return false;
    f->final_outliers.push_back(CfVector::Deserialize(
        std::span<const double>(cf_buf.data(), cf_doubles), f->image.dim,
        f->image.cf, f->image.cf_storage));
  }
  if (!r->U64(&f->stats.points_added)) return false;
  if (!r->U64(&f->stats.rebuilds)) return false;
  if (!r->U64(&f->stats.outlier_entries_spilled)) return false;
  if (!r->U64(&f->stats.outlier_entries_reabsorbed)) return false;
  if (!r->U64(&f->stats.points_delay_spilled)) return false;
  if (!r->U64(&f->stats.reabsorb_cycles)) return false;
  if (!r->U64(&f->stats.forced_inserts)) return false;
  if (!r->F64(&f->stats.final_threshold)) return false;
  if (!r->U64(&f->robustness.transient_io_errors)) return false;
  if (!r->U64(&f->robustness.io_retries)) return false;
  if (!r->U64(&f->robustness.simulated_backoff_us)) return false;
  if (!r->U64(&f->robustness.checksum_failures)) return false;
  if (!r->U64(&f->robustness.pages_lost)) return false;
  if (!r->U64(&f->robustness.records_lost)) return false;
  if (!r->U64(&f->robustness.degradation_events)) return false;
  if (!r->U64(&f->robustness.fallback_absorbed)) return false;
  if (!r->U64(&f->robustness.fallback_dropped)) return false;
  if (!r->U8(&b)) return false;
  f->robustness.outlier_disk_disabled = b != 0;
  if (!r->U8(&b)) return false;
  f->delay_mode = b != 0;
  if (!r->U8(&b)) return false;
  f->disk_enabled = b != 0;
  for (auto& s : f->fault_rng.s) {
    if (!r->U64(&s)) return false;
  }
  if (!r->U8(&b)) return false;
  f->fault_rng.has_gauss = b != 0;
  if (!r->F64(&f->fault_rng.cached_gauss)) return false;
  if (!r->U64(&f->fault_stats.transient_reads)) return false;
  if (!r->U64(&f->fault_stats.transient_writes)) return false;
  if (!r->U64(&f->fault_stats.pages_lost)) return false;
  if (!r->U64(&f->fault_stats.bits_flipped)) return false;
  return r->done();
}

void AppendSection(uint32_t tag, const ByteWriter& payload,
                   std::vector<uint8_t>* out) {
  ByteWriter frame;
  frame.U32(tag);
  frame.U64(payload.data().size());
  out->insert(out->end(), frame.data().begin(), frame.data().end());
  out->insert(out->end(), payload.data().begin(), payload.data().end());
  ByteWriter crc;
  crc.U32(Crc32c(std::span<const uint8_t>(payload.data())));
  out->insert(out->end(), crc.data().begin(), crc.data().end());
}

}  // namespace

Status WriteCheckpointFile(const std::string& path,
                           const CheckpointImage& image) {
  TRACE_SPAN("checkpoint/save");
  Timer timer;
  if ((image.shard_count == 0 && image.freezes.size() != 1) ||
      (image.shard_count > 0 && image.freezes.size() != image.shard_count)) {
    return Status::InvalidArgument(
        "checkpoint image freeze count does not match its shard count");
  }
  std::vector<uint8_t> out(kMagic, kMagic + sizeof(kMagic));

  const auto codec = static_cast<PageCodecKind>(image.page_codec);
  if (GetPageCodec(codec) == nullptr && codec != PageCodecKind::kNone) {
    return Status::InvalidArgument("checkpoint image names unknown codec " +
                                   std::to_string(image.page_codec));
  }

  ByteWriter header;
  header.U32(image.version);
  header.U64(image.dim);
  header.U64(image.page_size);
  header.U32(image.metric);
  header.U32(image.threshold_kind);
  header.U32(image.cf_representation);
  header.U32(image.scalar_width);
  header.U32(image.shard_count);
  header.U64(image.points_ingested);
  // Trailing optional field: absent in pre-compression v2 files, whose
  // readers decode it as 0 (raw sections). The header itself stays raw
  // so the codec is known before any compressed section is met.
  header.U32(image.page_codec);
  AppendSection(kHeaderTag, header, &out);

  for (const Phase1Freeze& f : image.freezes) {
    ByteWriter payload;
    EncodeFreeze(f, &payload);
    if (codec == PageCodecKind::kNone) {
      AppendSection(kFreezeTag, payload, &out);
    } else {
      // Freeze sections dominate the file (tree pages + spill records,
      // exactly the data the page codec is built for): store them as
      // compressed envelopes. The section CRC then covers the
      // compressed image, mirroring the PageStore.
      if (payload.data().size() > UINT32_MAX) {
        return Status::InvalidArgument(
            "checkpoint section too large to compress");
      }
      ByteWriter enveloped;
      std::vector<uint8_t> stored = EncodePageEnvelope(
          codec, std::span<const uint8_t>(payload.data()));
      enveloped.Bytes(stored.data(), stored.size());
      AppendSection(kFreezeTag, enveloped, &out);
    }
  }

  ByteWriter footer;
  footer.U32(static_cast<uint32_t>(image.freezes.size()));
  AppendSection(kFooterTag, footer, &out);

  // Stage + rename so a crash mid-write never destroys the previous
  // checkpoint.
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), fp);
  const bool flushed = std::fflush(fp) == 0;
  std::fclose(fp);
  if (written != out.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  OBS_COUNTER_INC("checkpoint/writes");
  OBS_COUNTER_ADD("checkpoint/bytes_written", out.size());
  OBS_HISTOGRAM_RECORD("checkpoint/save_us", timer.Seconds() * 1e6);
  return Status::OK();
}

StatusOr<CheckpointImage> ReadCheckpointFile(const std::string& path) {
  TRACE_SPAN("checkpoint/restore");
  Timer timer;
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), fp)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(fp) != 0;
  std::fclose(fp);
  if (read_error) {
    return Status::IOError("read failed on " + path);
  }

  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + " is not a BIRCH checkpoint (bad or "
                              "torn header)");
  }
  ByteReader r(bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic));

  // A section cursor: read frame, verify CRC, decode from a copy.
  auto read_section = [&r](uint32_t* tag,
                           std::vector<uint8_t>* payload) -> Status {
    uint64_t size = 0;
    if (!r.U32(tag) || !r.U64(&size)) {
      return Status::Corruption("checkpoint truncated mid-frame");
    }
    if (!r.Bytes(size, payload)) {
      return Status::Corruption("checkpoint truncated mid-section");
    }
    uint32_t stored_crc = 0;
    if (!r.U32(&stored_crc)) {
      return Status::Corruption("checkpoint truncated before section CRC");
    }
    if (Crc32c(std::span<const uint8_t>(*payload)) != stored_crc) {
      return Status::Corruption("checkpoint section failed CRC32C");
    }
    return Status::OK();
  };

  uint32_t tag = 0;
  std::vector<uint8_t> payload;
  BIRCH_RETURN_IF_ERROR(read_section(&tag, &payload));
  if (tag != kHeaderTag) {
    return Status::Corruption("checkpoint does not start with a header");
  }
  CheckpointImage image;
  {
    ByteReader h(payload.data(), payload.size());
    // Version first, checked before the rest of the header is decoded:
    // older layouts (v1 had no cf_representation / scalar_width) must
    // surface as "unsupported version", not as corruption or a
    // misdecoded fingerprint.
    if (!h.U32(&image.version)) {
      return Status::Corruption("checkpoint header payload malformed");
    }
    if (image.version != kCheckpointVersion) {
      return Status::InvalidArgument(
          "checkpoint format version " + std::to_string(image.version) +
          " is not supported (this build reads version " +
          std::to_string(kCheckpointVersion) + ")");
    }
    if (!h.U64(&image.dim) || !h.U64(&image.page_size) ||
        !h.U32(&image.metric) || !h.U32(&image.threshold_kind) ||
        !h.U32(&image.cf_representation) || !h.U32(&image.scalar_width) ||
        !h.U32(&image.shard_count) || !h.U64(&image.points_ingested)) {
      return Status::Corruption("checkpoint header payload malformed");
    }
    // Optional trailing codec field: files written before page
    // compression end exactly here and decode as codec 0 (raw
    // sections) — old uncompressed checkpoints still load.
    image.page_codec = 0;
    if (!h.done() && (!h.U32(&image.page_codec) || !h.done())) {
      return Status::Corruption("checkpoint header payload malformed");
    }
    if (image.cf_representation > 1 ||
        (image.scalar_width != 32 && image.scalar_width != 64)) {
      return Status::Corruption(
          "checkpoint header carries an impossible CF fingerprint");
    }
    if (image.page_codec != 0 &&
        GetPageCodec(static_cast<PageCodecKind>(image.page_codec)) ==
            nullptr) {
      return Status::Corruption(
          "checkpoint header names unknown page codec " +
          std::to_string(image.page_codec));
    }
  }

  const size_t expected =
      image.shard_count == 0 ? 1 : static_cast<size_t>(image.shard_count);
  image.freezes.reserve(expected);
  for (size_t i = 0; i < expected; ++i) {
    BIRCH_RETURN_IF_ERROR(read_section(&tag, &payload));
    if (tag != kFreezeTag) {
      return Status::Corruption("checkpoint is missing a shard section");
    }
    Phase1Freeze f;
    std::vector<uint8_t> raw;
    if (image.page_codec != 0) {
      // The CRC above covered the compressed image; a payload that
      // passed it but fails to decode is still a damaged file.
      Status st =
          DecodePageEnvelope(std::span<const uint8_t>(payload), &raw);
      if (!st.ok()) {
        return Status::Corruption("checkpoint shard section undecodable: " +
                                  st.message());
      }
    } else {
      raw = std::move(payload);
    }
    ByteReader body(raw.data(), raw.size());
    if (!DecodeFreeze(&body, &f)) {
      return Status::Corruption("checkpoint shard payload malformed");
    }
    image.freezes.push_back(std::move(f));
  }

  BIRCH_RETURN_IF_ERROR(read_section(&tag, &payload));
  if (tag != kFooterTag) {
    return Status::Corruption("checkpoint footer missing (truncated file)");
  }
  {
    ByteReader f(payload.data(), payload.size());
    uint32_t footer_count = 0;
    if (!f.U32(&footer_count) || !f.done() ||
        footer_count != image.freezes.size()) {
      return Status::Corruption("checkpoint footer does not match contents");
    }
  }
  if (!r.done()) {
    return Status::Corruption("checkpoint has trailing bytes after footer");
  }
  OBS_COUNTER_INC("checkpoint/reads");
  OBS_HISTOGRAM_RECORD("checkpoint/restore_us", timer.Seconds() * 1e6);
  return image;
}

}  // namespace birch
