#include "birch/phase1.h"

#include <algorithm>

namespace birch {

Phase1Builder::Phase1Builder(const Phase1Options& options)
    : options_(options),
      mem_(options.memory_budget_bytes),
      disk_(options.tree.page_size, options.disk_budget_bytes),
      outlier_entries_(&disk_, CfVector::SerializedDoubles(options.tree.dim)),
      delayed_points_(&disk_, CfVector::SerializedDoubles(options.tree.dim)),
      tree_(std::make_unique<CfTree>(options.tree, &mem_)),
      heuristic_(options.tree.dim, options.expected_points) {}

double Phase1Builder::OutlierWeightThreshold() const {
  size_t entries = tree_->leaf_entry_count();
  if (entries == 0) return 0.0;
  double avg = tree_->TreeSummary().n() / static_cast<double>(entries);
  return options_.outlier_fraction * avg;
}

Status Phase1Builder::Add(std::span<const double> x, double weight) {
  if (finished_) {
    return Status::FailedPrecondition("Add() after Finish()");
  }
  if (x.size() != options_.tree.dim) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  if (weight <= 0.0) {
    return Status::InvalidArgument("weight must be positive");
  }
  ++stats_.points_added;
  CfVector ent = CfVector::FromPoint(x, weight);

  if (delay_mode_) {
    // Memory is exhausted: keep absorbing what fits, spill the rest.
    InsertOutcome out = tree_->InsertEntry(ent, InsertMode::kNoSplit);
    if (out != InsertOutcome::kRejected) return Status::OK();
    std::vector<double> buf;
    ent.SerializeTo(&buf);
    Status st = delayed_points_.Append(buf);
    if (st.ok()) {
      ++stats_.points_delay_spilled;
      return Status::OK();
    }
    if (st.code() != StatusCode::kOutOfDisk) return st;
    // Disk is full too: rebuild with a larger threshold, replay the
    // spilled points, then insert this one normally.
    delay_mode_ = false;
    BIRCH_RETURN_IF_ERROR(RebuildLarger());
    std::vector<double> drained;
    BIRCH_RETURN_IF_ERROR(delayed_points_.DrainAll(&drained));
    const size_t rec = CfVector::SerializedDoubles(options_.tree.dim);
    for (size_t off = 0; off + rec <= drained.size(); off += rec) {
      CfVector e = CfVector::Deserialize(
          std::span<const double>(drained.data() + off, rec),
          options_.tree.dim);
      tree_->InsertEntry(e);
      if (tree_->over_budget()) BIRCH_RETURN_IF_ERROR(RebuildLarger());
    }
    tree_->InsertEntry(ent);
    if (tree_->over_budget()) return HandleMemoryExhaustion();
    return Status::OK();
  }

  tree_->InsertEntry(ent);
  if (tree_->over_budget()) return HandleMemoryExhaustion();
  return Status::OK();
}

Status Phase1Builder::AddDataset(const Dataset& data) {
  for (size_t i = 0; i < data.size(); ++i) {
    BIRCH_RETURN_IF_ERROR(Add(data.Row(i), data.Weight(i)));
  }
  return Status::OK();
}

Status Phase1Builder::HandleMemoryExhaustion() {
  if (options_.delay_split && !delay_mode_) {
    // Delay-split option (Sec. 5.1.4): postpone the rebuild; absorb
    // what fits and spill split-forcing points to disk instead.
    delay_mode_ = true;
    return Status::OK();
  }
  return RebuildLarger();
}

Status Phase1Builder::RebuildLarger() {
  int guard = 0;
  do {
    double t_next = heuristic_.SuggestNext(*tree_, stats_.points_added);
    std::vector<CfVector> outliers;
    double outlier_n =
        options_.outlier_handling ? OutlierWeightThreshold() : 0.0;
    tree_->Rebuild(t_next, outlier_n, &outliers);
    ++stats_.rebuilds;
    stats_.final_threshold = t_next;
    for (const CfVector& e : outliers) {
      BIRCH_RETURN_IF_ERROR(SpillOutlierEntry(e));
    }
    // One rebuild normally recovers the budget; a pathological
    // distribution may need another round with a larger threshold.
  } while (tree_->over_budget() && ++guard < 16);
  if (tree_->over_budget()) {
    return Status::OutOfMemory(
        "memory budget unattainable after repeated rebuilds");
  }
  return Status::OK();
}

Status Phase1Builder::SpillOutlierEntry(const CfVector& e) {
  std::vector<double> buf;
  e.SerializeTo(&buf);
  Status st = outlier_entries_.Append(buf);
  if (st.ok()) {
    ++stats_.outlier_entries_spilled;
    return Status::OK();
  }
  if (st.code() != StatusCode::kOutOfDisk) return st;
  // Outlier disk full: drain + re-absorb (Fig. 2's "out of disk space"
  // branch), then retry once.
  BIRCH_RETURN_IF_ERROR(ReabsorbOutliers(/*final_pass=*/false));
  st = outlier_entries_.Append(buf);
  if (st.ok()) {
    ++stats_.outlier_entries_spilled;
    return Status::OK();
  }
  if (st.code() != StatusCode::kOutOfDisk) return st;
  // Still full (delayed points may hold the disk): force the entry back
  // into the tree so progress is guaranteed.
  ++stats_.forced_inserts;
  tree_->InsertEntry(e);
  return Status::OK();
}

Status Phase1Builder::ReabsorbOutliers(bool final_pass) {
  if (outlier_entries_.empty()) return Status::OK();
  ++stats_.reabsorb_cycles;
  std::vector<double> drained;
  BIRCH_RETURN_IF_ERROR(outlier_entries_.DrainAll(&drained));
  const size_t rec = CfVector::SerializedDoubles(options_.tree.dim);
  for (size_t off = 0; off + rec <= drained.size(); off += rec) {
    CfVector e = CfVector::Deserialize(
        std::span<const double>(drained.data() + off, rec),
        options_.tree.dim);
    // Re-absorb only if the entry fits without splitting — a genuine
    // outlier must not distort the tree (Sec. 5.1.4).
    InsertOutcome out = tree_->InsertEntry(e, InsertMode::kAbsorbOnly);
    if (out != InsertOutcome::kRejected) {
      ++stats_.outlier_entries_reabsorbed;
      continue;
    }
    if (final_pass) {
      final_outliers_.push_back(std::move(e));
      continue;
    }
    std::vector<double> buf;
    e.SerializeTo(&buf);
    Status st = outlier_entries_.Append(buf);
    if (!st.ok()) {
      if (st.code() != StatusCode::kOutOfDisk) return st;
      ++stats_.forced_inserts;
      tree_->InsertEntry(e);
    }
  }
  return Status::OK();
}

Status Phase1Builder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish() called twice");
  }
  finished_ = true;
  delay_mode_ = false;

  // Replay delay-split points with splits allowed.
  std::vector<double> drained;
  BIRCH_RETURN_IF_ERROR(delayed_points_.DrainAll(&drained));
  const size_t rec = CfVector::SerializedDoubles(options_.tree.dim);
  for (size_t off = 0; off + rec <= drained.size(); off += rec) {
    CfVector e = CfVector::Deserialize(
        std::span<const double>(drained.data() + off, rec),
        options_.tree.dim);
    tree_->InsertEntry(e);
    if (tree_->over_budget()) BIRCH_RETURN_IF_ERROR(RebuildLarger());
  }

  // Final outlier verdicts.
  BIRCH_RETURN_IF_ERROR(ReabsorbOutliers(/*final_pass=*/true));
  stats_.final_threshold = tree_->threshold();
  return Status::OK();
}

}  // namespace birch
