#include "birch/phase1.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace birch {

Phase1Builder::Phase1Builder(const Phase1Options& options)
    : options_(options),
      mem_(options.memory_budget_bytes),
      // Budget 0 means "no outlier disk", not "unlimited" (which is
      // what PageStore's 0 would mean): the store is built one page
      // deep and never used — every spill takes the in-tree fallback.
      disk_(PageStoreOptions{
          options.tree.page_size,
          options.disk_budget_bytes > 0 ? options.disk_budget_bytes
                                        : options.tree.page_size,
          options.fault, options.page_codec, options.hot_tier_bytes}),
      outlier_entries_(&disk_, CfVector::SerializedDoubles(options.tree.dim),
                       options.retry),
      delayed_points_(&disk_, CfVector::SerializedDoubles(options.tree.dim),
                      options.retry),
      tree_(std::make_unique<CfTree>(options.tree, &mem_)),
      heuristic_(options.tree.dim, options.expected_points),
      point_cf_(options.tree.dim, options.tree.cf, options.tree.cf_storage),
      disk_enabled_(options.disk_budget_bytes > 0) {
  robust_.outlier_disk_disabled = !disk_enabled_;
}

double Phase1Builder::OutlierWeightThreshold() const {
  size_t entries = tree_->leaf_entry_count();
  if (entries == 0) return 0.0;
  double avg = tree_->TreeSummary().n() / static_cast<double>(entries);
  return options_.outlier_fraction * avg;
}

RobustnessStats Phase1Builder::robustness() const {
  RobustnessStats r = robust_;
  for (const SpillFile* f : {&outlier_entries_, &delayed_points_}) {
    r.transient_io_errors += f->stats().transient_errors;
    r.io_retries += f->stats().io_retries;
    r.simulated_backoff_us += f->stats().backoff_us;
    r.pages_lost += f->stats().pages_lost;
    r.records_lost += f->stats().records_lost;
  }
  // += so a restored builder's frozen baseline (already in robust_)
  // survives; live runs start the baseline at zero.
  r.checksum_failures += disk_.io_stats().checksum_failures;
  return r;
}

StatusOr<Phase1Freeze> Phase1Builder::Freeze() {
  if (finished_) {
    return Status::FailedPrecondition("Freeze() after Finish()");
  }
  TRACE_SPAN("phase1/freeze");
  Phase1Freeze f;
  // Capture the fault stream and aggregate counters FIRST: the peeks
  // below consume injector draws (their reads are stats-neutral, but
  // the RNG still advances), and the restored run must resume from the
  // pre-checkpoint stream.
  f.fault_rng = disk_.mutable_injector()->rng_state();
  f.fault_stats = disk_.fault_stats();
  f.robustness = robustness();

  // Serialize the tree into a private fault-free staging store; its
  // ids are sequential from 0, so page i of the store is tree_pages[i].
  PageStore staging(options_.tree.page_size);
  auto img_or = TreeIO::Write(*tree_, &staging);
  if (!img_or.ok()) return img_or.status();
  f.image = std::move(img_or.value());
  f.tree_pages.resize(staging.num_pages());
  for (size_t i = 0; i < f.tree_pages.size(); ++i) {
    BIRCH_RETURN_IF_ERROR(
        staging.Read(static_cast<PageId>(i), &f.tree_pages[i]));
  }

  // Copy pending spill state without consuming it. Records a faulty
  // device loses during the peek are absent from the checkpoint; the
  // frozen accounting carries the loss so a restored run reports it.
  DrainReport rep;
  BIRCH_RETURN_IF_ERROR(outlier_entries_.PeekAll(&f.outlier_records, &rep));
  f.robustness.pages_lost += rep.pages_lost;
  f.robustness.records_lost += rep.records_lost;
  BIRCH_RETURN_IF_ERROR(delayed_points_.PeekAll(&f.delayed_records, &rep));
  f.robustness.pages_lost += rep.pages_lost;
  f.robustness.records_lost += rep.records_lost;

  f.threshold_history = heuristic_.History();
  f.final_outliers = final_outliers_;
  f.stats = stats_;
  f.delay_mode = delay_mode_;
  f.disk_enabled = disk_enabled_;
  return f;
}

StatusOr<std::unique_ptr<Phase1Builder>> Phase1Builder::Thaw(
    const Phase1Options& options, const Phase1Freeze& freeze) {
  if (options.tree.dim != freeze.image.dim) {
    return Status::InvalidArgument("checkpoint dim mismatch");
  }
  if (options.tree.page_size != freeze.image.page_size) {
    return Status::InvalidArgument("checkpoint page size mismatch");
  }
  std::unique_ptr<Phase1Builder> b(new Phase1Builder(options));

  // Rebuild the CF tree from the frozen pages via TreeIO (ids are
  // sequential, matching the freeze's staging store).
  PageStore staging(freeze.image.page_size);
  for (const auto& page : freeze.tree_pages) {
    auto id_or = staging.Allocate();
    if (!id_or.ok()) return id_or.status();
    BIRCH_RETURN_IF_ERROR(staging.Write(id_or.value(), page));
  }
  b->tree_.reset();  // release the fresh root's budget charge first
  auto tree_or = TreeIO::Read(freeze.image, &staging, options.tree, &b->mem_);
  if (!tree_or.ok()) return tree_or.status();
  b->tree_ = std::move(tree_or.value());

  b->heuristic_.RestoreHistory(freeze.threshold_history);

  // Replay pending spill records. Flushed pages are always full, so
  // re-appending in order recreates the exact page/staging layout the
  // original builder had. The original device already survived these
  // writes, so the replay runs with injection off — a replay-time fault
  // would corrupt state the checkpoint holds intact.
  const FaultOptions real_faults = b->disk_.mutable_injector()->options();
  b->disk_.mutable_injector()->set_options(FaultOptions{});
  const size_t rec = CfVector::SerializedDoubles(options.tree.dim);
  auto replay = [&](SpillFile* file,
                    const std::vector<double>& records) -> Status {
    if (records.size() % rec != 0) {
      return Status::Corruption(
          "checkpoint spill payload is not record-aligned");
    }
    for (size_t off = 0; off < records.size(); off += rec) {
      BIRCH_RETURN_IF_ERROR(file->Append(
          std::span<const double>(records.data() + off, rec)));
    }
    return Status::OK();
  };
  BIRCH_RETURN_IF_ERROR(replay(&b->outlier_entries_, freeze.outlier_records));
  BIRCH_RETURN_IF_ERROR(replay(&b->delayed_points_, freeze.delayed_records));

  b->final_outliers_ = freeze.final_outliers;
  b->stats_ = freeze.stats;
  b->robust_ = freeze.robustness;
  b->delay_mode_ = freeze.delay_mode;
  b->disk_enabled_ = freeze.disk_enabled;
  // Reinstate the real fault configuration and resume the fault stream
  // where the original left off.
  b->disk_.mutable_injector()->set_options(real_faults);
  b->disk_.mutable_injector()->set_rng_state(freeze.fault_rng);
  b->disk_.mutable_injector()->set_stats(freeze.fault_stats);
  return b;
}

void Phase1Builder::NoteDrainLoss(const DrainReport& report) {
  if (report.records_lost == 0) return;
  // The device demonstrably ate data: one degradation event per lossy
  // drain (the per-record accounting lives in the spill stats).
  ++robust_.degradation_events;
  if (disk_enabled_ && report.pages_lost == report.pages_total) {
    // Every page came back unreadable — stop trusting the device.
    disk_enabled_ = false;
    robust_.outlier_disk_disabled = true;
  }
}

void Phase1Builder::FallbackOutlierEntry(const CfVector& e) {
  // No disk to park the entry on: absorb it at the current threshold if
  // it fits an existing entry, otherwise call it an outlier now. The
  // entry can no longer ride later re-absorb cycles — that is the
  // accepted quality cost of degraded mode.
  InsertOutcome out = tree_->InsertEntry(e, InsertMode::kAbsorbOnly);
  if (out != InsertOutcome::kRejected) {
    ++robust_.fallback_absorbed;
    return;
  }
  final_outliers_.push_back(e);
  ++robust_.fallback_dropped;
}

Status Phase1Builder::DegradeOutlierDisk() {
  if (!disk_enabled_) return Status::OK();
  disk_enabled_ = false;
  robust_.outlier_disk_disabled = true;
  ++robust_.degradation_events;
  OBS_COUNTER_INC("phase1/disk_degradations");
  TRACE_INSTANT("phase1/degrade_disk");
  const size_t rec = CfVector::SerializedDoubles(options_.tree.dim);

  // Salvage whatever the device still returns, then never write again.
  std::vector<double> drained;
  DrainReport rep;
  BIRCH_RETURN_IF_ERROR(outlier_entries_.DrainAll(&drained, &rep));
  for (size_t off = 0; off + rec <= drained.size(); off += rec) {
    FallbackOutlierEntry(CfVector::Deserialize(
        std::span<const double>(drained.data() + off, rec),
        options_.tree.dim, options_.tree.cf, options_.tree.cf_storage));
  }
  BIRCH_RETURN_IF_ERROR(delayed_points_.DrainAll(&drained, &rep));
  for (size_t off = 0; off + rec <= drained.size(); off += rec) {
    CfVector e = CfVector::Deserialize(
        std::span<const double>(drained.data() + off, rec),
        options_.tree.dim, options_.tree.cf, options_.tree.cf_storage);
    tree_->InsertEntry(e);
    if (tree_->over_budget()) BIRCH_RETURN_IF_ERROR(RebuildLarger());
  }
  return Status::OK();
}

Status Phase1Builder::Add(std::span<const double> x, double weight) {
  if (finished_) {
    return Status::FailedPrecondition("Add() after Finish()");
  }
  if (x.size() != options_.tree.dim) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  if (weight <= 0.0) {
    return Status::InvalidArgument("weight must be positive");
  }
  ++stats_.points_added;
  OBS_COUNTER_INC("phase1/points");
  point_cf_.AssignPoint(x, weight);
  return IngestPointCf();
}

Status Phase1Builder::AddBatch(std::span<const double> xs, size_t n,
                               std::span<const double> weights) {
  if (finished_) {
    return Status::FailedPrecondition(
        "AddBatch() after Finish(): create a new builder to ingest more "
        "data");
  }
  const size_t dim = options_.tree.dim;
  if (xs.size() != n * dim) {
    return Status::InvalidArgument(
        "batch size mismatch: got " + std::to_string(xs.size()) +
        " doubles for n=" + std::to_string(n) + " points of dim " +
        std::to_string(dim) + "; pass exactly n * dim row-major values");
  }
  if (!weights.empty() && weights.size() != n) {
    return Status::InvalidArgument(
        "weight count mismatch: got " + std::to_string(weights.size()) +
        " weights for " + std::to_string(n) +
        " points; pass one weight per point or an empty span for all-1");
  }
  // Validate the whole batch before ingesting any of it, so a bad
  // weight rejects the batch instead of leaving it half-inserted.
  for (double w : weights) {
    if (w <= 0.0) {
      return Status::InvalidArgument("weight must be positive");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    ++stats_.points_added;
    point_cf_.AssignPoint(xs.subspan(i * dim, dim),
                          weights.empty() ? 1.0 : weights[i]);
    Status st = IngestPointCf();
    if (!st.ok()) {
      OBS_COUNTER_ADD("phase1/points", static_cast<double>(i + 1));
      return st;
    }
  }
  OBS_COUNTER_ADD("phase1/points", static_cast<double>(n));
  return Status::OK();
}

Status Phase1Builder::IngestPointCf() {
  const CfVector& ent = point_cf_;

  if (delay_mode_) {
    // Memory is exhausted: keep absorbing what fits, spill the rest.
    InsertOutcome out = tree_->InsertEntry(ent, InsertMode::kNoSplit);
    if (out != InsertOutcome::kRejected) return Status::OK();
    std::vector<double> buf;
    ent.SerializeTo(&buf);
    Status st = delayed_points_.Append(buf);
    if (st.ok()) {
      ++stats_.points_delay_spilled;
      OBS_COUNTER_INC("phase1/delay_spills");
      return Status::OK();
    }
    if (IsUnrecoverableDiskError(st)) {
      // The disk is broken, not merely full: retire it (salvaging both
      // spill files into the tree) and insert this point normally.
      delay_mode_ = false;
      BIRCH_RETURN_IF_ERROR(DegradeOutlierDisk());
      tree_->InsertEntry(ent);
      if (tree_->over_budget()) return HandleMemoryExhaustion();
      return Status::OK();
    }
    if (st.code() != StatusCode::kOutOfDisk) return st;
    // Disk is full too: rebuild with a larger threshold, replay the
    // spilled points, then insert this one normally.
    delay_mode_ = false;
    BIRCH_RETURN_IF_ERROR(RebuildLarger());
    std::vector<double> drained;
    DrainReport rep;
    BIRCH_RETURN_IF_ERROR(delayed_points_.DrainAll(&drained, &rep));
    NoteDrainLoss(rep);
    const size_t rec = CfVector::SerializedDoubles(options_.tree.dim);
    for (size_t off = 0; off + rec <= drained.size(); off += rec) {
      CfVector e = CfVector::Deserialize(
          std::span<const double>(drained.data() + off, rec),
          options_.tree.dim, options_.tree.cf, options_.tree.cf_storage);
      tree_->InsertEntry(e);
      if (tree_->over_budget()) BIRCH_RETURN_IF_ERROR(RebuildLarger());
    }
    tree_->InsertEntry(ent);
    if (tree_->over_budget()) return HandleMemoryExhaustion();
    return Status::OK();
  }

  tree_->InsertEntry(ent);
  if (tree_->over_budget()) return HandleMemoryExhaustion();
  return Status::OK();
}

Status Phase1Builder::AddDataset(const Dataset& data) {
  // Zero-copy: the dataset is already row-major with the lazy weight
  // convention AddBatch speaks.
  return AddBatch(data.Values(), data.size(), data.Weights());
}

Status Phase1Builder::HandleMemoryExhaustion() {
  if (options_.delay_split && disk_enabled_ && !delay_mode_) {
    // Delay-split option (Sec. 5.1.4): postpone the rebuild; absorb
    // what fits and spill split-forcing points to disk instead. With
    // the disk out of service there is nowhere to spill — rebuild.
    delay_mode_ = true;
    TRACE_INSTANT("phase1/delay_split_on");
    return Status::OK();
  }
  return RebuildLarger();
}

Status Phase1Builder::RebuildLarger() {
  TRACE_SPAN("phase1/rebuild");
  Timer rebuild_timer;
  int guard = 0;
  do {
    double t_next = heuristic_.SuggestNext(*tree_, stats_.points_added);
    std::vector<CfVector> outliers;
    double outlier_n =
        options_.outlier_handling ? OutlierWeightThreshold() : 0.0;
    tree_->Rebuild(t_next, outlier_n, &outliers);
    ++stats_.rebuilds;
    stats_.final_threshold = t_next;
    OBS_COUNTER_INC("phase1/rebuilds");
    OBS_GAUGE_SET("phase1/threshold", t_next);
    TRACE_COUNTER("phase1/threshold", t_next);
    for (const CfVector& e : outliers) {
      BIRCH_RETURN_IF_ERROR(SpillOutlierEntry(e));
    }
    // One rebuild normally recovers the budget; a pathological
    // distribution may need another round with a larger threshold.
  } while (tree_->over_budget() && ++guard < 16);
  if (tree_->over_budget()) {
    return Status::OutOfMemory(
        "memory budget unattainable after repeated rebuilds");
  }
  OBS_HISTOGRAM_RECORD("phase1/rebuild_us", rebuild_timer.Seconds() * 1e6);
  return Status::OK();
}

Status Phase1Builder::SpillOutlierEntry(const CfVector& e) {
  if (!disk_enabled_) {
    FallbackOutlierEntry(e);
    return Status::OK();
  }
  std::vector<double> buf;
  e.SerializeTo(&buf);
  Status st = outlier_entries_.Append(buf);
  if (st.ok()) {
    ++stats_.outlier_entries_spilled;
    OBS_COUNTER_INC("phase1/outlier_spills");
    return Status::OK();
  }
  if (IsUnrecoverableDiskError(st)) {
    BIRCH_RETURN_IF_ERROR(DegradeOutlierDisk());
    FallbackOutlierEntry(e);
    return Status::OK();
  }
  if (st.code() != StatusCode::kOutOfDisk) return st;
  // Outlier disk full: drain + re-absorb (Fig. 2's "out of disk space"
  // branch), then retry once.
  BIRCH_RETURN_IF_ERROR(ReabsorbOutliers(/*final_pass=*/false));
  if (!disk_enabled_) {  // the re-absorb drain may have retired the disk
    FallbackOutlierEntry(e);
    return Status::OK();
  }
  st = outlier_entries_.Append(buf);
  if (st.ok()) {
    ++stats_.outlier_entries_spilled;
    OBS_COUNTER_INC("phase1/outlier_spills");
    return Status::OK();
  }
  if (IsUnrecoverableDiskError(st)) {
    BIRCH_RETURN_IF_ERROR(DegradeOutlierDisk());
    FallbackOutlierEntry(e);
    return Status::OK();
  }
  if (st.code() != StatusCode::kOutOfDisk) return st;
  // Still full (delayed points may hold the disk): force the entry back
  // into the tree so progress is guaranteed.
  ++stats_.forced_inserts;
  OBS_COUNTER_INC("phase1/forced_inserts");
  tree_->InsertEntry(e);
  return Status::OK();
}

Status Phase1Builder::ReabsorbOutliers(bool final_pass) {
  if (outlier_entries_.empty()) return Status::OK();
  TRACE_SPAN("phase1/reabsorb");
  ++stats_.reabsorb_cycles;
  OBS_COUNTER_INC("phase1/reabsorb_cycles");
  std::vector<double> drained;
  DrainReport rep;
  BIRCH_RETURN_IF_ERROR(outlier_entries_.DrainAll(&drained, &rep));
  NoteDrainLoss(rep);
  const size_t rec = CfVector::SerializedDoubles(options_.tree.dim);
  for (size_t off = 0; off + rec <= drained.size(); off += rec) {
    CfVector e = CfVector::Deserialize(
        std::span<const double>(drained.data() + off, rec),
        options_.tree.dim, options_.tree.cf, options_.tree.cf_storage);
    // Re-absorb only if the entry fits without splitting — a genuine
    // outlier must not distort the tree (Sec. 5.1.4).
    InsertOutcome out = tree_->InsertEntry(e, InsertMode::kAbsorbOnly);
    if (out != InsertOutcome::kRejected) {
      ++stats_.outlier_entries_reabsorbed;
      OBS_COUNTER_INC("phase1/outliers_reabsorbed");
      continue;
    }
    if (final_pass) {
      final_outliers_.push_back(std::move(e));
      continue;
    }
    if (!disk_enabled_) {
      // Disk retired mid-cycle: the entry has no spill to return to.
      final_outliers_.push_back(std::move(e));
      ++robust_.fallback_dropped;
      continue;
    }
    std::vector<double> buf;
    e.SerializeTo(&buf);
    Status st = outlier_entries_.Append(buf);
    if (!st.ok()) {
      if (IsUnrecoverableDiskError(st)) {
        BIRCH_RETURN_IF_ERROR(DegradeOutlierDisk());
        FallbackOutlierEntry(e);
        continue;
      }
      if (st.code() != StatusCode::kOutOfDisk) return st;
      ++stats_.forced_inserts;
      OBS_COUNTER_INC("phase1/forced_inserts");
      tree_->InsertEntry(e);
    }
  }
  return Status::OK();
}

Status Phase1Builder::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish() called twice");
  }
  TRACE_SPAN("phase1/finish");
  finished_ = true;
  delay_mode_ = false;

  // Replay delay-split points with splits allowed.
  std::vector<double> drained;
  DrainReport rep;
  BIRCH_RETURN_IF_ERROR(delayed_points_.DrainAll(&drained, &rep));
  NoteDrainLoss(rep);
  const size_t rec = CfVector::SerializedDoubles(options_.tree.dim);
  for (size_t off = 0; off + rec <= drained.size(); off += rec) {
    CfVector e = CfVector::Deserialize(
        std::span<const double>(drained.data() + off, rec),
        options_.tree.dim, options_.tree.cf, options_.tree.cf_storage);
    tree_->InsertEntry(e);
    if (tree_->over_budget()) BIRCH_RETURN_IF_ERROR(RebuildLarger());
  }

  // Final outlier verdicts.
  BIRCH_RETURN_IF_ERROR(ReabsorbOutliers(/*final_pass=*/true));
  stats_.final_threshold = tree_->threshold();
  return Status::OK();
}

}  // namespace birch
