// Sharded Phase 1 — the paper's parallelism sketch (Sec. 4.1: the CF
// vector is additive, so partitioned builds merge exactly at
// subcluster granularity) made concrete:
//
//   1. The calling thread scans the PointSource once and deals each
//      point to a shard, handing whole batches to each shard worker
//      through a bounded exec::Channel (backpressure, O(S * batch)
//      transient memory). Under DealingMode::kAffinity (the default)
//      the head of the stream is dealt round-robin while it
//      accumulates into a sample; a shallow seeded k-means fitted on
//      that sample then owns the routing — each point goes to the
//      shard holding its nearest splitter center (centers are packed
//      onto shards greedily by sample mass, heaviest first), so shard
//      trees cover mostly disjoint regions and the final merge is
//      near-trivial. kRoundRobin keeps the plain i mod S deal. Both
//      are deterministic functions of the stream prefix (plus
//      splitter_seed), never of thread timing.
//   2. Each of the S pool workers runs a private, fully serial
//      Phase1Builder (its own CF tree, memory tracker, outlier disk)
//      over its shard of the stream, ingesting via the batch path
//      (Phase1Builder::AddBatch) so kernel scratch stays hot.
//   3. The shard trees are folded pairwise (parallel rounds on the
//      pool; destination = the pair member with the larger threshold)
//      via CfTree::AbsorbTree, then absorbed into a final tree charged
//      against the full memory budget.
//   4. Threshold-consistency reabsorb pass: if the merged tree
//      overflows the total budget it is rebuilt at the heuristic's
//      next threshold, and every per-shard final outlier gets one
//      absorb-only retry against the merged tree (an entry that looked
//      like an outlier inside one shard may sit squarely inside a
//      cluster of the union).
//
// Every step is deterministic for a fixed (options, num_shards,
// splitter_seed) triple: shard assignment, per-shard insertion order,
// fold pairing, and the final reabsorb order are all functions of the
// input alone.
#ifndef BIRCH_BIRCH_PHASE1_PARALLEL_H_
#define BIRCH_BIRCH_PHASE1_PARALLEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "birch/options.h"
#include "birch/phase1.h"
#include "birch/point_source.h"
#include "exec/thread_pool.h"
#include "util/status.h"

namespace birch {

struct ShardedPhase1Options {
  /// Template configuration; memory_budget_bytes, disk_budget_bytes
  /// and expected_points are totals that get divided across shards.
  Phase1Options phase1;
  /// Number of shards; clamped to [1, pool->size()] (each shard
  /// occupies one pool worker for the duration of the scan).
  int num_shards = 1;
  /// Points per hand-off batch (amortizes channel locking).
  size_t batch_points = 256;
  /// Batches buffered per shard channel before the reader blocks.
  size_t channel_capacity = 4;
  /// Shard routing policy (see DealingMode in birch/options.h).
  DealingMode dealing = DealingMode::kAffinity;
  /// Seed of the affinity splitter's shallow k-means; part of the
  /// determinism contract (routing is a pure function of the stream
  /// prefix and this seed).
  uint64_t splitter_seed = 0xb1c5;
  /// Points sampled from the stream head to fit the splitter (dealt
  /// round-robin while accumulating). 0 = auto: max(1024, 256 * S).
  size_t affinity_sample = 0;
  /// Splitter centers to fit. 0 = auto: 4 * S capped at 64; always at
  /// least one per shard.
  size_t affinity_centers = 0;

  // --- Checkpoint / resume (see birch/checkpoint.h) ---
  /// When > 0 and `on_checkpoint` is set, the dealer pauses the stream
  /// every `checkpoint_every_n` points (counted from the start of the
  /// original stream, resume included): every shard quiesces at a
  /// barrier after consuming everything dealt so far, then
  /// `on_checkpoint(points_dealt, &builders)` runs with all builders
  /// idle — one coherent image. A non-OK return aborts the run.
  uint64_t checkpoint_every_n = 0;
  std::function<Status(uint64_t points_dealt,
                       std::vector<std::unique_ptr<Phase1Builder>>* builders)>
      on_checkpoint;
  // --- Serving-snapshot publication (see src/serving) ---
  /// When > 0 and `on_publish` is set, the dealer quiesces the shards
  /// every `publish_every_n` points exactly like the checkpoint hook
  /// (the two cadences are independent; a stream position hitting both
  /// quiesces once and runs both callbacks, checkpoint first) and
  /// calls `on_publish(points_dealt, &builders)` with every builder
  /// idle — the callback may read all shard trees as one coherent
  /// image. A non-OK return aborts the run.
  uint64_t publish_every_n = 0;
  std::function<Status(uint64_t points_dealt,
                       std::vector<std::unique_ptr<Phase1Builder>>* builders)>
      on_publish;
  /// Resume: per-shard freezes from a sharded checkpoint (size must
  /// equal the effective shard count). Each shard thaws its freeze
  /// instead of starting empty.
  const std::vector<Phase1Freeze>* resume = nullptr;
  /// Points the checkpointed run already consumed: the dealer skips
  /// this many source points, and dealing continues from this index so
  /// shard assignment matches the uninterrupted run (under kAffinity
  /// the splitter is re-fitted from the skipped prefix, reproducing
  /// the original routing exactly).
  uint64_t resume_skip_points = 0;
};

/// Everything Phases 2-4 need from a (sharded) Phase 1 run.
struct ShardedPhase1Result {
  /// Tracker of the merged tree, budgeted at the full memory budget.
  std::unique_ptr<MemoryTracker> mem;
  /// The merged CF tree.
  std::unique_ptr<CfTree> tree;
  /// Summed per-shard counters plus the merge's own rebuilds;
  /// final_threshold is the merged tree's.
  Phase1Stats stats;
  /// Summed per-shard fault-tolerance accounting.
  RobustnessStats robustness;
  /// Entries no shard could place that the merged tree rejected too.
  std::vector<CfVector> final_outliers;
  uint64_t disk_pages_written = 0;
  uint64_t disk_pages_read = 0;
  /// Summed per-shard compression/tier accounting (see IoStats).
  uint64_t disk_raw_bytes = 0;
  uint64_t disk_stored_bytes = 0;
  uint64_t disk_hot_hits = 0;
  uint64_t disk_hot_misses = 0;
  uint64_t disk_hot_demotions = 0;
  /// Sum of the per-shard tracker peaks only. The merged tree's own
  /// high-water mark lives in `mem` and keeps moving through Phases
  /// 2-4, so the caller reads `mem->peak()` at the end of the run and
  /// adds it to this.
  size_t peak_memory_bytes = 0;
};

/// Runs sharded Phase 1 over `source` on `pool`. The pool must outlive
/// the call; `options.phase1.tree.dim` must match the source.
StatusOr<ShardedPhase1Result> RunShardedPhase1(
    PointSource* source, const ShardedPhase1Options& options,
    exec::ThreadPool* pool);

}  // namespace birch

#endif  // BIRCH_BIRCH_PHASE1_PARALLEL_H_
