// Numeric CSV loading for the CLI tool and examples: parses a file (or
// string) of comma/whitespace-separated doubles into a Dataset,
// skipping blank lines, '#' comments, and an optional non-numeric
// header row. Also provides a streaming CSV PointSource for inputs too
// large to materialize.
#ifndef BIRCH_BIRCH_DATASET_IO_H_
#define BIRCH_BIRCH_DATASET_IO_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "birch/dataset.h"
#include "birch/point_source.h"
#include "util/status.h"

namespace birch {

/// Parses one CSV line (comma/whitespace separated doubles, '#'
/// comments already stripped by the caller or inline) into `out`.
/// Returns false if any field is non-numeric. A blank line yields an
/// empty `out` and returns true.
bool ParseCsvNumericRow(const std::string& line, std::vector<double>* out);

/// Parses CSV `text` into a dataset. Every data row must have the same
/// arity; a first row that fails numeric parsing is treated as a header
/// and skipped.
StatusOr<Dataset> ParseCsvPoints(const std::string& text);

/// Reads `path` and parses it with ParseCsvPoints.
StatusOr<Dataset> ReadCsvPoints(const std::string& path);

/// Streaming CSV source: reads the file one row at a time without ever
/// materializing the dataset — BIRCH's single-scan access pattern over
/// a file of arbitrary size. Rewindable (Phase-4 re-scans reuse it).
class CsvPointSource : public PointSource {
 public:
  /// Opens `path`, sniffing the dimensionality from the first data row
  /// (an optional non-numeric header row is skipped).
  static StatusOr<std::unique_ptr<CsvPointSource>> Open(
      const std::string& path);

  size_t dim() const override { return dim_; }
  bool Next(std::span<double> out, double* weight) override;
  Status Rewind() override;

 private:
  CsvPointSource(std::string path, size_t dim);

  std::string path_;
  size_t dim_;
  std::ifstream in_;
  std::vector<double> row_;
  bool saw_data_ = false;  // header only skippable before first data row
};

}  // namespace birch

#endif  // BIRCH_BIRCH_DATASET_IO_H_
