// CF tree node and the page-derived layout (Sec. 4.2). A node occupies
// one "page" of P bytes; the branching factor B (nonleaf) and leaf
// capacity L are derived from P and the dimensionality d exactly as in
// the paper: a nonleaf entry is a CF plus a child pointer, a leaf entry
// is a CF, and leaves additionally carry prev/next chain pointers.
#ifndef BIRCH_BIRCH_CF_NODE_H_
#define BIRCH_BIRCH_CF_NODE_H_

#include <cstddef>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/kernel/kernel.h"

namespace birch {

/// Derives node capacities from page size, dimension and CF storage
/// width. BETULA CFs under CfStorage::kF32 keep their vector/scalar
/// state in 4-byte floats, so twice as many entries fit a page.
struct CfLayout {
  size_t page_size = 1024;
  size_t dim = 2;
  CfStorage storage = CfStorage::kF64;

  /// Bytes of a serialized CF. N is always a full double (counts are
  /// never quantized); under kF32 the d+1 vector/scalar components are
  /// 4-byte floats. Rounded up to an 8-byte boundary — the on-page
  /// entry payload is framed in doubles (see tree_io.h), and this
  /// matches that serialized size exactly.
  size_t CfBytes() const {
    size_t bytes = storage == CfStorage::kF32
                       ? sizeof(double) + (dim + 1) * sizeof(float)
                       : (dim + 2) * sizeof(double);
    return (bytes + sizeof(double) - 1) / sizeof(double) * sizeof(double);
  }

  /// Fixed per-node overhead we account for: type/count + parent
  /// pointer + leaf chain pointers.
  static constexpr size_t kNodeHeaderBytes = 4 * sizeof(void*);

  /// Nonleaf entry: CF + child pointer.
  size_t NonleafEntryBytes() const { return CfBytes() + sizeof(void*); }

  /// Leaf entry: CF only.
  size_t LeafEntryBytes() const { return CfBytes(); }

  /// Branching factor B for nonleaf nodes (>= 2 so splits are possible).
  size_t B() const {
    size_t usable = page_size > kNodeHeaderBytes
                        ? page_size - kNodeHeaderBytes
                        : 0;
    size_t b = usable / NonleafEntryBytes();
    return b < 2 ? 2 : b;
  }

  /// Max entries L for leaf nodes.
  size_t L() const {
    size_t usable = page_size > kNodeHeaderBytes
                        ? page_size - kNodeHeaderBytes
                        : 0;
    size_t l = usable / LeafEntryBytes();
    return l < 2 ? 2 : l;
  }
};

/// A CF tree node. Nonleaf nodes keep `children[i]` beneath summary
/// `entries[i]`; leaf nodes keep only entries and live on a doubly
/// linked chain for cheap full scans (Phase 2/3 input, rebuilding).
struct CfNode {
  explicit CfNode(bool leaf) : is_leaf(leaf) {}

  bool is_leaf;
  std::vector<CfVector> entries;
  std::vector<CfNode*> children;  // nonleaf only; parallel to entries

  CfNode* prev = nullptr;  // leaf chain
  CfNode* next = nullptr;  // leaf chain

  /// SoA mirror of `entries` for the batch distance kernel, rebuilt
  /// lazily by CfTree (kernel = kBatch only; see kernel/kernel.h).
  /// `scratch_valid` is the invalidation flag: any structural entry
  /// change clears it; the in-place absorb path updates one row
  /// instead. The scratch is bookkeeping, not data — it is not charged
  /// against the memory budget and is never serialized.
  mutable kernel::CfBatch scratch;
  mutable bool scratch_valid = false;

  size_t size() const { return entries.size(); }

  /// Sum of all entry CFs = CF of everything beneath this node.
  CfVector Summary() const {
    CfVector cf;
    for (const auto& e : entries) cf.Add(e);
    return cf;
  }
};

}  // namespace birch

#endif  // BIRCH_BIRCH_CF_NODE_H_
