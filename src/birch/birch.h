// Public entry points. BirchClusterer is the single engine: stream
// points in with AddBatch() — the primary, SoA-friendly ingest surface
// that Add()/AddDataset()/AddSource() are reimplemented on — and call
// Finish(), or hand it a whole PointSource via Cluster() (which picks
// the serial or sharded Phase-1 pipeline from
// options.exec.num_threads). The one-call ClusterDataset /
// ClusterSource wrappers are thin delegations to it. This is the API
// the examples and benchmarks build on.
#ifndef BIRCH_BIRCH_BIRCH_H_
#define BIRCH_BIRCH_BIRCH_H_

#include <atomic>
#include <memory>
#include <vector>

#include "birch/dataset.h"
#include "birch/global_cluster.h"
#include "birch/options.h"
#include "birch/phase1.h"
#include "birch/phase2.h"
#include "birch/point_source.h"
#include "birch/refine.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace birch {

namespace serving {
class BirchServer;
}  // namespace serving

/// Wall-clock seconds per phase.
struct PhaseTimings {
  double phase1 = 0.0;
  double phase2 = 0.0;
  double phase3 = 0.0;
  double phase4 = 0.0;
  double Total() const { return phase1 + phase2 + phase3 + phase4; }
  double Phases123() const { return phase1 + phase2 + phase3; }
};

/// Everything a caller (or benchmark) wants to know about one run.
struct BirchResult {
  /// Per-point cluster label (index into `clusters`), -1 = outlier.
  /// Empty when no dataset was supplied for labelling.
  std::vector<int> labels;
  /// Final cluster CFs.
  std::vector<CfVector> clusters;
  /// Centroids of `clusters`.
  std::vector<std::vector<double>> centroids;

  PhaseTimings timings;
  Phase1Stats phase1;
  Phase2Stats phase2;
  /// Fault-tolerance accounting: retries, checksum catches, records
  /// lost, and degradation events on the outlier disk.
  RobustnessStats robustness;
  CfTreeStats tree_stats;
  size_t leaf_entries_after_phase1 = 0;
  size_t leaf_entries_after_phase2 = 0;
  size_t peak_memory_bytes = 0;
  size_t tree_nodes = 0;
  uint64_t disk_pages_written = 0;
  uint64_t disk_pages_read = 0;
  /// Outlier-disk compression/tier accounting (all zero when
  /// resources.page_codec == kNone): raw page bytes presented vs
  /// envelope bytes stored, and hot-tier traffic. The effective
  /// compression ratio is disk_raw_bytes / disk_stored_bytes.
  uint64_t disk_raw_bytes = 0;
  uint64_t disk_stored_bytes = 0;
  uint64_t disk_hot_hits = 0;
  uint64_t disk_hot_misses = 0;
  uint64_t disk_hot_demotions = 0;
  double final_threshold = 0.0;
  uint64_t outlier_points = 0;  // points in never-absorbed outlier entries

  /// Instrumentation snapshot for this run only (counters, gauges,
  /// histograms, span aggregates, deltas against the registry state at
  /// clusterer construction). Empty when obs is disabled.
  obs::MetricsSnapshot metrics;

  /// Sampled trajectories (threshold T, tree occupancy, memory, I/O
  /// volume over the run). Populated only when
  /// options.obs.sample_every_ms > 0 and obs is enabled.
  std::vector<obs::TimeSeriesSnapshot> timeseries;
};

struct ShardedPhase1Result;

/// Incremental clustering: feed points as they arrive; Finish() runs
/// Phases 2-4 and returns the result. Snapshot() clusters the current
/// tree contents without disturbing the stream — the paper's
/// "incremental" claim as a first-class API. For whole-input runs,
/// Cluster() drives the full pipeline (sharded Phase 1 when
/// options.exec.num_threads > 0) in one call.
class BirchClusterer {
 public:
  /// Fails on invalid options.
  static StatusOr<std::unique_ptr<BirchClusterer>> Create(
      const BirchOptions& options);
  ~BirchClusterer();

  /// Primary ingest surface: inserts `n` points packed row-major in
  /// `xs` (exactly n * dim doubles), with optional per-point `weights`
  /// (empty = every point weighs 1.0). Bitwise-identical to calling
  /// Add() on each row in order; the batch is validated whole before
  /// any point is ingested, and auto-checkpoint / auto-publish
  /// cadences still fire at the exact absolute point counts (the batch
  /// is split internally at cadence boundaries). Fails after
  /// Finish()/Cluster().
  Status AddBatch(std::span<const double> xs, size_t n,
                  std::span<const double> weights = {});

  /// Inserts one point (Phase 1) — AddBatch() of one row. Fails after
  /// Finish()/Cluster().
  Status Add(std::span<const double> x, double weight = 1.0);

  /// One zero-copy AddBatch() over `data`'s row-major storage. Fails
  /// after Finish()/Cluster().
  Status AddDataset(const Dataset& data);

  /// Drains `source` into the tree (single scan; the stream is never
  /// materialized). Fails after Finish()/Cluster().
  Status AddSource(PointSource* source);

  /// Runs Phases 2-4. If `for_refinement` is non-null, Phase 4
  /// labels/refines against it (it should be the full data seen so
  /// far). Consumes the builder: Add() afterwards fails, but tree()
  /// and phase1_stats() remain valid for inspection.
  StatusOr<BirchResult> Finish(const Dataset* for_refinement = nullptr);

  /// Whole-pipeline convenience: drains `source` through Phase 1
  /// (sharded across options.exec.num_threads trees when > 0, the
  /// streaming serial path otherwise), then runs Phases 2-4 exactly
  /// like Finish(). Consumes the builder the same way.
  StatusOr<BirchResult> Cluster(PointSource* source,
                                const Dataset* for_refinement = nullptr);

  /// Clusters the current leaf entries into `k` clusters without
  /// modifying the tree. Cheap relative to the stream. The result has
  /// no labels (no raw data is revisited); clusters, centroids,
  /// Phase-1/tree stats and the metrics delta are filled in.
  /// With options.exec.num_threads > 0 a mid-stream snapshot would read
  /// per-shard state that is only merged at Cluster()'s end, so it
  /// returns FailedPrecondition until the run finishes (afterwards it
  /// snapshots the merged tree).
  StatusOr<BirchResult> Snapshot(int k) const;

  /// Writes a durable checkpoint of the live Phase-1 state to `path`
  /// (atomic replace; format in birch/checkpoint.h) without disturbing
  /// the stream — Add() more points and checkpoint again at will.
  /// FailedPrecondition after Finish()/Cluster(), and on a clusterer
  /// restored from a *sharded* checkpoint before its Cluster() call
  /// (sharded images are written by the auto-checkpoint hook inside
  /// Cluster(), where the shards exist).
  Status SaveCheckpoint(const std::string& path);

  /// Reopens a checkpoint. `options` must fingerprint-match the
  /// checkpointed run (dim, page_size, metric, threshold kind →
  /// InvalidArgument otherwise), and num_threads must be 0 for a
  /// serial image / equal to the shard count for a sharded one.
  /// Resume by feeding only the unseen points via Add()/AddSource() +
  /// Finish(), or by handing the SAME full stream to Cluster(), which
  /// skips the first points_ingested points automatically. A fault-
  /// free serial resume is bitwise identical to the uninterrupted run.
  static StatusOr<std::unique_ptr<BirchClusterer>> Restore(
      const std::string& path, const BirchOptions& options);

  /// Phase-1 state inspection. Valid before and after
  /// Finish()/Cluster(); with a sharded Cluster() run these report
  /// the merged tree.
  const CfTree& tree() const;
  const Phase1Stats& phase1_stats() const;

  // --- Serving tier (src/serving) ---

  /// The query server this clusterer publishes snapshot epochs to.
  /// Non-null iff options.serving.publish_every_n > 0; safe to query
  /// from any number of threads concurrently with ingest. Epochs
  /// survive Finish()/Cluster() — the server keeps answering from the
  /// last published state for the clusterer's lifetime.
  serving::BirchServer* server() const { return server_.get(); }

  /// Builds a ServingSnapshot of the current Phase-1 state and
  /// publishes it as a new epoch (the manual form of the
  /// publish_every_n cadence — e.g. one final epoch after the stream
  /// ends). FailedPrecondition when serving is disabled or nothing has
  /// been ingested. On the sharded path the live per-shard trees are
  /// only visible inside Cluster(), so mid-stream manual publishes see
  /// an empty tree; the automatic cadence covers that path.
  Status PublishSnapshot();

 private:
  explicit BirchClusterer(const BirchOptions& options);

  /// Cadence bookkeeping for the serial ingest paths: advances the
  /// point counters by `added` and runs the auto-checkpoint / auto-
  /// publish hooks when they land exactly on their cadences (AddBatch
  /// splits batches so they always do).
  Status NoteIngested(uint64_t added);

  BirchOptions options_;
  std::unique_ptr<Phase1Builder> phase1_;
  /// Set by a sharded Cluster() run; keeps the merged tree alive so
  /// tree()/phase1_stats() stay valid after the run.
  std::unique_ptr<ShardedPhase1Result> sharded_;
  bool finished_ = false;
  /// True once a sharded Cluster() has installed `sharded_` (the
  /// merged tree). Release/acquire because Snapshot() may race a
  /// sharded Cluster() from another thread — that is the supported
  /// mid-stream snapshot pattern: until this flips, a concurrent
  /// Snapshot() answers from the last published serving epoch.
  std::atomic<bool> merged_ready_{false};

  // --- Serving tier state ---
  /// Non-null iff options.serving.publish_every_n > 0. Declared before
  /// sampler_ so the sampler (whose probes read the server) joins its
  /// thread first on destruction.
  std::unique_ptr<serving::BirchServer> server_;
  /// Serial auto-publish counter (points since the last epoch).
  uint64_t points_since_publish_ = 0;

  // --- Checkpoint / resume state ---
  /// Points the checkpoint's run had consumed; Cluster() skips this
  /// many source points before ingesting.
  uint64_t resume_skip_points_ = 0;
  /// Pending per-shard freezes from a sharded-checkpoint Restore();
  /// consumed by Cluster(). Non-empty blocks Add()/AddDataset()/
  /// AddSource()/SaveCheckpoint().
  std::vector<Phase1Freeze> resume_freezes_;
  /// Serial auto-checkpoint counter (points since the last save).
  uint64_t points_since_checkpoint_ = 0;

  /// Registry state at construction; Finish() reports the delta so
  /// BirchResult::metrics covers exactly this run.
  obs::MetricsSnapshot metrics_baseline_;
  /// Continuous telemetry (options_.obs.sample_every_ms > 0): started
  /// at construction, stopped when Finish()/Cluster() completes; its
  /// series become BirchResult::timeseries. Null when sampling is off.
  std::unique_ptr<obs::StatsSampler> sampler_;
  /// Phase 1 runs from construction (the Add() stream) through the
  /// Finish() tail — one timer and one span cover the whole stretch.
  Timer phase1_timer_;
  obs::SpanScope phase1_span_{"birch/phase1"};
};

/// One-call API: cluster `data` with `options`. Labels are always
/// produced (Phase 4 when refinement_passes > 0, otherwise one
/// labelling pass).
StatusOr<BirchResult> ClusterDataset(const Dataset& data,
                                     const BirchOptions& options);

/// One-call out-of-core API: cluster a stream without materializing
/// it. Phase 4 runs only when the source is rewindable AND
/// options.refine.passes > 0; with a rewindable source the
/// refinement re-scans it pass by pass in O(1) extra memory, so
/// BirchResult.labels stays empty either way (a labels vector for N
/// points would defeat the purpose — use result.centroids to label
/// downstream, or LabelPoints on manageable slices).
StatusOr<BirchResult> ClusterSource(PointSource* source,
                                    const BirchOptions& options);

}  // namespace birch

#endif  // BIRCH_BIRCH_BIRCH_H_
