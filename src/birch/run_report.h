// Run-report manifest: one versioned JSON document per clustering run,
// the durable record a benchmark harness or regression gate consumes —
// options (with a fingerprint), dataset descriptor, per-phase wall
// times, final metrics with histogram quantiles, robustness accounting,
// and the sampled time series. Written on success AND failure: a
// partial run's telemetry is exactly what a post-mortem needs, so the
// report carries the run's Status rather than existing only when OK.
//
// Schema stability contract: `schema` / `schema_version` gate readers.
// Additive changes (new keys) do not bump the version; readers must
// ignore keys they do not know. Renaming or retyping an existing key
// bumps the version, and ReadRunReport rejects versions it does not
// know.
#ifndef BIRCH_BIRCH_RUN_REPORT_H_
#define BIRCH_BIRCH_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "birch/birch.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "util/json.h"
#include "util/status.h"

namespace birch {

inline constexpr const char* kRunReportSchema = "birch_run_report";
inline constexpr int64_t kRunReportSchemaVersion = 1;

/// Everything a run report is built from. `result` may be null (failed
/// run); `timeseries` is used when `result` is null or has none — a
/// CLI-owned sampler outlives the clusterer on the failure path.
struct RunReportInputs {
  const BirchOptions* options = nullptr;  // required
  std::string dataset_name;
  uint64_t dataset_points = 0;
  size_t dataset_dim = 0;
  Status status;  // the clustering outcome this report records
  const BirchResult* result = nullptr;
  std::vector<obs::TimeSeriesSnapshot> timeseries;
  /// Optional dataset-dependent quality numbers (e.g. label accuracy
  /// against ground truth); emitted verbatim under "quality".
  std::map<std::string, double> quality;
  /// Optional serving-tier numbers (QPS, latency quantiles, snapshot
  /// age) from bench_serving; emitted verbatim under "serving".
  std::map<std::string, double> serving;
};

/// FNV-1a 64 over a canonical rendering of every option that changes
/// clustering behaviour. Two runs with equal fingerprints are
/// comparable; fault-injection and checkpoint knobs are included
/// (they change the work done), the obs group is not (telemetry must
/// never make two runs "different").
uint64_t OptionsFingerprint(const BirchOptions& options);

/// The manifest as a JSON string (one document, no trailing newline).
std::string RunReportJson(const RunReportInputs& in);

/// Renders and atomically writes the manifest. InvalidArgument when
/// `in.options` is null.
Status WriteRunReport(const std::string& path, const RunReportInputs& in);

/// Parses `path` and validates the envelope: Corruption for damaged
/// JSON, InvalidArgument for a wrong schema name or an unknown
/// schema_version. Returns the whole document.
StatusOr<JsonValue> ReadRunReport(const std::string& path);

/// Registers the standard BIRCH probe set on `sampler`: tree occupancy
/// (nodes, leaf entries), threshold T, memory bytes, page-store and
/// spill I/O volume, points ingested. Metric handles resolve in
/// Registry::Default(), so the probes are TSAN-safe against concurrent
/// ingest (relaxed atomics all the way down).
void RegisterBirchProbes(obs::StatsSampler* sampler);

}  // namespace birch

#endif  // BIRCH_BIRCH_RUN_REPORT_H_
