// CF-tree persistence: write a CF tree into a PageStore one node per
// page — the paper's "each node occupies a page of size P" layout made
// literal — and read it back. The paper's summary points at exactly
// this use ("the clusters ... can be stored in the CF tree ... for data
// compression"); it also lets a Phase-1 pass checkpoint its summary and
// resume later, which is what "work with any given amount of memory"
// means operationally.
//
// Page format (framed in doubles):
//   [0] magic            (kNodeMagic)
//   [1] is_leaf          (0.0 / 1.0)
//   [2] entry count      (c)
//   then c entries of:
//     leaf:     CF payload
//     nonleaf:  CF payload, child PageId
// The CF payload depends on the tree's storage policy:
//   kF64: N, vec[0..d), scalar — d+2 doubles (vec/scalar are LS/SS
//         classic, mean/S betula).
//   kF32: N as a double (counts stay exact), then vec[0..d) and scalar
//         as d+1 packed floats, zero-padded to a whole number of
//         doubles. Exact round-trip: kF32 CFs quantize after every
//         mutation, so each component is already a float value.
#ifndef BIRCH_BIRCH_TREE_IO_H_
#define BIRCH_BIRCH_TREE_IO_H_

#include <memory>
#include <vector>

#include "birch/cf_tree.h"
#include "pagestore/page_store.h"
#include "util/status.h"

namespace birch {

/// Descriptor returned by Write and consumed by Read. Holds everything
/// needed to reopen the tree (the store holds the node pages).
struct TreeImage {
  PageId root = kInvalidPageId;
  size_t dim = 0;
  size_t page_size = 0;
  /// CF policies the pages were written under. Part of the persistent
  /// fingerprint: Read rejects an image whose policies differ from the
  /// caller's options (kInvalidArgument) — decoding classic pages as
  /// betula (or f64 as f32) would silently misread every statistic.
  CfRepresentation cf = CfRepresentation::kClassic;
  CfStorage cf_storage = CfStorage::kF64;
  double threshold = 0.0;
  size_t node_count = 0;
  size_t leaf_entries = 0;
  size_t height = 0;
  /// Page ids of the leaf nodes in chain order. Node splits append the
  /// new sibling at the end of the parent's child list, so traversal
  /// order and chain order diverge over time; Read relinks the chain
  /// from this list so a reopened tree iterates its leaves in exactly
  /// the original order (checkpoint resume depends on it — leaf order
  /// is Phase-3 input order). Empty = legacy image, traversal order.
  std::vector<PageId> leaf_chain;
};

class TreeIO {
 public:
  /// Serializes `tree` into `store` (whose page_size must be >=
  /// tree.options().page_size). Allocates node_count pages. On any
  /// mid-traversal failure every page allocated so far is freed before
  /// the error returns — a failed Write never leaks store capacity.
  static StatusOr<TreeImage> Write(const CfTree& tree, PageStore* store);

  /// Reconstructs a CF tree from `image`, charging `mem` one page per
  /// node. `options` supplies the runtime knobs (metric, threshold
  /// kind); dim/page_size/threshold are taken from the image.
  /// Structurally invalid pages (bad magic, impossible entry counts,
  /// out-of-range child ids, reference cycles, metadata that does not
  /// add up) surface as kCorruption — never undefined behavior.
  static StatusOr<std::unique_ptr<CfTree>> Read(const TreeImage& image,
                                                PageStore* store,
                                                const CfTreeOptions& options,
                                                MemoryTracker* mem);

  /// Frees every node page of a written image from the store.
  static Status Release(const TreeImage& image, PageStore* store);

 private:
  static constexpr double kNodeMagic = 5214.1996;  // SIGMOD '96 :-)
};

}  // namespace birch

#endif  // BIRCH_BIRCH_TREE_IO_H_
