// End-to-end BIRCH configuration. Defaults mirror the paper's Table 2:
// M = 80 KB memory, R = 20% of M disk, P = 1 KB pages, T0 = 0, metric
// D2, diameter threshold, outlier handling on, one Phase-4 refinement
// pass.
#ifndef BIRCH_BIRCH_OPTIONS_H_
#define BIRCH_BIRCH_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "birch/cf_tree.h"
#include "birch/global_cluster.h"
#include "pagestore/fault_injector.h"
#include "util/status.h"

namespace birch {

struct BirchOptions {
  // --- Problem ---
  size_t dim = 2;
  /// Number of clusters to produce. The paper allows the clustering
  /// goal to be stated either as K or as a distance bound: set k > 0,
  /// OR set k = 0 and global_distance_limit > 0 (hierarchical Phase 3
  /// then merges until the next merge would exceed the limit).
  int k = 0;
  double global_distance_limit = 0.0;

  // --- Resources (Phase 1) ---
  size_t memory_bytes = 80 * 1024;
  /// Outlier-disk budget R (paper default: 20% of M). Two special
  /// regimes interact with `outlier_handling`:
  ///   - disk_bytes == 0: there is no outlier disk at all. Outlier
  ///     handling and delay-split degrade to the in-tree fallback —
  ///     low-density entries are re-absorbed at the current threshold
  ///     when they fit and otherwise dropped straight to the final
  ///     outlier list (with accounting in RobustnessStats); the run
  ///     never fails for lack of a disk.
  ///   - 0 < disk_bytes < page_size: rejected by Validate() — a budget
  ///     that cannot hold one page is a configuration error, not a
  ///     degraded device.
  /// The same in-tree fallback engages mid-run if the disk fails
  /// unrecoverably (see `fault` below).
  size_t disk_bytes = 16 * 1024;  // paper: R = 20% of M
  size_t page_size = 1024;

  // --- Robustness ---
  /// Deterministic fault injection for the outlier disk (chaos
  /// testing): transient IOErrors, silent page loss, bit rot. The
  /// default injects nothing.
  FaultOptions fault;
  /// Bounded retry-with-backoff applied to transient outlier-disk
  /// errors before they are treated as unrecoverable.
  RetryPolicy io_retry;

  // --- CF tree ---
  double initial_threshold = 0.0;
  DistanceMetric metric = DistanceMetric::kD2;
  ThresholdKind threshold_kind = ThresholdKind::kDiameter;
  bool merging_refinement = true;

  // --- Options of Sec. 5.1.4 ---
  bool outlier_handling = true;
  double outlier_fraction = 0.25;  // "< 25% of average" rule
  bool delay_split = true;

  // --- Phase 2 ---
  bool use_phase2 = true;
  size_t phase2_target_entries = 1000;

  // --- Phase 3 ---
  GlobalAlgorithm global_algorithm = GlobalAlgorithm::kHierarchical;
  DistanceMetric global_metric = DistanceMetric::kD2;

  // --- Phase 4 ---
  /// Redistribution passes over the raw data; 0 skips Phase 4 (labels
  /// are then produced by a single non-moving labelling pass).
  int refinement_passes = 1;
  /// > 0: discard points farther than this from every centroid.
  double refine_outlier_distance = 0.0;

  // --- Parallel execution (src/exec) ---
  /// Worker threads for the parallel paths. 0 (the default) runs the
  /// fully serial pipeline — bit-for-bit identical to the
  /// pre-parallel implementation. N >= 1 shards Phase 1 across N
  /// private CF trees (round-robin by arrival index, merged by CF
  /// additivity) and runs the Phase-3 / Phase-4 loops through a
  /// ThreadPool of N workers. Results are deterministic for a fixed
  /// (seed, num_threads) pair; different thread counts may differ in
  /// the last float bits (chunked summation order).
  int num_threads = 0;
  /// Upper bound Validate() accepts for num_threads (a guard against
  /// absurd CLI values, not a tuning knob).
  static constexpr int kMaxThreads = 256;

  /// If the total point count is known up front, the threshold
  /// heuristic uses it; 0 = unknown.
  uint64_t expected_points = 0;

  uint64_t seed = 42;

  /// Checks internal consistency.
  Status Validate() const {
    if (dim == 0) return Status::InvalidArgument("dim must be > 0");
    if (k < 0) return Status::InvalidArgument("k must be >= 0");
    if (k == 0) {
      if (global_distance_limit <= 0.0) {
        return Status::InvalidArgument(
            "set k > 0, or k == 0 with global_distance_limit > 0");
      }
      if (global_algorithm != GlobalAlgorithm::kHierarchical) {
        return Status::InvalidArgument(
            "distance-limited clustering requires the hierarchical "
            "global algorithm");
      }
    }
    if (page_size < (dim + 2) * sizeof(double) + 64) {
      return Status::InvalidArgument(
          "page_size too small for this dimensionality");
    }
    if (memory_bytes != 0 && memory_bytes < 4 * page_size) {
      return Status::InvalidArgument("memory budget below 4 pages");
    }
    if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
      return Status::InvalidArgument("outlier_fraction must be in [0,1)");
    }
    if (disk_bytes > 0 && disk_bytes < page_size) {
      return Status::InvalidArgument(
          "disk_bytes must be 0 (no outlier disk; in-tree fallback) or "
          "at least one page");
    }
    BIRCH_RETURN_IF_ERROR(fault.Validate());
    BIRCH_RETURN_IF_ERROR(io_retry.Validate());
    if (refinement_passes < 0) {
      return Status::InvalidArgument("refinement_passes must be >= 0");
    }
    if (phase2_target_entries == 0) {
      return Status::InvalidArgument("phase2_target_entries must be > 0");
    }
    if (num_threads < 0 || num_threads > kMaxThreads) {
      return Status::InvalidArgument(
          "num_threads must be in [0, " + std::to_string(kMaxThreads) +
          "] (0 = serial)");
    }
    return Status::OK();
  }
};

}  // namespace birch

#endif  // BIRCH_BIRCH_OPTIONS_H_
