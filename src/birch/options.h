// End-to-end BIRCH configuration. Defaults mirror the paper's Table 2:
// M = 80 KB memory, R = 20% of M disk, P = 1 KB pages, T0 = 0, metric
// D2, diameter threshold, outlier handling on, one Phase-4 refinement
// pass.
//
// Fields are grouped into nested sub-structs by subsystem (resources,
// tree, outliers, global_phase, refine, exec, obs, serving). Use the
// grouped names directly or the fluent BirchOptions::Builder, which
// validates at Build(). (The pre-grouping flat reference aliases were
// removed after one deprecation cycle; see README "API notes" for the
// one-line migration.)
#ifndef BIRCH_BIRCH_OPTIONS_H_
#define BIRCH_BIRCH_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "birch/cf_tree.h"
#include "birch/global_cluster.h"
#include "birch/kernel/kernel.h"
#include "pagestore/fault_injector.h"
#include "pagestore/page_codec.h"
#include "util/status.h"

namespace birch {

/// How the sharded Phase-1 dealer routes points to shards.
enum class DealingMode {
  /// Space-partitioned (the default): a shallow k-means splitter,
  /// fitted over the first points of the stream, routes each point to
  /// the shard that owns its spatial region. Shard trees end up mostly
  /// disjoint, so the final AbsorbTree merge is near-trivial.
  kAffinity = 0,
  /// Point i goes to shard i mod S (the pre-affinity behavior). Kept
  /// as the A/B baseline and for workloads with no spatial structure.
  kRoundRobin,
};

inline const char* DealingModeName(DealingMode m) {
  return m == DealingMode::kAffinity ? "affinity" : "round-robin";
}

struct BirchOptions {
  // --- Problem ---
  size_t dim = 2;
  /// Number of clusters to produce. The paper allows the clustering
  /// goal to be stated either as K or as a distance bound: set k > 0,
  /// OR set k = 0 and global_phase.distance_limit > 0 (hierarchical
  /// Phase 3 then merges until the next merge would exceed the limit).
  int k = 0;
  /// If the total point count is known up front, the threshold
  /// heuristic uses it; 0 = unknown.
  uint64_t expected_points = 0;
  uint64_t seed = 42;

  // --- Resources (Phase 1) ---
  struct Resources {
    size_t memory_bytes = 80 * 1024;
    /// Outlier-disk budget R (paper default: 20% of M). Two special
    /// regimes interact with `outliers.handling`:
    ///   - disk_bytes == 0: there is no outlier disk at all. Outlier
    ///     handling and delay-split degrade to the in-tree fallback —
    ///     low-density entries are re-absorbed at the current
    ///     threshold when they fit and otherwise dropped straight to
    ///     the final outlier list (with accounting in
    ///     RobustnessStats); the run never fails for lack of a disk.
    ///   - 0 < disk_bytes < page_size: rejected by Validate() — a
    ///     budget that cannot hold one page is a configuration error,
    ///     not a degraded device.
    /// The same in-tree fallback engages mid-run if the disk fails
    /// unrecoverably (see `fault` below).
    size_t disk_bytes = 16 * 1024;  // paper: R = 20% of M
    size_t page_size = 1024;
    /// Transparent per-page compression for the outlier disk and
    /// checkpoint files (pagestore/page_codec.h). With a codec, pages
    /// are charged against disk_bytes at their compressed size, so the
    /// effective budget is R x ratio; checkpoint section payloads are
    /// stored compressed too. kNone (the default) keeps the v1 raw
    /// format everywhere.
    PageCodecKind page_codec = PageCodecKind::kNone;
    /// DRAM budget for the outlier disk's hot tier of decompressed
    /// pages (LRU-evicted; see PageStoreOptions::hot_tier_bytes).
    /// Requires page_codec != kNone; 0 = no hot tier, every read
    /// decodes from the compressed image.
    size_t hot_tier_bytes = 0;
    /// Deterministic fault injection for the outlier disk (chaos
    /// testing): transient IOErrors, silent page loss, bit rot. The
    /// default injects nothing.
    FaultOptions fault;
    /// Bounded retry-with-backoff applied to transient outlier-disk
    /// errors before they are treated as unrecoverable.
    RetryPolicy io_retry;
    /// Auto-checkpoint: every `checkpoint_every_n` ingested points,
    /// write a durable checkpoint of the live Phase-1 state to
    /// `checkpoint_path` (atomically replacing the previous one). 0
    /// disables. Works on both the serial streaming path and the
    /// sharded Cluster() path (shards quiesce at a barrier so the file
    /// is one coherent image). See birch/checkpoint.h for the format
    /// and BirchClusterer::Restore for the resume side.
    uint64_t checkpoint_every_n = 0;
    std::string checkpoint_path;
  };

  // --- CF tree ---
  struct Tree {
    double initial_threshold = 0.0;
    DistanceMetric metric = DistanceMetric::kD2;
    ThresholdKind threshold_kind = ThresholdKind::kDiameter;
    bool merging_refinement = true;
    /// CF algebra for the whole pipeline (see cf_vector.h): the
    /// paper's (N, LS, SS) triple, or the numerically stable BETULA
    /// (N, mean, S) variant.
    CfRepresentation cf = CfRepresentation::kClassic;
    /// Stored precision of CF components. kF32 halves per-entry CF
    /// memory (doubling the tree's B and L) and is only valid with
    /// cf == kBetula — float32 (LS, SS) would lose the radius to
    /// cancellation entirely.
    CfStorage cf_storage = CfStorage::kF64;
  };

  // --- Outlier options of Sec. 5.1.4 ---
  struct Outliers {
    bool handling = true;
    double fraction = 0.25;  // "< 25% of average" rule
    bool delay_split = true;
  };

  // --- Phases 2-3 ---
  struct GlobalPhase {
    bool use_phase2 = true;
    size_t phase2_target_entries = 1000;
    GlobalAlgorithm algorithm = GlobalAlgorithm::kHierarchical;
    DistanceMetric metric = DistanceMetric::kD2;
    /// When k == 0: merge until the next merge would exceed this.
    double distance_limit = 0.0;
  };

  // --- Phase 4 ---
  struct Refine {
    /// Redistribution passes over the raw data; 0 skips Phase 4
    /// (labels are then produced by a single non-moving labelling
    /// pass).
    int passes = 1;
    /// > 0: discard points farther than this from every centroid.
    double outlier_distance = 0.0;
  };

  // --- Execution (src/exec + src/birch/kernel) ---
  struct Exec {
    /// Worker threads for the parallel paths. 0 (the default) runs
    /// the fully serial pipeline — bit-for-bit identical to the
    /// pre-parallel implementation. N >= 1 shards Phase 1 across N
    /// private CF trees (dealt per `dealing`, merged by CF additivity)
    /// and runs the Phase-3 / Phase-4 loops through a ThreadPool of N
    /// workers. Results are deterministic for a fixed (seed,
    /// num_threads, splitter_seed) triple; different thread counts may
    /// differ in the last float bits (chunked summation order).
    int num_threads = 0;
    /// Shard routing policy (see DealingMode). Only consulted when
    /// num_threads > 0.
    DealingMode dealing = DealingMode::kAffinity;
    /// Seed for the affinity splitter's shallow k-means. Part of the
    /// determinism contract: fixed (seed, num_threads, splitter_seed)
    /// implies a bitwise-reproducible run.
    uint64_t splitter_seed = 0xb1c5;
    /// Points sampled from the head of the stream to fit the affinity
    /// splitter (dealt round-robin while the sample accumulates).
    /// 0 = auto: max(1024, 256 * shards).
    size_t affinity_sample = 0;
    /// Splitter centers; each shard owns one or more. 0 = auto:
    /// 4 * shards, capped at 64.
    size_t affinity_centers = 0;
    /// Distance-scan implementation for the hot paths (tree descent,
    /// Phase-3 sweeps, Phase-4 assignment). kScalar and kBatch are
    /// bitwise identical; kBatch is the SoA one-pass scan
    /// (kernel/kernel.h). kBatchFast additionally routes the CF-tree
    /// descent scans through the FMA/AVX-512 lane where the CPU has
    /// one — faster but NOT bitwise against the oracle (last-ulp
    /// rounding differs), so it is opt-in and excluded from the
    /// determinism contract above.
    KernelKind kernel = KernelKind::kBatch;
  };

  // --- Observability (src/obs) ---
  struct Obs {
    /// > 0: the clusterer runs a background StatsSampler at this
    /// cadence for the lifetime of the run, sampling the BIRCH probes
    /// (tree occupancy, threshold T, memory and I/O volume) into
    /// BirchResult::timeseries. 0 (the default) records nothing and
    /// starts no thread.
    uint64_t sample_every_ms = 0;
    /// Ring capacity per sampled series; the oldest samples drop
    /// beyond it (the drop count is reported in the snapshot).
    size_t series_capacity = 4096;
  };

  // --- Serving tier (src/serving) ---
  struct Serving {
    /// > 0: Phase 1 publishes an immutable ServingSnapshot epoch to
    /// BirchClusterer::server() every `publish_every_n` ingested
    /// points (serial paths count Add()s; the sharded Cluster() path
    /// quiesces its shards at the same stream positions, so the epoch
    /// is one coherent image). 0 (the default) publishes nothing and
    /// creates no server.
    uint64_t publish_every_n = 0;
    /// Cluster count for each snapshot's publish-time cluster table
    /// (what Assign's cluster_id and KNearestCentroids index into).
    /// 0 uses the run's `k` (or its distance_limit rule).
    int publish_k = 0;
  };

  Resources resources;
  Tree tree;
  Outliers outliers;
  GlobalPhase global_phase;
  Refine refine;
  Exec exec;
  Obs obs;
  Serving serving;

  /// Upper bound Validate() accepts for num_threads (a guard against
  /// absurd CLI values, not a tuning knob).
  static constexpr int kMaxThreads = 256;

  class Builder;

  /// Checks internal consistency.
  Status Validate() const {
    if (dim == 0) return Status::InvalidArgument("dim must be > 0");
    if (k < 0) return Status::InvalidArgument("k must be >= 0");
    if (k == 0) {
      if (global_phase.distance_limit <= 0.0) {
        return Status::InvalidArgument(
            "set k > 0, or k == 0 with global_phase.distance_limit > 0");
      }
      if (global_phase.algorithm != GlobalAlgorithm::kHierarchical) {
        return Status::InvalidArgument(
            "distance-limited clustering requires the hierarchical "
            "global algorithm");
      }
    }
    if (tree.cf_storage == CfStorage::kF32 &&
        tree.cf != CfRepresentation::kBetula) {
      return Status::InvalidArgument(
          "float32 CF storage requires the betula representation "
          "(classic (N, LS, SS) loses the radius to cancellation in "
          "float32)");
    }
    {
      CfLayout probe{resources.page_size, dim,
                     tree.cf_storage};
      if (resources.page_size < probe.CfBytes() + 64) {
        return Status::InvalidArgument(
            "page_size too small for this dimensionality");
      }
    }
    if (resources.memory_bytes != 0 &&
        resources.memory_bytes < 4 * resources.page_size) {
      return Status::InvalidArgument("memory budget below 4 pages");
    }
    if (outliers.fraction < 0.0 || outliers.fraction >= 1.0) {
      return Status::InvalidArgument("outlier_fraction must be in [0,1)");
    }
    if (resources.disk_bytes > 0 &&
        resources.disk_bytes < resources.page_size) {
      return Status::InvalidArgument(
          "disk_bytes must be 0 (no outlier disk; in-tree fallback) or "
          "at least one page");
    }
    if (resources.hot_tier_bytes > 0 &&
        resources.page_codec == PageCodecKind::kNone) {
      return Status::InvalidArgument(
          "hot_tier_bytes requires a page_codec (uncompressed pages "
          "are their own hot copy; set resources.page_codec)");
    }
    BIRCH_RETURN_IF_ERROR(resources.fault.Validate());
    BIRCH_RETURN_IF_ERROR(resources.io_retry.Validate());
    if (resources.checkpoint_every_n > 0 &&
        resources.checkpoint_path.empty()) {
      return Status::InvalidArgument(
          "checkpoint_every_n > 0 requires a checkpoint_path");
    }
    if (refine.passes < 0) {
      return Status::InvalidArgument("refinement_passes must be >= 0");
    }
    if (global_phase.phase2_target_entries == 0) {
      return Status::InvalidArgument("phase2_target_entries must be > 0");
    }
    if (exec.num_threads < 0 || exec.num_threads > kMaxThreads) {
      return Status::InvalidArgument(
          "num_threads must be in [0, " + std::to_string(kMaxThreads) +
          "] (0 = serial)");
    }
    if (obs.sample_every_ms > 0 && obs.series_capacity == 0) {
      return Status::InvalidArgument(
          "obs.series_capacity must be > 0 when sampling is enabled");
    }
    if (serving.publish_k < 0) {
      return Status::InvalidArgument("serving.publish_k must be >= 0");
    }
    return Status::OK();
  }
};

/// Fluent construction with validation at the end:
///
///   auto opts_or = BirchOptions::Builder()
///                      .Dim(16).K(8)
///                      .MemoryBytes(1 << 20)
///                      .NumThreads(4)
///                      .Build();
///
/// Build() returns InvalidArgument instead of letting a bad
/// configuration reach the clusterer.
class BirchOptions::Builder {
 public:
  Builder() = default;

  // --- Problem ---
  Builder& Dim(size_t v) { o_.dim = v; return *this; }
  Builder& K(int v) { o_.k = v; return *this; }
  Builder& ExpectedPoints(uint64_t v) { o_.expected_points = v; return *this; }
  Builder& Seed(uint64_t v) { o_.seed = v; return *this; }

  // --- Resources ---
  Builder& MemoryBytes(size_t v) { o_.resources.memory_bytes = v; return *this; }
  Builder& DiskBytes(size_t v) { o_.resources.disk_bytes = v; return *this; }
  Builder& PageSize(size_t v) { o_.resources.page_size = v; return *this; }
  Builder& PageCodec(PageCodecKind v) { o_.resources.page_codec = v; return *this; }
  Builder& HotTierBytes(size_t v) { o_.resources.hot_tier_bytes = v; return *this; }
  Builder& Fault(const FaultOptions& v) { o_.resources.fault = v; return *this; }
  Builder& IoRetry(const RetryPolicy& v) { o_.resources.io_retry = v; return *this; }
  Builder& CheckpointEveryN(uint64_t v) { o_.resources.checkpoint_every_n = v; return *this; }
  Builder& CheckpointPath(std::string v) { o_.resources.checkpoint_path = std::move(v); return *this; }

  // --- CF tree ---
  Builder& InitialThreshold(double v) { o_.tree.initial_threshold = v; return *this; }
  Builder& Metric(DistanceMetric v) { o_.tree.metric = v; return *this; }
  Builder& ThresholdKind(birch::ThresholdKind v) { o_.tree.threshold_kind = v; return *this; }
  Builder& MergingRefinement(bool v) { o_.tree.merging_refinement = v; return *this; }
  Builder& Cf(CfRepresentation v) { o_.tree.cf = v; return *this; }
  Builder& CfStorage(birch::CfStorage v) { o_.tree.cf_storage = v; return *this; }

  // --- Outliers ---
  Builder& OutlierHandling(bool v) { o_.outliers.handling = v; return *this; }
  Builder& OutlierFraction(double v) { o_.outliers.fraction = v; return *this; }
  Builder& DelaySplit(bool v) { o_.outliers.delay_split = v; return *this; }

  // --- Phases 2-3 ---
  Builder& UsePhase2(bool v) { o_.global_phase.use_phase2 = v; return *this; }
  Builder& Phase2TargetEntries(size_t v) { o_.global_phase.phase2_target_entries = v; return *this; }
  Builder& GlobalAlgorithm(birch::GlobalAlgorithm v) { o_.global_phase.algorithm = v; return *this; }
  Builder& GlobalMetric(DistanceMetric v) { o_.global_phase.metric = v; return *this; }
  Builder& DistanceLimit(double v) { o_.global_phase.distance_limit = v; return *this; }

  // --- Phase 4 ---
  Builder& RefinementPasses(int v) { o_.refine.passes = v; return *this; }
  Builder& RefineOutlierDistance(double v) { o_.refine.outlier_distance = v; return *this; }

  // --- Execution ---
  Builder& NumThreads(int v) { o_.exec.num_threads = v; return *this; }
  Builder& Dealing(DealingMode v) { o_.exec.dealing = v; return *this; }
  Builder& SplitterSeed(uint64_t v) { o_.exec.splitter_seed = v; return *this; }
  Builder& AffinitySample(size_t v) { o_.exec.affinity_sample = v; return *this; }
  Builder& AffinityCenters(size_t v) { o_.exec.affinity_centers = v; return *this; }
  Builder& Kernel(KernelKind v) { o_.exec.kernel = v; return *this; }

  // --- Observability ---
  Builder& SampleEveryMs(uint64_t v) { o_.obs.sample_every_ms = v; return *this; }
  Builder& ObsSeriesCapacity(size_t v) { o_.obs.series_capacity = v; return *this; }

  // --- Serving tier ---
  Builder& PublishEveryN(uint64_t v) { o_.serving.publish_every_n = v; return *this; }
  Builder& PublishK(int v) { o_.serving.publish_k = v; return *this; }

  /// Validates and returns the finished options.
  StatusOr<BirchOptions> Build() const {
    BIRCH_RETURN_IF_ERROR(o_.Validate());
    return o_;
  }

 private:
  BirchOptions o_;
};

}  // namespace birch

#endif  // BIRCH_BIRCH_OPTIONS_H_
