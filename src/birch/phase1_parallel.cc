#include "birch/phase1_parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "birch/kernel/kernel.h"
#include "birch/threshold.h"
#include "exec/channel.h"
#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace birch {

namespace {

/// Quiesce barrier for checkpointing: each worker arrives (after
/// consuming every batch dealt before the sync marker) and parks until
/// released; the dealer waits for all arrivals, snapshots the builders
/// while nothing touches them, then releases. The mutex hand-off also
/// publishes each worker's writes to the dealer and vice versa.
///
/// Shared ownership is load-bearing: the dealer may start the next
/// quiesce before a released worker has fully left Arrive(), so each
/// barrier must be a distinct object that outlives its slowest waiter
/// (a reused stack slot would hand that waiter a recycled, un-released
/// barrier).
struct SyncPoint {
  std::mutex mu;
  std::condition_variable cv;
  const int expected;
  int arrived = 0;
  bool released = false;

  explicit SyncPoint(int n) : expected(n) {}
  void Arrive() {
    std::unique_lock<std::mutex> lock(mu);
    if (++arrived == expected) cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }
  void AwaitAll() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return arrived == expected; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

/// One hand-off unit: `xs` holds batch points flattened dim-major.
/// A batch with `sync` set carries no points — it tells the worker to
/// park at the barrier.
struct PointBatch {
  std::vector<double> xs;
  std::vector<double> ws;
  std::shared_ptr<SyncPoint> sync;
};

/// Completion latch for the shard workers.
struct ShardLatch {
  std::mutex mu;
  std::condition_variable cv;
  int pending;

  explicit ShardLatch(int n) : pending(n) {}
  void Done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

/// Divides the run's total budgets across `shards` builders. Each
/// shard keeps at least the minimum viable slice (4 pages of memory,
/// one page of disk) so a high shard count degrades throughput, never
/// correctness.
Phase1Options ShardOptions(const Phase1Options& total, int shards) {
  Phase1Options o = total;
  const size_t s = static_cast<size_t>(shards);
  if (total.memory_budget_bytes > 0) {
    o.memory_budget_bytes = std::max(total.memory_budget_bytes / s,
                                     4 * total.tree.page_size);
  }
  if (total.disk_budget_bytes > 0) {
    o.disk_budget_bytes =
        std::max(total.disk_budget_bytes / s, total.tree.page_size);
  }
  o.expected_points = total.expected_points / s;
  return o;
}

void MergeStats(const Phase1Stats& in, Phase1Stats* out) {
  out->points_added += in.points_added;
  out->rebuilds += in.rebuilds;
  out->outlier_entries_spilled += in.outlier_entries_spilled;
  out->outlier_entries_reabsorbed += in.outlier_entries_reabsorbed;
  out->points_delay_spilled += in.points_delay_spilled;
  out->reabsorb_cycles += in.reabsorb_cycles;
  out->forced_inserts += in.forced_inserts;
}

uint64_t SplitMix64(uint64_t* s) {
  uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The affinity dealer's top-level splitter: a shallow k-means over
/// the first `sample_target` stream points. Until the sample is full
/// the splitter is unarmed (callers deal round-robin and Observe());
/// arming fits the centers with a seeded init + 4 Lloyd rounds, packs
/// them onto shards greedily by sample mass (heaviest center to the
/// least-loaded shard), and from then on Route() sends each point to
/// the shard owning its nearest center. Everything here is a pure
/// function of (observed prefix, seed): same stream, same seed, same
/// shard count => identical routing, on a fresh run or a resume.
class AffinitySplitter {
 public:
  AffinitySplitter(size_t dim, int shards, uint64_t seed,
                   size_t sample_target, size_t centers_target)
      : dim_(dim),
        shards_(static_cast<size_t>(shards)),
        seed_(seed),
        sample_target_(std::max<size_t>(1, sample_target)),
        centers_target_(
            std::max(std::max<size_t>(1, centers_target), shards_)) {
    sample_.reserve(sample_target_ * dim_);
  }

  bool armed() const { return armed_; }

  /// Warmup: appends one stream point to the sample; fits and arms
  /// once the sample reaches its target size.
  void Observe(std::span<const double> p) {
    sample_.insert(sample_.end(), p.begin(), p.end());
    if (sample_.size() >= sample_target_ * dim_) Fit();
  }

  /// Shard owning the region `p` falls in (armed() only).
  size_t Route(std::span<const double> p, kernel::Workspace* ws) const {
    return shard_of_center_[centers_batch_.NearestSq(p, ws).index];
  }

 private:
  void Fit() {
    const size_t m = sample_.size() / dim_;
    const size_t c = std::min(centers_target_, m);
    // Seeded init: c distinct sample rows via partial Fisher-Yates.
    std::vector<size_t> idx(m);
    for (size_t j = 0; j < m; ++j) idx[j] = j;
    uint64_t rng = seed_;
    std::vector<std::vector<double>> centers(c);
    for (size_t j = 0; j < c; ++j) {
      size_t pick = j + static_cast<size_t>(SplitMix64(&rng) %
                                            static_cast<uint64_t>(m - j));
      std::swap(idx[j], idx[pick]);
      const double* row = sample_.data() + idx[j] * dim_;
      centers[j].assign(row, row + dim_);
    }
    // Shallow Lloyd: a handful of rounds is plenty for a splitter —
    // it only has to carve the space into coherent regions, not
    // converge.
    std::vector<double> counts(c, 0.0);
    kernel::Workspace ws;
    for (int round = 0; round < 4; ++round) {
      centers_batch_.Assign(centers);
      std::fill(counts.begin(), counts.end(), 0.0);
      std::vector<std::vector<double>> sums(
          c, std::vector<double>(dim_, 0.0));
      for (size_t j = 0; j < m; ++j) {
        std::span<const double> row(sample_.data() + j * dim_, dim_);
        size_t best = centers_batch_.NearestSq(row, &ws).index;
        counts[best] += 1.0;
        double* sum = sums[best].data();
        for (size_t k = 0; k < dim_; ++k) sum[k] += row[k];
      }
      for (size_t cc = 0; cc < c; ++cc) {
        if (counts[cc] == 0.0) continue;  // empty: keep the old spot
        for (size_t k = 0; k < dim_; ++k) {
          centers[cc][k] = sums[cc][k] / counts[cc];
        }
      }
    }
    // Greedy LPT pack: heaviest center onto the least-loaded shard, so
    // expected per-shard point mass stays balanced even when cluster
    // sizes are skewed.
    std::vector<size_t> order(c);
    for (size_t j = 0; j < c; ++j) order[j] = j;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return counts[a] > counts[b];
    });
    std::vector<double> load(shards_, 0.0);
    shard_of_center_.assign(c, 0);
    for (size_t j : order) {
      size_t best = 0;
      for (size_t s = 1; s < shards_; ++s) {
        if (load[s] < load[best]) best = s;
      }
      shard_of_center_[j] = best;
      load[best] += counts[j];
    }
    centers_batch_.Assign(centers);
    sample_.clear();
    sample_.shrink_to_fit();
    armed_ = true;
  }

  const size_t dim_;
  const size_t shards_;
  const uint64_t seed_;
  const size_t sample_target_;
  const size_t centers_target_;
  std::vector<double> sample_;  // row-major warmup buffer
  kernel::CenterBatch centers_batch_;
  std::vector<size_t> shard_of_center_;
  bool armed_ = false;
};

void MergeRobustness(const RobustnessStats& in, RobustnessStats* out) {
  out->transient_io_errors += in.transient_io_errors;
  out->io_retries += in.io_retries;
  out->simulated_backoff_us += in.simulated_backoff_us;
  out->checksum_failures += in.checksum_failures;
  out->pages_lost += in.pages_lost;
  out->records_lost += in.records_lost;
  out->degradation_events += in.degradation_events;
  out->fallback_absorbed += in.fallback_absorbed;
  out->fallback_dropped += in.fallback_dropped;
  out->outlier_disk_disabled |= in.outlier_disk_disabled;
}

}  // namespace

StatusOr<ShardedPhase1Result> RunShardedPhase1(
    PointSource* source, const ShardedPhase1Options& options,
    exec::ThreadPool* pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("sharded Phase 1 needs a thread pool");
  }
  const size_t dim = options.phase1.tree.dim;
  if (source->dim() != dim) {
    return Status::InvalidArgument("source dimension mismatch");
  }
  const int shards =
      std::clamp(options.num_shards, 1, std::max(1, pool->size()));
  const size_t batch_points = std::max<size_t>(1, options.batch_points);

  OBS_GAUGE_SET("exec/shards", shards);

  // --- 1. Scan: deal points round-robin to one builder per shard. ---
  std::vector<std::unique_ptr<Phase1Builder>> builders;
  std::vector<std::unique_ptr<exec::Channel<PointBatch>>> channels;
  std::vector<Status> shard_status(static_cast<size_t>(shards));
  builders.reserve(static_cast<size_t>(shards));
  channels.reserve(static_cast<size_t>(shards));
  const Phase1Options shard_opts = ShardOptions(options.phase1, shards);
  if (options.resume != nullptr &&
      options.resume->size() != static_cast<size_t>(shards)) {
    return Status::InvalidArgument(
        "sharded checkpoint holds " + std::to_string(options.resume->size()) +
        " shards but this run would use " + std::to_string(shards));
  }
  for (int s = 0; s < shards; ++s) {
    if (options.resume != nullptr) {
      auto b_or = Phase1Builder::Thaw(shard_opts,
                                      (*options.resume)[static_cast<size_t>(s)]);
      if (!b_or.ok()) return b_or.status();
      builders.push_back(std::move(b_or).ValueOrDie());
    } else {
      builders.push_back(std::make_unique<Phase1Builder>(shard_opts));
    }
    channels.push_back(
        std::make_unique<exec::Channel<PointBatch>>(options.channel_capacity));
  }

  ShardLatch latch(shards);
  for (int s = 0; s < shards; ++s) {
    Phase1Builder* builder = builders[static_cast<size_t>(s)].get();
    exec::Channel<PointBatch>* ch = channels[static_cast<size_t>(s)].get();
    Status* st = &shard_status[static_cast<size_t>(s)];
    pool->Submit([builder, ch, st, &latch] {
      obs::SpanScope span("phase1/shard");
      PointBatch batch;
      // After a failure keep draining: a stalled consumer would wedge
      // the reader on a full channel.
      while (ch->Pop(&batch)) {
        if (batch.sync != nullptr) {
          // Checkpoint barrier. Arrive even after a failure — the
          // dealer is waiting on every shard.
          batch.sync->Arrive();
          continue;
        }
        if (!st->ok()) continue;
        // Whole-batch ingest: arithmetic-identical to a per-point Add
        // loop, one validated call per hand-off unit.
        *st = builder->AddBatch(batch.xs, batch.ws.size(), batch.ws);
      }
      if (st->ok()) *st = builder->Finish();
      latch.Done();
    });
  }

  // Affinity dealing: the splitter routes once armed; during warmup
  // (and under kRoundRobin, or with one shard where routing is moot)
  // point i goes to shard i mod S.
  std::unique_ptr<AffinitySplitter> splitter;
  if (options.dealing == DealingMode::kAffinity && shards > 1) {
    const size_t sample_target =
        options.affinity_sample > 0
            ? options.affinity_sample
            : std::max<size_t>(1024, 256 * static_cast<size_t>(shards));
    const size_t centers_target =
        options.affinity_centers > 0
            ? options.affinity_centers
            : std::min<size_t>(4 * static_cast<size_t>(shards), 64);
    splitter = std::make_unique<AffinitySplitter>(
        dim, shards, options.splitter_seed, sample_target, centers_target);
  }

  Status deal_status;
  {
    TRACE_SPAN("phase1/scan");
    std::vector<PointBatch> pending(static_cast<size_t>(shards));
    kernel::Workspace route_ws;
    std::vector<double> p(dim);
    double w = 1.0;
    uint64_t i = 0;
    // Resume: skip what the checkpointed run already consumed; dealing
    // continues at the original index — and the affinity splitter is
    // re-fitted from the skipped prefix — so shard assignment matches
    // the uninterrupted run point for point.
    while (i < options.resume_skip_points && source->Next(p, &w)) {
      if (splitter != nullptr && !splitter->armed()) splitter->Observe(p);
      ++i;
    }
    if (i < options.resume_skip_points) {
      deal_status = Status::InvalidArgument(
          "source ended before the checkpoint's resume offset (" +
          std::to_string(i) + " < " +
          std::to_string(options.resume_skip_points) +
          "); pass the same stream the checkpointed run consumed");
    }
    while (deal_status.ok() && source->Next(p, &w)) {
      size_t s;
      if (splitter != nullptr && splitter->armed()) {
        s = splitter->Route(p, &route_ws);
      } else {
        s = static_cast<size_t>(i % static_cast<uint64_t>(shards));
        // The point that completes the sample is still dealt round-
        // robin; affinity routing starts at the next one.
        if (splitter != nullptr) splitter->Observe(p);
      }
      PointBatch& b = pending[s];
      b.xs.insert(b.xs.end(), p.begin(), p.end());
      b.ws.push_back(w);
      if (b.ws.size() >= batch_points) {
        channels[s]->Push(std::move(b));
        b = PointBatch{};
      }
      ++i;
      const bool do_checkpoint = options.checkpoint_every_n > 0 &&
                                 options.on_checkpoint &&
                                 i % options.checkpoint_every_n == 0;
      const bool do_publish = options.publish_every_n > 0 &&
                              options.on_publish &&
                              i % options.publish_every_n == 0;
      if (do_checkpoint || do_publish) {
        // Quiesce: flush partial batches so every dealt point is in its
        // shard's channel, then park all workers at a barrier. FIFO
        // channels guarantee each worker consumed everything before the
        // marker by the time it arrives.
        TRACE_SPAN("phase1/quiesce");
        for (int q = 0; q < shards; ++q) {
          PointBatch& pb = pending[static_cast<size_t>(q)];
          if (!pb.ws.empty()) {
            channels[static_cast<size_t>(q)]->Push(std::move(pb));
            pb = PointBatch{};
          }
        }
        auto sync = std::make_shared<SyncPoint>(shards);
        for (int q = 0; q < shards; ++q) {
          PointBatch marker;
          marker.sync = sync;
          channels[static_cast<size_t>(q)]->Push(std::move(marker));
        }
        sync->AwaitAll();
        // Workers are parked; their builders and statuses are safe to
        // read. Don't checkpoint or publish from a failed run.
        for (const Status& st : shard_status) {
          if (!st.ok()) deal_status = st;
        }
        if (deal_status.ok() && do_checkpoint) {
          deal_status = options.on_checkpoint(i, &builders);
        }
        if (deal_status.ok() && do_publish) {
          deal_status = options.on_publish(i, &builders);
        }
        sync->Release();
      }
    }
    for (int s = 0; s < shards; ++s) {
      if (!pending[static_cast<size_t>(s)].ws.empty()) {
        channels[static_cast<size_t>(s)]->Push(
            std::move(pending[static_cast<size_t>(s)]));
      }
      channels[static_cast<size_t>(s)]->Close();
    }
    latch.Wait();
  }
  BIRCH_RETURN_IF_ERROR(deal_status);
  for (const Status& st : shard_status) BIRCH_RETURN_IF_ERROR(st);

  ShardedPhase1Result result;
  for (int s = 0; s < shards; ++s) {
    const Phase1Builder& b = *builders[static_cast<size_t>(s)];
    MergeStats(b.stats(), &result.stats);
    MergeRobustness(b.robustness(), &result.robustness);
    result.disk_pages_written += b.disk().io_stats().pages_written;
    result.disk_pages_read += b.disk().io_stats().pages_read;
    result.disk_raw_bytes += b.disk().io_stats().raw_bytes_written;
    result.disk_stored_bytes += b.disk().io_stats().stored_bytes_written;
    result.disk_hot_hits += b.disk().io_stats().hot_hits;
    result.disk_hot_misses += b.disk().io_stats().hot_misses;
    result.disk_hot_demotions += b.disk().io_stats().hot_demotions;
    result.peak_memory_bytes += b.memory().peak();
    if (obs::Enabled()) {
      obs::Registry::Default()
          .GetGauge("exec/shard" + std::to_string(s) + "/points")
          .Set(static_cast<double>(b.stats().points_added));
    }
  }

  // --- 2. Pairwise fold of the shard trees (CF additivity makes the
  // merge exact at subcluster granularity). Each round merges disjoint
  // pairs in parallel; the destination is the pair member with the
  // larger threshold so absorbed entries never face a tighter bound
  // than the one they were built under. ---
  {
    TRACE_SPAN("phase1/merge_shards");
    std::vector<CfTree*> active;
    active.reserve(static_cast<size_t>(shards));
    for (auto& b : builders) active.push_back(b->mutable_tree());
    while (active.size() > 1) {
      const size_t pairs = active.size() / 2;
      std::vector<CfTree*> next(pairs + active.size() % 2);
      exec::ParallelFor(
          pool, pairs,
          [&](size_t begin, size_t end, size_t) {
            for (size_t j = begin; j < end; ++j) {
              CfTree* a = active[2 * j];
              CfTree* b = active[2 * j + 1];
              CfTree* dst = b->threshold() > a->threshold() ? b : a;
              const CfTree* src = dst == a ? b : a;
              dst->AbsorbTree(*src);
              next[j] = dst;
            }
          },
          /*min_per_chunk=*/1);
      if (active.size() % 2 == 1) next.back() = active.back();
      active = std::move(next);
    }

    // --- 3. Re-home the fold into a tree charged against the *total*
    // memory budget (the per-shard trackers each only carry 1/S). ---
    result.mem =
        std::make_unique<MemoryTracker>(options.phase1.memory_budget_bytes);
    CfTreeOptions merged_opts = options.phase1.tree;
    merged_opts.threshold = active[0]->threshold();
    result.tree = std::make_unique<CfTree>(merged_opts, result.mem.get());
    result.tree->AbsorbTree(*active[0]);
  }

  // --- 4. Threshold-consistency reabsorb pass. ---
  TRACE_SPAN("phase1/merge_reabsorb");
  std::vector<CfVector> shed;
  if (result.tree->over_budget()) {
    ThresholdHeuristic heuristic(dim, result.stats.points_added);
    int guard = 0;
    do {
      double t_next =
          heuristic.SuggestNext(*result.tree, result.stats.points_added);
      double outlier_n = 0.0;
      if (options.phase1.outlier_handling &&
          result.tree->leaf_entry_count() > 0) {
        double avg = result.tree->TreeSummary().n() /
                     static_cast<double>(result.tree->leaf_entry_count());
        outlier_n = options.phase1.outlier_fraction * avg;
      }
      result.tree->Rebuild(t_next, outlier_n, &shed);
      ++result.stats.rebuilds;
      OBS_COUNTER_INC("phase1/rebuilds");
    } while (result.tree->over_budget() && ++guard < 16);
    if (result.tree->over_budget()) {
      return Status::OutOfMemory(
          "memory budget unattainable after merging shard trees");
    }
  }
  // Entries that were outliers within one shard (or shed just above)
  // get one absorb-only retry against the union; a genuine outlier
  // must still not re-enter the tree as a fresh entry (Sec. 5.1.4).
  auto reabsorb = [&](const CfVector& e) {
    if (result.tree->InsertEntry(e, InsertMode::kAbsorbOnly) !=
        InsertOutcome::kRejected) {
      ++result.stats.outlier_entries_reabsorbed;
      OBS_COUNTER_INC("phase1/outliers_reabsorbed");
    } else {
      result.final_outliers.push_back(e);
    }
  };
  for (auto& b : builders) {
    for (const CfVector& e : b->final_outliers()) reabsorb(e);
  }
  for (const CfVector& e : shed) reabsorb(e);

  builders.clear();  // release the shard trees and trackers
  result.stats.final_threshold = result.tree->threshold();
  return result;
}

}  // namespace birch
