#include "birch/phase1_parallel.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "birch/threshold.h"
#include "exec/channel.h"
#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace birch {

namespace {

/// Quiesce barrier for checkpointing: each worker arrives (after
/// consuming every batch dealt before the sync marker) and parks until
/// released; the dealer waits for all arrivals, snapshots the builders
/// while nothing touches them, then releases. The mutex hand-off also
/// publishes each worker's writes to the dealer and vice versa.
///
/// Shared ownership is load-bearing: the dealer may start the next
/// quiesce before a released worker has fully left Arrive(), so each
/// barrier must be a distinct object that outlives its slowest waiter
/// (a reused stack slot would hand that waiter a recycled, un-released
/// barrier).
struct SyncPoint {
  std::mutex mu;
  std::condition_variable cv;
  const int expected;
  int arrived = 0;
  bool released = false;

  explicit SyncPoint(int n) : expected(n) {}
  void Arrive() {
    std::unique_lock<std::mutex> lock(mu);
    if (++arrived == expected) cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }
  void AwaitAll() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return arrived == expected; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

/// One hand-off unit: `xs` holds batch points flattened dim-major.
/// A batch with `sync` set carries no points — it tells the worker to
/// park at the barrier.
struct PointBatch {
  std::vector<double> xs;
  std::vector<double> ws;
  std::shared_ptr<SyncPoint> sync;
};

/// Completion latch for the shard workers.
struct ShardLatch {
  std::mutex mu;
  std::condition_variable cv;
  int pending;

  explicit ShardLatch(int n) : pending(n) {}
  void Done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

/// Divides the run's total budgets across `shards` builders. Each
/// shard keeps at least the minimum viable slice (4 pages of memory,
/// one page of disk) so a high shard count degrades throughput, never
/// correctness.
Phase1Options ShardOptions(const Phase1Options& total, int shards) {
  Phase1Options o = total;
  const size_t s = static_cast<size_t>(shards);
  if (total.memory_budget_bytes > 0) {
    o.memory_budget_bytes = std::max(total.memory_budget_bytes / s,
                                     4 * total.tree.page_size);
  }
  if (total.disk_budget_bytes > 0) {
    o.disk_budget_bytes =
        std::max(total.disk_budget_bytes / s, total.tree.page_size);
  }
  o.expected_points = total.expected_points / s;
  return o;
}

void MergeStats(const Phase1Stats& in, Phase1Stats* out) {
  out->points_added += in.points_added;
  out->rebuilds += in.rebuilds;
  out->outlier_entries_spilled += in.outlier_entries_spilled;
  out->outlier_entries_reabsorbed += in.outlier_entries_reabsorbed;
  out->points_delay_spilled += in.points_delay_spilled;
  out->reabsorb_cycles += in.reabsorb_cycles;
  out->forced_inserts += in.forced_inserts;
}

void MergeRobustness(const RobustnessStats& in, RobustnessStats* out) {
  out->transient_io_errors += in.transient_io_errors;
  out->io_retries += in.io_retries;
  out->simulated_backoff_us += in.simulated_backoff_us;
  out->checksum_failures += in.checksum_failures;
  out->pages_lost += in.pages_lost;
  out->records_lost += in.records_lost;
  out->degradation_events += in.degradation_events;
  out->fallback_absorbed += in.fallback_absorbed;
  out->fallback_dropped += in.fallback_dropped;
  out->outlier_disk_disabled |= in.outlier_disk_disabled;
}

}  // namespace

StatusOr<ShardedPhase1Result> RunShardedPhase1(
    PointSource* source, const ShardedPhase1Options& options,
    exec::ThreadPool* pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("sharded Phase 1 needs a thread pool");
  }
  const size_t dim = options.phase1.tree.dim;
  if (source->dim() != dim) {
    return Status::InvalidArgument("source dimension mismatch");
  }
  const int shards =
      std::clamp(options.num_shards, 1, std::max(1, pool->size()));
  const size_t batch_points = std::max<size_t>(1, options.batch_points);

  OBS_GAUGE_SET("exec/shards", shards);

  // --- 1. Scan: deal points round-robin to one builder per shard. ---
  std::vector<std::unique_ptr<Phase1Builder>> builders;
  std::vector<std::unique_ptr<exec::Channel<PointBatch>>> channels;
  std::vector<Status> shard_status(static_cast<size_t>(shards));
  builders.reserve(static_cast<size_t>(shards));
  channels.reserve(static_cast<size_t>(shards));
  const Phase1Options shard_opts = ShardOptions(options.phase1, shards);
  if (options.resume != nullptr &&
      options.resume->size() != static_cast<size_t>(shards)) {
    return Status::InvalidArgument(
        "sharded checkpoint holds " + std::to_string(options.resume->size()) +
        " shards but this run would use " + std::to_string(shards));
  }
  for (int s = 0; s < shards; ++s) {
    if (options.resume != nullptr) {
      auto b_or = Phase1Builder::Thaw(shard_opts,
                                      (*options.resume)[static_cast<size_t>(s)]);
      if (!b_or.ok()) return b_or.status();
      builders.push_back(std::move(b_or).ValueOrDie());
    } else {
      builders.push_back(std::make_unique<Phase1Builder>(shard_opts));
    }
    channels.push_back(
        std::make_unique<exec::Channel<PointBatch>>(options.channel_capacity));
  }

  ShardLatch latch(shards);
  for (int s = 0; s < shards; ++s) {
    Phase1Builder* builder = builders[static_cast<size_t>(s)].get();
    exec::Channel<PointBatch>* ch = channels[static_cast<size_t>(s)].get();
    Status* st = &shard_status[static_cast<size_t>(s)];
    pool->Submit([builder, ch, st, dim, &latch] {
      obs::SpanScope span("phase1/shard");
      PointBatch batch;
      // After a failure keep draining: a stalled consumer would wedge
      // the reader on a full channel.
      while (ch->Pop(&batch)) {
        if (batch.sync != nullptr) {
          // Checkpoint barrier. Arrive even after a failure — the
          // dealer is waiting on every shard.
          batch.sync->Arrive();
          continue;
        }
        if (!st->ok()) continue;
        const size_t n = batch.ws.size();
        for (size_t j = 0; j < n; ++j) {
          *st = builder->Add(
              std::span<const double>(batch.xs.data() + j * dim, dim),
              batch.ws[j]);
          if (!st->ok()) break;
        }
      }
      if (st->ok()) *st = builder->Finish();
      latch.Done();
    });
  }

  Status deal_status;
  {
    TRACE_SPAN("phase1/scan");
    std::vector<PointBatch> pending(static_cast<size_t>(shards));
    std::vector<double> p(dim);
    double w = 1.0;
    uint64_t i = 0;
    // Resume: skip what the checkpointed run already consumed; dealing
    // continues at the original index so i mod S matches the
    // uninterrupted run point for point.
    while (i < options.resume_skip_points && source->Next(p, &w)) ++i;
    if (i < options.resume_skip_points) {
      deal_status = Status::InvalidArgument(
          "source ended before the checkpoint's resume offset (" +
          std::to_string(i) + " < " +
          std::to_string(options.resume_skip_points) +
          "); pass the same stream the checkpointed run consumed");
    }
    while (deal_status.ok() && source->Next(p, &w)) {
      size_t s = static_cast<size_t>(i % static_cast<uint64_t>(shards));
      PointBatch& b = pending[s];
      b.xs.insert(b.xs.end(), p.begin(), p.end());
      b.ws.push_back(w);
      if (b.ws.size() >= batch_points) {
        channels[s]->Push(std::move(b));
        b = PointBatch{};
      }
      ++i;
      const bool do_checkpoint = options.checkpoint_every_n > 0 &&
                                 options.on_checkpoint &&
                                 i % options.checkpoint_every_n == 0;
      const bool do_publish = options.publish_every_n > 0 &&
                              options.on_publish &&
                              i % options.publish_every_n == 0;
      if (do_checkpoint || do_publish) {
        // Quiesce: flush partial batches so every dealt point is in its
        // shard's channel, then park all workers at a barrier. FIFO
        // channels guarantee each worker consumed everything before the
        // marker by the time it arrives.
        TRACE_SPAN("phase1/quiesce");
        for (int q = 0; q < shards; ++q) {
          PointBatch& pb = pending[static_cast<size_t>(q)];
          if (!pb.ws.empty()) {
            channels[static_cast<size_t>(q)]->Push(std::move(pb));
            pb = PointBatch{};
          }
        }
        auto sync = std::make_shared<SyncPoint>(shards);
        for (int q = 0; q < shards; ++q) {
          PointBatch marker;
          marker.sync = sync;
          channels[static_cast<size_t>(q)]->Push(std::move(marker));
        }
        sync->AwaitAll();
        // Workers are parked; their builders and statuses are safe to
        // read. Don't checkpoint or publish from a failed run.
        for (const Status& st : shard_status) {
          if (!st.ok()) deal_status = st;
        }
        if (deal_status.ok() && do_checkpoint) {
          deal_status = options.on_checkpoint(i, &builders);
        }
        if (deal_status.ok() && do_publish) {
          deal_status = options.on_publish(i, &builders);
        }
        sync->Release();
      }
    }
    for (int s = 0; s < shards; ++s) {
      if (!pending[static_cast<size_t>(s)].ws.empty()) {
        channels[static_cast<size_t>(s)]->Push(
            std::move(pending[static_cast<size_t>(s)]));
      }
      channels[static_cast<size_t>(s)]->Close();
    }
    latch.Wait();
  }
  BIRCH_RETURN_IF_ERROR(deal_status);
  for (const Status& st : shard_status) BIRCH_RETURN_IF_ERROR(st);

  ShardedPhase1Result result;
  for (int s = 0; s < shards; ++s) {
    const Phase1Builder& b = *builders[static_cast<size_t>(s)];
    MergeStats(b.stats(), &result.stats);
    MergeRobustness(b.robustness(), &result.robustness);
    result.disk_pages_written += b.disk().io_stats().pages_written;
    result.disk_pages_read += b.disk().io_stats().pages_read;
    result.peak_memory_bytes += b.memory().peak();
    if (obs::Enabled()) {
      obs::Registry::Default()
          .GetGauge("exec/shard" + std::to_string(s) + "/points")
          .Set(static_cast<double>(b.stats().points_added));
    }
  }

  // --- 2. Pairwise fold of the shard trees (CF additivity makes the
  // merge exact at subcluster granularity). Each round merges disjoint
  // pairs in parallel; the destination is the pair member with the
  // larger threshold so absorbed entries never face a tighter bound
  // than the one they were built under. ---
  {
    TRACE_SPAN("phase1/merge_shards");
    std::vector<CfTree*> active;
    active.reserve(static_cast<size_t>(shards));
    for (auto& b : builders) active.push_back(b->mutable_tree());
    while (active.size() > 1) {
      const size_t pairs = active.size() / 2;
      std::vector<CfTree*> next(pairs + active.size() % 2);
      exec::ParallelFor(
          pool, pairs,
          [&](size_t begin, size_t end, size_t) {
            for (size_t j = begin; j < end; ++j) {
              CfTree* a = active[2 * j];
              CfTree* b = active[2 * j + 1];
              CfTree* dst = b->threshold() > a->threshold() ? b : a;
              const CfTree* src = dst == a ? b : a;
              dst->AbsorbTree(*src);
              next[j] = dst;
            }
          },
          /*min_per_chunk=*/1);
      if (active.size() % 2 == 1) next.back() = active.back();
      active = std::move(next);
    }

    // --- 3. Re-home the fold into a tree charged against the *total*
    // memory budget (the per-shard trackers each only carry 1/S). ---
    result.mem =
        std::make_unique<MemoryTracker>(options.phase1.memory_budget_bytes);
    CfTreeOptions merged_opts = options.phase1.tree;
    merged_opts.threshold = active[0]->threshold();
    result.tree = std::make_unique<CfTree>(merged_opts, result.mem.get());
    result.tree->AbsorbTree(*active[0]);
  }

  // --- 4. Threshold-consistency reabsorb pass. ---
  TRACE_SPAN("phase1/merge_reabsorb");
  std::vector<CfVector> shed;
  if (result.tree->over_budget()) {
    ThresholdHeuristic heuristic(dim, result.stats.points_added);
    int guard = 0;
    do {
      double t_next =
          heuristic.SuggestNext(*result.tree, result.stats.points_added);
      double outlier_n = 0.0;
      if (options.phase1.outlier_handling &&
          result.tree->leaf_entry_count() > 0) {
        double avg = result.tree->TreeSummary().n() /
                     static_cast<double>(result.tree->leaf_entry_count());
        outlier_n = options.phase1.outlier_fraction * avg;
      }
      result.tree->Rebuild(t_next, outlier_n, &shed);
      ++result.stats.rebuilds;
      OBS_COUNTER_INC("phase1/rebuilds");
    } while (result.tree->over_budget() && ++guard < 16);
    if (result.tree->over_budget()) {
      return Status::OutOfMemory(
          "memory budget unattainable after merging shard trees");
    }
  }
  // Entries that were outliers within one shard (or shed just above)
  // get one absorb-only retry against the union; a genuine outlier
  // must still not re-enter the tree as a fresh entry (Sec. 5.1.4).
  auto reabsorb = [&](const CfVector& e) {
    if (result.tree->InsertEntry(e, InsertMode::kAbsorbOnly) !=
        InsertOutcome::kRejected) {
      ++result.stats.outlier_entries_reabsorbed;
      OBS_COUNTER_INC("phase1/outliers_reabsorbed");
    } else {
      result.final_outliers.push_back(e);
    }
  };
  for (auto& b : builders) {
    for (const CfVector& e : b->final_outliers()) reabsorb(e);
  }
  for (const CfVector& e : shed) reabsorb(e);

  builders.clear();  // release the shard trees and trackers
  result.stats.final_threshold = result.tree->threshold();
  return result;
}

}  // namespace birch
