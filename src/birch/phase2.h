// Phase 2 (optional): condense the CF tree into a smaller one so the
// global clustering algorithm of Phase 3 — whose cost is quadratic in
// the number of leaf entries — gets an input in its sweet-spot range.
// Works by rebuilding with progressively larger thresholds, optionally
// shedding low-density entries as outliers, until the leaf-entry count
// falls to the target.
#ifndef BIRCH_BIRCH_PHASE2_H_
#define BIRCH_BIRCH_PHASE2_H_

#include <vector>

#include "birch/cf_tree.h"
#include "util/status.h"

namespace birch {

struct Phase2Options {
  /// Condense until leaf_entry_count() <= this.
  size_t target_leaf_entries = 1000;
  /// Entries lighter than this weight are shed as outliers (0 = keep).
  double outlier_weight_threshold = 0.0;
  /// Safety cap on condensation rounds.
  int max_rounds = 64;
};

struct Phase2Stats {
  int rounds = 0;
  double final_threshold = 0.0;
  size_t final_leaf_entries = 0;
  size_t outliers_shed = 0;
};

/// Rebuilds `tree` until its leaf-entry count reaches the target.
/// Outlier entries (if enabled) are appended to `*outliers`.
Status CondenseTree(CfTree* tree, const Phase2Options& options,
                    std::vector<CfVector>* outliers, Phase2Stats* stats);

}  // namespace birch

#endif  // BIRCH_BIRCH_PHASE2_H_
