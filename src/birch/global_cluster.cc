#include "birch/global_cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math.h"
#include "util/random.h"

namespace birch {

std::vector<std::vector<double>> GlobalClustering::Centroids() const {
  std::vector<std::vector<double>> out;
  out.reserve(clusters.size());
  for (const auto& c : clusters) out.push_back(c.Centroid());
  return out;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Agglomerative HC over CFs with a cached-nearest-neighbour merge loop
/// (O(m^2) typical). Stops at k clusters, or when the cheapest merge
/// exceeds distance_limit (k == 0).
GlobalClustering HierarchicalCluster(std::span<const CfVector> entries,
                                     const GlobalClusterOptions& options,
                                     int k) {
  const size_t m = entries.size();
  std::vector<CfVector> cfs(entries.begin(), entries.end());
  std::vector<bool> active(m, true);
  std::vector<std::vector<int>> members(m);
  for (size_t i = 0; i < m; ++i) members[i] = {static_cast<int>(i)};

  // Nearest active neighbour per active cluster. The batch kernel
  // keeps an SoA mirror of `cfs` (updated after each merge) and a
  // uint8_t activity mask; the masked one-pass scan visits candidates
  // in the same order with the same first-wins comparison as the
  // scalar loop, so both paths pick identical neighbours.
  const bool use_batch = IsBatchKernel(options.kernel);
  kernel::CfBatch batch;
  std::vector<uint8_t> amask;
  if (use_batch) {
    batch.Init(cfs.empty() ? 0 : cfs[0].dim(), m,
               kernel::CfBatch::Needs::For(
                   options.metric, cfs.empty() ? CfRepresentation::kClassic
                                               : cfs[0].rep()));
    batch.Assign(cfs);
    amask.assign(m, 1);
  }
  std::vector<size_t> nn(m, 0);
  std::vector<double> nn_dist(m, kInf);
  auto recompute_nn = [&](size_t i, kernel::Workspace* ws) {
    if (use_batch) {
      kernel::CfQuery query;
      query.Prepare(cfs[i], options.metric, &ws->query_centroid);
      kernel::ScanResult r = kernel::NearestEntry(
          batch, query, options.metric, ws, amask.data(), /*exclude=*/i);
      nn_dist[i] = r.distance;
      if (r.index != static_cast<size_t>(-1)) nn[i] = r.index;
      return;
    }
    nn_dist[i] = kInf;
    for (size_t j = 0; j < m; ++j) {
      if (j == i || !active[j]) continue;
      double d = Distance(options.metric, cfs[i], cfs[j]);
      if (d < nn_dist[i]) {
        nn_dist[i] = d;
        nn[i] = j;
      }
    }
  };
  // Each slot only writes its own nn/nn_dist entry, so the initial
  // O(m^2) scan parallelizes without synchronization.
  exec::ParallelFor(
      options.pool, m,
      [&](size_t begin, size_t end, size_t) {
        kernel::Workspace ws;
        for (size_t i = begin; i < end; ++i) recompute_nn(i, &ws);
      },
      /*min_per_chunk=*/32);
  kernel::Workspace main_ws;

  size_t live = m;
  while (live > static_cast<size_t>(k)) {
    // Cheapest pending merge.
    size_t a = static_cast<size_t>(-1);
    double best = kInf;
    for (size_t i = 0; i < m; ++i) {
      if (active[i] && nn_dist[i] < best) {
        best = nn_dist[i];
        a = i;
      }
    }
    if (a == static_cast<size_t>(-1)) break;  // everything merged
    if (k == 0 && options.distance_limit > 0.0 &&
        best > options.distance_limit) {
      break;
    }
    size_t b = nn[a];
    // Merge b into a.
    cfs[a].Add(cfs[b]);
    active[b] = false;
    if (use_batch) {
      batch.Update(a, cfs[a]);
      amask[b] = 0;
    }
    members[a].insert(members[a].end(), members[b].begin(),
                      members[b].end());
    members[b].clear();
    --live;
    if (live <= 1) break;
    // Refresh neighbours: a changed, b vanished. Slot j only touches
    // its own cached neighbour, so the refresh sweep parallelizes too.
    recompute_nn(a, &main_ws);
    exec::ParallelFor(
        options.pool, m,
        [&](size_t begin, size_t end, size_t) {
          kernel::Workspace ws;
          for (size_t j = begin; j < end; ++j) {
            if (!active[j] || j == a) continue;
            if (nn[j] == b || nn[j] == a) {
              recompute_nn(j, &ws);
            } else {
              double d = Distance(options.metric, cfs[j], cfs[a]);
              if (d < nn_dist[j]) {
                nn_dist[j] = d;
                nn[j] = a;
              }
            }
          }
        },
        /*min_per_chunk=*/256);
  }

  GlobalClustering result;
  result.assignment.assign(m, -1);
  for (size_t i = 0; i < m; ++i) {
    if (!active[i]) continue;
    int cluster_id = static_cast<int>(result.clusters.size());
    result.clusters.push_back(cfs[i]);
    for (int orig : members[i]) result.assignment[orig] = cluster_id;
  }
  return result;
}

/// Squared Euclidean distance between a CF's centroid and a point.
double CentroidSqDist(const CfVector& cf, std::span<const double> c) {
  double s = 0.0;
  std::span<const double> v = cf.raw_vec();
  if (cf.rep() == CfRepresentation::kBetula) {
    // The stored vector IS the centroid.
    for (size_t t = 0; t < cf.dim(); ++t) {
      double d = v[t] - c[t];
      s += d * d;
    }
    return s;
  }
  for (size_t t = 0; t < cf.dim(); ++t) {
    double d = v[t] / cf.n() - c[t];
    s += d * d;
  }
  return s;
}

/// Weighted k-means++ seeding over CF centroids (weights = N).
std::vector<std::vector<double>> KMeansPlusPlusSeeds(
    std::span<const CfVector> entries, int k, Rng* rng) {
  const size_t m = entries.size();
  std::vector<std::vector<double>> seeds;
  seeds.reserve(static_cast<size_t>(k));

  // First seed: weight-proportional draw.
  double total_w = 0.0;
  for (const auto& e : entries) total_w += e.n();
  double r = rng->NextDouble() * total_w;
  size_t first = 0;
  for (size_t i = 0; i < m; ++i) {
    r -= entries[i].n();
    if (r <= 0.0) {
      first = i;
      break;
    }
  }
  seeds.push_back(entries[first].Centroid());

  std::vector<double> d2(m, kInf);
  while (seeds.size() < static_cast<size_t>(k)) {
    const auto& latest = seeds.back();
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      d2[i] = std::min(d2[i], CentroidSqDist(entries[i], latest));
      sum += entries[i].n() * d2[i];
    }
    if (sum <= 0.0) {
      // All mass sits on existing seeds; duplicate any centroid.
      seeds.push_back(entries[rng->UniformInt(m)].Centroid());
      continue;
    }
    double pick = rng->NextDouble() * sum;
    size_t chosen = m - 1;
    for (size_t i = 0; i < m; ++i) {
      pick -= entries[i].n() * d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    seeds.push_back(entries[chosen].Centroid());
  }
  return seeds;
}

GlobalClustering KMeansCluster(std::span<const CfVector> entries,
                               const GlobalClusterOptions& options, int k) {
  const size_t m = entries.size();
  const size_t dim = entries[0].dim();
  Rng rng(options.seed);
  std::vector<std::vector<double>> centers =
      KMeansPlusPlusSeeds(entries, k, &rng);

  std::vector<int> assign(m, -1);
  const bool use_batch = IsBatchKernel(options.kernel);
  const size_t num_chunks = exec::ParallelForNumChunks(options.pool, m,
                                                       /*min_per_chunk=*/64);
  kernel::CenterBatch cbatch;
  for (int iter = 0; iter < options.kmeans_max_iterations; ++iter) {
    // Assignment sweep: each point is independent; chunks report
    // whether they changed any label. The batch path scans an SoA
    // block over the centers; per-dimension arithmetic and first-wins
    // argmin order match CentroidSqDist exactly.
    if (use_batch) cbatch.Assign(centers);
    std::vector<uint8_t> chunk_changed(num_chunks, 0);
    exec::ParallelFor(
        options.pool, m,
        [&](size_t begin, size_t end, size_t chunk) {
          bool local_changed = false;
          kernel::Workspace ws;
          std::vector<double> centroid(dim);
          for (size_t i = begin; i < end; ++i) {
            int best = 0;
            if (use_batch) {
              // Bitwise identical to CentroidSqDist's centroid for
              // either representation.
              entries[i].CentroidInto(&centroid);
              kernel::ScanResult r = cbatch.NearestSq(centroid, &ws);
              if (r.index != static_cast<size_t>(-1)) {
                best = static_cast<int>(r.index);
              }
            } else {
              double best_d = kInf;
              for (int c = 0; c < k; ++c) {
                double d = CentroidSqDist(entries[i], centers[c]);
                if (d < best_d) {
                  best_d = d;
                  best = c;
                }
              }
            }
            if (assign[i] != best) {
              assign[i] = best;
              local_changed = true;
            }
          }
          if (local_changed) chunk_changed[chunk] = 1;
        },
        /*min_per_chunk=*/64);
    bool changed =
        std::any_of(chunk_changed.begin(), chunk_changed.end(),
                    [](uint8_t c) { return c != 0; });
    if (!changed && iter > 0) break;

    // Weighted centroid update. The single-chunk path accumulates
    // directly (the exact serial arithmetic); the chunked path folds
    // per-chunk partial CFs in chunk order, which is deterministic for
    // a fixed chunk count.
    std::vector<CfVector> sums(static_cast<size_t>(k), CfVector(dim));
    if (num_chunks <= 1) {
      for (size_t i = 0; i < m; ++i) {
        sums[static_cast<size_t>(assign[i])].Add(entries[i]);
      }
    } else {
      std::vector<std::vector<CfVector>> partial(num_chunks);
      exec::ParallelFor(
          options.pool, m,
          [&](size_t begin, size_t end, size_t chunk) {
            auto& local = partial[chunk];
            local.assign(static_cast<size_t>(k), CfVector(dim));
            for (size_t i = begin; i < end; ++i) {
              local[static_cast<size_t>(assign[i])].Add(entries[i]);
            }
          },
          /*min_per_chunk=*/64);
      for (const auto& local : partial) {
        for (int c = 0; c < k; ++c) {
          sums[static_cast<size_t>(c)].Add(local[static_cast<size_t>(c)]);
        }
      }
    }
    for (int c = 0; c < k; ++c) {
      if (sums[static_cast<size_t>(c)].empty()) {
        // Re-seed an empty cluster at the entry farthest from its
        // current center.
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < m; ++i) {
          double d = CentroidSqDist(
              entries[i], centers[static_cast<size_t>(assign[i])]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        centers[static_cast<size_t>(c)] = entries[far].Centroid();
        continue;
      }
      sums[static_cast<size_t>(c)].CentroidInto(
          &centers[static_cast<size_t>(c)]);
    }
  }

  GlobalClustering result;
  result.assignment = std::move(assign);
  result.clusters.assign(static_cast<size_t>(k), CfVector(dim));
  for (size_t i = 0; i < m; ++i) {
    result.clusters[static_cast<size_t>(result.assignment[i])].Add(
        entries[i]);
  }
  // Drop empty clusters (possible when k-means leaves one starved).
  std::vector<int> remap(static_cast<size_t>(k), -1);
  std::vector<CfVector> kept;
  for (int c = 0; c < k; ++c) {
    if (!result.clusters[static_cast<size_t>(c)].empty()) {
      remap[static_cast<size_t>(c)] = static_cast<int>(kept.size());
      kept.push_back(result.clusters[static_cast<size_t>(c)]);
    }
  }
  for (auto& a : result.assignment) a = remap[static_cast<size_t>(a)];
  result.clusters = std::move(kept);
  return result;
}

/// CLARANS-style randomized medoid search adapted to weighted CFs: the
/// objective is sum_i n_i * ||c_i - c_medoid(i)||, evaluated on entry
/// centroids. Being weight-aware, a heavy subcluster pulls medoids the
/// way its raw points would.
GlobalClustering MedoidsCluster(std::span<const CfVector> entries,
                                const GlobalClusterOptions& options, int k) {
  const size_t m = entries.size();
  const size_t uk = static_cast<size_t>(k);
  Rng rng(options.seed);

  if (uk >= m) {
    // Every entry is its own medoid; nothing to search.
    GlobalClustering identity;
    identity.assignment.resize(m);
    identity.clusters.assign(m, CfVector(entries[0].dim()));
    for (size_t i = 0; i < m; ++i) {
      identity.assignment[i] = static_cast<int>(i);
      identity.clusters[i] = entries[i];
    }
    return identity;
  }

  std::vector<std::vector<double>> cents(m);
  std::vector<double> weights(m);
  for (size_t i = 0; i < m; ++i) {
    cents[i] = entries[i].Centroid();
    weights[i] = entries[i].n();
  }
  auto dist = [&](size_t a, size_t b) {
    return Distance(std::span<const double>(cents[a]),
                    std::span<const double>(cents[b]));
  };

  int64_t maxneighbor = options.medoid_maxneighbor;
  if (maxneighbor <= 0) {
    maxneighbor = std::max<int64_t>(
        static_cast<int64_t>(0.0125 * static_cast<double>(uk) *
                             static_cast<double>(m - uk)),
        250);
  }

  std::vector<size_t> best_medoids;
  std::vector<int> best_assign;
  double best_cost = kInf;

  for (int local = 0; local < std::max(1, options.medoid_numlocal);
       ++local) {
    // Random distinct medoid set.
    std::vector<size_t> medoids;
    std::vector<bool> is_medoid(m, false);
    while (medoids.size() < uk) {
      size_t x = rng.UniformInt(m);
      if (!is_medoid[x]) {
        is_medoid[x] = true;
        medoids.push_back(x);
      }
    }
    std::vector<int> nearest(m);
    std::vector<double> d1(m), d2(m);
    double cost = 0.0;
    auto recompute = [&]() {
      cost = 0.0;
      for (size_t i = 0; i < m; ++i) {
        d1[i] = d2[i] = kInf;
        for (size_t s = 0; s < uk; ++s) {
          double d = dist(i, medoids[s]);
          if (d < d1[i]) {
            d2[i] = d1[i];
            d1[i] = d;
            nearest[i] = static_cast<int>(s);
          } else if (d < d2[i]) {
            d2[i] = d;
          }
        }
        cost += weights[i] * d1[i];
      }
    };
    recompute();

    int64_t tried = 0;
    while (tried < maxneighbor) {
      size_t slot = rng.UniformInt(uk);
      size_t x = rng.UniformInt(m);
      if (is_medoid[x]) continue;
      ++tried;
      double delta = 0.0;
      for (size_t i = 0; i < m; ++i) {
        double dxi = dist(i, x);
        if (nearest[i] == static_cast<int>(slot)) {
          delta += weights[i] * (std::min(dxi, d2[i]) - d1[i]);
        } else if (dxi < d1[i]) {
          delta += weights[i] * (dxi - d1[i]);
        }
      }
      if (delta < -1e-12) {
        is_medoid[medoids[slot]] = false;
        medoids[slot] = x;
        is_medoid[x] = true;
        recompute();
        tried = 0;
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_medoids = medoids;
      best_assign = nearest;
    }
  }

  GlobalClustering result;
  result.assignment = std::move(best_assign);
  result.clusters.assign(uk, CfVector(entries[0].dim()));
  for (size_t i = 0; i < m; ++i) {
    result.clusters[static_cast<size_t>(result.assignment[i])].Add(
        entries[i]);
  }
  return result;
}

}  // namespace

StatusOr<GlobalClustering> GlobalCluster(
    std::span<const CfVector> entries, const GlobalClusterOptions& options) {
  TRACE_SPAN("phase3/global");
  OBS_COUNTER_ADD("phase3/input_entries", entries.size());
  if (entries.empty()) {
    return Status::InvalidArgument("no subclusters to cluster");
  }
  if (options.k < 0) {
    return Status::InvalidArgument("k must be >= 0");
  }
  if (options.k == 0 &&
      (options.algorithm != GlobalAlgorithm::kHierarchical ||
       options.distance_limit <= 0.0)) {
    return Status::InvalidArgument(
        "k == 0 requires hierarchical clustering with a distance_limit");
  }
  // More clusters requested than inputs: every input is its own cluster.
  int k = std::min<int>(options.k, static_cast<int>(entries.size()));

  if (options.algorithm == GlobalAlgorithm::kHierarchical) {
    if (entries.size() > options.max_hierarchical_inputs) {
      return Status::InvalidArgument(
          "hierarchical input too large (" +
          std::to_string(entries.size()) +
          " entries); condense with Phase 2 first");
    }
    return HierarchicalCluster(entries, options, k);
  }
  if (options.algorithm == GlobalAlgorithm::kMedoids) {
    return MedoidsCluster(entries, options, k);
  }
  return KMeansCluster(entries, options, k);
}

}  // namespace birch
