// Internal dispatch table for the kernel's column-accumulate
// primitives. Kept deliberately free of other birch headers: the AVX2
// translation unit (kernel_avx2.cc) is compiled with -mavx2, and any
// inline function it pulled in from a shared header could be emitted
// with AVX2 encodings and then win at link time over the SSE2 copy —
// an ISA-mixing bug. Only this header crosses that boundary.
#ifndef BIRCH_BIRCH_KERNEL_KERNEL_OPS_H_
#define BIRCH_BIRCH_KERNEL_KERNEL_OPS_H_

#include <cstddef>

namespace birch {
namespace kernel {
namespace detail {

/// Whole-scan accumulate primitives: one call folds ALL dims of a
/// dimension-major block (`cols[k * stride + j]`, k in [0, dims), j in
/// [0, m)) into the per-entry accumulators — dims-outer, entries-inner,
/// `acc[j] op= f(q[k], cols[k * stride + j])`. One indirect call per
/// scan keeps dispatch cost off the per-dimension path (a node scan at
/// dim=64 would otherwise pay 64 indirect calls over tiny columns).
/// The portable and AVX2 implementations are element-wise bitwise
/// identical (the AVX2 code uses separate mul and add, never FMA, and
/// fabs via sign-bit masking).
struct Ops {
  /// acc[j] += sum_k (q[k] - cols[k*stride+j])^2
  void (*sq_diff)(double* acc, const double* cols, size_t stride,
                  const double* q, size_t dims, size_t m);
  /// acc[j] += sum_k |q[k] - cols[k*stride+j]|
  void (*abs_diff)(double* acc, const double* cols, size_t stride,
                   const double* q, size_t dims, size_t m);
  /// acc[j] += sum_k q[k] * cols[k*stride+j]
  void (*dot)(double* acc, const double* cols, size_t stride,
              const double* q, size_t dims, size_t m);
  /// t = q[k] + cols[k*stride+j]; acc[j] += sum_k t * t
  void (*merged_norm)(double* acc, const double* cols, size_t stride,
                      const double* q, size_t dims, size_t m);
  /// acc[j] = sqrt(acc[j]). Correctly-rounded IEEE sqrt in both lanes
  /// (VSQRTPD is exact), so the vector pass is bitwise identical to a
  /// scalar std::sqrt loop. Inputs must be non-negative.
  void (*sqrt_arr)(double* acc, size_t m);
  /// The D2 finishing pass over the accumulated cross terms:
  ///   d2 = qmsq + msq[j] - 2*acc[j] / (qn*n[j])
  ///   acc[j] = sqrt(d2 > 0 ? d2 : 0)
  /// Every step is an exact IEEE op, so vector and scalar agree bitwise.
  void (*finish_d2)(double* acc, const double* n, const double* msq,
                    double qn, double qmsq, size_t m);
  /// The cancellation-free D2 finishing pass (BETULA representation).
  /// acc[j] arrives as ||mean_q - mean_j||^2; msq[j] = S_j/N_j, qmsq =
  /// S_q/N_q — all non-negative, so the sum never cancels:
  ///   d2 = (qmsq + msq[j]) + acc[j]
  ///   acc[j] = sqrt(d2 > 0 ? d2 : 0)
  void (*finish_d2_stable)(double* acc, const double* msq, double qmsq,
                           size_t m);
};

/// The active implementation: AVX2 when compiled in (BIRCH_KERNEL_AVX2)
/// and supported by this CPU, portable otherwise. Resolved once.
const Ops& GetOps();

/// The fast-but-not-bitwise table for KernelKind::kBatchFast: the
/// FMA/AVX-512 lane (kernel_fma.cc, 8-wide, fused multiply-adds) when
/// compiled in (BIRCH_KERNEL_FMA) and supported by this CPU; falls
/// back to GetOps() — i.e. exactly the correctly-rounded dispatch —
/// otherwise. Resolved once. Never use for paths under the bitwise
/// determinism contract.
const Ops& GetFastOps();

extern const Ops kPortableOps;
#if defined(BIRCH_KERNEL_AVX2)
extern const Ops kAvx2Ops;  // defined in kernel_avx2.cc
#endif
#if defined(BIRCH_KERNEL_FMA)
extern const Ops kFmaOps;  // defined in kernel_fma.cc
#endif

}  // namespace detail
}  // namespace kernel
}  // namespace birch

#endif  // BIRCH_BIRCH_KERNEL_KERNEL_OPS_H_
