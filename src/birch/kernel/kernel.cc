#include "birch/kernel/kernel.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "birch/kernel/kernel_ops.h"
#include "obs/metrics.h"
#include "util/math.h"

namespace birch {

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar: return "scalar";
    case KernelKind::kBatch: return "batch";
    case KernelKind::kBatchFast: return "batch-fast";
  }
  return "?";
}

namespace kernel {

namespace detail {

namespace {

void SqDiffPortable(double* acc, const double* cols, size_t stride,
                    const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    for (size_t j = 0; j < m; ++j) {
      double d = qk - col[j];
      acc[j] += d * d;
    }
  }
}

void AbsDiffPortable(double* acc, const double* cols, size_t stride,
                     const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    for (size_t j = 0; j < m; ++j) acc[j] += std::fabs(qk - col[j]);
  }
}

void DotPortable(double* acc, const double* cols, size_t stride,
                 const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    for (size_t j = 0; j < m; ++j) acc[j] += qk * col[j];
  }
}

void MergedNormPortable(double* acc, const double* cols, size_t stride,
                        const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    for (size_t j = 0; j < m; ++j) {
      double t = qk + col[j];
      acc[j] += t * t;
    }
  }
}

void SqrtArrPortable(double* acc, size_t m) {
  for (size_t j = 0; j < m; ++j) acc[j] = std::sqrt(acc[j]);
}

void FinishD2Portable(double* acc, const double* n, const double* msq,
                      double qn, double qmsq, size_t m) {
  for (size_t j = 0; j < m; ++j) {
    double d2 = qmsq + msq[j] - 2.0 * acc[j] / (qn * n[j]);
    acc[j] = std::sqrt(ClampNonNegative(d2));
  }
}

void FinishD2StablePortable(double* acc, const double* msq, double qmsq,
                            size_t m) {
  for (size_t j = 0; j < m; ++j) {
    double d2 = (qmsq + msq[j]) + acc[j];
    acc[j] = std::sqrt(ClampNonNegative(d2));
  }
}

}  // namespace

const Ops kPortableOps = {&SqDiffPortable,    &AbsDiffPortable,
                          &DotPortable,       &MergedNormPortable,
                          &SqrtArrPortable,   &FinishD2Portable,
                          &FinishD2StablePortable};

const Ops& GetOps() {
#if defined(BIRCH_KERNEL_AVX2)
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2) return kAvx2Ops;
#endif
  return kPortableOps;
}

const Ops& GetFastOps() {
#if defined(BIRCH_KERNEL_FMA)
  static const bool use_fma = __builtin_cpu_supports("avx512f") &&
                              __builtin_cpu_supports("avx512dq") &&
                              __builtin_cpu_supports("fma");
  if (use_fma) return kFmaOps;
#endif
  return GetOps();
}

}  // namespace detail

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

// Mirror of the GuardedStat in cf_vector.cc: same clamp, same
// "cf/cancellation_guard" trip counter, same "cf/cancellation_clamped"
// escalation when the destroyed value was relatively large (actual
// degradation, not sub-noise-floor dust). The kernel recomputes the
// guarded statistics itself (it never materializes the merged CF), so
// it must replicate the accounting too.
constexpr double kClampVisibleTol = 1e-14;  // see cf_vector.cc

double GuardedStat(double x, double magnitude) {
  double g = GuardedNonNegative(x, magnitude);
  if (g == 0.0 && x != 0.0) {
    OBS_COUNTER_INC("cf/cancellation_guard");
    if (std::fabs(x) > kClampVisibleTol * magnitude) {
      OBS_COUNTER_INC("cf/cancellation_clamped");
    }
  }
  return g;
}

}  // namespace

void CfQuery::Prepare(const CfVector& q, DistanceMetric metric,
                      std::vector<double>* centroid_buf) {
  cf = &q;
  n = q.n();
  ss = q.raw_scalar();
  mean_sq = n > 0.0 ? ss / n : 0.0;
  if (q.rep() == CfRepresentation::kBetula) {
    // BETULA: ss is S, mean_sq is S/N, and the stored mean IS the
    // centroid — every BETULA scan reads it, straight from the CF's
    // own storage (`cf` outlives the query per contract). D4's
    // increase is computed directly (never as an SSD difference), so
    // ssd stays unused.
    ssd = 0.0;
    centroid = q.raw_vec().data();
    return;
  }
  ssd = metric == DistanceMetric::kD4 ? q.SumSquaredDeviation() : 0.0;
  centroid = nullptr;
  if (metric == DistanceMetric::kD0 || metric == DistanceMetric::kD1) {
    centroid_buf->resize(q.dim());
    std::span<const double> ls = q.ls();
    for (size_t k = 0; k < ls.size(); ++k) (*centroid_buf)[k] = ls[k] / n;
    centroid = centroid_buf->data();
  }
}

CfBatch::Needs CfBatch::Needs::For(DistanceMetric metric,
                                   CfRepresentation rep) {
  Needs needs;
  if (rep == CfRepresentation::kBetula) {
    // Every BETULA metric works off the means (the centroid columns)
    // plus the scalar columns; LS and the SSD column never exist.
    needs.centroid = true;
    return needs;
  }
  switch (metric) {
    case DistanceMetric::kD0:
    case DistanceMetric::kD1:
      needs.centroid = true;
      break;
    case DistanceMetric::kD2:
    case DistanceMetric::kD3:
      needs.ls = true;
      break;
    case DistanceMetric::kD4:
      needs.ls = true;
      needs.ssd = true;
      break;
  }
  return needs;
}

void CfBatch::Init(size_t dim, size_t capacity, Needs needs) {
  dim_ = dim;
  capacity_ = capacity;
  needs_ = needs;
  size_ = 0;
  n_.assign(capacity, 0.0);
  ss_.assign(capacity, 0.0);
  mean_sq_.assign(capacity, 0.0);
  if (needs.ssd) {
    ssd_.assign(capacity, 0.0);
  } else {
    ssd_.clear();
  }
  if (needs.ls) {
    ls_.assign(dim * capacity, 0.0);
  } else {
    ls_.clear();
  }
  if (needs.centroid) {
    centroid_.assign(dim * capacity, 0.0);
  } else {
    centroid_.clear();
  }
}

void CfBatch::Assign(std::span<const CfVector> entries) {
  assert(entries.size() <= capacity_);
  size_ = entries.size();
  for (size_t i = 0; i < size_; ++i) Update(i, entries[i]);
}

void CfBatch::Append(const CfVector& entry) {
  assert(size_ < capacity_);
  ++size_;
  Update(size_ - 1, entry);
}

void CfBatch::Update(size_t i, const CfVector& entry) {
  assert(i < size_);
  assert(entry.dim() == dim_);
  const double en = entry.n();
  const double scalar = entry.raw_scalar();  // SS classic, S BETULA
  n_[i] = en;
  ss_[i] = scalar;
  mean_sq_[i] = en > 0.0 ? scalar / en : 0.0;
  std::span<const double> vec = entry.raw_vec();
  if (needs_.ls) {
    for (size_t k = 0; k < dim_; ++k) ls_[k * capacity_ + i] = vec[k];
  }
  if (needs_.centroid) {
    if (entry.rep() == CfRepresentation::kBetula) {
      for (size_t k = 0; k < dim_; ++k) centroid_[k * capacity_ + i] = vec[k];
    } else {
      for (size_t k = 0; k < dim_; ++k) {
        centroid_[k * capacity_ + i] = vec[k] / en;
      }
    }
  }
  if (needs_.ssd) ssd_[i] = entry.SumSquaredDeviation();
}

void FillDistances(const CfBatch& batch, const CfQuery& query,
                   DistanceMetric metric, Workspace* ws,
                   const detail::Ops* ops_override) {
  const size_t m = batch.size();
  const size_t cap = batch.capacity();
  const size_t dim = batch.dim();
  ws->dist.assign(m, 0.0);
  if (m == 0) return;
  double* acc = ws->dist.data();
  const detail::Ops& ops =
      ops_override != nullptr ? *ops_override : detail::GetOps();

  if (query.cf->rep() == CfRepresentation::kBetula) {
    // Every BETULA metric starts from the squared mean differences
    // accumulated over the centroid columns; the finishing passes use
    // the Chan-merge identities (sums of non-negative terms) in the
    // exact operation order of the scalar oracle (metrics.cc /
    // CfVector::Add), so scalar and batch stay bitwise identical.
    switch (metric) {
      case DistanceMetric::kD0: {
        ops.sq_diff(acc, batch.centroid(), cap, query.centroid, dim, m);
        ops.sqrt_arr(acc, m);
        break;
      }
      case DistanceMetric::kD1: {
        ops.abs_diff(acc, batch.centroid(), cap, query.centroid, dim, m);
        break;
      }
      case DistanceMetric::kD2: {
        ops.sq_diff(acc, batch.centroid(), cap, query.centroid, dim, m);
        ops.finish_d2_stable(acc, batch.mean_sq(), query.mean_sq, m);
        break;
      }
      case DistanceMetric::kD3: {
        // acc holds ||mean_q - mean_j||^2; finish with the Chan merge
        // S_m = S_q + (S_j + coef*dsq), quantized like the scalar
        // Merged CF would be under f32 storage.
        ops.sq_diff(acc, batch.centroid(), cap, query.centroid, dim, m);
        const double* n = batch.n();
        const double* ss = batch.ss();
        const bool f32 = query.cf->storage() == CfStorage::kF32;
        for (size_t j = 0; j < m; ++j) {
          double nm = query.n + n[j];
          if (nm <= 1.0) {
            acc[j] = 0.0;
            continue;
          }
          double f = n[j] / nm;
          double coef = query.n * f;
          double sm = query.ss + (ss[j] + coef * acc[j]);
          if (f32) sm = static_cast<double>(static_cast<float>(sm));
          acc[j] = std::sqrt(ClampNonNegative(2.0 * sm / (nm - 1.0)));
        }
        break;
      }
      case DistanceMetric::kD4: {
        // The SSE increase is coef * ||mean_q - mean_j||^2 directly.
        ops.sq_diff(acc, batch.centroid(), cap, query.centroid, dim, m);
        const double* n = batch.n();
        for (size_t j = 0; j < m; ++j) {
          double nm = query.n + n[j];
          if (nm <= 0.0) {
            acc[j] = 0.0;
            continue;
          }
          double f = n[j] / nm;
          double coef = query.n * f;
          acc[j] = std::sqrt(ClampNonNegative(coef * acc[j]));
        }
        break;
      }
    }
    return;
  }

  switch (metric) {
    case DistanceMetric::kD0: {
      ops.sq_diff(acc, batch.centroid(), cap, query.centroid, dim, m);
      ops.sqrt_arr(acc, m);
      break;
    }
    case DistanceMetric::kD1: {
      ops.abs_diff(acc, batch.centroid(), cap, query.centroid, dim, m);
      break;
    }
    case DistanceMetric::kD2: {
      // acc holds the cross term Dot(LS_q, LS_j) first, then the
      // finished distance.
      ops.dot(acc, batch.ls(), cap, query.cf->ls().data(), dim, m);
      ops.finish_d2(acc, batch.n(), batch.mean_sq(), query.n, query.mean_sq,
                    m);
      break;
    }
    case DistanceMetric::kD3: {
      // acc holds ||LS_q + LS_j||^2 first.
      ops.merged_norm(acc, batch.ls(), cap, query.cf->ls().data(), dim, m);
      const double* n = batch.n();
      const double* ss = batch.ss();
      for (size_t j = 0; j < m; ++j) {
        double nm = query.n + n[j];
        if (nm <= 1.0) {
          acc[j] = 0.0;
          continue;
        }
        double ssm = query.ss + ss[j];
        double num = 2.0 * (nm * ssm - acc[j]);
        double sq = GuardedStat(num / (nm * (nm - 1.0)),
                                2.0 * ssm / (nm - 1.0));
        acc[j] = std::sqrt(sq);
      }
      break;
    }
    case DistanceMetric::kD4: {
      ops.merged_norm(acc, batch.ls(), cap, query.cf->ls().data(), dim, m);
      const double* n = batch.n();
      const double* ss = batch.ss();
      const double* ssd = batch.ssd();
      for (size_t j = 0; j < m; ++j) {
        double nm = query.n + n[j];
        double ssm = query.ss + ss[j];
        double merged_ssd =
            nm <= 0.0 ? 0.0 : GuardedStat(ssm - acc[j] / nm, ssm);
        double inc = merged_ssd - query.ssd - ssd[j];
        acc[j] = std::sqrt(ClampNonNegative(inc));
      }
      break;
    }
  }
}

ScanResult NearestEntry(const CfBatch& batch, const CfQuery& query,
                        DistanceMetric metric, Workspace* ws,
                        const uint8_t* active, size_t exclude,
                        const detail::Ops* ops) {
  FillDistances(batch, query, metric, ws, ops);
  ScanResult r;
  r.distance = std::numeric_limits<double>::infinity();
  const double* dist = ws->dist.data();
  for (size_t j = 0; j < batch.size(); ++j) {
    if (j == exclude) continue;
    if (active != nullptr && active[j] == 0) continue;
    if (dist[j] < r.distance) {
      r.distance = dist[j];
      r.index = j;
    }
  }
  return r;
}

namespace {

/// S of the Chan merge of two BETULA CFs, replicating CfVector::Add's
/// operation order (and its f32 quantize-after-mutate) exactly so the
/// result is bitwise equal to Merged(a, b).raw_scalar().
double BetulaMergedS(const CfVector& a, const CfVector& b) {
  double nm = a.n() + b.n();
  double f = b.n() / nm;
  double coef = a.n() * f;
  std::span<const double> am = a.raw_vec();
  std::span<const double> bm = b.raw_vec();
  double dsq = 0.0;
  for (size_t k = 0; k < am.size(); ++k) {
    double d = bm[k] - am[k];
    dsq += d * d;
  }
  double sm = a.raw_scalar() + (b.raw_scalar() + coef * dsq);
  if (a.storage() == CfStorage::kF32) {
    sm = static_cast<double>(static_cast<float>(sm));
  }
  return sm;
}

}  // namespace

double MergedDiameter(const CfVector& a, const CfVector& b) {
  double nm = a.n() + b.n();
  if (nm <= 1.0) return 0.0;
  if (a.rep() == CfRepresentation::kBetula) {
    double sm = BetulaMergedS(a, b);
    return std::sqrt(ClampNonNegative(2.0 * sm / (nm - 1.0)));
  }
  double ssm = a.ss() + b.ss();
  std::span<const double> al = a.ls();
  std::span<const double> bl = b.ls();
  double norm = 0.0;
  for (size_t k = 0; k < al.size(); ++k) {
    double t = al[k] + bl[k];
    norm += t * t;
  }
  double num = 2.0 * (nm * ssm - norm);
  return std::sqrt(
      GuardedStat(num / (nm * (nm - 1.0)), 2.0 * ssm / (nm - 1.0)));
}

double MergedRadius(const CfVector& a, const CfVector& b) {
  double nm = a.n() + b.n();
  if (nm <= 0.0) return 0.0;
  if (a.rep() == CfRepresentation::kBetula) {
    double sm = BetulaMergedS(a, b);
    return std::sqrt(ClampNonNegative(sm / nm));
  }
  double ssm = a.ss() + b.ss();
  std::span<const double> al = a.ls();
  std::span<const double> bl = b.ls();
  double norm = 0.0;
  for (size_t k = 0; k < al.size(); ++k) {
    double t = al[k] + bl[k];
    norm += t * t;
  }
  return std::sqrt(GuardedStat(ssm / nm - norm / (nm * nm), ssm / nm));
}

void CenterBatch::Assign(const std::vector<std::vector<double>>& centers) {
  size_ = centers.size();
  capacity_ = size_;
  dim_ = size_ > 0 ? centers[0].size() : 0;
  comps_.assign(dim_ * capacity_, 0.0);
  for (size_t j = 0; j < size_; ++j) {
    assert(centers[j].size() == dim_);
    for (size_t k = 0; k < dim_; ++k) {
      comps_[k * capacity_ + j] = centers[j][k];
    }
  }
}

ScanResult CenterBatch::NearestSq(std::span<const double> point,
                                  Workspace* ws) const {
  assert(point.size() == dim_);
  const size_t m = size_;
  ws->dist.assign(m, 0.0);
  double* acc = ws->dist.data();
  const detail::Ops& ops = detail::GetOps();
  ops.sq_diff(acc, comps_.data(), capacity_, point.data(), dim_, m);
  ScanResult r;
  r.distance = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < m; ++j) {
    if (acc[j] < r.distance) {
      r.distance = acc[j];
      r.index = j;
    }
  }
  return r;
}

bool Avx2Active() {
#if defined(BIRCH_KERNEL_AVX2)
  return &detail::GetOps() == &detail::kAvx2Ops;
#else
  return false;
#endif
}

bool FmaActive() {
#if defined(BIRCH_KERNEL_FMA)
  return &detail::GetFastOps() == &detail::kFmaOps;
#else
  return false;
#endif
}

// Silence -Wunused for kNone in builds where asserts compile out.
static_assert(kNone == static_cast<size_t>(-1));

}  // namespace kernel
}  // namespace birch
