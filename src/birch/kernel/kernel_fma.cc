// FMA/AVX-512 specialization of the column-accumulate primitives — the
// fast lane behind KernelKind::kBatchFast. This is the only
// translation unit compiled with -mavx512f/-mavx512dq/-mfma; like
// kernel_avx2.cc it includes nothing but kernel_ops.h and
// <immintrin.h> so no shared inline function can be emitted here with
// AVX-512 encodings (see kernel_ops.h).
//
// NOT bitwise against the oracle: the accumulations use fused
// multiply-add (one rounding instead of two), so distances may differ
// from the portable/AVX2 lanes in the last ulps. The argmin structure,
// clamping, and tie behavior are unchanged, which is why the fast lane
// is safe for the quality-insensitive tree-descent scans and nothing
// else; the correctly-rounded lanes stay the determinism oracle.
#include "birch/kernel/kernel_ops.h"

#if defined(BIRCH_KERNEL_FMA)

#include <immintrin.h>

namespace birch {
namespace kernel {
namespace detail {

namespace {

void SqDiffFma(double* acc, const double* cols, size_t stride,
               const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m512d qv = _mm512_set1_pd(qk);
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m512d d = _mm512_sub_pd(qv, _mm512_loadu_pd(col + j));
      __m512d a = _mm512_loadu_pd(acc + j);
      _mm512_storeu_pd(acc + j, _mm512_fmadd_pd(d, d, a));
    }
    for (; j < m; ++j) {
      double d = qk - col[j];
      acc[j] = __builtin_fma(d, d, acc[j]);
    }
  }
}

void AbsDiffFma(double* acc, const double* cols, size_t stride,
                const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m512d qv = _mm512_set1_pd(qk);
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m512d d = _mm512_sub_pd(qv, _mm512_loadu_pd(col + j));
      d = _mm512_abs_pd(d);
      __m512d a = _mm512_loadu_pd(acc + j);
      _mm512_storeu_pd(acc + j, _mm512_add_pd(a, d));
    }
    for (; j < m; ++j) {
      double d = qk - col[j];
      acc[j] += d < 0.0 ? -d : d;
    }
  }
}

void DotFma(double* acc, const double* cols, size_t stride,
            const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m512d qv = _mm512_set1_pd(qk);
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m512d a = _mm512_loadu_pd(acc + j);
      _mm512_storeu_pd(acc + j,
                       _mm512_fmadd_pd(qv, _mm512_loadu_pd(col + j), a));
    }
    for (; j < m; ++j) acc[j] = __builtin_fma(qk, col[j], acc[j]);
  }
}

void MergedNormFma(double* acc, const double* cols, size_t stride,
                   const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m512d qv = _mm512_set1_pd(qk);
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m512d t = _mm512_add_pd(qv, _mm512_loadu_pd(col + j));
      __m512d a = _mm512_loadu_pd(acc + j);
      _mm512_storeu_pd(acc + j, _mm512_fmadd_pd(t, t, a));
    }
    for (; j < m; ++j) {
      double t = qk + col[j];
      acc[j] = __builtin_fma(t, t, acc[j]);
    }
  }
}

// VSQRTPD is correctly rounded at every width; the sqrt pass itself
// never diverges — only the accumulations feeding it do.
void SqrtArrFma(double* acc, size_t m) {
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    _mm512_storeu_pd(acc + j, _mm512_sqrt_pd(_mm512_loadu_pd(acc + j)));
  }
  for (; j < m; ++j) acc[j] = __builtin_sqrt(acc[j]);
}

void FinishD2Fma(double* acc, const double* n, const double* msq,
                 double qn, double qmsq, size_t m) {
  const __m512d qnv = _mm512_set1_pd(qn);
  const __m512d qmsqv = _mm512_set1_pd(qmsq);
  const __m512d two = _mm512_set1_pd(2.0);
  const __m512d zero = _mm512_setzero_pd();
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    __m512d cross = _mm512_loadu_pd(acc + j);
    __m512d denom = _mm512_mul_pd(qnv, _mm512_loadu_pd(n + j));
    __m512d term = _mm512_div_pd(_mm512_mul_pd(two, cross), denom);
    __m512d d2 =
        _mm512_sub_pd(_mm512_add_pd(qmsqv, _mm512_loadu_pd(msq + j)), term);
    // ClampNonNegative: d2 > 0 ? d2 : 0 (NaN compares false -> 0).
    __mmask8 pos = _mm512_cmp_pd_mask(d2, zero, _CMP_GT_OQ);
    d2 = _mm512_maskz_mov_pd(pos, d2);
    _mm512_storeu_pd(acc + j, _mm512_sqrt_pd(d2));
  }
  for (; j < m; ++j) {
    double d2 = qmsq + msq[j] - 2.0 * acc[j] / (qn * n[j]);
    acc[j] = __builtin_sqrt(d2 > 0.0 ? d2 : 0.0);
  }
}

void FinishD2StableFma(double* acc, const double* msq, double qmsq,
                       size_t m) {
  const __m512d qmsqv = _mm512_set1_pd(qmsq);
  const __m512d zero = _mm512_setzero_pd();
  size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    __m512d d2 = _mm512_add_pd(_mm512_add_pd(qmsqv, _mm512_loadu_pd(msq + j)),
                               _mm512_loadu_pd(acc + j));
    __mmask8 pos = _mm512_cmp_pd_mask(d2, zero, _CMP_GT_OQ);
    d2 = _mm512_maskz_mov_pd(pos, d2);
    _mm512_storeu_pd(acc + j, _mm512_sqrt_pd(d2));
  }
  for (; j < m; ++j) {
    double d2 = (qmsq + msq[j]) + acc[j];
    acc[j] = __builtin_sqrt(d2 > 0.0 ? d2 : 0.0);
  }
}

}  // namespace

const Ops kFmaOps = {&SqDiffFma,     &AbsDiffFma, &DotFma,
                     &MergedNormFma, &SqrtArrFma, &FinishD2Fma,
                     &FinishD2StableFma};

}  // namespace detail
}  // namespace kernel
}  // namespace birch

#endif  // BIRCH_KERNEL_FMA
