// Batched SoA distance kernels — the hot inner loops of every phase.
//
// Phase 1's cost is dominated by per-entry distance computations down
// the CF tree; Phase 3 runs O(m^2) pairwise CF distances; Phase 4 is a
// point->centroid argmin over the raw data. All three reduce to the
// same shape: one query against a batch of candidates. This layer
// stores the candidates in struct-of-arrays form (per-entry N, SS,
// LS components, centroid components, and the D2/D4 precomputations,
// each contiguous and dimension-major) so the scan is a flat
// auto-vectorizable loop with no per-entry pointer chasing — and, when
// built with BIRCH_KERNEL_AVX2 on an AVX2 machine, an explicit 4-wide
// SIMD pass.
//
// Equivalence contract: for every metric the batch path performs the
// SAME floating-point operations in the SAME order per candidate as
// the scalar oracle in metrics.cc / cf_vector.cc (the AVX2 pass uses
// separate mul+add, never FMA), so scalar and batch kernels agree
// bitwise — same winners, same distances. tests/kernel_test.cc holds
// this line across metrics D0-D4, both threshold kinds, and dims.
#ifndef BIRCH_BIRCH_KERNEL_KERNEL_H_
#define BIRCH_BIRCH_KERNEL_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/metrics.h"

namespace birch {

/// Which distance-scan implementation the pipeline uses. kScalar is the
/// per-CfVector oracle (metrics.cc); kBatch is the SoA layer below.
/// They produce bitwise-identical results; kScalar exists as the
/// equivalence oracle and as a fallback while debugging. kBatchFast is
/// kBatch with the CF-tree descent scans routed through the FMA/
/// AVX-512 column primitives where the CPU has them — measurably
/// faster on wide dims but NOT bitwise against the oracle (fused
/// multiply-adds round once, not twice), so it is opt-in and gated
/// A/B in tests on quality rather than bit equality. On hardware
/// without AVX-512 (or in a build without BIRCH_KERNEL_FMA) it decays
/// to exactly kBatch.
enum class KernelKind { kScalar = 0, kBatch, kBatchFast };

/// Parse/format helper for CLI flags and bench labels.
const char* KernelName(KernelKind kind);

/// True for the kinds that use the SoA batch scans (everything except
/// the scalar oracle).
inline bool IsBatchKernel(KernelKind kind) {
  return kind != KernelKind::kScalar;
}

namespace kernel {

namespace detail {
struct Ops;  // column-primitive table, kernel_ops.h
}  // namespace detail

/// Query-side precomputations, built once per scan (or once per tree
/// descent) instead of once per candidate: centroid, SS/N, and the
/// total squared deviation. `cf` must outlive the query.
struct CfQuery {
  const CfVector* cf = nullptr;
  double n = 0.0;
  double ss = 0.0;       // SS (classic) or S (BETULA)
  double mean_sq = 0.0;  // SS/N (classic) or S/N (BETULA)
  double ssd = 0.0;      // SS - ||LS||^2/N (guarded), classic D4 only
  /// Centroid components. Classic: points into the workspace passed to
  /// Prepare, only filled for metrics that read it (D0/D1). BETULA:
  /// points straight at the CF's stored mean, filled for all metrics.
  const double* centroid = nullptr;

  /// Fills the derived fields `metric`'s scan reads; `centroid_buf`
  /// backs `centroid`.
  void Prepare(const CfVector& q, DistanceMetric metric,
               std::vector<double>* centroid_buf);
};

/// Contiguous SoA block over a set of CF entries. Arrays are
/// dimension-major with a fixed stride (the capacity), so per-entry
/// updates and appends never reshuffle. Only the arrays the configured
/// metric needs are materialized (Needs flags).
class CfBatch {
 public:
  /// Which derived arrays to materialize.
  struct Needs {
    bool centroid = false;  // classic D0/D1, every BETULA metric
    bool ls = false;        // classic D2/D3/D4 (raw linear sums)
    bool ssd = false;       // classic D4
    /// Everything the given metric's scan reads under `rep`.
    static Needs For(DistanceMetric metric,
                     CfRepresentation rep = CfRepresentation::kClassic);
  };

  CfBatch() = default;

  /// Sets dimensionality, capacity (stride) and the derived arrays to
  /// keep. Discards previous contents.
  void Init(size_t dim, size_t capacity, Needs needs);

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  size_t dim() const { return dim_; }
  bool empty() const { return size_ == 0; }

  /// Rebuilds the block from `entries` (size() becomes entries.size(),
  /// which must fit the capacity).
  void Assign(std::span<const CfVector> entries);

  /// Appends one entry (size() must be below capacity()).
  void Append(const CfVector& entry);

  /// Recomputes row `i` from `entry` after an in-place mutation.
  void Update(size_t i, const CfVector& entry);

  // Raw columns (used by the scan loops and tests).
  const double* n() const { return n_.data(); }
  const double* ss() const { return ss_.data(); }
  const double* mean_sq() const { return mean_sq_.data(); }
  const double* ssd() const { return ssd_.data(); }
  /// Component k of entry i sits at [k * capacity() + i].
  const double* ls() const { return ls_.data(); }
  const double* centroid() const { return centroid_.data(); }

 private:
  size_t dim_ = 0;
  size_t capacity_ = 0;
  size_t size_ = 0;
  Needs needs_;
  std::vector<double> n_, ss_, mean_sq_, ssd_;
  std::vector<double> ls_, centroid_;  // dimension-major, stride = capacity_
};

/// Reusable scan workspace (distance array + query centroid buffer);
/// one per tree / per worker thread, so scans never allocate.
struct Workspace {
  std::vector<double> dist;
  std::vector<double> query_centroid;
};

/// Result of an argmin scan. index == SIZE_MAX when no candidate was
/// eligible.
struct ScanResult {
  size_t index = static_cast<size_t>(-1);
  double distance = 0.0;
};

/// Computes Distance(metric, query, batch[i]) for every i in
/// [0, batch.size()) into ws->dist (resized), bitwise-equal to the
/// scalar oracle. `ops` selects the column-primitive table: nullptr
/// (the default everywhere correctness matters) is the correctly-
/// rounded dispatch (GetOps()); pass &GetFastOps() for the FMA lane —
/// same argmin structure, last-ulp distances may differ.
void FillDistances(const CfBatch& batch, const CfQuery& query,
                   DistanceMetric metric, Workspace* ws,
                   const detail::Ops* ops = nullptr);

/// One-pass batch scan: nearest entry of `batch` to `query` under
/// `metric`. `active` (nullable) masks candidates; `exclude` (or
/// SIZE_MAX) skips one index. First-wins on ties, exactly like the
/// scalar loop. `ops` as in FillDistances.
ScanResult NearestEntry(const CfBatch& batch, const CfQuery& query,
                        DistanceMetric metric, Workspace* ws,
                        const uint8_t* active = nullptr,
                        size_t exclude = static_cast<size_t>(-1),
                        const detail::Ops* ops = nullptr);

/// Diameter / radius the merge of `a` and `b` would have, computed
/// without materializing the merged CF (no allocation). Bitwise-equal
/// to CfVector::Merged(a, b).Diameter() / .Radius().
double MergedDiameter(const CfVector& a, const CfVector& b);
double MergedRadius(const CfVector& a, const CfVector& b);

/// SoA block over k centers (plain points) for point->center argmin
/// scans (Phase 4 assignment, k-means sweeps, streaming refinement).
class CenterBatch {
 public:
  /// Rebuilds from `centers` (all the same dimension).
  void Assign(const std::vector<std::vector<double>>& centers);

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }

  /// Index of the center with the smallest SQUARED Euclidean distance
  /// to `point` (first-wins ties, scalar-identical), and that squared
  /// distance. size() must be > 0.
  ScanResult NearestSq(std::span<const double> point, Workspace* ws) const;

 private:
  size_t dim_ = 0;
  size_t capacity_ = 0;
  size_t size_ = 0;
  std::vector<double> comps_;  // dimension-major, stride = capacity_
};

/// True when this build carries the AVX2 specialization AND the CPU
/// supports it (runtime dispatch; bench labels / tests read this).
bool Avx2Active();

/// True when the FMA/AVX-512 lane is compiled in (BIRCH_KERNEL_FMA)
/// AND the CPU supports it: kBatchFast then actually diverges from
/// kBatch. False means GetFastOps() == GetOps() and kBatchFast is
/// bitwise kBatch.
bool FmaActive();

}  // namespace kernel
}  // namespace birch

#endif  // BIRCH_BIRCH_KERNEL_KERNEL_H_
