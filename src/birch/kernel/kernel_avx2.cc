// AVX2 specialization of the column-accumulate primitives. This is the
// only translation unit compiled with -mavx2; it includes nothing but
// kernel_ops.h and <immintrin.h> so no shared inline function can be
// emitted here with AVX2 encodings (see kernel_ops.h).
//
// Equivalence: every lane performs the same operation sequence as the
// portable loop — separate mul and add (no FMA), fabs as a sign-bit
// mask — so results are bitwise identical element by element.
#include "birch/kernel/kernel_ops.h"

#if defined(BIRCH_KERNEL_AVX2)

#include <immintrin.h>

namespace birch {
namespace kernel {
namespace detail {

namespace {

void SqDiffAvx2(double* acc, const double* cols, size_t stride,
                const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m256d qv = _mm256_set1_pd(qk);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d d = _mm256_sub_pd(qv, _mm256_loadu_pd(col + j));
      __m256d a = _mm256_loadu_pd(acc + j);
      a = _mm256_add_pd(a, _mm256_mul_pd(d, d));
      _mm256_storeu_pd(acc + j, a);
    }
    for (; j < m; ++j) {
      double d = qk - col[j];
      acc[j] += d * d;
    }
  }
}

void AbsDiffAvx2(double* acc, const double* cols, size_t stride,
                 const double* q, size_t dims, size_t m) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m256d qv = _mm256_set1_pd(qk);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d d = _mm256_sub_pd(qv, _mm256_loadu_pd(col + j));
      d = _mm256_andnot_pd(sign, d);
      __m256d a = _mm256_loadu_pd(acc + j);
      _mm256_storeu_pd(acc + j, _mm256_add_pd(a, d));
    }
    for (; j < m; ++j) {
      double d = qk - col[j];
      acc[j] += d < 0.0 ? -d : d;
    }
  }
}

void DotAvx2(double* acc, const double* cols, size_t stride,
             const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m256d qv = _mm256_set1_pd(qk);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d p = _mm256_mul_pd(qv, _mm256_loadu_pd(col + j));
      __m256d a = _mm256_loadu_pd(acc + j);
      _mm256_storeu_pd(acc + j, _mm256_add_pd(a, p));
    }
    for (; j < m; ++j) acc[j] += qk * col[j];
  }
}

void MergedNormAvx2(double* acc, const double* cols, size_t stride,
                    const double* q, size_t dims, size_t m) {
  for (size_t k = 0; k < dims; ++k) {
    const double qk = q[k];
    const double* col = cols + k * stride;
    const __m256d qv = _mm256_set1_pd(qk);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d t = _mm256_add_pd(qv, _mm256_loadu_pd(col + j));
      __m256d a = _mm256_loadu_pd(acc + j);
      a = _mm256_add_pd(a, _mm256_mul_pd(t, t));
      _mm256_storeu_pd(acc + j, a);
    }
    for (; j < m; ++j) {
      double t = qk + col[j];
      acc[j] += t * t;
    }
  }
}

// VSQRTPD is the correctly-rounded IEEE sqrt, so each lane is bitwise
// identical to scalar sqrt. Tails use __builtin_sqrt (not <cmath>,
// which would pull shared inline functions into this -mavx2 TU).
void SqrtArrAvx2(double* acc, size_t m) {
  size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    _mm256_storeu_pd(acc + j, _mm256_sqrt_pd(_mm256_loadu_pd(acc + j)));
  }
  for (; j < m; ++j) acc[j] = __builtin_sqrt(acc[j]);
}

void FinishD2Avx2(double* acc, const double* n, const double* msq,
                  double qn, double qmsq, size_t m) {
  const __m256d qnv = _mm256_set1_pd(qn);
  const __m256d qmsqv = _mm256_set1_pd(qmsq);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d zero = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    __m256d cross = _mm256_loadu_pd(acc + j);
    __m256d denom = _mm256_mul_pd(qnv, _mm256_loadu_pd(n + j));
    __m256d term = _mm256_div_pd(_mm256_mul_pd(two, cross), denom);
    __m256d d2 =
        _mm256_sub_pd(_mm256_add_pd(qmsqv, _mm256_loadu_pd(msq + j)), term);
    // ClampNonNegative: d2 > 0 ? d2 : 0 (NaN compares false -> 0).
    d2 = _mm256_and_pd(d2, _mm256_cmp_pd(d2, zero, _CMP_GT_OQ));
    _mm256_storeu_pd(acc + j, _mm256_sqrt_pd(d2));
  }
  for (; j < m; ++j) {
    double d2 = qmsq + msq[j] - 2.0 * acc[j] / (qn * n[j]);
    acc[j] = __builtin_sqrt(d2 > 0.0 ? d2 : 0.0);
  }
}

// BETULA D2 finishing: (qmsq + msq[j]) + acc[j], all non-negative, then
// sqrt. Same exact IEEE add/add/sqrt sequence as the portable loop.
void FinishD2StableAvx2(double* acc, const double* msq, double qmsq,
                        size_t m) {
  const __m256d qmsqv = _mm256_set1_pd(qmsq);
  const __m256d zero = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    __m256d d2 = _mm256_add_pd(_mm256_add_pd(qmsqv, _mm256_loadu_pd(msq + j)),
                               _mm256_loadu_pd(acc + j));
    // ClampNonNegative: d2 > 0 ? d2 : 0 (NaN compares false -> 0).
    d2 = _mm256_and_pd(d2, _mm256_cmp_pd(d2, zero, _CMP_GT_OQ));
    _mm256_storeu_pd(acc + j, _mm256_sqrt_pd(d2));
  }
  for (; j < m; ++j) {
    double d2 = (qmsq + msq[j]) + acc[j];
    acc[j] = __builtin_sqrt(d2 > 0.0 ? d2 : 0.0);
  }
}

}  // namespace

const Ops kAvx2Ops = {&SqDiffAvx2,     &AbsDiffAvx2, &DotAvx2,
                      &MergedNormAvx2, &SqrtArrAvx2, &FinishD2Avx2,
                      &FinishD2StableAvx2};

}  // namespace detail
}  // namespace kernel
}  // namespace birch

#endif  // BIRCH_KERNEL_AVX2
