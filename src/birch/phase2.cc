#include "birch/phase2.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace birch {

Status CondenseTree(CfTree* tree, const Phase2Options& options,
                    std::vector<CfVector>* outliers, Phase2Stats* stats) {
  TRACE_SPAN("phase2/condense");
  Phase2Stats local;
  Phase2Stats* out = stats ? stats : &local;
  *out = Phase2Stats{};
  if (options.target_leaf_entries == 0) {
    return Status::InvalidArgument("target_leaf_entries must be > 0");
  }

  const double d = static_cast<double>(tree->options().dim);
  while (tree->leaf_entry_count() > options.target_leaf_entries &&
         out->rounds < options.max_rounds) {
    size_t before = tree->leaf_entry_count();
    double ratio = static_cast<double>(before) /
                   static_cast<double>(options.target_leaf_entries);
    // Volume heuristic: entry count scales ~ T^-d, so closing the gap
    // needs T to grow by ratio^(1/d). Never below the guaranteed-merge
    // distance, and strictly above the current threshold.
    double t = tree->threshold();
    double t_next = t > 0.0 ? t * std::pow(ratio, 1.0 / d) : 0.0;
    t_next = std::max(t_next, tree->MostCrowdedLeafMinMerge());
    if (t_next <= t) t_next = t > 0.0 ? 1.5 * t : 1e-6;

    size_t shed_before = outliers ? outliers->size() : 0;
    tree->Rebuild(t_next, options.outlier_weight_threshold, outliers);
    ++out->rounds;
    OBS_COUNTER_INC("phase2/rounds");
    if (outliers) {
      out->outliers_shed += outliers->size() - shed_before;
      OBS_COUNTER_ADD("phase2/outliers_shed", outliers->size() - shed_before);
    }

    if (tree->leaf_entry_count() >= before &&
        tree->leaf_entry_count() > options.target_leaf_entries) {
      // No progress (all remaining entries are mutually distant):
      // accelerate. The backstop in the next iteration's t_next keeps
      // this terminating.
      tree->Rebuild(2.0 * t_next, options.outlier_weight_threshold,
                    outliers);
      ++out->rounds;
      OBS_COUNTER_INC("phase2/rounds");
    }
  }
  out->final_threshold = tree->threshold();
  out->final_leaf_entries = tree->leaf_entry_count();
  if (tree->leaf_entry_count() > options.target_leaf_entries) {
    return Status::Internal("condensation failed to reach target in " +
                            std::to_string(out->rounds) + " rounds");
  }
  return Status::OK();
}

}  // namespace birch
