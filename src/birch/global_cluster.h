// Phase 3: global clustering over the leaf-entry CFs. The paper adapts
// an agglomerative hierarchical clustering algorithm to work directly
// on CF vectors with the D2/D4 metrics (its default); a CF-weighted
// k-means (with k-means++ seeding) is provided as the alternative.
// Because every input is a CF, both algorithms treat subclusters
// exactly — not as single representative points.
#ifndef BIRCH_BIRCH_GLOBAL_CLUSTER_H_
#define BIRCH_BIRCH_GLOBAL_CLUSTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/kernel/kernel.h"
#include "birch/metrics.h"
#include "util/status.h"

namespace birch {

namespace exec {
class ThreadPool;
}  // namespace exec

enum class GlobalAlgorithm {
  kHierarchical = 0,  // paper default: adapted agglomerative HC
  kKMeans,            // CF-weighted Lloyd with k-means++ seeding
  kMedoids,           // CLARANS-style randomized medoid search over CFs
};

struct GlobalClusterOptions {
  /// Desired number of clusters (> 0), or 0 to use diameter_limit.
  int k = 0;
  /// When k == 0: stop merging once the next merge's distance would
  /// exceed this (hierarchical only).
  double distance_limit = 0.0;
  GlobalAlgorithm algorithm = GlobalAlgorithm::kHierarchical;
  /// Inter-cluster metric for the hierarchical merges (paper: D2/D4).
  DistanceMetric metric = DistanceMetric::kD2;
  /// k-means settings.
  int kmeans_max_iterations = 100;
  /// Medoid-search settings (kMedoids): random restarts and neighbour
  /// budget per restart (<= 0: max(250, 1.25% * k * (m - k))).
  int medoid_numlocal = 2;
  int medoid_maxneighbor = 0;
  uint64_t seed = 42;
  /// Guard: hierarchical input size limit (cost is quadratic).
  size_t max_hierarchical_inputs = 20000;
  /// Optional worker pool for the O(m^2) distance loops and the
  /// k-means sweeps. nullptr runs the loops inline, bit-for-bit
  /// identical to the serial implementation; with a pool the result is
  /// deterministic for a fixed (seed, pool size).
  exec::ThreadPool* pool = nullptr;
  /// Distance-scan implementation for the hierarchical
  /// nearest-neighbour sweeps and the k-means assignment loop
  /// (kernel/kernel.h). kScalar and kBatch are bitwise identical.
  KernelKind kernel = KernelKind::kBatch;
};

struct GlobalClustering {
  /// For each input CF, the cluster index it was assigned to.
  std::vector<int> assignment;
  /// Cluster CFs (exact, by additivity).
  std::vector<CfVector> clusters;

  /// Convenience: centroids of `clusters`.
  std::vector<std::vector<double>> Centroids() const;
};

/// Clusters the given subcluster CFs. Fails on empty input, k < 0,
/// k > #inputs, or an oversized hierarchical input.
StatusOr<GlobalClustering> GlobalCluster(std::span<const CfVector> entries,
                                         const GlobalClusterOptions& options);

}  // namespace birch

#endif  // BIRCH_BIRCH_GLOBAL_CLUSTER_H_
