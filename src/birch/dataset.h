// In-memory dataset of d-dimensional rows with optional per-row
// weights. BIRCH itself only ever scans it sequentially (single-scan
// algorithm); Phase 4 re-scans it for refinement.
#ifndef BIRCH_BIRCH_DATASET_H_
#define BIRCH_BIRCH_DATASET_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace birch {

/// Row-major matrix of doubles plus optional weights. Weight storage is
/// materialized only when a non-unit weight first appears.
class Dataset {
 public:
  explicit Dataset(size_t dim) : dim_(dim) { assert(dim > 0); }

  size_t dim() const { return dim_; }
  size_t size() const { return values_.size() / dim_; }
  bool empty() const { return values_.empty(); }

  void Reserve(size_t rows) { values_.reserve(rows * dim_); }

  /// Appends a row with weight 1.
  void Append(std::span<const double> row) {
    assert(row.size() == dim_);
    values_.insert(values_.end(), row.begin(), row.end());
    if (!weights_.empty()) weights_.push_back(1.0);
  }

  /// Appends a weighted row.
  void AppendWeighted(std::span<const double> row, double weight) {
    Append(row);
    if (weight != 1.0) {
      // Materialize the lazy weight vector (all prior rows weigh 1).
      if (weights_.size() < size()) weights_.resize(size(), 1.0);
      weights_.back() = weight;
    }
  }

  std::span<const double> Row(size_t i) const {
    return {values_.data() + i * dim_, dim_};
  }

  double Weight(size_t i) const {
    return weights_.empty() ? 1.0 : weights_[i];
  }

  bool has_weights() const { return !weights_.empty(); }

  /// Flat row-major view over all rows (size() * dim() doubles) — the
  /// zero-copy feed for the batch ingest APIs.
  std::span<const double> Values() const { return values_; }

  /// Per-row weights; empty means every row weighs 1.0 (matches the
  /// weights-span convention of the AddBatch APIs).
  std::span<const double> Weights() const { return weights_; }

  /// Total weight (== size() when unweighted).
  double TotalWeight() const {
    if (weights_.empty()) return static_cast<double>(size());
    double s = 0.0;
    for (double w : weights_) s += w;
    return s;
  }

 private:
  size_t dim_;
  std::vector<double> values_;
  std::vector<double> weights_;  // empty => all 1.0
};

}  // namespace birch

#endif  // BIRCH_BIRCH_DATASET_H_
