#include "birch/refine.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math.h"

namespace birch {

namespace {

/// One redistribution pass. Returns the number of label changes.
uint64_t AssignPass(const Dataset& data,
                    const std::vector<std::vector<double>>& centers,
                    double outlier_distance, std::vector<int>* labels,
                    std::vector<CfVector>* cluster_cfs,
                    uint64_t* discarded) {
  const size_t k = centers.size();
  const double limit_sq =
      outlier_distance > 0.0 ? outlier_distance * outlier_distance
                             : std::numeric_limits<double>::infinity();
  for (auto& cf : *cluster_cfs) cf = CfVector(data.dim());
  uint64_t changes = 0;
  *discarded = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.Row(i);
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      double d = SquaredDistance(row, centers[c]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    if (best_d > limit_sq) {
      best = -1;
      ++*discarded;
    }
    if ((*labels)[i] != best) {
      (*labels)[i] = best;
      ++changes;
    }
    if (best >= 0) {
      (*cluster_cfs)[static_cast<size_t>(best)].AddPoint(row,
                                                         data.Weight(i));
    }
  }
  return changes;
}

}  // namespace

StatusOr<RefineResult> RefineClusters(const Dataset& data,
                                      std::span<const CfVector> seeds,
                                      const RefineOptions& options) {
  if (seeds.empty()) return Status::InvalidArgument("no seeds");
  if (options.passes < 1) {
    return Status::InvalidArgument("passes must be >= 1");
  }
  for (const auto& s : seeds) {
    if (s.dim() != data.dim() || s.empty()) {
      return Status::InvalidArgument("seed dimension/weight mismatch");
    }
  }

  TRACE_SPAN("phase4/refine");
  std::vector<std::vector<double>> centers;
  centers.reserve(seeds.size());
  for (const auto& s : seeds) centers.push_back(s.Centroid());

  RefineResult result;
  result.labels.assign(data.size(), -2);  // -2: unassigned sentinel
  result.clusters.assign(seeds.size(), CfVector(data.dim()));

  for (int pass = 0; pass < options.passes; ++pass) {
    uint64_t discarded = 0;
    uint64_t changes =
        AssignPass(data, centers, options.outlier_distance, &result.labels,
                   &result.clusters, &discarded);
    result.points_discarded = discarded;
    ++result.passes_run;
    OBS_COUNTER_INC("phase4/passes");
    OBS_COUNTER_ADD("phase4/label_changes", changes);
    // Move each seed to its refined centroid for the next pass.
    for (size_t c = 0; c < result.clusters.size(); ++c) {
      if (!result.clusters[c].empty()) {
        result.clusters[c].CentroidInto(&centers[c]);
      }
    }
    if (options.stop_when_stable && changes == 0) break;
  }
  OBS_COUNTER_ADD("phase4/points_discarded", result.points_discarded);
  return result;
}

StatusOr<RefineResult> LabelPoints(const Dataset& data,
                                   std::span<const CfVector> seeds,
                                   double outlier_distance) {
  RefineOptions options;
  options.passes = 1;
  options.outlier_distance = outlier_distance;
  return RefineClusters(data, seeds, options);
}

}  // namespace birch
