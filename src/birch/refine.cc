#include "birch/refine.h"

#include <cmath>
#include <limits>

#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math.h"

namespace birch {

namespace {

/// One redistribution pass. Returns the number of label changes.
/// With a pool, chunks accumulate private partial CFs / counters that
/// are folded in chunk order; the single-chunk path is the exact
/// serial arithmetic.
uint64_t AssignPass(const Dataset& data,
                    const std::vector<std::vector<double>>& centers,
                    double outlier_distance, exec::ThreadPool* pool,
                    KernelKind kernel_kind, std::vector<int>* labels,
                    std::vector<CfVector>* cluster_cfs,
                    uint64_t* discarded) {
  const size_t k = centers.size();
  const double limit_sq =
      outlier_distance > 0.0 ? outlier_distance * outlier_distance
                             : std::numeric_limits<double>::infinity();
  // Accumulators are fed point by point (AddPoint never adopts a
  // policy), so they must be constructed under the pipeline's CF
  // policies — carried by the caller-sized cluster_cfs.
  const CfRepresentation rep = cluster_cfs->empty()
                                   ? CfRepresentation::kClassic
                                   : (*cluster_cfs)[0].rep();
  const CfStorage storage = cluster_cfs->empty()
                                ? CfStorage::kF64
                                : (*cluster_cfs)[0].storage();
  for (auto& cf : *cluster_cfs) cf = CfVector(data.dim(), rep, storage);
  uint64_t changes = 0;
  *discarded = 0;
  const bool use_batch = IsBatchKernel(kernel_kind);
  kernel::CenterBatch cbatch;
  if (use_batch) cbatch.Assign(centers);

  // Assigns [begin, end); accumulates into cfs/changes/discarded.
  auto assign_range = [&](size_t begin, size_t end,
                          std::vector<CfVector>* cfs, uint64_t* local_changes,
                          uint64_t* local_discarded) {
    kernel::Workspace ws;
    for (size_t i = begin; i < end; ++i) {
      auto row = data.Row(i);
      int best = -1;
      double best_d = std::numeric_limits<double>::infinity();
      if (use_batch) {
        kernel::ScanResult r = cbatch.NearestSq(row, &ws);
        best_d = r.distance;
        if (r.index != static_cast<size_t>(-1)) {
          best = static_cast<int>(r.index);
        }
      } else {
        for (size_t c = 0; c < k; ++c) {
          double d = SquaredDistance(row, centers[c]);
          if (d < best_d) {
            best_d = d;
            best = static_cast<int>(c);
          }
        }
      }
      if (best_d > limit_sq) {
        best = -1;
        ++*local_discarded;
      }
      if ((*labels)[i] != best) {
        (*labels)[i] = best;
        ++*local_changes;
      }
      if (best >= 0) {
        (*cfs)[static_cast<size_t>(best)].AddPoint(row, data.Weight(i));
      }
    }
  };

  const size_t num_chunks = exec::ParallelForNumChunks(pool, data.size(),
                                                       /*min_per_chunk=*/256);
  if (num_chunks <= 1) {
    assign_range(0, data.size(), cluster_cfs, &changes, discarded);
    return changes;
  }
  std::vector<std::vector<CfVector>> partial_cfs(num_chunks);
  std::vector<uint64_t> partial_changes(num_chunks, 0);
  std::vector<uint64_t> partial_discarded(num_chunks, 0);
  exec::ParallelFor(
      pool, data.size(),
      [&](size_t begin, size_t end, size_t chunk) {
        partial_cfs[chunk].assign(k, CfVector(data.dim(), rep, storage));
        assign_range(begin, end, &partial_cfs[chunk],
                     &partial_changes[chunk], &partial_discarded[chunk]);
      },
      /*min_per_chunk=*/256);
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    for (size_t c = 0; c < k; ++c) {
      (*cluster_cfs)[c].Add(partial_cfs[chunk][c]);
    }
    changes += partial_changes[chunk];
    *discarded += partial_discarded[chunk];
  }
  return changes;
}

}  // namespace

StatusOr<RefineResult> RefineClusters(const Dataset& data,
                                      std::span<const CfVector> seeds,
                                      const RefineOptions& options) {
  if (seeds.empty()) return Status::InvalidArgument("no seeds");
  if (options.passes < 1) {
    return Status::InvalidArgument("passes must be >= 1");
  }
  for (const auto& s : seeds) {
    if (s.dim() != data.dim() || s.empty()) {
      return Status::InvalidArgument("seed dimension/weight mismatch");
    }
  }

  TRACE_SPAN("phase4/refine");
  std::vector<std::vector<double>> centers;
  centers.reserve(seeds.size());
  for (const auto& s : seeds) centers.push_back(s.Centroid());

  RefineResult result;
  result.labels.assign(data.size(), -2);  // -2: unassigned sentinel
  result.clusters.assign(
      seeds.size(),
      CfVector(data.dim(), seeds[0].rep(), seeds[0].storage()));

  for (int pass = 0; pass < options.passes; ++pass) {
    uint64_t discarded = 0;
    uint64_t changes =
        AssignPass(data, centers, options.outlier_distance, options.pool,
                   options.kernel, &result.labels, &result.clusters,
                   &discarded);
    result.points_discarded = discarded;
    ++result.passes_run;
    OBS_COUNTER_INC("phase4/passes");
    OBS_COUNTER_ADD("phase4/label_changes", changes);
    // Move each seed to its refined centroid for the next pass.
    for (size_t c = 0; c < result.clusters.size(); ++c) {
      if (!result.clusters[c].empty()) {
        result.clusters[c].CentroidInto(&centers[c]);
      }
    }
    if (options.stop_when_stable && changes == 0) break;
  }
  OBS_COUNTER_ADD("phase4/points_discarded", result.points_discarded);
  return result;
}

StatusOr<RefineResult> LabelPoints(const Dataset& data,
                                   std::span<const CfVector> seeds,
                                   double outlier_distance) {
  RefineOptions options;
  options.passes = 1;
  options.outlier_distance = outlier_distance;
  return RefineClusters(data, seeds, options);
}

}  // namespace birch
