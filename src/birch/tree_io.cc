#include "birch/tree_io.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace birch {

namespace {

void PutDoubles(std::vector<uint8_t>* page, const std::vector<double>& v) {
  page->resize(v.size() * sizeof(double));
  std::memcpy(page->data(), v.data(), page->size());
}

std::vector<double> GetDoubles(const std::vector<uint8_t>& page) {
  std::vector<double> v(page.size() / sizeof(double));
  std::memcpy(v.data(), page.data(), v.size() * sizeof(double));
  return v;
}

/// Doubles one serialized CF occupies on a page under `storage`. kF32
/// packs the d+1 float components (vec + scalar) two per double after
/// the exact-double N; see tree_io.h.
size_t EntryDoubles(size_t dim, CfStorage storage) {
  if (storage == CfStorage::kF32) return 1 + (dim + 1 + 1) / 2;
  return CfVector::SerializedDoubles(dim);
}

void SerializeEntry(const CfVector& e, CfStorage storage,
                    std::vector<double>* buf) {
  if (storage == CfStorage::kF64) {
    e.SerializeTo(buf);
    return;
  }
  buf->push_back(e.n());
  std::vector<float> f;
  f.reserve(e.dim() + 2);
  for (double v : e.raw_vec()) f.push_back(static_cast<float>(v));
  f.push_back(static_cast<float>(e.raw_scalar()));
  if (f.size() % 2 != 0) f.push_back(0.0f);  // pad to a whole double
  const size_t k = f.size() / 2;
  const size_t base = buf->size();
  buf->resize(base + k);
  std::memcpy(buf->data() + base, f.data(), k * sizeof(double));
}

CfVector DeserializeEntry(const double* p, size_t dim, CfRepresentation rep,
                          CfStorage storage) {
  if (storage == CfStorage::kF64) {
    return CfVector::Deserialize(std::span<const double>(p, dim + 2), dim,
                                 rep, storage);
  }
  const size_t nf = dim + 1;
  std::vector<float> f((nf + 1) / 2 * 2);
  std::memcpy(f.data(), p + 1, f.size() / 2 * sizeof(double));
  std::vector<double> tmp(dim + 2);
  tmp[0] = p[0];
  for (size_t i = 0; i < nf; ++i) tmp[1 + i] = static_cast<double>(f[i]);
  return CfVector::Deserialize(tmp, dim, rep, storage);
}

/// Largest PageId a double can carry exactly. Ids above this would
/// round-trip corrupted through the all-doubles page format, so Write
/// rejects them and Read treats them as corruption.
constexpr uint64_t kMaxExactPageId = 1ULL << 53;

/// True if `v` is a non-negative integer a double stores exactly and a
/// PageId can hold. The value is returned through `*id`.
bool DecodePageId(double v, PageId* id) {
  if (!std::isfinite(v) || v < 0.0 ||
      v > static_cast<double>(kMaxExactPageId)) {
    return false;
  }
  if (v != std::floor(v)) return false;
  *id = static_cast<PageId>(v);
  return true;
}

}  // namespace

StatusOr<TreeImage> TreeIO::Write(const CfTree& tree, PageStore* store) {
  if (store->page_size() < tree.options().page_size) {
    return Status::InvalidArgument(
        "store page smaller than the tree's node page");
  }
  const size_t dim = tree.options().dim;

  Status failure = Status::OK();
  std::vector<PageId> allocated;  // every page we own, for error cleanup
  std::unordered_map<const CfNode*, PageId> page_of;  // leaf-chain lookup
  std::function<PageId(const CfNode*)> write_node =
      [&](const CfNode* node) -> PageId {
    if (!failure.ok()) return kInvalidPageId;
    std::vector<double> buf;
    buf.push_back(kNodeMagic);
    buf.push_back(node->is_leaf ? 1.0 : 0.0);
    buf.push_back(static_cast<double>(node->size()));
    for (size_t i = 0; i < node->size(); ++i) {
      SerializeEntry(node->entries[i], tree.options().cf_storage, &buf);
      if (!node->is_leaf) {
        PageId child = write_node(node->children[i]);
        if (!failure.ok()) return kInvalidPageId;
        if (child > kMaxExactPageId) {
          // A double cannot carry this id exactly; refuse to write a
          // page that would decode to a different child.
          failure = Status::InvalidArgument(
              "page id " + std::to_string(child) +
              " exceeds the exact-double range of the node page format");
          return kInvalidPageId;
        }
        buf.push_back(static_cast<double>(child));
      }
    }
    if (buf.size() * sizeof(double) > store->page_size()) {
      failure = Status::Internal("serialized node exceeds page size");
      return kInvalidPageId;
    }
    auto id_or = store->Allocate();
    if (!id_or.ok()) {
      failure = id_or.status();
      return kInvalidPageId;
    }
    allocated.push_back(id_or.value());
    std::vector<uint8_t> page;
    PutDoubles(&page, buf);
    Status st = store->Write(id_or.value(), page);
    if (!st.ok()) {
      failure = st;
      return kInvalidPageId;
    }
    page_of[node] = id_or.value();
    return id_or.value();
  };

  TreeImage image;
  image.root = write_node(tree.root());
  if (failure.ok()) {
    // Record the leaf chain so Read can restore iteration order.
    for (const CfNode* leaf = tree.first_leaf(); leaf != nullptr;
         leaf = leaf->next) {
      auto it = page_of.find(leaf);
      if (it == page_of.end()) {
        failure = Status::Internal("leaf chain references an unwritten node");
        break;
      }
      image.leaf_chain.push_back(it->second);
    }
  }
  if (!failure.ok()) {
    // A partial image is useless and unreachable (children of the
    // failed node were never linked): return every page taken so far.
    for (PageId id : allocated) store->Free(id);
    return failure;
  }
  image.dim = dim;
  image.page_size = tree.options().page_size;
  image.cf = tree.options().cf;
  image.cf_storage = tree.options().cf_storage;
  image.threshold = tree.threshold();
  image.node_count = tree.node_count();
  image.leaf_entries = tree.leaf_entry_count();
  image.height = tree.height();
  return image;
}

StatusOr<std::unique_ptr<CfTree>> TreeIO::Read(const TreeImage& image,
                                               PageStore* store,
                                               const CfTreeOptions& options,
                                               MemoryTracker* mem) {
  if (image.root == kInvalidPageId) {
    return Status::InvalidArgument("invalid tree image");
  }
  if (options.cf != image.cf || options.cf_storage != image.cf_storage) {
    return Status::InvalidArgument(
        std::string("tree image was written with cf=") +
        CfRepresentationName(image.cf) + "/" +
        CfStorageName(image.cf_storage) + " but the caller configured cf=" +
        CfRepresentationName(options.cf) + "/" +
        CfStorageName(options.cf_storage));
  }
  CfTreeOptions opts = options;
  opts.dim = image.dim;
  opts.page_size = image.page_size;
  opts.threshold = image.threshold;

  auto tree = std::make_unique<CfTree>(opts, mem);
  // Drop the fresh root; we rebuild the node set from pages.
  tree->FreeNode(tree->root_);
  tree->root_ = nullptr;
  tree->first_leaf_ = nullptr;
  tree->node_count_ = 0;
  tree->leaf_entries_ = 0;

  Status failure = Status::OK();
  CfNode* chain_tail = nullptr;
  size_t max_depth = 0;
  std::vector<CfNode*> allocated;  // for cleanup on failure
  std::unordered_set<PageId> visited;  // cycle / duplicate-reference guard
  std::unordered_map<PageId, CfNode*> leaf_by_page;

  std::function<CfNode*(PageId, size_t)> read_node =
      [&](PageId id, size_t depth) -> CfNode* {
    if (!failure.ok()) return nullptr;
    if (!visited.insert(id).second) {
      failure = Status::Corruption("page " + std::to_string(id) +
                                   " referenced twice (cycle or shared "
                                   "child in tree image)");
      return nullptr;
    }
    std::vector<uint8_t> page;
    Status st = store->Read(id, &page);
    if (!st.ok()) {
      failure = st;
      return nullptr;
    }
    std::vector<double> buf = GetDoubles(page);
    if (buf.size() < 3 || buf[0] != kNodeMagic) {
      failure = Status::Corruption("page " + std::to_string(id) +
                                   " is not a CF tree node");
      return nullptr;
    }
    const bool is_leaf = buf[1] != 0.0;
    const size_t cf_doubles = EntryDoubles(image.dim, image.cf_storage);
    const size_t per_entry = cf_doubles + (is_leaf ? 0 : 1);
    // Validate the entry count before casting: a corrupt double here
    // must not become an out-of-range size_t (UB) or an overflowing
    // multiply below.
    const size_t max_count = (buf.size() - 3) / per_entry;
    if (!std::isfinite(buf[2]) || buf[2] < 0.0 ||
        buf[2] != std::floor(buf[2]) ||
        buf[2] > static_cast<double>(max_count)) {
      failure = Status::Corruption(
          "page " + std::to_string(id) +
          " carries an impossible CF node entry count");
      return nullptr;
    }
    const size_t count = static_cast<size_t>(buf[2]);

    CfNode* node = tree->AllocNode(is_leaf);
    allocated.push_back(node);
    size_t off = 3;
    for (size_t i = 0; i < count; ++i) {
      node->entries.push_back(DeserializeEntry(buf.data() + off, image.dim,
                                               image.cf, image.cf_storage));
      off += cf_doubles;
      if (!is_leaf) {
        PageId child;
        if (!DecodePageId(buf[off++], &child)) {
          failure = Status::Corruption("page " + std::to_string(id) +
                                       " stores an out-of-range child "
                                       "page id");
          return nullptr;
        }
        CfNode* child_node = read_node(child, depth + 1);
        if (!failure.ok()) return nullptr;
        node->children.push_back(child_node);
      }
    }
    if (is_leaf) {
      tree->leaf_entries_ += count;
      OBS_GAUGE_ADD("tree/leaf_entries", count);
      max_depth = std::max(max_depth, depth);
      leaf_by_page[id] = node;
      // Leaves are visited left-to-right: append to the chain. (When
      // the image carries an explicit leaf_chain this order is
      // provisional and gets relinked below.)
      node->prev = chain_tail;
      if (chain_tail) chain_tail->next = node;
      if (tree->first_leaf_ == nullptr) tree->first_leaf_ = node;
      chain_tail = node;
    }
    return node;
  };

  tree->root_ = read_node(image.root, 1);
  tree->height_ = max_depth;
  if (failure.ok() && (tree->node_count_ != image.node_count ||
                       tree->leaf_entries_ != image.leaf_entries ||
                       tree->height_ != image.height)) {
    failure = Status::Corruption("tree image metadata mismatch after read");
  }
  if (failure.ok() && !image.leaf_chain.empty()) {
    // Relink the chain in the recorded order (the live tree's chain
    // order, which traversal order does not preserve).
    if (image.leaf_chain.size() != leaf_by_page.size()) {
      failure = Status::Corruption(
          "tree image leaf chain does not match the leaf set");
    } else {
      std::unordered_set<PageId> seen;
      CfNode* prev = nullptr;
      tree->first_leaf_ = nullptr;
      for (PageId id : image.leaf_chain) {
        auto it = leaf_by_page.find(id);
        if (it == leaf_by_page.end() || !seen.insert(id).second) {
          failure = Status::Corruption(
              "tree image leaf chain references a page that is not a "
              "distinct leaf");
          break;
        }
        CfNode* n = it->second;
        n->prev = prev;
        n->next = nullptr;
        if (prev != nullptr) {
          prev->next = n;
        } else {
          tree->first_leaf_ = n;
        }
        prev = n;
      }
    }
  }
  if (!failure.ok()) {
    // Leave the tree destructible: free everything read so far and
    // restore an empty root.
    for (CfNode* n : allocated) {
      n->children.clear();  // ownership is flat via `allocated`
      tree->FreeNode(n);
    }
    OBS_GAUGE_ADD("tree/leaf_entries",
                  -static_cast<double>(tree->leaf_entries_));
    tree->leaf_entries_ = 0;
    tree->root_ = tree->AllocNode(/*leaf=*/true);
    tree->first_leaf_ = tree->root_;
    tree->height_ = 1;
    return failure;
  }
  return tree;
}

Status TreeIO::Release(const TreeImage& image, PageStore* store) {
  if (image.root == kInvalidPageId) return Status::OK();
  Status failure = Status::OK();
  std::unordered_set<PageId> visited;
  std::function<void(PageId)> release = [&](PageId id) {
    if (!failure.ok()) return;
    if (!visited.insert(id).second) {
      failure = Status::Corruption("page referenced twice in tree image");
      return;
    }
    std::vector<uint8_t> page;
    Status st = store->Read(id, &page);
    if (!st.ok()) {
      failure = st;
      return;
    }
    std::vector<double> buf = GetDoubles(page);
    if (buf.size() < 3 || buf[0] != kNodeMagic) {
      failure = Status::Corruption("page is not a CF tree node");
      return;
    }
    const bool is_leaf = buf[1] != 0.0;
    const size_t cf_doubles = EntryDoubles(image.dim, image.cf_storage);
    const size_t per_entry = cf_doubles + (is_leaf ? 0 : 1);
    const size_t max_count = (buf.size() - 3) / per_entry;
    if (!std::isfinite(buf[2]) || buf[2] < 0.0 ||
        buf[2] != std::floor(buf[2]) ||
        buf[2] > static_cast<double>(max_count)) {
      failure = Status::Corruption("impossible CF node entry count");
      return;
    }
    const size_t count = static_cast<size_t>(buf[2]);
    if (!is_leaf) {
      size_t off = 3;
      for (size_t i = 0; i < count; ++i) {
        off += cf_doubles;
        PageId child;
        if (!DecodePageId(buf[off++], &child)) {
          failure = Status::Corruption("out-of-range child page id");
          return;
        }
        release(child);
        if (!failure.ok()) return;
      }
    }
    failure = store->Free(id);
  };
  release(image.root);
  return failure;
}

}  // namespace birch
