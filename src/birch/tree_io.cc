#include "birch/tree_io.h"

#include <algorithm>
#include <cstring>
#include <functional>

namespace birch {

namespace {

void PutDoubles(std::vector<uint8_t>* page, const std::vector<double>& v) {
  page->resize(v.size() * sizeof(double));
  std::memcpy(page->data(), v.data(), page->size());
}

std::vector<double> GetDoubles(const std::vector<uint8_t>& page) {
  std::vector<double> v(page.size() / sizeof(double));
  std::memcpy(v.data(), page.data(), v.size() * sizeof(double));
  return v;
}

}  // namespace

StatusOr<TreeImage> TreeIO::Write(const CfTree& tree, PageStore* store) {
  if (store->page_size() < tree.options().page_size) {
    return Status::InvalidArgument(
        "store page smaller than the tree's node page");
  }
  const size_t dim = tree.options().dim;

  Status failure = Status::OK();
  std::function<PageId(const CfNode*)> write_node =
      [&](const CfNode* node) -> PageId {
    if (!failure.ok()) return kInvalidPageId;
    std::vector<double> buf;
    buf.push_back(kNodeMagic);
    buf.push_back(node->is_leaf ? 1.0 : 0.0);
    buf.push_back(static_cast<double>(node->size()));
    for (size_t i = 0; i < node->size(); ++i) {
      node->entries[i].SerializeTo(&buf);
      if (!node->is_leaf) {
        PageId child = write_node(node->children[i]);
        if (!failure.ok()) return kInvalidPageId;
        buf.push_back(static_cast<double>(child));
      }
    }
    if (buf.size() * sizeof(double) > store->page_size()) {
      failure = Status::Internal("serialized node exceeds page size");
      return kInvalidPageId;
    }
    auto id_or = store->Allocate();
    if (!id_or.ok()) {
      failure = id_or.status();
      return kInvalidPageId;
    }
    std::vector<uint8_t> page;
    PutDoubles(&page, buf);
    Status st = store->Write(id_or.value(), page);
    if (!st.ok()) {
      failure = st;
      return kInvalidPageId;
    }
    return id_or.value();
  };

  TreeImage image;
  image.root = write_node(tree.root());
  if (!failure.ok()) return failure;
  image.dim = dim;
  image.page_size = tree.options().page_size;
  image.threshold = tree.threshold();
  image.node_count = tree.node_count();
  image.leaf_entries = tree.leaf_entry_count();
  image.height = tree.height();
  return image;
}

StatusOr<std::unique_ptr<CfTree>> TreeIO::Read(const TreeImage& image,
                                               PageStore* store,
                                               const CfTreeOptions& options,
                                               MemoryTracker* mem) {
  if (image.root == kInvalidPageId) {
    return Status::InvalidArgument("invalid tree image");
  }
  CfTreeOptions opts = options;
  opts.dim = image.dim;
  opts.page_size = image.page_size;
  opts.threshold = image.threshold;

  auto tree = std::make_unique<CfTree>(opts, mem);
  // Drop the fresh root; we rebuild the node set from pages.
  tree->FreeNode(tree->root_);
  tree->root_ = nullptr;
  tree->first_leaf_ = nullptr;
  tree->node_count_ = 0;
  tree->leaf_entries_ = 0;

  Status failure = Status::OK();
  CfNode* chain_tail = nullptr;
  size_t max_depth = 0;
  std::vector<CfNode*> allocated;  // for cleanup on failure

  std::function<CfNode*(PageId, size_t)> read_node =
      [&](PageId id, size_t depth) -> CfNode* {
    if (!failure.ok()) return nullptr;
    std::vector<uint8_t> page;
    Status st = store->Read(id, &page);
    if (!st.ok()) {
      failure = st;
      return nullptr;
    }
    std::vector<double> buf = GetDoubles(page);
    if (buf.size() < 3 || buf[0] != kNodeMagic) {
      failure = Status::Internal("page " + std::to_string(id) +
                                 " is not a CF tree node");
      return nullptr;
    }
    const bool is_leaf = buf[1] != 0.0;
    const size_t count = static_cast<size_t>(buf[2]);
    const size_t cf_doubles = CfVector::SerializedDoubles(image.dim);
    const size_t per_entry = cf_doubles + (is_leaf ? 0 : 1);
    if (buf.size() < 3 + count * per_entry) {
      failure = Status::Internal("truncated CF tree node page");
      return nullptr;
    }

    CfNode* node = tree->AllocNode(is_leaf);
    allocated.push_back(node);
    size_t off = 3;
    for (size_t i = 0; i < count; ++i) {
      node->entries.push_back(CfVector::Deserialize(
          std::span<const double>(buf.data() + off, cf_doubles),
          image.dim));
      off += cf_doubles;
      if (!is_leaf) {
        PageId child = static_cast<PageId>(buf[off++]);
        CfNode* child_node = read_node(child, depth + 1);
        if (!failure.ok()) return nullptr;
        node->children.push_back(child_node);
      }
    }
    if (is_leaf) {
      tree->leaf_entries_ += count;
      max_depth = std::max(max_depth, depth);
      // Leaves are visited left-to-right: append to the chain.
      node->prev = chain_tail;
      if (chain_tail) chain_tail->next = node;
      if (tree->first_leaf_ == nullptr) tree->first_leaf_ = node;
      chain_tail = node;
    }
    return node;
  };

  tree->root_ = read_node(image.root, 1);
  tree->height_ = max_depth;
  if (failure.ok() && (tree->node_count_ != image.node_count ||
                       tree->leaf_entries_ != image.leaf_entries ||
                       tree->height_ != image.height)) {
    failure = Status::Internal("tree image metadata mismatch after read");
  }
  if (!failure.ok()) {
    // Leave the tree destructible: free everything read so far and
    // restore an empty root.
    for (CfNode* n : allocated) {
      n->children.clear();  // ownership is flat via `allocated`
      tree->FreeNode(n);
    }
    tree->leaf_entries_ = 0;
    tree->root_ = tree->AllocNode(/*leaf=*/true);
    tree->first_leaf_ = tree->root_;
    tree->height_ = 1;
    return failure;
  }
  return tree;
}

Status TreeIO::Release(const TreeImage& image, PageStore* store) {
  if (image.root == kInvalidPageId) return Status::OK();
  Status failure = Status::OK();
  std::function<void(PageId)> release = [&](PageId id) {
    if (!failure.ok()) return;
    std::vector<uint8_t> page;
    Status st = store->Read(id, &page);
    if (!st.ok()) {
      failure = st;
      return;
    }
    std::vector<double> buf = GetDoubles(page);
    if (buf.size() < 3 || buf[0] != kNodeMagic) {
      failure = Status::Internal("page is not a CF tree node");
      return;
    }
    const bool is_leaf = buf[1] != 0.0;
    const size_t count = static_cast<size_t>(buf[2]);
    const size_t cf_doubles = CfVector::SerializedDoubles(image.dim);
    if (!is_leaf) {
      size_t off = 3;
      for (size_t i = 0; i < count; ++i) {
        off += cf_doubles;
        release(static_cast<PageId>(buf[off++]));
        if (!failure.ok()) return;
      }
    }
    failure = store->Free(id);
  };
  release(image.root);
  return failure;
}

}  // namespace birch
