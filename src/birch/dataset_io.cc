#include "birch/dataset_io.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace birch {

bool ParseCsvNumericRow(const std::string& line, std::vector<double>* out) {
  out->clear();
  std::string field;
  auto flush = [&]() -> bool {
    if (field.empty()) return true;
    char* end = nullptr;
    double v = std::strtod(field.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(v);
    field.clear();
    return true;
  };
  for (char ch : line) {
    if (ch == '#') break;  // comment tail
    if (ch == ',' || ch == ' ' || ch == '\t' || ch == '\r') {
      if (!flush()) return false;
    } else {
      field += ch;
    }
  }
  return flush();
}

StatusOr<Dataset> ParseCsvPoints(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::vector<double> row;
  size_t dim = 0;
  size_t line_no = 0;
  bool saw_data = false;
  Dataset data(1);  // replaced once the arity is known

  while (std::getline(in, line)) {
    ++line_no;
    if (!ParseCsvNumericRow(line, &row)) {
      if (!saw_data) continue;  // header row
      return Status::InvalidArgument("unparsable row at line " +
                                     std::to_string(line_no));
    }
    if (row.empty()) continue;  // blank / comment-only line
    if (!saw_data) {
      dim = row.size();
      data = Dataset(dim);
      saw_data = true;
    } else if (row.size() != dim) {
      return Status::InvalidArgument(
          "row arity changed at line " + std::to_string(line_no) + " (" +
          std::to_string(row.size()) + " vs " + std::to_string(dim) + ")");
    }
    data.Append(row);
  }
  if (!saw_data) return Status::InvalidArgument("no data rows");
  return data;
}

StatusOr<Dataset> ReadCsvPoints(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseCsvPoints(buf.str());
}

CsvPointSource::CsvPointSource(std::string path, size_t dim)
    : path_(std::move(path)), dim_(dim), in_(path_) {}

StatusOr<std::unique_ptr<CsvPointSource>> CsvPointSource::Open(
    const std::string& path) {
  std::ifstream probe(path);
  if (!probe) return Status::IOError("cannot open " + path);
  // Sniff the dimensionality from the first parsable data row.
  std::string line;
  std::vector<double> row;
  size_t dim = 0;
  while (std::getline(probe, line)) {
    if (ParseCsvNumericRow(line, &row) && !row.empty()) {
      dim = row.size();
      break;
    }
  }
  if (dim == 0) return Status::InvalidArgument("no data rows in " + path);
  auto source =
      std::unique_ptr<CsvPointSource>(new CsvPointSource(path, dim));
  if (!source->in_) return Status::IOError("cannot reopen " + path);
  return source;
}

bool CsvPointSource::Next(std::span<double> out, double* weight) {
  std::string line;
  while (std::getline(in_, line)) {
    if (!ParseCsvNumericRow(line, &row_)) {
      if (!saw_data_) continue;  // leading header
      return false;              // malformed mid-file: stop the stream
    }
    if (row_.empty()) continue;
    if (row_.size() != dim_) return false;  // arity change: stop
    saw_data_ = true;
    std::copy(row_.begin(), row_.end(), out.begin());
    *weight = 1.0;
    return true;
  }
  return false;
}

Status CsvPointSource::Rewind() {
  in_.clear();
  in_.seekg(0);
  if (!in_) return Status::IOError("rewind failed for " + path_);
  saw_data_ = false;
  return Status::OK();
}

}  // namespace birch
