// Streaming point sources. BIRCH is a single-scan algorithm; nothing
// in Phases 1-3 requires the dataset to be resident. A PointSource
// yields points one at a time so arbitrarily large inputs (files,
// generators, cursors) can be clustered inside the fixed memory
// budget — the paper's "very large databases" setting made concrete.
// (Phase 4 refinement needs a second scan; ClusterSource() re-opens
// the source for it when the source is rewindable.)
#ifndef BIRCH_BIRCH_POINT_SOURCE_H_
#define BIRCH_BIRCH_POINT_SOURCE_H_

#include <algorithm>
#include <span>
#include <string>

#include "birch/dataset.h"
#include "util/status.h"

namespace birch {

/// Pull-based stream of weighted points.
class PointSource {
 public:
  virtual ~PointSource() = default;

  virtual size_t dim() const = 0;

  /// Fills `out` (size dim()) and `*weight`; returns false at end of
  /// stream. Must not fail mid-stream — sources that can (files)
  /// surface errors via their factory or Rewind().
  virtual bool Next(std::span<double> out, double* weight) = 0;

  /// Expected total points, 0 if unknown (threshold heuristic hint).
  virtual uint64_t SizeHint() const { return 0; }

  /// Restarts the stream from the beginning (for Phase-4 re-scans).
  /// Default: unsupported.
  virtual Status Rewind() {
    return Status::FailedPrecondition("source is not rewindable");
  }
};

/// Adapter over an in-memory Dataset (rewindable).
class DatasetSource : public PointSource {
 public:
  /// `data` must outlive the source.
  explicit DatasetSource(const Dataset* data) : data_(data) {}

  size_t dim() const override { return data_->dim(); }
  uint64_t SizeHint() const override { return data_->size(); }

  bool Next(std::span<double> out, double* weight) override {
    if (pos_ >= data_->size()) return false;
    auto row = data_->Row(pos_);
    std::copy(row.begin(), row.end(), out.begin());
    *weight = data_->Weight(pos_);
    ++pos_;
    return true;
  }

  Status Rewind() override {
    pos_ = 0;
    return Status::OK();
  }

 private:
  const Dataset* data_;
  size_t pos_ = 0;
};

}  // namespace birch

#endif  // BIRCH_BIRCH_POINT_SOURCE_H_
