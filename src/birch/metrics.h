// The five inter-cluster distance metrics of the paper (Sec. 3,
// Eq. 5-8), all computed exactly from CF vectors:
//
//   D0  centroid Euclidean distance
//   D1  centroid Manhattan distance
//   D2  average inter-cluster distance (RMS over cross pairs)
//   D3  average intra-cluster distance of the merged cluster
//       (= diameter of the union)
//   D4  variance-increase distance: sqrt of the growth in total squared
//       deviation caused by merging (Ward-style)
#ifndef BIRCH_BIRCH_METRICS_H_
#define BIRCH_BIRCH_METRICS_H_

#include <string>

#include "birch/cf_vector.h"

namespace birch {

/// Which inter-cluster distance to use (tree descent, closest-entry
/// search, and Phase 3 all take one of these).
enum class DistanceMetric { kD0 = 0, kD1, kD2, kD3, kD4 };

/// Parse/format helpers for CLI flags and bench labels.
const char* MetricName(DistanceMetric metric);

/// D0: Euclidean distance between centroids.
double CentroidEuclidean(const CfVector& a, const CfVector& b);

/// D1: Manhattan distance between centroids.
double CentroidManhattan(const CfVector& a, const CfVector& b);

/// D2^2 = SS1/N1 + SS2/N2 - 2*<LS1,LS2>/(N1*N2): the mean squared
/// distance over all cross pairs. Returns sqrt.
double AverageInterCluster(const CfVector& a, const CfVector& b);

/// D3: diameter of the merged cluster (average intra-cluster distance
/// over all pairs of the union).
double AverageIntraCluster(const CfVector& a, const CfVector& b);

/// D4: sqrt(SSE(union) - SSE(a) - SSE(b)) =
/// sqrt(N1*N2/(N1+N2)) * ||c1 - c2||. The increase in total squared
/// deviation caused by the merge.
double VarianceIncrease(const CfVector& a, const CfVector& b);

/// Dispatch on `metric`.
double Distance(DistanceMetric metric, const CfVector& a, const CfVector& b);

}  // namespace birch

#endif  // BIRCH_BIRCH_METRICS_H_
