#include "birch/run_report.h"

#include <cinttypes>
#include <cstdio>

namespace birch {

namespace {

/// FNV-1a 64-bit over bytes.
class Fnv1a {
 public:
  void Mix(std::string_view s) {
    for (unsigned char c : s) {
      h_ ^= c;
      h_ *= 0x100000001b3ULL;
    }
    Mix('|');  // field separator: "ab"+"c" != "a"+"bc"
  }
  void Mix(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    Mix(std::string_view(buf));
  }
  void Mix(uint64_t v) { Mix(std::string_view(std::to_string(v))); }
  void Mix(int64_t v) { Mix(std::string_view(std::to_string(v))); }
  void Mix(bool v) { Mix(std::string_view(v ? "1" : "0")); }
  uint64_t value() const { return h_; }

 private:
  void Mix(char c) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= 0x100000001b3ULL;
  }
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

void WriteOptions(JsonWriter* w, const BirchOptions& o) {
  w->BeginObject();
  w->KV("fingerprint", OptionsFingerprint(o));
  w->KV("dim", static_cast<uint64_t>(o.dim));
  w->KV("k", static_cast<int64_t>(o.k));
  w->KV("expected_points", o.expected_points);
  w->KV("seed", o.seed);
  w->Key("resources").BeginObject();
  w->KV("memory_bytes", static_cast<uint64_t>(o.resources.memory_bytes));
  w->KV("disk_bytes", static_cast<uint64_t>(o.resources.disk_bytes));
  w->KV("page_size", static_cast<uint64_t>(o.resources.page_size));
  w->KV("page_codec", PageCodecName(o.resources.page_codec));
  w->KV("hot_tier_bytes", static_cast<uint64_t>(o.resources.hot_tier_bytes));
  w->KV("checkpoint_every_n", o.resources.checkpoint_every_n);
  w->EndObject();
  w->Key("tree").BeginObject();
  w->KV("initial_threshold", o.tree.initial_threshold);
  w->KV("metric", static_cast<int64_t>(o.tree.metric));
  w->KV("threshold_kind", static_cast<int64_t>(o.tree.threshold_kind));
  w->KV("merging_refinement", o.tree.merging_refinement);
  w->KV("cf", static_cast<int64_t>(o.tree.cf));
  w->KV("cf_storage", static_cast<int64_t>(o.tree.cf_storage));
  w->EndObject();
  w->Key("outliers").BeginObject();
  w->KV("handling", o.outliers.handling);
  w->KV("fraction", o.outliers.fraction);
  w->KV("delay_split", o.outliers.delay_split);
  w->EndObject();
  w->Key("global_phase").BeginObject();
  w->KV("use_phase2", o.global_phase.use_phase2);
  w->KV("phase2_target_entries",
        static_cast<uint64_t>(o.global_phase.phase2_target_entries));
  w->KV("algorithm", static_cast<int64_t>(o.global_phase.algorithm));
  w->KV("metric", static_cast<int64_t>(o.global_phase.metric));
  w->KV("distance_limit", o.global_phase.distance_limit);
  w->EndObject();
  w->Key("refine").BeginObject();
  w->KV("passes", static_cast<int64_t>(o.refine.passes));
  w->KV("outlier_distance", o.refine.outlier_distance);
  w->EndObject();
  w->Key("exec").BeginObject();
  w->KV("num_threads", static_cast<int64_t>(o.exec.num_threads));
  w->KV("kernel", static_cast<int64_t>(o.exec.kernel));
  w->EndObject();
  w->Key("serving").BeginObject();
  w->KV("publish_every_n", o.serving.publish_every_n);
  w->KV("publish_k", static_cast<int64_t>(o.serving.publish_k));
  w->EndObject();
  w->Key("obs").BeginObject();
  w->KV("sample_every_ms", o.obs.sample_every_ms);
  w->KV("series_capacity", static_cast<uint64_t>(o.obs.series_capacity));
  w->EndObject();
  w->EndObject();
}

void WriteHistogram(JsonWriter* w, const obs::HistogramSnapshot& h) {
  w->BeginObject();
  w->KV("count", h.count);
  w->KV("sum", h.sum);
  w->KV("min", h.min);
  w->KV("max", h.max);
  w->KV("mean", h.Mean());
  w->KV("p50", h.Quantile(0.50));
  w->KV("p90", h.Quantile(0.90));
  w->KV("p99", h.Quantile(0.99));
  w->KV("p999", h.Quantile(0.999));
  w->EndObject();
}

void WriteMetrics(JsonWriter* w, const obs::MetricsSnapshot& m) {
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, v] : m.counters) w->KV(name, v);
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, v] : m.gauges) w->KV(name, v);
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, h] : m.histograms) {
    w->Key(name);
    WriteHistogram(w, h);
  }
  w->EndObject();
  w->Key("spans").BeginObject();
  for (const auto& [name, s] : m.spans) {
    w->Key(name).BeginObject();
    w->KV("count", s.count);
    w->KV("total_us", s.total_us);
    w->KV("max_us", s.max_us);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

void WriteTimeSeries(JsonWriter* w,
                     const std::vector<obs::TimeSeriesSnapshot>& series) {
  w->BeginArray();
  for (const auto& s : series) {
    w->BeginObject();
    w->KV("name", s.name);
    w->KV("dropped", s.dropped);
    w->Key("points").BeginArray();
    for (const auto& p : s.points) {
      w->BeginArray().Value(p.t_us).Value(p.value).EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace

uint64_t OptionsFingerprint(const BirchOptions& o) {
  Fnv1a f;
  f.Mix(static_cast<uint64_t>(o.dim));
  f.Mix(static_cast<int64_t>(o.k));
  f.Mix(o.expected_points);
  f.Mix(o.seed);
  f.Mix(static_cast<uint64_t>(o.resources.memory_bytes));
  f.Mix(static_cast<uint64_t>(o.resources.disk_bytes));
  f.Mix(static_cast<uint64_t>(o.resources.page_size));
  f.Mix(static_cast<int64_t>(o.resources.page_codec));
  f.Mix(static_cast<uint64_t>(o.resources.hot_tier_bytes));
  f.Mix(o.resources.fault.read_transient_rate);
  f.Mix(o.resources.fault.write_transient_rate);
  f.Mix(o.resources.fault.page_loss_rate);
  f.Mix(o.resources.fault.bit_flip_rate);
  f.Mix(o.resources.fault.seed);
  f.Mix(static_cast<int64_t>(o.resources.io_retry.max_attempts));
  f.Mix(o.resources.io_retry.backoff_initial_us);
  f.Mix(o.resources.io_retry.backoff_max_us);
  f.Mix(o.resources.checkpoint_every_n);
  f.Mix(o.tree.initial_threshold);
  f.Mix(static_cast<int64_t>(o.tree.metric));
  f.Mix(static_cast<int64_t>(o.tree.threshold_kind));
  f.Mix(o.tree.merging_refinement);
  f.Mix(static_cast<int64_t>(o.tree.cf));
  f.Mix(static_cast<int64_t>(o.tree.cf_storage));
  f.Mix(o.outliers.handling);
  f.Mix(o.outliers.fraction);
  f.Mix(o.outliers.delay_split);
  f.Mix(o.global_phase.use_phase2);
  f.Mix(static_cast<uint64_t>(o.global_phase.phase2_target_entries));
  f.Mix(static_cast<int64_t>(o.global_phase.algorithm));
  f.Mix(static_cast<int64_t>(o.global_phase.metric));
  f.Mix(o.global_phase.distance_limit);
  f.Mix(static_cast<int64_t>(o.refine.passes));
  f.Mix(o.refine.outlier_distance);
  f.Mix(static_cast<int64_t>(o.exec.num_threads));
  f.Mix(static_cast<int64_t>(o.exec.kernel));
  f.Mix(o.serving.publish_every_n);
  f.Mix(static_cast<int64_t>(o.serving.publish_k));
  // options.obs deliberately excluded: telemetry cadence must never
  // make two otherwise-identical runs incomparable.
  return f.value();
}

std::string RunReportJson(const RunReportInputs& in) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema", kRunReportSchema);
  w.KV("schema_version", kRunReportSchemaVersion);

  w.Key("status").BeginObject();
  w.KV("ok", in.status.ok());
  w.KV("code", Status::CodeName(in.status.code()));
  w.KV("message", in.status.message());
  w.EndObject();

  if (in.options != nullptr) {
    w.Key("options");
    WriteOptions(&w, *in.options);
  }

  w.Key("dataset").BeginObject();
  w.KV("name", in.dataset_name);
  w.KV("points", in.dataset_points);
  w.KV("dim", static_cast<uint64_t>(in.dataset_dim));
  w.EndObject();

  if (in.result != nullptr) {
    const BirchResult& r = *in.result;
    w.Key("timings").BeginObject();
    w.KV("phase1_seconds", r.timings.phase1);
    w.KV("phase2_seconds", r.timings.phase2);
    w.KV("phase3_seconds", r.timings.phase3);
    w.KV("phase4_seconds", r.timings.phase4);
    w.KV("total_seconds", r.timings.Total());
    w.EndObject();

    w.Key("summary").BeginObject();
    w.KV("clusters", static_cast<uint64_t>(r.clusters.size()));
    w.KV("final_threshold", r.final_threshold);
    w.KV("points_added", r.phase1.points_added);
    w.KV("rebuilds", r.phase1.rebuilds);
    w.KV("phase2_rounds", static_cast<int64_t>(r.phase2.rounds));
    w.KV("leaf_entries_after_phase1",
         static_cast<uint64_t>(r.leaf_entries_after_phase1));
    w.KV("leaf_entries_after_phase2",
         static_cast<uint64_t>(r.leaf_entries_after_phase2));
    w.KV("tree_nodes", static_cast<uint64_t>(r.tree_nodes));
    w.KV("peak_memory_bytes", static_cast<uint64_t>(r.peak_memory_bytes));
    w.KV("disk_pages_written", r.disk_pages_written);
    w.KV("disk_pages_read", r.disk_pages_read);
    w.KV("disk_raw_bytes", r.disk_raw_bytes);
    w.KV("disk_stored_bytes", r.disk_stored_bytes);
    w.KV("disk_compression_ratio",
         r.disk_stored_bytes > 0
             ? static_cast<double>(r.disk_raw_bytes) /
                   static_cast<double>(r.disk_stored_bytes)
             : 1.0);
    w.KV("disk_hot_hits", r.disk_hot_hits);
    w.KV("disk_hot_misses", r.disk_hot_misses);
    w.KV("disk_hot_demotions", r.disk_hot_demotions);
    w.KV("outlier_points", r.outlier_points);
    w.KV("distance_comparisons", r.tree_stats.distance_comparisons);
    w.EndObject();

    w.Key("robustness").BeginObject();
    w.KV("transient_io_errors", r.robustness.transient_io_errors);
    w.KV("io_retries", r.robustness.io_retries);
    w.KV("simulated_backoff_us", r.robustness.simulated_backoff_us);
    w.KV("checksum_failures", r.robustness.checksum_failures);
    w.KV("pages_lost", r.robustness.pages_lost);
    w.KV("records_lost", r.robustness.records_lost);
    w.KV("degradation_events", r.robustness.degradation_events);
    w.KV("fallback_absorbed", r.robustness.fallback_absorbed);
    w.KV("fallback_dropped", r.robustness.fallback_dropped);
    w.KV("outlier_disk_disabled", r.robustness.outlier_disk_disabled);
    w.EndObject();

    w.Key("metrics");
    WriteMetrics(&w, r.metrics);
  }

  if (!in.quality.empty()) {
    w.Key("quality").BeginObject();
    for (const auto& [name, v] : in.quality) w.KV(name, v);
    w.EndObject();
  }

  if (!in.serving.empty()) {
    w.Key("serving").BeginObject();
    for (const auto& [name, v] : in.serving) w.KV(name, v);
    w.EndObject();
  }

  // Result-attached series win; the standalone vector covers failed
  // runs whose sampler outlived the clusterer.
  const std::vector<obs::TimeSeriesSnapshot>& series =
      (in.result != nullptr && !in.result->timeseries.empty())
          ? in.result->timeseries
          : in.timeseries;
  w.Key("timeseries");
  WriteTimeSeries(&w, series);

  w.EndObject();
  return w.str();
}

Status WriteRunReport(const std::string& path, const RunReportInputs& in) {
  if (in.options == nullptr) {
    return Status::InvalidArgument("run report requires options");
  }
  return WriteFileAtomic(path, RunReportJson(in));
}

StatusOr<JsonValue> ReadRunReport(const std::string& path) {
  auto doc_or = JsonValue::ParseFile(path);
  if (!doc_or.ok()) return doc_or.status();
  JsonValue doc = std::move(doc_or).ValueOrDie();
  if (!doc.is_object()) {
    return Status::InvalidArgument(path + ": run report must be an object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value() != kRunReportSchema) {
    return Status::InvalidArgument(
        path + ": not a " + std::string(kRunReportSchema) + " document");
  }
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int64_t>(version->number()) != kRunReportSchemaVersion) {
    return Status::InvalidArgument(
        path + ": unsupported schema_version (this reader knows " +
        std::to_string(kRunReportSchemaVersion) + ")");
  }
  return doc;
}

void RegisterBirchProbes(obs::StatsSampler* sampler) {
  sampler->AddGaugeProbe("tree/nodes");
  sampler->AddGaugeProbe("tree/leaf_entries");
  sampler->AddGaugeProbe("tree/threshold");
  sampler->AddGaugeProbe("phase1/threshold");
  sampler->AddGaugeProbe("mem/used_bytes");
  sampler->AddGaugeProbe("pagestore/used_bytes");
  sampler->AddGaugeProbe("pagestore/hot_bytes");
  sampler->AddGaugeProbe("pagestore/compression_ratio");
  sampler->AddCounterProbe("phase1/points");
  sampler->AddCounterProbe("pagestore/pages_written");
  sampler->AddCounterProbe("pagestore/pages_read");
  sampler->AddCounterProbe("pagestore/compressed_bytes");
  sampler->AddCounterProbe("pagestore/hot_hits");
  sampler->AddCounterProbe("pagestore/hot_misses");
  sampler->AddCounterProbe("pagestore/hot_demotions");
  sampler->AddCounterProbe("spill/records_appended");
  sampler->AddCounterProbe("tree/rebuilds");
}

}  // namespace birch
