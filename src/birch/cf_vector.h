// Clustering Feature (CF) vector — the paper's core summary structure
// (Sec. 4.1), with a runtime-selectable representation policy:
//
//   kClassic  the paper's triple (N, LS, SS): point count, linear sum,
//             and scalar sum of squared norms. Radius/diameter are
//             differences of large near-equal sums (Eq. 1-2) and
//             suffer catastrophic cancellation far from the origin;
//             a BETULA-style guard clamps the noise floor.
//   kBetula   the BETULA triple (N, mean, S) of Lang & Schubert 2020
//             (arxiv 2006.12881): the running mean and the sum of
//             squared deviations from it, maintained with Welford-
//             style point updates and Chan-style merges. Radius
//             (S/N), diameter (2S/(N-1)) and the D0-D4 distances are
//             sums of non-negative terms — no cancellation, ever.
//
// Both representations obey the CF Additivity Theorem (CF1 + CF2 = CF
// of the union), so the whole BIRCH pipeline works unchanged on
// either; they serialize to the same (N, vec[d], scalar) wire layout.
//
// Storage policy: kF64 keeps full doubles. kF32 rounds the vector and
// scalar components through float after every mutation ("quantize
// after mutate"), so a CF behaves exactly as if its state were stored
// in 4-byte floats — half the node memory (CfLayout doubles B and L).
// Only accepted with kBetula: mean/deviation survive float rounding
// gracefully (relative error ~1e-7 of local values), whereas float32
// (N, LS, SS) would lose the radius entirely to cancellation.
//
// N is stored as a double so that weighted points (e.g. the paper's
// image application, which weights the two bands) are supported; it is
// never quantized.
#ifndef BIRCH_BIRCH_CF_VECTOR_H_
#define BIRCH_BIRCH_CF_VECTOR_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace birch {

/// Which CF algebra a CfVector (and everything built from it: kernel
/// scratch, tree pages, checkpoints) uses. A runtime policy like
/// KernelKind: the two variants never mix within one pipeline.
enum class CfRepresentation { kClassic = 0, kBetula };

/// Precision of the stored vector/scalar components. kF32 is only
/// valid together with CfRepresentation::kBetula (see above).
enum class CfStorage { kF64 = 0, kF32 };

/// Parse/format helpers for CLI flags, bench labels and error text.
const char* CfRepresentationName(CfRepresentation rep);
const char* CfStorageName(CfStorage storage);

/// Additive summary of a set of d-dimensional points.
class CfVector {
 public:
  CfVector() = default;

  /// Empty CF of dimension `dim` under the given policies.
  explicit CfVector(size_t dim,
                    CfRepresentation rep = CfRepresentation::kClassic,
                    CfStorage storage = CfStorage::kF64)
      : vec_(dim, 0.0), rep_(rep), storage_(storage) {
    assert(storage == CfStorage::kF64 || rep == CfRepresentation::kBetula);
  }

  /// CF of a single (optionally weighted) point.
  static CfVector FromPoint(std::span<const double> x, double weight = 1.0,
                            CfRepresentation rep = CfRepresentation::kClassic,
                            CfStorage storage = CfStorage::kF64);

  /// Re-initializes this CF to a single (optionally weighted) point,
  /// reusing the existing storage and keeping the representation and
  /// storage policies: the allocation-free FromPoint, bitwise-identical
  /// result. Used on the per-point insert hot path.
  void AssignPoint(std::span<const double> x, double weight = 1.0);

  /// Dimensionality (0 for a default-constructed CF).
  size_t dim() const { return vec_.size(); }

  /// Number of points (total weight) summarized.
  double n() const { return n_; }

  CfRepresentation rep() const { return rep_; }
  CfStorage storage() const { return storage_; }

  /// Linear sum per dimension (classic representation only).
  std::span<const double> ls() const {
    assert(rep_ == CfRepresentation::kClassic);
    return vec_;
  }

  /// Scalar sum of squared norms sum_i ||x_i||^2 (classic only).
  double ss() const {
    assert(rep_ == CfRepresentation::kClassic);
    return scalar_;
  }

  /// Running mean per dimension (BETULA representation only).
  std::span<const double> mean() const {
    assert(rep_ == CfRepresentation::kBetula);
    return vec_;
  }

  /// Representation-neutral raw state, for serialization, scratch
  /// layouts and structural comparison. Meaning depends on rep():
  /// LS / SS for kClassic, mean / sum-of-squared-deviations for
  /// kBetula.
  std::span<const double> raw_vec() const { return vec_; }
  double raw_scalar() const { return scalar_; }

  bool empty() const { return n_ <= 0.0; }

  /// CF Additivity Theorem: accumulate another CF. An empty CF adopts
  /// the other's representation and storage policies (so accumulators
  /// constructed default-classic merge correctly into either world).
  void Add(const CfVector& other);

  /// Remove a CF previously added (used by merging refinement and
  /// Phase 4 re-assignment). Caller guarantees `other` is a subset.
  void Subtract(const CfVector& other);

  /// Accumulate a single weighted point.
  void AddPoint(std::span<const double> x, double weight = 1.0);

  /// Returns the union CF of two clusters.
  static CfVector Merged(const CfVector& a, const CfVector& b);

  /// Centroid X0 (LS/N classic, the mean itself for BETULA). Undefined
  /// for empty CFs (returns zeros).
  std::vector<double> Centroid() const;

  /// Writes the centroid into `out` (resized to dim()).
  void CentroidInto(std::vector<double>* out) const;

  /// Squared radius R^2 (Eq. 1): SS/N - ||LS/N||^2 classic (guarded
  /// against cancellation), S/N for BETULA (non-negative by
  /// construction).
  double SquaredRadius() const;

  /// Radius R: average distance from member points to the centroid.
  double Radius() const;

  /// Squared diameter D^2 (Eq. 2): 2(N*SS - ||LS||^2)/(N(N-1)) classic
  /// (guarded), 2S/(N-1) for BETULA. Zero when N <= 1.
  double SquaredDiameter() const;

  /// Diameter D: average pairwise distance within the cluster.
  double Diameter() const;

  /// Total squared deviation from the centroid: N * R^2. Classic
  /// computes SS - ||LS||^2/N (guarded); BETULA stores it directly.
  /// This is the cluster's contribution to the k-means SSE objective.
  double SumSquaredDeviation() const;

  // --- Serialization: (N, vec[0..d), scalar), i.e. dim()+2 doubles.
  // The same wire layout for both representations; the reader must
  // know the representation (it is part of every persistent
  // fingerprint: TreeImage, BIRCHCP1 header). ---

  /// Number of doubles in the serialized form for dimension `dim`.
  static size_t SerializedDoubles(size_t dim) { return dim + 2; }

  /// Appends the serialized form to `out`.
  void SerializeTo(std::vector<double>* out) const;

  /// Reads a CF of dimension `dim` from `in` (must have dim+2
  /// doubles) under the given policies.
  static CfVector Deserialize(std::span<const double> in, size_t dim,
                              CfRepresentation rep = CfRepresentation::kClassic,
                              CfStorage storage = CfStorage::kF64);

  bool operator==(const CfVector& other) const = default;

 private:
  /// kF32 storage: round the stored components through float after a
  /// mutation, as if the backing arrays were 4-byte floats. N is
  /// exempt (counts stay exact).
  void QuantizeStorage() {
    if (storage_ != CfStorage::kF32) return;
    for (double& v : vec_) v = static_cast<double>(static_cast<float>(v));
    scalar_ = static_cast<double>(static_cast<float>(scalar_));
  }

  double n_ = 0.0;
  /// LS (classic) or the running mean (BETULA).
  std::vector<double> vec_;
  /// SS (classic) or the sum of squared deviations S (BETULA).
  double scalar_ = 0.0;
  CfRepresentation rep_ = CfRepresentation::kClassic;
  CfStorage storage_ = CfStorage::kF64;
};

}  // namespace birch

#endif  // BIRCH_BIRCH_CF_VECTOR_H_
