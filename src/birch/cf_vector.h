// Clustering Feature (CF) vector — the paper's core summary structure
// (Sec. 4.1). A CF is the triple (N, LS, SS): the number of points, the
// linear sum of the points, and the scalar sum of squared norms. The CF
// Additivity Theorem (CF1 + CF2 = CF of the union) makes CFs composable
// summaries from which centroid, radius, diameter and the inter-cluster
// distances D0-D4 are all computable exactly.
//
// N is stored as a double so that weighted points (e.g. the paper's
// image application, which weights the two bands) are supported.
#ifndef BIRCH_BIRCH_CF_VECTOR_H_
#define BIRCH_BIRCH_CF_VECTOR_H_

#include <cstddef>
#include <span>
#include <vector>

namespace birch {

/// Additive summary of a set of d-dimensional points.
class CfVector {
 public:
  CfVector() = default;

  /// Empty CF of dimension `dim`.
  explicit CfVector(size_t dim) : ls_(dim, 0.0) {}

  /// CF of a single (optionally weighted) point.
  static CfVector FromPoint(std::span<const double> x, double weight = 1.0);

  /// Re-initializes this CF to a single (optionally weighted) point,
  /// reusing the existing LS storage: the allocation-free FromPoint,
  /// bitwise-identical result. Used on the per-point insert hot path.
  void AssignPoint(std::span<const double> x, double weight = 1.0);

  /// Dimensionality (0 for a default-constructed CF).
  size_t dim() const { return ls_.size(); }

  /// Number of points (total weight) summarized.
  double n() const { return n_; }

  /// Linear sum per dimension.
  std::span<const double> ls() const { return ls_; }

  /// Scalar sum of squared norms: sum_i ||x_i||^2.
  double ss() const { return ss_; }

  bool empty() const { return n_ <= 0.0; }

  /// CF Additivity Theorem: accumulate another CF.
  void Add(const CfVector& other);

  /// Remove a CF previously added (used by merging refinement and
  /// Phase 4 re-assignment). Caller guarantees `other` is a subset.
  void Subtract(const CfVector& other);

  /// Accumulate a single weighted point.
  void AddPoint(std::span<const double> x, double weight = 1.0);

  /// Returns the union CF of two clusters.
  static CfVector Merged(const CfVector& a, const CfVector& b);

  /// Centroid X0 = LS / N. Undefined for empty CFs (returns zeros).
  std::vector<double> Centroid() const;

  /// Writes the centroid into `out` (resized to dim()).
  void CentroidInto(std::vector<double>* out) const;

  /// Squared radius R^2 = SS/N - ||LS/N||^2 (Eq. 1), clamped >= 0.
  double SquaredRadius() const;

  /// Radius R: average distance from member points to the centroid.
  double Radius() const;

  /// Squared diameter D^2 = 2(N*SS - ||LS||^2) / (N(N-1)) (Eq. 2),
  /// clamped >= 0. Zero when N <= 1.
  double SquaredDiameter() const;

  /// Diameter D: average pairwise distance within the cluster.
  double Diameter() const;

  /// Total squared deviation from the centroid: N * R^2 = SS - ||LS||^2/N.
  /// This is the cluster's contribution to the k-means SSE objective.
  double SumSquaredDeviation() const;

  // --- Serialization: (N, LS[0..d), SS), i.e. dim()+2 doubles. ---

  /// Number of doubles in the serialized form for dimension `dim`.
  static size_t SerializedDoubles(size_t dim) { return dim + 2; }

  /// Appends the serialized form to `out`.
  void SerializeTo(std::vector<double>* out) const;

  /// Reads a CF of dimension `dim` from `in` (must have dim+2 doubles).
  static CfVector Deserialize(std::span<const double> in, size_t dim);

  bool operator==(const CfVector& other) const = default;

 private:
  double n_ = 0.0;
  std::vector<double> ls_;
  double ss_ = 0.0;
};

}  // namespace birch

#endif  // BIRCH_BIRCH_CF_VECTOR_H_
