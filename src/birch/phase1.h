// Phase 1 (Fig. 2 of the paper): scan the data once, building an
// in-memory CF tree under a hard memory budget. When the budget is
// exceeded the tree is rebuilt with a larger threshold; during rebuilds
// low-density leaf entries are optionally written to the (simulated)
// outlier disk and periodically re-absorbed; the delay-split option
// spills points that would force a split to disk instead of rebuilding
// immediately, squeezing more data into the current tree.
#ifndef BIRCH_BIRCH_PHASE1_H_
#define BIRCH_BIRCH_PHASE1_H_

#include <memory>
#include <vector>

#include "birch/cf_tree.h"
#include "birch/dataset.h"
#include "birch/threshold.h"
#include "birch/tree_io.h"
#include "pagestore/memory_tracker.h"
#include "pagestore/page_store.h"
#include "pagestore/spill_file.h"
#include "util/status.h"

namespace birch {

/// Phase-1 configuration. The defaults mirror the paper's Table 2
/// (M = 80 KB, P = 1 KB, R = 20% of M, T0 = 0, outlier = entry with
/// fewer than 25% of the average points per leaf entry).
struct Phase1Options {
  CfTreeOptions tree;
  size_t memory_budget_bytes = 80 * 1024;
  /// 0 = no outlier disk: spill-dependent options run in the in-tree
  /// fallback from the start (see RobustnessStats).
  size_t disk_budget_bytes = 16 * 1024;
  bool outlier_handling = true;
  double outlier_fraction = 0.25;
  bool delay_split = true;
  uint64_t expected_points = 0;  // N when known (threshold heuristic)
  /// Fault injection for the outlier disk; default injects nothing.
  FaultOptions fault;
  /// Retry policy for transient outlier-disk errors.
  RetryPolicy retry;
  /// Per-page compression for the outlier disk (effective budget
  /// R x ratio) and DRAM budget for its decompressed hot tier. See
  /// PageStoreOptions.
  PageCodecKind page_codec = PageCodecKind::kNone;
  size_t hot_tier_bytes = 0;
};

/// Counters exposed to the benchmarks and EXPERIMENTS.md.
struct Phase1Stats {
  uint64_t points_added = 0;
  uint64_t rebuilds = 0;
  uint64_t outlier_entries_spilled = 0;
  uint64_t outlier_entries_reabsorbed = 0;
  uint64_t points_delay_spilled = 0;
  uint64_t reabsorb_cycles = 0;
  uint64_t forced_inserts = 0;  // disk full fallbacks
  double final_threshold = 0.0;
};

/// Fault-tolerance accounting for one run: what the storage stack
/// absorbed (retries, checksum catches) and what Phase 1 had to do
/// about it (degradation to the in-tree fallback, records lost).
struct RobustnessStats {
  /// Transient IOErrors observed on the outlier disk (before retry).
  uint64_t transient_io_errors = 0;
  /// Retry attempts made after transient errors.
  uint64_t io_retries = 0;
  /// Simulated backoff time spent in those retries.
  uint64_t simulated_backoff_us = 0;
  /// Reads that failed CRC32C verification (bit rot caught).
  uint64_t checksum_failures = 0;
  /// Pages skipped by drains (lost, corrupt, or unreadable).
  uint64_t pages_lost = 0;
  /// Spill records inside those pages — gone, exactly counted.
  uint64_t records_lost = 0;
  /// Times Phase 1 degraded: an unrecoverable spill failure switched it
  /// to the in-tree fallback, or a drain came back with data missing.
  uint64_t degradation_events = 0;
  /// Entries the in-tree fallback absorbed at the current threshold.
  uint64_t fallback_absorbed = 0;
  /// Entries the fallback sent straight to the final outlier list.
  uint64_t fallback_dropped = 0;
  /// True when the run ended with the outlier disk out of service
  /// (disk_budget_bytes == 0, or disabled mid-run after a failure).
  bool outlier_disk_disabled = false;
};

/// Complete mid-stream state of a Phase1Builder, in plain values: the
/// serialized CF tree (TreeIO page images), pending spill records,
/// threshold history, counters, and the fault injector's RNG. Freeze()
/// produces one without disturbing the live builder; Thaw() turns one
/// back into a builder that continues exactly where the original was.
/// The checkpoint file format is a framed, checksummed encoding of this
/// struct (see birch/checkpoint.h).
struct Phase1Freeze {
  TreeImage image;
  /// Node pages in TreeIO id order (page i of the staging store).
  std::vector<std::vector<uint8_t>> tree_pages;
  /// Pending spill records (flattened CF serializations, append order).
  std::vector<double> outlier_records;
  std::vector<double> delayed_records;
  std::vector<ThresholdHeuristic::Observation> threshold_history;
  std::vector<CfVector> final_outliers;
  Phase1Stats stats;
  /// Aggregate robustness() at freeze time; becomes the restored
  /// builder's baseline (its fresh storage stack restarts from zero).
  RobustnessStats robustness;
  bool delay_mode = false;
  bool disk_enabled = true;
  /// Fault-injector stream, captured before the freeze's own reads so a
  /// restored run fails exactly where the uninterrupted one would.
  RngState fault_rng;
  FaultStats fault_stats;
};

/// Single-scan builder. Usage: Add() every point, then Finish() exactly
/// once; afterwards tree() holds the condensed summary and
/// final_outliers() the entries that never fit anywhere.
class Phase1Builder {
 public:
  explicit Phase1Builder(const Phase1Options& options);

  Phase1Builder(const Phase1Builder&) = delete;
  Phase1Builder& operator=(const Phase1Builder&) = delete;

  /// Inserts one (optionally weighted) point.
  Status Add(std::span<const double> x, double weight = 1.0);

  /// Batch insert: `n` points packed row-major in `xs` (exactly
  /// n * dim doubles), with optional per-point `weights` (empty =
  /// every point weighs 1.0). Arithmetic-identical to calling Add()
  /// on each row in order — same tree, bitwise — but hoists the
  /// per-call validation and counter traffic out of the loop and
  /// keeps the per-insert scan scratch hot. Validation failures
  /// (sizes, non-positive weights) reject the whole batch before any
  /// point is ingested.
  Status AddBatch(std::span<const double> xs, size_t n,
                  std::span<const double> weights = {});

  /// Convenience: one AddBatch() over `data`'s row-major storage.
  Status AddDataset(const Dataset& data);

  /// Flushes delay-split points and re-absorbs outliers. Must be called
  /// exactly once, after the last Add().
  Status Finish();

  const CfTree& tree() const { return *tree_; }
  CfTree* mutable_tree() { return tree_.get(); }
  const Phase1Stats& stats() const { return stats_; }
  const MemoryTracker& memory() const { return mem_; }
  const PageStore& disk() const { return disk_; }

  /// Aggregated fault-tolerance counters (storage stack + builder).
  RobustnessStats robustness() const;

  /// Entries judged outliers that could not be re-absorbed at Finish().
  const std::vector<CfVector>& final_outliers() const {
    return final_outliers_;
  }

  /// Captures the builder's complete mid-stream state without changing
  /// it (the tree is serialized into a private staging store; spill
  /// files are peeked, not drained). FailedPrecondition after Finish().
  StatusOr<Phase1Freeze> Freeze();

  /// Reconstructs a builder from a freeze. `options` supplies the
  /// runtime knobs and budgets and must agree with the freeze on dim
  /// and page size; the tree threshold comes from the freeze. The
  /// thawed builder's CfTree op counters restart from zero (they are
  /// diagnostics, not state), and its PageStore IoStats likewise.
  static StatusOr<std::unique_ptr<Phase1Builder>> Thaw(
      const Phase1Options& options, const Phase1Freeze& freeze);

 private:
  /// Inserts the point already staged in point_cf_ (delay-mode spill
  /// logic included) — the shared tail of Add() and AddBatch().
  Status IngestPointCf();

  /// Called when the tree exceeds the memory budget after an insert.
  Status HandleMemoryExhaustion();

  /// Rebuilds the tree with the heuristic's next threshold, spilling
  /// low-density entries to the outlier disk.
  Status RebuildLarger();

  /// Drains the outlier disk, re-inserting entries that fit without a
  /// split and re-spilling the rest.
  Status ReabsorbOutliers(bool final_pass);

  /// Spills `e` to the outlier disk; on OutOfDisk falls back to a
  /// forced tree insert so progress is always made, and on an
  /// unrecoverable device failure degrades to the in-tree fallback.
  Status SpillOutlierEntry(const CfVector& e);

  /// In-tree fallback for one outlier entry when the disk is out of
  /// service: absorb at the current threshold if possible, otherwise
  /// drop to the final outlier list with accounting.
  void FallbackOutlierEntry(const CfVector& e);

  /// Takes the outlier disk out of service after an unrecoverable
  /// failure: salvages whatever both spill files still hold (re-absorb
  /// or drop outlier entries, replay delayed points) and routes all
  /// future spills through the in-tree fallback.
  Status DegradeOutlierDisk();

  /// Records drain-loss accounting (degradation event per lossy drain).
  void NoteDrainLoss(const DrainReport& report);

  /// True for errors the spill layer could not recover from (transient
  /// budget exhausted, or data demonstrably gone).
  static bool IsUnrecoverableDiskError(const Status& st) {
    return st.code() == StatusCode::kIOError ||
           st.code() == StatusCode::kDataLoss;
  }

  double OutlierWeightThreshold() const;

  Phase1Options options_;
  MemoryTracker mem_;
  PageStore disk_;
  SpillFile outlier_entries_;
  SpillFile delayed_points_;
  std::unique_ptr<CfTree> tree_;
  ThresholdHeuristic heuristic_;
  Phase1Stats stats_;
  RobustnessStats robust_;  // degradation counters; rest merged on read
  std::vector<CfVector> final_outliers_;
  /// Reused per-point CF (Add is not reentrant): avoids a malloc/free
  /// pair per point on the Phase-1 hot path.
  CfVector point_cf_;
  bool delay_mode_ = false;
  bool finished_ = false;
  /// False when there is no outlier disk (budget 0) or it failed
  /// unrecoverably; spills then use the in-tree fallback.
  bool disk_enabled_ = true;
};

}  // namespace birch

#endif  // BIRCH_BIRCH_PHASE1_H_
