#include "birch/birch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "birch/checkpoint.h"
#include "birch/phase1_parallel.h"
#include "birch/run_report.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "exec/thread_pool.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/math.h"
#include "util/timer.h"

namespace birch {

namespace {

CfTreeOptions TreeOptionsFrom(const BirchOptions& o) {
  CfTreeOptions t;
  t.dim = o.dim;
  t.page_size = o.resources.page_size;
  t.threshold = o.tree.initial_threshold;
  t.metric = o.tree.metric;
  t.threshold_kind = o.tree.threshold_kind;
  t.merging_refinement = o.tree.merging_refinement;
  t.cf = o.tree.cf;
  t.cf_storage = o.tree.cf_storage;
  t.kernel = o.exec.kernel;
  return t;
}

serving::SnapshotBuildOptions SnapshotOptionsFrom(const BirchOptions& o,
                                                 uint64_t points_ingested) {
  serving::SnapshotBuildOptions s;
  s.k = o.serving.publish_k > 0 ? o.serving.publish_k : o.k;
  s.distance_limit = o.global_phase.distance_limit;
  s.algorithm = o.global_phase.algorithm;
  s.metric = o.global_phase.metric;
  s.seed = o.seed;
  s.kernel = o.exec.kernel;
  s.points_ingested = points_ingested;
  return s;
}

Phase1Options Phase1OptionsFrom(const BirchOptions& o) {
  Phase1Options p;
  p.tree = TreeOptionsFrom(o);
  p.memory_budget_bytes = o.resources.memory_bytes;
  p.disk_budget_bytes = o.resources.disk_bytes;
  p.outlier_handling = o.outliers.handling;
  p.outlier_fraction = o.outliers.fraction;
  p.delay_split = o.outliers.delay_split;
  p.expected_points = o.expected_points;
  p.fault = o.resources.fault;
  p.retry = o.resources.io_retry;
  p.page_codec = o.resources.page_codec;
  p.hot_tier_bytes = o.resources.hot_tier_bytes;
  return p;
}

/// What Phases 2-4 need from a finished Phase 1, whether it ran
/// serially (one Phase1Builder) or sharded (RunShardedPhase1).
struct Phase1Outcome {
  CfTree* tree = nullptr;
  Phase1Stats stats;
  RobustnessStats robustness;
  const std::vector<CfVector>* final_outliers = nullptr;
  /// Tracker backing `tree`; its peak is read after Phase 4 (Phase-2
  /// condensation can still raise the high-water mark).
  const MemoryTracker* mem = nullptr;
  /// Sharded runs: sum of the per-shard tracker peaks (the shards
  /// coexisted with each other, and briefly with the merged tree).
  size_t shard_peak_bytes = 0;
  uint64_t disk_pages_written = 0;
  uint64_t disk_pages_read = 0;
  uint64_t disk_raw_bytes = 0;
  uint64_t disk_stored_bytes = 0;
  uint64_t disk_hot_hits = 0;
  uint64_t disk_hot_misses = 0;
  uint64_t disk_hot_demotions = 0;
  double seconds = 0.0;
};

/// Phases 2-4 plus result bookkeeping, shared by the serial and the
/// sharded pipelines. `pool` is nullptr for the serial path, which
/// keeps every loop bit-for-bit identical to the serial-only
/// implementation.
StatusOr<BirchResult> RunPhases234(const BirchOptions& options,
                                   const Phase1Outcome& p1,
                                   const Dataset* for_refinement,
                                   exec::ThreadPool* pool,
                                   const obs::MetricsSnapshot& baseline) {
  BirchResult result;
  Timer timer;
  CfTree* tree = p1.tree;
  result.timings.phase1 = p1.seconds;
  result.phase1 = p1.stats;
  result.robustness = p1.robustness;
  result.leaf_entries_after_phase1 = tree->leaf_entry_count();

  // --- Phase 2: condense for the global algorithm. ---
  timer.Restart();
  obs::SpanScope phase2_span("birch/phase2");
  std::vector<CfVector> shed_outliers;
  if (options.global_phase.use_phase2 &&
      tree->leaf_entry_count() > options.global_phase.phase2_target_entries) {
    Phase2Options p2;
    p2.target_leaf_entries = options.global_phase.phase2_target_entries;
    if (options.outliers.handling && tree->leaf_entry_count() > 0) {
      // Phase 2 "removes more outliers" (paper Sec. 5): entries far
      // below the average density are shed while condensing.
      double avg = tree->TreeSummary().n() /
                   static_cast<double>(tree->leaf_entry_count());
      p2.outlier_weight_threshold = options.outliers.fraction * avg;
    }
    BIRCH_RETURN_IF_ERROR(
        CondenseTree(tree, p2, &shed_outliers, &result.phase2));
  }
  result.leaf_entries_after_phase2 = tree->leaf_entry_count();
  result.timings.phase2 = timer.Seconds();
  phase2_span.End();

  // --- Phase 3: global clustering of the leaf entries. ---
  timer.Restart();
  obs::SpanScope phase3_span("birch/phase3");
  std::vector<CfVector> entries;
  tree->CollectLeafEntries(&entries);
  if (entries.empty()) {
    return Status::FailedPrecondition(
        "no data was added: ingest at least one point (AddBatch/Add/"
        "AddSource) before running the pipeline");
  }
  GlobalClusterOptions g;
  g.k = options.k;
  g.distance_limit = options.global_phase.distance_limit;
  g.algorithm = options.global_phase.algorithm;
  g.metric = options.global_phase.metric;
  g.seed = options.seed;
  g.pool = pool;
  g.kernel = options.exec.kernel;
  auto clustering_or = GlobalCluster(entries, g);
  if (!clustering_or.ok()) return clustering_or.status();
  GlobalClustering& clustering = clustering_or.value();
  result.timings.phase3 = timer.Seconds();
  phase3_span.End();

  result.clusters = clustering.clusters;

  // --- Phase 4: refinement / labelling over the raw data. ---
  timer.Restart();
  obs::SpanScope phase4_span("birch/phase4");
  if (for_refinement != nullptr && !for_refinement->empty()) {
    RefineOptions r;
    r.passes = std::max(1, options.refine.passes);
    r.stop_when_stable = true;
    r.outlier_distance = options.refine.outlier_distance;
    r.pool = pool;
    r.kernel = options.exec.kernel;
    auto refined_or = RefineClusters(*for_refinement, result.clusters, r);
    if (!refined_or.ok()) return refined_or.status();
    RefineResult& refined = refined_or.value();
    if (options.refine.passes > 0) {
      // Keep the refined clusters (drop any that ended empty).
      result.labels = std::move(refined.labels);
      std::vector<int> remap(refined.clusters.size(), -1);
      std::vector<CfVector> kept;
      for (size_t c = 0; c < refined.clusters.size(); ++c) {
        if (!refined.clusters[c].empty()) {
          remap[c] = static_cast<int>(kept.size());
          kept.push_back(refined.clusters[c]);
        }
      }
      for (auto& l : result.labels) {
        if (l >= 0) l = remap[static_cast<size_t>(l)];
      }
      result.clusters = std::move(kept);
    } else {
      // refinement_passes == 0: labels only, clusters stay Phase-3.
      result.labels = std::move(refined.labels);
    }
  }
  result.timings.phase4 = timer.Seconds();
  phase4_span.End();

  // --- Bookkeeping ---
  result.centroids.clear();
  result.centroids.reserve(result.clusters.size());
  for (const auto& c : result.clusters) {
    result.centroids.push_back(c.Centroid());
  }
  result.tree_stats = tree->stats();
  result.peak_memory_bytes =
      p1.shard_peak_bytes + (p1.mem != nullptr ? p1.mem->peak() : 0);
  result.tree_nodes = tree->node_count();
  result.disk_pages_written = p1.disk_pages_written;
  result.disk_pages_read = p1.disk_pages_read;
  result.disk_raw_bytes = p1.disk_raw_bytes;
  result.disk_stored_bytes = p1.disk_stored_bytes;
  result.disk_hot_hits = p1.disk_hot_hits;
  result.disk_hot_misses = p1.disk_hot_misses;
  result.disk_hot_demotions = p1.disk_hot_demotions;
  result.final_threshold = tree->threshold();
  // Accumulate in integers: CF point counts are integral (weights are
  // summed exactly for unit-weight streams), and a double accumulator
  // stops counting distinct values past 2^53.
  uint64_t outlier_points = 0;
  for (const auto& e : *p1.final_outliers) {
    outlier_points += static_cast<uint64_t>(std::llround(e.n()));
  }
  for (const auto& e : shed_outliers) {
    outlier_points += static_cast<uint64_t>(std::llround(e.n()));
  }
  result.outlier_points = outlier_points;
  tree->ExportOccupancy();
  result.metrics = obs::CaptureSnapshot().DeltaSince(baseline);
  return result;
}

/// Streaming Phase 4: re-scan the source per pass in O(k) memory.
/// Refines `result` in place; no-op if the source cannot rewind.
Status StreamingRefine(PointSource* source, const BirchOptions& opts,
                       BirchResult* result) {
  if (opts.refine.passes <= 0 || !source->Rewind().ok()) {
    return Status::OK();
  }
  TRACE_SPAN("birch/phase4");
  Timer timer;
  std::vector<std::vector<double>> centers = result->centroids;
  std::vector<double> p(opts.dim);
  double w = 1.0;
  const double limit_sq =
      opts.refine.outlier_distance > 0.0
          ? opts.refine.outlier_distance * opts.refine.outlier_distance
          : std::numeric_limits<double>::infinity();
  const bool use_batch = IsBatchKernel(opts.exec.kernel);
  kernel::CenterBatch cbatch;
  kernel::Workspace ws;
  for (int pass = 0; pass < opts.refine.passes; ++pass) {
    if (pass > 0) BIRCH_RETURN_IF_ERROR(source->Rewind());
    // Centers move between passes; refresh the SoA mirror per pass.
    if (use_batch) cbatch.Assign(centers);
    std::vector<CfVector> sums(
        centers.size(),
        CfVector(opts.dim, opts.tree.cf, opts.tree.cf_storage));
    while (source->Next(p, &w)) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      if (use_batch) {
        kernel::ScanResult r = cbatch.NearestSq(p, &ws);
        best_d = r.distance;
        if (r.index != static_cast<size_t>(-1)) best = r.index;
      } else {
        for (size_t c = 0; c < centers.size(); ++c) {
          double d = SquaredDistance(p, centers[c]);
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
      }
      if (best_d <= limit_sq) sums[best].AddPoint(p, w);
    }
    double moved = 0.0;
    for (size_t c = 0; c < centers.size(); ++c) {
      if (sums[c].empty()) continue;
      std::vector<double> next = sums[c].Centroid();
      moved += SquaredDistance(centers[c], next);
      centers[c] = std::move(next);
    }
    result->clusters = std::move(sums);
    if (moved < 1e-18) break;
  }
  // Drop empty clusters, refresh centroids.
  std::vector<CfVector> kept;
  for (auto& c : result->clusters) {
    if (!c.empty()) kept.push_back(std::move(c));
  }
  result->clusters = std::move(kept);
  result->centroids.clear();
  for (const auto& c : result->clusters) {
    result->centroids.push_back(c.Centroid());
  }
  result->timings.phase4 = timer.Seconds();
  return Status::OK();
}

}  // namespace

BirchClusterer::BirchClusterer(const BirchOptions& options)
    : options_(options),
      phase1_(std::make_unique<Phase1Builder>(Phase1OptionsFrom(options))),
      metrics_baseline_(obs::CaptureSnapshot()) {
  if (options_.serving.publish_every_n > 0) {
    server_ = std::make_unique<serving::BirchServer>(options_.dim);
  }
  if (options_.obs.sample_every_ms > 0) {
    obs::SamplerOptions so;
    so.sample_every_ms = options_.obs.sample_every_ms;
    so.series_capacity = options_.obs.series_capacity;
    sampler_ = std::make_unique<obs::StatsSampler>(so);
    RegisterBirchProbes(sampler_.get());
    if (server_ != nullptr) {
      // Serving trajectories: epoch number, live snapshots, and the
      // age of the current epoch. The age probe reads the server
      // (mutex + immutable snapshot), safe from the sampler thread;
      // server_ outlives sampler_ by declaration order.
      sampler_->AddGaugeProbe("serving/epoch");
      sampler_->AddGaugeProbe("serving/snapshots_live");
      serving::BirchServer* srv = server_.get();
      sampler_->AddProbe("serving/snapshot_age_ms",
                         [srv] { return srv->SnapshotAgeMs(); });
    }
    // Cannot fail: Validate() already rejected a zero cadence.
    Status st = sampler_->Start();
    (void)st;
  }
}

BirchClusterer::~BirchClusterer() = default;

StatusOr<std::unique_ptr<BirchClusterer>> BirchClusterer::Create(
    const BirchOptions& options) {
  BIRCH_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<BirchClusterer>(new BirchClusterer(options));
}

const CfTree& BirchClusterer::tree() const {
  return sharded_ != nullptr ? *sharded_->tree : phase1_->tree();
}

const Phase1Stats& BirchClusterer::phase1_stats() const {
  return sharded_ != nullptr ? sharded_->stats : phase1_->stats();
}

Status BirchClusterer::NoteIngested(uint64_t added) {
  // Both cadences count POINTS from the absolute start of the stream,
  // batch boundaries notwithstanding; AddBatch() never hands this more
  // points than reach the next boundary, so == is exact.
  const uint64_t ckpt_n = options_.resources.checkpoint_every_n;
  if (ckpt_n > 0) {
    points_since_checkpoint_ += added;
    if (points_since_checkpoint_ == ckpt_n) {
      points_since_checkpoint_ = 0;
      BIRCH_RETURN_IF_ERROR(
          SaveCheckpoint(options_.resources.checkpoint_path));
    }
  }
  const uint64_t pub_n = options_.serving.publish_every_n;
  if (pub_n > 0) {
    points_since_publish_ += added;
    if (points_since_publish_ == pub_n) {
      points_since_publish_ = 0;
      BIRCH_RETURN_IF_ERROR(PublishSnapshot());
    }
  }
  return Status::OK();
}

Status BirchClusterer::PublishSnapshot() {
  if (server_ == nullptr) {
    return Status::FailedPrecondition(
        "serving is disabled: set serving.publish_every_n > 0");
  }
  auto snap_or = serving::ServingSnapshot::Build(
      tree(), SnapshotOptionsFrom(options_, phase1_stats().points_added));
  if (!snap_or.ok()) return snap_or.status();
  return server_->Publish(std::move(snap_or).ValueOrDie());
}

Status BirchClusterer::AddBatch(std::span<const double> xs, size_t n,
                                std::span<const double> weights) {
  if (finished_) {
    return Status::FailedPrecondition(
        "AddBatch() after Finish(): the pipeline already ran; create a "
        "new clusterer to ingest more data");
  }
  if (!resume_freezes_.empty()) {
    return Status::FailedPrecondition(
        "restored from a sharded checkpoint: resume with Cluster() on "
        "the same full stream (streaming ingest only resumes serial "
        "checkpoints)");
  }
  const size_t dim = options_.dim;
  if (xs.size() != n * dim) {
    return Status::InvalidArgument(
        "batch size mismatch: got " + std::to_string(xs.size()) +
        " doubles for n=" + std::to_string(n) + " points of dim " +
        std::to_string(dim) + "; pass exactly n * dim row-major values");
  }
  if (!weights.empty() && weights.size() != n) {
    return Status::InvalidArgument(
        "weight count mismatch: got " + std::to_string(weights.size()) +
        " weights for " + std::to_string(n) +
        " points; pass one weight per point or an empty span for all-1");
  }
  const uint64_t ckpt_n = options_.resources.checkpoint_every_n;
  const uint64_t pub_n = options_.serving.publish_every_n;
  size_t off = 0;
  while (off < n) {
    // Split the batch at the next checkpoint/publish boundary so both
    // cadences fire at the exact absolute point counts a point-by-
    // point ingest would produce.
    size_t take = n - off;
    if (ckpt_n > 0) {
      take = std::min<uint64_t>(take, ckpt_n - points_since_checkpoint_);
    }
    if (pub_n > 0) {
      take = std::min<uint64_t>(take, pub_n - points_since_publish_);
    }
    BIRCH_RETURN_IF_ERROR(phase1_->AddBatch(
        xs.subspan(off * dim, take * dim), take,
        weights.empty() ? std::span<const double>()
                        : weights.subspan(off, take)));
    off += take;
    BIRCH_RETURN_IF_ERROR(NoteIngested(take));
  }
  return Status::OK();
}

Status BirchClusterer::Add(std::span<const double> x, double weight) {
  return AddBatch(x, 1, std::span<const double>(&weight, 1));
}

Status BirchClusterer::AddDataset(const Dataset& data) {
  if (data.dim() != options_.dim) {
    return Status::InvalidArgument(
        "dataset dimension mismatch: dataset rows have dim " +
        std::to_string(data.dim()) + ", clusterer was created with dim " +
        std::to_string(options_.dim));
  }
  // One zero-copy batch over the dataset's row-major storage.
  return AddBatch(data.Values(), data.size(), data.Weights());
}

Status BirchClusterer::AddSource(PointSource* source) {
  if (finished_) {
    return Status::FailedPrecondition(
        "AddSource() after Finish(): the pipeline already ran; create a "
        "new clusterer to ingest more data");
  }
  if (source->dim() != options_.dim) {
    return Status::InvalidArgument(
        "source dimension mismatch: source yields dim " +
        std::to_string(source->dim()) + ", clusterer was created with "
        "dim " + std::to_string(options_.dim));
  }
  if (!resume_freezes_.empty()) {
    return Status::FailedPrecondition(
        "restored from a sharded checkpoint: resume with Cluster() on "
        "the same full stream (streaming ingest only resumes serial "
        "checkpoints)");
  }
  // Chunked drain: the stream is never materialized, but points move
  // through the batch path a page-ish slab at a time.
  constexpr size_t kChunk = 512;
  const size_t dim = options_.dim;
  std::vector<double> xs;
  std::vector<double> ws;
  xs.reserve(kChunk * dim);
  ws.reserve(kChunk);
  std::vector<double> p(dim);
  double w = 1.0;
  for (;;) {
    xs.clear();
    ws.clear();
    while (ws.size() < kChunk && source->Next(p, &w)) {
      xs.insert(xs.end(), p.begin(), p.end());
      ws.push_back(w);
    }
    if (ws.empty()) break;
    BIRCH_RETURN_IF_ERROR(AddBatch(xs, ws.size(), ws));
    if (ws.size() < kChunk) break;
  }
  return Status::OK();
}

Status BirchClusterer::SaveCheckpoint(const std::string& path) {
  if (finished_) {
    return Status::FailedPrecondition("SaveCheckpoint() after Finish()");
  }
  if (!resume_freezes_.empty()) {
    return Status::FailedPrecondition(
        "restored from a sharded checkpoint: sharded images are written "
        "by the auto-checkpoint hook inside Cluster()");
  }
  auto freeze_or = phase1_->Freeze();
  if (!freeze_or.ok()) return freeze_or.status();
  CheckpointImage img;
  img.dim = options_.dim;
  img.page_size = options_.resources.page_size;
  img.metric = static_cast<uint32_t>(options_.tree.metric);
  img.threshold_kind = static_cast<uint32_t>(options_.tree.threshold_kind);
  img.cf_representation = static_cast<uint32_t>(options_.tree.cf);
  img.scalar_width = options_.tree.cf_storage == CfStorage::kF32 ? 32 : 64;
  img.page_codec = static_cast<uint32_t>(options_.resources.page_codec);
  img.shard_count = 0;
  img.points_ingested = phase1_->stats().points_added;
  img.freezes.push_back(std::move(freeze_or).ValueOrDie());
  return WriteCheckpointFile(path, img);
}

StatusOr<std::unique_ptr<BirchClusterer>> BirchClusterer::Restore(
    const std::string& path, const BirchOptions& options) {
  BIRCH_RETURN_IF_ERROR(options.Validate());
  auto img_or = ReadCheckpointFile(path);
  if (!img_or.ok()) return img_or.status();
  CheckpointImage img = std::move(img_or).ValueOrDie();

  // Fingerprint: options that shape the CF tree and its serialized form
  // must match the checkpointed run exactly.
  if (img.dim != options.dim) {
    return Status::InvalidArgument(
        "checkpoint was written with dim " + std::to_string(img.dim) +
        ", options say " + std::to_string(options.dim));
  }
  if (img.page_size != options.resources.page_size) {
    return Status::InvalidArgument(
        "checkpoint was written with page_size " +
        std::to_string(img.page_size) + ", options say " +
        std::to_string(options.resources.page_size));
  }
  if (img.metric != static_cast<uint32_t>(options.tree.metric)) {
    return Status::InvalidArgument(
        "checkpoint distance metric does not match options");
  }
  if (img.threshold_kind !=
      static_cast<uint32_t>(options.tree.threshold_kind)) {
    return Status::InvalidArgument(
        "checkpoint threshold kind does not match options");
  }
  if (img.cf_representation != static_cast<uint32_t>(options.tree.cf)) {
    return Status::InvalidArgument(
        std::string("checkpoint was written with the ") +
        CfRepresentationName(
            static_cast<CfRepresentation>(img.cf_representation)) +
        " CF representation, options say " +
        CfRepresentationName(options.tree.cf));
  }
  const uint32_t opt_width =
      options.tree.cf_storage == CfStorage::kF32 ? 32u : 64u;
  if (img.scalar_width != opt_width) {
    return Status::InvalidArgument(
        "checkpoint was written with " + std::to_string(img.scalar_width) +
        "-bit CF storage, options say " + std::to_string(opt_width) +
        "-bit");
  }
  if (img.page_codec !=
      static_cast<uint32_t>(options.resources.page_codec)) {
    return Status::InvalidArgument(
        std::string("checkpoint was written with page_codec ") +
        PageCodecName(static_cast<PageCodecKind>(img.page_codec)) +
        ", options say " + PageCodecName(options.resources.page_codec) +
        " (set resources.page_codec to match the checkpointed run)");
  }

  std::unique_ptr<BirchClusterer> c(new BirchClusterer(options));
  c->resume_skip_points_ = img.points_ingested;
  if (options.resources.checkpoint_every_n > 0) {
    // Keep the auto-checkpoint cadence aligned with absolute stream
    // position, matching what the uninterrupted run would do.
    c->points_since_checkpoint_ =
        img.points_ingested % options.resources.checkpoint_every_n;
  }
  if (img.shard_count == 0) {
    if (options.exec.num_threads != 0) {
      return Status::InvalidArgument(
          "serial checkpoint requires num_threads == 0");
    }
    auto b_or = Phase1Builder::Thaw(Phase1OptionsFrom(options),
                                    img.freezes.front());
    if (!b_or.ok()) return b_or.status();
    c->phase1_ = std::move(b_or).ValueOrDie();
  } else {
    if (options.exec.num_threads != static_cast<int>(img.shard_count)) {
      return Status::InvalidArgument(
          "sharded checkpoint was written by " +
          std::to_string(img.shard_count) +
          " shards; options.exec.num_threads must equal that");
    }
    c->resume_freezes_ = std::move(img.freezes);
  }
  return c;
}

StatusOr<BirchResult> BirchClusterer::Snapshot(int k) const {
  std::vector<CfVector> entries;
  // Filled from the serving epoch on the mid-stream sharded path,
  // where the live tree() is not this thread's to read.
  std::shared_ptr<const serving::ServingSnapshot> epoch;
  if (options_.exec.num_threads > 0 &&
      !merged_ready_.load(std::memory_order_acquire)) {
    // The sharded pipeline merges its per-shard trees only at the end
    // of Cluster(), but the serving tier publishes coherent epochs
    // along the way: answer from the latest one, exactly like the
    // serial path answers from the live tree.
    epoch = server_ != nullptr ? server_->Acquire() : nullptr;
    if (epoch == nullptr) {
      return Status::FailedPrecondition(
          "Snapshot() before Cluster() on the sharded path (num_threads "
          "> 0) reads the last published serving epoch, and none exists "
          "yet — set serving.publish_every_n > 0 (and ingest past it), "
          "run Cluster() to completion first, or use num_threads == 0");
    }
    entries = epoch->LeafEntries();
  } else {
    tree().CollectLeafEntries(&entries);
  }
  if (entries.empty()) {
    return Status::FailedPrecondition(
        "no data to snapshot: ingest at least one point (AddBatch/Add/"
        "AddSource) before calling Snapshot(k)");
  }
  Timer timer;
  GlobalClusterOptions g;
  g.k = k;
  g.metric = options_.global_phase.metric;
  g.seed = options_.seed;
  g.kernel = options_.exec.kernel;
  // Large live trees fall back to k-means (no Phase 2 available here).
  g.algorithm = entries.size() > g.max_hierarchical_inputs
                    ? GlobalAlgorithm::kKMeans
                    : options_.global_phase.algorithm;
  auto clustering_or = GlobalCluster(entries, g);
  if (!clustering_or.ok()) return clustering_or.status();
  GlobalClustering& clustering = clustering_or.value();

  // No labels: a snapshot never revisits the raw stream. Everything
  // else a Finish() result carries (current-state flavoured) is here.
  BirchResult result;
  result.clusters = std::move(clustering.clusters);
  result.centroids.reserve(result.clusters.size());
  for (const auto& c : result.clusters) {
    result.centroids.push_back(c.Centroid());
  }
  result.timings.phase1 = phase1_timer_.Seconds();
  result.timings.phase3 = timer.Seconds();
  result.leaf_entries_after_phase1 = entries.size();
  result.leaf_entries_after_phase2 = entries.size();
  if (epoch != nullptr) {
    // Mid-stream sharded: the epoch's capture-time view stands in for
    // the live tree (whose pages belong to the shard workers).
    result.phase1.points_added = epoch->points_ingested();
    result.phase1.final_threshold = epoch->threshold();
    result.tree_nodes = epoch->node_count();
    result.final_threshold = epoch->threshold();
  } else {
    result.phase1 = phase1_stats();
    result.tree_stats = tree().stats();
    result.tree_nodes = tree().node_count();
    result.final_threshold = tree().threshold();
  }
  result.metrics = obs::CaptureSnapshot().DeltaSince(metrics_baseline_);
  return result;
}

StatusOr<BirchResult> BirchClusterer::Finish(const Dataset* for_refinement) {
  if (finished_) return Status::FailedPrecondition("Finish() called twice");
  finished_ = true;

  // --- Phase 1 tail: flush delayed points, settle outliers. ---
  BIRCH_RETURN_IF_ERROR(phase1_->Finish());
  Phase1Outcome p1;
  p1.tree = phase1_->mutable_tree();
  // Phase 1 started when the clusterer was built: the Add() stream is
  // the phase, not just this tail.
  p1.seconds = phase1_timer_.Seconds();
  phase1_span_.End();
  p1.stats = phase1_->stats();
  p1.robustness = phase1_->robustness();
  p1.final_outliers = &phase1_->final_outliers();
  p1.mem = &phase1_->memory();
  p1.disk_pages_written = phase1_->disk().io_stats().pages_written;
  p1.disk_pages_read = phase1_->disk().io_stats().pages_read;
  p1.disk_raw_bytes = phase1_->disk().io_stats().raw_bytes_written;
  p1.disk_stored_bytes = phase1_->disk().io_stats().stored_bytes_written;
  p1.disk_hot_hits = phase1_->disk().io_stats().hot_hits;
  p1.disk_hot_misses = phase1_->disk().io_stats().hot_misses;
  p1.disk_hot_demotions = phase1_->disk().io_stats().hot_demotions;

  // One final epoch covering the whole stream (the Phase-1 tail may
  // have settled delayed points since the last cadence publish).
  if (server_ != nullptr && tree().leaf_entry_count() > 0) {
    BIRCH_RETURN_IF_ERROR(PublishSnapshot());
  }

  // The streaming API ingests serially (points arrive one Add() at a
  // time), but Phases 3/4 still parallelize when asked.
  std::unique_ptr<exec::ThreadPool> pool;
  if (options_.exec.num_threads > 0) {
    pool = std::make_unique<exec::ThreadPool>(options_.exec.num_threads);
  }
  auto result_or = RunPhases234(options_, p1, for_refinement, pool.get(),
                                metrics_baseline_);
  if (sampler_ != nullptr) {
    sampler_->Stop();  // final sample covers the finished run
    if (result_or.ok()) result_or.value().timeseries = sampler_->Snapshot();
  }
  return result_or;
}

StatusOr<BirchResult> BirchClusterer::Cluster(PointSource* source,
                                              const Dataset* for_refinement) {
  if (finished_) {
    return Status::FailedPrecondition("Cluster() after Finish()");
  }
  if (source->dim() != options_.dim) {
    return Status::InvalidArgument("source dimension mismatch");
  }
  if (options_.exec.num_threads <= 0) {
    // Serial: the streaming path, point by point. A restored clusterer
    // skips what the checkpointed run already consumed.
    if (resume_skip_points_ > 0) {
      std::vector<double> p(options_.dim);
      double w = 1.0;
      uint64_t skipped = 0;
      while (skipped < resume_skip_points_ && source->Next(p, &w)) ++skipped;
      if (skipped < resume_skip_points_) {
        return Status::InvalidArgument(
            "source ended before the checkpoint's resume offset (" +
            std::to_string(skipped) + " < " +
            std::to_string(resume_skip_points_) +
            "); pass the same stream the checkpointed run consumed");
      }
      resume_skip_points_ = 0;
    }
    BIRCH_RETURN_IF_ERROR(AddSource(source));
    return Finish(for_refinement);
  }

  // Sharded: N private trees merged by CF additivity, then the
  // parallel Phases 2-4. The result outlives the pool; the merged
  // tree is kept so tree()/phase1_stats() work afterwards.
  finished_ = true;
  exec::ThreadPool pool(options_.exec.num_threads);
  ShardedPhase1Options sp;
  sp.phase1 = Phase1OptionsFrom(options_);
  sp.num_shards = options_.exec.num_threads;
  sp.dealing = options_.exec.dealing;
  sp.splitter_seed = options_.exec.splitter_seed;
  sp.affinity_sample = options_.exec.affinity_sample;
  sp.affinity_centers = options_.exec.affinity_centers;
  sp.resume = resume_freezes_.empty() ? nullptr : &resume_freezes_;
  sp.resume_skip_points = resume_skip_points_;
  if (options_.resources.checkpoint_every_n > 0) {
    sp.checkpoint_every_n = options_.resources.checkpoint_every_n;
    const BirchOptions& o = options_;
    sp.on_checkpoint =
        [&o](uint64_t points_dealt,
             std::vector<std::unique_ptr<Phase1Builder>>* builders) -> Status {
      CheckpointImage img;
      img.dim = o.dim;
      img.page_size = o.resources.page_size;
      img.metric = static_cast<uint32_t>(o.tree.metric);
      img.threshold_kind = static_cast<uint32_t>(o.tree.threshold_kind);
      img.cf_representation = static_cast<uint32_t>(o.tree.cf);
      img.scalar_width = o.tree.cf_storage == CfStorage::kF32 ? 32 : 64;
      img.page_codec = static_cast<uint32_t>(o.resources.page_codec);
      img.shard_count = static_cast<uint32_t>(builders->size());
      img.points_ingested = points_dealt;
      img.freezes.reserve(builders->size());
      for (auto& b : *builders) {
        auto f_or = b->Freeze();
        if (!f_or.ok()) return f_or.status();
        img.freezes.push_back(std::move(f_or).ValueOrDie());
      }
      return WriteCheckpointFile(o.resources.checkpoint_path, img);
    };
  }
  if (server_ != nullptr) {
    sp.publish_every_n = options_.serving.publish_every_n;
    const BirchOptions& o = options_;
    serving::BirchServer* srv = server_.get();
    sp.on_publish =
        [&o, srv](uint64_t points_dealt,
                  std::vector<std::unique_ptr<Phase1Builder>>* builders)
        -> Status {
      // The shards are quiesced: merge their trees into a transient
      // union (CF additivity; unlimited transient tracker — the copy
      // lives only for the duration of this callback), snapshot it,
      // and let it die. The snapshot itself is the compact long-lived
      // form.
      MemoryTracker mem(0);
      CfTreeOptions merged_opts = TreeOptionsFrom(o);
      for (const auto& b : *builders) {
        merged_opts.threshold =
            std::max(merged_opts.threshold, b->tree().threshold());
      }
      CfTree merged(merged_opts, &mem);
      for (const auto& b : *builders) merged.AbsorbTree(b->tree());
      auto snap_or = serving::ServingSnapshot::Build(
          merged, SnapshotOptionsFrom(o, points_dealt));
      if (!snap_or.ok()) return snap_or.status();
      return srv->Publish(std::move(snap_or).ValueOrDie());
    };
  }
  auto sharded_or = RunShardedPhase1(source, sp, &pool);
  if (!sharded_or.ok()) return sharded_or.status();
  resume_freezes_.clear();
  resume_skip_points_ = 0;
  sharded_ = std::make_unique<ShardedPhase1Result>(
      std::move(sharded_or).ValueOrDie());
  merged_ready_.store(true, std::memory_order_release);
  Phase1Outcome p1;
  p1.tree = sharded_->tree.get();
  p1.stats = sharded_->stats;
  p1.robustness = sharded_->robustness;
  p1.final_outliers = &sharded_->final_outliers;
  p1.mem = sharded_->mem.get();
  p1.shard_peak_bytes = sharded_->peak_memory_bytes;
  p1.disk_pages_written = sharded_->disk_pages_written;
  p1.disk_pages_read = sharded_->disk_pages_read;
  p1.disk_raw_bytes = sharded_->disk_raw_bytes;
  p1.disk_stored_bytes = sharded_->disk_stored_bytes;
  p1.disk_hot_hits = sharded_->disk_hot_hits;
  p1.disk_hot_misses = sharded_->disk_hot_misses;
  p1.disk_hot_demotions = sharded_->disk_hot_demotions;
  p1.seconds = phase1_timer_.Seconds();
  phase1_span_.End();
  // Final epoch from the merged tree (the per-epoch publishes saw the
  // pre-merge shard union; this one sees the re-homed, reabsorbed
  // result Phases 2-4 start from).
  if (server_ != nullptr && tree().leaf_entry_count() > 0) {
    BIRCH_RETURN_IF_ERROR(PublishSnapshot());
  }
  auto result_or =
      RunPhases234(options_, p1, for_refinement, &pool, metrics_baseline_);
  if (sampler_ != nullptr) {
    sampler_->Stop();
    if (result_or.ok()) result_or.value().timeseries = sampler_->Snapshot();
  }
  return result_or;
}

StatusOr<BirchResult> ClusterSource(PointSource* source,
                                    const BirchOptions& options) {
  BirchOptions opts = options;
  opts.dim = source->dim();
  if (opts.expected_points == 0) opts.expected_points = source->SizeHint();

  auto clusterer_or = BirchClusterer::Create(opts);
  if (!clusterer_or.ok()) return clusterer_or.status();
  auto result_or = clusterer_or.value()->Cluster(source, nullptr);
  if (!result_or.ok()) return result_or.status();
  BirchResult result = std::move(result_or).ValueOrDie();
  BIRCH_RETURN_IF_ERROR(StreamingRefine(source, opts, &result));
  return result;
}

StatusOr<BirchResult> ClusterDataset(const Dataset& data,
                                     const BirchOptions& options) {
  BirchOptions opts = options;
  if (opts.expected_points == 0) opts.expected_points = data.size();

  auto clusterer_or = BirchClusterer::Create(opts);
  if (!clusterer_or.ok()) return clusterer_or.status();
  DatasetSource source(&data);
  return clusterer_or.value()->Cluster(&source, &data);
}

}  // namespace birch
