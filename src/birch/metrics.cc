#include "birch/metrics.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace birch {

const char* MetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kD0: return "D0";
    case DistanceMetric::kD1: return "D1";
    case DistanceMetric::kD2: return "D2";
    case DistanceMetric::kD3: return "D3";
    case DistanceMetric::kD4: return "D4";
  }
  return "?";
}

double CentroidEuclidean(const CfVector& a, const CfVector& b) {
  assert(a.n() > 0 && b.n() > 0);
  assert(a.rep() == b.rep());
  double s = 0.0;
  if (a.rep() == CfRepresentation::kBetula) {
    // The mean IS the centroid: no division, no cancellation.
    for (size_t i = 0; i < a.dim(); ++i) {
      double d = a.mean()[i] - b.mean()[i];
      s += d * d;
    }
    return std::sqrt(s);
  }
  for (size_t i = 0; i < a.dim(); ++i) {
    double d = a.ls()[i] / a.n() - b.ls()[i] / b.n();
    s += d * d;
  }
  return std::sqrt(s);
}

double CentroidManhattan(const CfVector& a, const CfVector& b) {
  assert(a.n() > 0 && b.n() > 0);
  assert(a.rep() == b.rep());
  double s = 0.0;
  if (a.rep() == CfRepresentation::kBetula) {
    for (size_t i = 0; i < a.dim(); ++i) {
      s += std::fabs(a.mean()[i] - b.mean()[i]);
    }
    return s;
  }
  for (size_t i = 0; i < a.dim(); ++i) {
    s += std::fabs(a.ls()[i] / a.n() - b.ls()[i] / b.n());
  }
  return s;
}

double AverageInterCluster(const CfVector& a, const CfVector& b) {
  assert(a.n() > 0 && b.n() > 0);
  assert(a.rep() == b.rep());
  if (a.rep() == CfRepresentation::kBetula) {
    // D2^2 = S_a/N_a + S_b/N_b + ||mean_a - mean_b||^2: all terms
    // non-negative — the cancellation-free form of Eq. 5. The
    // operation order matches the kernel's finish_d2_stable pass.
    double s = 0.0;
    for (size_t i = 0; i < a.dim(); ++i) {
      double d = a.mean()[i] - b.mean()[i];
      s += d * d;
    }
    double d2 = (a.raw_scalar() / a.n() + b.raw_scalar() / b.n()) + s;
    return std::sqrt(ClampNonNegative(d2));
  }
  double cross = Dot(a.ls(), b.ls());
  double d2 = a.ss() / a.n() + b.ss() / b.n() - 2.0 * cross / (a.n() * b.n());
  return std::sqrt(ClampNonNegative(d2));
}

double AverageIntraCluster(const CfVector& a, const CfVector& b) {
  return CfVector::Merged(a, b).Diameter();
}

double VarianceIncrease(const CfVector& a, const CfVector& b) {
  if (a.rep() == CfRepresentation::kBetula) {
    // The Chan merge gives S_m = S_a + S_b + (na*nb/nm)*||dmean||^2
    // exactly, so the SSE increase is the last term alone — computed
    // directly, never as a difference. Order matches the kernel's D4
    // finishing loop.
    assert(b.rep() == CfRepresentation::kBetula);
    double nm = a.n() + b.n();
    if (nm <= 0.0) return 0.0;
    double f = b.n() / nm;
    double coef = a.n() * f;
    double dsq = 0.0;
    for (size_t i = 0; i < a.dim(); ++i) {
      double d = a.mean()[i] - b.mean()[i];
      dsq += d * d;
    }
    return std::sqrt(ClampNonNegative(coef * dsq));
  }
  double merged = CfVector::Merged(a, b).SumSquaredDeviation();
  double inc = merged - a.SumSquaredDeviation() - b.SumSquaredDeviation();
  return std::sqrt(ClampNonNegative(inc));
}

double Distance(DistanceMetric metric, const CfVector& a, const CfVector& b) {
  switch (metric) {
    case DistanceMetric::kD0: return CentroidEuclidean(a, b);
    case DistanceMetric::kD1: return CentroidManhattan(a, b);
    case DistanceMetric::kD2: return AverageInterCluster(a, b);
    case DistanceMetric::kD3: return AverageIntraCluster(a, b);
    case DistanceMetric::kD4: return VarianceIncrease(a, b);
  }
  return 0.0;
}

}  // namespace birch
