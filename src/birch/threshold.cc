#include "birch/threshold.h"

#include <algorithm>
#include <cmath>

namespace birch {

bool LeastSquaresFit(const std::vector<double>& xs,
                     const std::vector<double>& ys, double* a, double* b) {
  if (xs.size() != ys.size() || xs.size() < 2) return false;
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12 * (1.0 + sxx)) return false;  // x constant
  *b = (n * sxy - sx * sy) / denom;
  *a = (sy - *b * sx) / n;
  return true;
}

double ThresholdHeuristic::SuggestNext(const CfTree& tree,
                                       uint64_t points_seen) {
  const double ti = tree.threshold();
  const double ni = std::max<double>(1.0, static_cast<double>(points_seen));
  double ni1 = 2.0 * ni;
  if (total_points_ > 0) {
    ni1 = std::min(ni1, static_cast<double>(total_points_));
    ni1 = std::max(ni1, ni + 1.0);  // still demand progress at the tail
  }

  // Signal 1: volume extrapolation.
  double by_volume = 0.0;
  if (ti > 0.0) {
    by_volume = ti * std::pow(ni1 / ni, 1.0 / static_cast<double>(dim_));
  }

  // Signal 2: regression of avg leaf-entry radius growth (log-log).
  const double avg_r = tree.AverageLeafEntryRadius();
  double by_regression = 0.0;
  if (avg_r > 0.0) {
    history_.push_back({std::log(ni), std::log(avg_r)});
    double a = 0, b = 0;
    std::vector<double> xs, ys;
    for (const auto& o : history_) {
      xs.push_back(o.log_points);
      ys.push_back(o.log_radius);
    }
    if (ti > 0.0 && LeastSquaresFit(xs, ys, &a, &b)) {
      double r_next = std::exp(a + b * std::log(ni1));
      if (r_next > avg_r) by_regression = ti * (r_next / avg_r);
    }
  }

  // Signal 3: guaranteed-merge distance in the most crowded leaf.
  const double dmin = tree.MostCrowdedLeafMinMerge();

  double next = std::max({by_volume, by_regression, dmin});

  // Growth cap: the regression can explode on skewed (e.g. fully
  // ordered) inputs where the observed radius history rises steeply —
  // an unchecked extrapolation once inflated T past the inter-cluster
  // spacing and collapsed distinct clusters irreversibly. Cap the
  // per-rebuild growth, but never below d_min (progress guarantee).
  if (ti > 0.0) {
    next = std::max(std::min(next, growth_cap_ * ti), dmin);
  }

  // Backstop: the sequence must strictly increase for rebuilding to
  // shrink the tree (Reducibility Theorem premise).
  if (next <= ti) {
    if (ti > 0.0) {
      next = ti * backstop_factor_;
    } else if (dmin > 0.0) {
      next = dmin;
    } else {
      // Degenerate: every leaf holds a single entry. Fall back to a
      // small fraction of the overall data spread.
      double spread = tree.TreeSummary().Radius();
      next = spread > 0.0 ? 1e-3 * spread : 1e-6;
    }
  }
  return next;
}

}  // namespace birch
