// Threshold growth heuristic (Sec. 5.1.3). When Phase 1 runs out of
// memory after absorbing N_i points under threshold T_i, the next
// threshold T_{i+1} is chosen from three signals:
//
//  1. Volume extrapolation: assuming leaf clusters pack a data volume
//     that grows with the number of points, T scales by
//     (N_{i+1}/N_i)^(1/d), with N_{i+1} = min(2 N_i, N) when the total
//     N is known.
//  2. Least-squares regression of the average leaf-entry radius r
//     against points seen (both in log space), extrapolated to N_{i+1}.
//  3. d_min: the smallest merged diameter/radius among entry pairs of
//     the most crowded leaf — the minimum threshold that is guaranteed
//     to merge at least one pair.
//
// The result is the max of the three, with a multiplicative backstop so
// the sequence T_i is strictly increasing (required by the Reducibility
// Theorem's premise).
#ifndef BIRCH_BIRCH_THRESHOLD_H_
#define BIRCH_BIRCH_THRESHOLD_H_

#include <cstdint>
#include <vector>

#include "birch/cf_tree.h"

namespace birch {

/// Ordinary least squares y = a + b*x. Returns false when under-
/// determined (fewer than 2 distinct x). Exposed for unit testing.
bool LeastSquaresFit(const std::vector<double>& xs,
                     const std::vector<double>& ys, double* a, double* b);

/// Stateful heuristic: records one observation per rebuild and suggests
/// the next threshold.
class ThresholdHeuristic {
 public:
  /// `total_points` is N when known in advance, else 0.
  ThresholdHeuristic(size_t dim, uint64_t total_points = 0,
                     double backstop_factor = 1.25,
                     double growth_cap = 2.0)
      : dim_(dim),
        total_points_(total_points),
        backstop_factor_(backstop_factor),
        growth_cap_(growth_cap) {}

  /// Suggests T_{i+1} > tree.threshold() given `points_seen` points
  /// absorbed so far. Also records the observation for the regression.
  double SuggestNext(const CfTree& tree, uint64_t points_seen);

  size_t observations() const { return history_.size(); }

  /// One regression observation (log points seen, log average leaf
  /// radius). Public so checkpoints can carry the history verbatim.
  struct Observation {
    double log_points;
    double log_radius;
  };

  /// Checkpoint support: the recorded observations drive the regression
  /// signal, so a restored run must carry them to suggest the same
  /// thresholds the uninterrupted run would.
  const std::vector<Observation>& History() const { return history_; }
  void RestoreHistory(std::vector<Observation> history) {
    history_ = std::move(history);
  }

 private:

  size_t dim_;
  uint64_t total_points_;
  double backstop_factor_;
  double growth_cap_;
  std::vector<Observation> history_;
};

}  // namespace birch

#endif  // BIRCH_BIRCH_THRESHOLD_H_
