// Phase 4 (optional): refinement passes over the original data. The
// Phase-3 cluster centroids act as seeds; each pass redistributes every
// point to its closest seed and recomputes the centroids — exactly the
// assignment step of k-means, which the paper notes converges to a
// minimum. This fixes the two Phase-1 artifacts (a point absorbed into
// the "wrong" subcluster by a skewed input order, and copies of the
// same point split across subclusters), and can optionally discard
// points too far from every seed as outliers.
#ifndef BIRCH_BIRCH_REFINE_H_
#define BIRCH_BIRCH_REFINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/dataset.h"
#include "birch/kernel/kernel.h"
#include "util/status.h"

namespace birch {

namespace exec {
class ThreadPool;
}  // namespace exec

struct RefineOptions {
  /// Number of redistribution passes (>= 1).
  int passes = 1;
  /// When > 0, a point farther than this from every centroid is
  /// labelled -1 (outlier) instead of being assigned.
  double outlier_distance = 0.0;
  /// Stop early once a pass changes no label.
  bool stop_when_stable = true;
  /// Optional worker pool for the assignment sweep. nullptr runs the
  /// pass inline, bit-for-bit identical to the serial implementation;
  /// with a pool, per-chunk partial CFs are folded in chunk order, so
  /// the result is deterministic for a fixed pool size.
  exec::ThreadPool* pool = nullptr;
  /// Distance-scan implementation for the point->center argmin
  /// (kernel/kernel.h). kScalar and kBatch are bitwise identical.
  KernelKind kernel = KernelKind::kBatch;
};

struct RefineResult {
  /// Per-point cluster index, or -1 for discarded outliers.
  std::vector<int> labels;
  /// Exact CFs of the refined clusters.
  std::vector<CfVector> clusters;
  int passes_run = 0;
  uint64_t points_discarded = 0;
};

/// Runs Phase-4 refinement of `seeds` over `data`.
StatusOr<RefineResult> RefineClusters(const Dataset& data,
                                      std::span<const CfVector> seeds,
                                      const RefineOptions& options);

/// Single labelling pass without centroid movement (used when the
/// caller wants labels from Phase-3 output as-is).
StatusOr<RefineResult> LabelPoints(const Dataset& data,
                                   std::span<const CfVector> seeds,
                                   double outlier_distance = 0.0);

}  // namespace birch

#endif  // BIRCH_BIRCH_REFINE_H_
