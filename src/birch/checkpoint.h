// Durable checkpoint files for streaming ingest — the operational form
// of the paper's "stop and resume a scan" claim. A checkpoint captures
// one or more Phase1Freeze images (one per shard; serial runs write
// exactly one) plus a fingerprint of the options that produced them,
// framed and CRC32C-checksummed so torn, truncated, or bit-rotted
// files are detected as kCorruption — never silently decoded into a
// different clustering.
//
// File layout (all integers little-endian):
//   magic "BIRCHCP1" (8 bytes)
//   header section, then one section per freeze, then a footer section
// Section framing:
//   [u32 tag][u64 payload_bytes][payload][u32 crc32c(payload)]
// The footer closes the file; a missing or invalid footer means the
// writer died mid-write (truncation) and the file is rejected.
//
// Writes are atomic: the image is staged to "<path>.tmp" and renamed
// over `path`, so a crash during SaveCheckpoint leaves the previous
// checkpoint intact.
#ifndef BIRCH_BIRCH_CHECKPOINT_H_
#define BIRCH_BIRCH_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "birch/phase1.h"
#include "util/status.h"

namespace birch {

/// Current on-disk format version. Readers reject versions they do not
/// know (InvalidArgument, not Corruption: the file is fine, we are old).
/// v2 added the CF-representation and scalar-width fingerprint fields
/// to the header and the tree image (BETULA / float32 storage); v1
/// files predate them and are rejected as unsupported.
///
/// Still v2: a trailing `page_codec` header field and compressed
/// freeze sections. The field is optional on read — v2 files written
/// before compression existed have no codec field and decode with
/// page_codec = 0 (raw sections), so old uncompressed checkpoints
/// still load. When page_codec != 0 every freeze-section payload is a
/// page envelope (pagestore/page_codec.h); the section CRC32C covers
/// the compressed image.
inline constexpr uint32_t kCheckpointVersion = 2;

/// In-memory form of one checkpoint file: the options fingerprint that
/// must match on restore, the resume offset, and the frozen builders.
struct CheckpointImage {
  uint32_t version = kCheckpointVersion;
  // --- Options fingerprint (validated by BirchClusterer::Restore) ---
  uint64_t dim = 0;
  uint64_t page_size = 0;
  uint32_t metric = 0;          // static_cast of DistanceMetric
  uint32_t threshold_kind = 0;  // static_cast of ThresholdKind
  /// static_cast of CfRepresentation: pages and freezes decode under
  /// this CF algebra. Restoring a checkpoint under the other
  /// representation is rejected (kInvalidArgument), never misread.
  uint32_t cf_representation = 0;
  /// Stored CF component width in bits: 64 (CfStorage::kF64) or 32
  /// (kF32). Part of the fingerprint for the same reason.
  uint32_t scalar_width = 64;
  /// static_cast of PageCodecKind: 0 = raw freeze sections (and the
  /// run's outlier disk was uncompressed); != 0 means the freeze
  /// sections are stored as compressed page envelopes under this
  /// codec. Part of the fingerprint — restoring under a different
  /// codec configuration is rejected, since it changes the resumed
  /// run's effective disk budget.
  uint32_t page_codec = 0;
  /// 0 = serial image (exactly one freeze); N >= 1 = sharded image
  /// written by an N-shard run (exactly N freezes, shard order).
  uint32_t shard_count = 0;
  /// Points the checkpointed run had ingested; the resume offset into
  /// the original stream.
  uint64_t points_ingested = 0;
  std::vector<Phase1Freeze> freezes;
};

/// Serializes `image` and atomically replaces `path` with it. IOError
/// on filesystem failure.
Status WriteCheckpointFile(const std::string& path,
                           const CheckpointImage& image);

/// Parses a checkpoint file. Corruption on bad magic, bad framing,
/// checksum mismatch, truncation, or a payload that does not decode;
/// InvalidArgument on an unknown format version; IOError when the file
/// cannot be read at all.
StatusOr<CheckpointImage> ReadCheckpointFile(const std::string& path);

}  // namespace birch

#endif  // BIRCH_BIRCH_CHECKPOINT_H_
