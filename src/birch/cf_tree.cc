#include "birch/cf_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_set>

#include "birch/kernel/kernel_ops.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace birch {

namespace {
constexpr size_t kNone = static_cast<size_t>(-1);
}  // namespace

CfTree::CfTree(const CfTreeOptions& options, MemoryTracker* mem)
    : options_(options),
      layout_{options.page_size, options.dim, options.cf_storage},
      threshold_(options.threshold),
      mem_(mem),
      descent_ops_(options.kernel == KernelKind::kBatchFast
                       ? &kernel::detail::GetFastOps()
                       : nullptr),
      point_cf_(options.dim, options.cf, options.cf_storage) {
  assert(mem_ != nullptr);
  root_ = AllocNode(/*leaf=*/true);
  first_leaf_ = root_;
}

CfTree::~CfTree() {
  // Post-order free of the whole tree.
  std::vector<CfNode*> stack = {root_};
  std::vector<CfNode*> order;
  while (!stack.empty()) {
    CfNode* n = stack.back();
    stack.pop_back();
    order.push_back(n);
    if (!n->is_leaf) {
      for (CfNode* c : n->children) stack.push_back(c);
    }
  }
  for (CfNode* n : order) FreeNode(n);
  OBS_GAUGE_ADD("tree/leaf_entries", -static_cast<double>(leaf_entries_));
}

CfNode* CfTree::AllocNode(bool leaf) {
  mem_->ForceAllocate(options_.page_size);
  ++node_count_;
  OBS_GAUGE_ADD("tree/nodes", 1);
  return new CfNode(leaf);
}

void CfTree::FreeNode(CfNode* node) {
  mem_->Free(options_.page_size);
  --node_count_;
  OBS_GAUGE_ADD("tree/nodes", -1);
  delete node;
}

void CfTree::FreeNonleafSkeleton(CfNode* node) {
  if (node->is_leaf) return;
  for (CfNode* c : node->children) FreeNonleafSkeleton(c);
  FreeNode(node);
}

void CfTree::UnlinkLeaf(CfNode* leaf) {
  if (leaf->prev) leaf->prev->next = leaf->next;
  if (leaf->next) leaf->next->prev = leaf->prev;
  if (first_leaf_ == leaf) first_leaf_ = leaf->next;
  leaf->prev = leaf->next = nullptr;
}

void CfTree::EnsureScratch(const CfNode& node) const {
  if (node.scratch_valid) return;
  // Capacity + 1: a node transiently holds one entry over capacity
  // between the overflow push_back and the split, and the scratch must
  // be able to mirror that state.
  node.scratch.Init(options_.dim, Capacity(node) + 1,
                    kernel::CfBatch::Needs::For(options_.metric, options_.cf));
  node.scratch.Assign(node.entries);
  node.scratch_valid = true;
}

size_t CfTree::ClosestIndex(const CfNode& node, const CfVector& cf,
                            const kernel::CfQuery* query) const {
  if (IsBatchKernel(options_.kernel)) {
    if (node.entries.empty()) return kNone;
    EnsureScratch(node);
    kernel::CfQuery local;
    if (query == nullptr) {
      local.Prepare(cf, options_.metric, &ws_.query_centroid);
      query = &local;
    }
    kernel::ScanResult r = kernel::NearestEntry(
        node.scratch, *query, options_.metric, &ws_,
        /*active=*/nullptr, /*exclude=*/kNone, descent_ops_);
    stats_.distance_comparisons += node.entries.size();
    OBS_COUNTER_ADD("tree/distance_comps", node.entries.size());
    return r.index;
  }
  size_t best = kNone;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    double d = Distance(options_.metric, cf, node.entries[i]);
    ++stats_.distance_comparisons;
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  OBS_COUNTER_ADD("tree/distance_comps", node.entries.size());
  return best;
}

double CfTree::MergedThresholdValue(const CfVector& a,
                                    const CfVector& b) const {
  CfVector merged = CfVector::Merged(a, b);
  return options_.threshold_kind == ThresholdKind::kDiameter
             ? merged.Diameter()
             : merged.Radius();
}

bool CfTree::CanAbsorb(const CfVector& existing,
                       const CfVector& incoming) const {
  if (IsBatchKernel(options_.kernel)) {
    // Allocation-free merged statistic, bitwise equal to
    // MergedThresholdValue (which materializes the merged CF). Exact
    // under kBatchFast too: only descent scans use the fast ops.
    double v = options_.threshold_kind == ThresholdKind::kDiameter
                   ? kernel::MergedDiameter(existing, incoming)
                   : kernel::MergedRadius(existing, incoming);
    return v <= threshold_;
  }
  return MergedThresholdValue(existing, incoming) <= threshold_;
}

InsertOutcome CfTree::InsertPoint(std::span<const double> x, double weight,
                                  InsertMode mode) {
  point_cf_.AssignPoint(x, weight);
  return InsertEntry(point_cf_, mode);
}

InsertOutcome CfTree::InsertEntry(const CfVector& entry, InsertMode mode) {
  if (entry.empty()) return InsertOutcome::kAbsorbed;  // no-op
  assert(entry.dim() == options_.dim);
  ++stats_.inserts;
  OBS_COUNTER_INC("tree/inserts");

  // Query-side precomputations depend only on (entry, metric), so one
  // Prepare serves every scan of the descent — bitwise identical to
  // preparing per node, minus the repeated O(d) work.
  kernel::CfQuery query;
  const kernel::CfQuery* q = nullptr;
  if (IsBatchKernel(options_.kernel)) {
    query.Prepare(entry, options_.metric, &ws_.query_centroid);
    q = &query;
  }

  // Descend to the closest leaf, recording the path (reused member
  // buffer; InsertEntry is not reentrant).
  std::vector<PathStep>& path = path_;
  path.clear();
  CfNode* node = root_;
  while (!node->is_leaf) {
    size_t ci = ClosestIndex(*node, entry, q);
    path.push_back({node, ci});
    node = node->children[ci];
  }

  // Try to absorb into the closest leaf entry.
  // The absorb path mutates exactly one entry per path node, so a
  // valid scratch gets an O(d) row refresh instead of invalidation.
  auto add_to_entry = [](CfNode* n, size_t i, const CfVector& cf) {
    n->entries[i].Add(cf);
    if (n->scratch_valid) n->scratch.Update(i, n->entries[i]);
  };

  size_t ei = ClosestIndex(*node, entry, q);
  if (ei != kNone && CanAbsorb(node->entries[ei], entry)) {
    add_to_entry(node, ei, entry);
    for (auto& step : path) add_to_entry(step.node, step.child, entry);
    ++stats_.absorbed;
    return InsertOutcome::kAbsorbed;
  }

  if (mode == InsertMode::kAbsorbOnly) {
    ++stats_.rejected;
    return InsertOutcome::kRejected;
  }

  // Add as a new leaf entry if there is room.
  if (node->size() < layout_.L()) {
    node->entries.push_back(entry);
    if (node->scratch_valid) node->scratch.Append(entry);
    ++leaf_entries_;
    OBS_GAUGE_ADD("tree/leaf_entries", 1);
    for (auto& step : path) add_to_entry(step.node, step.child, entry);
    ++stats_.new_entries;
    return InsertOutcome::kNewEntry;
  }

  if (mode != InsertMode::kNormal) {
    ++stats_.rejected;
    return InsertOutcome::kRejected;
  }

  // Split the leaf and propagate upward.
  ++stats_.new_entries;
  ++leaf_entries_;
  OBS_GAUGE_ADD("tree/leaf_entries", 1);
  node->entries.push_back(entry);
  node->scratch_valid = false;
  CfNode* left = node;
  CfNode* right = SplitNode(node);

  for (int level = static_cast<int>(path.size()) - 1; level >= 0; --level) {
    CfNode* parent = path[level].node;
    size_t ci = path[level].child;
    parent->entries[ci] = left->Summary();
    parent->entries.push_back(right->Summary());
    parent->children.push_back(right);
    parent->scratch_valid = false;
    if (parent->size() <= layout_.B()) {
      // Split stopped here: apply merging refinement, then update the
      // remaining ancestors with the plain CF addition.
      if (options_.merging_refinement) {
        MergingRefinement(parent, ci, parent->size() - 1);
      }
      for (int j = level - 1; j >= 0; --j) {
        add_to_entry(path[j].node, path[j].child, entry);
      }
      return InsertOutcome::kSplit;
    }
    left = parent;
    right = SplitNode(parent);
  }

  // The split reached the root: grow the tree by one level.
  CfNode* new_root = AllocNode(/*leaf=*/false);
  new_root->entries.push_back(left->Summary());
  new_root->children.push_back(left);
  new_root->entries.push_back(right->Summary());
  new_root->children.push_back(right);
  root_ = new_root;
  ++height_;
  return InsertOutcome::kSplit;
}

CfNode* CfTree::SplitNode(CfNode* node) {
  const size_t m = node->entries.size();
  assert(m >= 2);
  const size_t cap = Capacity(*node);

  // Farthest pair of entries become the seeds.
  size_t si = 0, sj = 1;
  double best = -1.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      double d = Distance(options_.metric, node->entries[i], node->entries[j]);
      ++stats_.distance_comparisons;
      if (d > best) {
        best = d;
        si = i;
        sj = j;
      }
    }
  }

  // Partition every entry to its closer seed. Keep the signed margin
  // (d_left - d_right) so capacity rebalancing can move the entries
  // with the weakest preference.
  struct Placed {
    size_t idx;
    double margin;  // negative prefers left
  };
  std::vector<Placed> go_left, go_right;
  const CfVector seed_l = node->entries[si];
  const CfVector seed_r = node->entries[sj];
  for (size_t k = 0; k < m; ++k) {
    if (k == si) {
      go_left.push_back({k, -std::numeric_limits<double>::infinity()});
      continue;
    }
    if (k == sj) {
      go_right.push_back({k, std::numeric_limits<double>::infinity()});
      continue;
    }
    double dl = Distance(options_.metric, node->entries[k], seed_l);
    double dr = Distance(options_.metric, node->entries[k], seed_r);
    stats_.distance_comparisons += 2;
    if (dl <= dr) {
      go_left.push_back({k, dl - dr});
    } else {
      go_right.push_back({k, dl - dr});
    }
  }

  // Rebalance so neither side exceeds capacity (possible when the seed
  // attraction is lopsided). Entries with the weakest preference move.
  auto spill = [](std::vector<Placed>* from, std::vector<Placed>* to,
                  size_t capacity) {
    if (from->size() <= capacity) return;
    std::sort(from->begin(), from->end(),
              [](const Placed& a, const Placed& b) {
                return std::fabs(a.margin) < std::fabs(b.margin);
              });
    while (from->size() > capacity) {
      to->push_back(from->front());
      from->erase(from->begin());
    }
  };
  spill(&go_left, &go_right, cap);
  spill(&go_right, &go_left, cap);

  CfNode* right = AllocNode(node->is_leaf);
  std::vector<CfVector> left_entries, right_entries;
  std::vector<CfNode*> left_children, right_children;
  for (const Placed& p : go_left) {
    left_entries.push_back(std::move(node->entries[p.idx]));
    if (!node->is_leaf) left_children.push_back(node->children[p.idx]);
  }
  for (const Placed& p : go_right) {
    right_entries.push_back(std::move(node->entries[p.idx]));
    if (!node->is_leaf) right_children.push_back(node->children[p.idx]);
  }
  node->entries = std::move(left_entries);
  node->children = std::move(left_children);
  node->scratch_valid = false;
  right->entries = std::move(right_entries);
  right->children = std::move(right_children);

  if (node->is_leaf) {
    right->next = node->next;
    if (node->next) node->next->prev = right;
    node->next = right;
    right->prev = node;
    ++stats_.leaf_splits;
    OBS_COUNTER_INC("tree/leaf_splits");
  } else {
    ++stats_.nonleaf_splits;
    OBS_COUNTER_INC("tree/nonleaf_splits");
  }
  return right;
}

void CfTree::MergingRefinement(CfNode* parent, size_t split_a,
                               size_t split_b) {
  const size_t m = parent->entries.size();
  if (m < 2) return;

  size_t a = kNone, b = kNone;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      double d = Distance(options_.metric, parent->entries[i],
                          parent->entries[j]);
      ++stats_.distance_comparisons;
      if (d < best) {
        best = d;
        a = i;
        b = j;
      }
    }
  }
  // If the closest pair is exactly the pair the split produced, the
  // split was "natural" and no refinement applies.
  if ((a == split_a && b == split_b) || (a == split_b && b == split_a)) {
    return;
  }

  CfNode* ca = parent->children[a];
  CfNode* cb = parent->children[b];
  const size_t cap = Capacity(*ca);

  // Pull everything from cb into ca.
  for (auto& e : cb->entries) ca->entries.push_back(std::move(e));
  for (CfNode* c : cb->children) ca->children.push_back(c);
  ca->scratch_valid = false;
  if (cb->is_leaf) UnlinkLeaf(cb);
  cb->entries.clear();
  cb->children.clear();
  FreeNode(cb);
  ++stats_.merge_refinements;
  OBS_COUNTER_INC("tree/merge_refinements");

  if (ca->size() <= cap) {
    // Plain merge: drop entry b.
    parent->entries[a] =
        CfVector::Merged(parent->entries[a], parent->entries[b]);
    parent->entries.erase(parent->entries.begin() + static_cast<long>(b));
    parent->children.erase(parent->children.begin() + static_cast<long>(b));
  } else {
    // Merge would overflow one page: resplit the union for a better
    // entry distribution.
    CfNode* nb = SplitNode(ca);
    parent->entries[a] = ca->Summary();
    parent->entries[b] = nb->Summary();
    parent->children[b] = nb;
    ++stats_.resplits;
  }
  parent->scratch_valid = false;
}

void CfTree::AbsorbTree(const CfTree& other) {
  assert(other.options().dim == options_.dim);
  for (const CfNode* leaf = other.first_leaf(); leaf != nullptr;
       leaf = leaf->next) {
    for (const auto& e : leaf->entries) InsertEntry(e);
  }
}

void CfTree::Rebuild(double new_threshold, double outlier_n_threshold,
                     std::vector<CfVector>* outliers) {
  TRACE_SPAN("tree/rebuild");
  TRACE_COUNTER("tree/threshold", new_threshold);
  ++stats_.rebuilds;
  OBS_COUNTER_INC("tree/rebuilds");
  OBS_GAUGE_SET("tree/threshold", new_threshold);
  CfNode* old_root = root_;
  CfNode* leaf = first_leaf_;

  // Free the old nonleaf skeleton first: reinsertion then runs with
  // maximal headroom and old pages are recycled into the new tree.
  if (!old_root->is_leaf) FreeNonleafSkeleton(old_root);

  root_ = AllocNode(/*leaf=*/true);
  first_leaf_ = root_;
  height_ = 1;
  // Reinsertion below re-increments the gauge entry by entry.
  OBS_GAUGE_ADD("tree/leaf_entries", -static_cast<double>(leaf_entries_));
  leaf_entries_ = 0;
  threshold_ = new_threshold;

  // Consume old leaves in chain order (the paper's path order),
  // freeing each page before reinserting its entries.
  while (leaf) {
    CfNode* next = leaf->next;
    std::vector<CfVector> entries = std::move(leaf->entries);
    FreeNode(leaf);
    for (CfVector& e : entries) {
      if (outliers != nullptr && outlier_n_threshold > 0.0 &&
          e.n() < outlier_n_threshold) {
        outliers->push_back(std::move(e));
      } else {
        InsertEntry(e);
      }
    }
    leaf = next;
  }
}

void CfTree::CollectLeafEntries(std::vector<CfVector>* out) const {
  for (const CfNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    for (const auto& e : leaf->entries) out->push_back(e);
  }
}

void CfTree::ForEachLeaf(
    const std::function<void(const CfNode&)>& fn) const {
  for (const CfNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    fn(*leaf);
  }
}

double CfTree::MostCrowdedLeafMinMerge() const {
  const CfNode* crowded = nullptr;
  for (const CfNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    if (leaf->size() >= 2 &&
        (crowded == nullptr || leaf->size() > crowded->size())) {
      crowded = leaf;
    }
  }
  if (crowded == nullptr) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < crowded->size(); ++i) {
    for (size_t j = i + 1; j < crowded->size(); ++j) {
      best = std::min(best, MergedThresholdValue(crowded->entries[i],
                                                 crowded->entries[j]));
    }
  }
  return best;
}

double CfTree::AverageLeafEntryRadius() const {
  double sum = 0.0;
  size_t count = 0;
  for (const CfNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    for (const auto& e : leaf->entries) {
      sum += e.Radius();
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

void CfTree::ExportOccupancy() const {
#ifndef BIRCH_NO_OBS
  if (!obs::Enabled()) return;
  obs::Registry& reg = obs::Registry::Default();
  // Per-level node/entry totals, level 1 = root.
  std::vector<std::pair<uint64_t, uint64_t>> levels;  // {nodes, entries}
  std::function<void(const CfNode*, size_t)> visit = [&](const CfNode* n,
                                                         size_t depth) {
    if (levels.size() < depth) levels.resize(depth, {0, 0});
    ++levels[depth - 1].first;
    levels[depth - 1].second += n->size();
    if (!n->is_leaf) {
      for (const CfNode* c : n->children) visit(c, depth + 1);
    }
  };
  visit(root_, 1);
  for (size_t d = 0; d < levels.size(); ++d) {
    std::string prefix = "tree/l" + std::to_string(d + 1);
    reg.GetGauge(prefix + "/nodes").Set(
        static_cast<double>(levels[d].first));
    reg.GetGauge(prefix + "/entries").Set(
        static_cast<double>(levels[d].second));
  }
  reg.GetGauge("tree/height").Set(static_cast<double>(height_));
  reg.GetGauge("tree/leaf_entries").Set(
      static_cast<double>(leaf_entries_));
  const auto& leaf_level = levels.back();
  reg.GetGauge("tree/avg_leaf_occupancy")
      .Set(leaf_level.first == 0
               ? 0.0
               : static_cast<double>(leaf_level.second) /
                     static_cast<double>(leaf_level.first) /
                     static_cast<double>(layout_.L()));
#endif  // BIRCH_NO_OBS
}

namespace {

bool NearlyEqual(double a, double b, double tol) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tol * scale;
}

bool CfNearlyEqual(const CfVector& a, const CfVector& b) {
  if (a.dim() != b.dim() || a.rep() != b.rep()) return false;
  // Incrementally-maintained parent CFs drift from recomputed child
  // summaries by accumulated rounding. Under f32 storage every
  // mutation quantizes through float, so the drift floor is float
  // ulps (~1.2e-7 per op) instead of double ulps — the tolerance must
  // scale with the storage width or healthy f32 trees flunk.
  double tol = a.storage() == CfStorage::kF32 ? 1e-3 : 1e-6;
  if (!NearlyEqual(a.n(), b.n(), tol)) return false;
  if (!NearlyEqual(a.raw_scalar(), b.raw_scalar(), tol)) return false;
  for (size_t i = 0; i < a.dim(); ++i) {
    if (!NearlyEqual(a.raw_vec()[i], b.raw_vec()[i], tol)) return false;
  }
  return true;
}

}  // namespace

bool CfTree::CheckInvariants(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };

  // Recursive structural check: capacities, summaries, uniform depth.
  size_t leaf_depth = 0;
  size_t total_nodes = 0;
  size_t total_leaf_entries = 0;
  std::unordered_set<const CfNode*> leaves_in_tree;
  std::string error;

  std::function<bool(const CfNode*, size_t)> visit =
      [&](const CfNode* node, size_t depth) -> bool {
    ++total_nodes;
    if (node->size() > Capacity(*node)) {
      error = "node over capacity";
      return false;
    }
    if (node->is_leaf) {
      if (leaf_depth == 0) leaf_depth = depth;
      if (depth != leaf_depth) {
        error = "leaves at different depths";
        return false;
      }
      if (!node->children.empty()) {
        error = "leaf with children";
        return false;
      }
      total_leaf_entries += node->size();
      leaves_in_tree.insert(node);
      return true;
    }
    if (node->children.size() != node->entries.size()) {
      error = "children/entries size mismatch";
      return false;
    }
    if (node->size() < 1) {
      error = "empty nonleaf node";
      return false;
    }
    for (size_t i = 0; i < node->size(); ++i) {
      if (!CfNearlyEqual(node->entries[i], node->children[i]->Summary())) {
        error = "nonleaf entry CF != child summary";
        return false;
      }
      if (!visit(node->children[i], depth + 1)) return false;
    }
    return true;
  };
  if (!visit(root_, 1)) return fail(error);

  if (total_nodes != node_count_) return fail("node_count_ drift");
  if (total_leaf_entries != leaf_entries_) {
    return fail("leaf_entries_ drift");
  }
  if (leaf_depth != height_) return fail("height_ drift");

  // Chain check: visits every leaf exactly once.
  size_t chained = 0;
  const CfNode* prev = nullptr;
  for (const CfNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    if (leaf->prev != prev) return fail("broken prev pointer in chain");
    if (leaves_in_tree.count(leaf) == 0) {
      return fail("chained leaf not in tree");
    }
    ++chained;
    if (chained > leaves_in_tree.size()) return fail("chain cycle");
    prev = leaf;
  }
  if (chained != leaves_in_tree.size()) {
    return fail("chain misses leaves");
  }
  return true;
}

}  // namespace birch
