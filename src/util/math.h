// Small numeric helpers shared by the CF algebra and the baselines.
#ifndef BIRCH_UTIL_MATH_H_
#define BIRCH_UTIL_MATH_H_

#include <cmath>
#include <cstddef>
#include <span>

namespace birch {

/// Dot product of two equal-length spans.
inline double Dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Squared Euclidean norm.
inline double SquaredNorm(std::span<const double> a) { return Dot(a, a); }

/// Squared Euclidean distance between two points.
inline double SquaredDistance(std::span<const double> a,
                              std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Euclidean distance.
inline double Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Manhattan (L1) distance.
inline double ManhattanDistance(std::span<const double> a,
                                std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

/// max(x, 0): clamps tiny negative values produced by floating-point
/// cancellation in variance-style expressions before sqrt.
inline double ClampNonNegative(double x) { return x > 0.0 ? x : 0.0; }

}  // namespace birch

#endif  // BIRCH_UTIL_MATH_H_
