// Small numeric helpers shared by the CF algebra and the baselines.
#ifndef BIRCH_UTIL_MATH_H_
#define BIRCH_UTIL_MATH_H_

#include <cmath>
#include <cstddef>
#include <span>

namespace birch {

/// Dot product of two equal-length spans.
inline double Dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Squared Euclidean norm.
inline double SquaredNorm(std::span<const double> a) { return Dot(a, a); }

/// Squared Euclidean distance between two points.
inline double SquaredDistance(std::span<const double> a,
                              std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Euclidean distance.
inline double Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Manhattan (L1) distance.
inline double ManhattanDistance(std::span<const double> a,
                                std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

/// max(x, 0): clamps tiny negative values produced by floating-point
/// cancellation in variance-style expressions before sqrt. NaN also
/// maps to 0 (the comparison is false), so sqrt never sees garbage.
inline double ClampNonNegative(double x) { return x > 0.0 ? x : 0.0; }

/// BETULA-style guard (Lang & Schubert 2020) for variance-style
/// differences `a - b` of large, nearly-equal terms, e.g. the CF
/// radius SS/N - ||LS/N||^2. For clusters far from the origin the
/// subtraction cancels catastrophically: the true value drowns below
/// the rounding error of the operands, and the raw result is noise of
/// either sign — not just tiny negatives but plausible-looking
/// positive garbage. Anything smaller than a few hundred ulps of the
/// operands' magnitude is therefore indistinguishable from zero and is
/// clamped to exactly 0 (as are negatives and NaN).
inline double GuardedNonNegative(double x, double magnitude) {
  if (!(x > 0.0)) return 0.0;
  constexpr double kCancellationEps = 1e-12;  // ~4500 double ulps
  if (x < kCancellationEps * magnitude) return 0.0;
  return x;
}

}  // namespace birch

#endif  // BIRCH_UTIL_MATH_H_
