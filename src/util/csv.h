// Minimal CSV writer for machine-readable benchmark output.
#ifndef BIRCH_UTIL_CSV_H_
#define BIRCH_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace birch {

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes cells
/// containing commas/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  CsvWriter& Row();
  CsvWriter& Add(const std::string& cell);
  CsvWriter& Add(double value);
  CsvWriter& Add(int64_t value);

  /// Writes headers + rows to `path`.
  Status WriteFile(const std::string& path) const;

  std::string ToString() const;

 private:
  static std::string Escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace birch

#endif  // BIRCH_UTIL_CSV_H_
