// Minimal zero-dependency JSON support for the telemetry artifacts:
// a streaming writer (run reports, bench trajectory files) and a
// recursive-descent parser (bench_diff, run-report round-trips).
//
// The writer produces compact one-pass output with automatic comma
// placement; keys and values must be emitted in document order. The
// parser materializes a JsonValue tree (object members keep document
// order) and rejects malformed input with kCorruption rather than
// guessing. Neither side allocates anything process-global.
#ifndef BIRCH_UTIL_JSON_H_
#define BIRCH_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace birch {

/// Streaming JSON writer. Usage:
///
///   JsonWriter w;
///   w.BeginObject().Key("rows").BeginArray();
///   w.BeginObject().KV("seconds", 1.25).EndObject();
///   w.EndArray().EndObject();
///   file << w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view k);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  JsonWriter& KV(std::string_view k, std::string_view v) {
    return Key(k).Value(v);
  }
  JsonWriter& KV(std::string_view k, const char* v) {
    return Key(k).Value(std::string_view(v));
  }
  JsonWriter& KV(std::string_view k, double v) { return Key(k).Value(v); }
  JsonWriter& KV(std::string_view k, int64_t v) { return Key(k).Value(v); }
  JsonWriter& KV(std::string_view k, uint64_t v) { return Key(k).Value(v); }
  JsonWriter& KV(std::string_view k, bool v) { return Key(k).Value(v); }

  const std::string& str() const { return out_; }

  /// `s` with JSON string escapes applied (no surrounding quotes).
  static std::string Escape(std::string_view s);
  /// Shortest faithful rendering: integral doubles print bare,
  /// everything else round-trips via %.17g; non-finite becomes null.
  static std::string Number(double v);

 private:
  void Separate();  // comma handling before a new element

  std::string out_;
  std::vector<bool> first_;  // per open container: no element yet
  bool after_key_ = false;
};

/// Parsed JSON document node. Object members preserve document order;
/// Find() does a linear scan (documents here are small).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Parses one complete JSON document (trailing garbage rejected).
  static StatusOr<JsonValue> Parse(std::string_view text);
  /// Reads and parses `path` (kIOError on read failure).
  static StatusOr<JsonValue> ParseFile(const std::string& path);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Writes `content` to `path` via a temp file + rename (atomic replace,
/// same guarantee the checkpoint writer gives).
Status WriteFileAtomic(const std::string& path, std::string_view content);

}  // namespace birch

#endif  // BIRCH_UTIL_JSON_H_
