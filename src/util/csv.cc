#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace birch {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

CsvWriter& CsvWriter::Row() {
  rows_.emplace_back();
  return *this;
}

CsvWriter& CsvWriter::Add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

CsvWriter& CsvWriter::Add(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return Add(std::string(buf));
}

CsvWriter& CsvWriter::Add(int64_t value) {
  return Add(std::to_string(value));
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ",";
      out << Escape(cells[i]);
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  f << ToString();
  if (!f) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace birch
