#include "util/table.h"

#include <cstdio>
#include <sstream>

namespace birch {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::Row() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::Add(const std::string& cell) {
  rows_.back().push_back(cell);
  return *this;
}

TablePrinter& TablePrinter::Add(const char* cell) {
  return Add(std::string(cell));
}

TablePrinter& TablePrinter::Add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Add(std::string(buf));
}

TablePrinter& TablePrinter::Add(int64_t value) {
  return Add(std::to_string(value));
}

TablePrinter& TablePrinter::Add(int value) {
  return Add(static_cast<int64_t>(value));
}

TablePrinter& TablePrinter::Add(size_t value) {
  return Add(std::to_string(value));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace birch
