// Fixed-width table writer used by the benchmark harness to print
// paper-style result rows to stdout.
#ifndef BIRCH_UTIL_TABLE_H_
#define BIRCH_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace birch {

/// Accumulates rows of string cells and renders them with aligned,
/// fixed-width columns. Numeric convenience setters format with a fixed
/// precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls append cells to it.
  TablePrinter& Row();
  TablePrinter& Add(const std::string& cell);
  TablePrinter& Add(const char* cell);
  TablePrinter& Add(double value, int precision = 2);
  TablePrinter& Add(int64_t value);
  TablePrinter& Add(int value);
  TablePrinter& Add(size_t value);

  /// Renders the full table (header, separator, rows).
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

  /// Cell accessor for tests: row r, column c (post-formatting).
  const std::string& Cell(size_t r, size_t c) const { return rows_[r][c]; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace birch

#endif  // BIRCH_UTIL_TABLE_H_
