// Deterministic pseudo-random number generation for reproducible
// experiments. xoshiro256** seeded via SplitMix64; every dataset,
// ordering and randomized algorithm in this repository draws from a
// caller-provided Rng so runs are replayable from a single seed.
#ifndef BIRCH_UTIL_RANDOM_H_
#define BIRCH_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace birch {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Complete serializable state of an Rng: the xoshiro words plus the
/// Box–Muller cache. Capturing and restoring this resumes the stream
/// exactly where it left off (checkpoint/restore relies on it).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_gauss = false;
  double cached_gauss = 0.0;
};

/// xoshiro256** 1.0 — fast, high-quality, tiny state. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x42ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(&sm);
    has_gauss_ = false;
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Debiased multiply-shift (Lemire).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached pair).
  double Gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Avoid log(0).
    if (u1 <= 0) u1 = 0x1.0p-53;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  /// N(mean, stddev^2).
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  RngState GetState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.has_gauss = has_gauss_;
    st.cached_gauss = cached_gauss_;
    return st;
  }

  void SetState(const RngState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_gauss_ = st.has_gauss;
    cached_gauss_ = st.cached_gauss;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i)));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace birch

#endif  // BIRCH_UTIL_RANDOM_H_
