// Monotonic wall-clock stopwatch used by the benchmark harness.
#ifndef BIRCH_UTIL_TIMER_H_
#define BIRCH_UTIL_TIMER_H_

#include <chrono>

namespace birch {

/// Simple stopwatch; starts on construction, restartable.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace birch

#endif  // BIRCH_UTIL_TIMER_H_
