// Status / StatusOr: lightweight error propagation without exceptions,
// in the style of Arrow / RocksDB. Public library entry points that can
// fail return Status (or StatusOr<T>); hot paths return plain values.
#ifndef BIRCH_UTIL_STATUS_H_
#define BIRCH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace birch {

/// Coarse error taxonomy. Kept deliberately small; the message carries
/// the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kOutOfDisk,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIOError,
  /// Stored data is unrecoverable: a page was lost or failed checksum
  /// verification. Unlike kIOError this is NOT retryable — the bytes
  /// are gone; callers degrade and account for the loss instead.
  kDataLoss,
  /// Persistent data failed structural validation: bad magic, impossible
  /// counts, out-of-range references, checksum mismatch in a serialized
  /// image. The bytes were read fine but cannot be trusted as the
  /// structure they claim to be; never silently decoded.
  kCorruption,
};

/// Result of an operation: either OK or a code plus a human-readable
/// message. Cheap to copy when OK (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status OutOfDisk(std::string msg) {
    return Status(StatusCode::kOutOfDisk, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfMemory: return "OutOfMemory";
      case StatusCode::kOutOfDisk: return "OutOfDisk";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kDataLoss: return "DataLoss";
      case StatusCode::kCorruption: return "Corruption";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or a non-OK Status. Access to value() on a
/// failed result is a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status to the caller.
#define BIRCH_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::birch::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace birch

#endif  // BIRCH_UTIL_STATUS_H_
