// Minimal command-line flag parsing for the CLI tool and bench
// binaries: --name value and --name=value forms, typed getters with
// defaults, and unknown-flag detection.
#ifndef BIRCH_UTIL_FLAGS_H_
#define BIRCH_UTIL_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace birch {

/// Parses argv into a {--flag: value} map plus positional arguments.
class Flags {
 public:
  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        f.positional_.push_back(arg);
        continue;
      }
      std::string name = arg.substr(2);
      std::string value = "true";
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name.resize(eq);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      f.values_[name] = value;
    }
    return f;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& name, bool fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0" && it->second != "no";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Returns non-OK if a present flag is not in `known` (typo guard).
  Status CheckKnown(const std::vector<std::string>& known) const {
    for (const auto& [name, value] : values_) {
      bool ok = false;
      for (const auto& k : known) ok = ok || k == name;
      if (!ok) return Status::InvalidArgument("unknown flag --" + name);
    }
    return Status::OK();
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace birch

#endif  // BIRCH_UTIL_FLAGS_H_
