#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace birch {

// --- Writer -----------------------------------------------------------

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  Separate();
  out_ += '"';
  out_ += Escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  Separate();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  Separate();
  out_ += Number(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::Number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// --- Parser -----------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

/// Hand-rolled recursive-descent parser. Every failure is kCorruption
/// with a byte offset: telemetry files are machine-written, so a parse
/// error means the file is damaged, not "try harder".
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    JsonValue v;
    BIRCH_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::Corruption("json: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = true;
          return Status::OK();
        }
        return Fail("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = false;
          return Status::OK();
        }
        return Fail("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind_ = JsonValue::Kind::kNull;
          return Status::OK();
        }
        return Fail("bad literal");
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      BIRCH_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue v;
      BIRCH_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      BIRCH_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->array_.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Telemetry files are ASCII; encode the code point as UTF-8.
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    // Strict JSON grammar (RFC 8259): -?(0|[1-9][0-9]*)(.[0-9]+)?
    // ([eE][+-]?[0-9]+)? — strtod alone is too permissive (leading
    // zeros, bare '.', hex, inf/nan).
    const size_t start = pos_;
    Consume('-');
    size_t int_digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++int_digits;
    }
    if (int_digits == 0) return Fail("expected a value");
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return Fail("bad number");  // leading zero
    }
    if (Consume('.')) {
      size_t frac_digits = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac_digits;
      }
      if (frac_digits == 0) return Fail("bad number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_digits = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp_digits;
      }
      if (exp_digits == 0) return Fail("bad number");
    }
    std::string tok(text_.substr(start, pos_ - start));
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = std::strtod(tok.c_str(), nullptr);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Run();
}

StatusOr<JsonValue> JsonValue::ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failed: " + path);
  }
  return Parse(buf.str());
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IOError("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed: " + path);
  }
  return Status::OK();
}

}  // namespace birch
