#include "eval/visualize.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace birch {

std::string RenderClusters(std::span<const CfVector> clusters,
                           const VisualizeOptions& options) {
  if (clusters.empty() || clusters[0].dim() != 2) return "";
  // Data bounding box.
  double lo_x = 1e300, hi_x = -1e300, lo_y = 1e300, hi_y = -1e300;
  for (const auto& c : clusters) {
    if (c.empty()) continue;
    auto ctr = c.Centroid();
    double r = std::sqrt(2.0) * c.Radius();
    lo_x = std::min(lo_x, ctr[0] - r);
    hi_x = std::max(hi_x, ctr[0] + r);
    lo_y = std::min(lo_y, ctr[1] - r);
    hi_y = std::max(hi_y, ctr[1] + r);
  }
  if (lo_x >= hi_x) {
    hi_x = lo_x + 1;
  }
  if (lo_y >= hi_y) {
    hi_y = lo_y + 1;
  }

  const int w = options.width, h = options.height;
  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));
  auto to_px = [&](double x) {
    return static_cast<int>((x - lo_x) / (hi_x - lo_x) * (w - 1));
  };
  auto to_py = [&](double y) {
    // Screen y grows downward.
    return static_cast<int>((hi_y - y) / (hi_y - lo_y) * (h - 1));
  };

  const char* glyphs = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (size_t c = 0; c < clusters.size(); ++c) {
    if (clusters[c].empty()) continue;
    auto ctr = clusters[c].Centroid();
    double r = std::sqrt(2.0) * clusters[c].Radius();
    char glyph = glyphs[c % 36];
    // Rasterize the circle outline (and a center mark).
    int steps = 64;
    for (int s = 0; s < steps; ++s) {
      double ang = 2.0 * M_PI * s / steps;
      int px = to_px(ctr[0] + r * std::cos(ang));
      int py = to_py(ctr[1] + r * std::sin(ang));
      if (px >= 0 && px < w && py >= 0 && py < h) {
        grid[static_cast<size_t>(py)][static_cast<size_t>(px)] = glyph;
      }
    }
    int cx = to_px(ctr[0]), cy = to_py(ctr[1]);
    if (cx >= 0 && cx < w && cy >= 0 && cy < h) {
      grid[static_cast<size_t>(cy)][static_cast<size_t>(cx)] = '+';
    }
  }
  std::string out;
  for (const auto& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace birch
