// ASCII rendering of 2-d clusterings — the stand-in for the paper's
// scatter-plot figures (Figs. 6-8). Clusters are drawn as circles of
// radius sqrt(2)*R centered at the centroid (the paper's presentation),
// rasterized onto a character grid.
#ifndef BIRCH_EVAL_VISUALIZE_H_
#define BIRCH_EVAL_VISUALIZE_H_

#include <span>
#include <string>

#include "birch/cf_vector.h"

namespace birch {

struct VisualizeOptions {
  int width = 100;
  int height = 40;
};

/// Renders cluster circles; larger clusters overwrite smaller ones.
/// Returns an empty string for non-2-d input.
std::string RenderClusters(std::span<const CfVector> clusters,
                           const VisualizeOptions& options = {});

}  // namespace birch

#endif  // BIRCH_EVAL_VISUALIZE_H_
