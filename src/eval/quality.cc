#include "eval/quality.h"

#include <algorithm>
#include <cassert>

namespace birch {

double WeightedAverageDiameter(std::span<const CfVector> clusters) {
  double num = 0.0, den = 0.0;
  for (const auto& c : clusters) {
    if (c.empty()) continue;
    num += c.n() * c.Diameter();
    den += c.n();
  }
  return den > 0.0 ? num / den : 0.0;
}

double WeightedAverageRadius(std::span<const CfVector> clusters) {
  double num = 0.0, den = 0.0;
  for (const auto& c : clusters) {
    if (c.empty()) continue;
    num += c.n() * c.Radius();
    den += c.n();
  }
  return den > 0.0 ? num / den : 0.0;
}

double TotalSse(std::span<const CfVector> clusters) {
  double s = 0.0;
  for (const auto& c : clusters) s += c.SumSquaredDeviation();
  return s;
}

std::vector<CfVector> ClustersFromLabels(const Dataset& data,
                                         std::span<const int> labels,
                                         int num_clusters) {
  assert(labels.size() == data.size());
  int k = num_clusters;
  if (k == 0) {
    for (int l : labels) k = std::max(k, l + 1);
  }
  std::vector<CfVector> clusters(static_cast<size_t>(k),
                                 CfVector(data.dim()));
  for (size_t i = 0; i < data.size(); ++i) {
    int l = labels[i];
    if (l < 0) continue;
    clusters[static_cast<size_t>(l)].AddPoint(data.Row(i), data.Weight(i));
  }
  return clusters;
}

}  // namespace birch
