#include "eval/matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/math.h"

namespace birch {

MatchReport MatchClusters(std::span<const ActualCluster> actual,
                          std::span<const CfVector> found) {
  MatchReport report;
  report.match.assign(actual.size(), -1);

  struct Pair {
    double d;
    size_t a;
    size_t f;
  };
  std::vector<Pair> pairs;
  pairs.reserve(actual.size() * found.size());
  std::vector<std::vector<double>> found_centroids;
  found_centroids.reserve(found.size());
  for (const auto& f : found) found_centroids.push_back(f.Centroid());
  for (size_t a = 0; a < actual.size(); ++a) {
    for (size_t f = 0; f < found.size(); ++f) {
      pairs.push_back(
          {Distance(actual[a].center, found_centroids[f]), a, f});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.d < y.d; });

  std::vector<bool> actual_used(actual.size(), false);
  std::vector<bool> found_used(found.size(), false);
  double disp = 0.0, count_dev = 0.0, radius_dev = 0.0;
  for (const Pair& p : pairs) {
    if (actual_used[p.a] || found_used[p.f]) continue;
    actual_used[p.a] = true;
    found_used[p.f] = true;
    report.match[p.a] = static_cast<int>(p.f);
    ++report.matched;
    disp += p.d;
    double n_actual = std::max(1.0, static_cast<double>(actual[p.a].points));
    count_dev += std::fabs(found[p.f].n() - n_actual) / n_actual;
    double r_actual = std::max(actual[p.a].cf.Radius(), 1e-9);
    radius_dev += std::fabs(found[p.f].Radius() - r_actual) / r_actual;
  }
  if (report.matched > 0) {
    report.mean_centroid_displacement = disp / report.matched;
    report.mean_count_deviation = count_dev / report.matched;
    report.mean_radius_deviation = radius_dev / report.matched;
  }
  return report;
}

double LabelAccuracy(std::span<const int> truth, std::span<const int> labels,
                     const MatchReport& report, bool noise_as_outlier) {
  // Invert the match: found cluster -> actual cluster.
  std::vector<int> found_to_actual;
  for (size_t a = 0; a < report.match.size(); ++a) {
    int f = report.match[a];
    if (f < 0) continue;
    if (found_to_actual.size() <= static_cast<size_t>(f)) {
      found_to_actual.resize(static_cast<size_t>(f) + 1, -1);
    }
    found_to_actual[static_cast<size_t>(f)] = static_cast<int>(a);
  }

  uint64_t considered = 0, correct = 0;
  for (size_t i = 0; i < truth.size() && i < labels.size(); ++i) {
    if (truth[i] < 0) {
      if (noise_as_outlier) {
        ++considered;
        if (labels[i] < 0) ++correct;
      }
      continue;
    }
    ++considered;
    int l = labels[i];
    if (l >= 0 && static_cast<size_t>(l) < found_to_actual.size() &&
        found_to_actual[static_cast<size_t>(l)] == truth[i]) {
      ++correct;
    }
  }
  return considered == 0
             ? 0.0
             : static_cast<double>(correct) / static_cast<double>(considered);
}

}  // namespace birch
