// Actual-vs-found cluster comparison — the numeric backing for the
// paper's Figs. 6-8 ("BIRCH clusters are similar to the actual ones in
// location, count and radius; CLARANS clusters are distorted"). Found
// clusters are greedily matched to ground-truth clusters by centroid
// distance; the report aggregates centroid displacement, point-count
// deviation and radius deviation, plus label accuracy when per-point
// ground truth is available.
#ifndef BIRCH_EVAL_MATCHING_H_
#define BIRCH_EVAL_MATCHING_H_

#include <span>
#include <vector>

#include "birch/cf_vector.h"
#include "datagen/generator.h"

namespace birch {

struct MatchReport {
  /// match[i] = index of the found cluster matched to actual cluster i,
  /// or -1 if none left to match.
  std::vector<int> match;
  /// Mean distance from actual centers to matched found centroids.
  double mean_centroid_displacement = 0.0;
  /// Mean |n_found - n_actual| / n_actual over matched pairs.
  double mean_count_deviation = 0.0;
  /// Mean |r_found - r_actual| / max(r_actual, eps) over matched pairs.
  double mean_radius_deviation = 0.0;
  /// Number of actual clusters that got a match.
  int matched = 0;
};

/// Greedy centroid matching: repeatedly pair the globally closest
/// (actual, found) centroids.
MatchReport MatchClusters(std::span<const ActualCluster> actual,
                          std::span<const CfVector> found);

/// Fraction of non-noise points whose label agrees with the matched
/// ground-truth cluster. `labels` uses -1 for outliers; noise rows
/// (truth -1) count as correct when labelled -1 under
/// `noise_as_outlier`, and are skipped otherwise.
double LabelAccuracy(std::span<const int> truth, std::span<const int> labels,
                     const MatchReport& report, bool noise_as_outlier = false);

}  // namespace birch

#endif  // BIRCH_EVAL_MATCHING_H_
