// Clustering quality measurement (Sec. 6.3 of the paper). The paper's
// quality number "D" is the weighted average diameter of the clusters
// (weighted by point count); the radius variant is also provided, as
// is the total k-means SSE for cross-checks.
#ifndef BIRCH_EVAL_QUALITY_H_
#define BIRCH_EVAL_QUALITY_H_

#include <span>
#include <vector>

#include "birch/cf_vector.h"
#include "birch/dataset.h"

namespace birch {

/// Weighted average diameter: sum_k n_k * D_k / sum_k n_k.
double WeightedAverageDiameter(std::span<const CfVector> clusters);

/// Weighted average radius: sum_k n_k * R_k / sum_k n_k.
double WeightedAverageRadius(std::span<const CfVector> clusters);

/// Total squared deviation from cluster centroids (k-means objective).
double TotalSse(std::span<const CfVector> clusters);

/// Builds exact cluster CFs from per-point labels (-1 = outlier,
/// skipped). `num_clusters` of 0 derives the count from the labels.
std::vector<CfVector> ClustersFromLabels(const Dataset& data,
                                         std::span<const int> labels,
                                         int num_clusters = 0);

}  // namespace birch

#endif  // BIRCH_EVAL_QUALITY_H_
