// StatsSampler: a background thread that samples registered probes at
// a fixed cadence into per-probe TimeSeries rings, turning the
// registry's point-in-time gauges and counters into trajectories —
// threshold T growth, tree occupancy, memory high-water, I/O volume
// over the scan (the paper's Phase-1 rebuild dynamics, §5.1).
//
// Probes must be race-free to read from another thread. The built-in
// AddGaugeProbe / AddCounterProbe forms read registry metrics (relaxed
// atomics, TSAN-clean against concurrent ingest); AddProbe(fn) is for
// callers who can guarantee the same about `fn`.
//
// Lifecycle: construct, add probes, Start(). Start/Stop are
// idempotent; Stop() joins the thread and takes one final sample so
// even a run shorter than the cadence ends with a non-empty series
// (one sample is also taken inside Start()). When obs::Enabled() is
// false nothing is recorded at all. Each sample is additionally
// emitted as a Chrome-trace counter ("C") event while the default
// tracer is recording, so trajectories land next to the span stream
// in chrome://tracing.
#ifndef BIRCH_OBS_SAMPLER_H_
#define BIRCH_OBS_SAMPLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/timeseries.h"
#include "util/status.h"

namespace birch {
namespace obs {

struct SamplerOptions {
  /// Cadence of the background thread. Must be > 0 to Start().
  uint64_t sample_every_ms = 100;
  /// Ring capacity per series; the oldest samples drop beyond it.
  size_t series_capacity = 4096;
  /// Also emit each sample as a tracer counter event (only while the
  /// default tracer is recording).
  bool emit_trace_counters = true;
};

class StatsSampler {
 public:
  explicit StatsSampler(SamplerOptions options = {});
  ~StatsSampler();  // stops the thread if still running

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  /// Samples Registry::Default()'s gauge / counter of that name (the
  /// handle is resolved once, here). Probes cannot be added while the
  /// sampler is running.
  void AddGaugeProbe(std::string_view metric);
  void AddCounterProbe(std::string_view metric);
  /// Custom probe; `fn` is called from the sampler thread and must be
  /// safe to run concurrently with whatever it observes.
  void AddProbe(std::string name, std::function<double()> fn);

  /// Launches the background thread (and takes an immediate sample).
  /// Idempotent: OK if already running. InvalidArgument when
  /// sample_every_ms == 0.
  Status Start();
  /// Joins the thread and takes a final sample. Idempotent.
  void Stop();
  bool running() const;

  /// One synchronous sample of every probe (no thread needed); a no-op
  /// when obs is disabled. The background thread calls this too.
  void SampleOnce();

  /// Copies of every probe's series (probe registration order).
  std::vector<TimeSeriesSnapshot> Snapshot() const;

  /// Samples taken so far (Start + cadence + Stop), 0 while disabled.
  uint64_t samples_taken() const;

  const SamplerOptions& options() const { return options_; }

 private:
  struct Probe {
    std::function<double()> fn;
    TimeSeries series;
    /// Stable name for tracer counter events (TraceEvent stores the
    /// pointer); interned for custom probes, registry-owned otherwise.
    const char* trace_name;

    Probe(std::function<double()> f, std::string name, size_t capacity,
          const char* tname)
        : fn(std::move(f)),
          series(std::move(name), capacity),
          trace_name(tname) {}
  };

  void Loop();

  SamplerOptions options_;
  std::vector<std::unique_ptr<Probe>> probes_;  // frozen once running

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  std::thread thread_;
  std::atomic<uint64_t> samples_{0};
};

}  // namespace obs
}  // namespace birch

#endif  // BIRCH_OBS_SAMPLER_H_
