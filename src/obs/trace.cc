#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace birch {
namespace obs {

namespace {

thread_local int t_depth = 0;

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendJsonString(const char* s, std::string* out) {
  out->push_back('"');
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::StartRecording() {
  recording_.store(true, std::memory_order_relaxed);
}

void Tracer::StopRecording() {
  recording_.store(false, std::memory_order_relaxed);
}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(e);
}

bool Tracer::BeginSpan(const char* name) {
  ++t_depth;
  if (!recording()) return false;
  Record({TraceEvent::Phase::kBegin, name, NowUs(), ThisThreadId()});
  return true;
}

void Tracer::EndSpan(const char* name, uint64_t start_us,
                     bool emitted_begin) {
  --t_depth;
  uint64_t now = NowUs();
  double dur_us = static_cast<double>(now - start_us);
  if (Enabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    SpanSnapshot& agg = aggregates_[name];
    ++agg.count;
    agg.total_us += dur_us;
    if (dur_us > agg.max_us) agg.max_us = dur_us;
  }
  if (emitted_begin) {
    Record({TraceEvent::Phase::kEnd, name, now, ThisThreadId()});
  }
}

void Tracer::Instant(const char* name) {
  if (!recording()) return;
  Record({TraceEvent::Phase::kInstant, name, NowUs(), ThisThreadId()});
}

void Tracer::CounterSample(const char* name, double value) {
  if (!recording()) return;
  Record({TraceEvent::Phase::kCounter, name, NowUs(), ThisThreadId(),
          value});
}

int Tracer::ThreadDepth() { return t_depth; }

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::string, SpanSnapshot> Tracer::span_aggregates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregates_;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  aggregates_.clear();
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<TraceEvent> evs = events();
  std::string out = "{\"traceEvents\":[";
  char buf[96];
  for (size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(e.name, &out);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"%c\",\"ts\":%" PRIu64 ",\"pid\":1,\"tid\":%u",
                  static_cast<char>(e.phase), e.ts_us, e.tid);
    out += buf;
    if (e.phase == TraceEvent::Phase::kCounter) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.17g}",
                    e.value);
      out += buf;
    } else if (e.phase == TraceEvent::Phase::kInstant) {
      out += ",\"s\":\"t\"";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open trace file: " + path);
  f << ChromeTraceJson();
  f.close();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace birch
