// Metrics registry: named monotonic counters, gauges, and log-scale
// histograms, shared process-wide through Registry::Default(). The hot
// path is an enabled-flag load plus one relaxed atomic op; metric
// handles are resolved once per instrumentation site (static local in
// the OBS_* macros), so steady-state cost is independent of the
// registry size. Disable at runtime with SetEnabled(false) or the
// BIRCH_OBS=0 environment variable; compile every instrumentation site
// out entirely with -DBIRCH_NO_OBS.
//
// Naming scheme: `subsystem/name` (e.g. "tree/distance_comps",
// "pagestore/read_us"). Histogram names carry their unit as a suffix
// (`_us`, `_bytes`).
#ifndef BIRCH_OBS_METRICS_H_
#define BIRCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace birch {
namespace obs {

namespace internal {
/// Process-wide instrumentation switch, initialized from BIRCH_OBS
/// ("0"/"false"/"off" disable; anything else, or unset, enables).
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when instrumentation records. Hot-path check: one relaxed load.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-wide switch (counters keep their values).
void SetEnabled(bool on);

/// Monotonic counter. Thread-safe; increments are relaxed atomics.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Increment(uint64_t delta = 1) {
    if (Enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (double so it can carry thresholds as well as
/// occupancy counts). Set/Add are relaxed; Add is a CAS loop.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!Enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram (see Histogram below).
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Estimated q-quantile (q in [0,1]) from the log-scale buckets:
  /// cumulative walk to the target rank, then linear interpolation
  /// inside the bucket, clamped to the observed [min, max]. Accuracy is
  /// bounded by the bucket width (a factor of 2), which is the same
  /// precision the bucket layout already commits to. 0 when empty.
  double Quantile(double q) const;
};

/// Log-scale histogram with fixed power-of-two bucket boundaries:
/// bucket 0 holds values < 1, bucket i (i >= 1) holds [2^(i-1), 2^i).
/// The top bucket absorbs everything beyond the last boundary. Records
/// are relaxed atomics; min/max are CAS loops.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Record(double v);

  /// Bucket for value `v` (NaN and negatives land in bucket 0).
  static size_t BucketIndex(double v);
  /// Inclusive lower bound of bucket `i` (0 for bucket 0).
  static double BucketLowerBound(size_t i);
  /// Exclusive upper bound of bucket `i` (+inf for the last).
  static double BucketUpperBound(size_t i);

  HistogramSnapshot Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Aggregate of one named span family (filled from the tracer).
struct SpanSnapshot {
  uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

/// Point-in-time copy of every metric, exported through BirchResult and
/// the table/CSV/trace writers. Counters, histograms, and spans are
/// cumulative since process start; DeltaSince() turns two snapshots
/// into a per-run view (gauges stay at their current level — a level
/// has no meaningful delta).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanSnapshot> spans;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           spans.empty();
  }

  /// This snapshot minus `base` (counters/histograms/spans subtract;
  /// gauges and histogram min/max keep their current values). Metrics
  /// absent from `base` are treated as zero there.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;
};

/// Owner of all metrics. Handles returned by Get* are stable for the
/// registry's lifetime; lookups are mutex-guarded (sites cache the
/// handle in a static local via the OBS_* macros).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the OBS_* macros record into.
  static Registry& Default();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Copies every metric (spans are merged in by CaptureSnapshot()).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric value. Handles stay valid (instrumentation
  /// sites cache them), so this is safe between runs; racing it against
  /// concurrent recording merely loses the in-flight updates.
  void ResetValues();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace birch

// --- Instrumentation macros -------------------------------------------
//
// `name` must be a string constant: the metric handle is resolved once
// (static local) and reused for the lifetime of the process. All macros
// compile to nothing under -DBIRCH_NO_OBS.

#define BIRCH_OBS_CONCAT_INNER_(a, b) a##b
#define BIRCH_OBS_CONCAT_(a, b) BIRCH_OBS_CONCAT_INNER_(a, b)

#ifdef BIRCH_NO_OBS

#define OBS_COUNTER_ADD(name, delta) ((void)0)
#define OBS_COUNTER_INC(name) ((void)0)
#define OBS_GAUGE_SET(name, value) ((void)0)
#define OBS_GAUGE_ADD(name, delta) ((void)0)
#define OBS_HISTOGRAM_RECORD(name, value) ((void)0)

#else

#define OBS_COUNTER_ADD(name, delta)                              \
  do {                                                            \
    static ::birch::obs::Counter& obs_counter_ =                  \
        ::birch::obs::Registry::Default().GetCounter(name);       \
    obs_counter_.Increment(static_cast<uint64_t>(delta));         \
  } while (0)
#define OBS_COUNTER_INC(name) OBS_COUNTER_ADD(name, 1)

#define OBS_GAUGE_SET(name, value)                                \
  do {                                                            \
    static ::birch::obs::Gauge& obs_gauge_ =                      \
        ::birch::obs::Registry::Default().GetGauge(name);         \
    obs_gauge_.Set(static_cast<double>(value));                   \
  } while (0)
#define OBS_GAUGE_ADD(name, delta)                                \
  do {                                                            \
    static ::birch::obs::Gauge& obs_gauge_ =                      \
        ::birch::obs::Registry::Default().GetGauge(name);         \
    obs_gauge_.Add(static_cast<double>(delta));                   \
  } while (0)

#define OBS_HISTOGRAM_RECORD(name, value)                         \
  do {                                                            \
    static ::birch::obs::Histogram& obs_histogram_ =              \
        ::birch::obs::Registry::Default().GetHistogram(name);     \
    obs_histogram_.Record(static_cast<double>(value));            \
  } while (0)

#endif  // BIRCH_NO_OBS

#endif  // BIRCH_OBS_METRICS_H_
