#include "obs/timeseries.h"

namespace birch {
namespace obs {

void TimeSeries::Append(uint64_t t_us, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back({t_us, value});
    return;
  }
  ring_[head_] = {t_us, value};
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

TimeSeriesSnapshot TimeSeries::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TimeSeriesSnapshot s;
  s.name = name_;
  s.dropped = dropped_;
  s.points.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    s.points.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return s;
}

size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TimeSeries::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace obs
}  // namespace birch
