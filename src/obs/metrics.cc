#include "obs/metrics.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace birch {
namespace obs {

namespace internal {

namespace {
bool EnabledFromEnv() {
  const char* v = std::getenv("BIRCH_OBS");
  if (v == nullptr) return true;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "off") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{EnabledFromEnv()};

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

void Histogram::Record(double v) {
  if (!Enabled()) return;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  uint64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  // First record seeds min/max; later records CAS toward the extremes.
  if (prior == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double m = min_.load(std::memory_order_relaxed);
  while (v < m &&
         !min_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  m = max_.load(std::memory_order_relaxed);
  while (v > m &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

size_t Histogram::BucketIndex(double v) {
  if (!(v >= 1.0)) return 0;  // < 1, negative, or NaN
  int e = static_cast<int>(std::floor(std::log2(v)));
  return std::min(kNumBuckets - 1, static_cast<size_t>(e) + 1);
}

double Histogram::BucketLowerBound(size_t i) {
  return i == 0 ? 0.0 : std::pow(2.0, static_cast<double>(i - 1));
}

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::pow(2.0, static_cast<double>(i));
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  s.buckets.reserve(kNumBuckets);
  for (const auto& b : buckets_) {
    s.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  return s;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double next = cum + static_cast<double>(buckets[i]);
    if (next < target) {
      cum = next;
      continue;
    }
    // The target rank lands in bucket i; interpolate within it, using
    // the observed extremes to tighten the open-ended boundaries.
    double lo = std::max(Histogram::BucketLowerBound(i), min);
    double hi = std::min(Histogram::BucketUpperBound(i), max);
    if (!(hi > lo)) return lo;
    const double frac = (target - cum) / static_cast<double>(buckets[i]);
    return lo + frac * (hi - lo);
  }
  return max;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& base) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) {
    auto it = base.counters.find(name);
    if (it != base.counters.end()) value -= std::min(value, it->second);
  }
  for (auto& [name, hist] : out.histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end()) continue;
    hist.count -= std::min(hist.count, it->second.count);
    hist.sum -= it->second.sum;
    for (size_t i = 0;
         i < hist.buckets.size() && i < it->second.buckets.size(); ++i) {
      hist.buckets[i] -= std::min(hist.buckets[i], it->second.buckets[i]);
    }
  }
  for (auto& [name, span] : out.spans) {
    auto it = base.spans.find(name);
    if (it == base.spans.end()) continue;
    span.count -= std::min(span.count, it->second.count);
    span.total_us -= it->second.total_us;
  }
  return out;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->Snapshot();
  }
  return s;
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace birch
