// Fixed-capacity time series: the storage behind the StatsSampler.
// Each series is a named ring of (timestamp, value) points; when the
// ring is full the oldest point is overwritten and `dropped` counts
// what fell off, so exporters can say "first N points elided" instead
// of silently presenting a truncated trajectory as complete.
//
// Append/Snapshot are mutex-guarded: the sampler thread appends at
// most a few times per second per series, so a lock (not a lock-free
// ring) is the right complexity for the write rate.
#ifndef BIRCH_OBS_TIMESERIES_H_
#define BIRCH_OBS_TIMESERIES_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace birch {
namespace obs {

/// One sample: microseconds since the tracer epoch, and the value.
struct TimeSeriesPoint {
  uint64_t t_us = 0;
  double value = 0.0;
};

/// Point-in-time copy of one series (oldest point first).
struct TimeSeriesSnapshot {
  std::string name;
  std::vector<TimeSeriesPoint> points;
  /// Points that fell off the front of the ring.
  uint64_t dropped = 0;

  bool empty() const { return points.empty(); }
};

/// Named bounded ring of samples.
class TimeSeries {
 public:
  TimeSeries(std::string name, size_t capacity)
      : name_(std::move(name)), capacity_(capacity == 0 ? 1 : capacity) {}

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  void Append(uint64_t t_us, double value);

  /// Copies the ring contents in append order (oldest first).
  TimeSeriesSnapshot Snapshot() const;

  size_t size() const;
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TimeSeriesPoint> ring_;  // grows up to capacity_
  size_t head_ = 0;                    // index of the oldest point
  uint64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace birch

#endif  // BIRCH_OBS_TIMESERIES_H_
