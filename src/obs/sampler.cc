#include "obs/sampler.h"

#include <chrono>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace birch {
namespace obs {

namespace {

/// Returns a pointer that stays valid for the process lifetime.
/// TraceEvent stores raw name pointers, and a trace may be exported
/// after the sampler that produced the samples is gone.
const char* InternName(const std::string& name) {
  static std::mutex mu;
  static std::set<std::string>* names = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return names->insert(name).first->c_str();
}

}  // namespace

StatsSampler::StatsSampler(SamplerOptions options) : options_(options) {}

StatsSampler::~StatsSampler() { Stop(); }

void StatsSampler::AddGaugeProbe(std::string_view metric) {
  Gauge& g = Registry::Default().GetGauge(metric);
  AddProbe(std::string(metric), [&g] { return g.Value(); });
}

void StatsSampler::AddCounterProbe(std::string_view metric) {
  Counter& c = Registry::Default().GetCounter(metric);
  AddProbe(std::string(metric),
           [&c] { return static_cast<double>(c.Value()); });
}

void StatsSampler::AddProbe(std::string name, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;  // the probe set is frozen while sampling
  const char* tname = InternName(name);
  probes_.push_back(std::make_unique<Probe>(
      std::move(fn), std::move(name), options_.series_capacity, tname));
}

Status StatsSampler::Start() {
  if (options_.sample_every_ms == 0) {
    return Status::InvalidArgument(
        "StatsSampler cadence must be > 0 ms (0 means sampling is off)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::OK();
    running_ = true;
  }
  SampleOnce();  // the trajectory starts at t=now, not one period in
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void StatsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  SampleOnce();  // capture the end state even on sub-cadence runs
}

bool StatsSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void StatsSampler::SampleOnce() {
  if (!Enabled()) return;  // disabled runs record zero samples
  Tracer& tracer = Tracer::Default();
  const uint64_t now = tracer.NowUs();
  const bool trace = options_.emit_trace_counters && tracer.recording();
  for (const auto& probe : probes_) {
    double v = probe->fn();
    probe->series.Append(now, v);
    if (trace) tracer.CounterSample(probe->trace_name, v);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void StatsSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(options_.sample_every_ms),
                     [this] { return !running_; })) {
      return;  // stopped; Stop() takes the final sample
    }
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

std::vector<TimeSeriesSnapshot> StatsSampler::Snapshot() const {
  std::vector<TimeSeriesSnapshot> out;
  out.reserve(probes_.size());
  for (const auto& probe : probes_) out.push_back(probe->series.Snapshot());
  return out;
}

uint64_t StatsSampler::samples_taken() const {
  return samples_.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace birch
