#include "obs/export.h"

#include <cmath>
#include <cstdio>

#include "obs/trace.h"
#include "util/csv.h"
#include "util/table.h"

namespace birch {
namespace obs {

namespace {

std::string FormatUs(double us) {
  char buf[48];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}

std::string FormatDouble(double v) {
  char buf[48];
  // Integers print bare; everything else keeps a readable precision.
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

}  // namespace

MetricsSnapshot CaptureSnapshot() {
  MetricsSnapshot s = Registry::Default().Snapshot();
  s.spans = Tracer::Default().span_aggregates();
  return s;
}

std::string SummaryTable(const MetricsSnapshot& snapshot) {
  TablePrinter table({"metric", "kind", "value", "detail"});
  for (const auto& [name, value] : snapshot.counters) {
    table.Row().Add(name).Add("counter").Add(
        static_cast<int64_t>(value)).Add("");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    table.Row().Add(name).Add("gauge").Add(FormatDouble(value)).Add("");
  }
  for (const auto& [name, h] : snapshot.histograms) {
    char detail[192];
    std::snprintf(detail, sizeof(detail),
                  "mean=%s min=%s max=%s p50=%s p99=%s",
                  FormatDouble(h.Mean()).c_str(),
                  FormatDouble(h.min).c_str(),
                  FormatDouble(h.max).c_str(),
                  FormatDouble(h.Quantile(0.50)).c_str(),
                  FormatDouble(h.Quantile(0.99)).c_str());
    table.Row().Add(name).Add("histogram").Add(
        static_cast<int64_t>(h.count)).Add(detail);
  }
  for (const auto& [name, s] : snapshot.spans) {
    char detail[128];
    std::snprintf(detail, sizeof(detail), "total=%s max=%s n=%llu",
                  FormatUs(s.total_us).c_str(), FormatUs(s.max_us).c_str(),
                  static_cast<unsigned long long>(s.count));
    table.Row().Add(name).Add("span").Add(FormatUs(s.total_us)).Add(
        detail);
  }
  return table.ToString();
}

namespace {

CsvWriter SnapshotCsv(const MetricsSnapshot& snapshot) {
  CsvWriter csv({"metric", "kind", "value", "count", "sum", "min", "max",
                 "p50", "p95", "p99"});
  for (const auto& [name, value] : snapshot.counters) {
    csv.Row().Add(name).Add("counter").Add(
        static_cast<int64_t>(value)).Add("").Add("").Add("").Add("")
        .Add("").Add("").Add("");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    csv.Row().Add(name).Add("gauge").Add(value).Add("").Add("").Add("")
        .Add("").Add("").Add("").Add("");
  }
  for (const auto& [name, h] : snapshot.histograms) {
    csv.Row().Add(name).Add("histogram").Add("").Add(
        static_cast<int64_t>(h.count)).Add(h.sum).Add(h.min).Add(h.max)
        .Add(h.Quantile(0.50)).Add(h.Quantile(0.95)).Add(h.Quantile(0.99));
  }
  for (const auto& [name, s] : snapshot.spans) {
    csv.Row().Add(name).Add("span").Add("").Add(
        static_cast<int64_t>(s.count)).Add(s.total_us).Add("").Add(
        s.max_us).Add("").Add("").Add("");
  }
  return csv;
}

}  // namespace

std::string ToCsv(const MetricsSnapshot& snapshot) {
  return SnapshotCsv(snapshot).ToString();
}

Status WriteCsv(const MetricsSnapshot& snapshot, const std::string& path) {
  return SnapshotCsv(snapshot).WriteFile(path);
}

}  // namespace obs
}  // namespace birch
