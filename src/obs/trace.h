// Span tracer: RAII scopes (TRACE_SPAN) with begin/end timestamps and
// nesting, instant events (TRACE_INSTANT) for discrete occurrences,
// and counter samples (TRACE_COUNTER) for trajectories like the
// Phase-1 threshold. Two independent outputs:
//
//  - Span aggregation (count/total/max per span name) feeds the
//    metrics snapshot whenever obs::Enabled(); it costs one map lookup
//    per span end, nothing per instant.
//  - Event recording (off by default; StartRecording()) buffers every
//    event for Chrome trace_event JSON export, loadable in
//    chrome://tracing or https://ui.perfetto.dev.
//
// Span names must be string literals (the tracer stores the pointer).
// Every recorded "B" event is matched by an "E": a scope that began
// while recording always emits its end, even if recording stops while
// it is open.
#ifndef BIRCH_OBS_TRACE_H_
#define BIRCH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace birch {
namespace obs {

/// One trace_event-model event.
struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
    kCounter = 'C',
  };
  Phase phase;
  const char* name;  // static string
  uint64_t ts_us;    // microseconds since tracer epoch
  uint32_t tid;
  double value = 0.0;  // kCounter payload
};

/// Process-wide tracer (Tracer::Default()); separate instances exist
/// only for tests.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Default();

  /// Event buffering for Chrome-trace export. Aggregation is always on
  /// (gated by obs::Enabled() only).
  void StartRecording();
  void StopRecording();
  bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's construction.
  uint64_t NowUs() const;

  /// Span begin: bumps the thread's nesting depth; buffers a "B" event
  /// when recording. Returns true when a "B" event was buffered (the
  /// scope then owes a matching "E" regardless of later state).
  bool BeginSpan(const char* name);
  /// Span end: aggregates `now - start_us` when obs::Enabled(), and
  /// buffers an "E" event iff `emitted_begin` — never otherwise, so
  /// every buffered "B" has exactly one "E" and vice versa.
  void EndSpan(const char* name, uint64_t start_us, bool emitted_begin);

  /// Instant event (buffered only while recording).
  void Instant(const char* name);
  /// Counter sample, e.g. the threshold trajectory ("C" event).
  void CounterSample(const char* name, double value);

  /// Current nesting depth of the calling thread.
  static int ThreadDepth();

  /// Copies the buffered events (append order).
  std::vector<TraceEvent> events() const;
  /// Per-name span aggregates accumulated so far.
  std::map<std::string, SpanSnapshot> span_aggregates() const;
  /// Drops buffered events and aggregates (open scopes stay valid:
  /// their pending "E" events simply land in the fresh buffer).
  void Reset();

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  void Record(const TraceEvent& e);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> recording_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::string, SpanSnapshot> aggregates_;
};

/// RAII span over the default tracer. Cheap when idle: construction is
/// two relaxed loads when neither aggregation nor recording is on.
/// Under -DBIRCH_NO_OBS the whole class is a no-op, so direct members
/// (e.g. BirchClusterer's phase-1 span) compile out with the macros.
class SpanScope {
 public:
#ifdef BIRCH_NO_OBS
  explicit SpanScope(const char*) {}
  void End() {}
#else
  explicit SpanScope(const char* name) {
    if (Enabled() || Tracer::Default().recording()) {
      name_ = name;
      start_us_ = Tracer::Default().NowUs();
      emitted_begin_ = Tracer::Default().BeginSpan(name);
    }
  }
  ~SpanScope() { End(); }

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void End() {
    if (name_ == nullptr) return;
    Tracer::Default().EndSpan(name_, start_us_, emitted_begin_);
    name_ = nullptr;
  }
#endif  // BIRCH_NO_OBS

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
#ifndef BIRCH_NO_OBS
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  bool emitted_begin_ = false;
#endif
};

}  // namespace obs
}  // namespace birch

#ifdef BIRCH_NO_OBS

#define TRACE_SPAN(name) ((void)0)
#define TRACE_INSTANT(name) ((void)0)
#define TRACE_COUNTER(name, value) ((void)0)

#else

/// Scoped span; lives until the end of the enclosing block.
#define TRACE_SPAN(name) \
  ::birch::obs::SpanScope BIRCH_OBS_CONCAT_(obs_span_, __COUNTER__)(name)
#define TRACE_INSTANT(name)                               \
  do {                                                    \
    if (::birch::obs::Tracer::Default().recording()) {    \
      ::birch::obs::Tracer::Default().Instant(name);      \
    }                                                     \
  } while (0)
#define TRACE_COUNTER(name, value)                                       \
  do {                                                                   \
    if (::birch::obs::Tracer::Default().recording()) {                   \
      ::birch::obs::Tracer::Default().CounterSample(                     \
          name, static_cast<double>(value));                             \
    }                                                                    \
  } while (0)

#endif  // BIRCH_NO_OBS

#endif  // BIRCH_OBS_TRACE_H_
