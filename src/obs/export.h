// Exporters for MetricsSnapshot: the human-readable summary table
// (util/table), CSV (util/csv), and the snapshot capture that merges
// the registry with the tracer's span aggregates.
#ifndef BIRCH_OBS_EXPORT_H_
#define BIRCH_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace birch {
namespace obs {

/// Registry::Default() metrics plus Tracer::Default() span aggregates.
MetricsSnapshot CaptureSnapshot();

/// Fixed-width summary table: one row per metric, sorted by name
/// within kind (counters, gauges, histograms, spans).
std::string SummaryTable(const MetricsSnapshot& snapshot);

/// CSV with schema metric,kind,value,count,sum,min,max,p50,p95,p99 —
/// counters and gauges fill `value`; histograms and spans fill the
/// aggregate columns (span sum/max are microseconds); only histograms
/// carry the quantile columns (bucket-interpolated estimates).
std::string ToCsv(const MetricsSnapshot& snapshot);
Status WriteCsv(const MetricsSnapshot& snapshot, const std::string& path);

}  // namespace obs
}  // namespace birch

#endif  // BIRCH_OBS_EXPORT_H_
